// Command tracegen emits the synthetic datasets as files: head-motion
// traces, bandwidth traces (Belgian-4G-like or Irish-5G-like), and video
// manifests, in the CSV/JSON formats the other tools consume.
//
// Usage:
//
//	tracegen -kind head -motion high -seed 3 -out user3.csv
//	tracegen -kind bandwidth -profile belgian -seed 7 -out bw7.csv
//	tracegen -kind manifest -video v8 -out v8.json
//	tracegen -kind import -in belgian_log.txt -bytes -out bw.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"dragonfly/internal/trace"
	"dragonfly/internal/video"
)

func main() {
	kind := flag.String("kind", "head", "what to generate: head, bandwidth, manifest")
	out := flag.String("out", "", "output file (default stdout)")
	seed := flag.Int64("seed", 1, "generator seed")
	duration := flag.Duration("duration", time.Minute, "trace duration")

	motion := flag.String("motion", "medium", "head: motion class (low, medium, high)")
	profile := flag.String("profile", "belgian", "bandwidth: profile (belgian, irish)")
	filtered := flag.Bool("filtered", true, "bandwidth: apply the paper's filter and 28 Mbps cap")
	videoID := flag.String("video", "v1", "manifest: Table 3 video ID")

	inFile := flag.String("in", "", "import: raw throughput log to convert")
	tsCol := flag.Int("ts-col", 0, "import: timestamp column (epoch ms)")
	valCol := flag.Int("val-col", 1, "import: value column")
	asBytes := flag.Bool("bytes", false, "import: value column is bytes per interval (default: kbps)")
	comma := flag.Bool("comma", false, "import: comma-separated columns")
	flag.Parse()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}

	switch *kind {
	case "head":
		class := trace.MotionMedium
		switch *motion {
		case "low":
			class = trace.MotionLow
		case "high":
			class = trace.MotionHigh
		case "medium":
		default:
			log.Fatalf("unknown motion class %q", *motion)
		}
		h := trace.GenerateHead(trace.HeadGenParams{
			UserID: fmt.Sprintf("gen-%d", *seed), Class: class, Duration: *duration, Seed: *seed,
		})
		if err := trace.WriteHeadCSV(w, h); err != nil {
			log.Fatal(err)
		}

	case "bandwidth":
		var p trace.BandwidthGenParams
		var filter trace.FilterOptions
		switch *profile {
		case "belgian":
			p = trace.BandwidthGenParams{
				ID: fmt.Sprintf("belgian-%d", *seed), Seed: *seed, Duration: *duration,
				StateMeansMbps: []float64{9, 13, 18, 24}, SwitchPerSec: 0.25, NoiseFrac: 0.15,
			}
			filter = trace.DefaultBelgianFilter
		case "irish":
			p = trace.BandwidthGenParams{
				ID: fmt.Sprintf("irish-%d", *seed), Seed: *seed, Duration: *duration,
				StateMeansMbps: []float64{14, 20, 26}, SwitchPerSec: 0.12, NoiseFrac: 0.10,
				DipPerSec: 0.06, DipLen: 1500 * time.Millisecond,
			}
			filter = trace.DefaultIrishFilter
		default:
			log.Fatalf("unknown profile %q", *profile)
		}
		tr := trace.GenerateBandwidth(p)
		if *filtered {
			kept := trace.Filter([]*trace.BandwidthTrace{tr}, filter)
			if len(kept) == 0 {
				log.Fatalf("seed %d does not survive the paper's filter; try another seed or -filtered=false", *seed)
			}
			tr = kept[0]
		}
		if err := trace.WriteBandwidthCSV(w, tr); err != nil {
			log.Fatal(err)
		}

	case "manifest":
		var entry *video.DatasetEntry
		for i := range video.Table3 {
			if video.Table3[i].ID == *videoID {
				entry = &video.Table3[i]
			}
		}
		if entry == nil {
			log.Fatalf("unknown video %q (Table 3 has v1 v2 v7 v8 v14 v28 v27)", *videoID)
		}
		m := video.Generate(video.GenParams{
			ID: entry.ID, TargetQP42Mbps: entry.QP42Mbps, TargetQP22Mbps: entry.QP22Mbps,
			MotionLevel: entry.MotionLevel, Seed: entry.Seed,
			NumChunks: int(duration.Seconds()),
		})
		if _, err := m.WriteTo(w); err != nil {
			log.Fatal(err)
		}

	case "import":
		if *inFile == "" {
			log.Fatal("import requires -in")
		}
		f, err := os.Open(*inFile)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := trace.ReadIntervalLog(f, trace.IntervalLogOptions{
			TimestampCol: *tsCol,
			ValueCol:     *valCol,
			ValueIsBytes: *asBytes,
			Comma:        *comma,
			ID:           *inFile,
		})
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.WriteBandwidthCSV(w, tr); err != nil {
			log.Fatal(err)
		}

	default:
		log.Fatalf("unknown kind %q", *kind)
	}
}
