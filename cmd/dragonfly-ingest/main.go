// Command dragonfly-ingest runs the fleet QoE aggregation tier: it tails
// JSONL session traces (directory watch and/or HTTP push), folds them into
// per-cohort quantile sketches, and serves the /rollup endpoint the tile
// servers' QoE feedback loop polls. See docs/OBSERVABILITY.md for the
// trace schema and rollup format.
//
// Usage:
//
//	dragonfly-ingest -addr :9360 -watch /var/traces      # tail a trace dir
//	dragonfly-ingest -addr :9360 -snapshot-dir /var/qoe  # periodic rollup.json
//	curl -s localhost:9360/rollup                        # read the rollup
//	curl -s --data-binary @session.jsonl localhost:9360/ingest
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dragonfly/internal/ingest"
	"dragonfly/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9360", "HTTP listen address (/ingest, /rollup, /healthz)")
	watchDir := flag.String("watch", "", "directory of *.jsonl traces to tail (empty = push only)")
	watchInterval := flag.Duration("watch-interval", ingest.DefaultWatchInterval, "trace directory rescan period")
	snapshotDir := flag.String("snapshot-dir", "", "directory for periodic rollup.json snapshots (empty = off)")
	snapshotInterval := flag.Duration("snapshot-interval", 5*time.Second, "snapshot write period")
	adminAddr := flag.String("admin", "", "admin HTTP listen address serving /metrics and /debug/pprof/ (empty = off)")
	flag.Parse()

	reg := obs.NewRegistry()
	cfg := ingest.DefaultConfig()
	cfg.Obs = reg
	cfg.Logf = log.Printf
	agg := ingest.New(cfg)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		log.Printf("shutting down")
		cancel()
	}()

	if *adminAddr != "" {
		adminListen, adminErr, err := obs.ServeAdmin(ctx, *adminAddr, reg)
		if err != nil {
			log.Fatalf("admin listener: %v", err)
		}
		go func() {
			if err := <-adminErr; err != nil {
				log.Printf("admin listener: %v", err)
			}
		}()
		log.Printf("admin endpoint on http://%s (/metrics, /debug/pprof/)", adminListen)
	}

	if *watchDir != "" {
		w := ingest.NewWatcher(agg, *watchDir, *watchInterval)
		go w.Run(ctx)
		log.Printf("tailing %s every %s", *watchDir, *watchInterval)
	}
	if *snapshotDir != "" {
		go agg.RunSnapshots(ctx, *snapshotDir, *snapshotInterval)
		log.Printf("snapshotting rollup to %s every %s", *snapshotDir, *snapshotInterval)
	}

	listen, done, err := agg.Serve(ctx, *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("dragonfly ingest on http://%s (/ingest, /rollup)", listen)
	if err := <-done; err != nil && ctx.Err() == nil {
		log.Fatal(err)
	}
}
