package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: dragonfly
cpu: Fake CPU @ 3.00GHz
BenchmarkFig9MainComparison-8   	       1	123456789 ns/op	 5000000 B/op	   40000 allocs/op
BenchmarkFig2PredictionAccuracy-8       2	 50000000 ns/op
BenchmarkTilingSweep   	       1	  9999999 ns/op	  100 B/op	    5 allocs/op
PASS
ok  	dragonfly	3.210s
`

func TestParseBench(t *testing.T) {
	res, err := parseBench(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(res), res)
	}
	fig9, ok := res["BenchmarkFig9MainComparison"]
	if !ok {
		t.Fatal("GOMAXPROCS suffix not stripped")
	}
	if fig9.NsPerOp != 123456789 || fig9.BytesPerOp != 5000000 || fig9.AllocsPerOp != 40000 {
		t.Fatalf("fig9 = %+v", fig9)
	}
	if res["BenchmarkFig2PredictionAccuracy"].NsPerOp != 50000000 {
		t.Fatalf("fig2 = %+v", res["BenchmarkFig2PredictionAccuracy"])
	}
	if _, ok := res["BenchmarkTilingSweep"]; !ok {
		t.Fatal("benchmark without -N suffix dropped")
	}
}

func TestCompareFlagsOnlyRealRegressions(t *testing.T) {
	base := map[string]Result{
		"BenchmarkA": {NsPerOp: 1000},
		"BenchmarkB": {NsPerOp: 1000},
		"BenchmarkC": {NsPerOp: 1000},
	}
	fresh := map[string]Result{
		"BenchmarkA": {NsPerOp: 1400}, // within x1.5
		"BenchmarkB": {NsPerOp: 2000}, // regression
		"BenchmarkD": {NsPerOp: 5},    // new, informational only
	}
	var buf bytes.Buffer
	got, missing := compare(base, fresh, 1.5, &buf)
	if len(got) != 1 || got[0] != "BenchmarkB" {
		t.Fatalf("regressions = %v, want [BenchmarkB]", got)
	}
	if len(missing) != 1 || missing[0] != "BenchmarkC" {
		t.Fatalf("missing = %v, want [BenchmarkC]", missing)
	}
	out := buf.String()
	for _, want := range []string{"REGRESSION", "MISSING", "NEW"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestDiffFailsOnInjectedRegression is the acceptance check: emit a
// baseline, then feed a run where one benchmark slowed beyond the
// threshold — diff must return an error (nonzero exit in main).
func TestDiffFailsOnInjectedRegression(t *testing.T) {
	dir := t.TempDir()
	raw := filepath.Join(dir, "raw.txt")
	if err := os.WriteFile(raw, []byte(sampleBenchOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	baseline := filepath.Join(dir, "baseline.json")
	if err := emitBaseline(raw, baseline, "test baseline"); err != nil {
		t.Fatal(err)
	}
	if data, err := os.ReadFile(baseline); err != nil || !strings.Contains(string(data), "test baseline") {
		t.Fatalf("note not stored in baseline (err %v)", err)
	}
	var bl Baseline
	data, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &bl); err != nil {
		t.Fatal(err)
	}
	if len(bl.Benchmarks) != 3 {
		t.Fatalf("baseline has %d benchmarks, want 3", len(bl.Benchmarks))
	}

	// Same run, but Fig9 2.5x slower than baseline.
	slowed := strings.Replace(sampleBenchOutput, "123456789 ns/op", "308641972 ns/op", 1)
	slowRaw := filepath.Join(dir, "slow.txt")
	if err := os.WriteFile(slowRaw, []byte(slowed), 0o644); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := diff(baseline, slowRaw, 1.5, false, &buf); err == nil {
		t.Fatalf("diff passed an injected 2.5x regression:\n%s", buf.String())
	} else if !strings.Contains(err.Error(), "BenchmarkFig9MainComparison") {
		t.Fatalf("error %q does not name the regressed benchmark", err)
	}

	// Warn mode reports but does not fail.
	buf.Reset()
	if err := diff(baseline, slowRaw, 1.5, true, &buf); err != nil {
		t.Fatalf("warn mode failed: %v", err)
	}
	if !strings.Contains(buf.String(), "WARNING") {
		t.Fatalf("warn mode did not report:\n%s", buf.String())
	}

	// The unmodified run passes.
	buf.Reset()
	if err := diff(baseline, raw, 1.5, false, &buf); err != nil {
		t.Fatalf("identical run flagged: %v", err)
	}
}

// TestDiffFailsOnMissingBenchmark: a benchmark present in the baseline but
// absent from the fresh run fails the gate (unless -warn) — deleting or
// renaming a benchmark must not silently pass the comparison.
func TestDiffFailsOnMissingBenchmark(t *testing.T) {
	dir := t.TempDir()
	raw := filepath.Join(dir, "raw.txt")
	if err := os.WriteFile(raw, []byte(sampleBenchOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	baseline := filepath.Join(dir, "baseline.json")
	if err := emitBaseline(raw, baseline, ""); err != nil {
		t.Fatal(err)
	}

	// The fresh run lost BenchmarkTilingSweep.
	var kept []string
	for _, line := range strings.Split(sampleBenchOutput, "\n") {
		if !strings.HasPrefix(line, "BenchmarkTilingSweep") {
			kept = append(kept, line)
		}
	}
	lossyRaw := filepath.Join(dir, "lossy.txt")
	if err := os.WriteFile(lossyRaw, []byte(strings.Join(kept, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	err := diff(baseline, lossyRaw, 1.5, false, &buf)
	if err == nil {
		t.Fatalf("diff passed with a baseline benchmark missing:\n%s", buf.String())
	}
	if !strings.Contains(err.Error(), "BenchmarkTilingSweep") || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("error %q does not name the missing benchmark", err)
	}

	// -warn downgrades the missing benchmark to a report.
	buf.Reset()
	if err := diff(baseline, lossyRaw, 1.5, true, &buf); err != nil {
		t.Fatalf("warn mode failed on missing benchmark: %v", err)
	}
	if !strings.Contains(buf.String(), "WARNING") || !strings.Contains(buf.String(), "MISSING") {
		t.Fatalf("warn mode did not report the missing benchmark:\n%s", buf.String())
	}
}

// Example_baselineComparison shows the comparison underneath
// `benchdiff -baseline ... -new ...`: each baseline benchmark is matched
// against the fresh run and flagged once its ns/op ratio exceeds the
// threshold. scripts/ci.sh runs exactly this against BENCH_baseline.json.
func Example_baselineComparison() {
	baseline := map[string]Result{
		"BenchmarkDecideFull360":      {NsPerOp: 36000},
		"BenchmarkOverlapCapExact":    {NsPerOp: 3100},
		"BenchmarkOverlapTableLookup": {NsPerOp: 580},
	}
	fresh := map[string]Result{
		"BenchmarkDecideFull360":      {NsPerOp: 39000}, // x1.08: noise
		"BenchmarkOverlapCapExact":    {NsPerOp: 6500},  // x2.10: regression
		"BenchmarkOverlapTableLookup": {NsPerOp: 575},
	}
	regressions, _ := compare(baseline, fresh, 1.5, os.Stdout)
	fmt.Println("regressed:", regressions)
	// Output:
	// ok       BenchmarkDecideFull360                          36000 ->        39000 ns/op (x1.08)
	// REGRESSION BenchmarkOverlapCapExact                         3100 ->         6500 ns/op (x2.10)
	// ok       BenchmarkOverlapTableLookup                       580 ->          575 ns/op (x0.99)
	// regressed: [BenchmarkOverlapCapExact]
}
