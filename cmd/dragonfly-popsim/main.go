// Command dragonfly-popsim runs population-scale scheme sweeps: it samples
// a synthetic population of viewers (motion class × network class mixtures),
// plays every member under every scheme, and streams the finished sessions
// into per-(scheme, cohort) quantile sketches. Memory stays bounded by the
// sketch geometry, so million-session populations run in a fixed footprint.
// Same seed ⇒ identical merged rollup for any -workers or -shards value
// (see docs/PERFORMANCE.md, "Population sweeps").
//
// Usage:
//
//	dragonfly-popsim -sessions 100000 -schemes dragonfly,pano -seed 7
//	dragonfly-popsim -sessions 1000000 -shards 4 -out rollup.json
//	dragonfly-popsim -shard-index 2 -shard-count 4 -snapshot -   # one shard
package main

import (
	"bytes"
	"flag"
	"io"
	"log"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"time"

	"dragonfly/internal/obs"
	"dragonfly/internal/popsim"
	"dragonfly/internal/video"
)

func main() {
	sessions := flag.Int("sessions", 100_000, "population size (each member plays once per scheme)")
	schemes := flag.String("schemes", "dragonfly,flare,pano", "comma-separated sim registry scheme keys")
	seed := flag.Int64("seed", 1, "population seed (same seed = identical rollup)")
	duration := flag.Duration("duration", 30*time.Second, "per-member trace duration")
	scale := flag.String("scale", "small", "video dataset scale: small (one 8x8 video) or full (paper's 7 videos)")
	workers := flag.Int("workers", 0, "simulation workers per process (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 1, "spawn this many shard subprocesses and merge their snapshots")
	shardIndex := flag.Int("shard-index", 0, "run only this shard of -shard-count (subprocess mode)")
	shardCount := flag.Int("shard-count", 0, "total shards this process is one of (0 = whole population)")
	out := flag.String("out", "-", "file for the merged rollup summary JSON ('-' = stdout)")
	snapshot := flag.String("snapshot", "", "write the mergeable JSONL sketch snapshot instead of the summary ('-' = stdout)")
	metricsOut := flag.String("metrics-out", "", "file to dump the pop_* metrics registry as JSON on exit")
	flag.Parse()

	keys := splitSchemes(*schemes)
	if len(keys) == 0 {
		log.Fatal("no schemes given")
	}

	model := popsim.DefaultModel(*seed)
	model.Duration = *duration

	if *shards > 1 {
		if *shardCount != 0 {
			log.Fatal("-shards (coordinator) and -shard-count (subprocess) are mutually exclusive")
		}
		coordinate(*shards, *out, *snapshot)
		return
	}

	reg := obs.NewRegistry()
	sw := popsim.Sweep{
		Videos:     videosFor(*scale),
		Schemes:    keys,
		Sessions:   *sessions,
		Model:      model,
		Workers:    *workers,
		ShardIndex: *shardIndex,
		ShardCount: *shardCount,
		Obs:        reg,
	}
	rollup, st, err := popsim.Run(sw)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("shard %d/%d: %d sessions in %s (%.0f sessions/sec)",
		sw.ShardIndex, max(sw.ShardCount, 1), st.Sessions, st.Wall.Round(time.Millisecond), st.SessionsPerSec)

	if *metricsOut != "" {
		writeTo(*metricsOut, func(w io.Writer) error { return reg.WriteJSON(w) })
	}
	if *snapshot != "" {
		writeTo(*snapshot, func(w io.Writer) error {
			return rollup.WriteSnapshot(w, sw.ShardIndex, max(sw.ShardCount, 1))
		})
		return
	}
	writeSummary(*out, rollup)
}

// coordinate re-execs this binary once per shard (forwarding every flag the
// shards need), merges the snapshots the children write to stdout, and
// prints the combined rollup. Children run concurrently; merge order is
// irrelevant by construction, but we keep shard order for tidy logs.
func coordinate(shards int, out, snapshot string) {
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	args := shardArgs()
	outs := make([]bytes.Buffer, shards)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for shard := 0; shard < shards; shard++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			cmd := exec.Command(exe, append(args,
				"-shard-index", strconv.Itoa(shard),
				"-shard-count", strconv.Itoa(shards),
				"-snapshot", "-")...)
			cmd.Stdout = &outs[shard]
			cmd.Stderr = os.Stderr
			errs[shard] = cmd.Run()
		}(shard)
	}
	wg.Wait()
	merged := popsim.NewRollup(popsim.Geometry{})
	for shard := 0; shard < shards; shard++ {
		if errs[shard] != nil {
			log.Fatalf("shard %d: %v", shard, errs[shard])
		}
		if err := merged.MergeSnapshot(&outs[shard]); err != nil {
			log.Fatalf("shard %d snapshot: %v", shard, err)
		}
	}
	log.Printf("merged %d shards: %d sessions total", shards, merged.Sessions())
	if snapshot != "" {
		writeTo(snapshot, func(w io.Writer) error { return merged.WriteSnapshot(w, 0, 1) })
		return
	}
	writeSummary(out, merged)
}

// shardArgs rebuilds the flag list to forward to shard subprocesses —
// everything the user set except the coordinator/output flags.
func shardArgs() []string {
	var args []string
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "shards", "out", "snapshot", "metrics-out", "shard-index", "shard-count":
			return
		}
		args = append(args, "-"+f.Name, f.Value.String())
	})
	return args
}

func videosFor(scale string) []*video.Manifest {
	switch scale {
	case "full":
		return video.DefaultDataset()
	case "small":
		return []*video.Manifest{video.Generate(video.GenParams{
			ID: "pop1", Rows: 8, Cols: 8, NumChunks: 15,
			TargetQP42Mbps: 0.9, TargetQP22Mbps: 10.4, MotionLevel: 0.3, Seed: 101,
		})}
	default:
		log.Fatalf("unknown scale %q (want small or full)", scale)
		return nil
	}
}

func writeSummary(path string, r *popsim.Rollup) {
	writeTo(path, func(w io.Writer) error {
		b, err := r.SummaryJSON()
		if err != nil {
			return err
		}
		_, err = w.Write(append(b, '\n'))
		return err
	})
}

// writeTo writes through fn to path, with "-" meaning stdout.
func writeTo(path string, fn func(io.Writer) error) {
	if path == "-" {
		if err := fn(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := fn(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", path)
}

func splitSchemes(s string) []string {
	var keys []string
	for _, k := range strings.Split(s, ",") {
		if k = strings.TrimSpace(k); k != "" {
			keys = append(keys, k)
		}
	}
	return keys
}
