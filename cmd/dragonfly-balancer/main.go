// Command dragonfly-balancer fronts a fleet of dragonfly-server instances:
// it health-checks every backend with wire-protocol ping probes, routes
// each new session to the least-loaded healthy member (scraping queue
// depth from the servers' admin endpoints when available), and steers
// reconnecting clients away from dead or draining hosts — the client's
// resume bitmap rebuilds its session on the new server for free.
//
// Usage:
//
//	dragonfly-balancer -addr :7360 -backends 10.0.0.1:7361,10.0.0.2:7361
//	dragonfly-balancer -backends "10.0.0.1:7361@10.0.0.1:8080,10.0.0.2:7361"
//
// A backend given as addr@admin also has its obs /metrics endpoint scraped
// for the srv_queue_bytes load signal; without @admin the score uses the
// probe-reported session count alone.
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dragonfly/internal/balancer"
	"dragonfly/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7360", "listen address for client sessions")
	backends := flag.String("backends", "", "comma-separated backend list, each addr or addr@adminAddr")
	probeInterval := flag.Duration("probe-interval", balancer.DefaultProbeInterval, "health-check period per backend")
	probeTimeout := flag.Duration("probe-timeout", balancer.DefaultProbeTimeout, "per-probe dial+exchange deadline")
	failThreshold := flag.Int("fail-threshold", balancer.DefaultFailThreshold, "consecutive probe failures before a backend is unhealthy")
	recoverThreshold := flag.Int("recover-threshold", balancer.DefaultRecoverThreshold, "consecutive probe successes before an unhealthy backend is routable again")
	dialTimeout := flag.Duration("dial-timeout", balancer.DefaultDialTimeout, "backend connect timeout when routing a session")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive dial/probe failures before a member's circuit opens (0 = 2x fail-threshold, negative = off)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "how long an open circuit skips a member before the half-open trial (0 = 4x probe-interval)")
	spliceStallBudget := flag.Duration("splice-stall-budget", 0, "cumulative excess write-stall time per spliced session before a slowloris peer is severed (0 = off)")
	metricsMaxAge := flag.Duration("metrics-max-age", 0, "trust window for backend load data before falling back to round-robin (0 = 4x probe interval)")
	adminAddr := flag.String("admin", "", "admin HTTP listen address serving the balancer's own /metrics (empty = off)")
	flag.Parse()

	if *backends == "" {
		log.Fatal("at least one -backends entry is required")
	}
	var cfgs []balancer.BackendConfig
	for _, spec := range strings.Split(*backends, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		bc := balancer.BackendConfig{Addr: spec}
		if at := strings.IndexByte(spec, '@'); at >= 0 {
			bc.Addr, bc.AdminAddr = spec[:at], spec[at+1:]
		}
		cfgs = append(cfgs, bc)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		log.Printf("signal: shutting down")
		cancel()
	}()

	reg := obs.NewRegistry()
	if *adminAddr != "" {
		adminListen, adminErr, err := obs.ServeAdmin(ctx, *adminAddr, reg)
		if err != nil {
			log.Fatalf("admin listener: %v", err)
		}
		go func() {
			if err := <-adminErr; err != nil {
				log.Printf("admin listener: %v", err)
			}
		}()
		log.Printf("admin endpoint on http://%s (/metrics, /debug/pprof/)", adminListen)
	}

	bl, err := balancer.New(balancer.Config{
		Backends:          cfgs,
		ProbeInterval:     *probeInterval,
		ProbeTimeout:      *probeTimeout,
		FailThreshold:     *failThreshold,
		RecoverThreshold:  *recoverThreshold,
		DialTimeout:       *dialTimeout,
		BreakerThreshold:  *breakerThreshold,
		BreakerCooldown:   *breakerCooldown,
		SpliceStallBudget: *spliceStallBudget,
		MetricsMaxAge:     *metricsMaxAge,
		Obs:               reg,
		Logf:              log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Periodic status line: one glance tells which members carry traffic.
	go func() {
		t := time.NewTicker(10 * time.Second)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				for _, st := range bl.Status() {
					log.Printf("backend %s healthy=%v draining=%v conns=%d routed=%d queue=%dB",
						st.Addr, st.Healthy, st.Draining, st.ActiveConns, st.Routed, st.QueueBytes)
				}
			}
		}
	}()
	if err := bl.ListenAndServe(ctx, *addr); err != nil && ctx.Err() == nil {
		log.Fatal(err)
	}
}
