// Command dragonfly-server runs the tile server over TCP, optionally
// shaping each connection's downstream bandwidth with a trace file — the
// role Mahimahi plays in the paper's testbed.
//
// Usage:
//
//	dragonfly-server -addr :7360                   # serve the Table 3 dataset
//	dragonfly-server -addr :7360 -bw trace.csv     # shape downstream bandwidth
//	dragonfly-server -addr :7360 -faults f.csv     # replay a fault script
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dragonfly/internal/ingest"
	"dragonfly/internal/netem"
	"dragonfly/internal/obs"
	"dragonfly/internal/server"
	"dragonfly/internal/trace"
	"dragonfly/internal/video"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7360", "listen address")
	bwFile := flag.String("bw", "", "bandwidth trace CSV to shape each connection (empty = unshaped)")
	latency := flag.Duration("latency", 0, "one-way propagation delay to add")
	chunks := flag.Int("chunks", 60, "chunks per generated video (60 = 1 minute)")
	faultFile := flag.String("faults", "", "fault schedule CSV to replay on the link (see EXPERIMENTS.md)")
	readTimeout := flag.Duration("read-timeout", 30*time.Second, "per-connection read deadline (0 = none)")
	writeTimeout := flag.Duration("write-timeout", 10*time.Second, "per-frame write deadline (0 = none)")
	heartbeat := flag.Duration("heartbeat", server.DefaultHeartbeat, "idle-link ping interval (negative = off)")
	maxQueue := flag.Int("max-queue", server.DefaultMaxQueue, "send-queue bound before slow-client shedding")
	maxQueueBytes := flag.Int64("max-queue-bytes", 0, "per-session queued payload budget in bytes before shedding (0 = count bound only)")
	maxConns := flag.Int("max-conns", 0, "admission limit; extra connections are fast-rejected with a retryable busy error (0 = unlimited)")
	writeStallBudget := flag.Duration("write-stall-budget", 0, "cumulative excess write-stall time per session before a slowloris peer is killed (0 = off)")
	adminAddr := flag.String("admin", "", "admin HTTP listen address serving /metrics and /debug/pprof/ (empty = off)")
	traceDir := flag.String("trace-dir", "", "directory for server-view JSONL session traces for the ingest tier (empty = off)")
	qoeRollup := flag.String("qoe-rollup", "", "ingest /rollup URL to poll for per-cohort shed-budget scales (empty = off)")
	qoePoll := flag.Duration("qoe-poll", 2*time.Second, "rollup poll interval; data older than 3x is treated as stale (neutral scales)")
	qoeTarget := flag.Float64("qoe-target", 40, "per-cohort viewport-quality budget in dB for the feedback loop")
	flag.Parse()

	var manifests []*video.Manifest
	for _, e := range video.Table3 {
		manifests = append(manifests, video.Generate(video.GenParams{
			ID:             e.ID,
			NumChunks:      *chunks,
			TargetQP42Mbps: e.QP42Mbps,
			TargetQP22Mbps: e.QP22Mbps,
			MotionLevel:    e.MotionLevel,
			Seed:           e.Seed,
		}))
	}
	srv := server.New(manifests...)
	srv.Logf = log.Printf
	srv.ReadTimeout = *readTimeout
	srv.WriteTimeout = *writeTimeout
	srv.Heartbeat = *heartbeat
	srv.MaxQueue = *maxQueue
	srv.MaxQueueBytes = *maxQueueBytes
	srv.MaxConns = *maxConns
	srv.WriteStallBudget = *writeStallBudget
	srv.TraceDir = *traceDir

	var link netem.Link
	if *bwFile != "" {
		f, err := os.Open(*bwFile)
		if err != nil {
			log.Fatalf("open bandwidth trace: %v", err)
		}
		tr, err := trace.ReadBandwidthCSV(f)
		f.Close()
		if err != nil {
			log.Fatalf("parse bandwidth trace: %v", err)
		}
		link.Trace = tr
		fmt.Printf("shaping downstream with %s (mean %.1f Mbps over %s)\n",
			tr.ID, tr.Mean(), tr.Duration().Round(time.Second))
	}
	link.Latency = *latency

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	var listener net.Listener = l
	if *faultFile != "" {
		f, err := os.Open(*faultFile)
		if err != nil {
			log.Fatalf("open fault schedule: %v", err)
		}
		sched, err := netem.ReadFaultCSV(f)
		f.Close()
		if err != nil {
			log.Fatalf("parse fault schedule: %v", err)
		}
		fl := &netem.FaultLink{Link: link, Schedule: sched}
		listener = &netem.FaultListener{Listener: l, FL: fl}
		fmt.Printf("injecting %d faults (%d disconnects)\n", len(sched.Events), sched.Disconnects())
	} else if link.Trace != nil || link.Latency > 0 {
		listener = netem.WrapListener(l, link)
	}

	// First signal drains: in-flight sessions finish while new connections
	// are fast-rejected with a retryable busy error. A second signal exits.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		log.Printf("draining: %d active sessions, rejecting new connections (signal again to exit)",
			srv.ActiveConns())
		srv.Drain()
		<-sigc
		log.Printf("second signal: shutting down")
		cancel()
	}()
	if *qoeRollup != "" {
		if srv.Obs == nil {
			srv.Obs = obs.NewRegistry()
		}
		fb := ingest.NewFeedback(ingest.FeedbackConfig{
			URL:      *qoeRollup,
			Interval: *qoePoll,
			TargetDB: *qoeTarget,
			Obs:      srv.Obs,
		})
		srv.QoE = fb
		go fb.Run(ctx)
		log.Printf("QoE feedback: polling %s every %s (target %.1f dB)", *qoeRollup, *qoePoll, *qoeTarget)
	}
	if *adminAddr != "" {
		if srv.Obs == nil {
			srv.Obs = obs.NewRegistry()
		}
		adminListen, adminErr, err := obs.ServeAdmin(ctx, *adminAddr, srv.Obs)
		if err != nil {
			log.Fatalf("admin listener: %v", err)
		}
		go func() {
			if err := <-adminErr; err != nil {
				log.Printf("admin listener: %v", err)
			}
		}()
		log.Printf("admin endpoint on http://%s (/metrics, /debug/pprof/)", adminListen)
	}
	log.Printf("dragonfly server on %s serving %v", l.Addr(), srv.Videos())
	if err := srv.Serve(ctx, listener); err != nil && ctx.Err() == nil {
		log.Fatal(err)
	}
}
