// Command experiment regenerates the paper's tables and figures.
//
// Usage:
//
//	experiment -list
//	experiment -run fig9              # one experiment at paper scale
//	experiment -run all -scale small  # everything, scaled down
//	experiment -run fig14-17 -study-users 26
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"dragonfly/internal/experiments"
	"dragonfly/internal/obs"
	"dragonfly/internal/sim"
)

func main() {
	run := flag.String("run", "all", "experiment ID to run, or 'all'")
	scale := flag.String("scale", "full", "dataset scale: full (paper) or small (quick)")
	studyUsers := flag.Int("study-users", 26, "participants in the user-study simulation")
	csvDir := flag.String("csv", "", "directory to also dump CDF series as CSV (Figs 9, 11, 12)")
	traceDir := flag.String("trace-dir", "", "directory for per-session JSONL event traces (one subdirectory per experiment)")
	metricsOut := flag.String("metrics-out", "", "file to dump the aggregated metrics registry as JSON on exit")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All(*studyUsers) {
			fmt.Printf("%-10s %s\n", e.ID, e.Description)
		}
		return
	}

	var env *experiments.Env
	switch *scale {
	case "full":
		log.Printf("building paper-scale environment (7 videos, 10 users, 11+10 traces)...")
		env = experiments.DefaultEnv()
	case "small":
		env = experiments.SmallEnv()
	default:
		log.Fatalf("unknown scale %q", *scale)
	}
	env.CSVDir = *csvDir
	env.Obs = obs.NewRegistry()

	dumpMetrics := func() {
		if *metricsOut == "" {
			return
		}
		f, err := os.Create(*metricsOut)
		if err != nil {
			log.Fatalf("metrics: %v", err)
		}
		if err := env.Obs.WriteJSON(f); err != nil {
			log.Fatalf("metrics: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("metrics: %v", err)
		}
		log.Printf("wrote metrics registry to %s", *metricsOut)
	}

	runOne := func(e experiments.Experiment) {
		if *traceDir != "" {
			env.TraceDir = filepath.Join(*traceDir, e.ID)
		}
		env.LastSweep = sim.Stats{}
		begin := time.Now()
		if err := e.Run(env, os.Stdout); err != nil {
			log.Fatalf("%s: %v", e.ID, err)
		}
		wall := time.Since(begin).Round(time.Millisecond)
		if s := env.LastSweep; s.Sessions > 0 {
			fmt.Printf("[%s done in %s; last sweep: %d sessions in %s, %.1f sessions/s]\n\n",
				e.ID, wall, s.Sessions, s.Wall.Round(time.Millisecond), s.SessionsPerSec)
		} else {
			fmt.Printf("[%s done in %s]\n\n", e.ID, wall)
		}
	}

	if *run == "all" {
		for _, e := range experiments.All(*studyUsers) {
			runOne(e)
		}
		dumpMetrics()
		return
	}
	e, ok := experiments.Find(*run, *studyUsers)
	if !ok {
		log.Fatalf("unknown experiment %q (use -list)", *run)
	}
	runOne(e)
	dumpMetrics()
}
