// Command experiment regenerates the paper's tables and figures.
//
// Usage:
//
//	experiment -list
//	experiment -run fig9              # one experiment at paper scale
//	experiment -run all -scale small  # everything, scaled down
//	experiment -run fig14-17 -study-users 26
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"dragonfly/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "experiment ID to run, or 'all'")
	scale := flag.String("scale", "full", "dataset scale: full (paper) or small (quick)")
	studyUsers := flag.Int("study-users", 26, "participants in the user-study simulation")
	csvDir := flag.String("csv", "", "directory to also dump CDF series as CSV (Figs 9, 11, 12)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All(*studyUsers) {
			fmt.Printf("%-10s %s\n", e.ID, e.Description)
		}
		return
	}

	var env *experiments.Env
	switch *scale {
	case "full":
		log.Printf("building paper-scale environment (7 videos, 10 users, 11+10 traces)...")
		env = experiments.DefaultEnv()
	case "small":
		env = experiments.SmallEnv()
	default:
		log.Fatalf("unknown scale %q", *scale)
	}
	env.CSVDir = *csvDir

	runOne := func(e experiments.Experiment) {
		begin := time.Now()
		if err := e.Run(env, os.Stdout); err != nil {
			log.Fatalf("%s: %v", e.ID, err)
		}
		fmt.Printf("[%s done in %s]\n\n", e.ID, time.Since(begin).Round(time.Millisecond))
	}

	if *run == "all" {
		for _, e := range experiments.All(*studyUsers) {
			runOne(e)
		}
		return
	}
	e, ok := experiments.Find(*run, *studyUsers)
	if !ok {
		log.Fatalf("unknown experiment %q (use -list)", *run)
	}
	runOne(e)
}
