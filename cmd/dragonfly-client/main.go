// Command dragonfly-client streams a video from a dragonfly-server with any
// of the implemented schemes, replaying a (synthetic or recorded) head
// trace in real time, and prints the session's quality metrics.
//
// Usage:
//
//	dragonfly-client -addr 127.0.0.1:7360 -video v8 -scheme dragonfly
//	dragonfly-client -video v1 -scheme flare -motion high -duration 30s
//	dragonfly-client -video v1 -head trace.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"
	"time"

	"dragonfly/internal/client"
	"dragonfly/internal/obs"
	"dragonfly/internal/sim"
	"dragonfly/internal/trace"
	"dragonfly/internal/video"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7360", "server address, or a comma-separated list (balancer-free failover: sessions rotate across members with per-address backoff)")
	videoID := flag.String("video", "v1", "video ID to stream")
	schemeKey := flag.String("scheme", "dragonfly", "scheme: dragonfly, flare, pano, twotier, ...")
	motion := flag.String("motion", "medium", "synthetic user motion: low, medium, high")
	headFile := flag.String("head", "", "head-trace CSV to replay instead of a synthetic user")
	duration := flag.Duration("duration", time.Minute, "synthetic head-trace duration")
	seed := flag.Int64("seed", 1, "synthetic head-trace seed")
	dialTimeout := flag.Duration("dial-timeout", client.DefaultDialTimeout, "TCP connect timeout")
	reconnects := flag.Int("reconnect-attempts", 8, "redial budget per outage (0 = no fault tolerance)")
	readTimeout := flag.Duration("read-timeout", 5*time.Second, "idle read deadline; the server heartbeats, so a silent link this long is dead")
	writeTimeout := flag.Duration("write-timeout", 5*time.Second, "per-frame write deadline")
	traceFile := flag.String("trace", "", "write the session's event trace as JSONL to this file")
	cohort := flag.String("cohort", "", "fleet-rollup cohort label sent in the handshake (default \"<motion class>:net\")")
	flag.Parse()

	factory, ok := sim.Registry()[*schemeKey]
	if !ok {
		log.Fatalf("unknown scheme %q; known: see internal/sim.Registry", *schemeKey)
	}

	var head *trace.HeadTrace
	if *headFile != "" {
		f, err := os.Open(*headFile)
		if err != nil {
			log.Fatalf("open head trace: %v", err)
		}
		head, err = trace.ReadHeadCSV(f)
		f.Close()
		if err != nil {
			log.Fatalf("parse head trace: %v", err)
		}
	} else {
		class := trace.MotionMedium
		switch *motion {
		case "low":
			class = trace.MotionLow
		case "high":
			class = trace.MotionHigh
		case "medium":
		default:
			log.Fatalf("unknown motion class %q", *motion)
		}
		head = trace.GenerateHead(trace.HeadGenParams{
			UserID: "cli-user", Class: class, Duration: *duration, Seed: *seed,
		})
	}

	addrs := strings.Split(*addr, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}
	var dial client.DialFunc
	if len(addrs) > 1 {
		md := &client.MultiDialer{Addrs: addrs, Timeout: *dialTimeout}
		dial = md.Dial
	} else {
		dial = func() (net.Conn, error) { return client.DialTimeout(addrs[0], *dialTimeout) }
	}

	var sessionTrace *obs.Trace
	if *traceFile != "" {
		sessionTrace = obs.NewTrace(0)
	}

	scheme := factory()
	log.Printf("streaming %s with %s from %s ...", *videoID, scheme.Name(), *addr)
	begin := time.Now()
	met, err := client.PlayResilient(dial, *videoID, head, scheme, client.PlayOptions{
		Reconnect: client.ReconnectPolicy{
			MaxAttempts:  *reconnects,
			ReadTimeout:  *readTimeout,
			WriteTimeout: *writeTimeout,
			Seed:         *seed,
		},
		Trace:  sessionTrace,
		Cohort: *cohort,
	})
	if err != nil {
		log.Fatal(err)
	}
	if sessionTrace != nil {
		f, err := os.Create(*traceFile)
		if err != nil {
			log.Fatalf("session trace: %v", err)
		}
		if err := sessionTrace.WriteJSONL(f); err != nil {
			log.Fatalf("session trace: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("session trace: %v", err)
		}
		log.Printf("wrote %d events (%d dropped) to %s", sessionTrace.Len(), sessionTrace.Dropped(), *traceFile)
	}

	fmt.Printf("\nsession complete in %s\n", time.Since(begin).Round(time.Millisecond))
	fmt.Printf("  scheme            %s\n", met.SchemeName)
	fmt.Printf("  frames rendered   %d\n", met.TotalFrames)
	fmt.Printf("  median PSNR       %.2f dB (p10 %.2f, p90 %.2f)\n",
		met.MedianScore(), met.ScorePercentile(10), met.ScorePercentile(90))
	fmt.Printf("  startup delay     %s\n", met.StartupDelay.Round(time.Millisecond))
	fmt.Printf("  rebuffering       %.2f%% (%d stalls)\n", 100*met.RebufferRatio(), met.StallEvents)
	fmt.Printf("  incomplete frames %.2f%%\n", met.IncompleteFramePct())
	if met.Disconnects > 0 {
		fmt.Printf("  disconnects       %d (outage %s, %d tiles resumed)\n",
			met.Disconnects, met.OutageDuration.Round(time.Millisecond), met.ResumedTiles)
	}
	if met.CorruptFrames > 0 || met.CorruptTiles > 0 {
		fmt.Printf("  corruption        %d frames failed checksum, %d tiles dropped+refetched\n",
			met.CorruptFrames, met.CorruptTiles)
	}
	if met.BusyRejects > 0 {
		fmt.Printf("  busy rejects      %d (server at capacity; retried with backoff)\n", met.BusyRejects)
	}
	fmt.Printf("  bytes received    %.2f MB (wastage %.1f%%)\n",
		float64(met.BytesReceived)/1e6, met.WastagePct())
	fmt.Printf("  tile sources      ")
	for q := video.Quality(0); q < video.NumQualities; q++ {
		fmt.Printf("q%d(QP%d)=%.1f%% ", q, q.QP(), 100*met.QualityShare(q))
	}
	fmt.Printf("masked=%.1f%% blank=%.1f%%\n", 100*met.MaskingShare(), 100*met.BlankShare())
}
