package video

import (
	"sort"

	"dragonfly/internal/geom"
)

// Pano's variable tiling (paper §4.3 and Appendix "Compression benefits of
// using Pano's variable tiling"): each chunk is split into ~30 variably
// sized groups of tiles with similar quality sensitivity; all tiles in a
// group are fetched at the same quality, and the grouped (larger) tiles
// compress better than 144 independent fixed tiles, especially at low rates.

// DefaultGroupCount is the number of tile groups Pano forms per chunk.
const DefaultGroupCount = 30

// QualitySensitivity returns the PSNR spread of a tile between the highest
// and lowest encodings: Pano's grouping criterion ("pixels with a similar
// quality sensitivity to changes in encoding parameters").
func QualitySensitivity(m *Manifest, chunk int, tile geom.TileID) float64 {
	return m.TilePSNR(chunk, tile, Highest) - m.TilePSNR(chunk, tile, Lowest)
}

// GroupTiles partitions the chunk's tiles into n groups of similar quality
// sensitivity: tiles are sorted by sensitivity and cut into n contiguous
// runs. Every tile appears in exactly one group; groups are non-empty when
// n <= NumTiles.
func GroupTiles(m *Manifest, chunk, n int) [][]geom.TileID {
	tiles := m.NumTiles()
	if n <= 0 {
		n = DefaultGroupCount
	}
	if n > tiles {
		n = tiles
	}
	ids := make([]geom.TileID, tiles)
	for i := range ids {
		ids[i] = geom.TileID(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		sa := QualitySensitivity(m, chunk, ids[a])
		sb := QualitySensitivity(m, chunk, ids[b])
		if sa != sb {
			return sa < sb
		}
		return ids[a] < ids[b]
	})
	groups := make([][]geom.TileID, 0, n)
	for g := 0; g < n; g++ {
		lo := g * tiles / n
		hi := (g + 1) * tiles / n
		if lo == hi {
			continue
		}
		groups = append(groups, append([]geom.TileID(nil), ids[lo:hi]...))
	}
	return groups
}

// groupCompressionSaving is the fraction of the fixed-tiling overhead that
// merging tiles into a group recovers, per quality. Intra-frame prediction
// across tile boundaries matters at low rates and is negligible at high
// rates (paper Fig 20: the F/V overhead ratio shrinks at high quality).
var groupCompressionSaving = [NumQualities]float64{0.85, 0.80, 0.70, 0.55, 0.40}

// GroupSize returns the encoded size of a tile group at quality q: the sum
// of the member tiles' payloads minus the recovered tiling overhead, plus a
// single header instead of one per tile.
func GroupSize(m *Manifest, chunk int, group []geom.TileID, q Quality) int64 {
	var payload int64
	for _, t := range group {
		payload += m.TileSize(chunk, t, q) - perTileHeaderBytes
	}
	// Remove the recovered share of the tiling overhead baked into payloads.
	oh := tilingOverhead[q]
	recovered := float64(payload) * (oh / (1 + oh)) * groupCompressionSaving[q] *
		groupScale(len(group))
	return payload - int64(recovered) + perTileHeaderBytes
}

// groupScale discounts the recovered overhead for small groups: a singleton
// group saves nothing, large groups approach the full saving.
func groupScale(n int) float64 {
	if n <= 1 {
		return 0
	}
	s := float64(n-1) / float64(n)
	return s
}

// GroupedChunkSize returns the total size of the chunk at quality q when
// encoded as grouped variable tiles (Pano's "V" in Fig 20's F/V ratio).
func GroupedChunkSize(m *Manifest, chunk int, groups [][]geom.TileID, q Quality) int64 {
	var total int64
	for _, g := range groups {
		total += GroupSize(m, chunk, g, q)
	}
	return total
}
