package video

// DatasetEntry records one video of the paper's evaluation set with its
// Table 3 bitrate targets and a qualitative motion level (the dataset of
// [34] classifies videos by camera motion and moving objects).
type DatasetEntry struct {
	ID          string
	QP42Mbps    float64 // median full-360° bitrate at QP 42
	QP22Mbps    float64 // median full-360° bitrate at QP 22
	MotionLevel float64 // 0 = static scene, 1 = heavy camera/object motion
	Seed        int64
}

// Table3 lists the seven videos used throughout the paper's emulation
// experiments, with the median bitrates of Table 3 (sorted by QP 42 rate).
var Table3 = []DatasetEntry{
	{ID: "v1", QP42Mbps: 0.9, QP22Mbps: 10.4, MotionLevel: 0.15, Seed: 101},
	{ID: "v2", QP42Mbps: 1.2, QP22Mbps: 10.5, MotionLevel: 0.25, Seed: 102},
	{ID: "v7", QP42Mbps: 1.7, QP22Mbps: 24.4, MotionLevel: 0.40, Seed: 107},
	{ID: "v8", QP42Mbps: 3.1, QP22Mbps: 28.4, MotionLevel: 0.55, Seed: 108},
	{ID: "v14", QP42Mbps: 3.3, QP22Mbps: 27.8, MotionLevel: 0.60, Seed: 114},
	{ID: "v28", QP42Mbps: 3.6, QP22Mbps: 30.9, MotionLevel: 0.70, Seed: 128},
	{ID: "v27", QP42Mbps: 4.6, QP22Mbps: 49.6, MotionLevel: 0.85, Seed: 127},
}

// DefaultDataset generates the seven Table 3 videos with the paper's
// evaluation configuration (12×12 tiles, 1-second chunks, 1-minute videos).
func DefaultDataset() []*Manifest {
	return GenerateDataset(Table3)
}

// GenerateDataset synthesizes one manifest per entry.
func GenerateDataset(entries []DatasetEntry) []*Manifest {
	out := make([]*Manifest, 0, len(entries))
	for _, e := range entries {
		out = append(out, Generate(GenParams{
			ID:             e.ID,
			TargetQP42Mbps: e.QP42Mbps,
			TargetQP22Mbps: e.QP22Mbps,
			MotionLevel:    e.MotionLevel,
			Seed:           e.Seed,
		}))
	}
	return out
}
