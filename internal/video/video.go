// Package video models tiled 360° video content: temporal chunks, spatial
// tiles, per-tile encodings at multiple quality levels, and the quality
// metrics (PSNR, PSPNR) the schedulers consume.
//
// The original Dragonfly prototype derives this information from real videos
// with ffmpeg and VQMT. Here a seeded synthetic encoder (see gen.go)
// produces manifests whose joint size/quality statistics are calibrated to
// the paper's Table 3 and Figure 24; the streaming algorithms only ever see
// the manifest, so their behavior is preserved (DESIGN.md §3).
package video

import (
	"fmt"
	"sort"
	"sync"

	"dragonfly/internal/geom"
)

// Quality indexes an encoding level, ascending: 0 is the lowest quality
// (QP 42, used as the masking stream by two-stream schemes) and
// NumQualities-1 is the highest (QP 22).
type Quality int

// NumQualities is the number of encoded quality levels per tile.
const NumQualities = 5

// QPs maps Quality to the H.264/H.265 quantization parameter of that level,
// matching the paper's encodings (§4.2).
var QPs = [NumQualities]int{42, 37, 32, 27, 22}

// Lowest and Highest name the extreme quality levels.
const (
	Lowest  Quality = 0
	Highest Quality = NumQualities - 1
)

// Valid reports whether q is a real encoding level.
func (q Quality) Valid() bool { return q >= 0 && q < NumQualities }

// QP returns the quantization parameter of the level.
func (q Quality) QP() int {
	if !q.Valid() {
		panic(fmt.Sprintf("video: invalid quality %d", q))
	}
	return QPs[q]
}

// Manifest describes one video: its tiling, chunking, and the size and
// quality of every (chunk, tile, quality) variant. It corresponds to the
// extended DASH manifest of paper §3.3 ("tile sizes, the quality metric for
// that tile ... for all quality levels, and the yaw and pitch displacements
// on a per-chunk basis").
type Manifest struct {
	VideoID     string
	Rows, Cols  int
	FPS         int // frames per second
	ChunkFrames int // frames per chunk (1-second chunks => ChunkFrames == FPS)
	NumChunks   int

	// Flattened [chunk][tile][quality] arrays; see index().
	sizes []int64   // bytes of each encoded tile variant
	psnr  []float64 // PSNR (dB) of each variant vs. the source
	pspnr []float64 // PSPNR (dB), JND-thresholded PSNR

	// blackPSNR[chunk*tiles+tile] is the PSNR of rendering the tile black
	// (the penalty for a skipped tile with no masking version).
	blackPSNR []float64

	// full360[chunk*NumQualities+q] is the size in bytes of the whole chunk
	// encoded untiled at quality q (the full-360° masking stream variant;
	// smaller than the sum of tiles because tiling loses intra prediction).
	full360 []int64

	// MaskDisplacement[chunk] is the maximum angular displacement (degrees)
	// observed across historical user traces during that chunk; the tiled
	// masking strategy fetches this far around the predicted viewport
	// (paper §3.2, §4.5).
	MaskDisplacement []float64

	// checksums[chunk*tiles*Q + tile*Q + q] is the CRC32-C of each encoded
	// tile payload, and full360Checksums[chunk*Q + q] of each untiled
	// chunk. Empty in manifests serialized before wire v3: clients then
	// skip payload verification (see HasChecksums).
	checksums        []uint32
	full360Checksums []uint32

	// Grid() cache: a manifest's tiling never changes, and the grid
	// precomputes the per-tile sample lattice, so every session sharing a
	// manifest should share one grid.
	gridOnce sync.Once
	grid     *geom.Grid
}

// NewManifest allocates an empty manifest with the given dimensions. All
// sizes and metrics start at zero; the generator fills them in.
func NewManifest(id string, rows, cols, fps, chunkFrames, numChunks int) *Manifest {
	if rows <= 0 || cols <= 0 || fps <= 0 || chunkFrames <= 0 || numChunks <= 0 {
		panic("video: invalid manifest dimensions")
	}
	tiles := rows * cols
	return &Manifest{
		VideoID:          id,
		Rows:             rows,
		Cols:             cols,
		FPS:              fps,
		ChunkFrames:      chunkFrames,
		NumChunks:        numChunks,
		sizes:            make([]int64, numChunks*tiles*NumQualities),
		psnr:             make([]float64, numChunks*tiles*NumQualities),
		pspnr:            make([]float64, numChunks*tiles*NumQualities),
		blackPSNR:        make([]float64, numChunks*tiles),
		full360:          make([]int64, numChunks*NumQualities),
		MaskDisplacement: make([]float64, numChunks),
	}
}

// NumTiles returns tiles per chunk.
func (m *Manifest) NumTiles() int { return m.Rows * m.Cols }

// NumFrames returns the total frame count of the video.
func (m *Manifest) NumFrames() int { return m.NumChunks * m.ChunkFrames }

// Grid returns the tile grid matching this manifest. The grid is built on
// first call and cached: it is immutable, and sharing one instance lets
// every session over this manifest also share the process-wide overlap
// tables keyed off it.
func (m *Manifest) Grid() *geom.Grid {
	m.gridOnce.Do(func() { m.grid = geom.NewGrid(m.Rows, m.Cols) })
	return m.grid
}

// ChunkOfFrame returns the chunk containing the given frame index.
func (m *Manifest) ChunkOfFrame(frame int) int {
	if frame < 0 {
		return 0
	}
	c := frame / m.ChunkFrames
	if c >= m.NumChunks {
		c = m.NumChunks - 1
	}
	return c
}

// FirstFrame returns the first frame index of a chunk.
func (m *Manifest) FirstFrame(chunk int) int { return chunk * m.ChunkFrames }

func (m *Manifest) index(chunk int, tile geom.TileID, q Quality) int {
	if chunk < 0 || chunk >= m.NumChunks || int(tile) < 0 || int(tile) >= m.NumTiles() || !q.Valid() {
		panic(fmt.Sprintf("video: out of range (chunk=%d tile=%d q=%d) for %s", chunk, tile, q, m.VideoID))
	}
	return (chunk*m.NumTiles()+int(tile))*NumQualities + int(q)
}

// TileSize returns the encoded size in bytes of the tile variant.
func (m *Manifest) TileSize(chunk int, tile geom.TileID, q Quality) int64 {
	return m.sizes[m.index(chunk, tile, q)]
}

// SetTileSize sets the encoded size in bytes of the tile variant.
func (m *Manifest) SetTileSize(chunk int, tile geom.TileID, q Quality, bytes int64) {
	m.sizes[m.index(chunk, tile, q)] = bytes
}

// TilePSNR returns the PSNR in dB of the tile variant.
func (m *Manifest) TilePSNR(chunk int, tile geom.TileID, q Quality) float64 {
	return m.psnr[m.index(chunk, tile, q)]
}

// SetTilePSNR sets the PSNR in dB of the tile variant.
func (m *Manifest) SetTilePSNR(chunk int, tile geom.TileID, q Quality, db float64) {
	m.psnr[m.index(chunk, tile, q)] = db
}

// TilePSPNR returns the PSPNR in dB of the tile variant.
func (m *Manifest) TilePSPNR(chunk int, tile geom.TileID, q Quality) float64 {
	return m.pspnr[m.index(chunk, tile, q)]
}

// SetTilePSPNR sets the PSPNR in dB of the tile variant.
func (m *Manifest) SetTilePSPNR(chunk int, tile geom.TileID, q Quality, db float64) {
	m.pspnr[m.index(chunk, tile, q)] = db
}

// BlackPSNR returns the PSNR of rendering the tile as black pixels (used
// when a viewport tile is skipped and no masking version exists; §4.4
// "for skipped masking tiles, we calculate and use the PSNR of black tile").
func (m *Manifest) BlackPSNR(chunk int, tile geom.TileID) float64 {
	return m.blackPSNR[chunk*m.NumTiles()+int(tile)]
}

// SetBlackPSNR sets the black-render PSNR of a tile.
func (m *Manifest) SetBlackPSNR(chunk int, tile geom.TileID, db float64) {
	m.blackPSNR[chunk*m.NumTiles()+int(tile)] = db
}

// Full360Size returns the size in bytes of the whole chunk encoded untiled
// at quality q.
func (m *Manifest) Full360Size(chunk int, q Quality) int64 {
	if chunk < 0 || chunk >= m.NumChunks || !q.Valid() {
		panic("video: full360 index out of range")
	}
	return m.full360[chunk*NumQualities+int(q)]
}

// SetFull360Size sets the untiled chunk size at quality q.
func (m *Manifest) SetFull360Size(chunk int, q Quality, bytes int64) {
	m.full360[chunk*NumQualities+int(q)] = bytes
}

// ChunkTiledSize returns the total size of all tiles of a chunk at one
// quality — the cost of fetching the full 360° through the tiled encoding.
func (m *Manifest) ChunkTiledSize(chunk int, q Quality) int64 {
	var total int64
	for t := 0; t < m.NumTiles(); t++ {
		total += m.TileSize(chunk, geom.TileID(t), q)
	}
	return total
}

// MedianFull360Mbps returns the median across chunks of the full-360°
// bitrate at quality q, in Mbps (chunks are ChunkFrames/FPS seconds long).
// This is the statistic reported in the paper's Table 3 and Figure 24.
func (m *Manifest) MedianFull360Mbps(q Quality) float64 {
	rates := make([]float64, m.NumChunks)
	secs := float64(m.ChunkFrames) / float64(m.FPS)
	for c := 0; c < m.NumChunks; c++ {
		rates[c] = float64(m.Full360Size(c, q)) * 8 / secs / 1e6
	}
	return median(rates)
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
