package video

import (
	"encoding/json"
	"fmt"
	"io"

	"dragonfly/internal/geom"
)

// manifestJSON is the on-the-wire form of a Manifest. The flattened arrays
// use the same [chunk][tile][quality] layout as the in-memory manifest.
type manifestJSON struct {
	VideoID          string    `json:"video_id"`
	Rows             int       `json:"rows"`
	Cols             int       `json:"cols"`
	FPS              int       `json:"fps"`
	ChunkFrames      int       `json:"chunk_frames"`
	NumChunks        int       `json:"num_chunks"`
	QPs              []int     `json:"qps"`
	Sizes            []int64   `json:"sizes"`
	PSNR             []float64 `json:"psnr"`
	PSPNR            []float64 `json:"pspnr"`
	BlackPSNR        []float64 `json:"black_psnr"`
	Full360          []int64   `json:"full360"`
	MaskDisplacement []float64 `json:"mask_displacement"`

	// Payload checksums are optional for backward compatibility with
	// manifests serialized before wire v3.
	Checksums        []uint32 `json:"checksums,omitempty"`
	Full360Checksums []uint32 `json:"full360_checksums,omitempty"`
}

// WriteTo serializes the manifest as JSON.
func (m *Manifest) WriteTo(w io.Writer) (int64, error) {
	j := manifestJSON{
		VideoID:          m.VideoID,
		Rows:             m.Rows,
		Cols:             m.Cols,
		FPS:              m.FPS,
		ChunkFrames:      m.ChunkFrames,
		NumChunks:        m.NumChunks,
		QPs:              QPs[:],
		Sizes:            m.sizes,
		PSNR:             m.psnr,
		PSPNR:            m.pspnr,
		BlackPSNR:        m.blackPSNR,
		Full360:          m.full360,
		MaskDisplacement: m.MaskDisplacement,
		Checksums:        m.checksums,
		Full360Checksums: m.full360Checksums,
	}
	b, err := json.Marshal(j)
	if err != nil {
		return 0, fmt.Errorf("video: marshal manifest: %w", err)
	}
	n, err := w.Write(b)
	return int64(n), err
}

// ReadManifest parses a JSON manifest and validates its dimensions.
func ReadManifest(r io.Reader) (*Manifest, error) {
	var j manifestJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&j); err != nil {
		return nil, fmt.Errorf("video: decode manifest: %w", err)
	}
	if j.Rows <= 0 || j.Cols <= 0 || j.FPS <= 0 || j.ChunkFrames <= 0 || j.NumChunks <= 0 {
		return nil, fmt.Errorf("video: manifest %q has invalid dimensions", j.VideoID)
	}
	if len(j.QPs) != NumQualities {
		return nil, fmt.Errorf("video: manifest %q has %d quality levels, want %d", j.VideoID, len(j.QPs), NumQualities)
	}
	tiles := j.Rows * j.Cols
	wantTQ := j.NumChunks * tiles * NumQualities
	if len(j.Sizes) != wantTQ || len(j.PSNR) != wantTQ || len(j.PSPNR) != wantTQ {
		return nil, fmt.Errorf("video: manifest %q arrays have wrong length", j.VideoID)
	}
	if len(j.BlackPSNR) != j.NumChunks*tiles {
		return nil, fmt.Errorf("video: manifest %q black PSNR array has wrong length", j.VideoID)
	}
	if len(j.Full360) != j.NumChunks*NumQualities {
		return nil, fmt.Errorf("video: manifest %q full360 array has wrong length", j.VideoID)
	}
	// Checksums are all-or-nothing: a manifest carrying only part of them
	// would silently disable verification for the missing variants.
	hasSums := len(j.Checksums) > 0 || len(j.Full360Checksums) > 0
	if hasSums && (len(j.Checksums) != wantTQ || len(j.Full360Checksums) != j.NumChunks*NumQualities) {
		return nil, fmt.Errorf("video: manifest %q checksum arrays have wrong length", j.VideoID)
	}
	m := &Manifest{
		VideoID:          j.VideoID,
		Rows:             j.Rows,
		Cols:             j.Cols,
		FPS:              j.FPS,
		ChunkFrames:      j.ChunkFrames,
		NumChunks:        j.NumChunks,
		sizes:            j.Sizes,
		psnr:             j.PSNR,
		pspnr:            j.PSPNR,
		blackPSNR:        j.BlackPSNR,
		full360:          j.Full360,
		MaskDisplacement: j.MaskDisplacement,
		checksums:        j.Checksums,
		full360Checksums: j.Full360Checksums,
	}
	if m.MaskDisplacement == nil {
		m.MaskDisplacement = make([]float64, m.NumChunks)
	}
	for c := 0; c < m.NumChunks; c++ {
		for t := 0; t < tiles; t++ {
			for q := Quality(0); q < NumQualities; q++ {
				if m.TileSize(c, geom.TileID(t), q) < 0 {
					return nil, fmt.Errorf("video: manifest %q has negative tile size", j.VideoID)
				}
			}
		}
	}
	return m, nil
}
