package video

import (
	"hash/crc32"

	"dragonfly/internal/geom"
)

// payloadCastagnoli is the CRC32-C table used for tile payload checksums;
// it matches proto.PayloadChecksum, so a checksum computed at encode time
// verifies the exact bytes a client receives.
var payloadCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// zeroBuf is a shared scratch block for checksumming synthetic payloads
// (the generator's tile contents are all zeros; only the length varies).
var zeroBuf [64 << 10]byte

// zeroCRC returns the CRC32-C of n zero bytes without materializing them.
func zeroCRC(n int64) uint32 {
	sum := crc32.Checksum(nil, payloadCastagnoli)
	for n > 0 {
		c := n
		if c > int64(len(zeroBuf)) {
			c = int64(len(zeroBuf))
		}
		sum = crc32.Update(sum, payloadCastagnoli, zeroBuf[:c])
		n -= c
	}
	return sum
}

// HasChecksums reports whether the manifest carries per-variant payload
// checksums. Manifests serialized before wire v3 do not; clients skip
// payload verification for them (the frame-level CRC still applies).
func (m *Manifest) HasChecksums() bool {
	return len(m.checksums) > 0 && len(m.full360Checksums) > 0
}

// allocChecksums sizes the checksum arrays for the manifest's dimensions.
func (m *Manifest) allocChecksums() {
	m.checksums = make([]uint32, m.NumChunks*m.NumTiles()*NumQualities)
	m.full360Checksums = make([]uint32, m.NumChunks*NumQualities)
}

// TileChecksum returns the CRC32-C of the tile variant's payload.
// Manifests without checksums report 0; gate on HasChecksums.
func (m *Manifest) TileChecksum(chunk int, tile geom.TileID, q Quality) uint32 {
	if len(m.checksums) == 0 {
		return 0
	}
	return m.checksums[m.index(chunk, tile, q)]
}

// SetTileChecksum sets the payload checksum of the tile variant.
func (m *Manifest) SetTileChecksum(chunk int, tile geom.TileID, q Quality, sum uint32) {
	if len(m.checksums) == 0 {
		m.allocChecksums()
	}
	m.checksums[m.index(chunk, tile, q)] = sum
}

// Full360Checksum returns the CRC32-C of the untiled chunk payload at
// quality q. Manifests without checksums report 0; gate on HasChecksums.
func (m *Manifest) Full360Checksum(chunk int, q Quality) uint32 {
	if len(m.full360Checksums) == 0 {
		return 0
	}
	if chunk < 0 || chunk >= m.NumChunks || !q.Valid() {
		panic("video: full360 checksum index out of range")
	}
	return m.full360Checksums[chunk*NumQualities+int(q)]
}

// SetFull360Checksum sets the payload checksum of the untiled chunk.
func (m *Manifest) SetFull360Checksum(chunk int, q Quality, sum uint32) {
	if len(m.full360Checksums) == 0 {
		m.allocChecksums()
	}
	if chunk < 0 || chunk >= m.NumChunks || !q.Valid() {
		panic("video: full360 checksum index out of range")
	}
	m.full360Checksums[chunk*NumQualities+int(q)] = sum
}
