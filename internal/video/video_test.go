package video

import (
	"bytes"
	"encoding/json"
	"hash/crc32"
	"math"
	"testing"
	"testing/quick"

	"dragonfly/internal/geom"
)

func testManifest(t testing.TB) *Manifest {
	t.Helper()
	return Generate(GenParams{ID: "test", TargetQP42Mbps: 2, TargetQP22Mbps: 22, MotionLevel: 0.5, Seed: 7, NumChunks: 10})
}

func TestQualityQP(t *testing.T) {
	if Lowest.QP() != 42 || Highest.QP() != 22 {
		t.Fatalf("QP ladder wrong: lowest %d highest %d", Lowest.QP(), Highest.QP())
	}
	prev := 100
	for q := Quality(0); q < NumQualities; q++ {
		if q.QP() >= prev {
			t.Fatalf("QPs not strictly decreasing at %d", q)
		}
		prev = q.QP()
	}
}

func TestQualityValid(t *testing.T) {
	if Quality(-1).Valid() || Quality(NumQualities).Valid() {
		t.Error("out-of-range quality reported valid")
	}
	for q := Quality(0); q < NumQualities; q++ {
		if !q.Valid() {
			t.Errorf("quality %d invalid", q)
		}
	}
}

func TestQualityQPPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("QP() on invalid quality did not panic")
		}
	}()
	Quality(99).QP()
}

func TestManifestDimensions(t *testing.T) {
	m := testManifest(t)
	if m.NumTiles() != 144 {
		t.Errorf("NumTiles = %d", m.NumTiles())
	}
	if m.NumFrames() != 300 {
		t.Errorf("NumFrames = %d", m.NumFrames())
	}
	if m.ChunkOfFrame(0) != 0 || m.ChunkOfFrame(29) != 0 || m.ChunkOfFrame(30) != 1 {
		t.Error("ChunkOfFrame boundaries wrong")
	}
	if m.ChunkOfFrame(-5) != 0 {
		t.Error("negative frame should clamp to chunk 0")
	}
	if m.ChunkOfFrame(100000) != m.NumChunks-1 {
		t.Error("overflow frame should clamp to last chunk")
	}
	if m.FirstFrame(3) != 90 {
		t.Errorf("FirstFrame(3) = %d", m.FirstFrame(3))
	}
}

func TestSizesMonotoneInQuality(t *testing.T) {
	m := testManifest(t)
	for c := 0; c < m.NumChunks; c++ {
		for tl := 0; tl < m.NumTiles(); tl += 5 {
			prev := int64(-1)
			for q := Quality(0); q < NumQualities; q++ {
				s := m.TileSize(c, geom.TileID(tl), q)
				if s <= prev {
					t.Fatalf("tile size not increasing: chunk %d tile %d q %d: %d <= %d", c, tl, q, s, prev)
				}
				prev = s
			}
		}
		prevF := int64(-1)
		for q := Quality(0); q < NumQualities; q++ {
			f := m.Full360Size(c, q)
			if f <= prevF {
				t.Fatalf("full360 size not increasing: chunk %d q %d", c, q)
			}
			prevF = f
		}
	}
}

func TestPSNRMonotoneInQuality(t *testing.T) {
	m := testManifest(t)
	for c := 0; c < m.NumChunks; c += 3 {
		for tl := 0; tl < m.NumTiles(); tl++ {
			for q := Quality(1); q < NumQualities; q++ {
				lo := m.TilePSNR(c, geom.TileID(tl), q-1)
				hi := m.TilePSNR(c, geom.TileID(tl), q)
				if hi < lo {
					t.Fatalf("PSNR not monotone: chunk %d tile %d q %d", c, tl, q)
				}
				if m.TilePSPNR(c, geom.TileID(tl), q) < m.TilePSPNR(c, geom.TileID(tl), q-1) {
					t.Fatalf("PSPNR not monotone: chunk %d tile %d q %d", c, tl, q)
				}
			}
		}
	}
}

func TestPSPNRAtLeastPSNR(t *testing.T) {
	m := testManifest(t)
	for c := 0; c < m.NumChunks; c += 2 {
		for tl := 0; tl < m.NumTiles(); tl += 3 {
			for q := Quality(0); q < NumQualities; q++ {
				if m.TilePSPNR(c, geom.TileID(tl), q) < m.TilePSNR(c, geom.TileID(tl), q)-1e-9 {
					t.Fatalf("PSPNR < PSNR at chunk %d tile %d q %d", c, tl, q)
				}
			}
		}
	}
}

func TestBlackPSNRLow(t *testing.T) {
	m := testManifest(t)
	for c := 0; c < m.NumChunks; c++ {
		for tl := 0; tl < m.NumTiles(); tl++ {
			b := m.BlackPSNR(c, geom.TileID(tl))
			if b < 2 || b > 25 {
				t.Fatalf("black PSNR %v out of plausible range at chunk %d tile %d", b, c, tl)
			}
			if b >= m.TilePSNR(c, geom.TileID(tl), Lowest) {
				t.Fatalf("black PSNR should be below lowest encoding PSNR (chunk %d tile %d)", c, tl)
			}
		}
	}
}

func TestTiledLargerThanFull360(t *testing.T) {
	m := testManifest(t)
	for c := 0; c < m.NumChunks; c++ {
		for q := Quality(0); q < NumQualities; q++ {
			if m.ChunkTiledSize(c, q) <= m.Full360Size(c, q) {
				t.Fatalf("tiled encoding should cost more than untiled: chunk %d q %d", c, q)
			}
		}
	}
}

func TestTilingOverheadShrinksWithQuality(t *testing.T) {
	m := testManifest(t)
	loOverhead := float64(m.ChunkTiledSize(0, Lowest)) / float64(m.Full360Size(0, Lowest))
	hiOverhead := float64(m.ChunkTiledSize(0, Highest)) / float64(m.Full360Size(0, Highest))
	if loOverhead <= hiOverhead {
		t.Errorf("tiling overhead should shrink with quality: lo %.3f hi %.3f", loOverhead, hiOverhead)
	}
}

func TestCalibrationMatchesTargets(t *testing.T) {
	for _, e := range Table3 {
		m := Generate(GenParams{ID: e.ID, TargetQP42Mbps: e.QP42Mbps, TargetQP22Mbps: e.QP22Mbps, MotionLevel: e.MotionLevel, Seed: e.Seed})
		got42 := m.MedianFull360Mbps(Lowest)
		got22 := m.MedianFull360Mbps(Highest)
		if math.Abs(got42-e.QP42Mbps)/e.QP42Mbps > 0.25 {
			t.Errorf("%s: QP42 median %.2f Mbps, target %.2f", e.ID, got42, e.QP42Mbps)
		}
		if math.Abs(got22-e.QP22Mbps)/e.QP22Mbps > 0.25 {
			t.Errorf("%s: QP22 median %.2f Mbps, target %.2f", e.ID, got22, e.QP22Mbps)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := GenParams{ID: "d", TargetQP42Mbps: 2, Seed: 42, NumChunks: 5}
	a := Generate(p)
	b := Generate(p)
	for c := 0; c < a.NumChunks; c++ {
		for tl := 0; tl < a.NumTiles(); tl++ {
			for q := Quality(0); q < NumQualities; q++ {
				if a.TileSize(c, geom.TileID(tl), q) != b.TileSize(c, geom.TileID(tl), q) {
					t.Fatal("generation not deterministic")
				}
			}
		}
	}
}

func TestDefaultDataset(t *testing.T) {
	ds := DefaultDataset()
	if len(ds) != 7 {
		t.Fatalf("dataset has %d videos, want 7", len(ds))
	}
	seen := map[string]bool{}
	for _, m := range ds {
		if seen[m.VideoID] {
			t.Errorf("duplicate video id %s", m.VideoID)
		}
		seen[m.VideoID] = true
		if m.NumChunks != 60 || m.Rows != 12 || m.Cols != 12 {
			t.Errorf("%s: unexpected dims", m.VideoID)
		}
	}
}

func TestGroupTilesPartition(t *testing.T) {
	m := testManifest(t)
	groups := GroupTiles(m, 0, DefaultGroupCount)
	if len(groups) != DefaultGroupCount {
		t.Fatalf("got %d groups, want %d", len(groups), DefaultGroupCount)
	}
	seen := map[geom.TileID]bool{}
	for _, g := range groups {
		if len(g) == 0 {
			t.Fatal("empty group")
		}
		for _, id := range g {
			if seen[id] {
				t.Fatalf("tile %d in two groups", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != m.NumTiles() {
		t.Fatalf("groups cover %d tiles, want %d", len(seen), m.NumTiles())
	}
}

func TestGroupTilesSensitivityOrdered(t *testing.T) {
	m := testManifest(t)
	groups := GroupTiles(m, 0, 10)
	prevMax := -math.MaxFloat64
	for _, g := range groups {
		lo, hi := math.MaxFloat64, -math.MaxFloat64
		for _, id := range g {
			s := QualitySensitivity(m, 0, id)
			lo = math.Min(lo, s)
			hi = math.Max(hi, s)
		}
		if lo < prevMax-1e-9 {
			t.Fatal("groups not ordered by sensitivity")
		}
		prevMax = hi
	}
}

func TestGroupedChunkSmallerThanFixed(t *testing.T) {
	m := testManifest(t)
	for c := 0; c < m.NumChunks; c += 2 {
		groups := GroupTiles(m, c, DefaultGroupCount)
		for q := Quality(0); q < NumQualities; q++ {
			grouped := GroupedChunkSize(m, c, groups, q)
			fixed := m.ChunkTiledSize(c, q)
			if grouped >= fixed {
				t.Fatalf("grouped (%d) should beat fixed tiling (%d) at chunk %d q %d", grouped, fixed, c, q)
			}
		}
	}
}

func TestFixedVsGroupedOverheadShrinks(t *testing.T) {
	// Fig 20: the F/V overhead ratio of fixed tiling over variable tiling
	// degrades (shrinks) at higher quality levels.
	m := testManifest(t)
	groups := GroupTiles(m, 0, DefaultGroupCount)
	lo := float64(m.ChunkTiledSize(0, Lowest)) / float64(GroupedChunkSize(m, 0, groups, Lowest))
	hi := float64(m.ChunkTiledSize(0, Highest)) / float64(GroupedChunkSize(m, 0, groups, Highest))
	if lo <= hi {
		t.Errorf("F/V should shrink with quality: lo %.3f hi %.3f", lo, hi)
	}
	if lo < 1.05 {
		t.Errorf("low-quality F/V overhead should be noticeable, got %.3f", lo)
	}
}

func TestGroupSizeSingleton(t *testing.T) {
	m := testManifest(t)
	id := geom.TileID(7)
	got := GroupSize(m, 0, []geom.TileID{id}, Quality(2))
	want := m.TileSize(0, id, Quality(2))
	if got != want {
		t.Errorf("singleton group size %d != tile size %d", got, want)
	}
}

func TestManifestJSONRoundTrip(t *testing.T) {
	m := testManifest(t)
	m.MaskDisplacement[3] = 42.5
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.VideoID != m.VideoID || got.NumChunks != m.NumChunks {
		t.Fatal("round trip lost identity")
	}
	if got.MaskDisplacement[3] != 42.5 {
		t.Error("round trip lost mask displacement")
	}
	for c := 0; c < m.NumChunks; c += 3 {
		for tl := 0; tl < m.NumTiles(); tl += 17 {
			for q := Quality(0); q < NumQualities; q++ {
				if got.TileSize(c, geom.TileID(tl), q) != m.TileSize(c, geom.TileID(tl), q) {
					t.Fatal("round trip lost sizes")
				}
				if got.TilePSNR(c, geom.TileID(tl), q) != m.TilePSNR(c, geom.TileID(tl), q) {
					t.Fatal("round trip lost PSNR")
				}
			}
		}
	}
}

func TestReadManifestRejectsCorrupt(t *testing.T) {
	cases := []string{
		``,
		`{`,
		`{"video_id":"x","rows":0,"cols":12,"fps":30,"chunk_frames":30,"num_chunks":1}`,
		`{"video_id":"x","rows":2,"cols":2,"fps":30,"chunk_frames":30,"num_chunks":1,"qps":[42,37,32,27,22],"sizes":[1],"psnr":[1],"pspnr":[1],"black_psnr":[1],"full360":[1]}`,
		`{"video_id":"x","rows":2,"cols":2,"fps":30,"chunk_frames":30,"num_chunks":1,"qps":[42]}`,
	}
	for i, c := range cases {
		if _, err := ReadManifest(bytes.NewReader([]byte(c))); err == nil {
			t.Errorf("case %d: corrupt manifest accepted", i)
		}
	}
}

func TestMedianHelper(t *testing.T) {
	if got := median(nil); got != 0 {
		t.Errorf("median(nil) = %v", got)
	}
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("median odd = %v", got)
	}
	if got := median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("median even = %v", got)
	}
}

func TestQualitySensitivityVaries(t *testing.T) {
	// Fig 18: some tiles are much more quality sensitive than others.
	m := testManifest(t)
	lo, hi := math.MaxFloat64, -math.MaxFloat64
	for tl := 0; tl < m.NumTiles(); tl++ {
		s := QualitySensitivity(m, 0, geom.TileID(tl))
		lo = math.Min(lo, s)
		hi = math.Max(hi, s)
	}
	if hi-lo < 3 {
		t.Errorf("quality sensitivity spread too small: lo %.2f hi %.2f", lo, hi)
	}
}

func TestGroupTilesProperty(t *testing.T) {
	m := Generate(GenParams{ID: "q", Seed: 3, NumChunks: 2})
	f := func(nRaw uint8) bool {
		n := int(nRaw)%160 + 1
		groups := GroupTiles(m, 1, n)
		count := 0
		for _, g := range groups {
			count += len(g)
		}
		return count == m.NumTiles()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGenerate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Generate(GenParams{ID: "bench", TargetQP42Mbps: 3, Seed: int64(i), NumChunks: 10})
	}
}

func TestManifestChecksums(t *testing.T) {
	m := testManifest(t)
	if !m.HasChecksums() {
		t.Fatal("generated manifest carries no payload checksums")
	}
	// The synthetic payloads are zero-filled, so every checksum must equal
	// the CRC32-C of that many zero bytes — verified against a literal
	// zero buffer, not zeroCRC itself.
	id := geom.TileID(5)
	size := m.TileSize(2, id, Quality(3))
	want := crc32.Checksum(make([]byte, size), payloadCastagnoli)
	if got := m.TileChecksum(2, id, Quality(3)); got != want {
		t.Errorf("tile checksum %08x, want %08x", got, want)
	}
	fsize := m.Full360Size(1, Quality(0))
	fwant := crc32.Checksum(make([]byte, fsize), payloadCastagnoli)
	if got := m.Full360Checksum(1, Quality(0)); got != fwant {
		t.Errorf("full360 checksum %08x, want %08x", got, fwant)
	}

	// Checksums survive the JSON round trip.
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasChecksums() {
		t.Fatal("round trip dropped checksums")
	}
	if got.TileChecksum(2, id, Quality(3)) != want {
		t.Error("round trip corrupted tile checksum")
	}
}

func TestZeroCRCMatchesLiteral(t *testing.T) {
	for _, n := range []int64{0, 1, 100, int64(len(zeroBuf)), int64(len(zeroBuf)) + 1, 3*int64(len(zeroBuf)) + 17} {
		want := crc32.Checksum(make([]byte, n), payloadCastagnoli)
		if got := zeroCRC(n); got != want {
			t.Errorf("zeroCRC(%d) = %08x, want %08x", n, got, want)
		}
	}
}

func TestReadManifestRejectsPartialChecksums(t *testing.T) {
	m := Generate(GenParams{ID: "ck", Rows: 2, Cols: 2, NumChunks: 1, Seed: 9})
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var j map[string]any
	if err := json.Unmarshal(buf.Bytes(), &j); err != nil {
		t.Fatal(err)
	}
	delete(j, "full360_checksums") // tile checksums without full360 ones
	raw, err := json.Marshal(j)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(bytes.NewReader(raw)); err == nil {
		t.Error("manifest with partial checksum arrays accepted")
	}
	// Dropping both is the documented pre-v3 form and must stay readable.
	delete(j, "checksums")
	raw, err = json.Marshal(j)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := ReadManifest(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if legacy.HasChecksums() {
		t.Error("legacy manifest claims checksums")
	}
}
