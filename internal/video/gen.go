package video

import (
	"math"
	"math/rand"

	"dragonfly/internal/geom"
)

// GenParams parameterizes the synthetic 360° encoder. Each video is fully
// determined by its parameters and Seed, so datasets are reproducible.
type GenParams struct {
	ID string

	Rows, Cols  int // tile grid (paper: 12×12)
	FPS         int // frames per second (paper: chunk = 1 s)
	ChunkFrames int
	NumChunks   int // paper videos are 1 minute => 60 chunks

	// TargetQP42Mbps is the desired median full-360° bitrate at the lowest
	// quality (QP 42); TargetQP22Mbps at the highest (QP 22). The paper's
	// Table 3 lists these per video (0.9–4.6 and 10.4–49.6 Mbps).
	TargetQP42Mbps float64
	TargetQP22Mbps float64

	// MotionLevel in [0, 1] controls how much the content hotspot (moving
	// objects / camera motion) drifts across chunks, which drives spatial
	// non-uniformity of per-chunk tile sizes.
	MotionLevel float64

	Seed int64
}

// fillDefaults applies the paper's evaluation defaults to unset fields.
func (p *GenParams) fillDefaults() {
	if p.Rows == 0 {
		p.Rows = 12
	}
	if p.Cols == 0 {
		p.Cols = 12
	}
	if p.FPS == 0 {
		p.FPS = 30
	}
	if p.ChunkFrames == 0 {
		p.ChunkFrames = p.FPS // 1-second chunks
	}
	if p.NumChunks == 0 {
		p.NumChunks = 60
	}
	if p.TargetQP42Mbps == 0 {
		p.TargetQP42Mbps = 2.0
	}
	if p.TargetQP22Mbps == 0 {
		p.TargetQP22Mbps = p.TargetQP42Mbps * 11
	}
}

// Encoding-model constants. tilingOverhead models the loss of intra-frame
// prediction when a chunk is split into 144 independent tiles: significant at
// low rates, negligible at high rates (paper Fig 20 and §4.3).
var tilingOverhead = [NumQualities]float64{0.30, 0.20, 0.12, 0.07, 0.04}

// perTileHeaderBytes is the fixed container/codec header cost each
// independently decodable tile pays regardless of content. It is why tiled
// masking can cost more than full-360° masking at low quality (paper §3.2).
const perTileHeaderBytes = 220

// Generate synthesizes a manifest.
//
// Content model: each tile has a static spatial complexity (a smooth random
// field: textured regions compress worse and are more quality-sensitive) plus
// a moving hotspot whose drift rate follows MotionLevel. Chunk-level size
// follows a mean-reverting random walk so bitrates vary across chunks as real
// encodings do. Rates across QPs follow a geometric ladder fitted to the two
// Table 3 target bitrates; PSNR falls roughly 0.5 dB per QP step, faster for
// complex tiles (which also makes them more quality-sensitive, Fig 18).
func Generate(p GenParams) *Manifest {
	p.fillDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	m := NewManifest(p.ID, p.Rows, p.Cols, p.FPS, p.ChunkFrames, p.NumChunks)
	tiles := m.NumTiles()

	// Static spatial complexity field in (0.1, 1]: a sum of low-frequency
	// cosines over the tile lattice, normalized.
	complexity := make([]float64, tiles)
	lum := make([]float64, tiles) // mean luminance in (0.1, 0.9)
	{
		type wave struct{ fr, fc, phase, amp float64 }
		waves := make([]wave, 6)
		lumWaves := make([]wave, 4)
		for i := range waves {
			waves[i] = wave{
				fr:    float64(rng.Intn(3) + 1),
				fc:    float64(rng.Intn(3) + 1),
				phase: rng.Float64() * 2 * math.Pi,
				amp:   0.5 + rng.Float64(),
			}
		}
		for i := range lumWaves {
			lumWaves[i] = wave{
				fr:    float64(rng.Intn(2) + 1),
				fc:    float64(rng.Intn(2) + 1),
				phase: rng.Float64() * 2 * math.Pi,
				amp:   0.5 + rng.Float64(),
			}
		}
		minC, maxC := math.Inf(1), math.Inf(-1)
		raw := make([]float64, tiles)
		rawL := make([]float64, tiles)
		minL, maxL := math.Inf(1), math.Inf(-1)
		for r := 0; r < p.Rows; r++ {
			for c := 0; c < p.Cols; c++ {
				id := r*p.Cols + c
				v := 0.0
				for _, w := range waves {
					v += w.amp * math.Cos(2*math.Pi*(w.fr*float64(r)/float64(p.Rows)+w.fc*float64(c)/float64(p.Cols))+w.phase)
				}
				raw[id] = v
				minC = math.Min(minC, v)
				maxC = math.Max(maxC, v)
				lv := 0.0
				for _, w := range lumWaves {
					lv += w.amp * math.Cos(2*math.Pi*(w.fr*float64(r)/float64(p.Rows)+w.fc*float64(c)/float64(p.Cols))+w.phase)
				}
				rawL[id] = lv
				minL = math.Min(minL, lv)
				maxL = math.Max(maxL, lv)
			}
		}
		for id := range raw {
			complexity[id] = 0.1 + 0.9*(raw[id]-minC)/(maxC-minC+1e-12)
			lum[id] = 0.1 + 0.8*(rawL[id]-minL)/(maxL-minL+1e-12)
		}
	}

	// Per-QP full-360° rate ladder: geometric between the two targets.
	ratio := p.TargetQP22Mbps / p.TargetQP42Mbps
	if ratio < 1.01 {
		ratio = 1.01
	}
	step := math.Pow(ratio, 1.0/float64(NumQualities-1))
	baseRate := make([]float64, NumQualities) // Mbps at each quality
	for q := 0; q < NumQualities; q++ {
		baseRate[q] = p.TargetQP42Mbps * math.Pow(step, float64(q))
	}

	// Chunk size multiplier: mean-reverting random walk around 1.
	mult := 1.0
	secs := float64(p.ChunkFrames) / float64(p.FPS)
	// Hotspot drifts with MotionLevel: a high-complexity bump that moves.
	hotYaw := rng.Float64()*360 - 180
	hotPitch := rng.Float64()*60 - 30
	grid := geom.NewGrid(p.Rows, p.Cols)

	for chunk := 0; chunk < p.NumChunks; chunk++ {
		mult += (1-mult)*0.3 + rng.NormFloat64()*0.12
		mult = math.Max(0.55, math.Min(1.7, mult))
		hotYaw = geom.NormalizeYaw(hotYaw + rng.NormFloat64()*40*p.MotionLevel)
		hotPitch = geom.ClampPitch(hotPitch + rng.NormFloat64()*10*p.MotionLevel)
		hot := geom.Orientation{Yaw: hotYaw, Pitch: hotPitch}

		// Per-chunk effective complexity: static field plus moving hotspot.
		eff := make([]float64, tiles)
		var weightSum float64
		for t := 0; t < tiles; t++ {
			d := geom.AngularDistance(grid.Center(geom.TileID(t)), hot)
			bump := 0.7 * math.Exp(-(d*d)/(2*35*35))
			eff[t] = complexity[t] + bump
			// Weight tile payload share by effective complexity and the
			// tile's true solid angle (pole tiles carry fewer pixels).
			weightSum += eff[t] * grid.SolidAngleWeight(geom.TileID(t))
		}

		for q := Quality(0); q < NumQualities; q++ {
			fullBytes := int64(baseRate[q] * mult * 1e6 * secs / 8)
			m.SetFull360Size(chunk, q, fullBytes)
			tiledBudget := float64(fullBytes) * (1 + tilingOverhead[q])
			for t := 0; t < tiles; t++ {
				share := eff[t] * grid.SolidAngleWeight(geom.TileID(t)) / weightSum
				payload := tiledBudget * share
				size := int64(payload) + perTileHeaderBytes
				m.SetTileSize(chunk, geom.TileID(t), q, size)
			}
		}

		for t := 0; t < tiles; t++ {
			tid := geom.TileID(t)
			c := math.Min(1, eff[t])
			// PSNR at QP22 is higher for simple content; slope per QP step is
			// steeper for complex content, producing varied quality
			// sensitivity across tiles (Fig 18).
			psnr22 := 49 + 3*(1-c) + rng.NormFloat64()*0.5
			slope := 0.35 + 0.45*c // dB per QP
			jnd := 2 + 8*c         // texture masks distortion (Pano's insight)
			for q := Quality(0); q < NumQualities; q++ {
				qp := q.QP()
				psnr := psnr22 - slope*float64(qp-22)
				psnr = math.Max(18, math.Min(52, psnr))
				m.SetTilePSNR(chunk, tid, q, psnr)
				// PSPNR: distortion below the JND threshold is imperceptible.
				// Textured tiles (higher JND) mask more of their distortion;
				// the proportional floor keeps the perceptible error tied to
				// the actual error so PSPNR still discriminates encodings.
				mse := 255 * 255 * math.Pow(10, -psnr/10)
				perceptible := math.Max(mse-jnd*jnd*0.3, mse*0.15)
				pspnr := 10 * math.Log10(255*255/perceptible)
				m.SetTilePSPNR(chunk, tid, q, math.Min(pspnr, 60))
			}
			// Black-render penalty: MSE against black grows with luminance.
			l := lum[t] * 150
			mseBlack := l*l + 1500*c // mean² plus content variance
			m.SetBlackPSNR(chunk, tid, 10*math.Log10(255*255/mseBlack))
		}
	}

	// Payload checksums (wire v3): the synthetic encoder emits all-zero
	// payloads, so each variant's CRC32-C depends only on its size. The
	// client verifies these before marking a tile held; CRC32-C is
	// hardware-accelerated, so even a minute-long manifest costs only tens
	// of milliseconds here.
	m.allocChecksums()
	for chunk := 0; chunk < p.NumChunks; chunk++ {
		for q := Quality(0); q < NumQualities; q++ {
			m.SetFull360Checksum(chunk, q, zeroCRC(m.Full360Size(chunk, q)))
			for t := 0; t < tiles; t++ {
				tid := geom.TileID(t)
				m.SetTileChecksum(chunk, tid, q, zeroCRC(m.TileSize(chunk, tid, q)))
			}
		}
	}
	return m
}
