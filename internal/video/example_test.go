package video_test

import (
	"fmt"

	"dragonfly/internal/video"
)

// ExampleGenerate synthesizes a manifest calibrated like the paper's v8 and
// reads the quantities the schedulers consume.
func ExampleGenerate() {
	m := video.Generate(video.GenParams{
		ID:             "v8",
		TargetQP42Mbps: 3.1,
		TargetQP22Mbps: 28.4,
		MotionLevel:    0.55,
		Seed:           108,
	})
	fmt.Printf("grid: %dx%d, %d chunks of %d frames\n", m.Rows, m.Cols, m.NumChunks, m.ChunkFrames)
	fmt.Printf("median full-360 bitrate at QP42: %.1f Mbps (target 3.1)\n", m.MedianFull360Mbps(video.Lowest))
	fmt.Printf("median full-360 bitrate at QP22: %.1f Mbps (target 28.4)\n", m.MedianFull360Mbps(video.Highest))
	// Per-tile data is what a fetch decision needs:
	fmt.Printf("tile 70 chunk 0: %d bytes at QP42, %d at QP22\n",
		m.TileSize(0, 70, video.Lowest), m.TileSize(0, 70, video.Highest))
	fmt.Printf("PSNR rises with quality: %v\n",
		m.TilePSNR(0, 70, video.Highest) > m.TilePSNR(0, 70, video.Lowest))
	// Output:
	// grid: 12x12, 60 chunks of 30 frames
	// median full-360 bitrate at QP42: 3.1 Mbps (target 3.1)
	// median full-360 bitrate at QP22: 28.4 Mbps (target 28.4)
	// tile 70 chunk 0: 4046 bytes at QP42, 28266 at QP22
	// PSNR rises with quality: true
}
