package server

import (
	"context"
	"net"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"

	"dragonfly/internal/geom"
	"dragonfly/internal/obs"
	"dragonfly/internal/player"
	"dragonfly/internal/proto"
)

// openSession completes a hello handshake against a handler running on the
// server side of a fresh pipe and returns the client conn plus the
// handler's exit channel.
func openSession(t *testing.T, s *Server) (net.Conn, chan error) {
	t.Helper()
	c, srv := net.Pipe()
	done := make(chan error, 1)
	go func() {
		defer srv.Close()
		done <- s.HandleConnContext(context.Background(), srv)
	}()
	go func() { _ = proto.WriteHello(c, proto.Hello{VideoID: "srv"}) }()
	if msg, err := proto.ReadMessage(c); err != nil || msg.Type != proto.MsgManifest {
		t.Fatalf("handshake: %v / %+v", err, msg)
	}
	return c, done
}

func TestHandleConnProbe(t *testing.T) {
	m := testManifest()
	s := New(m)

	probe := func() *proto.Message {
		t.Helper()
		c, srv := net.Pipe()
		defer c.Close()
		go func() {
			defer srv.Close()
			_ = s.HandleConnContext(context.Background(), srv)
		}()
		go func() { _ = proto.WritePing(c) }()
		msg, err := proto.ReadMessage(c)
		if err != nil {
			t.Fatalf("read probe reply: %v", err)
		}
		return msg
	}

	// Idle server: pong, not draining, zero active sessions (the probe's
	// own admission slot is excluded).
	msg := probe()
	if msg.Type != proto.MsgPing || msg.Ping == nil {
		t.Fatalf("probe reply = %+v, want status pong", msg)
	}
	if msg.Ping.Draining || msg.Ping.ActiveConns != 0 {
		t.Fatalf("idle pong = %+v, want !draining 0 conns", *msg.Ping)
	}

	// With a session in flight the pong reports it.
	c1, done1 := openSession(t, s)
	defer c1.Close()
	msg = probe()
	if msg.Ping == nil || msg.Ping.ActiveConns != 1 {
		t.Fatalf("pong with one session = %+v, want 1 conn", msg.Ping)
	}
	if ctr := s.Counters(); ctr.Probes != 2 {
		t.Fatalf("Probes = %d, want 2", ctr.Probes)
	}

	// A draining server busy-rejects the probe before reading it; probers
	// read that as "alive but unroutable".
	s.Drain()
	msg = probe()
	if msg.Type != proto.MsgError || !proto.IsBusyText(msg.Error) {
		t.Fatalf("draining probe reply = %+v, want busy MsgError", msg)
	}

	drainConn(c1)
	_ = proto.WriteBye(c1)
	if err := <-done1; err != nil {
		t.Fatalf("session: %v", err)
	}
}

func waitGauge(t *testing.T, reg *obs.Registry, name string, want float64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if reg.Snapshot().Gauges[name] == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("gauge %s = %v, want %v", name, reg.Snapshot().Gauges[name], want)
}

func TestLoadGauges(t *testing.T) {
	m := testManifest()
	s := New(m)
	s.Obs = obs.NewRegistry()

	c1, done1 := openSession(t, s)
	defer c1.Close()
	waitGauge(t, s.Obs, "srv_active_conns", 1)

	// A served request's bytes pass through srv_queue_bytes and drain back
	// to zero once the tile is on the wire.
	if err := proto.WriteRequest(c1, proto.Request{Generation: 1, Items: []player.RequestItem{
		{Stream: player.Primary, Chunk: 0, Tile: 0, Quality: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	if msg, err := readNonPing(c1); err != nil || msg.Type != proto.MsgTileData {
		t.Fatalf("tile: %v / %+v", err, msg)
	}
	waitGauge(t, s.Obs, "srv_queue_bytes", 0)

	drainConn(c1)
	_ = proto.WriteBye(c1)
	if err := <-done1; err != nil {
		t.Fatalf("session: %v", err)
	}
	waitGauge(t, s.Obs, "srv_active_conns", 0)

	if g := s.Obs.Snapshot().Gauges["srv_draining"]; g != 0 {
		t.Fatalf("srv_draining = %v before Drain", g)
	}
	s.Drain()
	waitGauge(t, s.Obs, "srv_draining", 1)
}

func TestQueueBytesReleasedOnTeardown(t *testing.T) {
	m := testManifest()
	s := New(m)
	s.Obs = obs.NewRegistry()
	s.WriteTimeout = 150 * time.Millisecond

	c, done := openSession(t, s)
	defer c.Close()

	// Install a multi-tile queue, then stop reading: the pipe write
	// blocks, the write deadline kills the session mid-queue, and
	// releaseQueued must hand the unsent bytes back to the gauge.
	var items []player.RequestItem
	for tl := 0; tl < 8; tl++ {
		items = append(items, player.RequestItem{Stream: player.Primary, Chunk: 0, Tile: geom.TileID(tl), Quality: 1})
	}
	if err := proto.WriteRequest(c, proto.Request{Generation: 1, Items: items}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err == nil {
		t.Fatal("session with stalled reader ended without error")
	}
	if qb := s.QueuedBytes(); qb != 0 {
		t.Fatalf("QueuedBytes = %d after teardown, want 0", qb)
	}
	waitGauge(t, s.Obs, "srv_queue_bytes", 0)
	waitGauge(t, s.Obs, "srv_active_conns", 0)
}

// TestDrainGoroutineHygiene is the graceful-drain coverage: concurrent
// in-flight sessions finish their streams across a Drain() while new
// connections get the retryable busy reject, and after the listener closes
// the process is back to its pre-serve goroutine count.
func TestDrainGoroutineHygiene(t *testing.T) {
	m := testManifest()
	base := runtime.NumGoroutine()

	s := New(m)
	s.ReadTimeout = 2 * time.Second
	s.WriteTimeout = 2 * time.Second
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ctx, l) }()

	const sessions = 3
	conns := make([]net.Conn, sessions)
	for i := range conns {
		c, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := proto.WriteHello(c, proto.Hello{VideoID: "srv"}); err != nil {
			t.Fatal(err)
		}
		if msg, err := proto.ReadMessage(c); err != nil || msg.Type != proto.MsgManifest {
			t.Fatalf("session %d handshake: %v / %+v", i, err, msg)
		}
		conns[i] = c
	}

	s.Drain()

	// New connections are turned away with the retryable busy error.
	rej, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if msg, err := proto.ReadMessage(rej); err != nil || msg.Type != proto.MsgError || !proto.IsBusyText(msg.Error) {
		t.Fatalf("draining server replied %v / %+v, want busy MsgError", err, msg)
	}
	rej.Close()

	// Every pre-drain session still streams to completion.
	for i, c := range conns {
		if err := proto.WriteRequest(c, proto.Request{Generation: 1, Items: []player.RequestItem{
			{Stream: player.Primary, Chunk: 0, Tile: geom.TileID(i), Quality: 1},
		}}); err != nil {
			t.Fatalf("session %d request: %v", i, err)
		}
		if msg, err := readNonPing(c); err != nil || msg.Type != proto.MsgTileData {
			t.Fatalf("session %d tile after drain: %v / %+v", i, err, msg)
		}
		drainConn(c)
		if err := proto.WriteBye(c); err != nil {
			t.Fatalf("session %d bye: %v", i, err)
		}
	}

	// Close the listener; Serve waits for the handlers before returning.
	cancel()
	if err := <-serveDone; err != context.Canceled {
		t.Fatalf("Serve = %v, want context.Canceled", err)
	}
	for _, c := range conns {
		c.Close()
	}
	if n := s.ActiveConns(); n != 0 {
		t.Fatalf("ActiveConns = %d after shutdown", n)
	}

	// Zero leaked goroutines: allow a little slack for runtime/test
	// machinery, then dump stacks on failure so leaks are debuggable.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutines = %d, want <= %d (pre-serve baseline + slack)", runtime.NumGoroutine(), base+2)
	_ = pprof.Lookup("goroutine").WriteTo(testWriter{t}, 1)
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Log(string(p))
	return len(p), nil
}
