package server

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"dragonfly/internal/chaos"
	"dragonfly/internal/obs"
)

// server.trace.write fails the session-trace flush (disk full, unlinked
// TraceDir). The contract under test: tracing must never fail a session —
// the error is logged and the session's outcome is unchanged.
var siteTraceWrite = chaos.NewSite("server.trace.write")

// QoESource supplies per-cohort shed-budget scales — the server half of
// the fleet QoE feedback loop. The canonical implementation is
// ingest.Feedback, a poller of the ingest tier's /rollup endpoint; the
// interface lives here so the server depends on the contract, not the
// poller.
//
// CohortScale returns a multiplier applied to the session's queue budgets
// (MaxQueue, MaxQueueBytes) at every request install: < 1 sheds harder
// (the cohort is over its quality budget and can afford to lose
// lowest-utility tiles), > 1 relaxes, and 1 is neutral. Implementations
// must return 1 — never 0 — when they have no current data (stale rollup,
// unknown cohort), so a broken feedback path degrades to the static
// budgets rather than to starvation.
type QoESource interface {
	CohortScale(cohort string) float64
}

// qoeScale resolves the effective budget scale for a session's cohort:
// neutral when no source is wired, the session carried no cohort, or the
// source misbehaves (non-positive scale).
func (s *Server) qoeScale(cohort string) float64 {
	if s.QoE == nil || cohort == "" {
		return 1
	}
	sc := s.QoE.CohortScale(cohort)
	if !(sc > 0) { // catches 0, negatives, NaN
		return 1
	}
	return sc
}

// scaleBudgets applies a QoE scale to the static queue budgets. The count
// cap never scales below 1 (a session must always be able to hold one
// item), and a disabled byte budget (0) stays disabled — scaling cannot
// conjure a bound the operator did not set.
func scaleBudgets(maxQueue int, maxBytes int64, scale float64) (int, int64) {
	q := int(float64(maxQueue) * scale)
	if q < 1 {
		q = 1
	}
	b := maxBytes
	if maxBytes > 0 {
		b = int64(float64(maxBytes) * scale)
		if b < 1 {
			b = 1
		}
	}
	return q, b
}

// sessionTrace is the server-view JSONL trace of one session: the
// EvSession header (video + cohort from the handshake) plus one EvShed
// event per shedding install, written to TraceDir at session end. The
// ingest tier folds these alongside client traces so rollups carry the
// server-side shed volume per cohort. All methods are nil-safe; a server
// without TraceDir pays nothing.
type sessionTrace struct {
	tr    *obs.Trace
	start time.Time
	path  string
}

// traceSeq numbers session trace files within the process.
var traceSeq atomic.Int64

// startSessionTrace opens a server-view trace for one session, or nil
// when TraceDir is unset.
func (s *Server) startSessionTrace(videoID, cohort string) *sessionTrace {
	if s.TraceDir == "" {
		return nil
	}
	tr := obs.NewTrace(0)
	tr.Add(obs.SessionEvent(videoID, cohort))
	name := fmt.Sprintf("srv_%d_%d.jsonl", os.Getpid(), traceSeq.Add(1))
	return &sessionTrace{tr: tr, start: time.Now(), path: filepath.Join(s.TraceDir, name)}
}

// shed records one shedding install (n = payload bytes shed).
func (t *sessionTrace) shed(n int64) {
	if t == nil {
		return
	}
	t.tr.Add(obs.Event{At: time.Since(t.start), Kind: obs.EvShed, N: n})
}

// flush writes the trace file (atomically, via rename) so a tailing
// ingest watcher never reads a torn line. Errors are reported through
// logf and otherwise dropped — tracing must never fail a session.
func (t *sessionTrace) flush(logf func(string, ...any)) {
	if t == nil {
		return
	}
	if err := t.write(); err != nil && logf != nil {
		logf("server: session trace %s: %v", t.path, err)
	}
}

func (t *sessionTrace) write() error {
	if err := siteTraceWrite.Err(); err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(t.path), 0o755); err != nil {
		return err
	}
	tmp := t.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := t.tr.WriteJSONL(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, t.path)
}
