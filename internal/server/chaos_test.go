package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dragonfly/internal/chaos"
	"dragonfly/internal/leaktest"
	"dragonfly/internal/netem"
	"dragonfly/internal/player"
	"dragonfly/internal/proto"
)

// Chaos tests arm the process-global failpoint registry; none of them may
// run in t.Parallel. Each disarms on cleanup.

func armServer(t *testing.T, rules ...chaos.Rule) {
	t.Helper()
	if err := chaos.Arm(rules...); err != nil {
		t.Fatalf("chaos.Arm: %v", err)
	}
	t.Cleanup(chaos.Disarm)
}

// startSession runs HandleConn on a fresh pipe and completes the
// hello/manifest handshake, returning the client conn and the HandleConn
// error channel.
func startSession(t *testing.T, s *Server) (net.Conn, chan error) {
	t.Helper()
	client, srvConn := net.Pipe()
	errCh := make(chan error, 1)
	go func() {
		defer srvConn.Close()
		errCh <- s.HandleConn(srvConn)
	}()
	t.Cleanup(func() { client.Close() })
	go func() { _ = proto.WriteHello(client, proto.Hello{VideoID: "srv"}) }()
	msg, err := proto.ReadMessage(client)
	if err != nil || msg.Type != proto.MsgManifest {
		t.Fatalf("handshake: %v / %+v", err, msg)
	}
	return client, errCh
}

// TestServeAcceptFaultDropsConnection: an armed server.accept fault closes
// the connection between accept and handshake; the next connection is
// served normally, and teardown leaks no goroutines.
func TestServeAcceptFaultDropsConnection(t *testing.T) {
	defer leaktest.Check(t)()
	armServer(t, chaos.Rule{Site: "server.accept", Kind: chaos.FaultError, Count: 1})

	s := New(testManifest())
	lis := netem.NewPipeListener(netem.Link{})
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ctx, lis) }()

	// First conn: dropped before any handshake byte.
	c1, err := lis.Dial()
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = proto.WriteHello(c1, proto.Hello{VideoID: "srv"}) }()
	if _, err := proto.ReadMessage(c1); err == nil {
		t.Fatal("read on a chaos-dropped connection succeeded")
	}
	c1.Close()

	// Second conn: the fault budget is spent, normal service resumes.
	c2, err := lis.Dial()
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = proto.WriteHello(c2, proto.Hello{VideoID: "srv"}) }()
	msg, err := proto.ReadMessage(c2)
	if err != nil || msg.Type != proto.MsgManifest {
		t.Fatalf("post-fault handshake: %v / %+v", err, msg)
	}
	_ = proto.WriteBye(c2)
	c2.Close()

	cancel()
	if err := <-serveDone; err != context.Canceled {
		t.Fatalf("Serve = %v, want context.Canceled", err)
	}
	if chaos.Injections("server.accept") != 1 {
		t.Errorf("server.accept injections = %d, want 1", chaos.Injections("server.accept"))
	}
}

// TestSendWriteFaultTearsDownSession: error and partial kinds on
// server.send.write end the session with the injected error — the client's
// resume path is the recovery, not silent frame loss.
func TestSendWriteFaultTearsDownSession(t *testing.T) {
	for _, kind := range []chaos.Kind{chaos.FaultError, chaos.FaultPartial} {
		t.Run(kind.String(), func(t *testing.T) {
			armServer(t, chaos.Rule{Site: "server.send.write", Kind: kind, Count: 1})
			s := New(testManifest())
			client, errCh := startSession(t, s)
			if err := proto.WriteRequest(client, proto.Request{Generation: 1, Items: []player.RequestItem{
				{Stream: player.Primary, Chunk: 0, Tile: 1, Quality: 1},
			}}); err != nil {
				t.Fatal(err)
			}
			// Drain until the torn connection surfaces client-side.
			go func() {
				for {
					if _, err := proto.ReadMessage(client); err != nil {
						return
					}
				}
			}()
			select {
			case err := <-errCh:
				if !errors.Is(err, chaos.ErrInjected) {
					t.Fatalf("HandleConn = %v, want ErrInjected", err)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("session did not end after injected write fault")
			}
			if sent := s.Counters().PrimarySent; sent != 0 {
				t.Errorf("PrimarySent = %d after torn batch, want 0 (frames not fully delivered must not be credited)", sent)
			}
		})
	}
}

// TestSendWriteCorruptCaughtByFrameCRC: a flipped byte on the wire (not in
// the store) must fail the client's frame CRC — the link-integrity half of
// the corruption duality (store.frame covers the payload half).
func TestSendWriteCorruptCaughtByFrameCRC(t *testing.T) {
	armServer(t, chaos.Rule{Site: "server.send.write", Kind: chaos.FaultCorrupt, Count: 1})
	s := New(testManifest())
	client, _ := startSession(t, s)
	if err := proto.WriteRequest(client, proto.Request{Generation: 1, Items: []player.RequestItem{
		{Stream: player.Primary, Chunk: 0, Tile: 1, Quality: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	_, err := proto.ReadMessage(client)
	if err == nil {
		t.Fatal("corrupted frame passed the client CRC")
	}
	if !strings.Contains(strings.ToLower(err.Error()), "crc") && !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("read error = %v, want a CRC/checksum failure", err)
	}
}

// TestWriteStallBudgetKillsSlowloris is the server slowloris defense: a
// client that accepts bytes too slowly for too long is killed with the
// typed ErrWriteStall and counted, releasing its queue bytes, instead of
// pinning a sender goroutine at the peer's pace forever.
func TestWriteStallBudgetKillsSlowloris(t *testing.T) {
	s := New(testManifest())
	s.WriteStallBudget = 5 * time.Millisecond
	client, errCh := startSession(t, s)

	// Two ~32 KiB tiles form one batch; at the reader's pace below the
	// batch write blocks ~15 ms — past the 5 ms excess budget, but the
	// whole drain stays well under a second.
	items := []player.RequestItem{
		{Stream: player.Primary, Chunk: 0, Tile: 1, Quality: 2},
		{Stream: player.Primary, Chunk: 0, Tile: 2, Quality: 2},
	}
	if err := proto.WriteRequest(client, proto.Request{Generation: 1, Items: items}); err != nil {
		t.Fatal(err)
	}
	// Slowloris: drain 4 KiB per millisecond — slow enough to exhaust the
	// excess budget, fast enough to keep the test short.
	go func() {
		buf := make([]byte, 4096)
		for {
			if _, err := client.Read(buf); err != nil {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrWriteStall) {
			t.Fatalf("HandleConn = %v, want ErrWriteStall", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("slowloris session never killed")
	}
	if got := s.Counters().WriteStallKills; got != 1 {
		t.Errorf("WriteStallKills = %d, want 1", got)
	}
}

// TestTraceWriteFaultNeverFailsSession: an injected session-trace flush
// failure (disk full, unlinked TraceDir) is logged and dropped; the
// session's own outcome is unchanged and no torn trace file is left for
// the ingest watcher to tail.
func TestTraceWriteFaultNeverFailsSession(t *testing.T) {
	armServer(t, chaos.Rule{Site: "server.trace.write", Kind: chaos.FaultError, Count: 1})
	dir := t.TempDir()
	s := New(testManifest())
	s.TraceDir = dir
	var logged atomic.Int64
	s.Logf = func(format string, args ...any) {
		if strings.Contains(format, "session trace") {
			logged.Add(1)
		}
		_ = fmt.Sprintf(format, args...)
	}
	client, errCh := startSession(t, s)
	_ = proto.WriteBye(client)
	go func() { _, _ = io.Copy(io.Discard, client) }()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("trace fault failed the session: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("session did not end")
	}
	if logged.Load() != 1 {
		t.Errorf("trace flush failure log lines = %d, want 1", logged.Load())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("faulted trace flush left files behind: %v", entries)
	}
}
