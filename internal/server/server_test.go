package server

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"dragonfly/internal/geom"
	"dragonfly/internal/player"
	"dragonfly/internal/proto"
	"dragonfly/internal/video"
)

func testManifest() *video.Manifest {
	return video.Generate(video.GenParams{ID: "srv", Rows: 4, Cols: 4, NumChunks: 3, Seed: 9})
}

func TestVideos(t *testing.T) {
	s := New(testManifest())
	vids := s.Videos()
	if len(vids) != 1 || vids[0] != "srv" {
		t.Fatalf("videos = %v", vids)
	}
}

func TestSendStateSupersession(t *testing.T) {
	m := testManifest()
	st := newSendState(m)
	st.install(proto.Request{Generation: 1, Items: []player.RequestItem{
		{Stream: player.Primary, Chunk: 0, Tile: 0, Quality: 1},
		{Stream: player.Primary, Chunk: 0, Tile: 1, Quality: 1},
	}}, 0, 0, m)
	// A newer request replaces the queue wholesale.
	st.install(proto.Request{Generation: 2, Items: []player.RequestItem{
		{Stream: player.Primary, Chunk: 0, Tile: 2, Quality: 3},
	}}, 0, 0, m)
	it, ok, done := st.next(m)
	if !ok || done || it.Tile != 2 {
		t.Fatalf("next = %+v ok=%v done=%v", it, ok, done)
	}
	if _, ok, _ := st.next(m); ok {
		t.Fatal("superseded items survived")
	}
}

func TestSendStateIgnoresStaleGeneration(t *testing.T) {
	m := testManifest()
	st := newSendState(m)
	st.install(proto.Request{Generation: 5, Items: []player.RequestItem{
		{Stream: player.Primary, Chunk: 0, Tile: 7, Quality: 1},
	}}, 0, 0, m)
	st.install(proto.Request{Generation: 3, Items: []player.RequestItem{
		{Stream: player.Primary, Chunk: 0, Tile: 9, Quality: 1},
	}}, 0, 0, m)
	it, ok, _ := st.next(m)
	if !ok || it.Tile != 7 {
		t.Fatalf("stale generation replaced queue: %+v", it)
	}
}

func TestSendStateRedundancyRules(t *testing.T) {
	m := testManifest()
	st := newSendState(m)
	items := []player.RequestItem{
		{Stream: player.Masking, Chunk: 0, Tile: 1, Quality: 0},
		{Stream: player.Primary, Chunk: 0, Tile: 1, Quality: 2}, // upgrade over masking: allowed
		{Stream: player.Primary, Chunk: 0, Tile: 1, Quality: 4}, // re-send primary: dropped
		{Stream: player.Masking, Chunk: 0, Full360: true, Quality: 0},
		{Stream: player.Masking, Chunk: 0, Tile: 2, Quality: 0},       // covered by full-360: dropped
		{Stream: player.Masking, Chunk: 0, Full360: true, Quality: 0}, // duplicate full: dropped
	}
	st.install(proto.Request{Generation: 1, Items: items}, 0, 0, m)
	var sent []player.RequestItem
	for {
		it, ok, done := st.next(m)
		if done || !ok {
			break
		}
		sent = append(sent, it)
	}
	if len(sent) != 3 {
		t.Fatalf("sent %d items, want 3: %+v", len(sent), sent)
	}
	if sent[0].Stream != player.Masking || sent[1].Stream != player.Primary || !sent[2].Full360 {
		t.Fatalf("unexpected send order: %+v", sent)
	}
}

func TestSendStateSkipsMalformed(t *testing.T) {
	m := testManifest()
	st := newSendState(m)
	st.install(proto.Request{Generation: 1, Items: []player.RequestItem{
		{Stream: player.Primary, Chunk: 999, Tile: 0, Quality: 1},
		{Stream: player.Primary, Chunk: 0, Tile: 999, Quality: 1},
		{Stream: player.Primary, Chunk: 0, Tile: 3, Quality: 1},
	}}, 0, 0, m)
	it, ok, _ := st.next(m)
	if !ok || it.Tile != 3 {
		t.Fatalf("malformed items not skipped: %+v", it)
	}
}

func TestSendStateCloseUnblocks(t *testing.T) {
	m := testManifest()
	st := newSendState(m)
	done := make(chan struct{})
	go func() {
		for {
			_, ok, closed := st.next(m)
			if closed {
				close(done)
				return
			}
			if !ok {
				<-st.wake
			}
		}
	}()
	time.Sleep(10 * time.Millisecond)
	st.close()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("close did not unblock the sender")
	}
}

func TestHandleConnRejectsNonHello(t *testing.T) {
	s := New(testManifest())
	client, srvConn := net.Pipe()
	errCh := make(chan error, 1)
	go func() { errCh <- s.HandleConn(srvConn) }()
	if err := proto.WriteRequest(client, proto.Request{Generation: 1}); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err == nil {
		t.Fatal("non-hello first message accepted")
	}
	client.Close()
	srvConn.Close()
}

func TestHandleConnUnknownVideo(t *testing.T) {
	s := New(testManifest())
	client, srvConn := net.Pipe()
	errCh := make(chan error, 1)
	go func() { errCh <- s.HandleConn(srvConn) }()
	go func() { _ = proto.WriteHello(client, proto.Hello{VideoID: "ghost"}) }()
	msg, err := proto.ReadMessage(client)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != proto.MsgError {
		t.Fatalf("expected error message, got %d", msg.Type)
	}
	if err := <-errCh; err == nil {
		t.Fatal("unknown video reported no error")
	}
	client.Close()
	srvConn.Close()
}

func TestHandleConnStreamsRequestedTiles(t *testing.T) {
	m := testManifest()
	s := New(m)
	client, srvConn := net.Pipe()
	go func() {
		defer srvConn.Close()
		_ = s.HandleConn(srvConn)
	}()
	defer client.Close()

	go func() { _ = proto.WriteHello(client, proto.Hello{VideoID: "srv"}) }()
	readCh := make(chan *proto.Message, 16)
	errCh := make(chan error, 1)
	go func() {
		for {
			msg, err := proto.ReadMessage(client)
			if err != nil {
				errCh <- err
				return
			}
			readCh <- msg
		}
	}()

	msg := <-readCh
	if msg.Type != proto.MsgManifest || msg.Manifest.VideoID != "srv" {
		t.Fatalf("expected manifest, got %d", msg.Type)
	}

	want := player.RequestItem{Stream: player.Primary, Chunk: 1, Tile: 5, Quality: 2}
	if err := proto.WriteRequest(client, proto.Request{Generation: 1, Items: []player.RequestItem{want}}); err != nil {
		t.Fatal(err)
	}
	select {
	case msg = <-readCh:
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(2 * time.Second):
		t.Fatal("no tile data")
	}
	if msg.Type != proto.MsgTileData || msg.TileData.Item != want {
		t.Fatalf("tile data mismatch: %+v", msg)
	}
	if int64(len(msg.TileData.Payload)) != m.TileSize(1, 5, 2) {
		t.Fatalf("payload %d bytes, want %d", len(msg.TileData.Payload), m.TileSize(1, 5, 2))
	}
	_ = proto.WriteBye(client)
}

func TestSendStateEqualGenerationReplay(t *testing.T) {
	m := testManifest()
	st := newSendState(m)
	st.install(proto.Request{Generation: 7, Items: []player.RequestItem{
		{Stream: player.Primary, Chunk: 0, Tile: 1, Quality: 1},
	}}, 0, 0, m)
	// A reconnecting client replays its last request with the same
	// generation; the replay must install (idempotent), not be dropped.
	st.install(proto.Request{Generation: 7, Items: []player.RequestItem{
		{Stream: player.Primary, Chunk: 0, Tile: 2, Quality: 1},
	}}, 0, 0, m)
	it, ok, _ := st.next(m)
	if !ok || it.Tile != 2 {
		t.Fatalf("equal-generation replay ignored: %+v ok=%v", it, ok)
	}
}

func TestSendStateGenerationWraparound(t *testing.T) {
	m := testManifest()
	st := newSendState(m)
	st.install(proto.Request{Generation: ^uint32(0) - 1, Items: []player.RequestItem{
		{Stream: player.Primary, Chunk: 0, Tile: 1, Quality: 1},
	}}, 0, 0, m)
	// 3 is "newer" than 2^32-2 under serial-number arithmetic.
	st.install(proto.Request{Generation: 3, Items: []player.RequestItem{
		{Stream: player.Primary, Chunk: 0, Tile: 2, Quality: 1},
	}}, 0, 0, m)
	it, ok, _ := st.next(m)
	if !ok || it.Tile != 2 {
		t.Fatalf("wrapped generation treated as stale: %+v ok=%v", it, ok)
	}
	// And the pre-wrap generation is now stale.
	st.install(proto.Request{Generation: ^uint32(0) - 5, Items: []player.RequestItem{
		{Stream: player.Primary, Chunk: 0, Tile: 3, Quality: 1},
	}}, 0, 0, m)
	if _, ok, _ := st.next(m); ok {
		t.Fatal("pre-wrap generation accepted after wraparound")
	}
}

func TestSendStateInstallAfterClose(t *testing.T) {
	m := testManifest()
	st := newSendState(m)
	st.close()
	st.install(proto.Request{Generation: 1, Items: []player.RequestItem{
		{Stream: player.Primary, Chunk: 0, Tile: 1, Quality: 1},
	}}, 0, 0, m)
	it, ok, done := st.next(m)
	if ok || !done {
		t.Fatalf("install after close queued work: %+v ok=%v done=%v", it, ok, done)
	}
}

func TestShedQueueKeepsMasking(t *testing.T) {
	m := testManifest()
	items := []player.RequestItem{
		{Stream: player.Primary, Chunk: 0, Tile: 0, Quality: 1},
		{Stream: player.Masking, Chunk: 0, Full360: true},
		{Stream: player.Primary, Chunk: 0, Tile: 1, Quality: 1},
		{Stream: player.Masking, Chunk: 1, Full360: true},
		{Stream: player.Primary, Chunk: 0, Tile: 2, Quality: 1},
		{Stream: player.Primary, Chunk: 0, Tile: 3, Quality: 1},
	}
	kept, shed, _ := shedQueue(items, 3, 0, m)
	if shed != 3 || len(kept) != 3 {
		t.Fatalf("kept %d shed %d, want 3/3", len(kept), shed)
	}
	// Both masking entries survive; the single primary slot goes to the
	// highest-utility (earliest) primary.
	masks := 0
	for _, it := range kept {
		if it.Stream == player.Masking {
			masks++
		}
	}
	if masks != 2 {
		t.Fatalf("shedding dropped masking entries: %+v", kept)
	}
	if kept[0].Stream != player.Primary || kept[0].Tile != 0 {
		t.Fatalf("lowest-utility primary kept instead of head: %+v", kept)
	}
	// Under the cap, nothing is shed.
	if _, shed, _ := shedQueue(items, 10, 0, m); shed != 0 {
		t.Fatalf("shed %d below cap", shed)
	}
}

func TestSendStatePreload(t *testing.T) {
	m := testManifest()
	st := newSendState(m)
	held := player.HeldSummary{
		NumChunks: m.NumChunks,
		NumTiles:  m.NumTiles(),
		Primary:   make([]byte, (m.NumChunks*m.NumTiles()+7)/8),
		MaskTile:  make([]byte, (m.NumChunks*m.NumTiles()+7)/8),
		MaskFull:  make([]byte, (m.NumChunks+7)/8),
	}
	held.Primary[0] |= 1 << 3 // chunk 0, tile 3
	held.MaskFull[0] |= 1 << 1

	if n := st.preload(held, m); n != 2 {
		t.Fatalf("preload restored %d entries, want 2", n)
	}
	st.install(proto.Request{Generation: 1, Items: []player.RequestItem{
		{Stream: player.Primary, Chunk: 0, Tile: 3, Quality: 2}, // held: suppressed
		{Stream: player.Masking, Chunk: 1, Full360: true},       // held: suppressed
		{Stream: player.Masking, Chunk: 1, Tile: 0, Quality: 0}, // covered by held full-360
		{Stream: player.Primary, Chunk: 0, Tile: 4, Quality: 2}, // not held: sent
	}}, 0, 0, m)
	it, ok, _ := st.next(m)
	if !ok || it.Tile != 4 || it.Stream != player.Primary {
		t.Fatalf("preload did not suppress held items: %+v ok=%v", it, ok)
	}
	if _, ok, _ := st.next(m); ok {
		t.Fatal("suppressed items leaked past preload")
	}
}

func TestHandleConnResume(t *testing.T) {
	m := testManifest()
	s := New(m)
	client, srvConn := net.Pipe()
	go func() {
		defer srvConn.Close()
		_ = s.HandleConnContext(context.Background(), srvConn)
	}()
	defer client.Close()

	held := player.HeldSummary{
		NumChunks: m.NumChunks,
		NumTiles:  m.NumTiles(),
		Primary:   make([]byte, (m.NumChunks*m.NumTiles()+7)/8),
		MaskTile:  make([]byte, (m.NumChunks*m.NumTiles()+7)/8),
		MaskFull:  make([]byte, (m.NumChunks+7)/8),
	}
	held.Primary[0] |= 1 << 5 // chunk 0, tile 5
	go func() {
		_ = proto.WriteResume(client, proto.Resume{Version: proto.ProtoVersion, VideoID: "srv", Held: held})
	}()
	msg, err := proto.ReadMessage(client)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != proto.MsgManifest {
		t.Fatalf("resume ack type %d, want manifest", msg.Type)
	}
	if err := proto.WriteRequest(client, proto.Request{Generation: 1, Items: []player.RequestItem{
		{Stream: player.Primary, Chunk: 0, Tile: 5, Quality: 2}, // held: must not be re-sent
		{Stream: player.Primary, Chunk: 0, Tile: 6, Quality: 2},
	}}); err != nil {
		t.Fatal(err)
	}
	msg, err = proto.ReadMessage(client)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != proto.MsgTileData || msg.TileData.Item.Tile != 6 {
		t.Fatalf("resumed session re-sent held tile: %+v", msg.TileData)
	}
	ctr := s.Counters()
	if ctr.Resumes != 1 || ctr.ResumedItems != 1 {
		t.Errorf("counters = %+v, want 1 resume / 1 restored", ctr)
	}
	_ = proto.WriteBye(client)
}

func TestHandleConnResumeVersionMismatch(t *testing.T) {
	m := testManifest()
	s := New(m)
	client, srvConn := net.Pipe()
	errCh := make(chan error, 1)
	go func() {
		defer srvConn.Close()
		errCh <- s.HandleConnContext(context.Background(), srvConn)
	}()
	defer client.Close()

	held := player.NewReceived(m).Summary()
	go func() {
		_ = proto.WriteResume(client, proto.Resume{Version: proto.ProtoVersion + 1, VideoID: "srv", Held: held})
	}()
	msg, err := proto.ReadMessage(client)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != proto.MsgError {
		t.Fatalf("old-version resume got type %d, want a clean MsgError", msg.Type)
	}
	if err := <-errCh; err == nil {
		t.Fatal("version mismatch reported no error")
	}
}

func TestHandleConnContextCancelDrains(t *testing.T) {
	m := testManifest()
	s := New(m)
	client, srvConn := net.Pipe()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- s.HandleConnContext(ctx, srvConn) }()
	defer client.Close()

	go func() { _ = proto.WriteHello(client, proto.Hello{VideoID: "srv"}) }()
	read := make(chan *proto.Message, 16)
	go func() {
		for {
			msg, err := proto.ReadMessage(client)
			if err != nil {
				close(read)
				return
			}
			read <- msg
		}
	}()
	if msg := <-read; msg.Type != proto.MsgManifest {
		t.Fatalf("expected manifest, got %d", msg.Type)
	}
	if err := proto.WriteRequest(client, proto.Request{Generation: 1, Items: []player.RequestItem{
		{Stream: player.Primary, Chunk: 0, Tile: 0, Quality: 1},
		{Stream: player.Primary, Chunk: 0, Tile: 1, Quality: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	// Let the queue install, then cancel: the handler must flush the
	// queued tiles and sign off with a Bye before closing.
	var tiles int
	var sawBye bool
	timer := time.After(5 * time.Second)
	cancelled := false
	for !sawBye {
		select {
		case msg, ok := <-read:
			if !ok {
				t.Fatalf("connection closed before Bye (tiles=%d)", tiles)
			}
			switch msg.Type {
			case proto.MsgTileData:
				tiles++
				if tiles == 2 && !cancelled {
					cancelled = true
					cancel()
				}
			case proto.MsgBye:
				sawBye = true
			}
		case <-timer:
			t.Fatal("no Bye after cancel")
		}
	}
	if tiles != 2 {
		t.Errorf("drained %d tiles, want 2", tiles)
	}
	if err := <-done; err != context.Canceled {
		t.Errorf("handler returned %v, want context.Canceled", err)
	}
}

func TestServeWaitsForHandlersOnShutdown(t *testing.T) {
	m := testManifest()
	s := New(m)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, l) }()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := proto.WriteHello(conn, proto.Hello{VideoID: "srv"}); err != nil {
		t.Fatal(err)
	}
	msg, err := proto.ReadMessage(conn)
	if err != nil || msg.Type != proto.MsgManifest {
		t.Fatalf("manifest: %v / type %v", err, msg)
	}
	if err := proto.WriteRequest(conn, proto.Request{Generation: 1, Items: []player.RequestItem{
		{Stream: player.Primary, Chunk: 0, Tile: 0, Quality: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	if msg, err := proto.ReadMessage(conn); err != nil || msg.Type != proto.MsgTileData {
		t.Fatalf("tile: %v / %+v", err, msg)
	}
	cancel()
	// Serve must not return before the in-flight handler has finished its
	// drain; by the time it does, the goodbye is on the wire.
	if err := <-done; err != context.Canceled {
		t.Fatalf("Serve returned %v", err)
	}
	sawBye := false
	for {
		msg, err := proto.ReadMessage(conn)
		if err != nil {
			break
		}
		if msg.Type == proto.MsgBye {
			sawBye = true
		}
	}
	if !sawBye {
		t.Error("no Bye after drained shutdown")
	}
}

func TestServeHonorsContext(t *testing.T) {
	s := New(testManifest())
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, l) }()
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Errorf("Serve returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not stop on cancel")
	}
}

// drainConn consumes everything the server writes so its final Bye (and
// any heartbeat pings) never block on the unbuffered pipe.
func drainConn(c net.Conn) { go func() { _, _ = io.Copy(io.Discard, c) }() }

// readNonPing reads the next non-heartbeat message.
func readNonPing(c net.Conn) (*proto.Message, error) {
	for {
		msg, err := proto.ReadMessage(c)
		if err != nil || msg.Type != proto.MsgPing {
			return msg, err
		}
	}
}

func TestShedQueueEmpty(t *testing.T) {
	m := testManifest()
	kept, shed, shedBytes := shedQueue(nil, 3, 1024, m)
	if len(kept) != 0 || shed != 0 || shedBytes != 0 {
		t.Fatalf("empty queue shed %d items / %d bytes", shed, shedBytes)
	}
}

func TestShedQueueByteBudget(t *testing.T) {
	m := testManifest()
	big := player.RequestItem{Stream: player.Primary, Chunk: 0, Tile: 0, Quality: video.NumQualities - 1}
	small := player.RequestItem{Stream: player.Primary, Chunk: 0, Tile: 1, Quality: 0}
	if big.Size(m) <= small.Size(m) {
		t.Fatalf("manifest sizes not ordered: big=%d small=%d", big.Size(m), small.Size(m))
	}
	// Budget fits the small primary but not the big one: the oversized
	// higher-utility item is shed while the smaller one still rides along.
	budget := small.Size(m)
	kept, shed, shedBytes := shedQueue([]player.RequestItem{big, small}, 0, budget, m)
	if shed != 1 || shedBytes != big.Size(m) {
		t.Fatalf("shed %d items / %d bytes, want 1 / %d", shed, shedBytes, big.Size(m))
	}
	if len(kept) != 1 || kept[0].Tile != 1 {
		t.Fatalf("kept = %+v, want only the small primary", kept)
	}
	// Under the budget, nothing is shed.
	if _, shed, _ := shedQueue([]player.RequestItem{big, small}, 0, big.Size(m)+small.Size(m), m); shed != 0 {
		t.Fatalf("shed %d under budget", shed)
	}
}

func TestShedQueueBudgetSmallerThanOneTile(t *testing.T) {
	m := testManifest()
	items := []player.RequestItem{
		{Stream: player.Primary, Chunk: 0, Tile: 0, Quality: 2},
		{Stream: player.Masking, Chunk: 0, Full360: true, Quality: 0},
		{Stream: player.Primary, Chunk: 0, Tile: 1, Quality: 2},
	}
	// A budget of one byte fits no primary at all — but the masking entry
	// (the continuity floor) survives regardless.
	kept, shed, _ := shedQueue(items, 0, 1, m)
	if shed != 2 {
		t.Fatalf("shed %d, want both primaries", shed)
	}
	if len(kept) != 1 || kept[0].Stream != player.Masking {
		t.Fatalf("kept = %+v, want only masking", kept)
	}
}

func TestShedQueueShedEverything(t *testing.T) {
	m := testManifest()
	items := []player.RequestItem{
		{Stream: player.Primary, Chunk: 0, Tile: 0, Quality: 1},
		{Stream: player.Primary, Chunk: 0, Tile: 1, Quality: 1},
		{Stream: player.Primary, Chunk: 0, Tile: 2, Quality: 1},
	}
	var wantBytes int64
	for _, it := range items {
		wantBytes += it.Size(m)
	}
	kept, shed, shedBytes := shedQueue(items, 0, 1, m)
	if len(kept) != 0 || shed != len(items) || shedBytes != wantBytes {
		t.Fatalf("kept=%d shed=%d bytes=%d, want 0/%d/%d", len(kept), shed, shedBytes, len(items), wantBytes)
	}
}

func TestShedQueueMalformedItemsShedAsZeroBytes(t *testing.T) {
	m := testManifest()
	items := []player.RequestItem{
		{Stream: player.Primary, Chunk: 999, Tile: 0, Quality: 1}, // out of range
		{Stream: player.Primary, Chunk: 0, Tile: 999, Quality: 1}, // out of range
	}
	// Hostile wire items must not panic the shedder; they cost zero budget.
	kept, _, shedBytes := shedQueue(items, 0, 1, m)
	if shedBytes != 0 {
		t.Fatalf("malformed items accounted %d bytes", shedBytes)
	}
	if len(kept) != 2 {
		// Zero-size items always fit the byte budget; next() drops them.
		t.Fatalf("kept = %+v", kept)
	}
}

func TestShedQueueMaskingOverBudgetClampsAtZero(t *testing.T) {
	m := testManifest()
	mask := player.RequestItem{Stream: player.Masking, Chunk: 0, Full360: true, Quality: video.NumQualities - 1}
	zero := player.RequestItem{Stream: player.Primary, Chunk: 999, Tile: 0, Quality: 1} // out of range: zero bytes
	// The masking entry alone overruns the byte budget (it is never shed),
	// driving the remaining primary byte budget NEGATIVE before the fix.
	// The zero-size primary must still ride along — zero-size items always
	// fit the byte budget (TestShedQueueMalformedItemsShedAsZeroBytes) and
	// next() drops them for free; un-clamped, the negative budget shed it
	// and mis-counted it as a real shed decision.
	if mask.Size(m) <= 1 {
		t.Fatalf("masking item too small to overrun the budget: %d", mask.Size(m))
	}
	kept, shed, shedBytes := shedQueue([]player.RequestItem{mask, zero}, 10, 1, m)
	if len(kept) != 2 || shed != 0 || shedBytes != 0 {
		t.Fatalf("kept=%d shed=%d bytes=%d, want both items kept (negative budget not clamped)",
			len(kept), shed, shedBytes)
	}
	// Real primaries still cannot squeeze past an exhausted budget.
	prim := player.RequestItem{Stream: player.Primary, Chunk: 0, Tile: 0, Quality: 1}
	kept, shed, _ = shedQueue([]player.RequestItem{mask, prim}, 10, 1, m)
	if len(kept) != 1 || shed != 1 {
		t.Fatalf("kept=%d shed=%d, want the primary shed under an exhausted budget", len(kept), shed)
	}
}

// TestManyConnsSharedStore streams the same video to many concurrent
// sessions of one server — every sender serving by reference from the one
// shared tile store — and verifies each session receives every requested
// tile with the exact manifest size and the requested stream kind. Run
// under -race this pins that the zero-copy send path shares frames across
// connections without synchronization bugs.
func TestManyConnsSharedStore(t *testing.T) {
	m := testManifest()
	s := New(m)
	const sessions = 8
	tiles := m.NumTiles()

	var items []player.RequestItem
	for tl := 0; tl < tiles; tl++ {
		items = append(items, player.RequestItem{Stream: player.Primary, Chunk: 0, Tile: geom.TileID(tl), Quality: 2})
	}
	for tl := 0; tl < tiles; tl++ {
		items = append(items, player.RequestItem{Stream: player.Masking, Chunk: 1, Tile: geom.TileID(tl), Quality: 0})
	}
	items = append(items, player.RequestItem{Stream: player.Masking, Chunk: 2, Full360: true, Quality: 0})

	errs := make(chan error, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client, srvConn := net.Pipe()
			handlerDone := make(chan struct{})
			// Wait for the handler to return before this session counts as
			// finished: counter increments land after the client has read
			// the frame (net.Pipe is a rendezvous), so a snapshot taken on
			// receipt alone would race the accounting.
			defer func() { <-handlerDone }()
			defer client.Close()
			go func() {
				defer close(handlerDone)
				defer srvConn.Close()
				_ = s.HandleConn(srvConn)
			}()
			go func() { _ = proto.WriteHello(client, proto.Hello{VideoID: "srv"}) }()
			msg, err := proto.ReadMessage(client)
			if err != nil || msg.Type != proto.MsgManifest {
				errs <- fmt.Errorf("manifest: %v", err)
				return
			}
			go func() {
				_ = proto.WriteRequest(client, proto.Request{Generation: 1, Items: items})
			}()
			got := make(map[player.RequestItem]int64, len(items))
			for len(got) < len(items) {
				msg, err := proto.ReadMessage(client)
				if err != nil {
					errs <- fmt.Errorf("read tile: %v", err)
					return
				}
				switch msg.Type {
				case proto.MsgTileData:
					got[msg.TileData.Item] = int64(len(msg.TileData.Payload))
				case proto.MsgPing:
				default:
					errs <- fmt.Errorf("unexpected message type %d", msg.Type)
					return
				}
			}
			for _, it := range items {
				if got[it] != it.Size(m) {
					errs <- fmt.Errorf("item %+v: got %d bytes, want %d", it, got[it], it.Size(m))
					return
				}
			}
			_ = proto.WriteBye(client)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	ctr := s.Counters()
	if ctr.PrimarySent != sessions*int64(tiles) || ctr.MaskTileSent != sessions*int64(tiles) || ctr.MaskFullSent != sessions {
		t.Fatalf("counters %+v do not match %d sessions x full request", ctr, sessions)
	}
}

func TestSendStatePreloadIdempotent(t *testing.T) {
	m := testManifest()
	st := newSendState(m)
	held := player.HeldSummary{
		NumChunks: m.NumChunks,
		NumTiles:  m.NumTiles(),
		Primary:   make([]byte, (m.NumChunks*m.NumTiles()+7)/8),
		MaskTile:  make([]byte, (m.NumChunks*m.NumTiles()+7)/8),
		MaskFull:  make([]byte, (m.NumChunks+7)/8),
	}
	held.Primary[0] |= 1 << 2
	held.MaskTile[0] |= 1 << 2
	held.MaskFull[0] |= 1 << 0

	if n := st.preload(held, m); n != 3 {
		t.Fatalf("first preload restored %d, want 3", n)
	}
	// A duplicate summary (same entries) restores nothing new — the resume
	// counter never double-counts a reconnecting client's held tiles.
	if n := st.preload(held, m); n != 0 {
		t.Fatalf("second preload restored %d, want 0", n)
	}
}

func TestHandleConnMaxConns(t *testing.T) {
	m := testManifest()
	s := New(m)
	s.MaxConns = 1

	// First session occupies the only slot.
	c1, srv1 := net.Pipe()
	done1 := make(chan error, 1)
	go func() {
		defer srv1.Close()
		done1 <- s.HandleConnContext(context.Background(), srv1)
	}()
	defer c1.Close()
	go func() { _ = proto.WriteHello(c1, proto.Hello{VideoID: "srv"}) }()
	if msg, err := proto.ReadMessage(c1); err != nil || msg.Type != proto.MsgManifest {
		t.Fatalf("first session handshake: %v / %+v", err, msg)
	}

	// Saturated: the second handshake is fast-rejected with a typed busy
	// error, before the server reads a single byte from it.
	c2, srv2 := net.Pipe()
	done2 := make(chan error, 1)
	go func() {
		defer srv2.Close()
		done2 <- s.HandleConnContext(context.Background(), srv2)
	}()
	defer c2.Close()
	msg, err := proto.ReadMessage(c2)
	if err != nil {
		t.Fatalf("read rejection: %v", err)
	}
	if msg.Type != proto.MsgError || !proto.IsBusyText(msg.Error) {
		t.Fatalf("saturated server sent %+v, want busy MsgError", msg)
	}
	if err := <-done2; err == nil {
		t.Fatal("rejected handshake reported no error")
	}
	if ctr := s.Counters(); ctr.RejectedConns != 1 {
		t.Fatalf("RejectedConns = %d, want 1", ctr.RejectedConns)
	}

	// Releasing the slot readmits.
	drainConn(c1)
	_ = proto.WriteBye(c1)
	if err := <-done1; err != nil {
		t.Fatalf("first session: %v", err)
	}
	if n := s.ActiveConns(); n != 0 {
		t.Fatalf("ActiveConns = %d after close", n)
	}
	c3, srv3 := net.Pipe()
	go func() {
		defer srv3.Close()
		_ = s.HandleConnContext(context.Background(), srv3)
	}()
	defer c3.Close()
	go func() { _ = proto.WriteHello(c3, proto.Hello{VideoID: "srv"}) }()
	if msg, err := proto.ReadMessage(c3); err != nil || msg.Type != proto.MsgManifest {
		t.Fatalf("post-release handshake: %v / %+v", err, msg)
	}
	drainConn(c3)
	_ = proto.WriteBye(c3)
}

func TestHandleConnDrain(t *testing.T) {
	m := testManifest()
	s := New(m)

	// An in-flight session must survive the drain flip.
	c1, srv1 := net.Pipe()
	done1 := make(chan error, 1)
	go func() {
		defer srv1.Close()
		done1 <- s.HandleConnContext(context.Background(), srv1)
	}()
	defer c1.Close()
	go func() { _ = proto.WriteHello(c1, proto.Hello{VideoID: "srv"}) }()
	if msg, err := proto.ReadMessage(c1); err != nil || msg.Type != proto.MsgManifest {
		t.Fatalf("pre-drain handshake: %v / %+v", err, msg)
	}

	s.Drain()
	if !s.Draining() {
		t.Fatal("Draining() false after Drain()")
	}

	c2, srv2 := net.Pipe()
	go func() {
		defer srv2.Close()
		_ = s.HandleConnContext(context.Background(), srv2)
	}()
	defer c2.Close()
	msg, err := proto.ReadMessage(c2)
	if err != nil {
		t.Fatalf("read drain rejection: %v", err)
	}
	if msg.Type != proto.MsgError || !proto.IsBusyText(msg.Error) {
		t.Fatalf("draining server sent %+v, want busy MsgError", msg)
	}

	// The pre-drain session still works: request a tile and receive it.
	if err := proto.WriteRequest(c1, proto.Request{Generation: 1, Items: []player.RequestItem{
		{Stream: player.Primary, Chunk: 0, Tile: 0, Quality: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	if msg, err := readNonPing(c1); err != nil || msg.Type != proto.MsgTileData {
		t.Fatalf("in-flight session broken by drain: %v / %+v", err, msg)
	}
	drainConn(c1)
	_ = proto.WriteBye(c1)
	if err := <-done1; err != nil {
		t.Fatalf("in-flight session: %v", err)
	}
}

func TestHandleConnCorruptFrameCounted(t *testing.T) {
	m := testManifest()
	s := New(m)
	c, srv := net.Pipe()
	done := make(chan error, 1)
	go func() {
		defer srv.Close()
		done <- s.HandleConnContext(context.Background(), srv)
	}()
	defer c.Close()
	go func() { _ = proto.WriteHello(c, proto.Hello{VideoID: "srv"}) }()
	if msg, err := proto.ReadMessage(c); err != nil || msg.Type != proto.MsgManifest {
		t.Fatalf("handshake: %v / %+v", err, msg)
	}
	drainConn(c)
	// A frame whose CRC trailer does not match its body: type byte for a
	// request with a garbage body and a zeroed checksum.
	frame := []byte{0, 0, 0, 5, byte(proto.MsgRequest), 1, 2, 3, 4, 0, 0, 0, 0}
	if _, err := c.Write(frame); err != nil {
		t.Fatal(err)
	}
	<-done
	if ctr := s.Counters(); ctr.CorruptFrames != 1 {
		t.Fatalf("CorruptFrames = %d, want 1", ctr.CorruptFrames)
	}
}
