package server

import (
	"context"
	"net"
	"testing"
	"time"

	"dragonfly/internal/player"
	"dragonfly/internal/proto"
	"dragonfly/internal/video"
)

func testManifest() *video.Manifest {
	return video.Generate(video.GenParams{ID: "srv", Rows: 4, Cols: 4, NumChunks: 3, Seed: 9})
}

func TestVideos(t *testing.T) {
	s := New(testManifest())
	vids := s.Videos()
	if len(vids) != 1 || vids[0] != "srv" {
		t.Fatalf("videos = %v", vids)
	}
}

func TestSendStateSupersession(t *testing.T) {
	m := testManifest()
	st := newSendState(m)
	st.install(proto.Request{Generation: 1, Items: []player.RequestItem{
		{Stream: player.Primary, Chunk: 0, Tile: 0, Quality: 1},
		{Stream: player.Primary, Chunk: 0, Tile: 1, Quality: 1},
	}})
	// A newer request replaces the queue wholesale.
	st.install(proto.Request{Generation: 2, Items: []player.RequestItem{
		{Stream: player.Primary, Chunk: 0, Tile: 2, Quality: 3},
	}})
	it, ok, done := st.next(m)
	if !ok || done || it.Tile != 2 {
		t.Fatalf("next = %+v ok=%v done=%v", it, ok, done)
	}
	if _, ok, _ := st.next(m); ok {
		t.Fatal("superseded items survived")
	}
}

func TestSendStateIgnoresStaleGeneration(t *testing.T) {
	m := testManifest()
	st := newSendState(m)
	st.install(proto.Request{Generation: 5, Items: []player.RequestItem{
		{Stream: player.Primary, Chunk: 0, Tile: 7, Quality: 1},
	}})
	st.install(proto.Request{Generation: 3, Items: []player.RequestItem{
		{Stream: player.Primary, Chunk: 0, Tile: 9, Quality: 1},
	}})
	it, ok, _ := st.next(m)
	if !ok || it.Tile != 7 {
		t.Fatalf("stale generation replaced queue: %+v", it)
	}
}

func TestSendStateRedundancyRules(t *testing.T) {
	m := testManifest()
	st := newSendState(m)
	items := []player.RequestItem{
		{Stream: player.Masking, Chunk: 0, Tile: 1, Quality: 0},
		{Stream: player.Primary, Chunk: 0, Tile: 1, Quality: 2}, // upgrade over masking: allowed
		{Stream: player.Primary, Chunk: 0, Tile: 1, Quality: 4}, // re-send primary: dropped
		{Stream: player.Masking, Chunk: 0, Full360: true, Quality: 0},
		{Stream: player.Masking, Chunk: 0, Tile: 2, Quality: 0},       // covered by full-360: dropped
		{Stream: player.Masking, Chunk: 0, Full360: true, Quality: 0}, // duplicate full: dropped
	}
	st.install(proto.Request{Generation: 1, Items: items})
	var sent []player.RequestItem
	for {
		it, ok, done := st.next(m)
		if done || !ok {
			break
		}
		sent = append(sent, it)
	}
	if len(sent) != 3 {
		t.Fatalf("sent %d items, want 3: %+v", len(sent), sent)
	}
	if sent[0].Stream != player.Masking || sent[1].Stream != player.Primary || !sent[2].Full360 {
		t.Fatalf("unexpected send order: %+v", sent)
	}
}

func TestSendStateSkipsMalformed(t *testing.T) {
	m := testManifest()
	st := newSendState(m)
	st.install(proto.Request{Generation: 1, Items: []player.RequestItem{
		{Stream: player.Primary, Chunk: 999, Tile: 0, Quality: 1},
		{Stream: player.Primary, Chunk: 0, Tile: 999, Quality: 1},
		{Stream: player.Primary, Chunk: 0, Tile: 3, Quality: 1},
	}})
	it, ok, _ := st.next(m)
	if !ok || it.Tile != 3 {
		t.Fatalf("malformed items not skipped: %+v", it)
	}
}

func TestSendStateCloseUnblocks(t *testing.T) {
	m := testManifest()
	st := newSendState(m)
	done := make(chan struct{})
	go func() {
		for {
			_, ok, closed := st.next(m)
			if closed {
				close(done)
				return
			}
			if !ok {
				<-st.wake
			}
		}
	}()
	time.Sleep(10 * time.Millisecond)
	st.close()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("close did not unblock the sender")
	}
}

func TestHandleConnRejectsNonHello(t *testing.T) {
	s := New(testManifest())
	client, srvConn := net.Pipe()
	errCh := make(chan error, 1)
	go func() { errCh <- s.HandleConn(srvConn) }()
	if err := proto.WriteRequest(client, proto.Request{Generation: 1}); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err == nil {
		t.Fatal("non-hello first message accepted")
	}
	client.Close()
	srvConn.Close()
}

func TestHandleConnUnknownVideo(t *testing.T) {
	s := New(testManifest())
	client, srvConn := net.Pipe()
	errCh := make(chan error, 1)
	go func() { errCh <- s.HandleConn(srvConn) }()
	go func() { _ = proto.WriteHello(client, proto.Hello{VideoID: "ghost"}) }()
	msg, err := proto.ReadMessage(client)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != proto.MsgError {
		t.Fatalf("expected error message, got %d", msg.Type)
	}
	if err := <-errCh; err == nil {
		t.Fatal("unknown video reported no error")
	}
	client.Close()
	srvConn.Close()
}

func TestHandleConnStreamsRequestedTiles(t *testing.T) {
	m := testManifest()
	s := New(m)
	client, srvConn := net.Pipe()
	go func() {
		defer srvConn.Close()
		_ = s.HandleConn(srvConn)
	}()
	defer client.Close()

	go func() { _ = proto.WriteHello(client, proto.Hello{VideoID: "srv"}) }()
	readCh := make(chan *proto.Message, 16)
	errCh := make(chan error, 1)
	go func() {
		for {
			msg, err := proto.ReadMessage(client)
			if err != nil {
				errCh <- err
				return
			}
			readCh <- msg
		}
	}()

	msg := <-readCh
	if msg.Type != proto.MsgManifest || msg.Manifest.VideoID != "srv" {
		t.Fatalf("expected manifest, got %d", msg.Type)
	}

	want := player.RequestItem{Stream: player.Primary, Chunk: 1, Tile: 5, Quality: 2}
	if err := proto.WriteRequest(client, proto.Request{Generation: 1, Items: []player.RequestItem{want}}); err != nil {
		t.Fatal(err)
	}
	select {
	case msg = <-readCh:
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(2 * time.Second):
		t.Fatal("no tile data")
	}
	if msg.Type != proto.MsgTileData || msg.TileData.Item != want {
		t.Fatalf("tile data mismatch: %+v", msg)
	}
	if int64(len(msg.TileData.Payload)) != m.TileSize(1, 5, 2) {
		t.Fatalf("payload %d bytes, want %d", len(msg.TileData.Payload), m.TileSize(1, 5, 2))
	}
	_ = proto.WriteBye(client)
}

func TestServeHonorsContext(t *testing.T) {
	s := New(testManifest())
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, l) }()
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Errorf("Serve returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not stop on cancel")
	}
}
