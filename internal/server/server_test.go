package server

import (
	"context"
	"net"
	"testing"
	"time"

	"dragonfly/internal/player"
	"dragonfly/internal/proto"
	"dragonfly/internal/video"
)

func testManifest() *video.Manifest {
	return video.Generate(video.GenParams{ID: "srv", Rows: 4, Cols: 4, NumChunks: 3, Seed: 9})
}

func TestVideos(t *testing.T) {
	s := New(testManifest())
	vids := s.Videos()
	if len(vids) != 1 || vids[0] != "srv" {
		t.Fatalf("videos = %v", vids)
	}
}

func TestSendStateSupersession(t *testing.T) {
	m := testManifest()
	st := newSendState(m)
	st.install(proto.Request{Generation: 1, Items: []player.RequestItem{
		{Stream: player.Primary, Chunk: 0, Tile: 0, Quality: 1},
		{Stream: player.Primary, Chunk: 0, Tile: 1, Quality: 1},
	}}, 0)
	// A newer request replaces the queue wholesale.
	st.install(proto.Request{Generation: 2, Items: []player.RequestItem{
		{Stream: player.Primary, Chunk: 0, Tile: 2, Quality: 3},
	}}, 0)
	it, ok, done := st.next(m)
	if !ok || done || it.Tile != 2 {
		t.Fatalf("next = %+v ok=%v done=%v", it, ok, done)
	}
	if _, ok, _ := st.next(m); ok {
		t.Fatal("superseded items survived")
	}
}

func TestSendStateIgnoresStaleGeneration(t *testing.T) {
	m := testManifest()
	st := newSendState(m)
	st.install(proto.Request{Generation: 5, Items: []player.RequestItem{
		{Stream: player.Primary, Chunk: 0, Tile: 7, Quality: 1},
	}}, 0)
	st.install(proto.Request{Generation: 3, Items: []player.RequestItem{
		{Stream: player.Primary, Chunk: 0, Tile: 9, Quality: 1},
	}}, 0)
	it, ok, _ := st.next(m)
	if !ok || it.Tile != 7 {
		t.Fatalf("stale generation replaced queue: %+v", it)
	}
}

func TestSendStateRedundancyRules(t *testing.T) {
	m := testManifest()
	st := newSendState(m)
	items := []player.RequestItem{
		{Stream: player.Masking, Chunk: 0, Tile: 1, Quality: 0},
		{Stream: player.Primary, Chunk: 0, Tile: 1, Quality: 2}, // upgrade over masking: allowed
		{Stream: player.Primary, Chunk: 0, Tile: 1, Quality: 4}, // re-send primary: dropped
		{Stream: player.Masking, Chunk: 0, Full360: true, Quality: 0},
		{Stream: player.Masking, Chunk: 0, Tile: 2, Quality: 0},       // covered by full-360: dropped
		{Stream: player.Masking, Chunk: 0, Full360: true, Quality: 0}, // duplicate full: dropped
	}
	st.install(proto.Request{Generation: 1, Items: items}, 0)
	var sent []player.RequestItem
	for {
		it, ok, done := st.next(m)
		if done || !ok {
			break
		}
		sent = append(sent, it)
	}
	if len(sent) != 3 {
		t.Fatalf("sent %d items, want 3: %+v", len(sent), sent)
	}
	if sent[0].Stream != player.Masking || sent[1].Stream != player.Primary || !sent[2].Full360 {
		t.Fatalf("unexpected send order: %+v", sent)
	}
}

func TestSendStateSkipsMalformed(t *testing.T) {
	m := testManifest()
	st := newSendState(m)
	st.install(proto.Request{Generation: 1, Items: []player.RequestItem{
		{Stream: player.Primary, Chunk: 999, Tile: 0, Quality: 1},
		{Stream: player.Primary, Chunk: 0, Tile: 999, Quality: 1},
		{Stream: player.Primary, Chunk: 0, Tile: 3, Quality: 1},
	}}, 0)
	it, ok, _ := st.next(m)
	if !ok || it.Tile != 3 {
		t.Fatalf("malformed items not skipped: %+v", it)
	}
}

func TestSendStateCloseUnblocks(t *testing.T) {
	m := testManifest()
	st := newSendState(m)
	done := make(chan struct{})
	go func() {
		for {
			_, ok, closed := st.next(m)
			if closed {
				close(done)
				return
			}
			if !ok {
				<-st.wake
			}
		}
	}()
	time.Sleep(10 * time.Millisecond)
	st.close()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("close did not unblock the sender")
	}
}

func TestHandleConnRejectsNonHello(t *testing.T) {
	s := New(testManifest())
	client, srvConn := net.Pipe()
	errCh := make(chan error, 1)
	go func() { errCh <- s.HandleConn(srvConn) }()
	if err := proto.WriteRequest(client, proto.Request{Generation: 1}); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err == nil {
		t.Fatal("non-hello first message accepted")
	}
	client.Close()
	srvConn.Close()
}

func TestHandleConnUnknownVideo(t *testing.T) {
	s := New(testManifest())
	client, srvConn := net.Pipe()
	errCh := make(chan error, 1)
	go func() { errCh <- s.HandleConn(srvConn) }()
	go func() { _ = proto.WriteHello(client, proto.Hello{VideoID: "ghost"}) }()
	msg, err := proto.ReadMessage(client)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != proto.MsgError {
		t.Fatalf("expected error message, got %d", msg.Type)
	}
	if err := <-errCh; err == nil {
		t.Fatal("unknown video reported no error")
	}
	client.Close()
	srvConn.Close()
}

func TestHandleConnStreamsRequestedTiles(t *testing.T) {
	m := testManifest()
	s := New(m)
	client, srvConn := net.Pipe()
	go func() {
		defer srvConn.Close()
		_ = s.HandleConn(srvConn)
	}()
	defer client.Close()

	go func() { _ = proto.WriteHello(client, proto.Hello{VideoID: "srv"}) }()
	readCh := make(chan *proto.Message, 16)
	errCh := make(chan error, 1)
	go func() {
		for {
			msg, err := proto.ReadMessage(client)
			if err != nil {
				errCh <- err
				return
			}
			readCh <- msg
		}
	}()

	msg := <-readCh
	if msg.Type != proto.MsgManifest || msg.Manifest.VideoID != "srv" {
		t.Fatalf("expected manifest, got %d", msg.Type)
	}

	want := player.RequestItem{Stream: player.Primary, Chunk: 1, Tile: 5, Quality: 2}
	if err := proto.WriteRequest(client, proto.Request{Generation: 1, Items: []player.RequestItem{want}}); err != nil {
		t.Fatal(err)
	}
	select {
	case msg = <-readCh:
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(2 * time.Second):
		t.Fatal("no tile data")
	}
	if msg.Type != proto.MsgTileData || msg.TileData.Item != want {
		t.Fatalf("tile data mismatch: %+v", msg)
	}
	if int64(len(msg.TileData.Payload)) != m.TileSize(1, 5, 2) {
		t.Fatalf("payload %d bytes, want %d", len(msg.TileData.Payload), m.TileSize(1, 5, 2))
	}
	_ = proto.WriteBye(client)
}

func TestSendStateEqualGenerationReplay(t *testing.T) {
	m := testManifest()
	st := newSendState(m)
	st.install(proto.Request{Generation: 7, Items: []player.RequestItem{
		{Stream: player.Primary, Chunk: 0, Tile: 1, Quality: 1},
	}}, 0)
	// A reconnecting client replays its last request with the same
	// generation; the replay must install (idempotent), not be dropped.
	st.install(proto.Request{Generation: 7, Items: []player.RequestItem{
		{Stream: player.Primary, Chunk: 0, Tile: 2, Quality: 1},
	}}, 0)
	it, ok, _ := st.next(m)
	if !ok || it.Tile != 2 {
		t.Fatalf("equal-generation replay ignored: %+v ok=%v", it, ok)
	}
}

func TestSendStateGenerationWraparound(t *testing.T) {
	m := testManifest()
	st := newSendState(m)
	st.install(proto.Request{Generation: ^uint32(0) - 1, Items: []player.RequestItem{
		{Stream: player.Primary, Chunk: 0, Tile: 1, Quality: 1},
	}}, 0)
	// 3 is "newer" than 2^32-2 under serial-number arithmetic.
	st.install(proto.Request{Generation: 3, Items: []player.RequestItem{
		{Stream: player.Primary, Chunk: 0, Tile: 2, Quality: 1},
	}}, 0)
	it, ok, _ := st.next(m)
	if !ok || it.Tile != 2 {
		t.Fatalf("wrapped generation treated as stale: %+v ok=%v", it, ok)
	}
	// And the pre-wrap generation is now stale.
	st.install(proto.Request{Generation: ^uint32(0) - 5, Items: []player.RequestItem{
		{Stream: player.Primary, Chunk: 0, Tile: 3, Quality: 1},
	}}, 0)
	if _, ok, _ := st.next(m); ok {
		t.Fatal("pre-wrap generation accepted after wraparound")
	}
}

func TestSendStateInstallAfterClose(t *testing.T) {
	m := testManifest()
	st := newSendState(m)
	st.close()
	st.install(proto.Request{Generation: 1, Items: []player.RequestItem{
		{Stream: player.Primary, Chunk: 0, Tile: 1, Quality: 1},
	}}, 0)
	it, ok, done := st.next(m)
	if ok || !done {
		t.Fatalf("install after close queued work: %+v ok=%v done=%v", it, ok, done)
	}
}

func TestShedQueueKeepsMasking(t *testing.T) {
	items := []player.RequestItem{
		{Stream: player.Primary, Chunk: 0, Tile: 0, Quality: 1},
		{Stream: player.Masking, Chunk: 0, Full360: true},
		{Stream: player.Primary, Chunk: 0, Tile: 1, Quality: 1},
		{Stream: player.Masking, Chunk: 1, Full360: true},
		{Stream: player.Primary, Chunk: 0, Tile: 2, Quality: 1},
		{Stream: player.Primary, Chunk: 0, Tile: 3, Quality: 1},
	}
	kept, shed := shedQueue(items, 3)
	if shed != 3 || len(kept) != 3 {
		t.Fatalf("kept %d shed %d, want 3/3", len(kept), shed)
	}
	// Both masking entries survive; the single primary slot goes to the
	// highest-utility (earliest) primary.
	masks := 0
	for _, it := range kept {
		if it.Stream == player.Masking {
			masks++
		}
	}
	if masks != 2 {
		t.Fatalf("shedding dropped masking entries: %+v", kept)
	}
	if kept[0].Stream != player.Primary || kept[0].Tile != 0 {
		t.Fatalf("lowest-utility primary kept instead of head: %+v", kept)
	}
	// Under the cap, nothing is shed.
	if _, shed := shedQueue(items, 10); shed != 0 {
		t.Fatalf("shed %d below cap", shed)
	}
}

func TestSendStatePreload(t *testing.T) {
	m := testManifest()
	st := newSendState(m)
	held := player.HeldSummary{
		NumChunks: m.NumChunks,
		NumTiles:  m.NumTiles(),
		Primary:   make([]byte, (m.NumChunks*m.NumTiles()+7)/8),
		MaskTile:  make([]byte, (m.NumChunks*m.NumTiles()+7)/8),
		MaskFull:  make([]byte, (m.NumChunks+7)/8),
	}
	held.Primary[0] |= 1 << 3 // chunk 0, tile 3
	held.MaskFull[0] |= 1 << 1

	if n := st.preload(held, m); n != 2 {
		t.Fatalf("preload restored %d entries, want 2", n)
	}
	st.install(proto.Request{Generation: 1, Items: []player.RequestItem{
		{Stream: player.Primary, Chunk: 0, Tile: 3, Quality: 2}, // held: suppressed
		{Stream: player.Masking, Chunk: 1, Full360: true},       // held: suppressed
		{Stream: player.Masking, Chunk: 1, Tile: 0, Quality: 0}, // covered by held full-360
		{Stream: player.Primary, Chunk: 0, Tile: 4, Quality: 2}, // not held: sent
	}}, 0)
	it, ok, _ := st.next(m)
	if !ok || it.Tile != 4 || it.Stream != player.Primary {
		t.Fatalf("preload did not suppress held items: %+v ok=%v", it, ok)
	}
	if _, ok, _ := st.next(m); ok {
		t.Fatal("suppressed items leaked past preload")
	}
}

func TestHandleConnResume(t *testing.T) {
	m := testManifest()
	s := New(m)
	client, srvConn := net.Pipe()
	go func() {
		defer srvConn.Close()
		_ = s.HandleConnContext(context.Background(), srvConn)
	}()
	defer client.Close()

	held := player.HeldSummary{
		NumChunks: m.NumChunks,
		NumTiles:  m.NumTiles(),
		Primary:   make([]byte, (m.NumChunks*m.NumTiles()+7)/8),
		MaskTile:  make([]byte, (m.NumChunks*m.NumTiles()+7)/8),
		MaskFull:  make([]byte, (m.NumChunks+7)/8),
	}
	held.Primary[0] |= 1 << 5 // chunk 0, tile 5
	go func() {
		_ = proto.WriteResume(client, proto.Resume{Version: proto.ProtoVersion, VideoID: "srv", Held: held})
	}()
	msg, err := proto.ReadMessage(client)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != proto.MsgManifest {
		t.Fatalf("resume ack type %d, want manifest", msg.Type)
	}
	if err := proto.WriteRequest(client, proto.Request{Generation: 1, Items: []player.RequestItem{
		{Stream: player.Primary, Chunk: 0, Tile: 5, Quality: 2}, // held: must not be re-sent
		{Stream: player.Primary, Chunk: 0, Tile: 6, Quality: 2},
	}}); err != nil {
		t.Fatal(err)
	}
	msg, err = proto.ReadMessage(client)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != proto.MsgTileData || msg.TileData.Item.Tile != 6 {
		t.Fatalf("resumed session re-sent held tile: %+v", msg.TileData)
	}
	ctr := s.Counters()
	if ctr.Resumes != 1 || ctr.ResumedItems != 1 {
		t.Errorf("counters = %+v, want 1 resume / 1 restored", ctr)
	}
	_ = proto.WriteBye(client)
}

func TestHandleConnResumeVersionMismatch(t *testing.T) {
	m := testManifest()
	s := New(m)
	client, srvConn := net.Pipe()
	errCh := make(chan error, 1)
	go func() {
		defer srvConn.Close()
		errCh <- s.HandleConnContext(context.Background(), srvConn)
	}()
	defer client.Close()

	held := player.NewReceived(m).Summary()
	go func() {
		_ = proto.WriteResume(client, proto.Resume{Version: proto.ProtoVersion + 1, VideoID: "srv", Held: held})
	}()
	msg, err := proto.ReadMessage(client)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != proto.MsgError {
		t.Fatalf("old-version resume got type %d, want a clean MsgError", msg.Type)
	}
	if err := <-errCh; err == nil {
		t.Fatal("version mismatch reported no error")
	}
}

func TestHandleConnContextCancelDrains(t *testing.T) {
	m := testManifest()
	s := New(m)
	client, srvConn := net.Pipe()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- s.HandleConnContext(ctx, srvConn) }()
	defer client.Close()

	go func() { _ = proto.WriteHello(client, proto.Hello{VideoID: "srv"}) }()
	read := make(chan *proto.Message, 16)
	go func() {
		for {
			msg, err := proto.ReadMessage(client)
			if err != nil {
				close(read)
				return
			}
			read <- msg
		}
	}()
	if msg := <-read; msg.Type != proto.MsgManifest {
		t.Fatalf("expected manifest, got %d", msg.Type)
	}
	if err := proto.WriteRequest(client, proto.Request{Generation: 1, Items: []player.RequestItem{
		{Stream: player.Primary, Chunk: 0, Tile: 0, Quality: 1},
		{Stream: player.Primary, Chunk: 0, Tile: 1, Quality: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	// Let the queue install, then cancel: the handler must flush the
	// queued tiles and sign off with a Bye before closing.
	var tiles int
	var sawBye bool
	timer := time.After(5 * time.Second)
	cancelled := false
	for !sawBye {
		select {
		case msg, ok := <-read:
			if !ok {
				t.Fatalf("connection closed before Bye (tiles=%d)", tiles)
			}
			switch msg.Type {
			case proto.MsgTileData:
				tiles++
				if tiles == 2 && !cancelled {
					cancelled = true
					cancel()
				}
			case proto.MsgBye:
				sawBye = true
			}
		case <-timer:
			t.Fatal("no Bye after cancel")
		}
	}
	if tiles != 2 {
		t.Errorf("drained %d tiles, want 2", tiles)
	}
	if err := <-done; err != context.Canceled {
		t.Errorf("handler returned %v, want context.Canceled", err)
	}
}

func TestServeWaitsForHandlersOnShutdown(t *testing.T) {
	m := testManifest()
	s := New(m)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, l) }()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := proto.WriteHello(conn, proto.Hello{VideoID: "srv"}); err != nil {
		t.Fatal(err)
	}
	msg, err := proto.ReadMessage(conn)
	if err != nil || msg.Type != proto.MsgManifest {
		t.Fatalf("manifest: %v / type %v", err, msg)
	}
	if err := proto.WriteRequest(conn, proto.Request{Generation: 1, Items: []player.RequestItem{
		{Stream: player.Primary, Chunk: 0, Tile: 0, Quality: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	if msg, err := proto.ReadMessage(conn); err != nil || msg.Type != proto.MsgTileData {
		t.Fatalf("tile: %v / %+v", err, msg)
	}
	cancel()
	// Serve must not return before the in-flight handler has finished its
	// drain; by the time it does, the goodbye is on the wire.
	if err := <-done; err != context.Canceled {
		t.Fatalf("Serve returned %v", err)
	}
	sawBye := false
	for {
		msg, err := proto.ReadMessage(conn)
		if err != nil {
			break
		}
		if msg.Type == proto.MsgBye {
			sawBye = true
		}
	}
	if !sawBye {
		t.Error("no Bye after drained shutdown")
	}
}

func TestServeHonorsContext(t *testing.T) {
	s := New(testManifest())
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, l) }()
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Errorf("Serve returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not stop on cancel")
	}
}
