// Package server implements the Dragonfly tile server (paper §3.3): a
// modified-DASH-style server that sends the manifest, then streams tiles
// according to the client's most recent request. A new request supersedes
// the old one — queued-but-untransmitted tiles are dropped — and a tile
// already transmitted on the primary stream is never re-sent (only
// masking-quality tiles may be upgraded).
//
// The server is fault tolerant: a reconnecting client may open its session
// with a resume frame carrying the tiles it already holds, and the server
// rebuilds its redundancy-suppression state from it instead of re-sending.
// Per-connection read/write deadlines, an idle-link heartbeat, a bounded
// send queue with slow-client shedding, and graceful drain on context
// cancellation keep one misbehaving peer from wedging the process.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dragonfly/internal/chaos"
	"dragonfly/internal/obs"
	"dragonfly/internal/player"
	"dragonfly/internal/proto"
	"dragonfly/internal/store"
	"dragonfly/internal/video"
)

// Failpoints (see docs/RESILIENCE.md, "Failpoint catalog"). Disarmed —
// always, outside chaos tests — each is a single atomic load on the path
// that hosts it; the send-path cost is pinned by BenchmarkManyConnStream
// and the AllocsPerRun send tests.
var (
	// server.accept: drop (error kinds) or stall (delay) a just-accepted
	// connection before any handshake byte, as if the socket died between
	// accept and handoff.
	siteAccept = chaos.NewSite("server.accept")
	// server.send.write: fail, stall, tear (partial), or bit-flip
	// (corrupt) one batched vectored write on the tile send path.
	siteSendWrite = chaos.NewSite("server.send.write")
)

// ErrWriteStall reports a session torn down for exhausting its
// WriteStallBudget: the peer accepted bytes too slowly for too long
// (slowloris) and the session was killed to release its queue commitment.
var ErrWriteStall = errors.New("server: write-stall budget exhausted")

// DefaultHeartbeat is the idle-ping period used when Heartbeat is zero.
const DefaultHeartbeat = time.Second

// DefaultMaxQueue bounds the installed fetch list when MaxQueue is zero.
const DefaultMaxQueue = 4096

// Server serves a library of video manifests.
type Server struct {
	manifests map[string]*video.Manifest
	// stores holds the pre-framed wire buffers per video, built once at
	// manifest load (New) and shared process-wide across servers and
	// sessions: the steady-state send path serves these by reference with
	// zero per-send serialization or CRC work.
	stores map[string]*store.Store
	// Logf receives per-connection diagnostics; nil silences logging.
	Logf func(format string, args ...any)

	// ReadTimeout bounds the silence between client frames; the client
	// requests every decision interval (~100 ms), so any generous value
	// detects dead peers. 0 disables the deadline.
	ReadTimeout time.Duration
	// WriteTimeout bounds each outgoing frame; a client that cannot drain
	// the link within it is disconnected. 0 disables the deadline.
	WriteTimeout time.Duration
	// Heartbeat is the idle-ping period while the send queue is empty,
	// letting clients distinguish an idle link from a dead one.
	// 0 means DefaultHeartbeat; negative disables pings.
	Heartbeat time.Duration
	// MaxQueue caps the installed fetch list; oversized requests are shed
	// lowest-utility-first (the tail of the ordered list), but masking
	// entries are never dropped — they are the continuity floor continuous
	// playback relies on. 0 means DefaultMaxQueue.
	MaxQueue int
	// MaxQueueBytes caps the payload bytes an installed fetch list may
	// commit the session to — the per-session memory/backlog budget. It
	// feeds the same lowest-utility-first shedder as MaxQueue; masking
	// entries always fit. 0 disables the byte budget.
	MaxQueueBytes int64
	// MaxConns caps concurrent sessions. Beyond it the server fast-rejects
	// the handshake with a typed busy ErrorMsg that resilient clients
	// treat as retryable-with-backoff. 0 means unlimited.
	MaxConns int
	// WriteStallBudget bounds the cumulative *excess* time a session may
	// spend blocked in writes — the slowloris defense. Each write gets a
	// free allowance of a tenth of the budget (at least 1 ms); time beyond
	// the allowance accumulates, and when the total exceeds the budget the
	// session is killed with ErrWriteStall, releasing its queue bytes.
	// This is distinct from WriteTimeout: a peer that drains each write
	// just inside the deadline can still pin queue memory for the whole
	// session; the stall budget bounds that integral. 0 disables.
	WriteStallBudget time.Duration

	// QoE, when non-nil, scales each session's queue budgets by its
	// cohort's shed-budget scale at every request install — the server
	// half of the fleet QoE feedback loop (see QoESource). Nil keeps the
	// static budgets.
	QoE QoESource
	// TraceDir, when set, receives one server-view JSONL session trace
	// per connection (EvSession header with the handshake cohort, one
	// EvShed per shedding install) for the ingest tier to tail. Empty
	// disables server-side tracing.
	TraceDir string

	// active counts in-flight sessions for MaxConns admission; draining
	// flips on Drain() and fast-rejects new sessions while in-flight ones
	// run to completion. queuedBytes sums the payload bytes committed
	// across all live fetch queues; together they feed the
	// srv_active_conns / srv_draining / srv_queue_bytes gauges the
	// balancer reads off the admin endpoint to score backend load.
	active      atomic.Int64
	draining    atomic.Bool
	queuedBytes atomic.Int64

	// Obs, when non-nil, mirrors the send accounting into a metrics
	// registry (srv_* counters, tile-size and queue-length histograms) for
	// the admin endpoint. Nil disables the mirroring.
	Obs *obs.Registry

	ctr counters
}

// connObs is the per-connection binding of the registry metrics: handles
// are resolved once per connection so the tile-send hot loop updates them
// with plain atomics, no map lookups. All handles are nil-safe.
type connObs struct {
	primary, maskTile, maskFull *obs.Counter
	bytes, pings, shed          *obs.Counter
	shedBytes, corruptFrames    *obs.Counter
	qoeInstalls                 *obs.Counter
	tileBytes, queueLen         *obs.Histogram
}

func (s *Server) bindConnObs() connObs {
	r := s.Obs // nil registry hands out detached, nil-safe metrics
	return connObs{
		primary:       r.Counter("srv_primary_sent"),
		maskTile:      r.Counter("srv_mask_tile_sent"),
		maskFull:      r.Counter("srv_mask_full_sent"),
		bytes:         r.Counter("srv_bytes_sent"),
		pings:         r.Counter("srv_pings"),
		shed:          r.Counter("srv_shed_items"),
		shedBytes:     r.Counter("srv_shed_bytes"),
		corruptFrames: r.Counter("srv_corrupt_frames"),
		qoeInstalls:   r.Counter("srv_qoe_scaled_installs"),
		tileBytes:     r.Histogram("srv_tile_bytes"),
		queueLen:      r.Histogram("srv_queue_len"),
	}
}

// counters aggregates send accounting across all connections.
type counters struct {
	primarySent   atomic.Int64
	maskTileSent  atomic.Int64
	maskFullSent  atomic.Int64
	bytesSent     atomic.Int64
	pings         atomic.Int64
	resumes       atomic.Int64
	resumedItems  atomic.Int64
	shedItems     atomic.Int64
	shedBytes     atomic.Int64
	corruptFrames atomic.Int64
	rejectedConns atomic.Int64
	probes        atomic.Int64
	qoeInstalls   atomic.Int64
	stallKills    atomic.Int64
}

// Counters is a snapshot of the server's send accounting; the chaos tests
// use it to prove resumed sessions never re-send held primary tiles.
type Counters struct {
	PrimarySent  int64 // primary tile transmissions
	MaskTileSent int64 // tiled masking transmissions
	MaskFullSent int64 // full-360° masking transmissions
	BytesSent    int64 // payload bytes written
	Pings        int64 // idle heartbeats written
	Resumes      int64 // sessions opened via MsgResume
	ResumedItems int64 // dedup entries restored from resume summaries
	ShedItems    int64 // queued items dropped by slow-client shedding
	ShedBytes    int64 // payload bytes those shed items would have sent
	// CorruptFrames counts inbound frames torn down for a CRC-trailer
	// mismatch; RejectedConns counts handshakes fast-rejected by admission
	// control (MaxConns saturation or drain mode). Probes counts health
	// probes (first-message MsgPing) answered with a status pong.
	CorruptFrames int64
	RejectedConns int64
	Probes        int64
	// QoEScaledInstalls counts request installs whose queue budgets were
	// adjusted by a non-neutral cohort scale from the QoE feedback loop.
	QoEScaledInstalls int64
	// WriteStallKills counts sessions torn down with ErrWriteStall for
	// exhausting WriteStallBudget.
	WriteStallKills int64
}

// Counters returns a snapshot of the server's send accounting.
func (s *Server) Counters() Counters {
	return Counters{
		PrimarySent:       s.ctr.primarySent.Load(),
		MaskTileSent:      s.ctr.maskTileSent.Load(),
		MaskFullSent:      s.ctr.maskFullSent.Load(),
		BytesSent:         s.ctr.bytesSent.Load(),
		Pings:             s.ctr.pings.Load(),
		Resumes:           s.ctr.resumes.Load(),
		ResumedItems:      s.ctr.resumedItems.Load(),
		ShedItems:         s.ctr.shedItems.Load(),
		ShedBytes:         s.ctr.shedBytes.Load(),
		CorruptFrames:     s.ctr.corruptFrames.Load(),
		RejectedConns:     s.ctr.rejectedConns.Load(),
		Probes:            s.ctr.probes.Load(),
		QoEScaledInstalls: s.ctr.qoeInstalls.Load(),
		WriteStallKills:   s.ctr.stallKills.Load(),
	}
}

// Drain puts the server in drain mode: new handshakes are fast-rejected
// with a retryable busy error while in-flight sessions run to completion.
// Combine with context cancellation (after the sessions finish) for a full
// graceful shutdown; Drain itself never interrupts a stream.
func (s *Server) Drain() {
	s.draining.Store(true)
	s.Obs.Gauge("srv_draining").Set(1)
}

// Draining reports whether the server is refusing new sessions.
func (s *Server) Draining() bool { return s.draining.Load() }

// ActiveConns reports the number of in-flight sessions.
func (s *Server) ActiveConns() int64 { return s.active.Load() }

// noteActive adjusts the in-flight session count and mirrors it to the
// srv_active_conns gauge, returning the new count.
func (s *Server) noteActive(delta int64) int64 {
	n := s.active.Add(delta)
	s.Obs.Gauge("srv_active_conns").Set(float64(n))
	return n
}

// addQueuedBytes adjusts the fleet-visible queued-payload total and
// mirrors it to the srv_queue_bytes gauge. It is the sendState report
// callback: installs add, sends and teardown subtract.
func (s *Server) addQueuedBytes(delta int64) {
	s.Obs.Gauge("srv_queue_bytes").Set(float64(s.queuedBytes.Add(delta)))
}

// QueuedBytes reports the payload bytes currently committed across all
// live fetch queues.
func (s *Server) QueuedBytes() int64 { return s.queuedBytes.Load() }

// New creates a server for the given videos. It warms the shared tile
// store for each manifest here, at load time, so the per-manifest CRC
// framing cost is paid once per process — a cold-restarted server in the
// same process (the crash tests, the fleet balancer's respawns) reuses
// the already-built frames.
func New(manifests ...*video.Manifest) *Server {
	s := &Server{
		manifests: make(map[string]*video.Manifest, len(manifests)),
		stores:    make(map[string]*store.Store, len(manifests)),
	}
	for _, m := range manifests {
		s.manifests[m.VideoID] = m
		s.stores[m.VideoID] = store.Shared(m)
	}
	return s
}

// Videos lists the available video IDs.
func (s *Server) Videos() []string {
	out := make([]string, 0, len(s.manifests))
	for id := range s.manifests {
		out = append(out, id)
	}
	return out
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Server) setReadDeadline(conn net.Conn) {
	if s.ReadTimeout > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(s.ReadTimeout))
	}
}

func (s *Server) setWriteDeadline(conn net.Conn) {
	if s.WriteTimeout > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(s.WriteTimeout))
	}
}

// Serve accepts connections until the listener fails or ctx is done. On
// cancellation it stops accepting, lets in-flight handlers drain their
// queues and say goodbye, and waits for them before returning.
func (s *Server) Serve(ctx context.Context, l net.Listener) error {
	// Publish the load gauges at their current values so a balancer
	// scraping a fresh (or restarted) instance reads zeros, not absent
	// keys it would have to treat as stale data.
	s.noteActive(0)
	s.addQueuedBytes(0)
	// srv_store_bytes is the resident footprint of the shared tile
	// stores — the process-wide cost of serving these manifests to any
	// number of sessions. It is distinct from srv_queue_bytes, which
	// counts pending transmission over shared (not duplicated) buffers.
	var storeBytes int64
	for _, ts := range s.stores {
		storeBytes += ts.MemoryBytes()
	}
	s.Obs.Gauge("srv_store_bytes").Set(float64(storeBytes))
	if s.draining.Load() {
		s.Obs.Gauge("srv_draining").Set(1)
	} else {
		s.Obs.Gauge("srv_draining").Set(0)
	}
	go func() {
		<-ctx.Done()
		l.Close()
	}()
	var wg sync.WaitGroup
	for {
		conn, err := l.Accept()
		if err != nil {
			wg.Wait()
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		if f := siteAccept.Fault(); f.Active() {
			// Injected accept-path fault: the connection dies (or stalls)
			// between accept and handoff, before any handshake byte.
			// Clients see a closed conn and redial through their normal
			// reconnect path.
			if f.Kind == chaos.FaultDelay {
				time.Sleep(f.Delay)
			} else {
				conn.Close()
				continue
			}
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer conn.Close()
			if err := s.HandleConnContext(ctx, conn); err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, context.Canceled) {
				s.logf("server: connection ended: %v", err)
			}
		}()
	}
}

// sendState is the per-connection queue shared between the request reader
// and the tile sender.
type sendState struct {
	mu     sync.Mutex
	wake   chan struct{}
	queue  []player.RequestItem
	gen    uint32
	closed bool

	// queuedBytes is the payload total of the installed queue; every
	// change is pushed through report (a delta callback) so the server
	// can keep a cross-connection srv_queue_bytes gauge current.
	queuedBytes int64
	report      func(delta int64)

	sentPrimary  []bool
	sentMaskTile []bool
	sentMaskFull []bool
}

func newSendState(m *video.Manifest) *sendState {
	tiles := m.NumTiles()
	return &sendState{
		wake:         make(chan struct{}, 1),
		report:       func(int64) {},
		sentPrimary:  make([]bool, m.NumChunks*tiles),
		sentMaskTile: make([]bool, m.NumChunks*tiles),
		sentMaskFull: make([]bool, m.NumChunks),
	}
}

func (st *sendState) signal() {
	select {
	case st.wake <- struct{}{}:
	default:
	}
}

// install replaces the queue if the request is at least as new ("when a new
// request is received, the server discards the previous (older) request").
// Generations compare with serial-number arithmetic so a long-lived session
// survives uint32 wraparound, and an equal generation re-installs — the
// idempotent replay a reconnecting client relies on. It returns how many
// items (and payload bytes) were shed to fit the count and byte budgets.
func (st *sendState) install(r proto.Request, maxQueue int, maxBytes int64, m *video.Manifest) (int, int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed || int32(r.Generation-st.gen) < 0 {
		// Stale (out-of-order) requests are ignored.
		return 0, 0
	}
	st.gen = r.Generation
	items, shed, shedBytes := shedQueue(r.Items, maxQueue, maxBytes, m)
	st.queue = items
	var bytes int64
	for _, it := range items {
		bytes += safeSize(it, m)
	}
	if delta := bytes - st.queuedBytes; delta != 0 {
		st.queuedBytes = bytes
		st.report(delta)
	}
	st.signal()
	return shed, shedBytes
}

// shedQueue drops the lowest-utility entries to fit the count cap and the
// per-session byte budget. Fetch lists are ordered by descending utility
// (the scheme contract), so the tail holds the least valuable items — but
// masking entries are never dropped: they are the continuity floor, and
// they consume budget that primaries then cannot. With a byte budget, an
// oversized primary is shed while smaller lower-utility ones may still
// fit; that is deliberate (more of the viewport covered per byte).
func shedQueue(items []player.RequestItem, max int, maxBytes int64, m *video.Manifest) ([]player.RequestItem, int, int64) {
	overCount := max > 0 && len(items) > max
	if !overCount && maxBytes <= 0 {
		return items, 0, 0
	}
	if !overCount {
		var total int64
		for _, it := range items {
			total += safeSize(it, m)
		}
		if total <= maxBytes {
			return items, 0, 0
		}
	}
	countBudget := max
	if max <= 0 {
		countBudget = len(items)
	}
	byteBudget := maxBytes
	for _, it := range items {
		if it.Stream == player.Masking {
			countBudget--
			if maxBytes > 0 {
				byteBudget -= safeSize(it, m)
			}
		}
	}
	// Masking alone may overrun either cap (it is never shed). Clamp the
	// remaining budgets at zero: a negative byte budget would otherwise
	// fail even the zero-size comparison below and shed malformed items
	// that the contract says always fit the BYTE budget (next() drops
	// them for free; they must not burn shed accounting as real tiles).
	if countBudget < 0 {
		countBudget = 0
	}
	if byteBudget < 0 {
		byteBudget = 0
	}
	kept := make([]player.RequestItem, 0, len(items))
	var shedBytes int64
	for _, it := range items {
		if it.Stream == player.Masking {
			kept = append(kept, it)
			continue
		}
		size := safeSize(it, m)
		if countBudget > 0 && (maxBytes <= 0 || byteBudget >= size) {
			kept = append(kept, it)
			countBudget--
			if maxBytes > 0 {
				byteBudget -= size
			}
			continue
		}
		shedBytes += size
	}
	return kept, len(items) - len(kept), shedBytes
}

// safeSize is RequestItem.Size with bounds checks: request items come off
// the wire, and an out-of-range chunk or tile must shed as zero bytes (the
// sender's next() skips it anyway), not panic the connection handler.
func safeSize(it player.RequestItem, m *video.Manifest) int64 {
	if it.Chunk < 0 || it.Chunk >= m.NumChunks || !it.Quality.Valid() {
		return 0
	}
	if !it.Full360 && (int(it.Tile) < 0 || int(it.Tile) >= m.NumTiles()) {
		return 0
	}
	return it.Size(m)
}

// preload marks the client-held items from a resume summary as already
// sent, restoring the redundancy suppression of the pre-disconnect
// session. It returns the number of entries restored.
func (st *sendState) preload(h player.HeldSummary, m *video.Manifest) int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	tiles := m.NumTiles()
	var restored int64
	for c := 0; c < m.NumChunks && c < h.NumChunks; c++ {
		if h.HasMaskFull(c) && !st.sentMaskFull[c] {
			st.sentMaskFull[c] = true
			restored++
		}
		for tl := 0; tl < tiles && tl < h.NumTiles; tl++ {
			ct := c*tiles + tl
			if h.HasPrimary(c, tl) && !st.sentPrimary[ct] {
				st.sentPrimary[ct] = true
				restored++
			}
			if h.HasMaskTile(c, tl) && !st.sentMaskTile[ct] {
				st.sentMaskTile[ct] = true
				restored++
			}
		}
	}
	return restored
}

// next pops the next sendable item, applying the redundancy rule, or
// returns false if the queue is (currently) exhausted. done reports the
// connection was closed.
func (st *sendState) next(m *video.Manifest) (it player.RequestItem, ok, done bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	tiles := m.NumTiles()
	for len(st.queue) > 0 {
		it = st.queue[0]
		st.queue = st.queue[1:]
		if size := safeSize(it, m); size > 0 {
			st.queuedBytes -= size
			st.report(-size)
		}
		if it.Chunk < 0 || it.Chunk >= m.NumChunks || (!it.Full360 && int(it.Tile) >= tiles) {
			continue // malformed entry; skip defensively
		}
		switch {
		case it.Stream == player.Primary:
			ct := it.Chunk*tiles + int(it.Tile)
			if st.sentPrimary[ct] {
				continue
			}
			st.sentPrimary[ct] = true
		case it.Full360:
			if st.sentMaskFull[it.Chunk] {
				continue
			}
			st.sentMaskFull[it.Chunk] = true
		default:
			ct := it.Chunk*tiles + int(it.Tile)
			if st.sentMaskTile[ct] || st.sentMaskFull[it.Chunk] {
				continue
			}
			st.sentMaskTile[ct] = true
		}
		return it, true, false
	}
	return player.RequestItem{}, false, st.closed
}

func (st *sendState) close() {
	st.mu.Lock()
	st.closed = true
	st.mu.Unlock()
	st.signal()
}

// releaseQueued closes the state and returns its remaining byte
// commitment through the report callback, so a session torn down with a
// non-empty queue (write error, kill) does not leak srv_queue_bytes.
// Installs racing with teardown are ignored by the closed check in
// install, so the gauge cannot drift after release.
func (st *sendState) releaseQueued() {
	st.mu.Lock()
	st.closed = true
	rem := st.queuedBytes
	st.queuedBytes = 0
	if rem != 0 {
		st.report(-rem)
	}
	st.mu.Unlock()
	st.signal()
}

// HandleConn runs one streaming session over an established connection.
func (s *Server) HandleConn(conn net.Conn) error {
	return s.HandleConnContext(context.Background(), conn)
}

// HandleConnContext runs one streaming session; on ctx cancellation the
// sender drains the queued tiles, sends a Bye, and returns.
func (s *Server) HandleConnContext(ctx context.Context, conn net.Conn) error {
	// Admission control first, before reading a single client byte: a
	// saturated or draining server must shed load instantly, not after a
	// handshake's worth of work. The busy ErrorMsg is typed so resilient
	// clients back off and retry instead of giving up.
	if s.draining.Load() {
		s.ctr.rejectedConns.Add(1)
		s.Obs.Counter("srv_rejected_conns").Inc()
		s.setWriteDeadline(conn)
		_ = proto.WriteError(conn, proto.BusyText("server draining"))
		return fmt.Errorf("server: rejected connection: draining")
	}
	if s.MaxConns > 0 {
		if n := s.noteActive(1); n > int64(s.MaxConns) {
			s.noteActive(-1)
			s.ctr.rejectedConns.Add(1)
			s.Obs.Counter("srv_rejected_conns").Inc()
			s.setWriteDeadline(conn)
			_ = proto.WriteError(conn, proto.BusyText(fmt.Sprintf("connection limit %d reached", s.MaxConns)))
			return fmt.Errorf("server: rejected connection: limit %d reached", s.MaxConns)
		}
	} else {
		s.noteActive(1)
	}
	defer s.noteActive(-1)
	s.setReadDeadline(conn)
	msg, err := proto.ReadMessage(conn)
	if err != nil {
		return fmt.Errorf("server: read hello: %w", err)
	}
	var (
		m      *video.Manifest
		ok     bool
		held   *player.HeldSummary
		cohort string
	)
	switch msg.Type {
	case proto.MsgHello:
		m, ok = s.manifests[msg.Hello.VideoID]
		if !ok {
			_ = proto.WriteError(conn, fmt.Sprintf("unknown video %q", msg.Hello.VideoID))
			return fmt.Errorf("server: unknown video %q", msg.Hello.VideoID)
		}
		cohort = msg.Hello.Cohort
	case proto.MsgResume:
		r := msg.Resume
		if r.Version != proto.ProtoVersion {
			_ = proto.WriteError(conn, fmt.Sprintf("unsupported protocol version %d (want %d)", r.Version, proto.ProtoVersion))
			return fmt.Errorf("server: resume with protocol version %d", r.Version)
		}
		m, ok = s.manifests[r.VideoID]
		if !ok {
			_ = proto.WriteError(conn, fmt.Sprintf("unknown video %q", r.VideoID))
			return fmt.Errorf("server: unknown video %q", r.VideoID)
		}
		if r.Held.NumChunks != m.NumChunks || r.Held.NumTiles != m.NumTiles() {
			_ = proto.WriteError(conn, "resume state does not match video geometry")
			return fmt.Errorf("server: resume geometry %dx%d for %q", r.Held.NumChunks, r.Held.NumTiles, r.VideoID)
		}
		held = &r.Held
		cohort = r.Cohort
	case proto.MsgPing:
		// Health probe (balancer or external checker): answer with a
		// status pong and end the connection. The figure excludes the
		// probe's own admission slot, so an idle server reports zero.
		// A draining or saturated server never reaches here — admission
		// busy-rejects first, which probers read as "alive but
		// unroutable".
		n := s.active.Load() - 1
		if n < 0 {
			n = 0
		}
		s.ctr.probes.Add(1)
		s.Obs.Counter("srv_probes").Inc()
		s.setWriteDeadline(conn)
		if err := proto.WritePong(conn, proto.Pong{Draining: s.draining.Load(), ActiveConns: uint32(n)}); err != nil {
			return fmt.Errorf("server: send pong: %w", err)
		}
		return nil
	default:
		return fmt.Errorf("server: expected hello, got type %d", msg.Type)
	}
	s.setWriteDeadline(conn)
	if err := proto.WriteManifest(conn, m); err != nil {
		return fmt.Errorf("server: send manifest: %w", err)
	}

	co := s.bindConnObs()
	s.Obs.Counter("srv_conns_opened").Inc()
	defer s.Obs.Counter("srv_conns_closed").Inc()

	strace := s.startSessionTrace(m.VideoID, cohort)
	defer strace.flush(s.Logf)

	st := newSendState(m)
	st.report = s.addQueuedBytes
	defer st.releaseQueued()
	if held != nil {
		restored := st.preload(*held, m)
		s.ctr.resumes.Add(1)
		s.ctr.resumedItems.Add(restored)
		s.Obs.Counter("srv_resumes").Inc()
		s.Obs.Counter("srv_resumed_items").Add(restored)
	}
	// Graceful drain: cancellation closes the send state, so the sender
	// flushes what is queued and says goodbye instead of vanishing.
	stopWatch := context.AfterFunc(ctx, st.close)
	defer stopWatch()

	maxQueue := s.MaxQueue
	if maxQueue == 0 {
		maxQueue = DefaultMaxQueue
	}

	// Request reader: installs each new fetch list until the client leaves.
	// The frame body buffer is owned by this loop and recycled across
	// reads (proto.ReadMessageBuf); nothing below retains the message past
	// one iteration — the item slice install keeps is decoded into fresh
	// memory by the proto layer, not aliased into the frame body.
	readErr := make(chan error, 1)
	go func() {
		defer st.close()
		var rbuf []byte
		for {
			s.setReadDeadline(conn)
			var msg *proto.Message
			var err error
			msg, rbuf, err = proto.ReadMessageBuf(conn, rbuf)
			if err != nil {
				if errors.Is(err, proto.ErrChecksum) {
					s.ctr.corruptFrames.Add(1)
					co.corruptFrames.Inc()
				}
				readErr <- err
				return
			}
			switch msg.Type {
			case proto.MsgRequest:
				co.queueLen.Observe(float64(len(msg.Request.Items)))
				// The QoE feedback loop modulates this session's budgets by
				// its cohort's scale, re-read per install so a fresh rollup
				// takes effect within one request interval (~100 ms).
				effQueue, effBytes := maxQueue, s.MaxQueueBytes
				if scale := s.qoeScale(cohort); scale != 1 {
					effQueue, effBytes = scaleBudgets(maxQueue, s.MaxQueueBytes, scale)
					s.ctr.qoeInstalls.Add(1)
					co.qoeInstalls.Inc()
				}
				if shed, shedBytes := st.install(*msg.Request, effQueue, effBytes, m); shed > 0 {
					s.ctr.shedItems.Add(int64(shed))
					s.ctr.shedBytes.Add(shedBytes)
					co.shed.Add(int64(shed))
					co.shedBytes.Add(shedBytes)
					strace.shed(shedBytes)
				}
			case proto.MsgBye:
				readErr <- nil
				return
			default:
				readErr <- fmt.Errorf("server: unexpected message type %d", msg.Type)
				return
			}
		}
	}()

	heartbeat := s.Heartbeat
	if heartbeat == 0 {
		heartbeat = DefaultHeartbeat
	}

	// Tile sender: drains the queue by reference from the shared tile
	// store. A send appends pre-framed (head, payload, trailer) slices to
	// a scratch net.Buffers and flushes the batch with one vectored
	// write — zero per-send serialization or CRC work, zero per-session
	// payload memory. Batching is bounded so one slow client holds at
	// most one batch's worth of deadline, and a new (superseding) request
	// takes effect at the next batch boundary.
	tileStore := s.stores[m.VideoID]
	const (
		maxBatchFrames = 32
		maxBatchBytes  = 1 << 20
	)
	var (
		// scratch accumulates the batch; wire is the slice-header copy the
		// vectored write consumes (net.Buffers.WriteTo reslices the value
		// it runs on to zero capacity — writing through a copy keeps
		// scratch's backing array reusable across batches).
		scratch = make(net.Buffers, 0, 3*maxBatchFrames)
		wire    net.Buffers
		batch   = make([]player.RequestItem, 0, maxBatchFrames)
		sizes   = make([]int64, 0, maxBatchFrames) // payload bytes per frame
		ends    = make([]int64, 0, maxBatchFrames) // cumulative wire offsets
	)
	var idle *time.Timer
	defer func() {
		if idle != nil {
			idle.Stop()
		}
	}()
	// Write-stall (slowloris) accounting: each write is allowed
	// stallThresh of blocking for free; the excess accumulates in
	// stallSpent and exhausting stallBudget kills the session. Metering
	// (the time.Now pair) is skipped entirely when the budget is off, so
	// the default hot path is unchanged.
	stallBudget := s.WriteStallBudget
	stallThresh := stallBudget / 10
	if stallBudget > 0 && stallThresh < time.Millisecond {
		stallThresh = time.Millisecond
	}
	var stallSpent time.Duration
	noteStall := func(d time.Duration) error {
		if d <= stallThresh {
			return nil
		}
		stallSpent += d - stallThresh
		if stallSpent <= stallBudget {
			return nil
		}
		st.close()
		s.ctr.stallKills.Add(1)
		s.Obs.Counter("srv_write_stall_kills").Inc()
		return ErrWriteStall
	}
	for {
		it, ok, done := st.next(m)
		if done {
			break
		}
		if !ok {
			if heartbeat > 0 {
				if idle == nil {
					idle = time.NewTimer(heartbeat)
				} else {
					idle.Reset(heartbeat)
				}
				select {
				case <-st.wake:
					if !idle.Stop() {
						<-idle.C
					}
				case <-idle.C:
					s.setWriteDeadline(conn)
					var start time.Time
					if stallBudget > 0 {
						start = time.Now()
					}
					if err := proto.WritePing(conn); err != nil {
						st.close()
						return fmt.Errorf("server: send ping: %w", err)
					}
					if stallBudget > 0 {
						if err := noteStall(time.Since(start)); err != nil {
							return fmt.Errorf("server: send ping: %w", err)
						}
					}
					s.ctr.pings.Add(1)
					co.pings.Inc()
				}
			} else {
				<-st.wake
			}
			continue
		}
		// Gather: the popped item plus whatever is immediately sendable,
		// up to the batch caps. Items the store cannot serve (beyond the
		// frame cap, or a full-360° requested on the primary stream) are
		// skipped, mirroring next()'s treatment of malformed entries.
		scratch = scratch[:0]
		batch = batch[:0]
		sizes = sizes[:0]
		ends = ends[:0]
		var wireBytes int64
		drained := false
		for {
			if bufs, fsize, okf := tileStore.AppendFrame(scratch, it); okf {
				scratch = bufs
				wireBytes += fsize
				batch = append(batch, it)
				sizes = append(sizes, fsize-proto.TileFrameOverhead)
				ends = append(ends, wireBytes)
			}
			if len(batch) >= maxBatchFrames || wireBytes >= maxBatchBytes {
				break
			}
			if it, ok, done = st.next(m); !ok {
				drained = done
				break
			}
		}
		if len(batch) > 0 {
			s.setWriteDeadline(conn)
			wire = scratch
			var start time.Time
			if stallBudget > 0 {
				start = time.Now()
			}
			n, err := writeBatch(conn, wire)
			// Credit only frames the connection fully accepted; on a
			// partial write the torn tail was never delivered, and the
			// dedup invariants the chaos tests pin are send upper bounds.
			sent := 0
			for sent < len(ends) && ends[sent] <= n {
				sent++
			}
			for i := 0; i < sent; i++ {
				switch fr := batch[i]; {
				case fr.Stream == player.Primary:
					s.ctr.primarySent.Add(1)
					co.primary.Inc()
				case fr.Full360:
					s.ctr.maskFullSent.Add(1)
					co.maskFull.Inc()
				default:
					s.ctr.maskTileSent.Add(1)
					co.maskTile.Inc()
				}
				s.ctr.bytesSent.Add(sizes[i])
				co.bytes.Add(sizes[i])
				co.tileBytes.Observe(float64(sizes[i]))
			}
			if err != nil {
				st.close()
				return fmt.Errorf("server: send tile: %w", err)
			}
			if stallBudget > 0 {
				if err := noteStall(time.Since(start)); err != nil {
					return fmt.Errorf("server: send tile: %w", err)
				}
			}
		}
		if drained {
			break
		}
	}
	// Best-effort goodbye: on graceful drain it tells the client the
	// remaining queue has been flushed and nothing more is coming.
	s.setWriteDeadline(conn)
	_ = proto.WriteBye(conn)
	if ctx.Err() != nil {
		// Unblock the request reader (it may be mid-read with no deadline)
		// and report the drain.
		conn.Close()
		<-readErr
		return ctx.Err()
	}
	if err := <-readErr; err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
		return err
	}
	return nil
}

// writeBatch flushes one gathered batch. Disarmed (always, in production)
// it is exactly the vectored wire.WriteTo; armed, the server.send.write
// failpoint turns the flush into a returned error, a stall, a torn write
// delivering only a prefix, or a full write with one flipped byte. The
// fault paths flatten into a private copy — the store's shared buffers are
// immutable and must never be written through.
func writeBatch(conn net.Conn, wire net.Buffers) (int64, error) {
	f := siteSendWrite.Fault()
	if !f.Active() {
		return wire.WriteTo(conn)
	}
	switch f.Kind {
	case chaos.FaultDelay:
		time.Sleep(f.Delay)
		return wire.WriteTo(conn)
	case chaos.FaultError:
		return 0, f.Err
	}
	var total int
	for _, b := range wire {
		total += len(b)
	}
	flat := make([]byte, 0, total)
	for _, b := range wire {
		flat = append(flat, b...)
	}
	if f.Kind == chaos.FaultCorrupt && len(flat) > 0 {
		// One flipped byte in the last frame's CRC trailer: the client's
		// frame CRC fails and the link tears down. The trailer (not an
		// arbitrary offset) is chosen so the frame LENGTH fields stay
		// intact — a corrupted length would stall the reader waiting for
		// bytes that never come rather than failing fast, which is the
		// read-timeout failure mode, not the integrity one this kind
		// models. The hit tick picks which trailer byte, deterministically.
		off := len(flat) - 1 - int(f.Tick%uint64(min(4, len(flat))))
		flat[off] ^= 0x40
		n, err := conn.Write(flat)
		return int64(n), err
	}
	// Partial: deliver a prefix, then fail as the kernel would on a
	// connection reset mid-writev. The caller's cumulative-offset
	// accounting credits only fully delivered frames.
	k := int(float64(len(flat)) * f.Frac)
	n, err := conn.Write(flat[:k])
	if err == nil {
		err = f.Err
	}
	return int64(n), err
}

// ListenAndServe listens on addr and serves until ctx is done.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", addr, err)
	}
	log.Printf("dragonfly server listening on %s (videos: %v)", l.Addr(), s.Videos())
	return s.Serve(ctx, l)
}
