// Package server implements the Dragonfly tile server (paper §3.3): a
// modified-DASH-style server that sends the manifest, then streams tiles
// according to the client's most recent request. A new request supersedes
// the old one — queued-but-untransmitted tiles are dropped — and a tile
// already transmitted on the primary stream is never re-sent (only
// masking-quality tiles may be upgraded).
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"

	"dragonfly/internal/player"
	"dragonfly/internal/proto"
	"dragonfly/internal/video"
)

// Server serves a library of video manifests.
type Server struct {
	manifests map[string]*video.Manifest
	// Logf receives per-connection diagnostics; nil silences logging.
	Logf func(format string, args ...any)
}

// New creates a server for the given videos.
func New(manifests ...*video.Manifest) *Server {
	s := &Server{manifests: make(map[string]*video.Manifest, len(manifests))}
	for _, m := range manifests {
		s.manifests[m.VideoID] = m
	}
	return s
}

// Videos lists the available video IDs.
func (s *Server) Videos() []string {
	out := make([]string, 0, len(s.manifests))
	for id := range s.manifests {
		out = append(out, id)
	}
	return out
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// Serve accepts connections until the listener fails or ctx is done.
func (s *Server) Serve(ctx context.Context, l net.Listener) error {
	go func() {
		<-ctx.Done()
		l.Close()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		go func() {
			defer conn.Close()
			if err := s.HandleConn(conn); err != nil && !errors.Is(err, io.EOF) {
				s.logf("server: connection ended: %v", err)
			}
		}()
	}
}

// sendState is the per-connection queue shared between the request reader
// and the tile sender.
type sendState struct {
	mu     sync.Mutex
	wake   chan struct{}
	queue  []player.RequestItem
	gen    uint32
	closed bool

	sentPrimary  []bool
	sentMaskTile []bool
	sentMaskFull []bool
}

func newSendState(m *video.Manifest) *sendState {
	tiles := m.NumTiles()
	return &sendState{
		wake:         make(chan struct{}, 1),
		sentPrimary:  make([]bool, m.NumChunks*tiles),
		sentMaskTile: make([]bool, m.NumChunks*tiles),
		sentMaskFull: make([]bool, m.NumChunks),
	}
}

func (st *sendState) signal() {
	select {
	case st.wake <- struct{}{}:
	default:
	}
}

// install replaces the queue if the request is newer ("when a new request
// is received, the server discards the previous (older) request").
func (st *sendState) install(r proto.Request) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed || r.Generation < st.gen {
		// Stale (out-of-order) requests are ignored.
		return
	}
	st.gen = r.Generation
	st.queue = r.Items
	st.signal()
}

// next pops the next sendable item, applying the redundancy rule, or
// returns false if the queue is (currently) exhausted. done reports the
// connection was closed.
func (st *sendState) next(m *video.Manifest) (it player.RequestItem, ok, done bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	tiles := m.NumTiles()
	for len(st.queue) > 0 {
		it = st.queue[0]
		st.queue = st.queue[1:]
		if it.Chunk < 0 || it.Chunk >= m.NumChunks || (!it.Full360 && int(it.Tile) >= tiles) {
			continue // malformed entry; skip defensively
		}
		switch {
		case it.Stream == player.Primary:
			ct := it.Chunk*tiles + int(it.Tile)
			if st.sentPrimary[ct] {
				continue
			}
			st.sentPrimary[ct] = true
		case it.Full360:
			if st.sentMaskFull[it.Chunk] {
				continue
			}
			st.sentMaskFull[it.Chunk] = true
		default:
			ct := it.Chunk*tiles + int(it.Tile)
			if st.sentMaskTile[ct] || st.sentMaskFull[it.Chunk] {
				continue
			}
			st.sentMaskTile[ct] = true
		}
		return it, true, false
	}
	return player.RequestItem{}, false, st.closed
}

func (st *sendState) close() {
	st.mu.Lock()
	st.closed = true
	st.mu.Unlock()
	st.signal()
}

// HandleConn runs one streaming session over an established connection.
func (s *Server) HandleConn(conn net.Conn) error {
	msg, err := proto.ReadMessage(conn)
	if err != nil {
		return fmt.Errorf("server: read hello: %w", err)
	}
	if msg.Type != proto.MsgHello {
		return fmt.Errorf("server: expected hello, got type %d", msg.Type)
	}
	m, ok := s.manifests[msg.Hello.VideoID]
	if !ok {
		_ = proto.WriteError(conn, fmt.Sprintf("unknown video %q", msg.Hello.VideoID))
		return fmt.Errorf("server: unknown video %q", msg.Hello.VideoID)
	}
	if err := proto.WriteManifest(conn, m); err != nil {
		return fmt.Errorf("server: send manifest: %w", err)
	}

	st := newSendState(m)

	// Request reader: installs each new fetch list until the client leaves.
	readErr := make(chan error, 1)
	go func() {
		defer st.close()
		for {
			msg, err := proto.ReadMessage(conn)
			if err != nil {
				readErr <- err
				return
			}
			switch msg.Type {
			case proto.MsgRequest:
				st.install(*msg.Request)
			case proto.MsgBye:
				readErr <- nil
				return
			default:
				readErr <- fmt.Errorf("server: unexpected message type %d", msg.Type)
				return
			}
		}
	}()

	// Tile sender: drains the queue; payload bytes are synthetic (the
	// manifest declares the size; content is irrelevant to scheduling).
	var payload []byte
	for {
		it, ok, done := st.next(m)
		if done {
			break
		}
		if !ok {
			<-st.wake
			continue
		}
		size := it.Size(m)
		if int64(len(payload)) < size {
			payload = make([]byte, size)
		}
		if err := proto.WriteTileData(conn, proto.TileData{Item: it, Payload: payload[:size]}); err != nil {
			st.close()
			return fmt.Errorf("server: send tile: %w", err)
		}
	}
	if err := <-readErr; err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
		return err
	}
	return nil
}

// ListenAndServe listens on addr and serves until ctx is done.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", addr, err)
	}
	log.Printf("dragonfly server listening on %s (videos: %v)", l.Addr(), s.Videos())
	return s.Serve(ctx, l)
}
