package baseline

import (
	"sort"
	"time"

	"dragonfly/internal/abr"
	"dragonfly/internal/geom"
	"dragonfly/internal/player"
	"dragonfly/internal/quality"
	"dragonfly/internal/video"
)

// PanoOptions configures the Pano baseline.
type PanoOptions struct {
	// Metric selects the quality score Pano maximizes when assigning tile
	// qualities (PSNR by default; §4.3 also evaluates a PSPNR variant).
	Metric quality.Metric
	// Lookahead is how far ahead chunks are committed (3 s default; §4.3
	// evaluates a 1 s variant).
	Lookahead time.Duration
	// Groups is the number of variable tile groups per chunk (Pano groups
	// tiles of similar quality sensitivity and fetches each group at one
	// quality).
	Groups int
	Name   string
}

// Pano runs a traditional chunk-level ABR, then assigns per-group tile
// qualities maximizing the quality metric within the chunk's budget. It
// transmits the full 360° (non-viewport groups at the lowest quality),
// decides once per chunk, never refines, and stalls on missing tiles
// (Table 1).
type Pano struct {
	opts PanoOptions

	// assigned caches the per-chunk decision: once made it is never
	// revisited (Table 1 "Refine fetch decision: No").
	assigned map[int][]player.RequestItem
}

// NewPano creates the baseline with the paper's defaults.
func NewPano(opts PanoOptions) *Pano {
	if opts.Lookahead == 0 {
		opts.Lookahead = 3 * time.Second
	}
	if opts.Groups == 0 {
		opts.Groups = video.DefaultGroupCount
	}
	return &Pano{opts: opts, assigned: make(map[int][]player.RequestItem)}
}

// Name implements player.Scheme.
func (p *Pano) Name() string {
	if p.opts.Name != "" {
		return p.opts.Name
	}
	if p.opts.Metric == quality.PSPNR {
		return "Pano-PSPNR"
	}
	return "Pano"
}

// DecisionInterval implements player.Scheme: decisions are made per chunk.
func (p *Pano) DecisionInterval() time.Duration { return time.Second }

// StallPolicy implements player.Scheme.
func (p *Pano) StallPolicy() player.StallPolicy { return player.StallOnMissingAny }

// Decide implements player.Scheme: commit any newly visible chunks, then
// re-emit all still-relevant items (the engine's server dedupes what has
// already been transmitted).
func (p *Pano) Decide(ctx *player.Context) []player.RequestItem {
	m := ctx.Manifest
	nowChunk := m.ChunkOfFrame(ctx.PlayFrame)
	lastFrame := ctx.PlayFrame + int(p.opts.Lookahead.Seconds()*float64(m.FPS))
	if lastFrame >= m.NumFrames() {
		lastFrame = m.NumFrames() - 1
	}
	for c := nowChunk; c <= m.ChunkOfFrame(lastFrame); c++ {
		if _, done := p.assigned[c]; !done {
			p.assigned[c] = p.assignChunk(ctx, c)
		}
	}
	var items []player.RequestItem
	for c := nowChunk; c <= m.ChunkOfFrame(lastFrame); c++ {
		items = append(items, p.assigned[c]...)
	}
	return items
}

// assignChunk makes the one-shot decision for a chunk: group tiles by
// quality sensitivity, start everything at the lowest quality, then
// greedily upgrade the group with the best viewport-weighted quality gain
// per byte until the ABR budget is exhausted.
func (p *Pano) assignChunk(ctx *player.Context, chunk int) []player.RequestItem {
	m := ctx.Manifest
	chunkDur := time.Duration(m.ChunkFrames) * ctx.FrameDuration
	budget := abr.ChunkBudget(ctx.PredictedMbps, chunkDur, 0)

	at := ctx.FrameDeadline(m.FirstFrame(chunk))
	if at < ctx.Now {
		at = ctx.Now
	}
	center := ctx.Predict(at)

	groups := video.GroupTiles(m, chunk, p.opts.Groups)
	type groupState struct {
		tiles     []geom.TileID
		relevance float64 // viewport-overlap weight of the group
		q         video.Quality
	}
	states := make([]*groupState, len(groups))
	var spent int64
	for i, g := range groups {
		gs := &groupState{tiles: g, q: video.Lowest}
		for _, id := range g {
			gs.relevance += ctx.Grid.OverlapCap(id, center, ctx.Viewport.RadiusDeg+10)
			spent += m.TileSize(chunk, id, video.Lowest)
		}
		states[i] = gs
	}

	// Greedy upgrades: best marginal (relevance-weighted quality gain per
	// extra byte) first.
	for {
		bestIdx, bestGain := -1, 0.0
		var bestCost int64
		for i, gs := range states {
			if gs.q >= video.Highest || gs.relevance == 0 {
				continue
			}
			var cost int64
			gain := 0.0
			for _, id := range gs.tiles {
				cost += m.TileSize(chunk, id, gs.q+1) - m.TileSize(chunk, id, gs.q)
				gain += quality.TileScore(p.opts.Metric, m, chunk, id, gs.q+1) -
					quality.TileScore(p.opts.Metric, m, chunk, id, gs.q)
			}
			if cost <= 0 {
				continue
			}
			score := gs.relevance * gain / float64(cost)
			if spent+cost <= budget && score > bestGain {
				bestGain = score
				bestIdx = i
				bestCost = cost
			}
		}
		if bestIdx < 0 {
			break
		}
		states[bestIdx].q++
		spent += bestCost
	}

	// Emit: viewport-relevant groups first, then the rest, all at their
	// assigned qualities (the whole 360° is transmitted).
	sort.SliceStable(states, func(a, b int) bool { return states[a].relevance > states[b].relevance })
	var items []player.RequestItem
	for _, gs := range states {
		for _, id := range gs.tiles {
			items = append(items, player.RequestItem{Stream: player.Primary, Chunk: chunk, Tile: id, Quality: gs.q})
		}
	}
	return items
}
