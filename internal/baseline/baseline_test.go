package baseline

import (
	"testing"
	"time"

	"dragonfly/internal/geom"
	"dragonfly/internal/player"
	"dragonfly/internal/quality"
	"dragonfly/internal/trace"
	"dragonfly/internal/video"
)

func testManifest() *video.Manifest {
	return video.Generate(video.GenParams{
		ID: "base", Rows: 6, Cols: 6, NumChunks: 6,
		TargetQP42Mbps: 1, TargetQP22Mbps: 8, Seed: 21,
	})
}

func testContext(m *video.Manifest, mbps float64) *player.Context {
	return &player.Context{
		Now:           0,
		PlayFrame:     0,
		Manifest:      m,
		Grid:          m.Grid(),
		Viewport:      geom.DefaultViewport,
		Received:      player.NewReceived(m),
		Predict:       func(time.Duration) geom.Orientation { return geom.Orientation{} },
		PredictedMbps: mbps,
		FrameDuration: time.Second / 30,
		FrameDeadline: func(frame int) time.Duration { return time.Duration(frame) * time.Second / 30 },
	}
}

func runScheme(t *testing.T, s player.Scheme, mbps float64, seed int64) *player.Metrics {
	t.Helper()
	m := testManifest()
	met, err := player.Run(player.Config{
		Manifest:  m,
		Head:      trace.GenerateHead(trace.HeadGenParams{UserID: "u", Class: trace.MotionMedium, Duration: 6 * time.Second, Seed: seed}),
		Bandwidth: &trace.BandwidthTrace{ID: "flat", SamplePeriod: time.Second, Mbps: []float64{mbps}},
		Scheme:    s,
	})
	if err != nil {
		t.Fatal(err)
	}
	return met
}

func TestFlareDefaults(t *testing.T) {
	f := NewFlare(FlareOptions{})
	if f.Name() != "Flare" || f.DecisionInterval() != 100*time.Millisecond ||
		f.StallPolicy() != player.StallOnMissingAny {
		t.Error("Flare defaults wrong")
	}
	v := NewFlare(FlareOptions{Lookahead: time.Second, Name: "Flare-1s"})
	if v.Name() != "Flare-1s" {
		t.Error("name override failed")
	}
}

func TestFlareDecideCoversViewportAndPeriphery(t *testing.T) {
	m := testManifest()
	ctx := testContext(m, 10)
	f := NewFlare(FlareOptions{})
	items := f.Decide(ctx)
	if len(items) == 0 {
		t.Fatal("empty decision")
	}
	chunks := map[int]bool{}
	vpTiles := map[geom.TileID]bool{}
	for _, id := range ctx.Viewport.Tiles(ctx.Grid, geom.Orientation{}) {
		vpTiles[id] = true
	}
	peripheryFound := false
	for _, it := range items {
		if it.Stream != player.Primary || it.Full360 {
			t.Fatal("Flare is single-stream tile-based")
		}
		chunks[it.Chunk] = true
		if !vpTiles[it.Tile] {
			peripheryFound = true
		}
	}
	// 3 s look-ahead: chunks 0..3.
	for c := 0; c <= 3; c++ {
		if !chunks[c] {
			t.Errorf("chunk %d missing from look-ahead", c)
		}
	}
	if !peripheryFound {
		t.Error("no periphery tiles fetched")
	}
}

func TestFlareUrgentFetchUsesFeasibleQuality(t *testing.T) {
	m := testManifest()
	ctx := testContext(m, 0.05) // nearly dead link: urgent fetches drop to minimum
	f := NewFlare(FlareOptions{})
	items := f.Decide(ctx)
	if len(items) == 0 {
		t.Fatal("empty decision")
	}
	// First items are the urgent current-viewport fetches at low quality.
	if items[0].Chunk != 0 {
		t.Errorf("first item should target the current chunk, got %d", items[0].Chunk)
	}
	if items[0].Quality != video.Lowest {
		t.Errorf("urgent fetch on a dead link picked quality %d", items[0].Quality)
	}
}

func TestFlareQualityScalesWithBandwidth(t *testing.T) {
	m := testManifest()
	slow := NewFlare(FlareOptions{}).Decide(testContext(m, 2))
	fast := NewFlare(FlareOptions{}).Decide(testContext(m, 60))
	avg := func(items []player.RequestItem) float64 {
		s := 0.0
		for _, it := range items {
			s += float64(it.Quality)
		}
		return s / float64(len(items))
	}
	if avg(fast) <= avg(slow) {
		t.Errorf("quality did not scale with bandwidth: fast %.2f slow %.2f", avg(fast), avg(slow))
	}
}

func TestPanoSendsFull360(t *testing.T) {
	m := testManifest()
	ctx := testContext(m, 10)
	p := NewPano(PanoOptions{})
	items := p.Decide(ctx)
	perChunk := map[int]map[geom.TileID]bool{}
	for _, it := range items {
		if it.Stream != player.Primary {
			t.Fatal("Pano is single-stream")
		}
		if perChunk[it.Chunk] == nil {
			perChunk[it.Chunk] = map[geom.TileID]bool{}
		}
		perChunk[it.Chunk][it.Tile] = true
	}
	for c, tiles := range perChunk {
		if len(tiles) != m.NumTiles() {
			t.Errorf("chunk %d: %d tiles sent, want full 360° (%d)", c, len(tiles), m.NumTiles())
		}
	}
}

func TestPanoViewportGetsHigherQuality(t *testing.T) {
	m := testManifest()
	ctx := testContext(m, 10)
	p := NewPano(PanoOptions{})
	items := p.Decide(ctx)
	center := geom.Orientation{}
	var vpQ, outQ, vpN, outN float64
	for _, it := range items {
		if it.Chunk != 0 {
			continue
		}
		if geom.AngularDistance(ctx.Grid.Center(it.Tile), center) <= ctx.Viewport.RadiusDeg {
			vpQ += float64(it.Quality)
			vpN++
		} else {
			outQ += float64(it.Quality)
			outN++
		}
	}
	if vpN == 0 || outN == 0 {
		t.Fatal("no tiles classified")
	}
	if vpQ/vpN <= outQ/outN {
		t.Errorf("viewport quality %.2f not above outside %.2f", vpQ/vpN, outQ/outN)
	}
}

func TestPanoNeverRefines(t *testing.T) {
	m := testManifest()
	ctx := testContext(m, 10)
	p := NewPano(PanoOptions{})
	first := p.Decide(ctx)
	// Move the prediction; chunk 0 assignment must not change.
	ctx.Predict = func(time.Duration) geom.Orientation { return geom.Orientation{Yaw: 120} }
	second := p.Decide(ctx)
	firstC0 := map[player.RequestItem]bool{}
	for _, it := range first {
		if it.Chunk == 0 {
			firstC0[it] = true
		}
	}
	for _, it := range second {
		if it.Chunk == 0 && !firstC0[it] {
			t.Fatal("Pano revised a committed chunk")
		}
	}
}

func TestPanoNames(t *testing.T) {
	if NewPano(PanoOptions{}).Name() != "Pano" {
		t.Error("Pano name")
	}
	if NewPano(PanoOptions{Metric: quality.PSPNR}).Name() != "Pano-PSPNR" {
		t.Error("Pano-PSPNR name")
	}
	if NewPano(PanoOptions{}).DecisionInterval() != time.Second {
		t.Error("Pano decides per chunk")
	}
}

func TestTwoTierStreams(t *testing.T) {
	m := testManifest()
	ctx := testContext(m, 10)
	tt := NewTwoTier(TwoTierOptions{})
	if tt.StallPolicy() != player.StallOnMissingMasking {
		t.Error("Two-tier stalls on missing base stream")
	}
	items := tt.Decide(ctx)
	maskChunks := map[int]bool{}
	primQ := map[video.Quality]bool{}
	for _, it := range items {
		if it.Stream == player.Masking {
			if !it.Full360 || it.Quality != video.Lowest {
				t.Fatal("base stream must be full-360° lowest quality")
			}
			maskChunks[it.Chunk] = true
		} else {
			primQ[it.Quality] = true
		}
	}
	for c := 0; c <= 3; c++ {
		if !maskChunks[c] {
			t.Errorf("base chunk %d missing", c)
		}
	}
	if len(primQ) != 1 {
		t.Errorf("enhancement should use one uniform quality, got %d", len(primQ))
	}
	for q := range primQ {
		if q == video.Lowest {
			t.Error("enhancement must be above masking quality")
		}
	}
}

func TestTwoTierCommitsOnce(t *testing.T) {
	m := testManifest()
	ctx := testContext(m, 10)
	tt := NewTwoTier(TwoTierOptions{})
	tt.Decide(ctx)
	ctx.Predict = func(time.Duration) geom.Orientation { return geom.Orientation{Yaw: 90} }
	second := tt.Decide(ctx)
	for _, it := range second {
		if it.Stream == player.Primary && it.Chunk == 0 {
			d := geom.AngularDistance(ctx.Grid.Center(it.Tile), geom.Orientation{})
			if d > ctx.Viewport.RadiusDeg+25 {
				t.Fatal("Two-tier revised chunk 0 toward the new prediction")
			}
		}
	}
}

func TestPassiveSkipBehaviour(t *testing.T) {
	p := NewPassiveSkip()
	if p.StallPolicy() != player.NeverStall || p.DecisionInterval() != 100*time.Millisecond {
		t.Error("PassiveSkip policy wrong")
	}
	m := testManifest()
	ctx := testContext(m, 10)
	items := p.Decide(ctx)
	sawMask := false
	uniform := map[video.Quality]bool{}
	for _, it := range items {
		if it.Stream == player.Masking {
			sawMask = true
			continue
		}
		uniform[it.Quality] = true
	}
	if !sawMask {
		t.Error("PassiveSkip must fetch the masking stream")
	}
	if len(uniform) != 1 {
		t.Errorf("PassiveSkip primary should be uniform quality, got %v", uniform)
	}
	// Deadline ordering: primary items non-decreasing in chunk.
	lastChunk := -1
	for _, it := range items {
		if it.Stream != player.Primary {
			continue
		}
		if it.Chunk < lastChunk {
			t.Fatal("primary items not deadline ordered")
		}
		lastChunk = it.Chunk
	}
}

// End-to-end sanity: all baselines complete sessions on a moderate link.
func TestBaselinesEndToEnd(t *testing.T) {
	schemes := []func() player.Scheme{
		func() player.Scheme { return NewFlare(FlareOptions{}) },
		func() player.Scheme { return NewPano(PanoOptions{}) },
		func() player.Scheme { return NewTwoTier(TwoTierOptions{}) },
		func() player.Scheme { return NewPassiveSkip() },
	}
	for _, mk := range schemes {
		s := mk()
		met := runScheme(t, s, 8, 31)
		if met.TotalFrames == 0 {
			t.Errorf("%s rendered no frames", s.Name())
		}
		if met.MedianScore() <= 0 {
			t.Errorf("%s produced no quality scores", s.Name())
		}
		if s.StallPolicy() == player.NeverStall && met.RebufferDuration != 0 {
			t.Errorf("%s stalled despite NeverStall", s.Name())
		}
		if s.StallPolicy() == player.StallOnMissingAny && met.IncompleteFrames != 0 {
			t.Errorf("%s rendered incomplete frames despite stalling policy", s.Name())
		}
	}
}

func TestStallSchemesRebufferOnDips(t *testing.T) {
	// A link that dies for a while mid-session forces stall schemes to
	// rebuffer but leaves skip schemes playing.
	m := testManifest()
	mbps := make([]float64, 6)
	for i := range mbps {
		mbps[i] = 6
	}
	// The link dies from t=1s to t=4s, before the look-ahead could buffer
	// the whole (short) test video.
	mbps[1], mbps[2], mbps[3] = 0.05, 0.05, 0.05
	bw := &trace.BandwidthTrace{ID: "dip", SamplePeriod: time.Second, Mbps: mbps}
	head := trace.GenerateHead(trace.HeadGenParams{UserID: "u", Class: trace.MotionMedium, Duration: 6 * time.Second, Seed: 7})

	run := func(s player.Scheme) *player.Metrics {
		met, err := player.Run(player.Config{Manifest: m, Head: head, Bandwidth: bw, Scheme: s})
		if err != nil {
			t.Fatal(err)
		}
		return met
	}
	flare := run(NewFlare(FlareOptions{}))
	passive := run(NewPassiveSkip())
	if flare.RebufferDuration == 0 {
		t.Error("Flare should rebuffer across a dead link period")
	}
	if passive.RebufferDuration != 0 {
		t.Error("PassiveSkip must never rebuffer")
	}
}

func TestFlarePeripheryQualityDrop(t *testing.T) {
	m := testManifest()
	ctx := testContext(m, 60) // ample: viewport reaches top quality
	f := NewFlare(FlareOptions{})
	items := f.Decide(ctx)
	center := geom.Orientation{}
	var vpMin video.Quality = video.NumQualities
	var perMax video.Quality = -1
	for _, it := range items {
		if it.Chunk != 1 { // a clean future chunk (chunk 0 mixes urgent fetches)
			continue
		}
		d := geom.AngularDistance(ctx.Grid.Center(it.Tile), center)
		if d <= ctx.Viewport.RadiusDeg {
			if it.Quality < vpMin {
				vpMin = it.Quality
			}
		} else if it.Quality > perMax {
			perMax = it.Quality
		}
	}
	if perMax < 0 || vpMin == video.NumQualities {
		t.Skip("no periphery/viewport split in this layout")
	}
	if perMax > vpMin {
		t.Errorf("periphery quality %d above viewport minimum %d", perMax, vpMin)
	}
}

func TestTwoTierBudgetAccountsForMasking(t *testing.T) {
	// With bandwidth barely above the base-stream rate, the enhancement
	// quality must stay low; with ample bandwidth it rises.
	m := testManifest()
	quality := func(mbps float64) video.Quality {
		tt := NewTwoTier(TwoTierOptions{})
		items := tt.Decide(testContext(m, mbps))
		for _, it := range items {
			if it.Stream == player.Primary {
				return it.Quality
			}
		}
		t.Fatalf("no enhancement items at %v Mbps", mbps)
		return 0
	}
	lo := quality(1.5)
	hi := quality(40)
	if lo >= hi {
		t.Errorf("enhancement quality did not scale with bandwidth: %d vs %d", lo, hi)
	}
	if lo == video.Lowest {
		t.Errorf("enhancement must stay above masking quality, got %d", lo)
	}
}

func TestPanoGroupsShareQuality(t *testing.T) {
	m := testManifest()
	ctx := testContext(m, 10)
	p := NewPano(PanoOptions{Groups: 8})
	items := p.Decide(ctx)
	// Rebuild the chunk-0 groups and verify all members of each group were
	// requested at one quality.
	byTile := map[geom.TileID]video.Quality{}
	for _, it := range items {
		if it.Chunk == 0 {
			byTile[it.Tile] = it.Quality
		}
	}
	for _, group := range video.GroupTiles(m, 0, 8) {
		q, seen := video.Quality(0), false
		for _, id := range group {
			got, ok := byTile[id]
			if !ok {
				t.Fatalf("tile %d missing from Pano's full-360 send", id)
			}
			if !seen {
				q, seen = got, true
			} else if got != q {
				t.Fatalf("group with mixed qualities: %d vs %d", got, q)
			}
		}
	}
}
