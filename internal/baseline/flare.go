// Package baseline implements the state-of-the-art systems the paper
// compares against — Flare [38], Pano [24] and Two-tier [43] — plus the
// PassiveSkip ablation variant of Table 2. All of them were re-implemented
// by the paper's authors on the Dragonfly codebase (§4.1 "Scheme
// implementations"); this package does the same on top of internal/player.
//
// Each scheme is a player.Scheme: Flare fetches a predicted-viewport
// region plus periphery with per-ring quality drops; Pano optimizes a
// per-chunk quality assignment under an abr.ChunkBudget; Two-tier layers a
// full-360° base stream under viewport-driven enhancement; PassiveSkip is
// Dragonfly's scheduler with proactive skipping disabled. Flare and Pano
// stall on any missing viewport tile, Two-tier on a missing base tile;
// PassiveSkip keeps Dragonfly's continuous (never-stall) playback and
// skips only passively, at the render deadline.
//
// Schemes here follow the same Decide contract as internal/core: the
// returned fetch list may alias scheme-owned buffers and the *Context is
// caller-owned, so neither may be retained across decisions.
package baseline

import (
	"sort"
	"time"

	"dragonfly/internal/abr"
	"dragonfly/internal/geom"
	"dragonfly/internal/player"
	"dragonfly/internal/video"
)

// FlareOptions configures the Flare baseline.
type FlareOptions struct {
	// Lookahead is how far ahead tiles are fetched (paper default: 3 s,
	// with a 1 s sensitivity variant in §4.3).
	Lookahead time.Duration
	// PeripheryDeg extends the fetched region beyond the viewport cap.
	PeripheryDeg float64
	// PeripheryDrop is how many quality levels below the viewport quality
	// the periphery ring is fetched at.
	PeripheryDrop int
	// Name overrides the reported name (for the 1 s variant).
	Name string
}

// Flare fetches the predicted viewport plus a periphery ring, refines its
// decision every 100 ms, urgently re-fetches tiles discovered to be needed
// for imminent playback (at whatever quality still meets the deadline), and
// stalls when a viewport tile misses its deadline.
type Flare struct {
	opts FlareOptions
}

// NewFlare creates the baseline with the paper's defaults.
func NewFlare(opts FlareOptions) *Flare {
	if opts.Lookahead == 0 {
		opts.Lookahead = 3 * time.Second
	}
	if opts.PeripheryDeg == 0 {
		opts.PeripheryDeg = 15
	}
	if opts.PeripheryDrop == 0 {
		opts.PeripheryDrop = 2
	}
	return &Flare{opts: opts}
}

// Name implements player.Scheme.
func (f *Flare) Name() string {
	if f.opts.Name != "" {
		return f.opts.Name
	}
	return "Flare"
}

// DecisionInterval implements player.Scheme: Flare refines every 100 ms
// (Table 1).
func (f *Flare) DecisionInterval() time.Duration { return 100 * time.Millisecond }

// StallPolicy implements player.Scheme: Flare pauses playback until all
// viewport tiles arrive (Table 1).
func (f *Flare) StallPolicy() player.StallPolicy { return player.StallOnMissingAny }

// Decide implements player.Scheme.
func (f *Flare) Decide(ctx *player.Context) []player.RequestItem {
	m := ctx.Manifest
	rate := ctx.PredictedMbps * 1e6 / 8
	chunkDur := time.Duration(m.ChunkFrames) * ctx.FrameDuration

	// Urgent pass: tiles needed for the *current* viewport right now but
	// never fetched — pick the quality that still meets the deadline
	// (often the lowest; Fig 4's persistent low quality).
	var urgent []player.RequestItem
	var backlog int64
	nowChunk := m.ChunkOfFrame(ctx.PlayFrame)
	currentVP := ctx.Viewport.Tiles(ctx.Grid, ctx.Predict(ctx.Now))
	for _, id := range currentVP {
		if _, ok := ctx.Received.BestPrimary(nowChunk, id); ok {
			continue
		}
		q := abr.QualityForDeadline(func(q video.Quality) int64 {
			return m.TileSize(nowChunk, id, q)
		}, backlog, rate, 300*time.Millisecond, video.Lowest, video.Highest)
		urgent = append(urgent, player.RequestItem{Stream: player.Primary, Chunk: nowChunk, Tile: id, Quality: q})
		backlog += m.TileSize(nowChunk, id, q)
	}

	// Planned pass: per future chunk in the look-ahead, fetch the predicted
	// viewport at the best uniform quality the budget allows, plus a
	// lower-quality periphery ring.
	lastFrame := ctx.PlayFrame + int(f.opts.Lookahead.Seconds()*float64(m.FPS))
	if lastFrame >= m.NumFrames() {
		lastFrame = m.NumFrames() - 1
	}
	items := urgent
	for c := nowChunk; c <= m.ChunkOfFrame(lastFrame); c++ {
		at := ctx.FrameDeadline(m.FirstFrame(c))
		if at < ctx.Now {
			at = ctx.Now
		}
		center := ctx.Predict(at)
		vpTiles := ctx.Viewport.Tiles(ctx.Grid, center)
		outer := ctx.Grid.TilesInCap(center, ctx.Viewport.RadiusDeg+f.opts.PeripheryDeg)
		inVP := make(map[geom.TileID]bool, len(vpTiles))
		for _, id := range vpTiles {
			inVP[id] = true
		}
		var periphery []geom.TileID
		for _, id := range outer {
			if !inVP[id] {
				periphery = append(periphery, id)
			}
		}

		budget := abr.ChunkBudget(ctx.PredictedMbps, chunkDur, 0)
		qv := abr.MaxQualityFitting(func(q video.Quality) int64 {
			total := int64(0)
			for _, id := range vpTiles {
				total += m.TileSize(c, id, q)
			}
			qp := peripheryQuality(q, f.opts.PeripheryDrop)
			for _, id := range periphery {
				total += m.TileSize(c, id, qp)
			}
			return total
		}, budget, video.Lowest, video.Highest)
		qp := peripheryQuality(qv, f.opts.PeripheryDrop)

		// Viewport tiles sorted by centrality so the most important tiles
		// of each chunk transmit first.
		sort.Slice(vpTiles, func(a, b int) bool {
			da := geom.AngularDistance(ctx.Grid.Center(vpTiles[a]), center)
			db := geom.AngularDistance(ctx.Grid.Center(vpTiles[b]), center)
			if da != db {
				return da < db
			}
			return vpTiles[a] < vpTiles[b]
		})
		for _, id := range vpTiles {
			items = append(items, player.RequestItem{Stream: player.Primary, Chunk: c, Tile: id, Quality: qv})
		}
		for _, id := range periphery {
			items = append(items, player.RequestItem{Stream: player.Primary, Chunk: c, Tile: id, Quality: qp})
		}
	}
	return items
}

// peripheryQuality lowers the viewport quality by drop levels, floored at
// the lowest encoding.
func peripheryQuality(q video.Quality, drop int) video.Quality {
	p := q - video.Quality(drop)
	if p < video.Lowest {
		p = video.Lowest
	}
	return p
}
