package baseline

import (
	"sort"
	"time"

	"dragonfly/internal/abr"
	"dragonfly/internal/geom"
	"dragonfly/internal/player"
	"dragonfly/internal/video"
)

// TwoTierOptions configures the Two-tier baseline [43].
type TwoTierOptions struct {
	// MaskingLookahead is the base (full-360°, lowest-quality) stream's
	// look-ahead (paper: 3 s); PrimaryLookahead the enhancement stream's
	// (1 s).
	MaskingLookahead time.Duration
	PrimaryLookahead time.Duration
	Name             string
}

// TwoTier streams a low-quality full-360° base plus a uniform-quality
// enhancement for the predicted viewport. Unlike Dragonfly it picks one
// quality for all enhancement tiles, decides once per chunk without
// refinement, passively skips enhancement tiles that miss their deadline,
// and stalls when the base stream itself is late (Table 1).
type TwoTier struct {
	opts     TwoTierOptions
	assigned map[int][]player.RequestItem
}

// NewTwoTier creates the baseline with the paper's defaults.
func NewTwoTier(opts TwoTierOptions) *TwoTier {
	if opts.MaskingLookahead == 0 {
		opts.MaskingLookahead = 3 * time.Second
	}
	if opts.PrimaryLookahead == 0 {
		opts.PrimaryLookahead = time.Second
	}
	return &TwoTier{opts: opts, assigned: make(map[int][]player.RequestItem)}
}

// Name implements player.Scheme.
func (t *TwoTier) Name() string {
	if t.opts.Name != "" {
		return t.opts.Name
	}
	return "Two-tier"
}

// DecisionInterval implements player.Scheme: per-chunk decisions.
func (t *TwoTier) DecisionInterval() time.Duration { return time.Second }

// StallPolicy implements player.Scheme: Two-tier stalls when base-stream
// tiles for the current viewport are missing; enhancement tiles are
// passively skipped.
func (t *TwoTier) StallPolicy() player.StallPolicy { return player.StallOnMissingMasking }

// Decide implements player.Scheme.
func (t *TwoTier) Decide(ctx *player.Context) []player.RequestItem {
	m := ctx.Manifest
	nowChunk := m.ChunkOfFrame(ctx.PlayFrame)

	// Base stream: full-360° chunks across the long look-ahead.
	maskLast := ctx.PlayFrame + int(t.opts.MaskingLookahead.Seconds()*float64(m.FPS))
	if maskLast >= m.NumFrames() {
		maskLast = m.NumFrames() - 1
	}
	var items []player.RequestItem
	for c := nowChunk; c <= m.ChunkOfFrame(maskLast); c++ {
		if !ctx.Received.HasFullMasking(c) {
			items = append(items, player.RequestItem{Stream: player.Masking, Chunk: c, Full360: true, Quality: video.Lowest})
		}
	}

	// Enhancement stream: one-shot per-chunk assignment over the short
	// look-ahead.
	primLast := ctx.PlayFrame + int(t.opts.PrimaryLookahead.Seconds()*float64(m.FPS))
	if primLast >= m.NumFrames() {
		primLast = m.NumFrames() - 1
	}
	for c := nowChunk; c <= m.ChunkOfFrame(primLast); c++ {
		if _, done := t.assigned[c]; !done {
			t.assigned[c] = t.assignChunk(ctx, c)
		}
		items = append(items, t.assigned[c]...)
	}
	return items
}

// assignChunk picks the uniform enhancement quality for one chunk: the
// highest level whose predicted-viewport cost fits the budget left after
// the base stream.
func (t *TwoTier) assignChunk(ctx *player.Context, chunk int) []player.RequestItem {
	m := ctx.Manifest
	chunkDur := time.Duration(m.ChunkFrames) * ctx.FrameDuration
	budget := abr.ChunkBudget(ctx.PredictedMbps, chunkDur, 0) - m.Full360Size(chunk, video.Lowest)
	if budget < 0 {
		budget = 0
	}

	at := ctx.FrameDeadline(m.FirstFrame(chunk))
	if at < ctx.Now {
		at = ctx.Now
	}
	center := ctx.Predict(at)
	vpTiles := ctx.Viewport.Tiles(ctx.Grid, center)

	q := abr.MaxQualityFitting(func(q video.Quality) int64 {
		total := int64(0)
		for _, id := range vpTiles {
			total += m.TileSize(chunk, id, q)
		}
		return total
	}, budget, video.Lowest+1, video.Highest)

	sort.Slice(vpTiles, func(a, b int) bool {
		da := geom.AngularDistance(ctx.Grid.Center(vpTiles[a]), center)
		db := geom.AngularDistance(ctx.Grid.Center(vpTiles[b]), center)
		if da != db {
			return da < db
		}
		return vpTiles[a] < vpTiles[b]
	})
	items := make([]player.RequestItem, 0, len(vpTiles))
	for _, id := range vpTiles {
		items = append(items, player.RequestItem{Stream: player.Primary, Chunk: chunk, Tile: id, Quality: q})
	}
	return items
}
