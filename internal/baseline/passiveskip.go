package baseline

import (
	"sort"
	"time"

	"dragonfly/internal/abr"
	"dragonfly/internal/geom"
	"dragonfly/internal/player"
	"dragonfly/internal/video"
)

// PassiveSkip is the Table 2 ablation variant that keeps Dragonfly's two
// streams and 100 ms refinement but replaces the utility scheduler with a
// passive discipline: fetch every predicted-viewport tile in deadline order
// at a uniform budget-fitting quality, and simply skip whatever misses its
// deadline. Comparing it against Dragonfly isolates the value of
// utility-driven proactive skipping (§4.4).
type PassiveSkip struct {
	maskingLookahead time.Duration
	primaryLookahead time.Duration
}

// NewPassiveSkip creates the variant with the paper's look-aheads (3 s
// masking, 1 s primary).
func NewPassiveSkip() *PassiveSkip {
	return &PassiveSkip{maskingLookahead: 3 * time.Second, primaryLookahead: time.Second}
}

// Name implements player.Scheme.
func (p *PassiveSkip) Name() string { return "PassiveSkip" }

// DecisionInterval implements player.Scheme: like Dragonfly, 100 ms.
func (p *PassiveSkip) DecisionInterval() time.Duration { return 100 * time.Millisecond }

// StallPolicy implements player.Scheme: playback never stalls.
func (p *PassiveSkip) StallPolicy() player.StallPolicy { return player.NeverStall }

// Decide implements player.Scheme.
func (p *PassiveSkip) Decide(ctx *player.Context) []player.RequestItem {
	m := ctx.Manifest

	// Masking stream, identical to Dragonfly's full-360° strategy.
	nowChunk := m.ChunkOfFrame(ctx.PlayFrame)
	maskLast := ctx.PlayFrame + int(p.maskingLookahead.Seconds()*float64(m.FPS))
	if maskLast >= m.NumFrames() {
		maskLast = m.NumFrames() - 1
	}
	var items []player.RequestItem
	var maskBytes int64
	for c := nowChunk; c <= m.ChunkOfFrame(maskLast); c++ {
		if !ctx.Received.HasFullMasking(c) {
			items = append(items, player.RequestItem{Stream: player.Masking, Chunk: c, Full360: true, Quality: video.Lowest})
			maskBytes += m.Full360Size(c, video.Lowest)
		}
	}

	// Primary stream: all tiles of the predicted viewport plus a periphery
	// ring (the "direct adaptation of existing techniques" — Flare's fetch
	// region) over the short window, strictly deadline-ordered, at one
	// uniform quality that fits the budget left after masking. No
	// prioritization, no proactive skips.
	primLast := ctx.PlayFrame + int(p.primaryLookahead.Seconds()*float64(m.FPS))
	if primLast >= m.NumFrames() {
		primLast = m.NumFrames() - 1
	}
	type want struct {
		chunk int
		tile  geom.TileID
		dist  float64
	}
	var wants []want
	for c := nowChunk; c <= m.ChunkOfFrame(primLast); c++ {
		at := ctx.FrameDeadline(m.FirstFrame(c))
		if at < ctx.Now {
			at = ctx.Now
		}
		center := ctx.Predict(at)
		for _, id := range ctx.Grid.TilesInCap(center, ctx.Viewport.RadiusDeg+15) {
			if _, ok := ctx.Received.BestPrimary(c, id); ok {
				continue
			}
			wants = append(wants, want{chunk: c, tile: id,
				dist: geom.AngularDistance(ctx.Grid.Center(id), center)})
		}
	}
	sort.Slice(wants, func(a, b int) bool {
		if wants[a].chunk != wants[b].chunk {
			return wants[a].chunk < wants[b].chunk
		}
		if wants[a].dist != wants[b].dist {
			return wants[a].dist < wants[b].dist
		}
		return wants[a].tile < wants[b].tile
	})

	budget := abr.ChunkBudget(ctx.PredictedMbps, p.primaryLookahead, 0) - maskBytes
	if budget < 0 {
		budget = 0
	}
	q := abr.MaxQualityFitting(func(q video.Quality) int64 {
		total := int64(0)
		for _, w := range wants {
			total += m.TileSize(w.chunk, w.tile, q)
		}
		return total
	}, budget, video.Lowest+1, video.Highest)

	for _, w := range wants {
		items = append(items, player.RequestItem{Stream: player.Primary, Chunk: w.chunk, Tile: w.tile, Quality: q})
	}
	return items
}
