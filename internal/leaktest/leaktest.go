// Package leaktest asserts that a test leaves no goroutines behind.
//
// The check is a before/after snapshot of runtime.NumGoroutine with a
// bounded retry, because teardown is asynchronous almost everywhere in
// this codebase: a closed listener's accept loop, a canceled session's
// sender, a prober's final ping all take a few scheduler ticks to unwind.
// The retry loop polls until the count returns to (at or below) the
// baseline plus a small slack, and only fails after the deadline — so a
// pass is prompt and a genuine leak fails with the final count.
//
// Usage, first line of the test:
//
//	defer leaktest.Check(t)()
//
// The package deliberately takes a minimal TB interface instead of
// importing testing, so production packages' internal test helpers can
// share it without linking testing into non-test binaries.
package leaktest

import (
	"runtime"
	"time"
)

// TB is the subset of testing.TB the checker needs.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
}

// Check snapshots the goroutine count and returns the function that
// asserts it has returned to baseline; defer the returned func.
// Slack of 2 tolerates runtime housekeeping goroutines (timer scavenger,
// race-detector bookkeeping) that come and go underneath the test.
func Check(t TB) func() {
	return CheckTimeout(t, 5*time.Second)
}

// CheckTimeout is Check with an explicit settle deadline.
func CheckTimeout(t TB, timeout time.Duration) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		const slack = 2
		deadline := time.Now().Add(timeout)
		var after int
		for {
			after = runtime.NumGoroutine()
			if after <= before+slack {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			runtime.Gosched()
			time.Sleep(5 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d before, %d after %v settle (slack %d)\n%s",
			before, after, timeout, slack, string(buf[:n]))
	}
}
