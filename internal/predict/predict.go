// Package predict implements the two predictors every view-centric 360°
// streaming system needs: a viewport predictor (linear regression over
// recent head samples, as in Flare and Pano — paper §2, §3.3) and a network
// throughput predictor (harmonic mean over recent samples, per the
// MPC-style estimator the paper cites [49]).
package predict

import (
	"math"
	"math/rand"
	"time"

	"dragonfly/internal/geom"
	"dragonfly/internal/trace"
)

// Viewport predicts future head orientations from a sliding history window
// by fitting one least-squares line each to the (unwrapped) yaw and pitch
// series. The zero value is not usable; call NewViewport.
type Viewport struct {
	history time.Duration // how much history feeds the regression

	times   []float64 // seconds
	yaws    []float64 // unwrapped (cumulative) yaw, degrees
	pitches []float64

	lastYaw    float64
	haveSample bool

	// shift injects synthetic prediction error: each observation's
	// coordinates are displaced by a uniform random offset in [-D, D]
	// degrees (the Figs 21–23 sensitivity methodology, following Pano).
	shiftDeg float64
	shiftRng *rand.Rand
}

// DefaultHistory is the regression window. Flare and Pano fit over the most
// recent fraction of a second of samples.
const DefaultHistory = 500 * time.Millisecond

// NewViewport creates a predictor with the given history window (0 means
// DefaultHistory).
func NewViewport(history time.Duration) *Viewport {
	if history <= 0 {
		history = DefaultHistory
	}
	return &Viewport{history: history}
}

// NewViewportWithError creates a predictor whose observations are displaced
// by uniform noise in [-shiftDeg, +shiftDeg], deterministically from seed.
func NewViewportWithError(history time.Duration, shiftDeg float64, seed int64) *Viewport {
	v := NewViewport(history)
	v.shiftDeg = shiftDeg
	v.shiftRng = rand.New(rand.NewSource(seed))
	return v
}

// Observe feeds one head sample at time t. Samples must arrive in
// non-decreasing time order.
func (v *Viewport) Observe(t time.Duration, o geom.Orientation) {
	if v.shiftRng != nil && v.shiftDeg > 0 {
		o.Yaw = geom.NormalizeYaw(o.Yaw + (v.shiftRng.Float64()*2-1)*v.shiftDeg)
		o.Pitch = geom.ClampPitch(o.Pitch + (v.shiftRng.Float64()*2-1)*v.shiftDeg)
	}
	var unwrapped float64
	if !v.haveSample {
		unwrapped = o.Yaw
		v.haveSample = true
	} else {
		unwrapped = v.yaws[len(v.yaws)-1] + geom.YawDelta(v.lastYaw, o.Yaw)
	}
	v.lastYaw = o.Yaw
	v.times = append(v.times, t.Seconds())
	v.yaws = append(v.yaws, unwrapped)
	v.pitches = append(v.pitches, o.Pitch)
	// Evict samples older than the history window.
	cut := t.Seconds() - v.history.Seconds()
	i := 0
	for i < len(v.times)-1 && v.times[i] < cut {
		i++
	}
	if i > 0 {
		v.times = v.times[i:]
		v.yaws = v.yaws[i:]
		v.pitches = v.pitches[i:]
	}
}

// Predict extrapolates the orientation at future time t. With fewer than two
// samples it returns the last observation (or zero orientation if none).
func (v *Viewport) Predict(t time.Duration) geom.Orientation {
	n := len(v.times)
	if n == 0 {
		return geom.Orientation{}
	}
	if n == 1 {
		return geom.Orientation{Yaw: geom.NormalizeYaw(v.yaws[0]), Pitch: geom.ClampPitch(v.pitches[0])}
	}
	ts := t.Seconds()
	yaw := linearExtrapolate(v.times, v.yaws, ts)
	pitch := linearExtrapolate(v.times, v.pitches, ts)
	return geom.Orientation{Yaw: geom.NormalizeYaw(yaw), Pitch: geom.ClampPitch(pitch)}
}

// linearExtrapolate fits y = a + b·x by least squares and evaluates at x.
// Degenerate fits (all x equal) return the mean of y.
func linearExtrapolate(xs, ys []float64, x float64) float64 {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if math.Abs(den) < 1e-12 {
		return sy / n
	}
	b := (n*sxy - sx*sy) / den
	a := (sy - b*sx) / n
	return a + b*x
}

// Accuracy measures viewport-prediction accuracy on a head trace for one
// prediction window: at every decision instant (stepped by step), it trains
// on history up to t, predicts the viewport at t+window, and scores the
// fraction of actual-viewport tiles that the predicted viewport covers —
// the Figure 2 metric ("fraction of tiles in viewport that are predicted").
func Accuracy(h *trace.HeadTrace, g *geom.Grid, vp geom.Viewport, window, step time.Duration) []float64 {
	if step <= 0 {
		step = 200 * time.Millisecond
	}
	var out []float64
	end := h.Duration() - window
	pred := NewViewport(0)
	// Feed samples as time advances; evaluate at each step boundary.
	next := DefaultHistory // give the regression a little warm-up
	for i, s := range h.Samples {
		t := time.Duration(i) * h.SamplePeriod
		pred.Observe(t, s)
		if t >= next && t <= end {
			next += step
			predicted := pred.Predict(t + window)
			actual := h.At(t + window)
			actualTiles := vp.Tiles(g, actual)
			if len(actualTiles) == 0 {
				continue
			}
			predTiles := map[geom.TileID]bool{}
			for _, id := range vp.Tiles(g, predicted) {
				predTiles[id] = true
			}
			hit := 0
			for _, id := range actualTiles {
				if predTiles[id] {
					hit++
				}
			}
			out = append(out, float64(hit)/float64(len(actualTiles)))
		}
	}
	return out
}

// Bandwidth estimates future throughput as the harmonic mean of the most
// recent sample window; the harmonic mean is robust to transient spikes and
// is the estimator used by MPC [49] and adopted by the paper's throughput
// predictor.
type Bandwidth struct {
	window  int
	samples []float64 // Mbps, most recent last
	// Safety discounts the estimate; 1 = no discount.
	Safety float64
}

// DefaultBandwidthWindow is the number of throughput samples retained.
const DefaultBandwidthWindow = 8

// NewBandwidth creates a throughput predictor (window 0 means default).
func NewBandwidth(window int) *Bandwidth {
	if window <= 0 {
		window = DefaultBandwidthWindow
	}
	return &Bandwidth{window: window, Safety: 1}
}

// ObserveTransfer records a completed transfer of the given size/duration.
// Degenerate observations (no bytes or no elapsed time) are ignored.
func (b *Bandwidth) ObserveTransfer(bytes int64, dur time.Duration) {
	if bytes <= 0 || dur <= 0 {
		return
	}
	b.ObserveMbps(float64(bytes) * 8 / dur.Seconds() / 1e6)
}

// ObserveMbps records a throughput sample directly.
func (b *Bandwidth) ObserveMbps(mbps float64) {
	if mbps <= 0 || math.IsNaN(mbps) || math.IsInf(mbps, 0) {
		return
	}
	b.samples = append(b.samples, mbps)
	if len(b.samples) > b.window {
		b.samples = b.samples[len(b.samples)-b.window:]
	}
}

// PredictMbps returns the harmonic-mean estimate (times Safety), or 0 with
// no observations.
func (b *Bandwidth) PredictMbps() float64 {
	if len(b.samples) == 0 {
		return 0
	}
	inv := 0.0
	for _, s := range b.samples {
		inv += 1 / s
	}
	h := float64(len(b.samples)) / inv
	if b.Safety > 0 {
		h *= b.Safety
	}
	return h
}

// PredictBytes returns the bytes deliverable over dur at the estimate.
func (b *Bandwidth) PredictBytes(dur time.Duration) float64 {
	return b.PredictMbps() * 1e6 / 8 * dur.Seconds()
}

// EWMA is an exponentially weighted moving-average throughput estimator,
// provided as an alternative to the harmonic mean for ablations.
type EWMA struct {
	Alpha float64 // weight of the newest sample, in (0, 1]
	value float64
	init  bool
}

// ObserveMbps folds a new sample into the average.
func (e *EWMA) ObserveMbps(mbps float64) {
	if mbps <= 0 || math.IsNaN(mbps) || math.IsInf(mbps, 0) {
		return
	}
	a := e.Alpha
	if a <= 0 || a > 1 {
		a = 0.3
	}
	if !e.init {
		e.value = mbps
		e.init = true
		return
	}
	e.value = a*mbps + (1-a)*e.value
}

// PredictMbps returns the current average (0 before any observation).
func (e *EWMA) PredictMbps() float64 { return e.value }
