package predict

import (
	"math"
	"sort"
	"testing"
	"time"

	"dragonfly/internal/geom"
	"dragonfly/internal/trace"
)

func TestStaticPredictor(t *testing.T) {
	var s Static
	if got := s.Predict(time.Second); got != (geom.Orientation{}) {
		t.Errorf("empty static = %+v", got)
	}
	s.Observe(0, geom.Orientation{Yaw: 42, Pitch: 7})
	s.Observe(time.Second, geom.Orientation{Yaw: 50, Pitch: 8})
	got := s.Predict(10 * time.Second)
	if got.Yaw != 50 || got.Pitch != 8 {
		t.Errorf("static should hold the last sample, got %+v", got)
	}
}

func TestDecayPredictor(t *testing.T) {
	var d Decay
	if got := d.Predict(time.Second); got != (geom.Orientation{}) {
		t.Errorf("empty decay = %+v", got)
	}
	// Constant 30 deg/s yaw.
	for i := 0; i <= 25; i++ {
		tt := time.Duration(i) * 40 * time.Millisecond
		d.Observe(tt, geom.Orientation{Yaw: 30 * tt.Seconds(), Pitch: 0})
	}
	short := d.Predict(1100 * time.Millisecond) // 100 ms ahead
	long := d.Predict(4 * time.Second)          // 3 s ahead
	linearShort := 30.0 + 30*0.1
	if math.Abs(short.Yaw-linearShort) > 1.5 {
		t.Errorf("short-horizon decay yaw %v, want ~%v", short.Yaw, linearShort)
	}
	// The long horizon must undershoot the pure linear extrapolation
	// (30 + 90 = 120 degrees) by a wide margin.
	if long.Yaw > 100 {
		t.Errorf("decay should damp long-horizon travel, got %v", long.Yaw)
	}
	if long.Yaw <= short.Yaw {
		t.Errorf("decay should keep moving forward: %v then %v", short.Yaw, long.Yaw)
	}
	// Prediction at/before the last sample returns it.
	if got := d.Predict(0); got.Yaw != d.last.Yaw {
		t.Errorf("past-horizon prediction = %+v", got)
	}
}

func TestRegressionAdapter(t *testing.T) {
	r := Regression{V: NewViewport(0)}
	for i := 0; i <= 25; i++ {
		tt := time.Duration(i) * 40 * time.Millisecond
		r.Observe(tt, geom.Orientation{Yaw: 10 * tt.Seconds(), Pitch: 0})
	}
	got := r.Predict(2 * time.Second)
	if math.Abs(got.Yaw-20) > 0.5 {
		t.Errorf("regression adapter yaw %v, want 20", got.Yaw)
	}
}

func TestMethodAccuracyComparisons(t *testing.T) {
	g := geom.NewGrid(12, 12)
	vp := geom.DefaultViewport
	med := func(mk func() OrientationPredictor, window time.Duration) float64 {
		var all []float64
		for seed := int64(0); seed < 5; seed++ {
			h := trace.GenerateHead(trace.HeadGenParams{Class: trace.MotionClass(seed % 3), Seed: seed + 90})
			all = append(all, MethodAccuracy(mk(), h, g, vp, window, 200*time.Millisecond)...)
		}
		sort.Float64s(all)
		return all[len(all)/2]
	}
	newStatic := func() OrientationPredictor { return &Static{} }
	newDecay := func() OrientationPredictor { return &Decay{} }
	newRegression := func() OrientationPredictor { return Regression{V: NewViewport(0)} }

	// Regression should beat static at a short window (it tracks motion).
	shortReg := med(newRegression, 500*time.Millisecond)
	shortStatic := med(newStatic, 500*time.Millisecond)
	if shortReg < shortStatic-0.02 {
		t.Errorf("regression (%.3f) should not trail static (%.3f) at short windows", shortReg, shortStatic)
	}
	// All methods degrade with the window.
	for name, mk := range map[string]func() OrientationPredictor{
		"static": newStatic, "decay": newDecay, "regression": newRegression,
	} {
		s := med(mk, 200*time.Millisecond)
		l := med(mk, 3*time.Second)
		if l > s {
			t.Errorf("%s: accuracy improved with window (%.3f -> %.3f)", name, s, l)
		}
	}
	// Decay should not be wildly worse than regression anywhere.
	longDecay := med(newDecay, 3*time.Second)
	longReg := med(newRegression, 3*time.Second)
	if longDecay < longReg-0.35 {
		t.Errorf("decay collapsed at long windows: %.3f vs regression %.3f", longDecay, longReg)
	}
}
