package predict

import (
	"math"
	"time"

	"dragonfly/internal/geom"
	"dragonfly/internal/trace"
)

// OrientationPredictor is the common interface over viewport-prediction
// methods, enabling ablations of the paper's linear-regression choice
// (which Flare and Pano found to perform well, §2).
type OrientationPredictor interface {
	// Observe feeds one head sample (non-decreasing t).
	Observe(t time.Duration, o geom.Orientation)
	// Predict extrapolates the orientation at a future instant.
	Predict(at time.Duration) geom.Orientation
}

// Static predicts the most recent orientation — the no-motion baseline.
// It is surprisingly competitive at very short windows (users are often
// still) and degrades gracefully: it never overshoots.
type Static struct {
	last geom.Orientation
	seen bool
}

// Observe implements OrientationPredictor.
func (s *Static) Observe(_ time.Duration, o geom.Orientation) {
	s.last = o
	s.seen = true
}

// Predict implements OrientationPredictor.
func (s *Static) Predict(time.Duration) geom.Orientation {
	if !s.seen {
		return geom.Orientation{}
	}
	return s.last
}

// Decay extrapolates with the recent angular velocity attenuated
// exponentially over the prediction horizon: head motion persists briefly
// but rarely continues for seconds, so damping the velocity tempers the
// linear model's overshoot at long windows.
type Decay struct {
	// HalfLife is the horizon over which the extrapolated velocity halves
	// (default 700 ms).
	HalfLife time.Duration

	lastT       time.Duration
	last        geom.Orientation
	velYaw      float64 // deg/s, EWMA-smoothed
	velPitch    float64
	seenSamples int
}

// Observe implements OrientationPredictor.
func (d *Decay) Observe(t time.Duration, o geom.Orientation) {
	if d.seenSamples > 0 && t > d.lastT {
		dt := (t - d.lastT).Seconds()
		vy := geom.YawDelta(d.last.Yaw, o.Yaw) / dt
		vp := (o.Pitch - d.last.Pitch) / dt
		const alpha = 0.4
		d.velYaw = alpha*vy + (1-alpha)*d.velYaw
		d.velPitch = alpha*vp + (1-alpha)*d.velPitch
	}
	d.last = o
	d.lastT = t
	d.seenSamples++
}

// Predict implements OrientationPredictor.
func (d *Decay) Predict(at time.Duration) geom.Orientation {
	if d.seenSamples == 0 {
		return geom.Orientation{}
	}
	horizon := (at - d.lastT).Seconds()
	if horizon <= 0 {
		return d.last
	}
	hl := d.HalfLife.Seconds()
	if hl <= 0 {
		hl = 0.7
	}
	// Integral of v0 * 2^(-t/hl) from 0 to horizon.
	lambda := math.Ln2 / hl
	travel := (1 - math.Exp(-lambda*horizon)) / lambda
	return geom.Orientation{
		Yaw:   geom.NormalizeYaw(d.last.Yaw + d.velYaw*travel),
		Pitch: geom.ClampPitch(d.last.Pitch + d.velPitch*travel),
	}
}

// Regression adapts the package's linear-regression Viewport to the
// OrientationPredictor interface.
type Regression struct {
	V *Viewport
}

// Observe implements OrientationPredictor.
func (r Regression) Observe(t time.Duration, o geom.Orientation) { r.V.Observe(t, o) }

// Predict implements OrientationPredictor.
func (r Regression) Predict(at time.Duration) geom.Orientation { return r.V.Predict(at) }

// MethodAccuracy evaluates any predictor on a head trace like Accuracy
// does for the default regression: the fraction of actual-viewport tiles
// the predicted viewport covers, at every decision step.
func MethodAccuracy(p OrientationPredictor, h *trace.HeadTrace, g *geom.Grid, vp geom.Viewport, window, step time.Duration) []float64 {
	if step <= 0 {
		step = 200 * time.Millisecond
	}
	var out []float64
	end := h.Duration() - window
	next := DefaultHistory
	for i, s := range h.Samples {
		t := time.Duration(i) * h.SamplePeriod
		p.Observe(t, s)
		if t >= next && t <= end {
			next += step
			predicted := p.Predict(t + window)
			actual := h.At(t + window)
			actualTiles := vp.Tiles(g, actual)
			if len(actualTiles) == 0 {
				continue
			}
			predSet := map[geom.TileID]bool{}
			for _, id := range vp.Tiles(g, predicted) {
				predSet[id] = true
			}
			hit := 0
			for _, id := range actualTiles {
				if predSet[id] {
					hit++
				}
			}
			out = append(out, float64(hit)/float64(len(actualTiles)))
		}
	}
	return out
}
