package predict

import (
	"math"
	"sort"
	"testing"
	"time"

	"dragonfly/internal/geom"
	"dragonfly/internal/trace"
)

func TestViewportPredictConstant(t *testing.T) {
	p := NewViewport(0)
	for i := 0; i < 10; i++ {
		p.Observe(time.Duration(i)*40*time.Millisecond, geom.Orientation{Yaw: 30, Pitch: -10})
	}
	got := p.Predict(2 * time.Second)
	if math.Abs(got.Yaw-30) > 1e-6 || math.Abs(got.Pitch+10) > 1e-6 {
		t.Errorf("constant head predicted %+v", got)
	}
}

func TestViewportPredictLinear(t *testing.T) {
	p := NewViewport(time.Second)
	// 20 deg/s yaw drift, 5 deg/s pitch drift.
	for i := 0; i <= 25; i++ {
		tt := time.Duration(i) * 40 * time.Millisecond
		p.Observe(tt, geom.Orientation{Yaw: 20 * tt.Seconds(), Pitch: 5 * tt.Seconds()})
	}
	got := p.Predict(2 * time.Second) // expect yaw 40, pitch 10
	if math.Abs(got.Yaw-40) > 0.5 || math.Abs(got.Pitch-10) > 0.5 {
		t.Errorf("linear prediction = %+v, want yaw 40 pitch 10", got)
	}
}

func TestViewportPredictAcrossWrap(t *testing.T) {
	p := NewViewport(time.Second)
	// Steady 100 deg/s rotation passing through the ±180 wrap.
	for i := 0; i <= 25; i++ {
		tt := time.Duration(i) * 40 * time.Millisecond
		p.Observe(tt, geom.Orientation{Yaw: geom.NormalizeYaw(150 + 100*tt.Seconds()), Pitch: 0})
	}
	got := p.Predict(1500 * time.Millisecond) // 150 + 150 = 300 => -60
	if math.Abs(geom.YawDelta(-60, got.Yaw)) > 1.5 {
		t.Errorf("wrap prediction yaw = %v, want ~-60", got.Yaw)
	}
}

func TestViewportPredictEmptyAndSingle(t *testing.T) {
	p := NewViewport(0)
	if got := p.Predict(time.Second); got != (geom.Orientation{}) {
		t.Errorf("empty predictor = %+v", got)
	}
	p.Observe(0, geom.Orientation{Yaw: 12, Pitch: 3})
	got := p.Predict(time.Second)
	if got.Yaw != 12 || got.Pitch != 3 {
		t.Errorf("single-sample prediction = %+v", got)
	}
}

func TestViewportHistoryEviction(t *testing.T) {
	p := NewViewport(200 * time.Millisecond)
	// Old fast movement followed by a long static period: prediction should
	// reflect only the recent (static) window.
	for i := 0; i < 10; i++ {
		p.Observe(time.Duration(i)*40*time.Millisecond, geom.Orientation{Yaw: float64(i) * 10, Pitch: 0})
	}
	for i := 10; i < 40; i++ {
		p.Observe(time.Duration(i)*40*time.Millisecond, geom.Orientation{Yaw: 90, Pitch: 0})
	}
	got := p.Predict(3 * time.Second)
	if math.Abs(got.Yaw-90) > 1 {
		t.Errorf("stale history leaked into prediction: yaw %v, want 90", got.Yaw)
	}
}

func TestViewportPitchClamped(t *testing.T) {
	p := NewViewport(time.Second)
	for i := 0; i <= 25; i++ {
		tt := time.Duration(i) * 40 * time.Millisecond
		p.Observe(tt, geom.Orientation{Yaw: 0, Pitch: 80 * tt.Seconds()})
	}
	got := p.Predict(5 * time.Second)
	if got.Pitch > 90 || got.Pitch < -90 {
		t.Errorf("pitch not clamped: %v", got.Pitch)
	}
}

func TestAccuracyDegradesWithWindow(t *testing.T) {
	// The paper's Figure 2: median accuracy falls sharply as the prediction
	// window grows (94.2% at 0.2 s vs 25.4% at 3 s on real traces).
	g := geom.NewGrid(12, 12)
	vp := geom.DefaultViewport
	med := func(window time.Duration) float64 {
		var all []float64
		for seed := int64(0); seed < 6; seed++ {
			h := trace.GenerateHead(trace.HeadGenParams{Class: trace.MotionClass(seed % 3), Seed: seed + 40})
			all = append(all, Accuracy(h, g, vp, window, 200*time.Millisecond)...)
		}
		sort.Float64s(all)
		return all[len(all)/2]
	}
	short := med(200 * time.Millisecond)
	long := med(3 * time.Second)
	if short < 0.85 {
		t.Errorf("short-window median accuracy %v, want > 0.85", short)
	}
	if long > short-0.1 {
		t.Errorf("accuracy did not degrade: %.3f @0.2s vs %.3f @3s", short, long)
	}
}

func TestErrorInjectionHurtsAccuracy(t *testing.T) {
	g := geom.NewGrid(12, 12)
	vp := geom.DefaultViewport
	h := trace.GenerateHead(trace.HeadGenParams{Class: trace.MotionMedium, Seed: 11})
	run := func(shift float64) float64 {
		pred := NewViewportWithError(0, shift, 99)
		sum, n := 0.0, 0
		for i, s := range h.Samples {
			tt := time.Duration(i) * h.SamplePeriod
			pred.Observe(tt, s)
			if i%10 == 0 && tt+time.Second < h.Duration() && tt > DefaultHistory {
				predicted := pred.Predict(tt + time.Second)
				actual := h.At(tt + time.Second)
				actualTiles := vp.Tiles(g, actual)
				hits := 0
				predSet := map[geom.TileID]bool{}
				for _, id := range vp.Tiles(g, predicted) {
					predSet[id] = true
				}
				for _, id := range actualTiles {
					if predSet[id] {
						hits++
					}
				}
				sum += float64(hits) / float64(len(actualTiles))
				n++
			}
		}
		return sum / float64(n)
	}
	clean := run(0)
	noisy := run(40)
	if noisy >= clean {
		t.Errorf("40 deg injected error should hurt accuracy: clean %.3f noisy %.3f", clean, noisy)
	}
}

func TestBandwidthHarmonicMean(t *testing.T) {
	b := NewBandwidth(4)
	b.ObserveMbps(10)
	b.ObserveMbps(10)
	if got := b.PredictMbps(); math.Abs(got-10) > 1e-9 {
		t.Errorf("constant samples: %v", got)
	}
	b2 := NewBandwidth(4)
	b2.ObserveMbps(5)
	b2.ObserveMbps(20)
	// Harmonic mean of 5 and 20 = 8.
	if got := b2.PredictMbps(); math.Abs(got-8) > 1e-9 {
		t.Errorf("harmonic mean = %v, want 8", got)
	}
}

func TestBandwidthWindowEviction(t *testing.T) {
	b := NewBandwidth(2)
	b.ObserveMbps(1)
	b.ObserveMbps(100)
	b.ObserveMbps(100)
	// The 1 Mbps sample has been evicted.
	if got := b.PredictMbps(); math.Abs(got-100) > 1e-9 {
		t.Errorf("eviction failed: %v", got)
	}
}

func TestBandwidthIgnoresDegenerate(t *testing.T) {
	b := NewBandwidth(0)
	b.ObserveTransfer(0, time.Second)
	b.ObserveTransfer(100, 0)
	b.ObserveMbps(-3)
	b.ObserveMbps(math.NaN())
	if got := b.PredictMbps(); got != 0 {
		t.Errorf("degenerate observations produced estimate %v", got)
	}
	b.ObserveTransfer(1e6, time.Second) // 8 Mbps
	if got := b.PredictMbps(); math.Abs(got-8) > 1e-9 {
		t.Errorf("transfer observation = %v, want 8", got)
	}
}

func TestBandwidthSafety(t *testing.T) {
	b := NewBandwidth(0)
	b.Safety = 0.5
	b.ObserveMbps(10)
	if got := b.PredictMbps(); math.Abs(got-5) > 1e-9 {
		t.Errorf("safety-discounted estimate = %v, want 5", got)
	}
}

func TestPredictBytes(t *testing.T) {
	b := NewBandwidth(0)
	b.ObserveMbps(8)
	if got := b.PredictBytes(time.Second); math.Abs(got-1e6) > 1 {
		t.Errorf("PredictBytes = %v, want 1e6", got)
	}
}

func TestEWMA(t *testing.T) {
	e := &EWMA{Alpha: 0.5}
	if e.PredictMbps() != 0 {
		t.Error("uninitialized EWMA should be 0")
	}
	e.ObserveMbps(10)
	if e.PredictMbps() != 10 {
		t.Errorf("first sample: %v", e.PredictMbps())
	}
	e.ObserveMbps(20)
	if math.Abs(e.PredictMbps()-15) > 1e-9 {
		t.Errorf("EWMA = %v, want 15", e.PredictMbps())
	}
	e.ObserveMbps(-1) // ignored
	if math.Abs(e.PredictMbps()-15) > 1e-9 {
		t.Error("EWMA accepted bad sample")
	}
}

func BenchmarkViewportPredict(b *testing.B) {
	p := NewViewport(0)
	for i := 0; i < 25; i++ {
		p.Observe(time.Duration(i)*40*time.Millisecond, geom.Orientation{Yaw: float64(i), Pitch: 0})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Predict(time.Second)
	}
}
