package predict_test

import (
	"fmt"
	"time"

	"dragonfly/internal/geom"
	"dragonfly/internal/predict"
)

// ExampleViewport shows the linear-regression viewport predictor tracking a
// steadily turning user.
func ExampleViewport() {
	p := predict.NewViewport(0)
	// A user turning at 20 degrees per second, sampled at the HMD's 40 ms.
	for i := 0; i <= 25; i++ {
		t := time.Duration(i) * 40 * time.Millisecond
		p.Observe(t, geom.Orientation{Yaw: 20 * t.Seconds()})
	}
	at2s := p.Predict(2 * time.Second)
	fmt.Printf("predicted yaw at t=2s: %.0f degrees\n", at2s.Yaw)
	// Output:
	// predicted yaw at t=2s: 40 degrees
}

// ExampleBandwidth shows the harmonic-mean throughput estimator the
// schedulers budget against.
func ExampleBandwidth() {
	b := predict.NewBandwidth(0)
	b.ObserveMbps(5)
	b.ObserveMbps(20)
	fmt.Printf("harmonic mean of 5 and 20 Mbps: %.0f Mbps\n", b.PredictMbps())
	// Output:
	// harmonic mean of 5 and 20 Mbps: 8 Mbps
}
