package store

import (
	"bytes"
	"testing"

	"dragonfly/internal/chaos"
	"dragonfly/internal/player"
	"dragonfly/internal/proto"
)

// TestAppendFrameFaultKinds pins the store.frame failpoint semantics. The
// corrupt kind is the interesting one: it must build a frame whose wire CRC
// is VALID but whose payload differs in exactly one byte, so the client's
// manifest checksum — not the link layer — is what catches it. (Wire-CRC
// corruption tears the connection down and triggers a legitimate resend;
// payload corruption is the only kind the zero-duplicate soak can assert
// strict bounds over.)
func TestAppendFrameFaultKinds(t *testing.T) {
	m := testManifest(t)
	s := New(m)
	it := player.RequestItem{Stream: player.Primary, Chunk: 0, Tile: 1, Quality: 1}

	bufs, size, ok := s.AppendFrame(nil, it)
	if !ok {
		t.Fatalf("store cannot serve %+v", it)
	}
	want := flatten(bufs)

	// Error kind: the frame is withheld (the sender skips it, exactly like
	// an out-of-range request) — nothing reaches the wire.
	if err := chaos.Arm(chaos.Rule{Site: "store.frame", Kind: chaos.FaultError, Count: 1}); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	t.Cleanup(chaos.Disarm)
	if b, _, okf := s.AppendFrame(nil, it); okf || len(b) != 0 {
		t.Fatalf("error-faulted AppendFrame served a frame: ok=%v len=%d", okf, len(b))
	}
	// Rule exhausted: back to normal service with untouched shared buffers.
	b, sz, okf := s.AppendFrame(nil, it)
	if !okf || sz != size || !bytes.Equal(flatten(b), want) {
		t.Fatalf("post-fault frame differs from baseline")
	}

	// Corrupt kind: same wire size, parses cleanly (CRC trailer recomputed
	// over the corrupted payload), exactly one payload byte differs.
	if err := chaos.Arm(chaos.Rule{Site: "store.frame", Kind: chaos.FaultCorrupt, Count: 1}); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	cb, csz, cok := s.AppendFrame(nil, it)
	if !cok || csz != size {
		t.Fatalf("corrupt-faulted AppendFrame: ok=%v size=%d want %d", cok, csz, size)
	}
	flat := flatten(cb)
	msg, err := proto.ReadMessage(bytes.NewReader(flat))
	if err != nil {
		t.Fatalf("corrupt frame must stay wire-valid (CRC recomputed), got %v", err)
	}
	if msg.Type != proto.MsgTileData || msg.TileData.Item != it {
		t.Fatalf("corrupt frame decoded to %+v", msg)
	}
	diffs := 0
	for i := range flat {
		if flat[i] != want[i] {
			diffs++
		}
	}
	// The payload flip changes one payload byte and therefore the CRC
	// trailer too (1-4 trailer bytes).
	if diffs < 2 || diffs > 5 {
		t.Fatalf("corrupt frame differs from baseline in %d bytes, want payload byte + CRC", diffs)
	}
	if chaos.Injections("store.frame") == 0 {
		t.Fatalf("no injections recorded")
	}

	// The shared slab must be untouched: a fresh append serves the
	// baseline bytes again.
	b2, _, ok2 := s.AppendFrame(nil, it)
	if !ok2 || !bytes.Equal(flatten(b2), want) {
		t.Fatalf("corruption leaked into the shared store")
	}
}
