// Package store implements the process-wide immutable tile store behind
// the server's zero-copy send path (ROADMAP: "shared immutable tile store
// + zero-copy send path"). At manifest load it pre-frames and
// pre-checksums every MsgTileData wire frame the manifest can ever
// produce — each (chunk, tile, quality) variant on both stream kinds,
// plus the untiled full-360° masking variants — paying the CRC32-C
// framing cost exactly once per frame instead of once per send. Sessions
// then serve tiles by reference: a send is three slice headers appended
// to a net.Buffers (head || payload || trailer) and one vectored write,
// with zero per-send serialization or checksum work and zero
// per-connection payload memory.
//
// Memory model: the store keeps proto.TileFrameOverhead (20) bytes per
// frame — the head and CRC trailer — plus ONE shared payload slab sized
// to the largest variant. Payload bytes are synthetic zeros: the
// schedulers only ever consume tile SIZES from the manifest, and the
// manifest's payload checksums are computed over the same zero bytes
// (video.Generate), so the pre-framed trailer and the client's payload
// verification agree bit for bit. A deployment serving real encoded tiles
// would hold one payload slab per variant; heads, trailers, and the
// serve-by-reference path are unchanged.
//
// Everything in a Store is immutable after New returns, so any number of
// connection handlers may read it concurrently without synchronization;
// Shared deduplicates stores process-wide per manifest, the same pattern
// as geom.SharedTable and quality.Scores.
package store

import (
	"net"
	"sync"
	"time"

	"dragonfly/internal/chaos"
	"dragonfly/internal/geom"
	"dragonfly/internal/player"
	"dragonfly/internal/proto"
	"dragonfly/internal/video"
)

// store.frame is the disk-tier failpoint (see docs/RESILIENCE.md): armed,
// it withholds a frame (error/partial kinds — the tile is simply not
// appended this pass, as if the backing read failed) or substitutes a
// CRC-valid frame whose payload is corrupted (corrupt kind) — the wire
// trailer is recomputed over the flipped payload, so the link survives and
// the client's manifest payload checksum is the only guard that can catch
// it. Disarmed it is one atomic load inside AppendFrame, pinned by the
// steady-state zero-alloc test and BenchmarkFrameWritePreframed.
var siteFrame = chaos.NewSite("store.frame")

// Store holds the pre-framed wire buffers of every tile frame of one
// manifest. It is immutable after construction; see the package comment.
type Store struct {
	m     *video.Manifest
	tiles int

	// heads and trailers are flat per-frame slabs: frame i owns
	// heads[i*TileHeadSize:(i+1)*TileHeadSize] and the matching trailer
	// window. The head encodes the full wire item — including its Stream
	// kind, which the client uses to record primary vs masking — so tiled
	// variants hold one frame per stream kind. Layout: primary tiled
	// frames first ((chunk*tiles+tile)*Q+q), then the masking tiled
	// frames (+tiledCount), then the full-360° masking frames
	// (2*tiledCount + chunk*Q + q).
	heads    []byte
	trailers []byte

	// payload is the shared zero slab every frame's payload is cut from.
	payload []byte
}

// New builds the store for a manifest, pre-framing every frame. This is
// the warm-up cost of a manifest load: one CRC32-C pass over each frame's
// payload length (hardware-accelerated; see docs/PERFORMANCE.md for the
// cost model). A variant whose frame would exceed proto.MaxFrameSize —
// impossible to send on this wire at all — is left unbuilt, and
// AppendFrame reports it as out of range so senders skip it instead of
// tearing the session down mid-stream.
func New(m *video.Manifest) *Store {
	tiles := m.NumTiles()
	nv := 2*m.NumChunks*tiles*video.NumQualities + m.NumChunks*video.NumQualities
	s := &Store{
		m:        m,
		tiles:    tiles,
		heads:    make([]byte, nv*proto.TileHeadSize),
		trailers: make([]byte, nv*proto.TileTrailerSize),
	}
	var maxSize int64
	forEachFrame(m, func(_ int, it player.RequestItem) {
		if size := it.Size(m); size > maxSize {
			maxSize = size
		}
	})
	s.payload = make([]byte, maxSize)
	forEachFrame(m, func(i int, it player.RequestItem) {
		head := s.heads[i*proto.TileHeadSize : (i+1)*proto.TileHeadSize]
		trailer := s.trailers[i*proto.TileTrailerSize : (i+1)*proto.TileTrailerSize]
		// An oversized variant leaves its head zeroed (a tile frame head
		// always carries the nonzero MsgTileData type byte), which locate
		// treats as absent.
		_ = proto.PreframeTile(head, trailer, it, s.payload[:it.Size(m)])
	})
	return s
}

// forEachFrame enumerates every sendable wire frame of the manifest in
// store index order: all tiled (chunk, tile, quality) triples as primary,
// the same triples as masking, then the untiled full-360° (chunk,
// quality) pairs (masking by definition).
func forEachFrame(m *video.Manifest, f func(i int, it player.RequestItem)) {
	tiles := m.NumTiles()
	i := 0
	for _, stream := range []player.StreamKind{player.Primary, player.Masking} {
		for c := 0; c < m.NumChunks; c++ {
			for t := 0; t < tiles; t++ {
				for q := video.Quality(0); q < video.NumQualities; q++ {
					f(i, player.RequestItem{Stream: stream, Chunk: c, Tile: geom.TileID(t), Quality: q})
					i++
				}
			}
		}
	}
	for c := 0; c < m.NumChunks; c++ {
		for q := video.Quality(0); q < video.NumQualities; q++ {
			f(i, player.RequestItem{Stream: player.Masking, Chunk: c, Full360: true, Quality: q})
			i++
		}
	}
}

// locate maps an item to its frame index and payload size; ok is false
// for items outside the manifest or beyond the frame cap. A full-360°
// item on the primary stream is rejected too: the untiled chunk exists
// only as a masking-stream payload, and real fetch lists never ask
// otherwise.
func (s *Store) locate(it player.RequestItem) (idx int, size int64, ok bool) {
	if it.Chunk < 0 || it.Chunk >= s.m.NumChunks || !it.Quality.Valid() {
		return 0, 0, false
	}
	tiled := s.m.NumChunks * s.tiles * video.NumQualities
	if it.Full360 {
		if it.Stream != player.Masking {
			return 0, 0, false
		}
		idx = 2*tiled + it.Chunk*video.NumQualities + int(it.Quality)
		size = s.m.Full360Size(it.Chunk, it.Quality)
	} else {
		if int(it.Tile) < 0 || int(it.Tile) >= s.tiles {
			return 0, 0, false
		}
		idx = (it.Chunk*s.tiles+int(it.Tile))*video.NumQualities + int(it.Quality)
		switch it.Stream {
		case player.Primary:
		case player.Masking:
			idx += tiled
		default:
			return 0, 0, false
		}
		size = s.m.TileSize(it.Chunk, it.Tile, it.Quality)
	}
	if s.heads[idx*proto.TileHeadSize+4] == 0 {
		// Zeroed type byte: the variant could not be framed (beyond the
		// frame cap).
		return 0, 0, false
	}
	return idx, size, true
}

// AppendFrame appends the item's pre-framed wire buffers — head, payload,
// trailer — to bufs and returns the extended slice plus the frame's total
// wire size. ok is false for items outside the manifest (or beyond the
// frame cap): nothing is appended and the caller should skip the item,
// exactly as the server's queue does for malformed entries.
//
// The appended slices are immutable shared references. Callers must never
// write through them; net.Buffers.WriteTo only ever reslices the
// net.Buffers value itself, so handing the same underlying buffers to any
// number of concurrent connections is race-free. Note that WriteTo
// CONSUMES the value it runs on — it reslices the header forward to zero
// capacity — so a sender reusing its scratch across batches must call
// WriteTo on a copy of the slice header and keep appending into the
// original (see the server's sender loop).
func (s *Store) AppendFrame(bufs net.Buffers, it player.RequestItem) (net.Buffers, int64, bool) {
	idx, size, ok := s.locate(it)
	if !ok {
		return bufs, 0, false
	}
	if f := siteFrame.Fault(); f.Active() {
		return s.appendFaulted(bufs, it, idx, size, f)
	}
	bufs = append(bufs, s.heads[idx*proto.TileHeadSize:(idx+1)*proto.TileHeadSize])
	if size > 0 {
		// Zero-length buffers are skipped: an empty Write blocks on
		// rendezvous transports (net.Pipe) and costs a syscall for nothing.
		bufs = append(bufs, s.payload[:size])
	}
	bufs = append(bufs, s.trailers[idx*proto.TileTrailerSize:(idx+1)*proto.TileTrailerSize])
	return bufs, int64(proto.TileFrameOverhead) + size, true
}

// appendFaulted is the armed store.frame slow path. Error and partial
// kinds withhold the frame — the caller sees the same "store cannot serve
// this item" skip a locate miss produces, and the client refetches through
// normal scheduling. Delay stalls, then serves normally. Corrupt builds a
// fresh frame (never touching the shared immutable buffers) whose payload
// has one flipped byte and whose trailer CRC is recomputed to match: the
// wire layer accepts it, and only the client's per-tile manifest checksum
// can reject the tile.
func (s *Store) appendFaulted(bufs net.Buffers, it player.RequestItem, idx int, size int64, f chaos.Fault) (net.Buffers, int64, bool) {
	switch f.Kind {
	case chaos.FaultDelay:
		time.Sleep(f.Delay)
	case chaos.FaultCorrupt:
		if size == 0 {
			break // nothing to corrupt in an empty payload; serve normally
		}
		head := make([]byte, proto.TileHeadSize)
		trailer := make([]byte, proto.TileTrailerSize)
		payload := make([]byte, size)
		copy(payload, s.payload[:size])
		payload[int(f.Tick%uint64(size))] ^= 0x01
		if err := proto.PreframeTile(head, trailer, it, payload); err != nil {
			return bufs, 0, false
		}
		bufs = append(bufs, head, payload, trailer)
		return bufs, int64(proto.TileFrameOverhead) + size, true
	default: // error, partial: the frame is withheld this pass
		return bufs, 0, false
	}
	bufs = append(bufs, s.heads[idx*proto.TileHeadSize:(idx+1)*proto.TileHeadSize])
	if size > 0 {
		bufs = append(bufs, s.payload[:size])
	}
	bufs = append(bufs, s.trailers[idx*proto.TileTrailerSize:(idx+1)*proto.TileTrailerSize])
	return bufs, int64(proto.TileFrameOverhead) + size, true
}

// Frame returns the item's complete pre-framed wire buffers; a convenience
// wrapper over AppendFrame for tests and single-frame sends.
func (s *Store) Frame(it player.RequestItem) (net.Buffers, int64, bool) {
	return s.AppendFrame(nil, it)
}

// WireSize returns the full on-the-wire size of the item's frame
// (payload plus proto.TileFrameOverhead), or 0 for items the store cannot
// serve. This is the honest unit for queued-bytes backlog accounting:
// with buffers shared process-wide, queued bytes measure pending
// transmission, not duplicated per-session memory.
func (s *Store) WireSize(it player.RequestItem) int64 {
	_, size, ok := s.locate(it)
	if !ok {
		return 0
	}
	return int64(proto.TileFrameOverhead) + size
}

// Manifest returns the manifest the store was built from.
func (s *Store) Manifest() *video.Manifest { return s.m }

// NumFrames reports how many pre-framed wire frames the store holds.
func (s *Store) NumFrames() int { return len(s.heads) / proto.TileHeadSize }

// MemoryBytes reports the store's resident footprint: per-frame heads
// and trailers plus the one shared payload slab. This is the process-wide
// cost of serving the manifest to ANY number of concurrent sessions — the
// number the srv_store_bytes gauge exposes.
func (s *Store) MemoryBytes() int64 {
	return int64(len(s.heads) + len(s.trailers) + len(s.payload))
}

// storeHolder defers construction so concurrent Shared callers block on
// one build instead of racing to build duplicates.
type storeHolder struct {
	once  sync.Once
	store *Store
}

var sharedStores sync.Map // *video.Manifest -> *storeHolder

// Shared returns the process-wide store for the manifest, building it
// once on first use. Every server (and every cold-restarted server in the
// same process sharing the manifest pointer) serves from the same
// immutable frames; warm it before fanning out many servers or sessions,
// the way sim pre-warms the shared overlap and score tables.
func Shared(m *video.Manifest) *Store {
	h, ok := sharedStores.Load(m)
	if !ok {
		h, _ = sharedStores.LoadOrStore(m, &storeHolder{})
	}
	holder := h.(*storeHolder)
	holder.once.Do(func() { holder.store = New(m) })
	return holder.store
}
