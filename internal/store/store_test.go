package store

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"

	"dragonfly/internal/geom"
	"dragonfly/internal/player"
	"dragonfly/internal/proto"
	"dragonfly/internal/video"
)

func testManifest(t testing.TB) *video.Manifest {
	t.Helper()
	return video.Generate(video.GenParams{ID: "store", Rows: 4, Cols: 4, NumChunks: 3, Seed: 11})
}

// flatten concatenates a frame's buffers into one contiguous wire image.
func flatten(bufs [][]byte) []byte {
	var out []byte
	for _, b := range bufs {
		out = append(out, b...)
	}
	return out
}

// TestFramesByteIdenticalToWriteTileData proves the zero-copy path is a
// pure representation change: for EVERY variant the store can serve —
// each (chunk, tile, quality) on both stream kinds plus every full-360°
// masking variant — the pre-framed buffers concatenate to exactly the
// bytes proto.WriteTileData emits, CRC trailer included.
func TestFramesByteIdenticalToWriteTileData(t *testing.T) {
	m := testManifest(t)
	s := New(m)
	checked := 0
	forEachFrame(m, func(_ int, it player.RequestItem) {
		bufs, size, ok := s.Frame(it)
		if !ok {
			t.Fatalf("store cannot serve %+v", it)
		}
		payload := make([]byte, it.Size(m))
		var want bytes.Buffer
		if err := proto.WriteTileData(&want, proto.TileData{Item: it, Payload: payload}); err != nil {
			t.Fatalf("WriteTileData %+v: %v", it, err)
		}
		got := flatten(bufs)
		if !bytes.Equal(got, want.Bytes()) {
			t.Fatalf("frame for %+v differs from WriteTileData output (%d vs %d bytes)", it, len(got), want.Len())
		}
		if size != int64(len(got)) {
			t.Fatalf("frame size %d != wire bytes %d for %+v", size, len(got), it)
		}
		checked++
	})
	if checked != s.NumFrames() {
		t.Fatalf("checked %d frames, store holds %d", checked, s.NumFrames())
	}
}

// TestFramesDecodeWithRequestedStream guards the subtle part of the
// layout: the wire item inside the frame head carries the stream kind, so
// the same (chunk, tile, quality) served as primary and as masking must
// decode back to DIFFERENT wire items matching each request.
func TestFramesDecodeWithRequestedStream(t *testing.T) {
	m := testManifest(t)
	s := New(m)
	for _, stream := range []player.StreamKind{player.Primary, player.Masking} {
		it := player.RequestItem{Stream: stream, Chunk: 1, Tile: 5, Quality: video.Quality(2)}
		bufs, _, ok := s.Frame(it)
		if !ok {
			t.Fatalf("store cannot serve %+v", it)
		}
		msg, err := proto.ReadMessage(bytes.NewReader(flatten(bufs)))
		if err != nil {
			t.Fatalf("decode %v frame: %v", stream, err)
		}
		if msg.Type != proto.MsgTileData || msg.TileData.Item != it {
			t.Fatalf("frame decodes to %+v, requested %+v", msg.TileData.Item, it)
		}
	}
}

// TestLocateRejectsOutOfRange pins the skip-don't-crash contract for
// malformed queue entries.
func TestLocateRejectsOutOfRange(t *testing.T) {
	m := testManifest(t)
	s := New(m)
	bad := []player.RequestItem{
		{Stream: player.Primary, Chunk: m.NumChunks, Tile: 0, Quality: video.Quality(2)},
		{Stream: player.Primary, Chunk: -1, Tile: 0, Quality: video.Quality(2)},
		{Stream: player.Primary, Chunk: 0, Tile: geom.TileID(m.NumTiles()), Quality: video.Quality(2)},
		{Stream: player.Primary, Chunk: 0, Tile: 0, Quality: video.NumQualities},
		{Stream: player.StreamKind(9), Chunk: 0, Tile: 0, Quality: video.Quality(2)},
		// Full-360° exists only on the masking stream.
		{Stream: player.Primary, Chunk: 0, Full360: true, Quality: video.Quality(2)},
	}
	for _, it := range bad {
		if bufs, size, ok := s.AppendFrame(nil, it); ok || len(bufs) != 0 || size != 0 {
			t.Fatalf("AppendFrame accepted out-of-range item %+v", it)
		}
		if ws := s.WireSize(it); ws != 0 {
			t.Fatalf("WireSize %d for out-of-range item %+v", ws, it)
		}
	}
}

// TestSharedReturnsSameStore pins the process-wide dedup: every caller
// with the same manifest shares one store instance.
func TestSharedReturnsSameStore(t *testing.T) {
	m := testManifest(t)
	var wg sync.WaitGroup
	stores := make([]*Store, 8)
	for i := range stores {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			stores[i] = Shared(m)
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(stores); i++ {
		if stores[i] != stores[0] {
			t.Fatalf("Shared returned distinct stores for one manifest")
		}
	}
	if stores[0].Manifest() != m {
		t.Fatalf("shared store bound to wrong manifest")
	}
}

// TestConcurrentReaders drives many goroutines — standing in for many
// connection sender loops — through the full frame set of one shared
// store simultaneously, each flattening and CRC-verifying every frame.
// Run under -race this proves the serve-by-reference path needs no
// synchronization.
func TestConcurrentReaders(t *testing.T) {
	m := testManifest(t)
	s := Shared(m)
	const readers = 16
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			bufs := make([][]byte, 0, 3)
			forEachFrame(m, func(_ int, it player.RequestItem) {
				var ok bool
				bufs, _, ok = s.AppendFrame(bufs[:0], it)
				if !ok {
					errs <- io.ErrUnexpectedEOF
					return
				}
				if _, err := proto.ReadMessage(bytes.NewReader(flatten(bufs))); err != nil {
					errs <- err
				}
			})
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent reader: %v", err)
	}
}

// TestAppendFrameSteadyStateZeroWork pins the tentpole win: serving a
// tile in steady state is slice appends plus a vectored write — zero
// allocations, zero serialization, zero CRC work.
func TestAppendFrameSteadyStateZeroWork(t *testing.T) {
	m := testManifest(t)
	s := New(m)
	it := player.RequestItem{Stream: player.Primary, Chunk: 0, Tile: 3, Quality: video.Highest}
	// Two persistent slices, as in the server's sender loop: WriteTo
	// consumes the net.Buffers value it is called on (reslicing it
	// forward to zero capacity), so the write must run on a COPY of the
	// scratch header — reusing the consumed value would force the next
	// lap's appends to reallocate. Both live outside the measured closure
	// because WriteTo's pointer receiver makes a per-lap local escape.
	scratch := make(net.Buffers, 0, 3)
	var wire net.Buffers
	allocs := testing.AllocsPerRun(200, func() {
		var ok bool
		scratch, _, ok = s.AppendFrame(scratch[:0], it)
		if !ok {
			t.Fatal("AppendFrame failed")
		}
		wire = scratch
		if _, err := wire.WriteTo(io.Discard); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state send allocates %.1f times per frame, want 0", allocs)
	}
}

// MemoryBytes sanity: the footprint is per-frame overhead plus one
// payload slab, NOT payloads times frames.
func TestMemoryBytesIsSharedSlabModel(t *testing.T) {
	m := testManifest(t)
	s := New(m)
	var maxSize int64
	forEachFrame(m, func(_ int, it player.RequestItem) {
		if sz := it.Size(m); sz > maxSize {
			maxSize = sz
		}
	})
	want := int64(s.NumFrames()*proto.TileFrameOverhead) + maxSize
	if got := s.MemoryBytes(); got != want {
		t.Fatalf("MemoryBytes = %d, want %d", got, want)
	}
}
