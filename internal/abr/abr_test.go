package abr

import (
	"testing"
	"time"

	"dragonfly/internal/video"
)

func TestChunkBudget(t *testing.T) {
	// 8 Mbps for 1 s at safety 1.0 = 1e6 bytes.
	if got := ChunkBudget(8, time.Second, 1); got != 1e6 {
		t.Errorf("budget = %d", got)
	}
	// Default safety applies when non-positive.
	if got := ChunkBudget(8, time.Second, 0); got != int64(1e6*DefaultSafety) {
		t.Errorf("default-safety budget = %d", got)
	}
	if got := ChunkBudget(-5, time.Second, 1); got != 0 {
		t.Errorf("negative rate budget = %d", got)
	}
}

func TestMaxQualityFitting(t *testing.T) {
	sizes := map[video.Quality]int64{0: 100, 1: 200, 2: 400, 3: 800, 4: 1600}
	cost := func(q video.Quality) int64 { return sizes[q] }
	if got := MaxQualityFitting(cost, 1600, 0, 4); got != 4 {
		t.Errorf("ample budget picked %d", got)
	}
	if got := MaxQualityFitting(cost, 799, 0, 4); got != 2 {
		t.Errorf("mid budget picked %d", got)
	}
	if got := MaxQualityFitting(cost, 50, 0, 4); got != 0 {
		t.Errorf("starved budget picked %d, want floor", got)
	}
	// Respects minQ floor.
	if got := MaxQualityFitting(cost, 50, 1, 4); got != 1 {
		t.Errorf("floored budget picked %d, want 1", got)
	}
}

func TestQualityForDeadline(t *testing.T) {
	sizes := map[video.Quality]int64{0: 1000, 1: 2000, 2: 4000, 3: 8000, 4: 16000}
	size := func(q video.Quality) int64 { return sizes[q] }
	// 10 KB/s for 1 s with no backlog: 10000 bytes => q3.
	if got := QualityForDeadline(size, 0, 10000, time.Second, 0, 4); got != 3 {
		t.Errorf("deadline quality = %d, want 3", got)
	}
	// Backlog eats the budget.
	if got := QualityForDeadline(size, 9000, 10000, time.Second, 0, 4); got != 0 {
		t.Errorf("backlogged quality = %d, want 0", got)
	}
	// Dead link: minimum.
	if got := QualityForDeadline(size, 0, 0, time.Second, 0, 4); got != 0 {
		t.Errorf("dead link quality = %d", got)
	}
}

func ladderCost(q video.Quality) int64 {
	sizes := [video.NumQualities]int64{50_000, 100_000, 200_000, 400_000, 800_000}
	return sizes[q]
}

func TestRateBasedAlgorithm(t *testing.T) {
	r := RateBased{Safety: 1}
	if r.Name() != "rate" {
		t.Error("name")
	}
	// 8 Mbps x 1 s = 1e6 bytes: the whole ladder fits -> highest.
	if got := r.Choose(8, 0, time.Second, ladderCost); got != video.NumQualities-1 {
		t.Errorf("fast link chose %d", got)
	}
	// 1 Mbps = 125 kB: q1 (100 kB) fits, q2 (200 kB) does not.
	if got := r.Choose(1, 0, time.Second, ladderCost); got != 1 {
		t.Errorf("slow link chose %d", got)
	}
}

func TestBufferBasedAlgorithm(t *testing.T) {
	b := BufferBased{Reservoir: time.Second, Cushion: 4 * time.Second}
	if b.Name() != "bba" {
		t.Error("name")
	}
	if got := b.Choose(100, 500*time.Millisecond, time.Second, ladderCost); got != 0 {
		t.Errorf("below reservoir chose %d", got)
	}
	if got := b.Choose(0.1, 10*time.Second, time.Second, ladderCost); got != video.NumQualities-1 {
		t.Errorf("above cushion chose %d", got)
	}
	mid := b.Choose(5, 3*time.Second, time.Second, ladderCost)
	if mid <= 0 || mid >= video.NumQualities-1 {
		t.Errorf("mid buffer chose %d, want interior level", mid)
	}
	// Monotone in buffer.
	prev := video.Quality(0)
	for ms := 0; ms <= 8000; ms += 250 {
		q := b.Choose(5, time.Duration(ms)*time.Millisecond, time.Second, ladderCost)
		if q < prev {
			t.Fatalf("BBA not monotone in buffer at %dms", ms)
		}
		prev = q
	}
}

func TestMPCAlgorithm(t *testing.T) {
	m := MPC{}
	if m.Name() != "mpc" {
		t.Error("name")
	}
	// Plenty of bandwidth and buffer: highest.
	if got := m.Choose(50, 3*time.Second, time.Second, ladderCost); got != video.NumQualities-1 {
		t.Errorf("ample chose %d", got)
	}
	// Dead link: lowest.
	if got := m.Choose(0, 0, time.Second, ladderCost); got != 0 {
		t.Errorf("dead link chose %d", got)
	}
	// Thin buffer + marginal rate: MPC backs off below what rate-based picks.
	rb := RateBased{Safety: 1}.Choose(1.8, 0, time.Second, ladderCost)
	mpc := m.Choose(1.8, 100*time.Millisecond, time.Second, ladderCost)
	if mpc > rb {
		t.Errorf("MPC (%d) more aggressive than rate-based (%d) with no buffer", mpc, rb)
	}
	// More buffer should never decrease MPC's choice.
	lo := m.Choose(2, 200*time.Millisecond, time.Second, ladderCost)
	hi := m.Choose(2, 4*time.Second, time.Second, ladderCost)
	if hi < lo {
		t.Errorf("MPC not monotone in buffer: %d -> %d", lo, hi)
	}
}
