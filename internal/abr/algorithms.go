package abr

import (
	"time"

	"dragonfly/internal/video"
)

// This file implements the classic chunk-level ABR algorithms the paper's
// background cites ([27] buffer-based, [49] MPC) as selectable policies.
// Pano and Two-tier pick a bitrate per chunk with "a traditional ABR
// algorithm" (§4.1); the rate-based policy with a harmonic-mean estimate is
// the default used in the evaluation, and these variants exist for
// ablations of that substrate choice.

// Algorithm chooses a per-chunk quality from throughput and buffer state.
type Algorithm interface {
	// Name identifies the policy.
	Name() string
	// Choose picks a quality given the throughput estimate, the current
	// buffer level, and the cost (bytes) of this chunk at each quality.
	Choose(predictedMbps float64, buffer time.Duration, chunkDur time.Duration, cost func(video.Quality) int64) video.Quality
}

// RateBased is the default policy: the highest quality whose cost fits the
// discounted throughput-estimate budget. This is what ChunkBudget +
// MaxQualityFitting implement inline for the baselines.
type RateBased struct {
	Safety float64
}

// Name implements Algorithm.
func (r RateBased) Name() string { return "rate" }

// Choose implements Algorithm.
func (r RateBased) Choose(predictedMbps float64, _ time.Duration, chunkDur time.Duration, cost func(video.Quality) int64) video.Quality {
	budget := ChunkBudget(predictedMbps, chunkDur, r.Safety)
	return MaxQualityFitting(cost, budget, 0, video.NumQualities-1)
}

// BufferBased implements the BBA-style policy of Huang et al. [27]: quality
// is a piecewise-linear function of buffer occupancy alone — below the
// reservoir pick the lowest, above the cushion the highest, linear between.
type BufferBased struct {
	// Reservoir is the buffer level below which the lowest quality is used.
	Reservoir time.Duration
	// Cushion is the additional buffer over which quality ramps linearly to
	// the highest level.
	Cushion time.Duration
}

// Name implements Algorithm.
func (b BufferBased) Name() string { return "bba" }

// Choose implements Algorithm.
func (b BufferBased) Choose(_ float64, buffer time.Duration, _ time.Duration, _ func(video.Quality) int64) video.Quality {
	reservoir := b.Reservoir
	if reservoir <= 0 {
		reservoir = time.Second
	}
	cushion := b.Cushion
	if cushion <= 0 {
		cushion = 3 * time.Second
	}
	if buffer <= reservoir {
		return 0
	}
	if buffer >= reservoir+cushion {
		return video.NumQualities - 1
	}
	frac := float64(buffer-reservoir) / float64(cushion)
	q := video.Quality(frac * float64(video.NumQualities-1))
	if q >= video.NumQualities {
		q = video.NumQualities - 1
	}
	return q
}

// MPC implements a simplified model-predictive policy [49]: over a short
// horizon of upcoming chunks it maximizes quality minus rebuffering risk,
// assuming the throughput estimate holds. With per-chunk costs provided
// only for the next chunk, the horizon uses that chunk's ladder as a proxy
// for its successors (adequate for 1-second chunks).
type MPC struct {
	// HorizonChunks is how many future chunks the plan covers (default 3).
	HorizonChunks int
	// RebufferPenalty converts a second of predicted rebuffering into
	// quality-level units (default 6: one level ≈ 0.17 s of stall).
	RebufferPenalty float64
}

// Name implements Algorithm.
func (m MPC) Name() string { return "mpc" }

// Choose implements Algorithm.
func (m MPC) Choose(predictedMbps float64, buffer time.Duration, chunkDur time.Duration, cost func(video.Quality) int64) video.Quality {
	horizon := m.HorizonChunks
	if horizon <= 0 {
		horizon = 3
	}
	penalty := m.RebufferPenalty
	if penalty <= 0 {
		penalty = 6
	}
	rate := predictedMbps * 1e6 / 8 // bytes per second
	if rate <= 0 {
		return 0
	}
	best := video.Quality(0)
	bestScore := -1e18
	for q := video.Quality(0); q < video.NumQualities; q++ {
		// Simulate downloading `horizon` chunks at quality q.
		buf := buffer.Seconds()
		rebuf := 0.0
		downloadSec := float64(cost(q)) / rate
		for h := 0; h < horizon; h++ {
			buf -= downloadSec
			if buf < 0 {
				rebuf += -buf
				buf = 0
			}
			buf += chunkDur.Seconds()
		}
		score := float64(q)*float64(horizon) - penalty*rebuf
		if score > bestScore {
			bestScore = score
			best = q
		}
	}
	return best
}
