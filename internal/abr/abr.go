// Package abr provides the chunk-level adaptive-bitrate substrate used by
// the single-decision baselines (Pano, Two-tier): a rate-based budget with
// a safety margin, and helpers to pick the best quality fitting a budget.
// The paper's baselines pick a bitrate per chunk with a traditional ABR
// algorithm and then map it onto tile qualities (§4.1).
//
// This is deliberately the simplest credible ABR — a throughput estimate
// discounted by a fixed safety factor, as rate-based players ship it — so
// that the baselines' quality differences against Dragonfly come from
// their tile-selection logic, not from ABR sophistication. The functions
// here are pure and allocation-free; they are called on the per-decision
// hot path of every baseline scheme (see internal/player.Scheme).
package abr

import (
	"time"

	"dragonfly/internal/video"
)

// DefaultSafety discounts the throughput estimate when budgeting, absorbing
// prediction error as rate-based ABRs do.
const DefaultSafety = 0.9

// ChunkBudget returns the byte budget for one chunk of the given duration
// at the predicted throughput. A non-positive safety falls back to
// DefaultSafety.
func ChunkBudget(predictedMbps float64, chunkDur time.Duration, safety float64) int64 {
	if safety <= 0 {
		safety = DefaultSafety
	}
	if predictedMbps < 0 {
		predictedMbps = 0
	}
	return int64(predictedMbps * 1e6 / 8 * chunkDur.Seconds() * safety)
}

// MaxQualityFitting returns the highest quality in [minQ, maxQ] whose cost
// (per the cost function) fits the budget, or minQ if none fits.
func MaxQualityFitting(cost func(video.Quality) int64, budget int64, minQ, maxQ video.Quality) video.Quality {
	for q := maxQ; q > minQ; q-- {
		if cost(q) <= budget {
			return q
		}
	}
	return minQ
}

// QualityForDeadline picks the highest quality in [minQ, maxQ] whose
// transfer (bytes at the given rate, after the given backlog) completes
// before the deadline; it returns minQ if even that is late (the caller
// fetches at minimum quality and hopes, as Flare does — §2, Fig 4).
func QualityForDeadline(size func(video.Quality) int64, backlogBytes int64, rateBytesPerSec float64, timeLeft time.Duration, minQ, maxQ video.Quality) video.Quality {
	if rateBytesPerSec <= 0 {
		return minQ
	}
	budget := int64(rateBytesPerSec*timeLeft.Seconds()) - backlogBytes
	return MaxQualityFitting(size, budget, minQ, maxQ)
}
