package abr_test

import (
	"fmt"
	"time"

	"dragonfly/internal/abr"
	"dragonfly/internal/video"
)

// ExampleMaxQualityFitting picks the best quality level whose chunk cost
// fits a throughput budget — the rate-based ABR decision Pano and Two-tier
// make once per chunk.
func ExampleMaxQualityFitting() {
	sizes := map[video.Quality]int64{0: 100_000, 1: 200_000, 2: 400_000, 3: 800_000, 4: 1_600_000}
	cost := func(q video.Quality) int64 { return sizes[q] }

	budget := abr.ChunkBudget(8, time.Second, 1.0) // 8 Mbps for a 1 s chunk
	q := abr.MaxQualityFitting(cost, budget, 0, video.NumQualities-1)
	fmt.Printf("budget %d bytes -> quality level %d (QP %d)\n", budget, q, q.QP())
	// Output:
	// budget 1000000 bytes -> quality level 3 (QP 27)
}
