package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalizeYaw(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0}, {180, -180}, {-180, -180}, {190, -170}, {-190, 170},
		{360, 0}, {720, 0}, {-360, 0}, {539, 179}, {541, -179},
	}
	for _, c := range cases {
		if got := NormalizeYaw(c.in); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("NormalizeYaw(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNormalizeYawRangeProperty(t *testing.T) {
	f := func(yaw float64) bool {
		if math.IsNaN(yaw) || math.IsInf(yaw, 0) {
			return true
		}
		y := NormalizeYaw(yaw)
		return y >= -180 && y < 180
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestYawDelta(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{0, 10, 10}, {10, 0, -10}, {170, -170, 20}, {-170, 170, -20},
		{0, 180, 180}, {90, -90, 180},
	}
	for _, c := range cases {
		if got := YawDelta(c.a, c.b); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("YawDelta(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestYawDeltaAntisymmetry(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		a, b = NormalizeYaw(a), NormalizeYaw(b)
		d1, d2 := YawDelta(a, b), YawDelta(b, a)
		// d1 == -d2 except at the 180 boundary where both map to +180.
		if math.Abs(math.Abs(d1)-180) < 1e-9 {
			return math.Abs(math.Abs(d2)-180) < 1e-9
		}
		return math.Abs(d1+d2) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAngularDistance(t *testing.T) {
	cases := []struct {
		a, b Orientation
		want float64
	}{
		{Orientation{0, 0}, Orientation{0, 0}, 0},
		{Orientation{0, 0}, Orientation{90, 0}, 90},
		{Orientation{0, 0}, Orientation{-180, 0}, 180},
		{Orientation{0, 0}, Orientation{0, 90}, 90},
		{Orientation{0, 90}, Orientation{123, 90}, 0},   // both at zenith
		{Orientation{0, 45}, Orientation{-180, 45}, 90}, // over the pole
		{Orientation{30, 0}, Orientation{40, 0}, 10},
	}
	for _, c := range cases {
		if got := AngularDistance(c.a, c.b); math.Abs(got-c.want) > 1e-6 {
			t.Errorf("AngularDistance(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestAngularDistanceProperties(t *testing.T) {
	f := func(y1, p1, y2, p2 float64) bool {
		for _, v := range []float64{y1, p1, y2, p2} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		a := Orientation{NormalizeYaw(y1), ClampPitch(math.Mod(p1, 90))}
		b := Orientation{NormalizeYaw(y2), ClampPitch(math.Mod(p2, 90))}
		d := AngularDistance(a, b)
		if d < 0 || d > 180 {
			return false
		}
		// Symmetry.
		return math.Abs(d-AngularDistance(b, a)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnitVectorIsUnit(t *testing.T) {
	f := func(yaw, pitch float64) bool {
		if math.IsNaN(yaw) || math.IsInf(yaw, 0) || math.IsNaN(pitch) || math.IsInf(pitch, 0) {
			return true
		}
		o := Orientation{NormalizeYaw(yaw), ClampPitch(math.Mod(pitch, 90))}
		v := o.Unit()
		return math.Abs(v.Dot(v)-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGridTileAt(t *testing.T) {
	g := NewGrid(12, 12)
	if g.NumTiles() != 144 {
		t.Fatalf("NumTiles = %d, want 144", g.NumTiles())
	}
	// Top-left tile: yaw near -180, pitch near +90.
	if id := g.TileAt(Orientation{-179, 89}); id != 0 {
		t.Errorf("TileAt(-179,89) = %d, want 0", id)
	}
	// Bottom-right tile.
	if id := g.TileAt(Orientation{179, -89}); id != 143 {
		t.Errorf("TileAt(179,-89) = %d, want 143", id)
	}
	// Center of sphere (yaw 0, pitch 0) falls at row 6, col 6.
	if id := g.TileAt(Orientation{0.1, -0.1}); id != TileID(6*12+6) {
		t.Errorf("TileAt(0.1,-0.1) = %d, want %d", id, 6*12+6)
	}
}

func TestGridTileAtCenterRoundTrip(t *testing.T) {
	g := NewGrid(12, 12)
	for id := 0; id < g.NumTiles(); id++ {
		c := g.Center(TileID(id))
		if got := g.TileAt(c); got != TileID(id) {
			t.Errorf("TileAt(Center(%d)) = %d", id, got)
		}
	}
}

func TestGridRowCol(t *testing.T) {
	g := NewGrid(4, 6)
	r, c := g.RowCol(TileID(0))
	if r != 0 || c != 0 {
		t.Errorf("RowCol(0) = %d,%d", r, c)
	}
	r, c = g.RowCol(TileID(23))
	if r != 3 || c != 5 {
		t.Errorf("RowCol(23) = %d,%d, want 3,5", r, c)
	}
}

func TestOverlapCapBounds(t *testing.T) {
	g := NewGrid(12, 12)
	center := Orientation{0, 0}
	for id := 0; id < g.NumTiles(); id++ {
		f := g.OverlapCap(TileID(id), center, 50)
		if f < 0 || f > 1 {
			t.Fatalf("overlap out of range: tile %d => %v", id, f)
		}
	}
}

func TestOverlapCapMonotoneInRadius(t *testing.T) {
	g := NewGrid(12, 12)
	center := Orientation{37, -12}
	for id := 0; id < g.NumTiles(); id += 7 {
		prev := 0.0
		for r := 5.0; r <= 180; r += 5 {
			f := g.OverlapCap(TileID(id), center, r)
			if f < prev-1e-12 {
				t.Fatalf("overlap not monotone in radius: tile %d r=%v: %v < %v", id, r, f, prev)
			}
			prev = f
		}
		if math.Abs(prev-1) > 1e-12 {
			t.Fatalf("overlap at 180 deg should be 1, got %v", prev)
		}
	}
}

func TestOverlapCapFullWhenCentered(t *testing.T) {
	g := NewGrid(12, 12)
	// A tile 30°x15° wide is fully inside a 60° cap centered on it.
	for id := 0; id < g.NumTiles(); id += 11 {
		f := g.OverlapCap(TileID(id), g.Center(TileID(id)), 60)
		if f != 1 {
			t.Errorf("tile %d not fully covered by 60 deg cap at its center: %v", id, f)
		}
	}
}

func TestOverlapCapZeroWhenFar(t *testing.T) {
	g := NewGrid(12, 12)
	center := Orientation{0, 0}
	// A tile on the opposite side of the sphere has zero overlap with a 50° cap.
	opposite := g.TileAt(Orientation{-180 + 15, 0})
	if f := g.OverlapCap(opposite, center, 50); f != 0 {
		t.Errorf("opposite tile overlap = %v, want 0", f)
	}
}

func TestTilesInCapSubsetAndSymmetric(t *testing.T) {
	g := NewGrid(12, 12)
	tiles := g.TilesInCap(Orientation{0, 0}, 50)
	if len(tiles) == 0 || len(tiles) >= g.NumTiles() {
		t.Fatalf("unexpected viewport tile count %d", len(tiles))
	}
	// Equator-centered cap must be symmetric about yaw 0: if tile (r,c) is
	// included, so is its mirror (r, cols-1-c).
	set := map[TileID]bool{}
	for _, id := range tiles {
		set[id] = true
	}
	for _, id := range tiles {
		r, c := g.RowCol(id)
		mirror := TileID(r*g.Cols + (g.Cols - 1 - c))
		if !set[mirror] {
			t.Errorf("tile %d in cap but mirror %d not", id, mirror)
		}
	}
}

func TestViewportCoverage(t *testing.T) {
	g := NewGrid(12, 12)
	v := DefaultViewport
	center := Orientation{12, 3}
	all := func(TileID) bool { return true }
	none := func(TileID) bool { return false }
	if got := v.Coverage(g, center, all); math.Abs(got-1) > 1e-12 {
		t.Errorf("coverage with all tiles = %v, want 1", got)
	}
	if got := v.Coverage(g, center, none); got != 0 {
		t.Errorf("coverage with no tiles = %v, want 0", got)
	}
	// Partial: drop one viewport tile; coverage strictly between 0 and 1.
	tiles := v.Tiles(g, center)
	dropped := tiles[0]
	partial := v.Coverage(g, center, func(id TileID) bool { return id != dropped })
	if partial <= 0 || partial >= 1 {
		t.Errorf("partial coverage = %v, want in (0,1)", partial)
	}
}

func TestCoverageMonotoneProperty(t *testing.T) {
	g := NewGrid(6, 6)
	v := Viewport{RadiusDeg: 55}
	f := func(yaw, pitch float64, mask uint64) bool {
		if math.IsNaN(yaw) || math.IsInf(yaw, 0) || math.IsNaN(pitch) || math.IsInf(pitch, 0) {
			return true
		}
		center := Orientation{NormalizeYaw(yaw), ClampPitch(math.Mod(pitch, 90))}
		haveSmall := func(id TileID) bool { return mask&(1<<(uint(id)%36)) != 0 }
		haveBig := func(id TileID) bool { return haveSmall(id) || id%2 == 0 }
		return v.Coverage(g, center, haveBig) >= v.Coverage(g, center, haveSmall)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLocationScore(t *testing.T) {
	g := NewGrid(12, 12)
	rs := DefaultRoIs
	center := Orientation{0, 0}
	centerTile := g.TileAt(center)
	peripheryTile := g.TileAt(Orientation{55, 0}) // inside outer RoI only
	outside := g.TileAt(Orientation{-180 + 10, 0})
	sc := rs.LocationScore(g, centerTile, center)
	sp := rs.LocationScore(g, peripheryTile, center)
	so := rs.LocationScore(g, outside, center)
	if !(sc > sp && sp > so) {
		t.Errorf("location scores not ordered: center %v periphery %v outside %v", sc, sp, so)
	}
	if so != 0 {
		t.Errorf("outside score = %v, want 0", so)
	}
	// The tile containing the view center is fully inside the viewport and
	// outer RoIs, and at least partially inside the inner one.
	if sc <= 2 || sc > float64(len(rs.RadiiDeg)) {
		t.Errorf("center tile score = %v, want in (2, %d]", sc, len(rs.RadiiDeg))
	}
}

func TestSolidAngleWeightPoleVsEquator(t *testing.T) {
	g := NewGrid(12, 12)
	pole := g.SolidAngleWeight(TileID(0))           // top row
	equator := g.SolidAngleWeight(TileID(6*12 + 0)) // row just below equator
	if pole >= equator {
		t.Errorf("pole tile weight %v should be < equator tile weight %v", pole, equator)
	}
}

func TestRoISetMaxRadius(t *testing.T) {
	if got := DefaultRoIs.MaxRadius(); got != 65 {
		t.Errorf("MaxRadius = %v, want 65", got)
	}
	if got := (RoISet{}).MaxRadius(); got != 0 {
		t.Errorf("empty MaxRadius = %v, want 0", got)
	}
}

func TestNewGridPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewGrid(0, 5) did not panic")
		}
	}()
	NewGrid(0, 5)
}

func BenchmarkOverlapCap(b *testing.B) {
	g := NewGrid(12, 12)
	center := Orientation{10, -5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.OverlapCap(TileID(i%144), center, 50)
	}
}

func BenchmarkLocationScoreAllTiles(b *testing.B) {
	g := NewGrid(12, 12)
	center := Orientation{10, -5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for id := 0; id < 144; id++ {
			DefaultRoIs.LocationScore(g, TileID(id), center)
		}
	}
}

func TestCapWeightsConsistentWithCoverage(t *testing.T) {
	g := NewGrid(12, 12)
	center := Orientation{20, 10}
	ids, weights := g.CapWeights(center, 50)
	if len(ids) != len(weights) || len(ids) == 0 {
		t.Fatalf("CapWeights returned %d ids, %d weights", len(ids), len(weights))
	}
	total := 0.0
	for i, id := range ids {
		if weights[i] <= 0 {
			t.Fatalf("non-positive weight for tile %d", id)
		}
		if g.OverlapCap(id, center, 50) <= 0 {
			t.Fatalf("tile %d has weight but no overlap", id)
		}
		total += weights[i]
	}
	// Tiles in CapWeights must match TilesInCap.
	if got := g.TilesInCap(center, 50); len(got) != len(ids) {
		t.Errorf("CapWeights found %d tiles, TilesInCap %d", len(ids), len(got))
	}
	if total <= 0 {
		t.Error("total cap weight should be positive")
	}
}

func TestOverlapCapQMatchesOverlapCap(t *testing.T) {
	g := NewGrid(12, 12)
	f := func(yawRaw, pitchRaw, radRaw uint16, idRaw uint8) bool {
		center := Orientation{
			Yaw:   NormalizeYaw(float64(yawRaw)),
			Pitch: ClampPitch(float64(pitchRaw%180) - 90),
		}
		radius := float64(radRaw%90) + 1
		id := TileID(int(idRaw) % g.NumTiles())
		q := NewCapQuery(center, radius)
		return math.Abs(g.OverlapCapQ(id, q)-g.OverlapCap(id, center, radius)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLocationScoreQMatchesLocationScore(t *testing.T) {
	g := NewGrid(12, 12)
	center := Orientation{Yaw: 33, Pitch: -21}
	queries := DefaultRoIs.Queries(center)
	for id := 0; id < g.NumTiles(); id++ {
		a := DefaultRoIs.LocationScore(g, TileID(id), center)
		b := DefaultRoIs.LocationScoreQ(g, TileID(id), queries)
		if math.Abs(a-b) > 1e-12 {
			t.Fatalf("tile %d: LocationScoreQ %v != LocationScore %v", id, b, a)
		}
	}
}

func TestNeighbors4(t *testing.T) {
	g := NewGrid(4, 6)
	// Interior tile: 4 neighbors.
	id := TileID(1*6 + 2)
	n := g.Neighbors4(id)
	if len(n) != 4 {
		t.Fatalf("interior tile has %d neighbors", len(n))
	}
	want := map[TileID]bool{TileID(1*6 + 1): true, TileID(1*6 + 3): true, TileID(0*6 + 2): true, TileID(2*6 + 2): true}
	for _, v := range n {
		if !want[v] {
			t.Errorf("unexpected neighbor %d", v)
		}
	}
	// Yaw wrap: column 0's left neighbor is column 5.
	n = g.Neighbors4(TileID(1 * 6))
	foundWrap := false
	for _, v := range n {
		if v == TileID(1*6+5) {
			foundWrap = true
		}
	}
	if !foundWrap {
		t.Error("yaw wrap neighbor missing")
	}
	// Polar tile: 3 neighbors.
	if got := g.Neighbors4(TileID(0)); len(got) != 3 {
		t.Errorf("polar tile has %d neighbors", len(got))
	}
}
