// Package geom implements the spherical geometry used by tile-based 360°
// video streaming: orientations on the view sphere, equirectangular tile
// grids, viewport membership, and the fractional overlap between tiles and
// concentric regions of interest (RoIs) that drives Dragonfly's location
// score (paper §3.1).
//
// Conventions: yaw is in degrees in [-180, 180) with 0 facing forward and
// positive to the user's left; pitch is in degrees in [-90, 90] with +90 at
// the zenith. Angular distances are great-circle distances in degrees.
package geom

import (
	"fmt"
	"math"
)

// Orientation is a direction on the view sphere, in degrees.
type Orientation struct {
	Yaw   float64 // [-180, 180)
	Pitch float64 // [-90, 90]
}

// NormalizeYaw maps an arbitrary yaw angle into [-180, 180).
func NormalizeYaw(yaw float64) float64 {
	y := math.Mod(yaw+180, 360)
	if y < 0 {
		y += 360
	}
	return y - 180
}

// ClampPitch limits pitch to the valid [-90, 90] range.
func ClampPitch(pitch float64) float64 {
	if pitch > 90 {
		return 90
	}
	if pitch < -90 {
		return -90
	}
	return pitch
}

// Normalize returns the orientation with yaw wrapped and pitch clamped.
func (o Orientation) Normalize() Orientation {
	return Orientation{Yaw: NormalizeYaw(o.Yaw), Pitch: ClampPitch(o.Pitch)}
}

// YawDelta returns the signed shortest angular difference b-a between two yaw
// angles, in (-180, 180].
func YawDelta(a, b float64) float64 {
	d := math.Mod(b-a, 360)
	if d > 180 {
		d -= 360
	}
	if d <= -180 {
		d += 360
	}
	return d
}

// Vec3 is a unit vector on the view sphere.
type Vec3 struct{ X, Y, Z float64 }

// Unit converts an orientation to a unit vector. Yaw rotates about the
// vertical axis, pitch raises toward the zenith.
func (o Orientation) Unit() Vec3 {
	yaw := o.Yaw * math.Pi / 180
	pitch := o.Pitch * math.Pi / 180
	cp := math.Cos(pitch)
	return Vec3{
		X: cp * math.Cos(yaw),
		Y: cp * math.Sin(yaw),
		Z: math.Sin(pitch),
	}
}

// Dot returns the dot product of two vectors.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// AngularDistance returns the great-circle distance between two orientations
// in degrees, in [0, 180].
func AngularDistance(a, b Orientation) float64 {
	d := a.Unit().Dot(b.Unit())
	if d > 1 {
		d = 1
	} else if d < -1 {
		d = -1
	}
	return math.Acos(d) * 180 / math.Pi
}

// TileID identifies a tile within a Grid as row*Cols + col.
type TileID int

// Grid is an equirectangular tiling of the sphere into Rows×Cols equal
// rectangles in (yaw, pitch) space. The paper's evaluation uses 12×12
// (Appendix: "Why 12x12 tiling?").
type Grid struct {
	Rows int
	Cols int

	// sampleVecs caches, per tile, a fixed lattice of unit vectors used to
	// estimate fractional overlap with spherical caps. Populated by NewGrid.
	sampleVecs [][]Vec3
	// sampleWeights holds the cos(pitch) solid-angle weight of each sample
	// point so overlap fractions are area-true on the sphere.
	sampleWeights [][]float64
	// tileWeight is the total solid-angle weight of each tile.
	tileWeight []float64
	centers    []Orientation
}

// samplesPerAxis controls the overlap-estimation lattice resolution. A 4×4
// lattice per tile keeps location-score computation cheap (16 dot products
// per tile per RoI) while resolving boundary tiles to 1/16 granularity.
const samplesPerAxis = 4

// NewGrid creates a tile grid and precomputes per-tile sample lattices.
// It panics if rows or cols is not positive (a programming error).
func NewGrid(rows, cols int) *Grid {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("geom: invalid grid %dx%d", rows, cols))
	}
	g := &Grid{Rows: rows, Cols: cols}
	n := rows * cols
	g.sampleVecs = make([][]Vec3, n)
	g.sampleWeights = make([][]float64, n)
	g.tileWeight = make([]float64, n)
	g.centers = make([]Orientation, n)
	dyaw := 360.0 / float64(cols)
	dpitch := 180.0 / float64(rows)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			id := r*cols + c
			yaw0 := -180 + float64(c)*dyaw
			pitch0 := 90 - float64(r+1)*dpitch
			g.centers[id] = Orientation{
				Yaw:   NormalizeYaw(yaw0 + dyaw/2),
				Pitch: pitch0 + dpitch/2,
			}
			vecs := make([]Vec3, 0, samplesPerAxis*samplesPerAxis)
			weights := make([]float64, 0, samplesPerAxis*samplesPerAxis)
			total := 0.0
			for sy := 0; sy < samplesPerAxis; sy++ {
				for sp := 0; sp < samplesPerAxis; sp++ {
					// Sample at cell midpoints of a samplesPerAxis lattice.
					o := Orientation{
						Yaw:   NormalizeYaw(yaw0 + (float64(sy)+0.5)*dyaw/samplesPerAxis),
						Pitch: pitch0 + (float64(sp)+0.5)*dpitch/samplesPerAxis,
					}
					w := math.Cos(o.Pitch * math.Pi / 180)
					vecs = append(vecs, o.Unit())
					weights = append(weights, w)
					total += w
				}
			}
			g.sampleVecs[id] = vecs
			g.sampleWeights[id] = weights
			g.tileWeight[id] = total
		}
	}
	return g
}

// NumTiles returns the total number of tiles in the grid.
func (g *Grid) NumTiles() int { return g.Rows * g.Cols }

// TileAt returns the tile containing the given orientation.
func (g *Grid) TileAt(o Orientation) TileID {
	o = o.Normalize()
	c := int((o.Yaw + 180) / 360 * float64(g.Cols))
	if c >= g.Cols {
		c = g.Cols - 1
	}
	if c < 0 {
		c = 0
	}
	r := int((90 - o.Pitch) / 180 * float64(g.Rows))
	if r >= g.Rows {
		r = g.Rows - 1
	}
	if r < 0 {
		r = 0
	}
	return TileID(r*g.Cols + c)
}

// Center returns the orientation at the center of a tile.
func (g *Grid) Center(id TileID) Orientation { return g.centers[id] }

// RowCol splits a TileID into its row and column.
func (g *Grid) RowCol(id TileID) (row, col int) {
	return int(id) / g.Cols, int(id) % g.Cols
}

// SolidAngleWeight returns the relative solid angle of the tile (the sum of
// cos(pitch) over its sample lattice). Tiles near the poles weigh less: an
// equirectangular tile covers less of the sphere there.
func (g *Grid) SolidAngleWeight(id TileID) float64 { return g.tileWeight[id] }

// OverlapCap estimates the fraction of tile id's spherical area that lies
// within the spherical cap of the given angular radius (degrees) centered at
// center. The result is in [0, 1]. This is the l_irf term of the paper's
// location score: 1 if the tile region is completely inside the RoI, 0 if
// disjoint, fractional at the boundary.
func (g *Grid) OverlapCap(id TileID, center Orientation, radiusDeg float64) float64 {
	if radiusDeg <= 0 {
		return 0
	}
	if radiusDeg >= 180 {
		return 1
	}
	cv := center.Unit()
	cosR := math.Cos(radiusDeg * math.Pi / 180)
	vecs := g.sampleVecs[id]
	weights := g.sampleWeights[id]
	in := 0.0
	for k, v := range vecs {
		if v.Dot(cv) >= cosR {
			in += weights[k]
		}
	}
	return in / g.tileWeight[id]
}

// CapQuery is a precomputed spherical-cap membership test: callers that
// evaluate many tiles against the same cap avoid recomputing the center's
// unit vector and the radius cosine per tile.
type CapQuery struct {
	v    Vec3
	cosR float64
}

// NewCapQuery precomputes a cap test for OverlapCapQ.
func NewCapQuery(center Orientation, radiusDeg float64) CapQuery {
	return CapQuery{v: center.Unit(), cosR: math.Cos(radiusDeg * math.Pi / 180)}
}

// OverlapCapQ is OverlapCap against a precomputed query.
func (g *Grid) OverlapCapQ(id TileID, q CapQuery) float64 {
	vecs := g.sampleVecs[id]
	weights := g.sampleWeights[id]
	in := 0.0
	for k, v := range vecs {
		if v.Dot(q.v) >= q.cosR {
			in += weights[k]
		}
	}
	return in / g.tileWeight[id]
}

// TilesInCap returns the IDs of all tiles with non-zero overlap with the
// spherical cap centered at center with the given angular radius.
func (g *Grid) TilesInCap(center Orientation, radiusDeg float64) []TileID {
	return g.AppendTilesInCap(make([]TileID, 0, 32), center, radiusDeg)
}

// AppendTilesInCap is TilesInCap appending into a caller-provided slice, so
// per-decision and per-frame loops can reuse one buffer instead of
// allocating. The cap test is hoisted once for the whole grid walk.
func (g *Grid) AppendTilesInCap(dst []TileID, center Orientation, radiusDeg float64) []TileID {
	if radiusDeg <= 0 {
		return dst
	}
	q := NewCapQuery(center, radiusDeg)
	for id := 0; id < g.NumTiles(); id++ {
		if g.OverlapCapQ(TileID(id), q) > 0 {
			dst = append(dst, TileID(id))
		}
	}
	return dst
}

// Viewport describes the user-visible region as a spherical cap. Tile-based
// 360° systems commonly approximate the HMD frustum with a cap whose radius
// covers the field-of-view diagonal; the Oculus Quest 2's ~100°×90° FOV
// corresponds to a cap radius of about 50°.
type Viewport struct {
	// RadiusDeg is the angular radius of the visible cap, in degrees.
	RadiusDeg float64
}

// DefaultViewport is the cap used throughout the evaluation.
var DefaultViewport = Viewport{RadiusDeg: 50}

// Tiles returns the tiles visible from the given orientation.
func (v Viewport) Tiles(g *Grid, center Orientation) []TileID {
	return g.TilesInCap(center, v.RadiusDeg)
}

// Coverage returns the fraction of the viewport cap's solid angle covered by
// the given tile set when looking at center. It is used to compute the
// blank-area metric: blank fraction = 1 - Coverage(available tiles).
func (v Viewport) Coverage(g *Grid, center Orientation, have func(TileID) bool) float64 {
	cv := center.Unit()
	cosR := math.Cos(v.RadiusDeg * math.Pi / 180)
	total := 0.0
	covered := 0.0
	for id := 0; id < g.NumTiles(); id++ {
		vecs := g.sampleVecs[id]
		weights := g.sampleWeights[id]
		inside := 0.0
		for k, vec := range vecs {
			if vec.Dot(cv) >= cosR {
				inside += weights[k]
			}
		}
		if inside == 0 {
			continue
		}
		total += inside
		if have(TileID(id)) {
			covered += inside
		}
	}
	if total == 0 {
		return 1
	}
	return covered / total
}

// CapWeights returns, for every tile with non-zero overlap with the cap at
// center, the tile's solid-angle weight inside the cap. The weights are the
// per-tile contributions used to aggregate viewport quality area-true.
func (g *Grid) CapWeights(center Orientation, radiusDeg float64) (ids []TileID, weights []float64) {
	return g.AppendCapWeights(nil, nil, center, radiusDeg)
}

// AppendCapWeights is CapWeights appending into caller-provided slices, so
// the per-frame render accounting can reuse its buffers across frames.
func (g *Grid) AppendCapWeights(ids []TileID, weights []float64, center Orientation, radiusDeg float64) ([]TileID, []float64) {
	cv := center.Unit()
	cosR := math.Cos(radiusDeg * math.Pi / 180)
	for id := 0; id < g.NumTiles(); id++ {
		vecs := g.sampleVecs[id]
		ws := g.sampleWeights[id]
		inside := 0.0
		for k, v := range vecs {
			if v.Dot(cv) >= cosR {
				inside += ws[k]
			}
		}
		if inside > 0 {
			ids = append(ids, TileID(id))
			weights = append(weights, inside)
		}
	}
	return ids, weights
}

// RoISet defines Dragonfly's concentric regions of interest. Radii must be
// strictly increasing; the innermost RoI captures the viewport center, the
// middle one the viewport itself, and the outermost a guard band just outside
// the viewport (paper §3.1).
type RoISet struct {
	RadiiDeg []float64
}

// DefaultRoIs matches the paper's description for a ~50° viewport cap:
// inner region at half the viewport radius, the viewport, and a 15° guard
// band outside it.
var DefaultRoIs = RoISet{RadiiDeg: []float64{25, 50, 65}}

// LocationScore computes l_if = Σ_r l_irf for one tile and one predicted view
// center: the sum over RoIs of the tile's fractional overlap with each RoI.
// With C concentric RoIs the score is in [0, C], higher for tiles nearer the
// predicted viewport center.
func (rs RoISet) LocationScore(g *Grid, id TileID, center Orientation) float64 {
	s := 0.0
	for _, r := range rs.RadiiDeg {
		s += g.OverlapCap(id, center, r)
	}
	return s
}

// Queries precomputes the per-RoI cap tests for one view center, for use
// with LocationScoreQ in tight loops.
func (rs RoISet) Queries(center Orientation) []CapQuery {
	out := make([]CapQuery, len(rs.RadiiDeg))
	for i, r := range rs.RadiiDeg {
		out[i] = NewCapQuery(center, r)
	}
	return out
}

// LocationScoreQ is LocationScore against precomputed queries.
func (rs RoISet) LocationScoreQ(g *Grid, id TileID, queries []CapQuery) float64 {
	s := 0.0
	for _, q := range queries {
		s += g.OverlapCapQ(id, q)
	}
	return s
}

// MaxRadius returns the radius of the outermost RoI.
func (rs RoISet) MaxRadius() float64 {
	if len(rs.RadiiDeg) == 0 {
		return 0
	}
	return rs.RadiiDeg[len(rs.RadiiDeg)-1]
}

// Neighbors4 returns the tile's 4-connected neighbors on the
// equirectangular grid: columns wrap around in yaw; rows clamp at the
// poles (a polar tile has 3 neighbors).
func (g *Grid) Neighbors4(id TileID) []TileID {
	r, c := g.RowCol(id)
	out := make([]TileID, 0, 4)
	left := (c - 1 + g.Cols) % g.Cols
	right := (c + 1) % g.Cols
	out = append(out, TileID(r*g.Cols+left), TileID(r*g.Cols+right))
	if r > 0 {
		out = append(out, TileID((r-1)*g.Cols+c))
	}
	if r < g.Rows-1 {
		out = append(out, TileID((r+1)*g.Cols+c))
	}
	return out
}
