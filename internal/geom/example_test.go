package geom_test

import (
	"fmt"

	"dragonfly/internal/geom"
)

// ExampleGrid_TilesInCap lists how many tiles of the paper's 12x12 grid a
// viewport-sized cap touches, looking straight ahead.
func ExampleGrid_TilesInCap() {
	grid := geom.NewGrid(12, 12)
	forward := geom.Orientation{Yaw: 0, Pitch: 0}
	tiles := grid.TilesInCap(forward, geom.DefaultViewport.RadiusDeg)
	fmt.Printf("a %v-degree viewport cap touches %d of %d tiles\n",
		geom.DefaultViewport.RadiusDeg, len(tiles), grid.NumTiles())
	// Output:
	// a 50-degree viewport cap touches 28 of 144 tiles
}

// ExampleRoISet_LocationScore shows the location score falling off from the
// viewport center to the periphery (paper §3.1).
func ExampleRoISet_LocationScore() {
	grid := geom.NewGrid(12, 12)
	center := geom.Orientation{Yaw: 0, Pitch: 0}
	atCenter := grid.TileAt(center)
	atEdge := grid.TileAt(geom.Orientation{Yaw: 55, Pitch: 0})
	outside := grid.TileAt(geom.Orientation{Yaw: 170, Pitch: 0})
	fmt.Printf("center tile: %.2f\n", geom.DefaultRoIs.LocationScore(grid, atCenter, center))
	fmt.Printf("edge tile:   %.2f\n", geom.DefaultRoIs.LocationScore(grid, atEdge, center))
	fmt.Printf("behind user: %.2f\n", geom.DefaultRoIs.LocationScore(grid, outside, center))
	// Output:
	// center tile: 2.75
	// edge tile:   1.69
	// behind user: 0.00
}

// ExampleSharedTable shows the table-driven fast path for cap overlaps:
// resolve the process-wide table for a grid geometry, pick the plane for a
// cap radius, then answer per-tile overlap queries from a lookup instead of
// re-sampling the sphere. The lookup agrees with the exact OverlapCap up to
// the table's quantization (see TestOverlapTableAccuracy).
func ExampleSharedTable() {
	grid := geom.NewGrid(12, 12)
	table := geom.SharedTable(grid, geom.TableParams{}) // default quantization
	plane := table.Plane(geom.DefaultViewport.RadiusDeg)

	center := geom.Orientation{Yaw: 0, Pitch: 0}
	lookup := plane.Lookup(center) // hoist out of per-tile loops
	tile := grid.TileAt(center)
	fmt.Printf("table:  %.2f\n", lookup.Overlap(tile))
	fmt.Printf("exact:  %.2f\n", grid.OverlapCap(tile, center, plane.Radius()))
	fmt.Printf("tiles in cap: %d\n", len(lookup.AppendTiles(nil)))
	// Output:
	// table:  1.00
	// exact:  1.00
	// tiles in cap: 28
}

// ExampleYawDelta demonstrates shortest-arc yaw differences across the
// ±180 wrap.
func ExampleYawDelta() {
	fmt.Println(geom.YawDelta(170, -170))
	fmt.Println(geom.YawDelta(-170, 170))
	// Output:
	// 20
	// -20
}
