package geom

import (
	"math"
	"math/rand"
	"testing"
)

// maxTableErr is the documented quantization envelope of the default
// TableParams: a table lookup may differ from the exact OverlapCap by at
// most this much per tile. The exact path resolves overlap in 1/16 steps
// (a 4×4 sample lattice), and in the worst case — the cap boundary nearly
// tangent to a tile edge — a sub-bucket center shift flips several lattice
// samples at once; measured worst case across grids and radii is ≈ 0.44.
// docs/PERFORMANCE.md quotes this bound.
const maxTableErr = 0.5

// meanTableErr is the documented mean absolute error across all tiles and
// centers; typical errors (measured ≈ 0.002–0.004) are two orders of
// magnitude below the worst case.
const meanTableErr = 0.01

func tableGrids() []*Grid {
	return []*Grid{NewGrid(12, 12), NewGrid(8, 8), NewGrid(6, 6)}
}

// sweepError compares table and exact overlaps for every tile over a set of
// centers, returning the max and mean absolute per-tile error.
func sweepError(g *Grid, pl *CapPlane, centers []Orientation) (maxErr, meanErr float64) {
	var sum float64
	var n int
	for _, c := range centers {
		lk := pl.Lookup(c)
		for id := 0; id < g.NumTiles(); id++ {
			exact := g.OverlapCap(TileID(id), c, pl.Radius())
			got := lk.Overlap(TileID(id))
			d := math.Abs(got - exact)
			if d > maxErr {
				maxErr = d
			}
			sum += d
			n++
		}
	}
	return maxErr, sum / float64(n)
}

func TestOverlapTableAccuracy(t *testing.T) {
	for _, g := range tableGrids() {
		tbl := NewOverlapTable(g, TableParams{})
		rng := rand.New(rand.NewSource(42))
		centers := make([]Orientation, 0, 300)
		for i := 0; i < 300; i++ {
			centers = append(centers, Orientation{
				Yaw:   rng.Float64()*360 - 180,
				Pitch: rng.Float64()*180 - 90,
			})
		}
		for _, r := range DefaultRoIs.RadiiDeg {
			pl := tbl.Plane(r)
			maxErr, meanErr := sweepError(g, pl, centers)
			if maxErr > maxTableErr {
				t.Errorf("grid %dx%d r=%v: max |table-exact| = %.3f > %.2f", g.Rows, g.Cols, r, maxErr, maxTableErr)
			}
			if meanErr > meanTableErr {
				t.Errorf("grid %dx%d r=%v: mean |table-exact| = %.4f > %.3f", g.Rows, g.Cols, r, meanErr, meanTableErr)
			}
		}
	}
}

// TestOverlapTableSeamAndPoles is the regression test for the yaw wrap
// (±180°) and the pitch poles: the table's column-shift trick must agree
// with the exact path exactly where tiles straddle the seam and where the
// equirectangular rows degenerate at ±90° pitch.
func TestOverlapTableSeamAndPoles(t *testing.T) {
	for _, g := range tableGrids() {
		tbl := NewOverlapTable(g, TableParams{})
		var centers []Orientation
		// Dense sweep across the yaw seam at several pitches.
		for yaw := -183.0; yaw <= 183; yaw += 0.75 {
			for _, pitch := range []float64{-60, -20, 0, 35, 70} {
				centers = append(centers, Orientation{Yaw: yaw, Pitch: pitch})
			}
		}
		// Polar caps: centers at and around both poles.
		for _, pitch := range []float64{90, 89.5, 88, -88, -89.5, -90} {
			for yaw := -180.0; yaw < 180; yaw += 30 {
				centers = append(centers, Orientation{Yaw: yaw, Pitch: pitch})
			}
		}
		for _, r := range []float64{25, 50, 65} {
			pl := tbl.Plane(r)
			maxErr, _ := sweepError(g, pl, centers)
			if maxErr > maxTableErr {
				t.Errorf("grid %dx%d r=%v: seam/pole max |table-exact| = %.3f > %.2f",
					g.Rows, g.Cols, r, maxErr, maxTableErr)
			}
			// The wrap itself must be seamless: a center just past +180 and
			// its alias just past -180 are the same direction and must
			// produce identical rows.
			for _, pitch := range []float64{-45, 0, 45} {
				a := pl.Lookup(Orientation{Yaw: 179.999, Pitch: pitch})
				b := pl.Lookup(Orientation{Yaw: -180.001, Pitch: pitch})
				for id := 0; id < g.NumTiles(); id++ {
					if a.Overlap(TileID(id)) != b.Overlap(TileID(id)) {
						t.Fatalf("grid %dx%d r=%v: yaw wrap mismatch at tile %d", g.Rows, g.Cols, r, id)
					}
				}
			}
		}
	}
}

// TestOverlapTableYawShiftInvariance pins the column-shift symmetry the
// table is built on: rotating the center by exactly one tile column width
// must reproduce the same overlaps one column over.
func TestOverlapTableYawShiftInvariance(t *testing.T) {
	g := NewGrid(12, 12)
	pl := NewOverlapTable(g, TableParams{}).Plane(50)
	dyaw := 360.0 / float64(g.Cols)
	for _, base := range []Orientation{{Yaw: 3, Pitch: 10}, {Yaw: -170, Pitch: -40}, {Yaw: 120, Pitch: 75}} {
		shifted := Orientation{Yaw: NormalizeYaw(base.Yaw + dyaw), Pitch: base.Pitch}
		la, lb := pl.Lookup(base), pl.Lookup(shifted)
		for id := 0; id < g.NumTiles(); id++ {
			r, c := g.RowCol(TileID(id))
			id2 := TileID(r*g.Cols + (c+1)%g.Cols)
			if got, want := lb.Overlap(id2), la.Overlap(TileID(id)); got != want {
				t.Fatalf("shift invariance broken: tile %d vs %d: %v != %v", id, id2, got, want)
			}
		}
	}
}

// TestPlaneAppendTilesMatchesExactDiscovery checks that the table's
// non-zero tile lists agree with the exact TilesInCap at the quantized
// centers themselves (where table and exact coincide up to fp noise).
func TestPlaneAppendTilesMatchesExactDiscovery(t *testing.T) {
	g := NewGrid(12, 12)
	pl := NewOverlapTable(g, TableParams{}).Plane(65)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		c := Orientation{Yaw: rng.Float64()*360 - 180, Pitch: rng.Float64()*170 - 85}
		lk := pl.Lookup(c)
		got := lk.AppendTiles(nil)
		seen := map[TileID]bool{}
		for _, id := range got {
			if seen[id] {
				t.Fatalf("duplicate tile %d in AppendTiles", id)
			}
			seen[id] = true
			if lk.Overlap(id) <= 0 {
				t.Fatalf("AppendTiles returned tile %d with zero overlap", id)
			}
		}
		// Consistency: every tile not listed must have zero table overlap.
		for id := 0; id < g.NumTiles(); id++ {
			if !seen[TileID(id)] && lk.Overlap(TileID(id)) != 0 {
				t.Fatalf("tile %d has overlap %v but is not in AppendTiles", id, lk.Overlap(TileID(id)))
			}
		}
	}
}

// TestSharedTableIdentity checks the process-wide cache keys by geometry.
func TestSharedTableIdentity(t *testing.T) {
	a := SharedTable(NewGrid(12, 12), TableParams{})
	b := SharedTable(NewGrid(12, 12), TableParams{})
	if a != b {
		t.Error("same-geometry grids should share one table")
	}
	if SharedTable(NewGrid(8, 8), TableParams{}) == a {
		t.Error("different geometries must not share a table")
	}
	if SharedTable(NewGrid(12, 12), TableParams{YawStepsPerTile: 4}) == a {
		t.Error("different quantization must not share a table")
	}
	if p1, p2 := a.Plane(50), b.Plane(50); p1 != p2 {
		t.Error("same radius should resolve to one plane")
	}
}

func TestAppendTilesInCapMatchesTilesInCap(t *testing.T) {
	g := NewGrid(12, 12)
	c := Orientation{Yaw: 170, Pitch: -30}
	want := g.TilesInCap(c, 50)
	buf := make([]TileID, 0, 8)
	got := g.AppendTilesInCap(buf[:0], c, 50)
	if len(got) != len(want) {
		t.Fatalf("AppendTilesInCap len %d != TilesInCap len %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
	if g.AppendTilesInCap(nil, c, 0) != nil {
		t.Error("zero radius should append nothing")
	}
}
