package geom

import (
	"fmt"
	"math"
	"sync"
)

// This file implements precomputed overlap tables: the spherical-cap overlap
// fractions that drive the location score (§3.1) evaluated once per
// quantized view orientation instead of re-sampling the sphere on every
// call. Dragonfly's scheduler refines fetch decisions every 100 ms and
// walks the whole tile grid each time, so OverlapCap sits on the hottest
// path of every session; viewport-adaptive systems classically amortize it
// with per-tile weight tables, and the equirectangular tiling makes that
// cheap here because the grid is yaw-periodic: rotating the cap center by
// exactly one tile column maps tile (r, c) onto tile (r, c+1). A table
// therefore only needs yaw resolution within a single tile column; the
// column shift is applied at lookup time.
//
// Accuracy: a table lookup evaluates the exact OverlapCap at the nearest
// quantized center. With the default TableParams the quantized center is
// within ~1.2° of the true center on the paper's 12×12 grid. Because the
// exact path itself resolves overlap on a 4×4 sample lattice (1/16 steps),
// the per-tile difference is tiny on average (≈ 0.002–0.004 absolute) but
// can reach ≈ 0.44 on a tile whose edge is nearly tangent to the cap
// boundary, where a sub-bucket center shift flips several lattice samples
// at once; see TestOverlapTableAccuracy for the measured envelope. Callers
// that cannot tolerate quantization keep using OverlapCap / OverlapCapQ —
// the exact path remains the fallback and the reference in tests.

// TableParams sets the overlap-table quantization. Finer steps cost
// memory and build time linearly and shrink the quantization error
// proportionally; see docs/PERFORMANCE.md for the measured trade-off.
type TableParams struct {
	// YawStepsPerTile is the number of yaw buckets within one tile column
	// width (360°/Cols). 0 means DefaultYawStepsPerTile.
	YawStepsPerTile int
	// PitchStepsPerTile is the number of pitch buckets within one tile row
	// height (180°/Rows). 0 means DefaultPitchStepsPerTile.
	PitchStepsPerTile int
}

// The default quantization: 16 steps per tile edge keeps the quantized
// center within ~1.2° of the true center on the paper's 12×12 grid while a
// 3-radius RoI table stays around 10 MB.
const (
	DefaultYawStepsPerTile   = 16
	DefaultPitchStepsPerTile = 16
)

func (p TableParams) withDefaults() TableParams {
	if p.YawStepsPerTile <= 0 {
		p.YawStepsPerTile = DefaultYawStepsPerTile
	}
	if p.PitchStepsPerTile <= 0 {
		p.PitchStepsPerTile = DefaultPitchStepsPerTile
	}
	return p
}

// OverlapTable caches CapPlanes — one per cap radius — for one grid
// geometry. Planes are built lazily on first request and are immutable
// afterwards, so a table can be shared by any number of concurrent
// sessions (see SharedTable).
type OverlapTable struct {
	g *Grid
	p TableParams

	mu     sync.Mutex
	planes map[int64]*CapPlane // keyed by radius in micro-degrees
}

// NewOverlapTable creates an empty table for the grid. Most callers want
// SharedTable instead, which reuses tables process-wide.
func NewOverlapTable(g *Grid, p TableParams) *OverlapTable {
	return &OverlapTable{g: g, p: p.withDefaults(), planes: make(map[int64]*CapPlane)}
}

// tableKey identifies a table by grid geometry and quantization — not by
// grid pointer, so two manifests with the same tiling share one table.
type tableKey struct {
	rows, cols int
	p          TableParams
}

var sharedTables sync.Map // tableKey -> *OverlapTable

// SharedTable returns the process-wide overlap table for the grid's
// dimensions, creating it on first use. Sweeps with hundreds of sessions
// over the same tiling build each radius plane exactly once.
func SharedTable(g *Grid, p TableParams) *OverlapTable {
	key := tableKey{rows: g.Rows, cols: g.Cols, p: p.withDefaults()}
	if t, ok := sharedTables.Load(key); ok {
		return t.(*OverlapTable)
	}
	t, _ := sharedTables.LoadOrStore(key, NewOverlapTable(g, p))
	return t.(*OverlapTable)
}

// Plane returns the table plane for one cap radius, building it on first
// use. Safe for concurrent use.
func (t *OverlapTable) Plane(radiusDeg float64) *CapPlane {
	key := int64(math.Round(radiusDeg * 1e6))
	t.mu.Lock()
	defer t.mu.Unlock()
	if pl, ok := t.planes[key]; ok {
		return pl
	}
	pl := buildPlane(t.g, t.p, radiusDeg)
	t.planes[key] = pl
	return pl
}

// Planes resolves one plane per RoI radius, in radius order — the
// per-session setup for table-driven location scores.
func (rs RoISet) Planes(t *OverlapTable) []*CapPlane {
	out := make([]*CapPlane, len(rs.RadiiDeg))
	for i, r := range rs.RadiiDeg {
		out[i] = t.Plane(r)
	}
	return out
}

// CapPlane is the precomputed overlap table for one (grid, radius): for
// every quantized center orientation, the exact overlap fraction of every
// tile with the spherical cap at that center. Immutable after build.
type CapPlane struct {
	g          *Grid
	radiusDeg  float64
	yawSteps   int     // buckets within one tile column width
	pitchSteps int     // buckets over the full 180° pitch range
	dyawTile   float64 // 360 / Cols

	// data[(ys*pitchSteps+ps)*numTiles + tile] is the overlap of `tile`
	// with the cap centered in the base column (yaw bucket ys of column 0).
	data []float64
	// nonzero[ys*pitchSteps+ps] lists the base-frame tiles with data > 0,
	// in ascending tile order.
	nonzero [][]TileID
}

func buildPlane(g *Grid, p TableParams, radiusDeg float64) *CapPlane {
	p = p.withDefaults()
	pl := &CapPlane{
		g:          g,
		radiusDeg:  radiusDeg,
		yawSteps:   p.YawStepsPerTile,
		pitchSteps: p.PitchStepsPerTile * g.Rows,
		dyawTile:   360.0 / float64(g.Cols),
	}
	n := g.NumTiles()
	buckets := pl.yawSteps * pl.pitchSteps
	pl.data = make([]float64, buckets*n)
	pl.nonzero = make([][]TileID, buckets)
	dpitch := 180.0 / float64(pl.pitchSteps)
	for ys := 0; ys < pl.yawSteps; ys++ {
		yaw := NormalizeYaw(-180 + (float64(ys)+0.5)*pl.dyawTile/float64(pl.yawSteps))
		for ps := 0; ps < pl.pitchSteps; ps++ {
			center := Orientation{Yaw: yaw, Pitch: 90 - (float64(ps)+0.5)*dpitch}
			q := NewCapQuery(center, radiusDeg)
			bucket := ys*pl.pitchSteps + ps
			row := pl.data[bucket*n : (bucket+1)*n]
			var ids []TileID
			for id := 0; id < n; id++ {
				v := g.OverlapCapQ(TileID(id), q)
				row[id] = v
				if v > 0 {
					ids = append(ids, TileID(id))
				}
			}
			pl.nonzero[bucket] = ids
		}
	}
	return pl
}

// Radius returns the cap radius the plane was built for, in degrees.
func (pl *CapPlane) Radius() float64 { return pl.radiusDeg }

// MemoryBytes reports the approximate size of the plane's overlap array,
// for capacity planning (docs/PERFORMANCE.md).
func (pl *CapPlane) MemoryBytes() int { return 8 * len(pl.data) }

// Lookup quantizes a center orientation into the plane's bucket and column
// shift. The returned PlaneLookup answers per-tile overlap queries with a
// single array read; callers evaluating many tiles against one center
// should hoist the Lookup out of the loop.
func (pl *CapPlane) Lookup(center Orientation) PlaneLookup {
	o := center.Normalize()
	u := (o.Yaw + 180) / pl.dyawTile
	shift := int(u)
	if shift >= pl.g.Cols { // yaw == 180 - ε rounding
		shift = pl.g.Cols - 1
	}
	ys := int((u - float64(shift)) * float64(pl.yawSteps))
	if ys >= pl.yawSteps {
		ys = pl.yawSteps - 1
	}
	if ys < 0 {
		ys = 0
	}
	ps := int((90 - o.Pitch) / 180 * float64(pl.pitchSteps))
	if ps >= pl.pitchSteps {
		ps = pl.pitchSteps - 1
	}
	if ps < 0 {
		ps = 0
	}
	bucket := ys*pl.pitchSteps + ps
	n := pl.g.NumTiles()
	return PlaneLookup{
		vals:  pl.data[bucket*n : (bucket+1)*n],
		ids:   pl.nonzero[bucket],
		shift: shift,
		cols:  pl.g.Cols,
	}
}

// Overlap is the table-driven OverlapCap: the overlap fraction of tile id
// with the cap at the quantized center.
func (pl *CapPlane) Overlap(id TileID, center Orientation) float64 {
	return pl.Lookup(center).Overlap(id)
}

// PlaneLookup is a resolved (plane, quantized center) pair. The zero value
// is not meaningful; obtain one from CapPlane.Lookup.
type PlaneLookup struct {
	vals  []float64
	ids   []TileID
	shift int
	cols  int
}

// Overlap returns the overlap fraction of tile id. Allocation-free.
func (l PlaneLookup) Overlap(id TileID) float64 {
	c := int(id) % l.cols
	c -= l.shift
	if c < 0 {
		c += l.cols
	}
	return l.vals[int(id)-int(id)%l.cols+c]
}

// AppendTiles appends the IDs of every tile with non-zero overlap to dst
// and returns it — the table-driven TilesInCap, allocation-free once dst
// has capacity. Tiles are appended in base-frame order, which is
// deterministic for a given center bucket.
func (l PlaneLookup) AppendTiles(dst []TileID) []TileID {
	for _, base := range l.ids {
		c := int(base)%l.cols + l.shift
		if c >= l.cols {
			c -= l.cols
		}
		dst = append(dst, TileID(int(base)-int(base)%l.cols+c))
	}
	return dst
}

// String implements fmt.Stringer for diagnostics.
func (pl *CapPlane) String() string {
	return fmt.Sprintf("geom.CapPlane{r=%.1f° grid=%dx%d buckets=%dx%d %d KiB}",
		pl.radiusDeg, pl.g.Rows, pl.g.Cols, pl.yawSteps, pl.pitchSteps, pl.MemoryBytes()/1024)
}
