package experiments

import (
	"io"
	"net"
	"sync"
	"time"

	"dragonfly/internal/client"
	"dragonfly/internal/core"
	"dragonfly/internal/netem"
	"dragonfly/internal/player"
	"dragonfly/internal/proto"
	"dragonfly/internal/server"
	"dragonfly/internal/trace"
	"dragonfly/internal/video"
)

// ExtChaosParams scales the chaos experiment; the zero value runs the quick
// default (one short video, corruption plus one mid-stream server restart).
type ExtChaosParams struct {
	Chunks   int // video length in chunks/seconds (default 3)
	BitFlips int // in-flight payload corruptions (default 2)
	Restarts int // server process kills mid-stream (default 1)
	Seed     int64
}

// ExtChaosOutcome summarizes the chaos run: the session metrics, the send
// accounting summed over every server instance that ran, and the admission
// probe results.
type ExtChaosOutcome struct {
	Metrics *player.Metrics
	// Totals sums counters across all server instances; PrimarySent beyond
	// one per (chunk,tile) slot would mean a restarted server re-sent tiles
	// the client already held.
	Totals        server.Counters
	Instances     int
	ExcessPrimary int64
	// RejectedConns and BusyRetries come from the admission probe: a second
	// session against a MaxConns=1 server while the first still runs.
	RejectedConns int64
	BusyRetries   int64
}

// ExtChaos runs the integrity/crash-survival extension: a live session over
// a link that flips bits and truncates writes mid-stream while the serving
// process is killed and restarted cold, followed by an admission-control
// probe against a saturated server. Every corruption must surface as a
// clean link error (never a rendered corrupt tile), the restarted server
// must rebuild its dedup state purely from the client's resume bitmap, and
// the saturated server must fast-reject with a retryable busy error.
func ExtChaos(env *Env, w io.Writer) (ExtChaosOutcome, error) {
	return extChaos(env, w, ExtChaosParams{})
}

func extChaos(_ *Env, w io.Writer, p ExtChaosParams) (ExtChaosOutcome, error) {
	if p.Chunks <= 0 {
		p.Chunks = 3
	}
	if p.BitFlips <= 0 {
		p.BitFlips = 2
	}
	if p.Restarts <= 0 {
		p.Restarts = 1
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	m := video.Generate(video.GenParams{
		ID: "chaos", Rows: 6, Cols: 6, NumChunks: p.Chunks,
		TargetQP42Mbps: 0.8, TargetQP22Mbps: 6, Seed: 77,
	})
	videoDur := time.Duration(p.Chunks) * time.Second
	head := trace.GenerateHead(trace.HeadGenParams{
		UserID: "chaos-user", Class: trace.MotionLow, Duration: videoDur + time.Second, Seed: p.Seed,
	})

	// Corruption schedule: bit flips spread over the first half of the
	// session plus one truncation, all while most tiles are still in flight.
	sched := &netem.FaultSchedule{}
	for i := 0; i < p.BitFlips; i++ {
		at := videoDur / 2 * time.Duration(i+1) / time.Duration(p.BitFlips+1)
		sched.Events = append(sched.Events, netem.FaultEvent{At: at, Kind: netem.FaultBitFlip})
	}
	sched.Events = append(sched.Events, netem.FaultEvent{At: videoDur * 3 / 5, Kind: netem.FaultTruncate})

	fl := &netem.FaultLink{
		Link:     netem.Link{Trace: &trace.BandwidthTrace{SamplePeriod: time.Second, Mbps: []float64{8}}},
		Schedule: sched,
		Seed:     p.Seed,
	}
	defer fl.Stop()

	// The restartable "process": the dialer reaches whichever instance is
	// live; a restart abruptly closes all server conns and swaps in a cold
	// server.Server whose only path back to the session state is the
	// client's resume bitmap.
	var (
		mu        sync.Mutex
		conns     []net.Conn
		instances []*server.Server
	)
	fresh := func() *server.Server {
		s := server.New(m)
		s.Heartbeat = 100 * time.Millisecond
		return s
	}
	srv := fresh()
	instances = []*server.Server{srv}
	dial := func() (net.Conn, error) {
		clientConn, serverConn := fl.Pipe()
		mu.Lock()
		s := srv
		conns = append(conns, serverConn)
		mu.Unlock()
		go func() {
			defer serverConn.Close()
			_ = s.HandleConn(serverConn)
		}()
		return clientConn, nil
	}
	restart := func() {
		mu.Lock()
		dead := conns
		conns = nil
		srv = fresh()
		instances = append(instances, srv)
		mu.Unlock()
		for _, c := range dead {
			c.Close()
		}
	}
	for i := 0; i < p.Restarts; i++ {
		at := videoDur / 3 * time.Duration(i+1)
		t := time.AfterFunc(at, restart)
		defer t.Stop()
	}

	met, err := client.PlayResilient(dial, "chaos", head, core.NewDefault(), client.PlayOptions{
		Reconnect: client.ReconnectPolicy{
			MaxAttempts: 8,
			BaseDelay:   20 * time.Millisecond,
			MaxDelay:    200 * time.Millisecond,
			ReadTimeout: 400 * time.Millisecond,
			Seed:        p.Seed,
		},
	})
	if err != nil {
		return ExtChaosOutcome{}, err
	}

	out := ExtChaosOutcome{Metrics: met}
	mu.Lock()
	out.Instances = len(instances)
	for _, s := range instances {
		c := s.Counters()
		out.Totals.PrimarySent += c.PrimarySent
		out.Totals.MaskTileSent += c.MaskTileSent
		out.Totals.MaskFullSent += c.MaskFullSent
		out.Totals.BytesSent += c.BytesSent
		out.Totals.Resumes += c.Resumes
		out.Totals.ResumedItems += c.ResumedItems
		out.Totals.CorruptFrames += c.CorruptFrames
		out.Totals.RejectedConns += c.RejectedConns
	}
	mu.Unlock()
	out.ExcessPrimary = out.Totals.PrimarySent - int64(m.NumChunks*m.NumTiles())
	if out.ExcessPrimary < 0 {
		out.ExcessPrimary = 0
	}

	// Admission probe: saturate a MaxConns=1 server with a raw session over
	// TCP, then run a short client session that must be fast-rejected,
	// back off, and complete once the slot frees.
	probe, err := chaosAdmissionProbe(m, head, p.Seed)
	if err != nil {
		return ExtChaosOutcome{}, err
	}
	out.RejectedConns = probe.RejectedConns
	out.BusyRetries = probe.BusyRetries

	fprintf(w, "== Extension: chaos (corruption + server restart + admission) ==\n")
	fprintf(w, "Live session: %d bit flips, 1 truncation, %d server restart(s) mid-stream.\n\n",
		p.BitFlips, p.Restarts)
	fprintf(w, "%-22s %10s\n", "metric", "value")
	fprintf(w, "%-22s %10d\n", "frames rendered", met.TotalFrames)
	fprintf(w, "%-22s %10.2f\n", "median PSNR (dB)", met.MedianScore())
	fprintf(w, "%-22s %10s\n", "rebuffer", met.RebufferDuration.Round(time.Millisecond).String())
	fprintf(w, "%-22s %10d\n", "disconnects survived", met.Disconnects)
	fprintf(w, "%-22s %10d\n", "corrupt frames (cli)", met.CorruptFrames)
	fprintf(w, "%-22s %10d\n", "corrupt tiles dropped", met.CorruptTiles)
	fprintf(w, "%-22s %10d\n", "server instances", out.Instances)
	fprintf(w, "%-22s %10d\n", "resumes", out.Totals.Resumes)
	fprintf(w, "%-22s %10d\n", "dedup entries restored", out.Totals.ResumedItems)
	fprintf(w, "%-22s %10d\n", "excess primary sends", out.ExcessPrimary)
	fprintf(w, "%-22s %10d\n", "rejected conns (probe)", out.RejectedConns)
	fprintf(w, "%-22s %10d\n", "busy retries (probe)", out.BusyRetries)
	return out, nil
}

type chaosProbeResult struct {
	RejectedConns int64
	BusyRetries   int64
}

// chaosAdmissionProbe exercises MaxConns end to end over real TCP (the
// fast-reject is written before the hello is read, which needs a buffered
// transport): with the single slot held, the probing session is rejected
// with a retryable busy error and completes after the holder leaves.
func chaosAdmissionProbe(m *video.Manifest, head *trace.HeadTrace, seed int64) (chaosProbeResult, error) {
	srv := server.New(m)
	srv.Heartbeat = 100 * time.Millisecond
	srv.MaxConns = 1
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return chaosProbeResult{}, err
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				_ = srv.HandleConn(conn)
			}()
		}
	}()
	addr := l.Addr().String()

	hold, err := net.Dial("tcp", addr)
	if err != nil {
		return chaosProbeResult{}, err
	}
	go func() { _, _ = io.Copy(io.Discard, hold) }()
	if err := proto.WriteHello(hold, proto.Hello{VideoID: m.VideoID}); err != nil {
		return chaosProbeResult{}, err
	}
	release := time.AfterFunc(300*time.Millisecond, func() {
		_ = proto.WriteBye(hold)
		hold.Close()
	})
	defer release.Stop()

	met, err := client.PlayResilient(func() (net.Conn, error) {
		return net.Dial("tcp", addr)
	}, m.VideoID, head, core.NewDefault(), client.PlayOptions{
		Reconnect: client.ReconnectPolicy{
			MaxAttempts: 10,
			BaseDelay:   50 * time.Millisecond,
			MaxDelay:    200 * time.Millisecond,
			ReadTimeout: 400 * time.Millisecond,
			Seed:        seed,
		},
	})
	if err != nil {
		return chaosProbeResult{}, err
	}
	return chaosProbeResult{
		RejectedConns: srv.Counters().RejectedConns,
		BusyRetries:   met.BusyRejects,
	}, nil
}
