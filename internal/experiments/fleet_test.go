package experiments

import (
	"bytes"
	"testing"
)

// TestFleetChaos is the fleet-wide chaos proof from the issue: a balancer
// fronting three servers, eight concurrent clients, one server killed and
// cold-restarted, a second drained, a third killed once the restart is
// back — all mid-stream, under a fixed seed. The invariants are safety
// properties, so they hold under any goroutine schedule:
//
//   - every session completes every frame,
//   - zero duplicate primary sends summed across the whole fleet,
//   - zero corrupt tiles rendered,
//   - zero rebuffering outside the fault windows (NeverStall makes that
//     zero rebuffering, full stop),
//   - the dead member is marked unhealthy within the probe budget.
func TestFleetChaos(t *testing.T) {
	var buf bytes.Buffer
	out, err := extFleetChaos(nil, &buf, FleetChaosParams{Seed: 7})
	if err != nil {
		t.Fatalf("fleet-chaos: %v\n%s", err, buf.String())
	}
	t.Logf("\n%s", buf.String())

	if out.Completed != out.Clients {
		t.Errorf("completed sessions = %d, want %d", out.Completed, out.Clients)
	}
	if out.ExcessPrimary != 0 {
		t.Errorf("fleet-wide duplicate primary sends = %d, want 0", out.ExcessPrimary)
	}
	if out.CorruptTiles != 0 {
		t.Errorf("corrupt tiles rendered = %d, want 0", out.CorruptTiles)
	}
	if out.RebufferTotal != 0 {
		t.Errorf("rebuffer total = %s, want 0", out.RebufferTotal)
	}
	// The faults must have actually bitten: sessions were severed and came
	// back through the resume path.
	if out.Disconnects == 0 {
		t.Error("no client survived a disconnect — kills missed the streams")
	}
	if out.Totals.Resumes == 0 {
		t.Error("no resume handshake reached any server")
	}
	if out.Instances <= out.Servers {
		t.Errorf("instances = %d, want restarts beyond the initial %d", out.Instances, out.Servers)
	}
	if out.Routed == 0 {
		t.Error("balancer spliced no sessions")
	}
	if out.UnhealthyAfter <= 0 {
		t.Error("balancer never marked the killed backend unhealthy")
	} else if out.UnhealthyAfter > out.ProbeBudget {
		t.Errorf("unhealthy detection took %s, budget %s", out.UnhealthyAfter, out.ProbeBudget)
	}
	if !out.Recovered {
		t.Error("restarted members not routable again by end of run")
	}
	if out.Totals.Probes == 0 {
		t.Error("servers answered no status probes")
	}
}
