package experiments

import (
	"io"
	"time"

	"dragonfly/internal/geom"
	"dragonfly/internal/predict"
	"dragonfly/internal/stats"
)

// Fig2Point is one prediction-window sample of Figure 2.
type Fig2Point struct {
	Window         time.Duration
	MedianAccuracy float64
	P25, P75       float64
}

// Fig2PredictionAccuracy reproduces Figure 2: viewport-prediction accuracy
// (fraction of actual-viewport tiles predicted) vs prediction window, using
// linear regression on the user traces. The paper reports 94.2% median at
// 0.2 s degrading to 25.4% at 3 s.
func Fig2PredictionAccuracy(env *Env, w io.Writer) ([]Fig2Point, error) {
	grid := geom.NewGrid(12, 12)
	vp := geom.DefaultViewport
	windows := []time.Duration{
		200 * time.Millisecond, 500 * time.Millisecond, time.Second,
		1500 * time.Millisecond, 2 * time.Second, 3 * time.Second,
	}
	fprintf(w, "== Figure 2: viewport prediction accuracy vs window ==\n")
	fprintf(w, "Paper: median 94.2%% @0.2 s, 25.4%% @3 s (linear regression, [34] traces)\n\n")
	fprintf(w, "%-8s %10s %10s %10s\n", "window", "median", "p25", "p75")
	out := make([]Fig2Point, 0, len(windows))
	for _, win := range windows {
		var all []float64
		for _, u := range env.Users {
			all = append(all, predict.Accuracy(u, grid, vp, win, 200*time.Millisecond)...)
		}
		p := Fig2Point{
			Window:         win,
			MedianAccuracy: stats.Median(all),
			P25:            stats.Percentile(all, 25),
			P75:            stats.Percentile(all, 75),
		}
		out = append(out, p)
		fprintf(w, "%-8s %9.1f%% %9.1f%% %9.1f%%\n",
			win, 100*p.MedianAccuracy, 100*p.P25, 100*p.P75)
	}
	return out, nil
}
