package experiments

import (
	"io"
	"time"

	"dragonfly/internal/stats"
	"dragonfly/internal/study"
)

// StudyOutcome bundles the Figures 14-17 results, all derived from one
// simulated study run.
type StudyOutcome struct {
	Results *study.Results

	// Fig 14a: fraction of sessions rated >= 4 per system.
	RatedAtLeast4 map[string]float64
	// Fig 14b: MOS per video per system, with 95% CI half-widths.
	MOSPerVideo   map[string]map[string]float64
	MOSCIPerVideo map[string]map[string]float64
	// Fig 14c: median PSNR across sessions per system.
	MedianPSNR map[string]float64
	// Fig 15: per-tile skip fraction over Dragonfly sessions.
	SkipHeat           []float64
	HeatRows, HeatCols int
	// Fig 17: feedback shares per system and dimension.
	Feedback map[string]FeedbackShares
}

// FeedbackShares holds the Fig 17 splits for one system.
type FeedbackShares struct {
	BlanksNoneOrFew, BlanksMany float64
	ReactFast, ReactSlow        float64
	QualityHigh, QualityLow     float64
}

// RunUserStudy executes the §4.5 study simulation and prints Figures 14-17.
// numUsers scales the study (26 in the paper).
func RunUserStudy(env *Env, numUsers int, w io.Writer) (*StudyOutcome, error) {
	videos := study.DefaultStudyVideos(env.Videos)
	traces := env.Belgian
	if len(traces) > 5 {
		traces = traces[:5]
	}
	res, err := study.Run(study.Config{
		NumUsers: numUsers,
		Videos:   videos,
		Traces:   traces,
		Seed:     42,
	})
	if err != nil {
		return nil, err
	}
	out := &StudyOutcome{
		Results:       res,
		RatedAtLeast4: map[string]float64{},
		MOSPerVideo:   map[string]map[string]float64{},
		MOSCIPerVideo: map[string]map[string]float64{},
		MedianPSNR:    map[string]float64{},
		Feedback:      map[string]FeedbackShares{},
	}
	byScheme := res.ByScheme()
	for name, records := range byScheme {
		out.RatedAtLeast4[name] = study.FractionRatedAtLeast(records, 4)
		out.MOSPerVideo[name] = study.MOSPerVideo(records)
		cis := map[string]float64{}
		perVideoRatings := map[string][]float64{}
		for _, r := range records {
			perVideoRatings[r.VideoID] = append(perVideoRatings[r.VideoID], float64(r.Rating))
		}
		for vid, ratings := range perVideoRatings {
			_, hw := stats.MeanCI95(ratings)
			cis[vid] = hw
		}
		out.MOSCIPerVideo[name] = cis
		var pooled []float64
		for _, r := range records {
			pooled = append(pooled, r.Metrics.FrameScore...)
		}
		out.MedianPSNR[name] = stats.Median(pooled)

		var fs FeedbackShares
		n := float64(len(records))
		for _, r := range records {
			if r.Feedback.Blankness == study.LevelGood {
				fs.BlanksNoneOrFew++
			}
			if r.Feedback.Blankness == study.LevelBad {
				fs.BlanksMany++
			}
			if r.Feedback.Reactivity == study.LevelGood {
				fs.ReactFast++
			}
			if r.Feedback.Reactivity == study.LevelBad {
				fs.ReactSlow++
			}
			if r.Feedback.Quality == study.LevelGood {
				fs.QualityHigh++
			}
			if r.Feedback.Quality == study.LevelBad {
				fs.QualityLow++
			}
		}
		if n > 0 {
			fs.BlanksNoneOrFew /= n
			fs.BlanksMany /= n
			fs.ReactFast /= n
			fs.ReactSlow /= n
			fs.QualityHigh /= n
			fs.QualityLow /= n
		}
		out.Feedback[name] = fs
	}

	// Fig 15: aggregate Dragonfly unavailability heat (fraction of views
	// where a viewport tile had no renderable version at all).
	if dSessions, ok := byScheme["Dragonfly"]; ok && len(dSessions) > 0 {
		tiles := len(dSessions[0].Metrics.BlankHeat)
		skip := make([]float64, tiles)
		view := make([]float64, tiles)
		for _, r := range dSessions {
			for i := range r.Metrics.BlankHeat {
				skip[i] += float64(r.Metrics.BlankHeat[i])
				view[i] += float64(r.Metrics.ViewHeat[i])
			}
		}
		out.SkipHeat = make([]float64, tiles)
		for i := range skip {
			if view[i] > 0 {
				out.SkipHeat[i] = skip[i] / view[i]
			}
		}
		out.HeatRows = videos[0].Rows
		out.HeatCols = videos[0].Cols
	}

	printStudy(w, out)
	return out, nil
}

func printStudy(w io.Writer, out *StudyOutcome) {
	fprintf(w, "== Figure 14: user study ==\n")
	fprintf(w, "Paper: 65%% of Dragonfly sessions rated >=4, vs 16%% (Pano) and 13%% (Flare);\n")
	fprintf(w, "       Dragonfly's MOS highest for every video; median PSNR +1.7 dB vs Pano, +2.7 vs Flare.\n\n")
	fprintf(w, "(a) sessions rated 4 or 5:\n")
	for _, name := range sortedNames(out.RatedAtLeast4) {
		fprintf(w, "    %-10s %5.1f%%\n", name, 100*out.RatedAtLeast4[name])
	}
	fprintf(w, "(b) MOS per video (with 95%% CI half-widths):\n")
	for _, name := range sortedNames(out.MOSPerVideo) {
		fprintf(w, "    %-10s", name)
		per := out.MOSPerVideo[name]
		for _, vid := range sortedNames(per) {
			fprintf(w, "  %s=%.2f±%.2f", vid, per[vid], out.MOSCIPerVideo[name][vid])
		}
		fprintf(w, "\n")
	}
	fprintf(w, "(c) median viewport PSNR:\n")
	for _, name := range sortedNames(out.MedianPSNR) {
		fprintf(w, "    %-10s %6.2f dB\n", name, out.MedianPSNR[name])
	}

	// Figure 15.
	fprintf(w, "\n== Figure 15: Dragonfly skip-location heat map ==\n")
	fprintf(w, "Paper: skip fraction never above 0.8%%, concentrated at the viewport periphery.\n")
	if len(out.SkipHeat) > 0 {
		maxSkip := 0.0
		for _, v := range out.SkipHeat {
			if v > maxSkip {
				maxSkip = v
			}
		}
		fprintf(w, "Measured max per-tile unavailable fraction: %.2f%% (grid %dx%d)\n",
			100*maxSkip, out.HeatRows, out.HeatCols)
		fprintf(w, "Heat map (per-mille of views where the tile was unavailable):\n")
		for r := 0; r < out.HeatRows; r++ {
			fprintf(w, "  ")
			for c := 0; c < out.HeatCols; c++ {
				fprintf(w, "%4.0f", 1000*out.SkipHeat[r*out.HeatCols+c])
			}
			fprintf(w, "\n")
		}
	}

	// Figure 17.
	fprintf(w, "\n== Figure 17: qualitative feedback ==\n")
	fprintf(w, "Paper: ~90%% of Pano/Flare comments report blanks vs 47%% for Dragonfly (2.7%% 'many');\n")
	fprintf(w, "       73.7%% call Dragonfly reactive (Pano 57.2%%, Flare 78%% slow); 60.2%% high quality.\n\n")
	fprintf(w, "%-10s | %9s %9s | %9s %9s | %9s %9s\n",
		"scheme", "noBlanks", "manyBlnk", "fast", "slow", "hiQual", "loQual")
	for _, name := range sortedNames(out.Feedback) {
		fs := out.Feedback[name]
		fprintf(w, "%-10s | %8.1f%% %8.1f%% | %8.1f%% %8.1f%% | %8.1f%% %8.1f%%\n",
			name, 100*fs.BlanksNoneOrFew, 100*fs.BlanksMany,
			100*fs.ReactFast, 100*fs.ReactSlow,
			100*fs.QualityHigh, 100*fs.QualityLow)
	}
}

// Fig16Displacement reproduces Figure 16: the distribution of per-second
// yaw displacement across all sessions, per system — verifying that user
// movement was comparable regardless of the scheme.
func Fig16Displacement(out *StudyOutcome, w io.Writer) map[string]stats.Summary {
	res := map[string]stats.Summary{}
	perScheme := map[string][]float64{}
	for _, s := range out.Results.Sessions {
		if s.User >= len(out.Results.Heads) || s.Metrics == nil {
			continue
		}
		head := out.Results.Heads[s.User]
		secs := int(s.Metrics.WallDuration / time.Second)
		disp := head.YawDisplacementPerSecond()
		if secs < len(disp) {
			disp = disp[:secs]
		}
		perScheme[s.Scheme] = append(perScheme[s.Scheme], disp...)
	}
	fprintf(w, "== Figure 16: yaw displacement per second, per system ==\n")
	fprintf(w, "Paper: all systems experience similar displacement (movement is not the confound).\n\n")
	for _, name := range sortedNames(perScheme) {
		sum := stats.Summarize(perScheme[name])
		res[name] = sum
		fprintf(w, "%-10s median %5.1f deg/s   p90 %5.1f\n", name, sum.Median, sum.P90)
	}
	return res
}
