package experiments

import (
	"bytes"
	"testing"
)

// TestChaosSoak is the all-tier failpoint soak from the issue: every
// registered failpoint site armed from one seeded schedule over a
// balancer-fronted fleet with a live ingest tier, plus one abrupt server
// kill and cold restart. The assertions are the safety contract the
// hardening exists to keep:
//
//   - every session completes every frame with zero rebuffering,
//   - any primary send beyond one per slot is explained by a detected
//     (and dropped — never held) corrupt tile,
//   - all telemetry pushes deliver through the retry budget (zero drops),
//   - watcher and poller absorb their injected faults and keep folding,
//   - the snapshot tier quarantines the corrupt rollup planted by the
//     faulted writer and ends with a healthy, parseable one on disk.
//
// Must not run in t.Parallel: the failpoint registry is process-global.
func TestChaosSoak(t *testing.T) {
	var buf bytes.Buffer
	out, err := extChaosSoak(nil, &buf, ChaosSoakParams{Seed: 11})
	if err != nil {
		t.Fatalf("chaos-soak: %v\n%s", err, buf.String())
	}
	t.Logf("\n%s", buf.String())

	if out.Completed != out.Clients {
		t.Errorf("completed sessions = %d, want %d", out.Completed, out.Clients)
	}
	if out.RebufferTotal != 0 {
		t.Errorf("rebuffer total = %s, want 0", out.RebufferTotal)
	}
	// Duplicate-send accounting: a corrupt tile is dropped by the client
	// (never held) and its slot may be legitimately re-sent, so detected
	// corruptions are the only excess primary sends allowed.
	if out.ExcessPrimary > out.CorruptDetected {
		t.Errorf("unexplained duplicate primary sends: excess %d > corrupt detected %d",
			out.ExcessPrimary, out.CorruptDetected)
	}
	if out.CorruptDetected == 0 {
		t.Error("no corrupt tile detected — store.frame corruption never reached a client")
	}

	// The chaos actually happened, on every tier.
	if out.InjectedSites != out.ArmedSites {
		t.Errorf("only %d of %d armed sites fired", out.InjectedSites, out.ArmedSites)
	}
	if out.Disconnects == 0 {
		t.Error("no client survived a disconnect — kill and link faults missed the streams")
	}
	if out.Totals.Resumes == 0 {
		t.Error("no resume handshake reached any server")
	}
	if out.Instances <= out.Servers {
		t.Errorf("instances = %d, want a cold restart beyond the initial %d", out.Instances, out.Servers)
	}
	if out.Routed == 0 {
		t.Error("balancer spliced no sessions")
	}

	// Ingest-tier hardening: retries absorbed the injected faults without
	// losing telemetry.
	if out.PushDrops != 0 {
		t.Errorf("push drops = %d, want 0 (retry budget must absorb the armed faults)", out.PushDrops)
	}
	if out.PushRetries == 0 {
		t.Error("push retries = 0 — the armed ingest.push faults never exercised the retry path")
	}
	if out.RollupSessions != int64(out.Clients) {
		t.Errorf("rollup sessions = %d, want %d (every client trace delivered)", out.RollupSessions, out.Clients)
	}
	if out.WatchErrs == 0 {
		t.Error("watch errors = 0 — the armed ingest.watch.read faults never hit the tailer")
	}
	if out.ServerTraceSessions == 0 {
		t.Error("no server-view traces folded despite watcher faults being survivable")
	}
	if out.PollRetries == 0 && out.PollErrs == 0 {
		t.Error("feedback poller never saw its armed faults")
	}

	// Snapshot recovery: the corrupt rollup planted before startup was
	// quarantined, and a healthy snapshot stands at the end.
	if out.Quarantined != 1 {
		t.Errorf("quarantined snapshots = %d, want 1", out.Quarantined)
	}
	if !out.SnapshotRecovered {
		t.Error("no healthy rollup.json recovered on disk")
	}
	if out.SnapshotRecovered && out.SnapshotSessions != int64(out.Clients) {
		t.Errorf("recovered snapshot folded %d sessions, want %d", out.SnapshotSessions, out.Clients)
	}
}
