package experiments

import (
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"dragonfly/internal/balancer"
	"dragonfly/internal/chaos"
	"dragonfly/internal/client"
	"dragonfly/internal/core"
	"dragonfly/internal/ingest"
	"dragonfly/internal/netem"
	"dragonfly/internal/obs"
	"dragonfly/internal/player"
	"dragonfly/internal/server"
	"dragonfly/internal/store"
	"dragonfly/internal/trace"
	"dragonfly/internal/video"
)

// ChaosSoakParams scales the failpoint soak; the zero value runs the
// acceptance configuration: 3 servers behind a balancer plus a full
// ingest tier, 6 clients, every registered failpoint site armed from one
// seeded schedule, and one server killed and cold-restarted mid-stream.
type ChaosSoakParams struct {
	Servers int // fleet size (default 3)
	Clients int // concurrent sessions (default 6)
	Chunks  int // video length in chunks/seconds (default 3)
	Seed    int64

	KillAt    time.Duration // kill one server abruptly (default 600 ms)
	RestartAt time.Duration // cold-restart it (default 1.2 s)
}

// ChaosSoakOutcome is the fleet-wide accounting of one soak. The safety
// assertions are exact: playback never stalls, every primary transmission
// beyond one per (client, chunk, tile) slot is explained by a detected
// payload corruption (a corrupt tile is dropped, never held, and its slot
// legitimately re-sent), and the snapshot tier quarantines the corrupt
// rollup a faulted writer left behind and recovers a healthy one.
type ChaosSoakOutcome struct {
	Servers, Clients int
	Completed        int // sessions that rendered every frame untruncated
	Instances        int // server instances across restarts

	Totals          server.Counters
	ExcessPrimary   int64 // primary sends beyond one per slot
	CorruptDetected int64 // checksum-dropped tiles, summed over clients
	RebufferTotal   time.Duration
	Disconnects     int64
	Routed          int64

	InjectedTotal uint64 // faults injected across all sites
	InjectedSites int    // distinct sites that actually fired
	ArmedSites    int

	// Ingest-tier hardening under fire.
	PushRetries, PushDrops int64
	RollupSessions         int64 // client sessions in the live rollup
	ServerTraceSessions    int64 // server-view sessions folded by watchers
	WatchErrs              int64
	PollRetries, PollErrs  int64
	Quarantined            int64
	SnapshotSessions       int64
	SnapshotRecovered      bool
}

// soakBackend is one fleet member running a real accept loop (so the
// server.accept failpoint is on the path) over in-memory pipes. Kill is
// abrupt: the accept loop stops and every live connection is severed
// mid-frame; restart brings up a cold instance on the same address whose
// only way back to session state is the client's resume bitmap.
type soakBackend struct {
	addr     string
	m        *video.Manifest
	link     netem.Link
	reg      *obs.Registry
	traceDir string
	qoe      server.QoESource
	parent   context.Context

	mu        sync.Mutex
	alive     bool
	cur       *server.Server
	lis       *netem.PipeListener
	cancel    context.CancelFunc
	serveDone chan struct{}
	conns     []net.Conn
	instances []*server.Server
}

// soakTap records accepted server-side conns so kill can sever them.
type soakTap struct {
	net.Listener
	b *soakBackend
}

func (t *soakTap) Accept() (net.Conn, error) {
	c, err := t.Listener.Accept()
	if err == nil {
		t.b.mu.Lock()
		t.b.conns = append(t.b.conns, c)
		t.b.mu.Unlock()
	}
	return c, err
}

func (b *soakBackend) start() {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := server.New(b.m)
	s.Heartbeat = 100 * time.Millisecond
	s.WriteTimeout = 250 * time.Millisecond
	s.TraceDir = b.traceDir
	s.QoE = b.qoe
	s.Obs = b.reg
	ictx, cancel := context.WithCancel(b.parent)
	lis := netem.NewPipeListener(b.link)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = s.Serve(ictx, &soakTap{Listener: lis, b: b})
	}()
	b.cur, b.lis, b.cancel, b.serveDone = s, lis, cancel, done
	b.alive = true
	b.instances = append(b.instances, s)
}

func (b *soakBackend) dial() (net.Conn, error) {
	b.mu.Lock()
	if !b.alive {
		b.mu.Unlock()
		return nil, fmt.Errorf("%s: connection refused", b.addr)
	}
	lis := b.lis
	b.mu.Unlock()
	return lis.Dial()
}

func (b *soakBackend) kill() {
	b.mu.Lock()
	b.alive = false
	cancel, done := b.cancel, b.serveDone
	dead := b.conns
	b.conns = nil
	b.mu.Unlock()
	cancel()
	for _, c := range dead {
		c.Close()
	}
	<-done
}

func (b *soakBackend) totals() (server.Counters, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	var t server.Counters
	for _, s := range b.instances {
		c := s.Counters()
		t.PrimarySent += c.PrimarySent
		t.MaskTileSent += c.MaskTileSent
		t.MaskFullSent += c.MaskFullSent
		t.BytesSent += c.BytesSent
		t.Resumes += c.Resumes
		t.ResumedItems += c.ResumedItems
		t.CorruptFrames += c.CorruptFrames
		t.RejectedConns += c.RejectedConns
		t.Probes += c.Probes
		t.WriteStallKills += c.WriteStallKills
	}
	return t, len(b.instances)
}

// soakRules is the all-tier schedule: every registered failpoint site is
// armed with a bounded fault budget. High-traffic sites (frame builds,
// batch writes, probes, splices, poll cycles) leave After/Every zero so
// chaos.Schedule(seed, …) places them deterministically but differently
// per seed; low-traffic sites (a handful of hits per run) pin Every:1 so
// their faults land on the first hits regardless of seed.
func soakRules() []chaos.Rule {
	return []chaos.Rule{
		// Seeded placement: these sites are hit hundreds of times per run.
		{Site: "server.accept", Kind: chaos.FaultError, Count: 2},
		{Site: "server.send.write", Kind: chaos.FaultError, Count: 1},
		{Site: "store.frame", Kind: chaos.FaultCorrupt, Count: 2},
		{Site: "balancer.dial", Kind: chaos.FaultError, Count: 2},
		{Site: "balancer.probe", Kind: chaos.FaultError, Count: 2},
		{Site: "balancer.splice", Kind: chaos.FaultError, Count: 1},
		{Site: "ingest.feedback.poll", Kind: chaos.FaultError, Count: 2},
		// Pinned placement: first hits fault, so a short run still proves
		// the recovery path.
		{Site: "server.trace.write", Kind: chaos.FaultError, Every: 1, Count: 1},
		{Site: "client.dial", Kind: chaos.FaultError, Every: 1, Count: 2},
		{Site: "ingest.watch.read", Kind: chaos.FaultError, Every: 1, Count: 2},
		{Site: "ingest.snapshot.write", Kind: chaos.FaultCorrupt, Every: 1, Count: 1},
		{Site: "ingest.push", Kind: chaos.FaultError, Every: 1, Count: 2},
	}
}

// ExtChaosSoak runs the seeded all-tier failpoint soak: a balancer-fronted
// fleet, a live ingest tier (HTTP push, trace watchers, periodic snapshots,
// QoE feedback poller) and concurrent clients, with every registered
// failpoint armed from one seeded schedule and one server killed and
// cold-restarted mid-stream. The run must end with zero rebuffering, no
// unexplained duplicate primary sends, no corrupt tile held, all telemetry
// delivered through the retry paths, and the snapshot tier recovered from
// a corrupt rollup a faulted writer planted.
func ExtChaosSoak(env *Env, w io.Writer) (ChaosSoakOutcome, error) {
	return extChaosSoak(env, w, ChaosSoakParams{})
}

func extChaosSoak(_ *Env, w io.Writer, p ChaosSoakParams) (ChaosSoakOutcome, error) {
	if p.Servers <= 0 {
		p.Servers = 3
	}
	if p.Clients <= 0 {
		p.Clients = 6
	}
	if p.Chunks <= 0 {
		p.Chunks = 3
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.KillAt <= 0 {
		p.KillAt = 600 * time.Millisecond
	}
	if p.RestartAt <= 0 {
		p.RestartAt = 1200 * time.Millisecond
	}
	out := ChaosSoakOutcome{Servers: p.Servers, Clients: p.Clients}

	rules := chaos.Schedule(p.Seed, soakRules())
	out.ArmedSites = len(rules)
	if err := chaos.Arm(rules...); err != nil {
		return out, fmt.Errorf("arm schedule: %w", err)
	}
	defer chaos.Disarm()

	m := video.Generate(video.GenParams{
		ID: "soak", Rows: 6, Cols: 6, NumChunks: p.Chunks,
		TargetQP42Mbps: 0.8, TargetQP22Mbps: 6, Seed: 77,
	})
	store.Shared(m)
	videoDur := time.Duration(p.Chunks) * time.Second
	link := netem.Link{Trace: &trace.BandwidthTrace{SamplePeriod: time.Second, Mbps: []float64{16}}}

	snapDir, err := os.MkdirTemp("", "dragonfly-soak-snap-")
	if err != nil {
		return out, err
	}
	defer os.RemoveAll(snapDir)
	traceRoot, err := os.MkdirTemp("", "dragonfly-soak-traces-")
	if err != nil {
		return out, err
	}
	defer os.RemoveAll(traceRoot)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// The ingest tier: one aggregator serving /ingest + /rollup, with the
	// snapshot loop and trace watchers alongside.
	ingReg := obs.NewRegistry()
	icfg := ingest.DefaultConfig()
	icfg.Obs = ingReg
	agg := ingest.New(icfg)
	ingAddr, _, err := agg.Serve(ctx, "127.0.0.1:0")
	if err != nil {
		return out, err
	}
	ingURL := "http://" + ingAddr.String()

	// Plant the crash state the snapshot quarantine exists to recover
	// from: the armed ingest.snapshot.write corrupt fault silently
	// bit-rots rollup.json while reporting success — exactly what a dying
	// writer (or rotting disk) leaves behind for the next process.
	planted := false
	for i := 0; i < 16 && !planted; i++ {
		if _, err := agg.WriteSnapshot(snapDir); err != nil {
			return out, fmt.Errorf("plant snapshot: %w", err)
		}
		planted = chaos.Injections("ingest.snapshot.write") > 0
	}
	if !planted {
		return out, fmt.Errorf("snapshot corrupt fault never fired")
	}

	// The QoE feedback poller; its retry loop absorbs the armed
	// ingest.feedback.poll faults without ever steering on partial data.
	fbReg := obs.NewRegistry()
	fb := ingest.NewFeedback(ingest.FeedbackConfig{
		URL:      ingURL + "/rollup",
		TargetDB: 50,
		Interval: 150 * time.Millisecond,
		MaxAge:   time.Minute,
		Obs:      fbReg,
		Seed:     p.Seed,
	})
	fbDone := make(chan struct{})
	go func() {
		defer close(fbDone)
		fb.Run(ctx)
	}()

	// The fleet: real accept loops behind a balancer, each member writing
	// server-view traces a watcher tails into a second aggregator (the
	// same registry, so the ing_* counters land in one place).
	backends := make(map[string]*soakBackend, p.Servers)
	var order []*soakBackend
	var cfgs []balancer.BackendConfig
	srvAgg := ingest.New(ingest.Config{Obs: ingReg})
	var watchers []*ingest.Watcher
	for i := 0; i < p.Servers; i++ {
		addr := fmt.Sprintf("s%d", i)
		dir := filepath.Join(traceRoot, addr)
		b := &soakBackend{addr: addr, m: m, link: link, reg: obs.NewRegistry(),
			traceDir: dir, qoe: fb, parent: ctx}
		b.start()
		backends[addr] = b
		order = append(order, b)
		adminListen, _, err := obs.ServeAdmin(ctx, "127.0.0.1:0", b.reg)
		if err != nil {
			return out, err
		}
		cfgs = append(cfgs, balancer.BackendConfig{Addr: addr, AdminAddr: adminListen.String()})
		watchers = append(watchers, ingest.NewWatcher(srvAgg, dir, 100*time.Millisecond))
	}
	var watchWG sync.WaitGroup
	for _, wt := range watchers {
		watchWG.Add(1)
		go func(wt *ingest.Watcher) {
			defer watchWG.Done()
			wt.Run(ctx)
		}(wt)
	}
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		agg.RunSnapshots(ctx, snapDir, 150*time.Millisecond)
	}()

	rigDial := func(addr string, _ time.Duration) (net.Conn, error) {
		b := backends[addr]
		if b == nil {
			return nil, fmt.Errorf("%s: no such backend", addr)
		}
		return b.dial()
	}
	lbReg := obs.NewRegistry()
	bl, err := balancer.New(balancer.Config{
		Backends:      cfgs,
		ProbeInterval: 50 * time.Millisecond,
		ProbeTimeout:  250 * time.Millisecond,
		FailThreshold: 2,
		DialTimeout:   250 * time.Millisecond,
		Obs:           lbReg,
		Dial:          rigDial,
	})
	if err != nil {
		return out, err
	}
	front := netem.NewPipeListener(netem.Link{})
	go func() { _ = bl.Serve(ctx, front) }()

	// One abrupt kill and cold restart mid-stream, on top of the armed
	// faults: resume under chaos.
	victim := order[1%len(order)]
	killT := time.AfterFunc(p.KillAt, victim.kill)
	restartT := time.AfterFunc(p.RestartAt, victim.start)
	defer killT.Stop()
	defer restartT.Stop()

	// Client traces reach the ingest tier through the hardened pusher —
	// the armed ingest.push faults are absorbed by its retry budget.
	pusher := ingest.NewPusher(ingest.PushConfig{
		URL:       ingURL + "/ingest",
		BaseDelay: 20 * time.Millisecond,
		MaxDelay:  200 * time.Millisecond,
		Seed:      p.Seed,
		Obs:       ingReg,
	})

	type result struct {
		met *player.Metrics
		err error
	}
	results := make([]result, p.Clients)
	var wg sync.WaitGroup
	for i := 0; i < p.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var dial client.DialFunc
			if i%2 == 0 {
				dial = front.Dial
			} else {
				addrs := make([]string, p.Servers)
				for j := range addrs {
					addrs[j] = order[(i+j)%p.Servers].addr
				}
				md := &client.MultiDialer{
					Addrs:    addrs,
					Backoff:  20 * time.Millisecond,
					DialAddr: func(addr string, _ time.Duration) (net.Conn, error) { return rigDial(addr, 0) },
				}
				dial = md.Dial
			}
			head := trace.GenerateHead(trace.HeadGenParams{
				UserID: fmt.Sprintf("soak-user-%d", i), Class: trace.MotionLow,
				Duration: videoDur + time.Second, Seed: p.Seed + int64(i),
			})
			tr := obs.NewTrace(0)
			met, err := client.PlayResilient(dial, "soak", head, core.NewDefault(), client.PlayOptions{
				Reconnect: client.ReconnectPolicy{
					MaxAttempts:  16,
					BaseDelay:    20 * time.Millisecond,
					MaxDelay:     200 * time.Millisecond,
					ReadTimeout:  400 * time.Millisecond,
					WriteTimeout: 250 * time.Millisecond,
					Seed:         p.Seed + int64(i),
				},
				Trace:  tr,
				Cohort: "soak:fleet",
			})
			results[i] = result{met, err}
			if err != nil {
				return
			}
			var buf writerBuffer
			if werr := tr.WriteJSONL(&buf); werr != nil {
				results[i].err = werr
				return
			}
			if perr := pusher.Push(ctx, buf.b); perr != nil {
				results[i].err = fmt.Errorf("push trace: %w", perr)
			}
		}(i)
	}
	wg.Wait()

	// Let the watchers fold the trailing server traces and the poller run
	// against the fully-populated rollup before tearing the tier down.
	time.Sleep(400 * time.Millisecond)
	cancel()
	<-snapDone // the final snapshot lands after cancellation
	<-fbDone
	watchWG.Wait()

	for i, r := range results {
		if r.err != nil {
			return out, fmt.Errorf("client %d: %w", i, r.err)
		}
		if r.met.TotalFrames == m.NumFrames() && !r.met.Truncated {
			out.Completed++
		}
		out.CorruptDetected += r.met.CorruptTiles
		out.RebufferTotal += r.met.RebufferDuration
		out.Disconnects += int64(r.met.Disconnects)
	}
	for _, b := range order {
		t, n := b.totals()
		out.Instances += n
		out.Totals.PrimarySent += t.PrimarySent
		out.Totals.Resumes += t.Resumes
		out.Totals.ResumedItems += t.ResumedItems
		out.Totals.BytesSent += t.BytesSent
		out.Totals.Probes += t.Probes
		out.Totals.WriteStallKills += t.WriteStallKills
	}
	budget := int64(p.Clients) * int64(m.NumChunks*m.NumTiles())
	out.ExcessPrimary = out.Totals.PrimarySent - budget
	if out.ExcessPrimary < 0 {
		out.ExcessPrimary = 0
	}
	out.Routed = lbReg.Counter("lb_routed").Value()

	out.InjectedTotal = chaos.TotalInjections()
	for _, name := range chaos.SiteNames() {
		if chaos.Injections(name) > 0 {
			out.InjectedSites++
		}
	}

	out.PushRetries = ingReg.Counter("ing_push_retries").Value()
	out.PushDrops = ingReg.Counter("ing_push_drops").Value()
	out.WatchErrs = ingReg.Counter("ing_watch_errs").Value()
	out.Quarantined = ingReg.Counter("ing_quarantined").Value()
	out.PollRetries = fbReg.Counter("srv_qoe_poll_retries").Value()
	out.PollErrs = fbReg.Counter("srv_qoe_poll_errs").Value()
	for _, cr := range agg.Rollup().Cohorts {
		out.RollupSessions += cr.Sessions
	}
	for _, cr := range srvAgg.Rollup().Cohorts {
		out.ServerTraceSessions += cr.Sessions
	}
	if snap, rerr := ingest.ReadSnapshot(snapDir); rerr == nil {
		out.SnapshotRecovered = true
		for _, cr := range snap.Cohorts {
			out.SnapshotSessions += cr.Sessions
		}
	}

	fprintf(w, "== Extension: chaos-soak (all-tier failpoints + kill/restart under one seed) ==\n")
	fprintf(w, "%d servers, %d clients; %d failpoint sites armed (seed %d); kill@%s restart@%s.\n\n",
		p.Servers, p.Clients, out.ArmedSites, p.Seed, p.KillAt, p.RestartAt)
	fprintf(w, "%-28s %10s\n", "metric", "value")
	fprintf(w, "%-28s %10d\n", "sessions completed", out.Completed)
	fprintf(w, "%-28s %10d\n", "server instances", out.Instances)
	fprintf(w, "%-28s %10d\n", "faults injected", out.InjectedTotal)
	fprintf(w, "%-28s %7d/%2d\n", "sites fired", out.InjectedSites, out.ArmedSites)
	fprintf(w, "%-28s %10d\n", "disconnects survived", out.Disconnects)
	fprintf(w, "%-28s %10d\n", "resumes", out.Totals.Resumes)
	fprintf(w, "%-28s %10d\n", "excess primary sends", out.ExcessPrimary)
	fprintf(w, "%-28s %10d\n", "corrupt tiles detected", out.CorruptDetected)
	fprintf(w, "%-28s %10s\n", "rebuffer total", out.RebufferTotal.Round(time.Millisecond).String())
	fprintf(w, "%-28s %10d\n", "push retries / drops", out.PushRetries)
	fprintf(w, "%-28s %10d\n", "push drops", out.PushDrops)
	fprintf(w, "%-28s %10d\n", "rollup sessions", out.RollupSessions)
	fprintf(w, "%-28s %10d\n", "server traces folded", out.ServerTraceSessions)
	fprintf(w, "%-28s %10d\n", "watch errors absorbed", out.WatchErrs)
	fprintf(w, "%-28s %10d\n", "poll retries", out.PollRetries)
	fprintf(w, "%-28s %10d\n", "snapshots quarantined", out.Quarantined)
	fprintf(w, "%-28s %10v\n", "snapshot recovered", out.SnapshotRecovered)
	return out, nil
}

// writerBuffer is a minimal append-only io.Writer; the trace body is
// handed to the pusher as one []byte.
type writerBuffer struct{ b []byte }

func (w *writerBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}
