package experiments

import (
	"fmt"
	"io"
	"time"

	"dragonfly/internal/core"
	"dragonfly/internal/decoder"
	"dragonfly/internal/geom"
	"dragonfly/internal/player"
	"dragonfly/internal/predict"
	"dragonfly/internal/sim"
	"dragonfly/internal/stats"
	"dragonfly/internal/trace"
)

// This file contains extension experiments beyond the paper's figures:
// ablations of design choices DESIGN.md calls out (decision interval, RoI
// geometry), the §3.2 future-work directions, and sensitivity studies the
// paper's testbed assumed away (the client decode stage).

// ExtPredictorMethods compares viewport-prediction methods (static /
// velocity-decay / the paper's linear regression) across windows — an
// ablation of the predictor choice behind Figure 2.
func ExtPredictorMethods(env *Env, w io.Writer) map[string][]float64 {
	grid := geom.NewGrid(12, 12)
	vp := geom.DefaultViewport
	windows := []time.Duration{200 * time.Millisecond, time.Second, 3 * time.Second}
	methods := []struct {
		name string
		mk   func() predict.OrientationPredictor
	}{
		{"static", func() predict.OrientationPredictor { return &predict.Static{} }},
		{"decay", func() predict.OrientationPredictor { return &predict.Decay{} }},
		{"regression", func() predict.OrientationPredictor { return predict.Regression{V: predict.NewViewport(0)} }},
	}
	out := map[string][]float64{}
	fprintf(w, "== Extension: viewport-predictor methods (median accuracy) ==\n")
	fprintf(w, "%-12s", "method")
	for _, win := range windows {
		fprintf(w, " %9s", win)
	}
	fprintf(w, "\n")
	for _, m := range methods {
		row := make([]float64, 0, len(windows))
		fprintf(w, "%-12s", m.name)
		for _, win := range windows {
			var all []float64
			for _, u := range env.Users {
				all = append(all, predict.MethodAccuracy(m.mk(), u, grid, vp, win, 200*time.Millisecond)...)
			}
			med := stats.Median(all)
			row = append(row, med)
			fprintf(w, " %8.1f%%", 100*med)
		}
		fprintf(w, "\n")
		out[m.name] = row
	}
	fprintf(w, "The paper adopts linear regression (as Flare and Pano do); all methods\n")
	fprintf(w, "degrade with the window, which is the premise of Dragonfly's short primary look-ahead.\n")
	return out
}

// ExtDecisionInterval sweeps Dragonfly's refinement interval between the
// paper's 100 ms and the PerChunk extreme, quantifying how much of the
// ablation gap (Fig 12) each refinement step buys.
func ExtDecisionInterval(env *Env, w io.Writer) (map[string]SchemeSummary, error) {
	intervals := []time.Duration{100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond, time.Second}
	extra := map[string]sim.SchemeFactory{}
	var keys []string
	for _, iv := range intervals {
		iv := iv
		key := fmt.Sprintf("dragonfly-%s", iv)
		keys = append(keys, key)
		extra[key] = func() player.Scheme {
			return core.New(core.Options{DecisionInterval: iv, Name: fmt.Sprintf("Dragonfly@%s", iv)})
		}
	}
	res, err := env.sweep(sim.Sweep{
		Videos:     env.Videos,
		Users:      limitUsers(env.Users, 5),
		Bandwidths: limitTraces(env.Belgian, 5),
		Schemes:    keys,
		Extra:      extra,
	})
	if err != nil {
		return nil, err
	}
	out := map[string]SchemeSummary{}
	fprintf(w, "== Extension: decision-interval sweep (100 ms -> per chunk) ==\n")
	fprintf(w, "%-18s %9s %10s %9s\n", "variant", "medPSNR", "skipVP%%", "medWaste")
	for _, iv := range intervals {
		name := fmt.Sprintf("Dragonfly@%s", iv)
		sessions := res[name]
		if sessions == nil {
			continue
		}
		s := Summarize(name, sessions)
		out[name] = s
		skip := stats.Mean(sim.SessionStat(sessions, func(m *player.Metrics) float64 {
			return m.PrimarySkipFramePct()
		}))
		fprintf(w, "%-18s %8.2f  %9.2f  %7.1f%%\n", name, s.Score.Median, skip, s.MedianWastagePct)
	}
	fprintf(w, "Coarser refinement forfeits late, accurate predictions (the Fig 12 PerChunk gap).\n")
	return out, nil
}

// ExtDecodeStage sweeps the client decoder throughput, testing the paper's
// assumption that decode is never the bottleneck (§4.5's testbed
// provisioning).
func ExtDecodeStage(env *Env, w io.Writer) (map[string]SchemeSummary, error) {
	rates := []float64{0, 100, 20, 5} // MB/s of compressed input; 0 = infinite
	out := map[string]SchemeSummary{}
	fprintf(w, "== Extension: client decode-stage sensitivity ==\n")
	fprintf(w, "%-16s %9s %10s %11s\n", "decoder", "medPSNR", "incmpFr%%", "maskShare%%")
	for _, rate := range rates {
		rate := rate
		res, err := env.sweep(sim.Sweep{
			Videos:     env.Videos[:1],
			Users:      limitUsers(env.Users, 3),
			Bandwidths: limitTraces(env.Belgian, 3),
			Schemes:    []string{"dragonfly"},
			Decoder: func() *decoder.Model {
				if rate == 0 {
					return nil
				}
				return &decoder.Model{ThroughputMBps: rate, PerTileOverhead: 200 * time.Microsecond}
			},
		})
		if err != nil {
			return nil, err
		}
		sessions := res["Dragonfly"]
		name := "infinite"
		if rate > 0 {
			name = fmt.Sprintf("%.0f MB/s", rate)
		}
		s := Summarize(name, sessions)
		out[name] = s
		maskShare := stats.Mean(sim.SessionStat(sessions, func(m *player.Metrics) float64 {
			return 100 * m.MaskingShare()
		}))
		fprintf(w, "%-16s %8.2f  %9.3f  %10.2f\n", name, s.Score.Median, s.MedianIncompletePct, maskShare)
	}
	fprintf(w, "Decode only matters once throughput nears the stream rate; the paper's\n")
	fprintf(w, "testbed assumption (decode never binds) holds for realistic decoders.\n")
	return out, nil
}

// ExtRoIGeometry ablates the concentric-RoI design of the location score:
// a single viewport ring, the paper-style three rings, and a wide guard
// band.
func ExtRoIGeometry(env *Env, w io.Writer) (map[string]SchemeSummary, error) {
	variants := []struct {
		key  string
		rois geom.RoISet
	}{
		{"single-ring", geom.RoISet{RadiiDeg: []float64{50}}},
		{"three-rings", geom.DefaultRoIs},
		{"wide-guard", geom.RoISet{RadiiDeg: []float64{25, 50, 85}}},
	}
	extra := map[string]sim.SchemeFactory{}
	var keys []string
	for _, v := range variants {
		v := v
		keys = append(keys, v.key)
		extra[v.key] = func() player.Scheme {
			return core.New(core.Options{RoIs: v.rois, Name: "RoI-" + v.key})
		}
	}
	res, err := env.sweep(sim.Sweep{
		Videos:     env.Videos,
		Users:      limitUsers(env.Users, 5),
		Bandwidths: limitTraces(env.Belgian, 5),
		Schemes:    keys,
		Extra:      extra,
	})
	if err != nil {
		return nil, err
	}
	out := map[string]SchemeSummary{}
	fprintf(w, "== Extension: RoI geometry ablation ==\n")
	fprintf(w, "%-18s %9s %10s %9s\n", "variant", "medPSNR", "p10PSNR", "medWaste")
	for _, v := range variants {
		name := "RoI-" + v.key
		sessions := res[name]
		if sessions == nil {
			continue
		}
		s := Summarize(name, sessions)
		out[name] = s
		fprintf(w, "%-18s %8.2f  %9.2f  %7.1f%%\n", name, s.Score.Median, s.Score.P10, s.MedianWastagePct)
	}
	fprintf(w, "Concentric rings weight central tiles; a wider guard band trades wastage\n")
	fprintf(w, "for robustness to misprediction.\n")
	return out, nil
}

func limitUsers(users []*trace.HeadTrace, n int) []*trace.HeadTrace {
	if len(users) > n {
		return users[:n]
	}
	return users
}

func limitTraces(traces []*trace.BandwidthTrace, n int) []*trace.BandwidthTrace {
	if len(traces) > n {
		return traces[:n]
	}
	return traces
}
