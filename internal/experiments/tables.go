package experiments

import (
	"io"

	"dragonfly/internal/geom"
	"dragonfly/internal/stats"
	"dragonfly/internal/video"
)

// Table1SchemeMatrix prints the design-choice comparison of Table 1,
// derived from the live scheme implementations.
func Table1SchemeMatrix(w io.Writer) {
	fprintf(w, "== Table 1: schemes by design choices ==\n")
	fprintf(w, "%-10s %-9s %-22s %-18s\n", "scheme", "#streams", "refine fetch decision", "skip/stall")
	fprintf(w, "%-10s %-9s %-22s %-18s\n", "Dragonfly", "two", "yes (100 ms)", "utility skip")
	fprintf(w, "%-10s %-9s %-22s %-18s\n", "Two-tier", "two", "no (per chunk)", "stall/passive")
	fprintf(w, "%-10s %-9s %-22s %-18s\n", "Pano", "one", "no (per chunk)", "stall")
	fprintf(w, "%-10s %-9s %-22s %-18s\n", "Flare", "one", "yes (100 ms)", "stall")
}

// Table2VariantMatrix prints the ablation-variant matrix of Table 2.
func Table2VariantMatrix(w io.Writer) {
	fprintf(w, "== Table 2: Dragonfly ablation variants ==\n")
	fprintf(w, "%-12s %-9s %-22s %-18s\n", "variant", "#streams", "refine fetch decision", "skip approach")
	fprintf(w, "%-12s %-9s %-22s %-18s\n", "PassiveSkip", "two", "100 ms", "passive")
	fprintf(w, "%-12s %-9s %-22s %-18s\n", "PerChunk", "two", "per chunk", "utility")
	fprintf(w, "%-12s %-9s %-22s %-18s\n", "NoMask", "one", "100 ms", "utility")
}

// Table3Row reports one video's bitrate calibration.
type Table3Row struct {
	VideoID                    string
	PaperQP42, PaperQP22       float64
	MeasuredQP42, MeasuredQP22 float64
}

// Table3VideoBitrates reproduces Table 3 and Figure 24: per-video median
// full-360° bitrates at the lowest and highest quality, compared with the
// paper's targets; the in-between qualities are printed as the Fig 24
// ladder.
func Table3VideoBitrates(env *Env, w io.Writer) []Table3Row {
	targets := map[string]video.DatasetEntry{}
	for _, e := range video.Table3 {
		targets[e.ID] = e
	}
	fprintf(w, "== Table 3 / Figure 24: video bitrates (median Mbps per quality) ==\n")
	fprintf(w, "%-6s | %8s %8s | %8s %8s %8s %8s %8s\n",
		"video", "QP42*", "QP22*", "QP42", "QP37", "QP32", "QP27", "QP22")
	var rows []Table3Row
	for _, v := range env.Videos {
		row := Table3Row{VideoID: v.VideoID}
		if tgt, ok := targets[v.VideoID]; ok {
			row.PaperQP42, row.PaperQP22 = tgt.QP42Mbps, tgt.QP22Mbps
		}
		row.MeasuredQP42 = v.MedianFull360Mbps(video.Lowest)
		row.MeasuredQP22 = v.MedianFull360Mbps(video.Highest)
		fprintf(w, "%-6s | %8.1f %8.1f |", v.VideoID, row.PaperQP42, row.PaperQP22)
		for q := video.Quality(0); q < video.NumQualities; q++ {
			fprintf(w, " %8.1f", v.MedianFull360Mbps(q))
		}
		fprintf(w, "\n")
		rows = append(rows, row)
	}
	fprintf(w, "(* = paper's Table 3 targets; measured ladder from the synthetic encoder)\n")
	return rows
}

// Fig18QualitySensitivity reproduces the Figure 18 observation: tiles of
// the same video differ sharply in how much quality (PSNR) they gain from
// higher-rate encodings.
func Fig18QualitySensitivity(env *Env, w io.Writer) (low, high float64) {
	v := env.Videos[0]
	var spreads []float64
	for t := 0; t < v.NumTiles(); t++ {
		spreads = append(spreads, video.QualitySensitivity(v, 0, geom.TileID(t)))
	}
	low = stats.Percentile(spreads, 5)
	high = stats.Percentile(spreads, 95)
	fprintf(w, "== Figure 18: per-tile quality sensitivity (%s, chunk 0) ==\n", v.VideoID)
	fprintf(w, "PSNR spread (QP22 - QP42) across tiles: p5 %.1f dB, median %.1f dB, p95 %.1f dB\n",
		low, stats.Median(spreads), high)
	fprintf(w, "Paper: some tiles are far more quality sensitive than others, motivating Q_iq.\n")
	return low, high
}
