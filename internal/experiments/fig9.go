package experiments

import (
	"io"

	"dragonfly/internal/player"
	"dragonfly/internal/sim"
	"dragonfly/internal/stats"
)

// SchemeSummary condenses one scheme's sessions into the Fig 9 statistics.
type SchemeSummary struct {
	Name string

	// Score is the distribution of per-frame viewport quality pooled over
	// all sessions (Fig 9a's CDF).
	Score stats.Summary

	// MedianRebufferPct / P90RebufferPct summarize per-session rebuffering
	// ratios; MedianIncompletePct the per-session incomplete-frame
	// percentage (Fig 9b).
	MedianRebufferPct      float64
	P90RebufferPct         float64
	SessionsWithRebuf      float64 // fraction of sessions with >= 1 stall
	MedianIncompletePct    float64
	SessionsWithIncomplete float64

	// MedianWastagePct is the per-session bandwidth wastage (Fig 9c).
	MedianWastagePct float64

	Sessions int
}

// Summarize computes a SchemeSummary from session metrics.
func Summarize(name string, sessions []*player.Metrics) SchemeSummary {
	rebuf := sim.SessionStat(sessions, func(m *player.Metrics) float64 { return 100 * m.RebufferRatio() })
	incomplete := sim.SessionStat(sessions, func(m *player.Metrics) float64 { return m.IncompleteFramePct() })
	waste := sim.SessionStat(sessions, func(m *player.Metrics) float64 { return m.WastagePct() })
	return SchemeSummary{
		Name:                   name,
		Score:                  stats.Summarize(sim.PooledFrameScores(sessions)),
		MedianRebufferPct:      stats.Median(rebuf),
		P90RebufferPct:         stats.Percentile(rebuf, 90),
		SessionsWithRebuf:      stats.FractionAbove(rebuf, 0),
		MedianIncompletePct:    stats.Median(incomplete),
		SessionsWithIncomplete: stats.FractionAbove(incomplete, 0),
		MedianWastagePct:       stats.Median(waste),
		Sessions:               len(sessions),
	}
}

// Fig9Result holds the main-comparison outcome.
type Fig9Result struct {
	Schemes map[string]SchemeSummary
	// Raw keeps the sessions for downstream experiments (Fig 13 reuses the
	// Fig 9 sweep).
	Raw sim.Results
}

// Fig9MainComparison reproduces Figure 9: Dragonfly vs Flare, Pano and
// Two-tier on the Belgian traces, plus the 1-second look-ahead variants of
// the wastage discussion (§4.3).
func Fig9MainComparison(env *Env, w io.Writer) (*Fig9Result, error) {
	res, err := env.sweep(sim.Sweep{
		Videos:     env.Videos,
		Users:      env.Users,
		Bandwidths: env.Belgian,
		Schemes:    []string{"dragonfly", "flare", "pano", "twotier", "flare-1s", "pano-1s"},
	})
	if err != nil {
		return nil, err
	}
	out := &Fig9Result{Schemes: map[string]SchemeSummary{}, Raw: res}
	for name, sessions := range res {
		out.Schemes[name] = Summarize(name, sessions)
	}
	printFig9(w, out)
	if env.CSVDir != "" {
		if err := DumpResultCDFs(env.CSVDir, "fig9", res); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func printFig9(w io.Writer, r *Fig9Result) {
	fprintf(w, "== Figure 9: main comparison (Belgian 4G traces) ==\n")
	fprintf(w, "Paper: Dragonfly median PSNR +1.72 dB vs Flare, +2.5 dB vs Pano, +4.5 dB vs Two-tier;\n")
	fprintf(w, "       99%% of Flare / 50%% of Pano sessions rebuffer, Dragonfly none incomplete;\n")
	fprintf(w, "       median wastage: Pano 61.3%%, Flare 55.7%% (38.3%% at 1 s), Dragonfly & Two-tier lower.\n\n")
	fprintf(w, "%-12s %9s %9s %9s | %8s %8s %9s | %9s %9s | %8s\n",
		"scheme", "medPSNR", "p10PSNR", "p90PSNR", "medRebuf", "p90Rebuf", "sess.rebuf", "medIncmp", "sess.incmp", "medWaste")
	for _, name := range sortedNames(r.Schemes) {
		s := r.Schemes[name]
		fprintf(w, "%-12s %8.2f  %8.2f  %8.2f  | %7.2f%% %7.2f%% %8.0f%%  | %8.2f%% %8.0f%%  | %6.1f%%\n",
			s.Name, s.Score.Median, s.Score.P10, s.Score.P90,
			s.MedianRebufferPct, s.P90RebufferPct, 100*s.SessionsWithRebuf,
			s.MedianIncompletePct, 100*s.SessionsWithIncomplete,
			s.MedianWastagePct)
	}
	d, okD := r.Schemes["Dragonfly"]
	if okD {
		fprintf(w, "\nMeasured median-PSNR gains of Dragonfly:")
		for _, base := range []string{"Flare", "Pano", "Two-tier"} {
			if b, ok := r.Schemes[base]; ok {
				fprintf(w, "  vs %s: %+.2f dB", base, d.Score.Median-b.Score.Median)
			}
		}
		fprintf(w, "\n")
	}
}
