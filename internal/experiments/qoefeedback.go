package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"dragonfly/internal/client"
	"dragonfly/internal/core"
	"dragonfly/internal/ingest"
	"dragonfly/internal/netem"
	"dragonfly/internal/obs"
	"dragonfly/internal/player"
	"dragonfly/internal/server"
	"dragonfly/internal/store"
	"dragonfly/internal/trace"
	"dragonfly/internal/video"
)

// QoEFeedbackParams scales the QoE feedback-loop experiment; the zero
// value runs the acceptance configuration.
type QoEFeedbackParams struct {
	SessionsPerCohort int // sessions per cohort per phase (default 3)
	Chunks            int // video length in chunks/seconds (default 3)
	Seed              int64
}

// QoEFeedbackOutcome is the accounting of one run: Phase A proves the
// ingest rollup's quantiles against exact per-session statistics, Phase B
// proves the closed loop steers shedding apart for over- vs under-budget
// cohorts.
type QoEFeedbackOutcome struct {
	OverCohort, UnderCohort string

	// Phase A: rollup accuracy.
	OverP50DB, UnderP50DB float64 // rollup medians per cohort
	EnvelopeDB            float64 // documented quantile error bound (sketch bin width)
	MaxQuantileErrDB      float64 // worst |rollup - exact| over p10/p50/p90, both cohorts
	QualitySamples        uint64  // EvQuality events folded

	// Phase B: the closed loop.
	TargetDB              float64 // quality budget handed to the feedback poller
	OverScale, UnderScale float64 // cohort shed-budget scales the servers applied
	OverShed, UnderShed   int64   // shed payload bytes per server (identical workloads)
	OverScaledInstalls    int64
	UnderScaledInstalls   int64
	ServerTraceSessions   int64  // server-view traces folded back through a watcher
	ServerTraceShedFolded uint64 // EvShed events those traces carried for the over cohort
	ServerTraceShedP50    float64
}

// qoeRig is a minimal single-instance server endpoint: every dial spawns a
// fresh shaped pipe served by the same server (no restarts — the chaos
// rigs cover that; here the subject is the feedback loop).
type qoeRig struct {
	srv  *server.Server
	link netem.Link
	ctx  context.Context
}

func (r *qoeRig) dial() (net.Conn, error) {
	clientConn, serverConn := netem.Pipe(r.link)
	go func() {
		defer serverConn.Close()
		_ = r.srv.HandleConnContext(r.ctx, serverConn)
	}()
	return clientConn, nil
}

// qoeSession streams one traced session and returns its metrics and trace.
func qoeSession(rig *qoeRig, videoID, cohort string, head *trace.HeadTrace, seed int64) (*player.Metrics, *obs.Trace, error) {
	tr := obs.NewTrace(0)
	met, err := client.PlayResilient(rig.dial, videoID, head, core.NewDefault(), client.PlayOptions{
		Reconnect: client.ReconnectPolicy{
			MaxAttempts:  4,
			BaseDelay:    20 * time.Millisecond,
			MaxDelay:     200 * time.Millisecond,
			ReadTimeout:  500 * time.Millisecond,
			WriteTimeout: 250 * time.Millisecond,
			Seed:         seed,
		},
		Trace:  tr,
		Cohort: cohort,
	})
	return met, tr, err
}

// ExtQoEFeedback runs the fleet QoE feedback-loop proof end to end:
// traced client sessions on a fast and a slow link push JSONL traces to a
// live ingest service, whose /rollup quantiles are checked against the
// exact pooled per-session statistics within the documented envelope
// (Phase A); then two identical servers — one per cohort, same tight
// queue budget, same workload, different cohort label — poll that rollup
// through ingest.Feedback and the over-budget cohort's server measurably
// sheds more than the under-budget one's (Phase B). Server-view traces
// written to a TraceDir are folded back through a directory watcher to
// close the server half of the pipeline.
func ExtQoEFeedback(env *Env, w io.Writer) (QoEFeedbackOutcome, error) {
	return extQoEFeedback(env, w, QoEFeedbackParams{})
}

func extQoEFeedback(_ *Env, w io.Writer, p QoEFeedbackParams) (QoEFeedbackOutcome, error) {
	if p.SessionsPerCohort <= 0 {
		p.SessionsPerCohort = 3
	}
	if p.Chunks <= 0 {
		p.Chunks = 3
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	out := QoEFeedbackOutcome{OverCohort: "high:fast", UnderCohort: "low:slow"}

	m := video.Generate(video.GenParams{
		ID: "qoe", Rows: 6, Cols: 6, NumChunks: p.Chunks,
		TargetQP42Mbps: 0.8, TargetQP22Mbps: 6, Seed: 77,
	})
	store.Shared(m) // pre-warm once; both phases' servers serve from it
	videoDur := time.Duration(p.Chunks) * time.Second

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// The ingest tier: one aggregator serving /ingest + /rollup.
	ingReg := obs.NewRegistry()
	cfg := ingest.DefaultConfig()
	cfg.Obs = ingReg
	agg := ingest.New(cfg)
	ingAddr, _, err := agg.Serve(ctx, "127.0.0.1:0")
	if err != nil {
		return out, err
	}
	ingURL := "http://" + ingAddr.String()
	// Traces travel through the hardened pusher, not a bare POST: the
	// same bounded-retry path production producers use.
	pusher := ingest.NewPusher(ingest.PushConfig{URL: ingURL + "/ingest", Seed: p.Seed, Obs: ingReg})

	// ---- Phase A: trace firehose in, rollup quantiles out. -------------
	// One cohort streams over a fast link, the other over a starved one,
	// so their viewport-quality distributions separate; every session's
	// trace is pushed over HTTP, and the rollup must reproduce the exact
	// pooled percentiles within the documented envelope.
	fast := &qoeRig{srv: phaseServer(m, 0, ""), ctx: ctx,
		link: netem.Link{Trace: &trace.BandwidthTrace{SamplePeriod: time.Second, Mbps: []float64{20}}}}
	slow := &qoeRig{srv: phaseServer(m, 0, ""), ctx: ctx,
		link: netem.Link{Trace: &trace.BandwidthTrace{SamplePeriod: time.Second, Mbps: []float64{1.5}}}}

	type cohortRun struct {
		rig    *qoeRig
		cohort string
		class  trace.MotionClass
	}
	runs := []cohortRun{
		{fast, out.OverCohort, trace.MotionHigh},
		{slow, out.UnderCohort, trace.MotionLow},
	}
	exact := map[string][]float64{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	errc := make(chan error, 2*p.SessionsPerCohort)
	for _, r := range runs {
		for i := 0; i < p.SessionsPerCohort; i++ {
			wg.Add(1)
			go func(r cohortRun, i int) {
				defer wg.Done()
				head := trace.GenerateHead(trace.HeadGenParams{
					UserID: fmt.Sprintf("qoe-%s-%d", r.cohort, i), Class: r.class,
					Duration: videoDur + time.Second, Seed: p.Seed + int64(i),
				})
				met, tr, err := qoeSession(r.rig, "qoe", r.cohort, head, p.Seed+int64(i))
				if err != nil {
					errc <- fmt.Errorf("%s session %d: %w", r.cohort, i, err)
					return
				}
				var buf bytes.Buffer
				if err := tr.WriteJSONL(&buf); err != nil {
					errc <- err
					return
				}
				if err := pusher.Push(ctx, buf.Bytes()); err != nil {
					errc <- fmt.Errorf("push trace: %w", err)
					return
				}
				// The exact per-session statistic the rollup approximates:
				// the wire carries centi-dB (score truncated to 0.01 dB), so
				// pool the same rounding the trace saw.
				mu.Lock()
				for _, s := range met.FrameScore {
					exact[r.cohort] = append(exact[r.cohort], float64(int64(s*100))/100)
				}
				mu.Unlock()
			}(r, i)
		}
	}
	wg.Wait()
	select {
	case err := <-errc:
		return out, err
	default:
	}

	ru, err := fetchRollup(ingURL)
	if err != nil {
		return out, err
	}
	out.EnvelopeDB = ru.QualityEnvDB
	for cohort, samples := range exact {
		cr, ok := ru.Cohorts[cohort]
		if !ok {
			return out, fmt.Errorf("cohort %q missing from rollup", cohort)
		}
		if cr.QualityDB.Count != uint64(len(samples)) {
			return out, fmt.Errorf("cohort %q: rollup folded %d quality samples, clients rendered %d",
				cohort, cr.QualityDB.Count, len(samples))
		}
		out.QualitySamples += cr.QualityDB.Count
		for _, q := range []struct {
			p   float64
			got float64
		}{{10, cr.QualityDB.P10}, {50, cr.QualityDB.P50}, {90, cr.QualityDB.P90}} {
			diff := math.Abs(q.got - nearestRank(samples, q.p))
			if diff > out.MaxQuantileErrDB {
				out.MaxQuantileErrDB = diff
			}
		}
	}
	if out.MaxQuantileErrDB > out.EnvelopeDB {
		return out, fmt.Errorf("rollup quantile error %.3f dB exceeds envelope %.3f dB",
			out.MaxQuantileErrDB, out.EnvelopeDB)
	}
	out.OverP50DB = ru.Cohorts[out.OverCohort].QualityDB.P50
	out.UnderP50DB = ru.Cohorts[out.UnderCohort].QualityDB.P50
	if out.OverP50DB <= out.UnderP50DB {
		return out, fmt.Errorf("cohorts failed to separate: fast p50 %.2f <= slow p50 %.2f",
			out.OverP50DB, out.UnderP50DB)
	}

	// ---- Phase B: close the loop. --------------------------------------
	// Budget midway between the cohort medians: the fast cohort is over
	// it (shed harder), the slow one under (relax). Two identical servers
	// with the same tight byte budget serve identical workloads — the
	// only difference is the cohort label their clients announce.
	out.TargetDB = (out.OverP50DB + out.UnderP50DB) / 2
	fbReg := obs.NewRegistry()
	fb := ingest.NewFeedback(ingest.FeedbackConfig{
		URL:      ingURL + "/rollup",
		TargetDB: out.TargetDB,
		MaxAge:   time.Minute, // one poll feeds the whole phase
		Obs:      fbReg,
	})
	if err := fb.Poll(ctx); err != nil {
		return out, fmt.Errorf("feedback poll: %w", err)
	}
	out.OverScale = fb.CohortScale(out.OverCohort)
	out.UnderScale = fb.CohortScale(out.UnderCohort)

	traceRoot, err := os.MkdirTemp("", "dragonfly-qoe-")
	if err != nil {
		return out, err
	}
	defer os.RemoveAll(traceRoot)

	// A byte budget well under one chunk's fetch list, so the shedder is
	// active at neutral scale and the cohort scales visibly modulate it.
	const phaseBBudget = 192 << 10
	link := netem.Link{Trace: &trace.BandwidthTrace{SamplePeriod: time.Second, Mbps: []float64{6}}}
	overRig := &qoeRig{srv: phaseServer(m, phaseBBudget, filepath.Join(traceRoot, "over")), ctx: ctx, link: link}
	underRig := &qoeRig{srv: phaseServer(m, phaseBBudget, filepath.Join(traceRoot, "under")), ctx: ctx, link: link}
	overRig.srv.QoE = fb
	underRig.srv.QoE = fb

	phaseB := []cohortRun{
		{overRig, out.OverCohort, trace.MotionMedium},
		{underRig, out.UnderCohort, trace.MotionMedium},
	}
	for _, r := range phaseB {
		for i := 0; i < p.SessionsPerCohort; i++ {
			wg.Add(1)
			go func(r cohortRun, i int) {
				defer wg.Done()
				// Identical workloads: same head trace and seed per index,
				// only the cohort label differs.
				head := trace.GenerateHead(trace.HeadGenParams{
					UserID: fmt.Sprintf("qoe-b-%d", i), Class: r.class,
					Duration: videoDur + time.Second, Seed: p.Seed + 100 + int64(i),
				})
				if _, _, err := qoeSession(r.rig, "qoe", r.cohort, head, p.Seed+100+int64(i)); err != nil {
					errc <- fmt.Errorf("phase B %s session %d: %w", r.cohort, i, err)
				}
			}(r, i)
		}
	}
	wg.Wait()
	select {
	case err := <-errc:
		return out, err
	default:
	}

	overC := overRig.srv.Counters()
	underC := underRig.srv.Counters()
	out.OverShed = overC.ShedBytes
	out.UnderShed = underC.ShedBytes
	out.OverScaledInstalls = overC.QoEScaledInstalls
	out.UnderScaledInstalls = underC.QoEScaledInstalls

	// Fold the server-view traces back through the watch path: the same
	// files a production ingest tier would tail with -watch.
	srvAgg := ingest.New(ingest.Config{})
	for _, dir := range []string{filepath.Join(traceRoot, "over"), filepath.Join(traceRoot, "under")} {
		if err := ingest.NewWatcher(srvAgg, dir, time.Hour).Scan(); err != nil {
			return out, fmt.Errorf("watch %s: %w", dir, err)
		}
	}
	sru := srvAgg.Rollup()
	for _, cr := range sru.Cohorts {
		out.ServerTraceSessions += cr.Sessions
	}
	if cr, ok := sru.Cohorts[out.OverCohort]; ok {
		out.ServerTraceShedFolded = cr.ShedBytes.Count
		out.ServerTraceShedP50 = cr.ShedBytes.P50
	}

	fprintf(w, "== Extension: qoe-feedback (trace ingest -> cohort rollup -> shed-budget loop) ==\n")
	fprintf(w, "%d sessions/cohort/phase, %d-chunk video; ingest at %s.\n\n", p.SessionsPerCohort, p.Chunks, ingURL)
	fprintf(w, "%-30s %14s\n", "metric", "value")
	fprintf(w, "%-30s %14d\n", "quality samples folded", out.QualitySamples)
	fprintf(w, "%-30s %11.3f dB\n", "rollup quantile envelope", out.EnvelopeDB)
	fprintf(w, "%-30s %11.3f dB\n", "worst quantile error", out.MaxQuantileErrDB)
	fprintf(w, "%-30s %11.2f dB\n", out.OverCohort+" p50", out.OverP50DB)
	fprintf(w, "%-30s %11.2f dB\n", out.UnderCohort+" p50", out.UnderP50DB)
	fprintf(w, "%-30s %11.2f dB\n", "quality budget (target)", out.TargetDB)
	fprintf(w, "%-30s %14.3f\n", out.OverCohort+" scale", out.OverScale)
	fprintf(w, "%-30s %14.3f\n", out.UnderCohort+" scale", out.UnderScale)
	fprintf(w, "%-30s %14d\n", "over-budget shed bytes", out.OverShed)
	fprintf(w, "%-30s %14d\n", "under-budget shed bytes", out.UnderShed)
	fprintf(w, "%-30s %14d\n", "scaled installs (over)", out.OverScaledInstalls)
	fprintf(w, "%-30s %14d\n", "scaled installs (under)", out.UnderScaledInstalls)
	fprintf(w, "%-30s %14d\n", "server traces refolded", out.ServerTraceSessions)
	fprintf(w, "%-30s %14d\n", "server shed events folded", out.ServerTraceShedFolded)
	return out, nil
}

// nearestRank is the exact nearest-rank percentile — the rank convention
// the rollup sketches use, and the one the documented envelope (one bin
// width) is stated against. An interpolating estimator (stats.Percentile)
// can sit anywhere between two tied plateaus of a discrete distribution,
// which no binned sketch can reproduce; nearest-rank is exactly
// recoverable to within a bin.
func nearestRank(samples []float64, p float64) float64 {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	rank := int(math.Ceil(p / 100 * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}

// phaseServer builds one experiment server: tight budgets come from the
// caller; traceDir empty disables server-view tracing.
func phaseServer(m *video.Manifest, maxQueueBytes int64, traceDir string) *server.Server {
	s := server.New(m)
	s.Heartbeat = 100 * time.Millisecond
	s.WriteTimeout = 250 * time.Millisecond
	s.MaxQueueBytes = maxQueueBytes
	s.TraceDir = traceDir
	return s
}

func fetchRollup(baseURL string) (ingest.Rollup, error) {
	var ru ingest.Rollup
	resp, err := http.Get(baseURL + "/rollup")
	if err != nil {
		return ru, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ru, fmt.Errorf("rollup: %s", resp.Status)
	}
	return ru, json.NewDecoder(resp.Body).Decode(&ru)
}
