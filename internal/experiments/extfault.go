package experiments

import (
	"fmt"
	"io"
	"net"
	"time"

	"dragonfly/internal/client"
	"dragonfly/internal/core"
	"dragonfly/internal/netem"
	"dragonfly/internal/player"
	"dragonfly/internal/server"
	"dragonfly/internal/trace"
	"dragonfly/internal/video"
)

// ExtFaultParams scales the fault-tolerance experiment; the zero value runs
// the quick default (one short video, three mid-stream disconnects).
type ExtFaultParams struct {
	Chunks      int // video length in chunks/seconds (default 3)
	Disconnects int // hard link cuts per session (default 3)
	Seed        int64
}

// ExtFaultOutcome summarizes one live session under the fault script.
type ExtFaultOutcome struct {
	Metrics  *player.Metrics
	Counters server.Counters
}

// ExtFaultTolerance runs the robustness extension: live client/server
// sessions over a shaped link that is hard-disconnected mid-stream, once
// with the reconnect/resume machinery on and once with a client that cannot
// redial. Unlike the paper's experiments this exercises the real network
// path in wall-clock time, so it is deliberately small.
func ExtFaultTolerance(env *Env, w io.Writer) (map[string]ExtFaultOutcome, error) {
	return extFaultTolerance(env, w, ExtFaultParams{})
}

func extFaultTolerance(_ *Env, w io.Writer, p ExtFaultParams) (map[string]ExtFaultOutcome, error) {
	if p.Chunks <= 0 {
		p.Chunks = 3
	}
	if p.Disconnects <= 0 {
		p.Disconnects = 3
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	m := video.Generate(video.GenParams{
		ID: "fault", Rows: 6, Cols: 6, NumChunks: p.Chunks,
		TargetQP42Mbps: 0.8, TargetQP22Mbps: 6, Seed: 77,
	})
	videoDur := time.Duration(p.Chunks) * time.Second
	head := trace.GenerateHead(trace.HeadGenParams{
		UserID: "fault-user", Class: trace.MotionLow, Duration: videoDur + time.Second, Seed: p.Seed,
	})
	// Cut the link early and often: the first disconnect lands while most
	// of the video is still on the server, so giving up is visibly costly.
	sched := &netem.FaultSchedule{}
	for i := 0; i < p.Disconnects; i++ {
		at := videoDur / 2 * time.Duration(i+1) / time.Duration(p.Disconnects+1)
		sched.Events = append(sched.Events, netem.FaultEvent{At: at, Kind: netem.FaultDisconnect})
	}

	run := func(reconnect bool) (ExtFaultOutcome, error) {
		srv := server.New(m)
		srv.Heartbeat = 100 * time.Millisecond
		fl := &netem.FaultLink{
			Link:     netem.Link{Trace: &trace.BandwidthTrace{SamplePeriod: time.Second, Mbps: []float64{8}}},
			Schedule: sched,
		}
		defer fl.Stop()
		dials := 0
		dial := func() (net.Conn, error) {
			dials++
			if !reconnect && dials > 1 {
				return nil, fmt.Errorf("reconnect disabled")
			}
			clientConn, serverConn := fl.Pipe()
			go func() {
				defer serverConn.Close()
				_ = srv.HandleConn(serverConn)
			}()
			return clientConn, nil
		}
		met, err := client.PlayResilient(dial, "fault", head, core.NewDefault(), client.PlayOptions{
			Reconnect: client.ReconnectPolicy{
				MaxAttempts: 6,
				BaseDelay:   20 * time.Millisecond,
				MaxDelay:    200 * time.Millisecond,
				ReadTimeout: 400 * time.Millisecond,
				Seed:        p.Seed,
			},
		})
		if err != nil {
			return ExtFaultOutcome{}, err
		}
		return ExtFaultOutcome{Metrics: met, Counters: srv.Counters()}, nil
	}

	resilient, err := run(true)
	if err != nil {
		return nil, err
	}
	cutoff, err := run(false)
	if err != nil {
		return nil, err
	}
	out := map[string]ExtFaultOutcome{"resilient": resilient, "no-reconnect": cutoff}

	fprintf(w, "== Extension: fault tolerance (reconnect + resume) ==\n")
	fprintf(w, "Live sessions over a %d-cut link; same fault script for both variants.\n\n", sched.Disconnects())
	fprintf(w, "%-14s %8s %9s %8s %8s %9s %8s %9s\n",
		"variant", "medPSNR", "masked%", "outage", "resumed", "reTxPrim", "rebuf", "frames")
	for _, name := range sortedNames(out) {
		o := out[name]
		met := o.Metrics
		// Primary transmissions beyond one per (chunk,tile) slot would mean
		// the resume summaries failed to suppress re-sends.
		excess := o.Counters.PrimarySent - int64(m.NumChunks*m.NumTiles())
		if excess < 0 {
			excess = 0
		}
		fprintf(w, "%-14s %7.2f  %8.1f  %7s  %7d  %8d  %7s  %8d\n",
			name, met.MedianScore(), 100*met.MaskingShare(),
			met.OutageDuration.Round(time.Millisecond), met.ResumedTiles,
			excess, met.RebufferDuration.Round(time.Millisecond), met.TotalFrames)
	}
	fprintf(w, "\nresilient: %d disconnects absorbed, %d resumes, %d dedup entries restored\n",
		resilient.Metrics.Disconnects, resilient.Counters.Resumes, resilient.Counters.ResumedItems)
	return out, nil
}
