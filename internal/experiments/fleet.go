package experiments

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"dragonfly/internal/balancer"
	"dragonfly/internal/client"
	"dragonfly/internal/core"
	"dragonfly/internal/netem"
	"dragonfly/internal/obs"
	"dragonfly/internal/player"
	"dragonfly/internal/server"
	"dragonfly/internal/store"
	"dragonfly/internal/trace"
	"dragonfly/internal/video"
)

// FleetChaosParams scales the fleet-mode chaos experiment; the zero value
// runs the acceptance configuration: 3 servers, 8 concurrent clients, one
// server killed and cold-restarted, a second drained, all mid-stream.
type FleetChaosParams struct {
	Servers int // fleet size (default 3)
	Clients int // concurrent sessions (default 8)
	Chunks  int // video length in chunks/seconds (default 3)
	Seed    int64

	// Balancer health-check knobs; the probe budget asserted on is
	// FailThreshold x (ProbeInterval + ProbeTimeout) plus slack.
	ProbeInterval time.Duration // default 50 ms
	ProbeTimeout  time.Duration // default 250 ms
	FailThreshold int           // default 2

	// Fault schedule, relative to experiment start. Zero means default.
	KillAt    time.Duration // kill server 1 abruptly (default 600 ms)
	DrainAt   time.Duration // drain server 2 gracefully (default 1 s)
	RestartAt time.Duration // cold-restart server 1 (default 1.4 s)
	Kill2At   time.Duration // kill server 0, forcing failover onto the restarted instance (default 1.9 s)
}

// FleetChaosOutcome is the fleet-wide accounting of one run.
type FleetChaosOutcome struct {
	Servers, Clients int
	Completed        int // sessions that rendered every frame untruncated
	Instances        int // server instances across all restarts

	// Totals sums send accounting over every instance of every backend.
	// ExcessPrimary is the fleet-wide duplicate-send figure: primary
	// transmissions beyond one per (client, chunk, tile) slot. The resume
	// bitmap is the only session state that survives a host death, so any
	// excess means failover re-sent tiles a client already held.
	Totals        server.Counters
	ExcessPrimary int64

	CorruptTiles  int64         // corrupt tiles rendered, summed over clients
	RebufferTotal time.Duration // post-startup stall time, summed over clients
	Disconnects   int64         // mid-stream link losses survived
	BusyRetries   int64         // busy rejections absorbed with backoff
	Routed        int64         // sessions the balancer spliced to a backend

	// UnhealthyAfter is how long the balancer took to mark the first
	// killed server unhealthy; the experiment fails if it exceeds
	// ProbeBudget. Recovered reports the restarted server was routable
	// again by the end of the run.
	UnhealthyAfter time.Duration
	ProbeBudget    time.Duration
	Recovered      bool
}

// rigBackend is one fleet member inside the in-memory rig: a restartable
// server "process" reachable through shaped pipes. All instances of one
// backend share an obs registry, so the balancer scrapes one admin
// endpoint per member across restarts — exactly like a supervised process
// coming back on the same port.
type rigBackend struct {
	addr string
	m    *video.Manifest
	link netem.Link
	reg  *obs.Registry
	ctx  context.Context

	mu        sync.Mutex
	cur       *server.Server
	alive     bool
	conns     []net.Conn
	instances []*server.Server
}

func newRigBackend(ctx context.Context, addr string, m *video.Manifest, link netem.Link) *rigBackend {
	b := &rigBackend{addr: addr, m: m, link: link, reg: obs.NewRegistry(), ctx: ctx}
	b.cur = b.fresh()
	b.alive = true
	b.instances = []*server.Server{b.cur}
	return b
}

func (b *rigBackend) fresh() *server.Server {
	s := server.New(b.m)
	s.Heartbeat = 100 * time.Millisecond
	// Short write deadline: over unbuffered pipes a busy fast-reject and a
	// client hello can write head-on; the deadline turns that into a
	// retryable failure instead of a wedge.
	s.WriteTimeout = 250 * time.Millisecond
	s.Obs = b.reg
	return s
}

// dial connects like TCP would: refused while the "process" is down,
// otherwise a fresh shaped pipe served by the current instance.
func (b *rigBackend) dial() (net.Conn, error) {
	b.mu.Lock()
	if !b.alive {
		b.mu.Unlock()
		return nil, fmt.Errorf("%s: connection refused", b.addr)
	}
	s := b.cur
	clientConn, serverConn := netem.Pipe(b.link)
	b.conns = append(b.conns, serverConn)
	b.mu.Unlock()
	go func() {
		defer serverConn.Close()
		_ = s.HandleConnContext(b.ctx, serverConn)
	}()
	return clientConn, nil
}

// kill downs the process abruptly: dials are refused and every live
// connection is severed mid-frame.
func (b *rigBackend) kill() {
	b.mu.Lock()
	b.alive = false
	dead := b.conns
	b.conns = nil
	b.mu.Unlock()
	for _, c := range dead {
		c.Close()
	}
}

// restart brings the backend up cold: a new instance whose only path back
// to any session's state is the client's resume bitmap.
func (b *rigBackend) restart() {
	b.mu.Lock()
	b.cur = b.fresh()
	b.instances = append(b.instances, b.cur)
	b.alive = true
	b.mu.Unlock()
}

func (b *rigBackend) drain() {
	b.mu.Lock()
	s := b.cur
	b.mu.Unlock()
	s.Drain()
}

func (b *rigBackend) totals() (server.Counters, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	var t server.Counters
	for _, s := range b.instances {
		c := s.Counters()
		t.PrimarySent += c.PrimarySent
		t.MaskTileSent += c.MaskTileSent
		t.MaskFullSent += c.MaskFullSent
		t.BytesSent += c.BytesSent
		t.Resumes += c.Resumes
		t.ResumedItems += c.ResumedItems
		t.CorruptFrames += c.CorruptFrames
		t.RejectedConns += c.RejectedConns
		t.Probes += c.Probes
	}
	return t, len(b.instances)
}

// ExtFleetChaos runs the fleet-mode chaos proof: a balancer fronting three
// servers, eight concurrent clients streaming (half through the balancer,
// half on static multi-address failover) while one server is killed and
// cold-restarted, a second is drained mid-stream, and a third is killed
// once the restarted one is back — asserting zero duplicate primary sends
// summed fleet-wide, zero corrupt tiles, zero rebuffering, and dead-member
// detection within the probe budget.
func ExtFleetChaos(env *Env, w io.Writer) (FleetChaosOutcome, error) {
	return extFleetChaos(env, w, FleetChaosParams{})
}

func extFleetChaos(_ *Env, w io.Writer, p FleetChaosParams) (FleetChaosOutcome, error) {
	if p.Servers <= 0 {
		p.Servers = 3
	}
	if p.Clients <= 0 {
		p.Clients = 8
	}
	if p.Chunks <= 0 {
		p.Chunks = 3
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.ProbeInterval <= 0 {
		p.ProbeInterval = 50 * time.Millisecond
	}
	if p.ProbeTimeout <= 0 {
		p.ProbeTimeout = 250 * time.Millisecond
	}
	if p.FailThreshold <= 0 {
		p.FailThreshold = 2
	}
	if p.KillAt <= 0 {
		p.KillAt = 600 * time.Millisecond
	}
	if p.DrainAt <= 0 {
		p.DrainAt = time.Second
	}
	if p.RestartAt <= 0 {
		p.RestartAt = 1400 * time.Millisecond
	}
	if p.Kill2At <= 0 {
		p.Kill2At = 1900 * time.Millisecond
	}
	out := FleetChaosOutcome{Servers: p.Servers, Clients: p.Clients}
	out.ProbeBudget = time.Duration(p.FailThreshold)*(p.ProbeInterval+p.ProbeTimeout) + 150*time.Millisecond

	m := video.Generate(video.GenParams{
		ID: "fleet", Rows: 6, Cols: 6, NumChunks: p.Chunks,
		TargetQP42Mbps: 0.8, TargetQP22Mbps: 6, Seed: 77,
	})
	// Pre-warm the shared tile store once before the fleet fans out — the
	// same pattern as sim's table pre-warm: every backend (and every
	// cold-restarted instance) then serves from the already-built frames
	// instead of paying the per-manifest CRC framing cost inside the run.
	store.Shared(m)
	videoDur := time.Duration(p.Chunks) * time.Second
	link := netem.Link{Trace: &trace.BandwidthTrace{SamplePeriod: time.Second, Mbps: []float64{16}}}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// The fleet, each member with an obs admin endpoint the balancer
	// scrapes for queue depth.
	backends := make(map[string]*rigBackend, p.Servers)
	var cfgs []balancer.BackendConfig
	var order []*rigBackend
	for i := 0; i < p.Servers; i++ {
		addr := fmt.Sprintf("s%d", i)
		b := newRigBackend(ctx, addr, m, link)
		backends[addr] = b
		order = append(order, b)
		adminListen, _, err := obs.ServeAdmin(ctx, "127.0.0.1:0", b.reg)
		if err != nil {
			return out, err
		}
		cfgs = append(cfgs, balancer.BackendConfig{Addr: addr, AdminAddr: adminListen.String()})
	}
	rigDial := func(addr string, _ time.Duration) (net.Conn, error) {
		b := backends[addr]
		if b == nil {
			return nil, fmt.Errorf("%s: no such backend", addr)
		}
		return b.dial()
	}

	lbReg := obs.NewRegistry()
	bl, err := balancer.New(balancer.Config{
		Backends:      cfgs,
		ProbeInterval: p.ProbeInterval,
		ProbeTimeout:  p.ProbeTimeout,
		FailThreshold: p.FailThreshold,
		DialTimeout:   p.ProbeTimeout,
		Obs:           lbReg,
		Dial:          rigDial,
	})
	if err != nil {
		return out, err
	}
	front := netem.NewPipeListener(netem.Link{})
	go func() { _ = bl.Serve(ctx, front) }()

	// Fault schedule. The second kill lands after the first victim's cold
	// restart, so its survivors must resume onto an instance that has no
	// memory of them — the resume bitmap is the proof.
	var unhealthyAt sync.Once
	var unhealthyAfter time.Duration
	var unhealthyMu sync.Mutex
	watchUnhealthy := func(addr string, from time.Time) {
		for time.Since(from) < 5*time.Second {
			for _, st := range bl.Status() {
				if st.Addr == addr && !st.Healthy {
					unhealthyAt.Do(func() {
						unhealthyMu.Lock()
						unhealthyAfter = time.Since(from)
						unhealthyMu.Unlock()
					})
					return
				}
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	victim := order[1%len(order)]
	second := order[0]
	drained := order[2%len(order)]
	timers := []*time.Timer{
		time.AfterFunc(p.KillAt, func() {
			start := time.Now()
			victim.kill()
			go watchUnhealthy(victim.addr, start)
		}),
		time.AfterFunc(p.DrainAt, drained.drain),
		time.AfterFunc(p.RestartAt, victim.restart),
		time.AfterFunc(p.Kill2At, second.kill),
		time.AfterFunc(p.Kill2At+500*time.Millisecond, second.restart),
	}
	defer func() {
		for _, t := range timers {
			t.Stop()
		}
	}()

	// The client fleet: even indexes stream through the balancer, odd
	// indexes use static multi-address failover, each starting its
	// rotation at a different member for spread.
	type result struct {
		met *player.Metrics
		err error
	}
	results := make([]result, p.Clients)
	var wg sync.WaitGroup
	for i := 0; i < p.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var dial client.DialFunc
			if i%2 == 0 {
				dial = front.Dial
			} else {
				addrs := make([]string, p.Servers)
				for j := range addrs {
					addrs[j] = order[(i+j)%p.Servers].addr
				}
				md := &client.MultiDialer{
					Addrs:    addrs,
					Backoff:  20 * time.Millisecond,
					DialAddr: func(addr string, _ time.Duration) (net.Conn, error) { return rigDial(addr, 0) },
				}
				dial = md.Dial
			}
			head := trace.GenerateHead(trace.HeadGenParams{
				UserID: fmt.Sprintf("fleet-user-%d", i), Class: trace.MotionLow,
				Duration: videoDur + time.Second, Seed: p.Seed + int64(i),
			})
			met, err := client.PlayResilient(dial, "fleet", head, core.NewDefault(), client.PlayOptions{
				Reconnect: client.ReconnectPolicy{
					MaxAttempts:  12,
					BaseDelay:    20 * time.Millisecond,
					MaxDelay:     200 * time.Millisecond,
					ReadTimeout:  400 * time.Millisecond,
					WriteTimeout: 250 * time.Millisecond,
					Seed:         p.Seed + int64(i),
				},
			})
			results[i] = result{met, err}
		}(i)
	}
	wg.Wait()

	// The restarted victims must be routable again.
	recoverDeadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(recoverDeadline) && !out.Recovered {
		healthy := 0
		for _, st := range bl.Status() {
			if st.Addr == victim.addr || st.Addr == second.addr {
				if st.Healthy {
					healthy++
				}
			}
		}
		out.Recovered = healthy == 2
		if !out.Recovered {
			time.Sleep(5 * time.Millisecond)
		}
	}
	cancel()

	for i, r := range results {
		if r.err != nil {
			return out, fmt.Errorf("client %d: %w", i, r.err)
		}
		if r.met.TotalFrames == m.NumFrames() && !r.met.Truncated {
			out.Completed++
		}
		out.CorruptTiles += r.met.CorruptTiles
		out.RebufferTotal += r.met.RebufferDuration
		out.Disconnects += int64(r.met.Disconnects)
		out.BusyRetries += r.met.BusyRejects
	}
	for _, b := range order {
		t, n := b.totals()
		out.Instances += n
		out.Totals.PrimarySent += t.PrimarySent
		out.Totals.MaskTileSent += t.MaskTileSent
		out.Totals.MaskFullSent += t.MaskFullSent
		out.Totals.BytesSent += t.BytesSent
		out.Totals.Resumes += t.Resumes
		out.Totals.ResumedItems += t.ResumedItems
		out.Totals.CorruptFrames += t.CorruptFrames
		out.Totals.RejectedConns += t.RejectedConns
		out.Totals.Probes += t.Probes
	}
	budget := int64(p.Clients) * int64(m.NumChunks*m.NumTiles())
	out.ExcessPrimary = out.Totals.PrimarySent - budget
	if out.ExcessPrimary < 0 {
		out.ExcessPrimary = 0
	}
	unhealthyMu.Lock()
	out.UnhealthyAfter = unhealthyAfter
	unhealthyMu.Unlock()
	out.Routed = lbReg.Counter("lb_routed").Value()

	fprintf(w, "== Extension: fleet-chaos (balancer + kill/restart/drain across a fleet) ==\n")
	fprintf(w, "%d servers, %d clients (half via balancer, half static multi-address);\n", p.Servers, p.Clients)
	fprintf(w, "kill@%s drain@%s restart@%s kill2@%s.\n\n",
		p.KillAt, p.DrainAt, p.RestartAt, p.Kill2At)
	fprintf(w, "%-26s %10s\n", "metric", "value")
	fprintf(w, "%-26s %10d\n", "sessions completed", out.Completed)
	fprintf(w, "%-26s %10d\n", "server instances", out.Instances)
	fprintf(w, "%-26s %10d\n", "balancer-routed sessions", out.Routed)
	fprintf(w, "%-26s %10d\n", "disconnects survived", out.Disconnects)
	fprintf(w, "%-26s %10d\n", "resumes", out.Totals.Resumes)
	fprintf(w, "%-26s %10d\n", "dedup entries restored", out.Totals.ResumedItems)
	fprintf(w, "%-26s %10d\n", "busy retries", out.BusyRetries)
	fprintf(w, "%-26s %10d\n", "excess primary sends", out.ExcessPrimary)
	fprintf(w, "%-26s %10d\n", "corrupt tiles rendered", out.CorruptTiles)
	fprintf(w, "%-26s %10s\n", "rebuffer total", out.RebufferTotal.Round(time.Millisecond).String())
	fprintf(w, "%-26s %10s\n", "unhealthy detected in", out.UnhealthyAfter.Round(time.Millisecond).String())
	fprintf(w, "%-26s %10s\n", "probe budget", out.ProbeBudget.Round(time.Millisecond).String())
	fprintf(w, "%-26s %10v\n", "killed members recovered", out.Recovered)
	return out, nil
}
