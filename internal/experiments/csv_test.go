package experiments

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type failingWriter struct {
	budget int // bytes accepted before failing
}

var errDiskFull = errors.New("synthetic disk full")

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.budget <= 0 {
		return 0, errDiskFull
	}
	n := len(p)
	if n > w.budget {
		n = w.budget
	}
	w.budget -= n
	if n < len(p) {
		return n, errDiskFull
	}
	return n, nil
}

// TestWriteCDFPropagatesWriteErrors is the regression test for the
// swallowed-error bug: a failing writer (disk full) used to be ignored,
// producing a silently truncated CSV; now the error surfaces.
func TestWriteCDFPropagatesWriteErrors(t *testing.T) {
	series := map[string][]float64{"a": {1, 2, 3, 4, 5}, "b": {6, 7, 8, 9, 10}}
	if err := writeCDFTo(&failingWriter{budget: 0}, series, 5); !errors.Is(err, errDiskFull) {
		t.Fatalf("header write error swallowed: got %v", err)
	}
	if err := writeCDFTo(&failingWriter{budget: 30}, series, 5); !errors.Is(err, errDiskFull) {
		t.Fatalf("row write error swallowed: got %v", err)
	}
}

func TestWriteCDFCSVCreateError(t *testing.T) {
	dir := t.TempDir()
	// The target path is a directory: os.Create must fail and the error
	// must carry the path.
	err := WriteCDFCSV(dir, map[string][]float64{"a": {1}}, 10)
	if err == nil {
		t.Fatal("creating a CSV over a directory succeeded")
	}
	if !strings.Contains(err.Error(), dir) {
		t.Fatalf("error %q does not name the path", err)
	}
}

func TestWriteCDFCSVRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cdf.csv")
	series := map[string][]float64{"q": {3, 1, 2}, "w": {5, 4}}
	if err := WriteCDFCSV(path, series, 10); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if lines[0] != "q_value,q_frac,w_value,w_frac" {
		t.Fatalf("header = %q", lines[0])
	}
	// 3 rows for q (the longer series), padded for w.
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), data)
	}
	if !strings.HasPrefix(lines[1], "1.0000,") {
		t.Fatalf("first row = %q, want sorted series starting at 1.0000", lines[1])
	}
	if !strings.HasSuffix(lines[3], ",") {
		t.Fatalf("padded row = %q, want trailing empty cells", lines[3])
	}
}
