package experiments

import (
	"io"

	"dragonfly/internal/player"
	"dragonfly/internal/sim"
	"dragonfly/internal/stats"
	"dragonfly/internal/video"
)

// Fig12Result holds the ablation-study outcome (§4.4).
type Fig12Result struct {
	Schemes map[string]SchemeSummary
	// MeanBlankArea per scheme (Fig 12b).
	MeanBlankArea map[string]float64
	Raw           sim.Results
}

// Fig12Ablation reproduces Figure 12: Dragonfly against the Table 2
// variants (PassiveSkip, PerChunk, NoMask) on the Belgian traces. The
// paper: Dragonfly median PSNR +4.8 dB vs PerChunk and +1.6 dB vs
// PassiveSkip; NoMask comparable at the median but with an incomplete-
// viewport tail (~10% of viewports) and the lowest wastage.
func Fig12Ablation(env *Env, w io.Writer) (*Fig12Result, error) {
	res, err := env.sweep(sim.Sweep{
		Videos:     env.Videos,
		Users:      env.Users,
		Bandwidths: env.Belgian,
		Schemes:    []string{"dragonfly", "passiveskip", "perchunk", "nomask"},
	})
	if err != nil {
		return nil, err
	}
	out := &Fig12Result{Schemes: map[string]SchemeSummary{}, MeanBlankArea: map[string]float64{}, Raw: res}
	for name, sessions := range res {
		out.Schemes[name] = Summarize(name, sessions)
		out.MeanBlankArea[name] = stats.Mean(sim.SessionStat(sessions,
			func(m *player.Metrics) float64 { return m.MeanBlankArea() }))
	}
	printFig12(w, out)
	if env.CSVDir != "" {
		if err := DumpResultCDFs(env.CSVDir, "fig12", res); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func printFig12(w io.Writer, r *Fig12Result) {
	fprintf(w, "== Figure 12: ablation study ==\n")
	fprintf(w, "Paper: Dragonfly +4.8 dB vs PerChunk, +1.6 dB vs PassiveSkip (median PSNR);\n")
	fprintf(w, "       NoMask matches the median but ~10%% of its viewports are incomplete;\n")
	fprintf(w, "       NoMask has the lowest wastage (no masking stream).\n\n")
	fprintf(w, "%-12s %9s %9s %9s | %10s %10s | %9s\n",
		"variant", "medPSNR", "p10PSNR", "p1PSNR", "incmpFr%%", "blankArea", "medWaste")
	for _, name := range sortedNames(r.Schemes) {
		s := r.Schemes[name]
		fprintf(w, "%-12s %8.2f  %8.2f  %8.2f  | %9.2f%% %9.4f%% | %7.1f%%\n",
			s.Name, s.Score.Median, s.Score.P10, percentileOfSummaryTail(s),
			s.MedianIncompletePct, 100*r.MeanBlankArea[name], s.MedianWastagePct)
	}
	if d, ok := r.Schemes["Dragonfly"]; ok {
		fprintf(w, "\nMeasured median-PSNR gains of Dragonfly:")
		for _, base := range []string{"PassiveSkip", "PerChunk", "NoMask"} {
			if b, ok := r.Schemes[base]; ok {
				fprintf(w, "  vs %s: %+.2f dB", base, d.Score.Median-b.Score.Median)
			}
		}
		fprintf(w, "\n")
	}
}

// percentileOfSummaryTail reports the low tail (min) that exposes NoMask's
// incomplete-viewport degradation in Fig 12(a)'s zoomed region.
func percentileOfSummaryTail(s SchemeSummary) float64 { return s.Score.Min }

// Fig13Result holds the proactive-vs-passive skip analysis (§4.4).
type Fig13Result struct {
	// PrimarySkipViewportPct: % of viewports with >= 1 primary-skipped tile
	// (Fig 13a; paper: Dragonfly 39%, PassiveSkip 7%, PerChunk 45.72%).
	PrimarySkipViewportPct map[string]float64
	// Share of rendered viewport tiles by source (Fig 13b; paper: Dragonfly
	// 6.74% masked / 83.4% top quality vs PassiveSkip 2.17% / 53.6%).
	MaskedTileShare  map[string]float64
	TopQualityShare  map[string]float64
	QualityBreakdown map[string][]float64 // per quality level 0..4
}

// Fig13SkipAnalysis derives Figure 13 from the ablation sessions.
func Fig13SkipAnalysis(abl *Fig12Result, w io.Writer) *Fig13Result {
	out := &Fig13Result{
		PrimarySkipViewportPct: map[string]float64{},
		MaskedTileShare:        map[string]float64{},
		TopQualityShare:        map[string]float64{},
		QualityBreakdown:       map[string][]float64{},
	}
	for name, sessions := range abl.Raw {
		var skipFrames, frames float64
		var byQ [video.NumQualities]float64
		var masked, blank, total float64
		for _, s := range sessions {
			skipFrames += float64(s.PrimarySkipFrames)
			frames += float64(s.TotalFrames)
			for q := range byQ {
				byQ[q] += float64(s.RenderedPrimaryByQuality[q])
			}
			masked += float64(s.RenderedMasking)
			blank += float64(s.RenderedBlank)
			total += float64(s.RenderedViewportTiles())
		}
		if frames > 0 {
			out.PrimarySkipViewportPct[name] = 100 * skipFrames / frames
		}
		if total > 0 {
			out.MaskedTileShare[name] = 100 * (masked + blank) / total
			out.TopQualityShare[name] = 100 * byQ[video.Highest] / total
			breakdown := make([]float64, video.NumQualities)
			for q := range byQ {
				breakdown[q] = 100 * byQ[q] / total
			}
			out.QualityBreakdown[name] = breakdown
		}
	}
	fprintf(w, "== Figure 13: proactive vs passive skipping ==\n")
	fprintf(w, "Paper: Dragonfly skips in 39%% of viewports vs PassiveSkip 7%% (PerChunk 45.7%%),\n")
	fprintf(w, "       yet renders 83.4%% of tiles at top quality vs PassiveSkip's 53.6%%\n")
	fprintf(w, "       (masked tiles: 6.74%% vs 2.17%%).\n\n")
	fprintf(w, "%-12s %12s %12s %12s | per-quality shares (low..high)\n",
		"variant", "skipVP%%", "maskedTiles%%", "topQuality%%")
	for _, name := range sortedNames(out.PrimarySkipViewportPct) {
		fprintf(w, "%-12s %11.2f%% %11.2f%% %11.2f%% |", name,
			out.PrimarySkipViewportPct[name], out.MaskedTileShare[name], out.TopQualityShare[name])
		for _, s := range out.QualityBreakdown[name] {
			fprintf(w, " %5.1f%%", s)
		}
		fprintf(w, "\n")
	}
	return out
}
