// Package experiments regenerates every table and figure of the paper's
// evaluation (§4, Appendix A). Each experiment is a function that runs the
// required sessions and prints the rows/series the paper reports, alongside
// the paper's own numbers for comparison; EXPERIMENTS.md records both.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"dragonfly/internal/obs"
	"dragonfly/internal/sim"
	"dragonfly/internal/trace"
	"dragonfly/internal/video"
)

// Env bundles the datasets every experiment draws from: the Table 3 videos,
// the user head traces, and the two filtered bandwidth-trace sets (§4.2).
type Env struct {
	Videos  []*video.Manifest
	Users   []*trace.HeadTrace
	Belgian []*trace.BandwidthTrace
	Irish   []*trace.BandwidthTrace

	// CSVDir, when set, makes the distribution experiments (Figs 9, 11, 12)
	// also dump their CDF series as CSV files for replotting.
	CSVDir string

	// Obs, when non-nil, collects sweep metrics (session counts, per-session
	// wall time, scheduler counters) across every experiment run in this
	// environment.
	Obs *obs.Registry

	// TraceDir, when set, makes every sweep dump one JSONL event trace per
	// session under it (see sim.Sweep.TraceDir).
	TraceDir string

	// LastSweep records the execution profile of the most recent sweep, for
	// per-experiment wall-clock and throughput reporting.
	LastSweep sim.Stats
}

// sweep runs one sim sweep with the environment's observability settings
// (metrics registry, session trace directory) injected, recording its
// execution profile in LastSweep.
func (e *Env) sweep(sw sim.Sweep) (sim.Results, error) {
	sw.Obs = e.Obs
	sw.TraceDir = e.TraceDir
	res, stats, err := sim.RunWithStats(sw)
	e.LastSweep = stats
	return res, err
}

// DefaultEnv builds the paper-scale environment: 7 videos × 10 users × 11
// Belgian traces (770 sessions per scheme in Fig 9) and 10 Irish traces.
func DefaultEnv() *Env {
	videos := video.DefaultDataset()
	users := trace.DefaultUserTraces(10)
	env := &Env{
		Videos:  videos,
		Users:   users,
		Belgian: trace.DefaultBelgianTraces(11),
		Irish:   trace.DefaultIrishTraces(10),
	}
	env.fillMaskDisplacement()
	return env
}

// SmallEnv is a scaled-down environment for tests and quick runs: smaller
// grids, fewer chunks, fewer combinations — same code paths.
func SmallEnv() *Env {
	entries := []video.DatasetEntry{
		{ID: "v1", QP42Mbps: 0.9, QP22Mbps: 10.4, MotionLevel: 0.2, Seed: 101},
		{ID: "v8", QP42Mbps: 3.1, QP22Mbps: 28.4, MotionLevel: 0.55, Seed: 108},
	}
	var videos []*video.Manifest
	for _, e := range entries {
		videos = append(videos, video.Generate(video.GenParams{
			ID: e.ID, Rows: 8, Cols: 8, NumChunks: 15,
			TargetQP42Mbps: e.QP42Mbps, TargetQP22Mbps: e.QP22Mbps,
			MotionLevel: e.MotionLevel, Seed: e.Seed,
		}))
	}
	var users []*trace.HeadTrace
	for i := 0; i < 3; i++ {
		users = append(users, trace.GenerateHead(trace.HeadGenParams{
			UserID: fmt.Sprintf("u%d", i+1), Class: trace.MotionClass(i % 3),
			Duration: 15 * time.Second, Seed: int64(1000 + i),
		}))
	}
	env := &Env{
		Videos:  videos,
		Users:   users,
		Belgian: trace.DefaultBelgianTraces(3),
		Irish:   trace.DefaultIrishTraces(3),
	}
	env.fillMaskDisplacement()
	return env
}

// fillMaskDisplacement derives each video's per-chunk displacement bound
// from a held-out set of user traces, as the user study does (§4.5,
// Appendix: bounds trained on 20 trajectories, evaluated on the rest).
func (e *Env) fillMaskDisplacement() {
	training := make([]*trace.HeadTrace, 0, 20)
	for i := 0; i < 20; i++ {
		training = append(training, trace.GenerateHead(trace.HeadGenParams{
			UserID: fmt.Sprintf("train%d", i), Class: trace.MotionClass(i % 3),
			Seed: int64(5000 + i),
		}))
	}
	for _, v := range e.Videos {
		chunkDur := time.Duration(v.ChunkFrames) * time.Second / time.Duration(v.FPS)
		disp := trace.MaxDisplacementPerChunk(training, chunkDur, v.NumChunks)
		copy(v.MaskDisplacement, disp)
	}
}

// fprintf writes formatted output, panicking on writer failure (experiment
// output targets are in-memory buffers or stdout).
func fprintf(w io.Writer, format string, args ...any) {
	if _, err := fmt.Fprintf(w, format, args...); err != nil {
		panic(err)
	}
}

// sortedNames returns map keys in deterministic order.
func sortedNames[T any](m map[string]T) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
