package experiments

import (
	"io"
)

// Experiment regenerates one paper artifact, writing its report to w.
type Experiment struct {
	ID          string
	Description string
	Run         func(env *Env, w io.Writer) error
}

// All returns every experiment in paper order. numStudyUsers scales the
// user-study simulation (26 reproduces the paper).
func All(numStudyUsers int) []Experiment {
	return []Experiment{
		{ID: "fig2", Description: "viewport prediction accuracy vs window",
			Run: func(env *Env, w io.Writer) error { _, err := Fig2PredictionAccuracy(env, w); return err }},
		{ID: "fig5", Description: "user movement during stalls",
			Run: func(env *Env, w io.Writer) error { _, err := Fig5YawDuringStalls(env, w); return err }},
		{ID: "table1", Description: "scheme design matrix",
			Run: func(env *Env, w io.Writer) error { Table1SchemeMatrix(w); return nil }},
		{ID: "fig9", Description: "main comparison on Belgian traces (incl. Fig 13 skip analysis inputs)",
			Run: func(env *Env, w io.Writer) error { _, err := Fig9MainComparison(env, w); return err }},
		{ID: "fig10", Description: "PSPNR-optimizing variants",
			Run: func(env *Env, w io.Writer) error { _, err := Fig10PSPNR(env, w); return err }},
		{ID: "fig11", Description: "Irish 5G sensitivity",
			Run: func(env *Env, w io.Writer) error { _, err := Fig11Irish(env, w); return err }},
		{ID: "table2", Description: "ablation variant matrix",
			Run: func(env *Env, w io.Writer) error { Table2VariantMatrix(w); return nil }},
		{ID: "fig12", Description: "ablation study + Fig 13 skip analysis",
			Run: func(env *Env, w io.Writer) error {
				abl, err := Fig12Ablation(env, w)
				if err != nil {
					return err
				}
				Fig13SkipAnalysis(abl, w)
				return nil
			}},
		{ID: "fig14-17", Description: "user study simulation (Figs 14, 15, 16, 17)",
			Run: func(env *Env, w io.Writer) error {
				out, err := RunUserStudy(env, numStudyUsers, w)
				if err != nil {
					return err
				}
				Fig16Displacement(out, w)
				return nil
			}},
		{ID: "fig18", Description: "per-tile quality sensitivity",
			Run: func(env *Env, w io.Writer) error { Fig18QualitySensitivity(env, w); return nil }},
		{ID: "fig19", Description: "masking strategies (full-360 vs tiled)",
			Run: func(env *Env, w io.Writer) error { _, err := Fig19MaskingStrategies(env, w); return err }},
		{ID: "fig20", Description: "fixed vs variable tiling overhead",
			Run: func(env *Env, w io.Writer) error { Fig20TilingOverhead(env, w); return nil }},
		{ID: "fig21-23", Description: "motion prediction error sensitivity",
			Run: func(env *Env, w io.Writer) error { _, err := Fig21to23ErrorSensitivity(env, w); return err }},
		{ID: "table3", Description: "video bitrate calibration (Table 3 / Fig 24)",
			Run: func(env *Env, w io.Writer) error { Table3VideoBitrates(env, w); return nil }},
		{ID: "tiling", Description: "why 12x12 tiling (Appendix)",
			Run: func(env *Env, w io.Writer) error { TilingSweep(env, w); return nil }},

		// Extensions beyond the paper's figures.
		{ID: "ext-predictor", Description: "extension: viewport-predictor method ablation",
			Run: func(env *Env, w io.Writer) error { ExtPredictorMethods(env, w); return nil }},
		{ID: "ext-interval", Description: "extension: decision-interval sweep",
			Run: func(env *Env, w io.Writer) error { _, err := ExtDecisionInterval(env, w); return err }},
		{ID: "ext-decode", Description: "extension: client decode-stage sensitivity",
			Run: func(env *Env, w io.Writer) error { _, err := ExtDecodeStage(env, w); return err }},
		{ID: "ext-roi", Description: "extension: RoI geometry ablation",
			Run: func(env *Env, w io.Writer) error { _, err := ExtRoIGeometry(env, w); return err }},
		{ID: "ext-masking", Description: "extension: §3.2 masking optimizations (scheduled + interpolation)",
			Run: func(env *Env, w io.Writer) error { _, err := ExtMaskingOptimizations(env, w); return err }},
		{ID: "ext-fault", Description: "extension: fault tolerance (reconnect + resume vs no-reconnect)",
			Run: func(env *Env, w io.Writer) error { _, err := ExtFaultTolerance(env, w); return err }},
		{ID: "chaos", Description: "extension: corruption + server-restart chaos with admission-control probe",
			Run: func(env *Env, w io.Writer) error { _, err := ExtChaos(env, w); return err }},
		{ID: "fleet-chaos", Description: "extension: balancer-fronted fleet with kill/cold-restart/drain mid-stream",
			Run: func(env *Env, w io.Writer) error { _, err := ExtFleetChaos(env, w); return err }},
		{ID: "chaos-soak", Description: "extension: all-tier seeded failpoint soak (fleet + ingest + feedback under injected faults)",
			Run: func(env *Env, w io.Writer) error { _, err := ExtChaosSoak(env, w); return err }},
		{ID: "qoe-feedback", Description: "extension: trace ingest -> cohort rollup -> QoE shed-budget feedback loop",
			Run: func(env *Env, w io.Writer) error { _, err := ExtQoEFeedback(env, w); return err }},
		{ID: "population", Description: "extension: population-scale sweep with streamed sketch aggregation (internal/popsim)",
			Run: func(env *Env, w io.Writer) error { _, err := ExtPopulation(env, w); return err }},
	}
}

// Find returns the experiment with the given ID, or false.
func Find(id string, numStudyUsers int) (Experiment, bool) {
	for _, e := range All(numStudyUsers) {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
