package experiments

import (
	"io"
	"math"
	"time"

	"dragonfly/internal/geom"
	"dragonfly/internal/stats"
	"dragonfly/internal/trace"
	"dragonfly/internal/video"
)

// Fig20Point is one (video, quality) sample of the fixed-vs-variable tiling
// overhead comparison.
type Fig20Point struct {
	VideoID       string
	Quality       video.Quality
	VariableMB    float64 // total size with Pano's grouped tiling
	OverheadRatio float64 // F/V: fixed tiling over variable tiling
}

// Fig20TilingOverhead reproduces Figure 20: the byte overhead of fixed
// 12x12 tiling relative to Pano's variable (grouped) tiling, per quality
// level. The paper finds noticeable overhead at low rates that degrades
// significantly at higher quality levels.
func Fig20TilingOverhead(env *Env, w io.Writer) []Fig20Point {
	fprintf(w, "== Figure 20: fixed (F) vs variable (V) tiling encoding overhead ==\n")
	fprintf(w, "Paper: F/V noticeably above 1 at low quality, shrinking at high quality/bitrate.\n\n")
	fprintf(w, "%-6s %-5s %12s %10s\n", "video", "QP", "variable(MB)", "F/V")
	var out []Fig20Point
	for _, v := range env.Videos {
		groups := make([][][]geom.TileID, v.NumChunks)
		for c := 0; c < v.NumChunks; c++ {
			groups[c] = video.GroupTiles(v, c, video.DefaultGroupCount)
		}
		for q := video.Quality(0); q < video.NumQualities; q++ {
			var fixed, variable int64
			for c := 0; c < v.NumChunks; c++ {
				fixed += v.ChunkTiledSize(c, q)
				variable += video.GroupedChunkSize(v, c, groups[c], q)
			}
			p := Fig20Point{
				VideoID:       v.VideoID,
				Quality:       q,
				VariableMB:    float64(variable) / 1e6,
				OverheadRatio: float64(fixed) / float64(variable),
			}
			out = append(out, p)
			fprintf(w, "%-6s %-5d %12.1f %10.3f\n", v.VideoID, q.QP(), p.VariableMB, p.OverheadRatio)
		}
	}
	return out
}

// TilingSweepRow reports the perfect-prediction viewport bandwidth for one
// grid size.
type TilingSweepRow struct {
	Rows, Cols int
	MeanBytes  float64
	VsBaseline float64 // relative to the 12x12 grid
}

// TilingSweep reproduces the Appendix "Why 12x12 tiling?" simulation:
// with perfectly predicted viewports, the bytes needed per chunk when only
// viewport-overlapping tiles are streamed, across tile grids. The paper
// finds 12x12 needs ~5.45% less than 24x18 and ~20% less than 6x6.
func TilingSweep(env *Env, w io.Writer) []TilingSweepRow {
	grids := []struct{ rows, cols int }{{6, 6}, {12, 12}, {24, 18}}
	fprintf(w, "== Appendix: why 12x12 tiling ==\n")
	fprintf(w, "Bytes to stream perfectly-predicted viewports at high quality, per grid.\n")
	fprintf(w, "Paper: 12x12 needs 5.45%% less than 24x18 and 20%% less than 6x6.\n\n")

	// The per-tile header and tiling overhead scale with grid size; model
	// each grid's chunk cost by re-tiling the same content shares.
	costFor := func(v *video.Manifest, rows, cols int, user *trace.HeadTrace) float64 {
		g := geom.NewGrid(rows, cols)
		chunkDur := time.Duration(v.ChunkFrames) * time.Second / time.Duration(v.FPS)
		total := 0.0
		for c := 0; c < v.NumChunks; c++ {
			// Union of tiles touched by the true viewport during the chunk.
			needed := map[geom.TileID]bool{}
			start := time.Duration(c) * chunkDur
			for t := start; t < start+chunkDur; t += 100 * time.Millisecond {
				for _, id := range geom.DefaultViewport.Tiles(g, user.At(t)) {
					needed[id] = true
				}
			}
			// Cost: the needed solid-angle share of the chunk payload plus
			// per-tile headers. Finer grids track the viewport tighter but
			// pay more headers and lose more intra/motion prediction at the
			// extra tile boundaries (overhead grows with tile count).
			var share, totalW float64
			for id := 0; id < g.NumTiles(); id++ {
				totalW += g.SolidAngleWeight(geom.TileID(id))
			}
			for id := range needed {
				share += g.SolidAngleWeight(id) / totalW
			}
			// QP22 fixed-tiling overhead, scaled super-linearly with tile
			// count: every extra boundary costs intra/motion prediction.
			overhead := 0.04 * math.Pow(float64(g.NumTiles())/144, 1.25)
			payload := float64(v.Full360Size(c, video.Highest)) * (1 + overhead)
			total += payload*share + 220*float64(len(needed))
		}
		return total
	}

	var rows []TilingSweepRow
	means := map[int]float64{}
	for gi, gr := range grids {
		var samples []float64
		for _, v := range env.Videos {
			for _, u := range env.Users {
				samples = append(samples, costFor(v, gr.rows, gr.cols, u))
			}
		}
		means[gi] = stats.Mean(samples)
	}
	base := means[1] // 12x12
	for gi, gr := range grids {
		row := TilingSweepRow{Rows: gr.rows, Cols: gr.cols, MeanBytes: means[gi], VsBaseline: means[gi] / base}
		rows = append(rows, row)
		fprintf(w, "%2dx%-2d  mean %6.2f MB per session   (%.1f%% vs 12x12)\n",
			gr.rows, gr.cols, row.MeanBytes/1e6, 100*(row.VsBaseline-1))
	}
	return rows
}
