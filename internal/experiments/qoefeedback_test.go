package experiments

import (
	"bytes"
	"testing"
)

// TestQoEFeedback is the closed-loop acceptance proof: traced sessions on
// a fast and a starved link stream into a live ingest service, the rollup
// quantiles must match the exact pooled per-session statistics within the
// documented envelope, and two identical servers driven by that rollup
// must shed measurably harder for the over-budget cohort than for the
// under-budget one under otherwise identical workloads.
func TestQoEFeedback(t *testing.T) {
	var buf bytes.Buffer
	out, err := extQoEFeedback(nil, &buf, QoEFeedbackParams{Seed: 7})
	if err != nil {
		t.Fatalf("qoe-feedback: %v\n%s", err, buf.String())
	}
	t.Logf("\n%s", buf.String())

	// Phase A: the rollup reproduced exact statistics within the envelope
	// (extQoEFeedback already errors otherwise; pin the envelope itself).
	if out.EnvelopeDB <= 0 || out.EnvelopeDB > 0.25+1e-9 {
		t.Errorf("quality envelope = %.3f dB, want (0, 0.25]", out.EnvelopeDB)
	}
	if out.QualitySamples == 0 {
		t.Error("no quality samples folded")
	}

	// Phase B: the loop steered the cohorts apart.
	if !(out.OverScale < 1) {
		t.Errorf("over-budget scale = %.3f, want < 1 (shed harder)", out.OverScale)
	}
	if !(out.UnderScale > 1) {
		t.Errorf("under-budget scale = %.3f, want > 1 (relax)", out.UnderScale)
	}
	if out.OverScaledInstalls == 0 || out.UnderScaledInstalls == 0 {
		t.Errorf("scaled installs = %d/%d, want both > 0 (feedback never reached the install path)",
			out.OverScaledInstalls, out.UnderScaledInstalls)
	}
	if out.OverShed <= out.UnderShed {
		t.Errorf("shed bytes: over-budget %d <= under-budget %d, want strictly more shedding for the over-budget cohort",
			out.OverShed, out.UnderShed)
	}

	// The server-view traces round-tripped through the watch path.
	if out.ServerTraceSessions == 0 {
		t.Error("no server-view traces folded back through the watcher")
	}
	if out.ServerTraceShedFolded == 0 {
		t.Error("server traces carried no shed events for the over-budget cohort")
	}
}
