package experiments

import (
	"bytes"
	"os"
	"strings"
	"sync"
	"testing"

	"dragonfly/internal/sim"
)

// smallEnvOnce shares one SmallEnv across tests (construction generates
// videos and traces).
var (
	envOnce sync.Once
	envVal  *Env
)

func testEnv() *Env {
	envOnce.Do(func() { envVal = SmallEnv() })
	return envVal
}

func TestSmallEnvShape(t *testing.T) {
	env := testEnv()
	if len(env.Videos) == 0 || len(env.Users) == 0 || len(env.Belgian) == 0 || len(env.Irish) == 0 {
		t.Fatal("small env incomplete")
	}
	for _, v := range env.Videos {
		nonZero := false
		for _, d := range v.MaskDisplacement {
			if d > 0 {
				nonZero = true
			}
		}
		if !nonZero {
			t.Errorf("%s: mask displacement never filled", v.VideoID)
		}
	}
}

func TestDefaultEnvShape(t *testing.T) {
	env := DefaultEnv()
	if len(env.Videos) != 7 {
		t.Errorf("videos = %d, want 7", len(env.Videos))
	}
	if len(env.Users) != 10 {
		t.Errorf("users = %d, want 10", len(env.Users))
	}
	if len(env.Belgian) != 11 {
		t.Errorf("belgian traces = %d, want 11", len(env.Belgian))
	}
	if len(env.Irish) != 10 {
		t.Errorf("irish traces = %d, want 10", len(env.Irish))
	}
}

func TestFig2Shape(t *testing.T) {
	var buf bytes.Buffer
	points, err := Fig2PredictionAccuracy(testEnv(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("got %d window points", len(points))
	}
	// Headline property: accuracy degrades sharply with the window.
	first, last := points[0], points[len(points)-1]
	if first.MedianAccuracy < 0.85 {
		t.Errorf("short-window accuracy %.2f too low", first.MedianAccuracy)
	}
	if last.MedianAccuracy > first.MedianAccuracy-0.1 {
		t.Errorf("no degradation: %.2f -> %.2f", first.MedianAccuracy, last.MedianAccuracy)
	}
	if !strings.Contains(buf.String(), "Figure 2") {
		t.Error("report missing header")
	}
}

func TestFig9SmallScaleClaims(t *testing.T) {
	var buf bytes.Buffer
	res, err := Fig9MainComparison(testEnv(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	d := res.Schemes["Dragonfly"]
	// Claim 1: Dragonfly has the best median viewport quality.
	for _, other := range []string{"Flare", "Pano", "Two-tier"} {
		if s, ok := res.Schemes[other]; ok && d.Score.Median <= s.Score.Median {
			t.Errorf("Dragonfly median %.2f not above %s %.2f", d.Score.Median, other, s.Score.Median)
		}
	}
	// Claim 2: Dragonfly never stalls and never renders incomplete frames.
	if d.SessionsWithRebuf != 0 {
		t.Error("Dragonfly sessions rebuffered")
	}
	if d.SessionsWithIncomplete != 0 {
		t.Error("Dragonfly sessions had incomplete frames")
	}
	// Claim 3: Flare's wastage drops substantially with a 1 s look-ahead.
	if f3, ok := res.Schemes["Flare"]; ok {
		if f1, ok2 := res.Schemes["Flare-1s"]; ok2 && f1.MedianWastagePct >= f3.MedianWastagePct {
			t.Errorf("Flare-1s wastage %.1f%% not below Flare %.1f%%", f1.MedianWastagePct, f3.MedianWastagePct)
		}
	}
}

func TestFig12And13SmallScale(t *testing.T) {
	var buf bytes.Buffer
	abl, err := Fig12Ablation(testEnv(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	d := abl.Schemes["Dragonfly"]
	// Dragonfly beats PerChunk and PassiveSkip in median quality.
	for _, other := range []string{"PerChunk", "PassiveSkip"} {
		if s, ok := abl.Schemes[other]; ok && d.Score.Median <= s.Score.Median {
			t.Errorf("Dragonfly median %.2f not above %s %.2f", d.Score.Median, other, s.Score.Median)
		}
	}
	// NoMask is the only variant with incomplete frames, and the lowest
	// wastage.
	if nm, ok := abl.Schemes["NoMask"]; ok {
		if nm.SessionsWithIncomplete == 0 {
			t.Error("NoMask should see incomplete frames")
		}
		for _, other := range []string{"Dragonfly", "PassiveSkip", "PerChunk"} {
			s := abl.Schemes[other]
			if s.SessionsWithIncomplete != 0 {
				t.Errorf("%s saw incomplete frames despite masking", other)
			}
		}
		// Dropping the masking stream saves its overhead: NoMask wastes
		// less than the refining masking variants. (PerChunk's stale
		// once-per-chunk fetches make its wastage noisy at small scale; the
		// full-scale run in EXPERIMENTS.md records it.)
		for _, other := range []string{"Dragonfly", "PassiveSkip"} {
			s := abl.Schemes[other]
			if nm.MedianWastagePct >= s.MedianWastagePct {
				t.Errorf("NoMask wastage %.1f%% not below %s %.1f%%", nm.MedianWastagePct, other, s.MedianWastagePct)
			}
		}
	}

	f13 := Fig13SkipAnalysis(abl, &buf)
	// Dragonfly proactively skips more than PassiveSkip yet renders more
	// tiles at top quality.
	if f13.PrimarySkipViewportPct["Dragonfly"] <= f13.PrimarySkipViewportPct["PassiveSkip"] {
		t.Errorf("Dragonfly skip%% %.2f not above PassiveSkip %.2f",
			f13.PrimarySkipViewportPct["Dragonfly"], f13.PrimarySkipViewportPct["PassiveSkip"])
	}
	if f13.TopQualityShare["Dragonfly"] <= f13.TopQualityShare["PassiveSkip"] {
		t.Errorf("Dragonfly top-quality share %.2f not above PassiveSkip %.2f",
			f13.TopQualityShare["Dragonfly"], f13.TopQualityShare["PassiveSkip"])
	}
}

func TestFig10SmallScale(t *testing.T) {
	var buf bytes.Buffer
	res, err := Fig10PSPNR(testEnv(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	d, p := res["Dragonfly-PSPNR"], res["Pano-PSPNR"]
	if d.Score.Median <= p.Score.Median {
		t.Errorf("Dragonfly-PSPNR %.2f not above Pano-PSPNR %.2f", d.Score.Median, p.Score.Median)
	}
}

func TestFig11SmallScale(t *testing.T) {
	var buf bytes.Buffer
	res, err := Fig11Irish(testEnv(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	d := res["Dragonfly"]
	for _, other := range []string{"Flare", "Pano", "Two-tier"} {
		if s, ok := res[other]; ok && d.Score.Median <= s.Score.Median {
			t.Errorf("Irish: Dragonfly %.2f not above %s %.2f", d.Score.Median, other, s.Score.Median)
		}
	}
	if d.SessionsWithRebuf != 0 {
		t.Error("Dragonfly rebuffered on Irish traces")
	}
}

func TestFig19SmallScale(t *testing.T) {
	var buf bytes.Buffer
	res, err := Fig19MaskingStrategies(testEnv(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	full, tiled := res["Dragonfly"], res["Dragonfly-Tiled"]
	// The two strategies should be comparable in quality (within 2 dB).
	diff := full.Score.Median - tiled.Score.Median
	if diff > 2 || diff < -2 {
		t.Errorf("masking strategies should be comparable: full %.2f vs tiled %.2f", full.Score.Median, tiled.Score.Median)
	}
	// Tiled masking may see incomplete frames; full-360 never does.
	if full.SessionsWithIncomplete != 0 {
		t.Error("full-360 masking saw incomplete frames")
	}
}

func TestFig18(t *testing.T) {
	var buf bytes.Buffer
	low, high := Fig18QualitySensitivity(testEnv(), &buf)
	if high-low < 3 {
		t.Errorf("sensitivity spread too small: %.1f..%.1f", low, high)
	}
}

func TestFig20Claims(t *testing.T) {
	var buf bytes.Buffer
	points := Fig20TilingOverhead(testEnv(), &buf)
	if len(points) == 0 {
		t.Fatal("no points")
	}
	// Per video: F/V at the lowest quality exceeds F/V at the highest.
	byVideo := map[string][]Fig20Point{}
	for _, p := range points {
		byVideo[p.VideoID] = append(byVideo[p.VideoID], p)
	}
	for vid, ps := range byVideo {
		if ps[0].OverheadRatio <= ps[len(ps)-1].OverheadRatio {
			t.Errorf("%s: overhead did not shrink with quality (%.3f -> %.3f)",
				vid, ps[0].OverheadRatio, ps[len(ps)-1].OverheadRatio)
		}
		for _, p := range ps {
			if p.OverheadRatio <= 1 {
				t.Errorf("%s: fixed tiling should cost more than variable (got %.3f)", vid, p.OverheadRatio)
			}
		}
	}
}

func TestTilingSweep12x12Optimal(t *testing.T) {
	var buf bytes.Buffer
	rows := TilingSweep(testEnv(), &buf)
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	var base, coarse, fine TilingSweepRow
	for _, r := range rows {
		switch r.Rows {
		case 6:
			coarse = r
		case 12:
			base = r
		case 24:
			fine = r
		}
	}
	if base.MeanBytes >= coarse.MeanBytes {
		t.Errorf("12x12 (%.0f) should beat 6x6 (%.0f)", base.MeanBytes, coarse.MeanBytes)
	}
	if base.MeanBytes >= fine.MeanBytes {
		t.Errorf("12x12 (%.0f) should beat 24x18 (%.0f)", base.MeanBytes, fine.MeanBytes)
	}
}

func TestTable3Calibration(t *testing.T) {
	var buf bytes.Buffer
	rows := Table3VideoBitrates(DefaultEnv(), &buf)
	if len(rows) != 7 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.PaperQP42 == 0 {
			t.Errorf("%s missing paper target", r.VideoID)
			continue
		}
		if rel(r.MeasuredQP42, r.PaperQP42) > 0.25 || rel(r.MeasuredQP22, r.PaperQP22) > 0.25 {
			t.Errorf("%s: calibration off target: %.2f/%.2f vs %.2f/%.2f",
				r.VideoID, r.MeasuredQP42, r.MeasuredQP22, r.PaperQP42, r.PaperQP22)
		}
	}
}

func rel(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d / b
}

func TestTablesPrint(t *testing.T) {
	var buf bytes.Buffer
	Table1SchemeMatrix(&buf)
	Table2VariantMatrix(&buf)
	s := buf.String()
	for _, want := range []string{"Dragonfly", "Two-tier", "PassiveSkip", "NoMask", "utility"} {
		if !strings.Contains(s, want) {
			t.Errorf("tables missing %q", want)
		}
	}
}

func TestRegistry(t *testing.T) {
	all := All(4)
	if len(all) != 26 {
		t.Errorf("registry has %d experiments", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Description == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := Find("fig9", 4); !ok {
		t.Error("Find failed")
	}
	if _, ok := Find("nope", 4); ok {
		t.Error("Find found a ghost")
	}
}

func TestExtensionExperiments(t *testing.T) {
	env := testEnv()
	var buf bytes.Buffer

	acc := ExtPredictorMethods(env, &buf)
	if len(acc) != 3 {
		t.Fatalf("predictor methods: %d rows", len(acc))
	}
	for name, row := range acc {
		if len(row) != 3 {
			t.Fatalf("%s: %d windows", name, len(row))
		}
		if row[2] > row[0] {
			t.Errorf("%s accuracy improved with window", name)
		}
	}

	iv, err := ExtDecisionInterval(env, &buf)
	if err != nil {
		t.Fatal(err)
	}
	fast, okF := iv["Dragonfly@100ms"]
	slow, okS := iv["Dragonfly@1s"]
	if !okF || !okS {
		t.Fatalf("interval sweep missing endpoints: %v", iv)
	}
	if fast.Score.Median < slow.Score.Median {
		t.Errorf("100ms refinement (%.2f) should not trail 1s (%.2f)",
			fast.Score.Median, slow.Score.Median)
	}

	dec, err := ExtDecodeStage(env, &buf)
	if err != nil {
		t.Fatal(err)
	}
	inf, ok1 := dec["infinite"]
	starved, ok2 := dec["5 MB/s"]
	if !ok1 || !ok2 {
		t.Fatalf("decode sweep missing rows: %v", dec)
	}
	if starved.Score.Median > inf.Score.Median+0.5 {
		t.Errorf("slower decoder cannot raise quality: %.2f vs %.2f",
			starved.Score.Median, inf.Score.Median)
	}

	roi, err := ExtRoIGeometry(env, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(roi) != 3 {
		t.Fatalf("roi sweep: %d rows", len(roi))
	}
}

func TestExtMaskingOptimizations(t *testing.T) {
	var buf bytes.Buffer
	out, err := ExtMaskingOptimizations(testEnv(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	plain, ok1 := out["tiled (chunk order)"]
	sched, ok2 := out["tiled + utility sched"]
	interp, ok3 := out["tiled + interpolation"]
	if !ok1 || !ok2 || !ok3 {
		t.Fatalf("missing rows: %v", out)
	}
	// Interpolation must not increase incomplete frames.
	if interp.MedianIncompletePct > plain.MedianIncompletePct {
		t.Errorf("interpolation raised incomplete%%: %.3f vs %.3f",
			interp.MedianIncompletePct, plain.MedianIncompletePct)
	}
	// The scheduled variant stays within ~2 dB of the plain one.
	if d := sched.Score.Median - plain.Score.Median; d < -2 || d > 2 {
		t.Errorf("scheduled masking diverged: %.2f vs %.2f", sched.Score.Median, plain.Score.Median)
	}
}

func TestExtFaultTolerance(t *testing.T) {
	// Real-time sessions: a few seconds of wall clock each.
	var buf bytes.Buffer
	out, err := ExtFaultTolerance(testEnv(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	res, ok1 := out["resilient"]
	cut, ok2 := out["no-reconnect"]
	if !ok1 || !ok2 {
		t.Fatalf("missing rows: %v", out)
	}
	if res.Metrics.Disconnects < 3 {
		t.Errorf("resilient saw %d disconnects, want >= 3", res.Metrics.Disconnects)
	}
	if res.Counters.Resumes < 3 || res.Counters.ResumedItems <= 0 {
		t.Errorf("resume machinery idle: %+v", res.Counters)
	}
	// Headline: surviving the cuts yields strictly better quality.
	if cut.Metrics.MedianScore() >= res.Metrics.MedianScore() {
		t.Errorf("no-reconnect median %.2f not below resilient %.2f",
			cut.Metrics.MedianScore(), res.Metrics.MedianScore())
	}
	if !strings.Contains(buf.String(), "fault tolerance") {
		t.Error("report missing header")
	}
}

func TestWriteCDFCSV(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/test_cdf.csv"
	if err := WriteCDFCSV(path, map[string][]float64{
		"a": {3, 1, 2},
		"b": {10, 20},
	}, 0); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if lines[0] != "a_value,a_frac,b_value,b_frac" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 4 { // header + 3 rows (longest series)
		t.Errorf("got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[1], "1.0000,0.333333,10.0000,0.500000") {
		t.Errorf("row 1 = %q", lines[1])
	}
}

func TestDumpResultCDFs(t *testing.T) {
	env := testEnv()
	res, err := sim.Run(sim.Sweep{
		Videos:     env.Videos[:1],
		Users:      env.Users[:1],
		Bandwidths: env.Belgian[:1],
		Schemes:    []string{"flare"},
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := DumpResultCDFs(dir, "smoke", res); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"smoke_quality_cdf.csv", "smoke_rebuffer_cdf.csv", "smoke_wastage_cdf.csv"} {
		if _, err := os.Stat(dir + "/" + f); err != nil {
			t.Errorf("missing %s: %v", f, err)
		}
	}
}

func TestFig5SmallScale(t *testing.T) {
	var buf bytes.Buffer
	out, err := Fig5YawDuringStalls(testEnv(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.StallCount > 0 && out.MeanYawDuringStall < 0 {
		t.Error("negative displacement")
	}
	if !strings.Contains(buf.String(), "Figure 5") {
		t.Error("missing header")
	}
}

func TestFig21to23SmallScale(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Fig21to23ErrorSensitivity(testEnv(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d error levels", len(rows))
	}
	for _, row := range rows {
		d, ok := row.Schemes["Dragonfly"]
		if !ok {
			t.Fatalf("D=%v missing Dragonfly", row.ErrorDeg)
		}
		// The paper's headline: Dragonfly stays ahead at every error level.
		for _, other := range []string{"Pano", "Two-tier"} {
			if s, ok := row.Schemes[other]; ok && d.Score.Median <= s.Score.Median {
				t.Errorf("D=%v: Dragonfly %.2f not above %s %.2f",
					row.ErrorDeg, d.Score.Median, other, s.Score.Median)
			}
		}
		if d.SessionsWithRebuf != 0 {
			t.Errorf("D=%v: Dragonfly rebuffered", row.ErrorDeg)
		}
	}
}

func TestUserStudySmallScale(t *testing.T) {
	var buf bytes.Buffer
	out, err := RunUserStudy(testEnv(), 4, &buf)
	if err != nil {
		t.Fatal(err)
	}
	// Structural checks; the full 26-user calibration lives in
	// EXPERIMENTS.md.
	for _, name := range []string{"Dragonfly", "Flare", "Pano"} {
		if _, ok := out.RatedAtLeast4[name]; !ok {
			t.Errorf("missing ratings for %s", name)
		}
		if out.MedianPSNR[name] <= 0 {
			t.Errorf("missing PSNR for %s", name)
		}
	}
	if out.MedianPSNR["Dragonfly"] <= out.MedianPSNR["Pano"] {
		t.Errorf("study PSNR ordering: Dragonfly %.2f vs Pano %.2f",
			out.MedianPSNR["Dragonfly"], out.MedianPSNR["Pano"])
	}
	if len(out.SkipHeat) == 0 {
		t.Error("no skip heat map")
	}
	disp := Fig16Displacement(out, &buf)
	if len(disp) != 3 {
		t.Errorf("displacement rows: %d", len(disp))
	}
}
