package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestExtPopulation runs the population-sweep experiment at test scale and
// checks its shard-merge determinism claim and report shape.
func TestExtPopulation(t *testing.T) {
	env := testEnv()
	var buf bytes.Buffer
	out, err := ExtPopulationWith(env, &buf, PopulationParams{
		Members: 8, Duration: 4 * time.Second, Seed: 5,
	})
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if out.Sessions != 16 { // 8 members x 2 schemes
		t.Fatalf("folded %d sessions, want 16", out.Sessions)
	}
	if !out.ShardsEqual {
		t.Fatal("2-shard merge diverged from the whole sweep")
	}
	if out.Cohorts == 0 {
		t.Fatal("no cohorts sampled")
	}
	for _, scheme := range []string{"dragonfly", "pano"} {
		if _, ok := out.BestSchemeDB[scheme]; !ok {
			t.Errorf("no summary quality for scheme %q", scheme)
		}
	}
	report := buf.String()
	for _, want := range []string{"population-scale sweep", "byte-for-byte", "cohort"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	if env.LastSweep.Sessions != 16 {
		t.Errorf("LastSweep recorded %d sessions, want 16", env.LastSweep.Sessions)
	}
}
