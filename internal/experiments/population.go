package experiments

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"dragonfly/internal/popsim"
	"dragonfly/internal/sim"
)

// PopulationParams scales the population-sweep experiment; the zero value
// runs the acceptance configuration.
type PopulationParams struct {
	Members  int           // population size (default 24)
	Duration time.Duration // per-member trace duration (default 10s)
	Seed     int64         // population seed (default 11)
}

// PopulationOutcome is the accounting of one population sweep run.
type PopulationOutcome struct {
	Sessions     int64              // sessions folded (members x schemes)
	Cohorts      int                // distinct (motion x network) cohorts sampled
	ShardsEqual  bool               // 2-shard snapshot merge reproduced the whole sweep
	BestSchemeDB map[string]float64 // per-scheme median viewport quality across cohorts
}

// ExtPopulation demonstrates the population-scale sweep engine
// (internal/popsim) at experiment scale: a mixed-cohort population plays
// under Dragonfly and Pano with streamed sketch aggregation, and the run
// re-executes as two merged shards to exhibit the determinism contract
// (same seed ⇒ identical merged rollup, any shard split).
func ExtPopulation(env *Env, w io.Writer) (PopulationOutcome, error) {
	return ExtPopulationWith(env, w, PopulationParams{})
}

// ExtPopulationWith is ExtPopulation with explicit scaling.
func ExtPopulationWith(env *Env, w io.Writer, p PopulationParams) (PopulationOutcome, error) {
	if p.Members <= 0 {
		p.Members = 24
	}
	if p.Duration <= 0 {
		p.Duration = 10 * time.Second
	}
	if p.Seed == 0 {
		p.Seed = 11
	}
	model := popsim.DefaultModel(p.Seed)
	model.Duration = p.Duration
	schemes := []string{"dragonfly", "pano"}
	sweep := func(shardIdx, shardCount int) (*popsim.Rollup, popsim.Stats, error) {
		return popsim.Run(popsim.Sweep{
			Videos:     env.Videos[:1],
			Schemes:    schemes,
			Sessions:   p.Members,
			Model:      model,
			ShardIndex: shardIdx,
			ShardCount: shardCount,
			Obs:        env.Obs,
		})
	}

	fprintf(w, "Extension: population-scale sweep (%d members x %d schemes, seed %d)\n",
		p.Members, len(schemes), p.Seed)
	whole, st, err := sweep(0, 1)
	if err != nil {
		return PopulationOutcome{}, err
	}
	env.LastSweep = sim.Stats{Sessions: st.Sessions, Wall: st.Wall, SessionsPerSec: st.SessionsPerSec}

	// Re-run as two shards and merge through the snapshot wire format —
	// the same path dragonfly-popsim -shards takes across processes.
	merged := popsim.NewRollup(popsim.Geometry{})
	for shard := 0; shard < 2; shard++ {
		part, _, err := sweep(shard, 2)
		if err != nil {
			return PopulationOutcome{}, err
		}
		var snap bytes.Buffer
		if err := part.WriteSnapshot(&snap, shard, 2); err != nil {
			return PopulationOutcome{}, err
		}
		if err := merged.MergeSnapshot(&snap); err != nil {
			return PopulationOutcome{}, err
		}
	}
	wholeJSON, err := whole.SummaryJSON()
	if err != nil {
		return PopulationOutcome{}, err
	}
	mergedJSON, err := merged.SummaryJSON()
	if err != nil {
		return PopulationOutcome{}, err
	}

	out := PopulationOutcome{
		Sessions:     whole.Sessions(),
		ShardsEqual:  bytes.Equal(wholeJSON, mergedJSON),
		BestSchemeDB: map[string]float64{},
	}
	sum := whole.Summary()
	cohortSet := map[string]bool{}
	for _, scheme := range sortedNames(sum.Schemes) {
		cohorts := sum.Schemes[scheme]
		fprintf(w, "\n  %-12s %-16s %9s %12s %12s %12s\n",
			"scheme", "cohort", "sessions", "quality p50", "stall p50", "blank p90")
		// Weighted-by-samples median across cohorts would need a merged
		// sketch; report the per-cohort medians and a session-weighted mean
		// of them as the scheme's summary number.
		var wsum, wtot float64
		for _, cohort := range sortedNames(cohorts) {
			cs := cohorts[cohort]
			cohortSet[cohort] = true
			fprintf(w, "  %-12s %-16s %9d %9.2f dB %9.0f ms %12.4f\n",
				scheme, cohort, cs.Sessions, cs.QualityDB.P50, cs.StallMS.P50, cs.BlankRatio.P90)
			wsum += cs.QualityDB.P50 * float64(cs.Sessions)
			wtot += float64(cs.Sessions)
		}
		if wtot > 0 {
			out.BestSchemeDB[scheme] = wsum / wtot
		}
	}
	out.Cohorts = len(cohortSet)

	fprintf(w, "\n  %d sessions folded across %d cohorts (sketch envelope %.2f dB)\n",
		out.Sessions, out.Cohorts, sum.QualityEnvDB)
	if out.ShardsEqual {
		fprintf(w, "  2-shard snapshot merge reproduces the whole sweep byte-for-byte\n")
	} else {
		fprintf(w, "  WARNING: 2-shard merge diverged from the whole sweep\n")
	}
	if !out.ShardsEqual {
		return out, fmt.Errorf("population: shard merge diverged from single-process sweep")
	}
	return out, nil
}
