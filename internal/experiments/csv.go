package experiments

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"dragonfly/internal/player"
	"dragonfly/internal/sim"
	"dragonfly/internal/stats"
)

// WriteCDFCSV writes one empirical CDF per column: the header names the
// series, each row holds (value, cumulative fraction) pairs — the series a
// plotting tool needs to redraw the paper's distribution figures.
//
// Every write error is propagated (including short writes surfaced only at
// Flush and errors surfaced at Close), so a disk-full run fails loudly
// instead of leaving a silently truncated CSV behind.
func WriteCDFCSV(path string, series map[string][]float64, maxPoints int) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("experiments: create %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("experiments: close %s: %w", path, cerr)
		}
	}()
	if err := writeCDFTo(f, series, maxPoints); err != nil {
		return fmt.Errorf("experiments: write %s: %w", path, err)
	}
	return nil
}

// writeCDFTo renders the CDF table to w through a buffered writer whose
// Flush error is checked; fmt errors inside the loop are sticky on the
// bufio.Writer, so checking Flush catches them all.
func writeCDFTo(w io.Writer, series map[string][]float64, maxPoints int) error {
	names := make([]string, 0, len(series))
	for n := range series {
		names = append(names, n)
	}
	sort.Strings(names)
	cdfs := make([][]stats.CDFPoint, len(names))
	rows := 0
	for i, n := range names {
		cdfs[i] = stats.CDF(series[n], maxPoints)
		if len(cdfs[i]) > rows {
			rows = len(cdfs[i])
		}
	}
	bw := bufio.NewWriter(w)
	for i, n := range names {
		if i > 0 {
			fmt.Fprint(bw, ",")
		}
		fmt.Fprintf(bw, "%s_value,%s_frac", n, n)
	}
	fmt.Fprintln(bw)
	for r := 0; r < rows; r++ {
		for i := range names {
			if i > 0 {
				fmt.Fprint(bw, ",")
			}
			if r < len(cdfs[i]) {
				fmt.Fprintf(bw, "%.4f,%.6f", cdfs[i][r].Value, cdfs[i][r].Frac)
			} else {
				fmt.Fprint(bw, ",")
			}
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// DumpResultCDFs writes the three Fig 9-style distributions of a sweep
// result — per-frame quality, per-session rebuffering ratio, per-session
// wastage — as CSV files under dir with the given prefix.
func DumpResultCDFs(dir, prefix string, res sim.Results) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiments: mkdir %s: %w", dir, err)
	}
	quality := map[string][]float64{}
	rebuf := map[string][]float64{}
	waste := map[string][]float64{}
	for name, sessions := range res {
		quality[name] = sim.PooledFrameScores(sessions)
		rebuf[name] = sim.SessionStat(sessions, func(m *player.Metrics) float64 { return 100 * m.RebufferRatio() })
		waste[name] = sim.SessionStat(sessions, func(m *player.Metrics) float64 { return m.WastagePct() })
	}
	if err := WriteCDFCSV(filepath.Join(dir, prefix+"_quality_cdf.csv"), quality, 200); err != nil {
		return err
	}
	if err := WriteCDFCSV(filepath.Join(dir, prefix+"_rebuffer_cdf.csv"), rebuf, 200); err != nil {
		return err
	}
	return WriteCDFCSV(filepath.Join(dir, prefix+"_wastage_cdf.csv"), waste, 200)
}
