package experiments

import (
	"io"

	"dragonfly/internal/player"
	"dragonfly/internal/sim"
	"dragonfly/internal/stats"
)

// ExtMaskingOptimizations evaluates the two §3.2 future-work optimizations
// on top of the Fig 19 comparison: utility-scheduled tiled masking, and
// neighbor interpolation of masking holes.
func ExtMaskingOptimizations(env *Env, w io.Writer) (map[string]SchemeSummary, error) {
	run := func(schemes []string, interp bool) (sim.Results, error) {
		return env.sweep(sim.Sweep{
			Videos:            env.Videos,
			Users:             limitUsers(env.Users, 5),
			Bandwidths:        limitTraces(env.Belgian, 5),
			Schemes:           schemes,
			MaskInterpolation: interp,
		})
	}
	base, err := run([]string{"dragonfly-tiled", "dragonfly-tiled-sched"}, false)
	if err != nil {
		return nil, err
	}
	interp, err := run([]string{"dragonfly-tiled"}, true)
	if err != nil {
		return nil, err
	}

	out := map[string]SchemeSummary{}
	fprintf(w, "== Extension: §3.2 masking optimizations ==\n")
	fprintf(w, "Paper (future work): schedule masking tiles by utility; interpolate masking holes.\n\n")
	fprintf(w, "%-26s %9s %10s %11s %9s\n", "variant", "medPSNR", "incmpFr%%", "sess.incmp", "medWaste")
	printRow := func(label string, sessions []*player.Metrics) {
		s := Summarize(label, sessions)
		out[label] = s
		fprintf(w, "%-26s %8.2f  %9.3f  %9.0f%%  %7.1f%%\n",
			label, s.Score.Median, s.MedianIncompletePct, 100*s.SessionsWithIncomplete, s.MedianWastagePct)
	}
	printRow("tiled (chunk order)", base["Dragonfly-Tiled"])
	printRow("tiled + utility sched", base["Dragonfly-TiledSched"])
	printRow("tiled + interpolation", interp["Dragonfly-Tiled"])

	interpolatedTiles := stats.Mean(sim.SessionStat(interp["Dragonfly-Tiled"], func(m *player.Metrics) float64 {
		return float64(m.RenderedInterpolated)
	}))
	fprintf(w, "\nInterpolated tile renders per session (mean): %.1f\n", interpolatedTiles)
	return out, nil
}
