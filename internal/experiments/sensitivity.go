package experiments

import (
	"io"
	"time"

	"dragonfly/internal/geom"
	"dragonfly/internal/quality"
	"dragonfly/internal/sim"
	"dragonfly/internal/stats"
	"dragonfly/internal/trace"
)

// Fig10PSPNR reproduces Figure 10: Dragonfly-PSPNR vs Pano-PSPNR on the
// Belgian traces. The paper: Dragonfly achieves higher PSPNR across
// viewports, improving by over 2 dB for 69% of viewports.
func Fig10PSPNR(env *Env, w io.Writer) (map[string]SchemeSummary, error) {
	res, err := env.sweep(sim.Sweep{
		Videos:     env.Videos,
		Users:      env.Users,
		Bandwidths: env.Belgian,
		Schemes:    []string{"dragonfly-pspnr", "pano-pspnr"},
		Metric:     quality.PSPNR,
	})
	if err != nil {
		return nil, err
	}
	out := map[string]SchemeSummary{}
	for name, sessions := range res {
		out[name] = Summarize(name, sessions)
	}
	fprintf(w, "== Figure 10: PSPNR-optimizing variants ==\n")
	fprintf(w, "Paper: Dragonfly-PSPNR beats Pano-PSPNR; >2 dB better for 69%% of viewports.\n\n")
	for _, name := range sortedNames(out) {
		s := out[name]
		fprintf(w, "%-18s median PSPNR %6.2f dB   p10 %6.2f   p90 %6.2f\n",
			s.Name, s.Score.Median, s.Score.P10, s.Score.P90)
	}
	if d, ok := out["Dragonfly-PSPNR"]; ok {
		if p, ok2 := out["Pano-PSPNR"]; ok2 {
			fprintf(w, "Measured median-PSPNR gain: %+.2f dB\n", d.Score.Median-p.Score.Median)
		}
	}
	return out, nil
}

// Fig11Irish reproduces Figure 11: the main comparison on the Irish 5G
// traces. The paper: same ordering as Fig 9, slightly worse across the
// board, and Pano hit hardest by the abrupt near-zero dips while
// Dragonfly's masking absorbs them.
func Fig11Irish(env *Env, w io.Writer) (map[string]SchemeSummary, error) {
	res, err := env.sweep(sim.Sweep{
		Videos:     env.Videos,
		Users:      env.Users,
		Bandwidths: env.Irish,
		Schemes:    []string{"dragonfly", "flare", "pano", "twotier"},
	})
	if err != nil {
		return nil, err
	}
	out := map[string]SchemeSummary{}
	for name, sessions := range res {
		out[name] = Summarize(name, sessions)
	}
	if env.CSVDir != "" {
		if err := DumpResultCDFs(env.CSVDir, "fig11", res); err != nil {
			return nil, err
		}
	}
	fprintf(w, "== Figure 11: Irish 5G traces ==\n")
	fprintf(w, "Paper: same trends as Belgian, slightly worse; Pano rebuffers more on dips.\n\n")
	fprintf(w, "%-12s %9s | %9s %10s | %9s\n", "scheme", "medPSNR", "medRebuf", "sess.rebuf", "medWaste")
	for _, name := range sortedNames(out) {
		s := out[name]
		fprintf(w, "%-12s %8.2f  | %8.2f%% %9.0f%%  | %7.1f%%\n",
			s.Name, s.Score.Median, s.MedianRebufferPct, 100*s.SessionsWithRebuf, s.MedianWastagePct)
	}
	return out, nil
}

// Fig19MaskingStrategies reproduces Figure 19: Dragonfly with full-360°
// masking vs tiled masking. The paper: comparable, with tiled masking
// seeing slightly more incomplete frames and slightly more overhead
// (low-quality tiled encodings are less efficient).
func Fig19MaskingStrategies(env *Env, w io.Writer) (map[string]SchemeSummary, error) {
	res, err := env.sweep(sim.Sweep{
		Videos:     env.Videos,
		Users:      env.Users,
		Bandwidths: env.Belgian,
		Schemes:    []string{"dragonfly", "dragonfly-tiled"},
	})
	if err != nil {
		return nil, err
	}
	out := map[string]SchemeSummary{}
	for name, sessions := range res {
		out[name] = Summarize(name, sessions)
	}
	fprintf(w, "== Figure 19: masking strategies (full-360° vs tiled) ==\n")
	fprintf(w, "Paper: comparable PSNR; tiled masking has slightly more incomplete frames and overhead.\n\n")
	fprintf(w, "%-16s %9s | %10s %11s | %9s\n", "variant", "medPSNR", "incmpFr%%", "sess.incmp", "medWaste")
	for _, name := range sortedNames(out) {
		s := out[name]
		fprintf(w, "%-16s %8.2f  | %9.3f%% %9.0f%%  | %7.1f%%\n",
			s.Name, s.Score.Median, s.MedianIncompletePct, 100*s.SessionsWithIncomplete, s.MedianWastagePct)
	}
	return out, nil
}

// Fig21to23Row is one error-magnitude row of the prediction-error
// sensitivity study.
type Fig21to23Row struct {
	ErrorDeg float64
	Schemes  map[string]SchemeSummary
}

// Fig21to23ErrorSensitivity reproduces Figures 21-23: the main comparison
// with viewport-coordinate histories shifted by uniform random D degrees
// (D = 5, 20, 40). The paper: Dragonfly keeps the highest PSNR and lowest
// overhead at every error level, with ~1% of sessions seeing incomplete
// viewports.
func Fig21to23ErrorSensitivity(env *Env, w io.Writer) ([]Fig21to23Row, error) {
	// The paper uses a reduced sweep here (7 videos, 5 users, 5 traces).
	users := env.Users
	if len(users) > 5 {
		users = users[:5]
	}
	traces := env.Belgian
	if len(traces) > 5 {
		traces = traces[:5]
	}
	var rows []Fig21to23Row
	fprintf(w, "== Figures 21-23: sensitivity to motion-prediction error ==\n")
	fprintf(w, "Paper: Dragonfly stays highest-PSNR and lowest-overhead for D = 5, 20, 40 degrees.\n\n")
	for _, d := range []float64{5, 20, 40} {
		res, err := env.sweep(sim.Sweep{
			Videos:          env.Videos,
			Users:           users,
			Bandwidths:      traces,
			Schemes:         []string{"dragonfly", "flare", "pano", "twotier"},
			PredictErrorDeg: d,
		})
		if err != nil {
			return nil, err
		}
		row := Fig21to23Row{ErrorDeg: d, Schemes: map[string]SchemeSummary{}}
		for name, sessions := range res {
			row.Schemes[name] = Summarize(name, sessions)
		}
		rows = append(rows, row)
		fprintf(w, "D = %.0f degrees:\n", d)
		fprintf(w, "  %-12s %9s | %9s | %9s | %10s\n", "scheme", "medPSNR", "medRebuf", "medWaste", "sess.incmp")
		for _, name := range sortedNames(row.Schemes) {
			s := row.Schemes[name]
			fprintf(w, "  %-12s %8.2f  | %8.2f%% | %7.1f%% | %8.0f%%\n",
				s.Name, s.Score.Median, s.MedianRebufferPct, s.MedianWastagePct, 100*s.SessionsWithIncomplete)
		}
	}
	return rows, nil
}

// Fig5Result summarizes head movement during stalls.
type Fig5Result struct {
	StallCount         int
	MeanYawDuringStall float64 // mean absolute yaw displacement per stall
	MaxYawDuringStall  float64
	MeanStallDuration  time.Duration
}

// Fig5YawDuringStalls reproduces the Figure 5 observation: users keep
// moving — often substantially — while stall-based systems rebuffer, which
// is why pausing for all tiles backfires.
func Fig5YawDuringStalls(env *Env, w io.Writer) (*Fig5Result, error) {
	// Flare on the most constrained traces produces the stalls.
	res, err := env.sweep(sim.Sweep{
		Videos:     env.Videos[:1],
		Users:      env.Users,
		Bandwidths: env.Belgian,
		Schemes:    []string{"flare"},
	})
	if err != nil {
		return nil, err
	}
	out := &Fig5Result{}
	var yaws []float64
	var durs []float64
	for _, s := range res["Flare"] {
		var user *trace.HeadTrace
		for _, u := range env.Users {
			if u.UserID == s.UserID {
				user = u
			}
		}
		if user == nil {
			continue
		}
		for _, iv := range s.StallIntervals {
			out.StallCount++
			// Accumulate absolute yaw travel over the stall interval.
			disp := 0.0
			prev := user.At(iv.Start)
			for t := iv.Start + user.SamplePeriod; t <= iv.End; t += user.SamplePeriod {
				cur := user.At(t)
				disp += absFloat(geom.YawDelta(prev.Yaw, cur.Yaw))
				prev = cur
			}
			yaws = append(yaws, disp)
			durs = append(durs, (iv.End - iv.Start).Seconds())
			if disp > out.MaxYawDuringStall {
				out.MaxYawDuringStall = disp
			}
		}
	}
	out.MeanYawDuringStall = stats.Mean(yaws)
	out.MeanStallDuration = time.Duration(stats.Mean(durs) * float64(time.Second))
	fprintf(w, "== Figure 5: user movement during stalls ==\n")
	fprintf(w, "Paper: users can move significantly (tens of degrees of yaw) while rebuffering.\n\n")
	fprintf(w, "Flare stalls observed: %d; mean |yaw| during a stall: %.1f deg (max %.1f); mean stall %.2fs\n",
		out.StallCount, out.MeanYawDuringStall, out.MaxYawDuringStall, out.MeanStallDuration.Seconds())
	return out, nil
}

func absFloat(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
