package quality

import (
	"testing"

	"dragonfly/internal/geom"
	"dragonfly/internal/video"
)

func scoredManifest() *video.Manifest {
	return video.Generate(video.GenParams{ID: "score-table", Rows: 4, Cols: 4, FPS: 5, ChunkFrames: 5, NumChunks: 3, Seed: 11})
}

func TestScoreTableMatchesTileScore(t *testing.T) {
	man := scoredManifest()
	for _, m := range []Metric{PSNR, PSPNR} {
		tbl := NewScoreTable(man, m)
		if tbl.Metric() != m {
			t.Fatalf("metric %v stored as %v", m, tbl.Metric())
		}
		for c := 0; c < man.NumChunks; c++ {
			for tile := 0; tile < man.NumTiles(); tile++ {
				row := tbl.Row(c, geom.TileID(tile))
				for q := 0; q < video.NumQualities; q++ {
					want := TileScore(m, man, c, geom.TileID(tile), video.Quality(q))
					if got := tbl.Score(c, geom.TileID(tile), video.Quality(q)); got != want {
						t.Fatalf("%v chunk %d tile %d q %d: table %v != exact %v", m, c, tile, q, got, want)
					}
					if row[q] != want {
						t.Fatalf("%v chunk %d tile %d q %d: row %v != exact %v", m, c, tile, q, row[q], want)
					}
				}
			}
		}
	}
}

func TestScoresSharedPerManifestAndMetric(t *testing.T) {
	man := scoredManifest()
	if Scores(man, PSNR) != Scores(man, PSNR) {
		t.Error("same (manifest, metric) should share one table")
	}
	if Scores(man, PSNR) == Scores(man, PSPNR) {
		t.Error("different metrics must not share a table")
	}
	if Scores(scoredManifest(), PSNR) == Scores(man, PSNR) {
		t.Error("different manifest instances must not share a table")
	}
}

func TestScoreTableLookupAllocationFree(t *testing.T) {
	man := scoredManifest()
	tbl := Scores(man, PSNR)
	if n := testing.AllocsPerRun(100, func() {
		_ = tbl.Score(1, 3, video.Highest)
		_ = tbl.Row(2, 5)
	}); n != 0 {
		t.Errorf("score lookups allocated %v per run", n)
	}
}
