// Package quality implements the objective quality metrics of the paper's
// evaluation (§4.1): PSNR and PSPNR, their MSE-domain aggregation across a
// viewport, and the selection between them that lets every scheme optimize
// either metric (§4.3 "Alternate quality metric: PSPNR").
package quality

import (
	"math"

	"dragonfly/internal/geom"
	"dragonfly/internal/video"
)

// MaxPixel is the peak pixel value for 8-bit video.
const MaxPixel = 255.0

// MSEFromPSNR converts a PSNR in dB to mean squared error.
func MSEFromPSNR(db float64) float64 {
	return MaxPixel * MaxPixel * math.Pow(10, -db/10)
}

// PSNRFromMSE converts mean squared error to PSNR in dB. Zero or negative
// MSE (a perfect reconstruction) saturates at 60 dB, matching the cap used
// when generating manifests.
func PSNRFromMSE(mse float64) float64 {
	if mse <= 0 {
		return 60
	}
	return 10 * math.Log10(MaxPixel*MaxPixel/mse)
}

// Metric selects which per-tile quality score drives scheduling and
// evaluation.
type Metric int

// The two metrics used in the paper's experiments.
const (
	PSNR Metric = iota
	PSPNR
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	if m == PSPNR {
		return "PSPNR"
	}
	return "PSNR"
}

// TileScore returns the manifest's quality score (dB) for a tile variant
// under the selected metric.
func TileScore(m Metric, man *video.Manifest, chunk int, tile geom.TileID, q video.Quality) float64 {
	if m == PSPNR {
		return man.TilePSPNR(chunk, tile, q)
	}
	return man.TilePSNR(chunk, tile, q)
}

// ViewportAccumulator aggregates per-tile quality scores into one viewport
// score by averaging in the MSE domain, weighted by each tile's share of
// the viewport's solid angle. dB values must not be averaged directly:
// PSNR is logarithmic.
type ViewportAccumulator struct {
	weightedMSE float64
	weight      float64
}

// Add records one tile covering `weight` of the viewport with the given
// quality score in dB. Non-positive weights are ignored.
func (a *ViewportAccumulator) Add(weight, db float64) {
	if weight <= 0 {
		return
	}
	a.weightedMSE += weight * MSEFromPSNR(db)
	a.weight += weight
}

// PSNR returns the aggregate viewport score in dB, or 0 if nothing was
// added (an entirely absent viewport is accounted by the caller via the
// black-tile penalty instead).
func (a *ViewportAccumulator) PSNR() float64 {
	if a.weight == 0 {
		return 0
	}
	return PSNRFromMSE(a.weightedMSE / a.weight)
}

// Empty reports whether nothing has been accumulated.
func (a *ViewportAccumulator) Empty() bool { return a.weight == 0 }
