package quality_test

import (
	"fmt"

	"dragonfly/internal/quality"
)

// ExampleViewportAccumulator shows why viewport quality must be aggregated
// in the MSE domain: one bad tile drags the viewport far below the
// arithmetic dB mean.
func ExampleViewportAccumulator() {
	var acc quality.ViewportAccumulator
	acc.Add(1, 45) // a good tile
	acc.Add(1, 15) // a terrible (nearly blank) tile of equal area
	fmt.Printf("arithmetic mean: 30.0 dB\n")
	fmt.Printf("MSE-domain aggregate: %.1f dB\n", acc.PSNR())
	// Output:
	// arithmetic mean: 30.0 dB
	// MSE-domain aggregate: 18.0 dB
}
