package quality

import (
	"sync"

	"dragonfly/internal/geom"
	"dragonfly/internal/video"
)

// ScoreTable memoizes TileScore for one (manifest, metric) pair into a flat
// [chunk][tile][quality] array. The manifest's accessor path re-validates
// indices and branches on the metric on every call; the scheduler evaluates
// tile scores thousands of times per decision, so the flat copy keeps the
// hot path to a single bounds-checked load. Immutable after build.
type ScoreTable struct {
	metric Metric
	tiles  int
	scores []float64 // [(chunk*tiles+tile)*NumQualities + q]
}

// NewScoreTable builds the table by evaluating TileScore for every
// (chunk, tile, quality) variant of the manifest.
func NewScoreTable(man *video.Manifest, metric Metric) *ScoreTable {
	tiles := man.NumTiles()
	t := &ScoreTable{
		metric: metric,
		tiles:  tiles,
		scores: make([]float64, man.NumChunks*tiles*video.NumQualities),
	}
	i := 0
	for c := 0; c < man.NumChunks; c++ {
		for tile := 0; tile < tiles; tile++ {
			for q := 0; q < video.NumQualities; q++ {
				t.scores[i] = TileScore(metric, man, c, geom.TileID(tile), video.Quality(q))
				i++
			}
		}
	}
	return t
}

// Metric returns the metric the table was built for.
func (t *ScoreTable) Metric() Metric { return t.metric }

// Score returns the memoized TileScore of the variant.
func (t *ScoreTable) Score(chunk int, tile geom.TileID, q video.Quality) float64 {
	return t.scores[(chunk*t.tiles+int(tile))*video.NumQualities+int(q)]
}

// Row returns the per-quality scores of one (chunk, tile), ascending by
// quality level. The slice aliases the table; callers must not modify it.
func (t *ScoreTable) Row(chunk int, tile geom.TileID) []float64 {
	base := (chunk*t.tiles + int(tile)) * video.NumQualities
	return t.scores[base : base+video.NumQualities]
}

// scoreKey identifies a shared score table. Manifests are compared by
// pointer: they are built once per sweep and shared across sessions.
type scoreKey struct {
	man    *video.Manifest
	metric Metric
}

type scoreHolder struct {
	once  sync.Once
	table *ScoreTable
}

var sharedScores sync.Map // scoreKey -> *scoreHolder

// Scores returns the process-wide score table for the manifest and metric,
// building it once on first use. Concurrent callers block until the single
// build completes rather than racing to build duplicates.
func Scores(man *video.Manifest, metric Metric) *ScoreTable {
	key := scoreKey{man: man, metric: metric}
	h, ok := sharedScores.Load(key)
	if !ok {
		h, _ = sharedScores.LoadOrStore(key, &scoreHolder{})
	}
	holder := h.(*scoreHolder)
	holder.once.Do(func() { holder.table = NewScoreTable(man, metric) })
	return holder.table
}
