package quality

import (
	"math"
	"testing"
	"testing/quick"

	"dragonfly/internal/geom"
	"dragonfly/internal/video"
)

func TestPSNRMSERoundTrip(t *testing.T) {
	f := func(dbRaw uint8) bool {
		db := 5 + float64(dbRaw%50) // 5..55 dB
		back := PSNRFromMSE(MSEFromPSNR(db))
		return math.Abs(back-db) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPSNRFromMSEKnownValues(t *testing.T) {
	// MSE 255² => 0 dB; MSE 650.25 (=255²/100) => 20 dB.
	if got := PSNRFromMSE(255 * 255); math.Abs(got) > 1e-9 {
		t.Errorf("PSNR(255^2) = %v, want 0", got)
	}
	if got := PSNRFromMSE(650.25); math.Abs(got-20) > 1e-9 {
		t.Errorf("PSNR(650.25) = %v, want 20", got)
	}
	if got := PSNRFromMSE(0); got != 60 {
		t.Errorf("PSNR(0) = %v, want cap 60", got)
	}
	if got := PSNRFromMSE(-1); got != 60 {
		t.Errorf("PSNR(-1) = %v, want cap 60", got)
	}
}

func TestMetricString(t *testing.T) {
	if PSNR.String() != "PSNR" || PSPNR.String() != "PSPNR" {
		t.Error("metric names wrong")
	}
}

func TestTileScoreSelectsMetric(t *testing.T) {
	m := video.Generate(video.GenParams{ID: "q", Seed: 1, NumChunks: 2})
	tile := geom.TileID(10)
	p := TileScore(PSNR, m, 0, tile, video.Highest)
	pp := TileScore(PSPNR, m, 0, tile, video.Highest)
	if p != m.TilePSNR(0, tile, video.Highest) {
		t.Error("PSNR score mismatch")
	}
	if pp != m.TilePSPNR(0, tile, video.Highest) {
		t.Error("PSPNR score mismatch")
	}
	if pp < p {
		t.Error("PSPNR should be >= PSNR")
	}
}

func TestViewportAccumulator(t *testing.T) {
	var a ViewportAccumulator
	if !a.Empty() || a.PSNR() != 0 {
		t.Error("zero accumulator should be empty")
	}
	a.Add(1, 40)
	if math.Abs(a.PSNR()-40) > 1e-9 {
		t.Errorf("single tile PSNR = %v", a.PSNR())
	}
	// Adding an equally weighted much worse tile must pull the aggregate
	// far below the arithmetic dB mean (MSE-domain averaging).
	a.Add(1, 10)
	got := a.PSNR()
	arithmetic := 25.0
	if got >= arithmetic-5 {
		t.Errorf("aggregate %v should be well below arithmetic mean %v", got, arithmetic)
	}
	// The exact value: mean MSE of 40 dB and 10 dB tiles.
	want := PSNRFromMSE((MSEFromPSNR(40) + MSEFromPSNR(10)) / 2)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("aggregate = %v, want %v", got, want)
	}
}

func TestViewportAccumulatorWeights(t *testing.T) {
	var a, b ViewportAccumulator
	a.Add(3, 30)
	a.Add(1, 50)
	b.Add(0.75, 30)
	b.Add(0.25, 50)
	if math.Abs(a.PSNR()-b.PSNR()) > 1e-9 {
		t.Error("accumulator not scale invariant in weights")
	}
	var c ViewportAccumulator
	c.Add(-1, 30) // ignored
	c.Add(0, 50)  // ignored
	if !c.Empty() {
		t.Error("non-positive weights should be ignored")
	}
}

func TestViewportAccumulatorBounds(t *testing.T) {
	f := func(w1Raw, w2Raw, d1Raw, d2Raw uint8) bool {
		w1 := float64(w1Raw)/64 + 0.1
		w2 := float64(w2Raw)/64 + 0.1
		d1 := 5 + float64(d1Raw%50)
		d2 := 5 + float64(d2Raw%50)
		var a ViewportAccumulator
		a.Add(w1, d1)
		a.Add(w2, d2)
		got := a.PSNR()
		lo, hi := math.Min(d1, d2), math.Max(d1, d2)
		return got >= lo-1e-9 && got <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
