package player

import (
	"math/bits"
	"time"

	"dragonfly/internal/geom"
	"dragonfly/internal/video"
)

// notReceived marks a variant that never arrived.
const notReceived = time.Duration(-1)

// Received tracks which tile variants the client holds and when each
// arrived. Render-time availability checks use the arrival instants; the
// schedulers use the "has it at all" views.
type Received struct {
	m *video.Manifest

	primaryAt  []time.Duration // [(chunk*tiles+tile)*Q + q]
	maskTileAt []time.Duration // [chunk*tiles + tile]
	maskFullAt []time.Duration // [chunk]
}

// NewReceived creates an empty received-state for a manifest.
func NewReceived(m *video.Manifest) *Received {
	tiles := m.NumTiles()
	r := &Received{
		m:          m,
		primaryAt:  make([]time.Duration, m.NumChunks*tiles*video.NumQualities),
		maskTileAt: make([]time.Duration, m.NumChunks*tiles),
		maskFullAt: make([]time.Duration, m.NumChunks),
	}
	for i := range r.primaryAt {
		r.primaryAt[i] = notReceived
	}
	for i := range r.maskTileAt {
		r.maskTileAt[i] = notReceived
	}
	for i := range r.maskFullAt {
		r.maskFullAt[i] = notReceived
	}
	return r
}

func (r *Received) pIdx(chunk int, tile geom.TileID, q video.Quality) int {
	return (chunk*r.m.NumTiles()+int(tile))*video.NumQualities + int(q)
}

// Record notes the delivery of an item at the given instant.
func (r *Received) Record(it RequestItem, at time.Duration) {
	switch {
	case it.Stream == Masking && it.Full360:
		if r.maskFullAt[it.Chunk] == notReceived {
			r.maskFullAt[it.Chunk] = at
		}
	case it.Stream == Masking:
		i := it.Chunk*r.m.NumTiles() + int(it.Tile)
		if r.maskTileAt[i] == notReceived {
			r.maskTileAt[i] = at
		}
	default:
		i := r.pIdx(it.Chunk, it.Tile, it.Quality)
		if r.primaryAt[i] == notReceived {
			r.primaryAt[i] = at
		}
	}
}

// BestPrimaryBy returns the highest primary quality of the tile that had
// arrived by instant t, and whether any arrived.
func (r *Received) BestPrimaryBy(chunk int, tile geom.TileID, t time.Duration) (video.Quality, bool) {
	for q := video.Quality(video.NumQualities - 1); q >= 0; q-- {
		at := r.primaryAt[r.pIdx(chunk, tile, q)]
		if at != notReceived && at <= t {
			return q, true
		}
	}
	return 0, false
}

// HasPrimary reports whether the exact primary variant has arrived (at any
// time so far).
func (r *Received) HasPrimary(chunk int, tile geom.TileID, q video.Quality) bool {
	return r.primaryAt[r.pIdx(chunk, tile, q)] != notReceived
}

// BestPrimary returns the highest primary quality held for the tile.
func (r *Received) BestPrimary(chunk int, tile geom.TileID) (video.Quality, bool) {
	return r.BestPrimaryBy(chunk, tile, 1<<62)
}

// HasMaskingBy reports whether a masking version (tiled or full-360°) of the
// tile had arrived by instant t.
func (r *Received) HasMaskingBy(chunk int, tile geom.TileID, t time.Duration) bool {
	if at := r.maskFullAt[chunk]; at != notReceived && at <= t {
		return true
	}
	at := r.maskTileAt[chunk*r.m.NumTiles()+int(tile)]
	return at != notReceived && at <= t
}

// HasMasking reports whether any masking version of the tile has arrived.
func (r *Received) HasMasking(chunk int, tile geom.TileID) bool {
	return r.HasMaskingBy(chunk, tile, 1<<62)
}

// HasFullMasking reports whether the full-360° masking chunk has arrived.
func (r *Received) HasFullMasking(chunk int) bool {
	return r.maskFullAt[chunk] != notReceived
}

// HeldSummary is a compact bitmap snapshot of which tile variants a client
// holds, independent of quality level — exactly the granularity of the
// server's redundancy-suppression state, so a reconnecting client can ship
// it in a resume handshake and never re-download a held tile.
type HeldSummary struct {
	NumChunks, NumTiles int
	// Primary and MaskTile are bitmaps over chunk*NumTiles+tile; MaskFull
	// is a bitmap over chunk.
	Primary  []byte
	MaskTile []byte
	MaskFull []byte
}

func bitGet(b []byte, i int) bool { return b[i>>3]&(1<<uint(i&7)) != 0 }
func bitSet(b []byte, i int)      { b[i>>3] |= 1 << uint(i&7) }

// Summary captures the current held state as bitmaps.
func (r *Received) Summary() HeldSummary {
	tiles := r.m.NumTiles()
	h := HeldSummary{
		NumChunks: r.m.NumChunks,
		NumTiles:  tiles,
		Primary:   make([]byte, (r.m.NumChunks*tiles+7)/8),
		MaskTile:  make([]byte, (r.m.NumChunks*tiles+7)/8),
		MaskFull:  make([]byte, (r.m.NumChunks+7)/8),
	}
	for ct := 0; ct < r.m.NumChunks*tiles; ct++ {
		for q := 0; q < video.NumQualities; q++ {
			if r.primaryAt[ct*video.NumQualities+q] != notReceived {
				bitSet(h.Primary, ct)
				break
			}
		}
		if r.maskTileAt[ct] != notReceived {
			bitSet(h.MaskTile, ct)
		}
	}
	for c := 0; c < r.m.NumChunks; c++ {
		if r.maskFullAt[c] != notReceived {
			bitSet(h.MaskFull, c)
		}
	}
	return h
}

// Valid reports whether the bitmap lengths match the declared dimensions.
func (h HeldSummary) Valid() bool {
	if h.NumChunks < 0 || h.NumTiles < 0 {
		return false
	}
	perTile := (h.NumChunks*h.NumTiles + 7) / 8
	perChunk := (h.NumChunks + 7) / 8
	return len(h.Primary) == perTile && len(h.MaskTile) == perTile && len(h.MaskFull) == perChunk
}

// HasPrimary reports whether any primary variant of the tile is held.
func (h HeldSummary) HasPrimary(chunk, tile int) bool {
	return bitGet(h.Primary, chunk*h.NumTiles+tile)
}

// HasMaskTile reports whether the tiled masking variant is held.
func (h HeldSummary) HasMaskTile(chunk, tile int) bool {
	return bitGet(h.MaskTile, chunk*h.NumTiles+tile)
}

// HasMaskFull reports whether the full-360° masking chunk is held.
func (h HeldSummary) HasMaskFull(chunk int) bool {
	return bitGet(h.MaskFull, chunk)
}

// Count is the total number of held entries across all three maps.
func (h HeldSummary) Count() int {
	n := 0
	for _, m := range [][]byte{h.Primary, h.MaskTile, h.MaskFull} {
		for _, b := range m {
			n += bits.OnesCount8(b)
		}
	}
	return n
}
