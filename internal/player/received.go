package player

import (
	"time"

	"dragonfly/internal/geom"
	"dragonfly/internal/video"
)

// notReceived marks a variant that never arrived.
const notReceived = time.Duration(-1)

// Received tracks which tile variants the client holds and when each
// arrived. Render-time availability checks use the arrival instants; the
// schedulers use the "has it at all" views.
type Received struct {
	m *video.Manifest

	primaryAt  []time.Duration // [(chunk*tiles+tile)*Q + q]
	maskTileAt []time.Duration // [chunk*tiles + tile]
	maskFullAt []time.Duration // [chunk]
}

// NewReceived creates an empty received-state for a manifest.
func NewReceived(m *video.Manifest) *Received {
	tiles := m.NumTiles()
	r := &Received{
		m:          m,
		primaryAt:  make([]time.Duration, m.NumChunks*tiles*video.NumQualities),
		maskTileAt: make([]time.Duration, m.NumChunks*tiles),
		maskFullAt: make([]time.Duration, m.NumChunks),
	}
	for i := range r.primaryAt {
		r.primaryAt[i] = notReceived
	}
	for i := range r.maskTileAt {
		r.maskTileAt[i] = notReceived
	}
	for i := range r.maskFullAt {
		r.maskFullAt[i] = notReceived
	}
	return r
}

func (r *Received) pIdx(chunk int, tile geom.TileID, q video.Quality) int {
	return (chunk*r.m.NumTiles()+int(tile))*video.NumQualities + int(q)
}

// Record notes the delivery of an item at the given instant.
func (r *Received) Record(it RequestItem, at time.Duration) {
	switch {
	case it.Stream == Masking && it.Full360:
		if r.maskFullAt[it.Chunk] == notReceived {
			r.maskFullAt[it.Chunk] = at
		}
	case it.Stream == Masking:
		i := it.Chunk*r.m.NumTiles() + int(it.Tile)
		if r.maskTileAt[i] == notReceived {
			r.maskTileAt[i] = at
		}
	default:
		i := r.pIdx(it.Chunk, it.Tile, it.Quality)
		if r.primaryAt[i] == notReceived {
			r.primaryAt[i] = at
		}
	}
}

// BestPrimaryBy returns the highest primary quality of the tile that had
// arrived by instant t, and whether any arrived.
func (r *Received) BestPrimaryBy(chunk int, tile geom.TileID, t time.Duration) (video.Quality, bool) {
	for q := video.Quality(video.NumQualities - 1); q >= 0; q-- {
		at := r.primaryAt[r.pIdx(chunk, tile, q)]
		if at != notReceived && at <= t {
			return q, true
		}
	}
	return 0, false
}

// HasPrimary reports whether the exact primary variant has arrived (at any
// time so far).
func (r *Received) HasPrimary(chunk int, tile geom.TileID, q video.Quality) bool {
	return r.primaryAt[r.pIdx(chunk, tile, q)] != notReceived
}

// BestPrimary returns the highest primary quality held for the tile.
func (r *Received) BestPrimary(chunk int, tile geom.TileID) (video.Quality, bool) {
	return r.BestPrimaryBy(chunk, tile, 1<<62)
}

// HasMaskingBy reports whether a masking version (tiled or full-360°) of the
// tile had arrived by instant t.
func (r *Received) HasMaskingBy(chunk int, tile geom.TileID, t time.Duration) bool {
	if at := r.maskFullAt[chunk]; at != notReceived && at <= t {
		return true
	}
	at := r.maskTileAt[chunk*r.m.NumTiles()+int(tile)]
	return at != notReceived && at <= t
}

// HasMasking reports whether any masking version of the tile has arrived.
func (r *Received) HasMasking(chunk int, tile geom.TileID) bool {
	return r.HasMaskingBy(chunk, tile, 1<<62)
}

// HasFullMasking reports whether the full-360° masking chunk has arrived.
func (r *Received) HasFullMasking(chunk int) bool {
	return r.maskFullAt[chunk] != notReceived
}
