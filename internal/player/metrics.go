package player

import (
	"sort"
	"time"

	"dragonfly/internal/video"
)

// StallInterval is one rebuffering event in session wall time.
type StallInterval struct {
	Start, End time.Duration
}

// Metrics aggregates everything paper §4.1 reports about one session.
type Metrics struct {
	SchemeName string
	VideoID    string
	UserID     string
	TraceID    string

	// FrameScore is the viewport quality (dB, under the session's metric)
	// of each rendered frame; FrameBlank the blank-area fraction.
	FrameScore []float64
	FrameBlank []float64

	TotalFrames      int // frames actually rendered
	IncompleteFrames int // frames with >= 1 fully blank viewport tile
	// PrimarySkipFrames counts frames where >= 1 viewport tile was rendered
	// from masking (or blank) instead of the primary stream — the Fig 13(a)
	// "viewports with skipped primary tiles".
	PrimarySkipFrames int

	StallEvents      int
	RebufferDuration time.Duration
	StartupDelay     time.Duration
	PlayDuration     time.Duration // video time rendered
	WallDuration     time.Duration
	Truncated        bool // session hit the wall-clock safety cap

	// StallIntervals records each rebuffering event (Fig 5 overlays head
	// movement on these).
	StallIntervals []StallInterval

	// SkipHeat[tile] counts frames where the tile was in the viewport but
	// not rendered from the primary stream; BlankHeat[tile] counts frames
	// where it had no renderable version at all; ViewHeat[tile] counts
	// frames where it was in the viewport (Fig 15's heat map).
	SkipHeat  []int64
	BlankHeat []int64
	ViewHeat  []int64

	BytesReceived int64
	BytesUseful   int64

	// Fault-tolerance accounting (robustness extension): connection losses
	// survived by the reconnecting client, wall time spent disconnected,
	// and dedup entries restored on the server via session resume.
	Disconnects    int
	OutageDuration time.Duration
	ResumedTiles   int64

	// Integrity and admission accounting (wire v3): tile payloads whose
	// manifest checksum failed (dropped, never rendered, refetched via the
	// next decide/resume cycle), frames torn down for a CRC-trailer
	// mismatch, and handshakes the server fast-rejected with a retryable
	// busy error before the client got through.
	CorruptTiles  int64
	CorruptFrames int64
	BusyRejects   int64

	// Rendered viewport-tile counts by source (Fig 13(b)).
	RenderedPrimaryByQuality [video.NumQualities]int64
	RenderedMasking          int64
	RenderedBlank            int64
	// RenderedInterpolated counts tiles synthesized from neighboring
	// masking tiles (the §3.2 interpolation optimization, when enabled).
	RenderedInterpolated int64
}

// RenderedViewportTiles is the total number of (frame, viewport-tile) render
// events.
func (m *Metrics) RenderedViewportTiles() int64 {
	var n int64
	for _, c := range m.RenderedPrimaryByQuality {
		n += c
	}
	return n + m.RenderedMasking + m.RenderedBlank + m.RenderedInterpolated
}

// RebufferRatio is stall time over total session wall time (§4.1).
func (m *Metrics) RebufferRatio() float64 {
	total := m.PlayDuration + m.RebufferDuration
	if total <= 0 {
		return 0
	}
	return m.RebufferDuration.Seconds() / total.Seconds()
}

// IncompleteFramePct is the percentage of rendered viewports with at least
// one missing (blank) tile.
func (m *Metrics) IncompleteFramePct() float64 {
	if m.TotalFrames == 0 {
		return 0
	}
	return 100 * float64(m.IncompleteFrames) / float64(m.TotalFrames)
}

// PrimarySkipFramePct is the percentage of rendered viewports with at least
// one primary-skipped tile (Fig 13a).
func (m *Metrics) PrimarySkipFramePct() float64 {
	if m.TotalFrames == 0 {
		return 0
	}
	return 100 * float64(m.PrimarySkipFrames) / float64(m.TotalFrames)
}

// MedianScore returns the session's median per-frame viewport quality (dB).
func (m *Metrics) MedianScore() float64 {
	return percentileOf(m.FrameScore, 50)
}

// ScorePercentile returns the p-th percentile of per-frame quality.
func (m *Metrics) ScorePercentile(p float64) float64 {
	return percentileOf(m.FrameScore, p)
}

// MeanScore returns the arithmetic mean of per-frame quality in dB (the
// per-frame values are already MSE-domain aggregates across the viewport).
func (m *Metrics) MeanScore() float64 {
	if len(m.FrameScore) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range m.FrameScore {
		s += v
	}
	return s / float64(len(m.FrameScore))
}

// MeanBlankArea returns the mean blank-area fraction across frames.
func (m *Metrics) MeanBlankArea() float64 {
	if len(m.FrameBlank) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range m.FrameBlank {
		s += v
	}
	return s / float64(len(m.FrameBlank))
}

// WastagePct is unnecessary bytes over total received bytes (§4.1).
func (m *Metrics) WastagePct() float64 {
	if m.BytesReceived == 0 {
		return 0
	}
	wasted := m.BytesReceived - m.BytesUseful
	return 100 * float64(wasted) / float64(m.BytesReceived)
}

// QualityShare returns the fraction of rendered viewport tiles rendered
// from the primary stream at exactly quality q.
func (m *Metrics) QualityShare(q video.Quality) float64 {
	total := m.RenderedViewportTiles()
	if total == 0 {
		return 0
	}
	return float64(m.RenderedPrimaryByQuality[q]) / float64(total)
}

// MaskingShare returns the fraction of rendered viewport tiles rendered
// from the masking stream.
func (m *Metrics) MaskingShare() float64 {
	total := m.RenderedViewportTiles()
	if total == 0 {
		return 0
	}
	return float64(m.RenderedMasking) / float64(total)
}

// BlankShare returns the fraction of rendered viewport tiles left blank.
func (m *Metrics) BlankShare() float64 {
	total := m.RenderedViewportTiles()
	if total == 0 {
		return 0
	}
	return float64(m.RenderedBlank) / float64(total)
}

func percentileOf(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	idx := int(p / 100 * float64(len(s)-1))
	return s[idx]
}
