package player

import (
	"time"

	"dragonfly/internal/geom"
	"dragonfly/internal/quality"
	"dragonfly/internal/video"
)

// Delivery logs one completed transfer for the wastage accounting.
type Delivery struct {
	Item  RequestItem
	Bytes int64
}

// Accountant performs the per-frame render accounting and final wastage
// computation of §4.1. It is shared between the discrete-event engine and
// the real-time network client: both render viewports the same way, they
// just drive time differently.
type Accountant struct {
	M        *Metrics
	Manifest *video.Manifest
	Grid     *geom.Grid
	Viewport geom.Viewport
	Metric   quality.Metric

	// Interpolate enables the §3.2 future-work optimization: a viewport
	// tile with no renderable version is synthesized from its neighbors'
	// masking tiles (when at least two are available) instead of showing
	// black, at a quality penalty.
	Interpolate bool

	// Render usage: which variants were ever shown (drives wastage).
	renderedPrimaryQ []bool // [(chunk*tiles+tile)*Q+q]
	renderedMasking  []bool // [chunk*tiles+tile]

	// scores memoizes quality.TileScore for the whole manifest; ids/weights
	// are the per-frame cap-weight scratch reused across RenderFrame calls.
	scores  *quality.ScoreTable
	ids     []geom.TileID
	weights []float64
}

// NewAccountant initializes accounting for one session.
func NewAccountant(m *video.Manifest, grid *geom.Grid, vp geom.Viewport, metric quality.Metric, met *Metrics) *Accountant {
	tiles := m.NumTiles()
	if met.SkipHeat == nil {
		met.SkipHeat = make([]int64, tiles)
	}
	if met.BlankHeat == nil {
		met.BlankHeat = make([]int64, tiles)
	}
	if met.ViewHeat == nil {
		met.ViewHeat = make([]int64, tiles)
	}
	return &Accountant{
		M:                met,
		Manifest:         m,
		Grid:             grid,
		Viewport:         vp,
		Metric:           metric,
		renderedPrimaryQ: make([]bool, m.NumChunks*tiles*video.NumQualities),
		renderedMasking:  make([]bool, m.NumChunks*tiles),
		scores:           quality.Scores(m, metric),
	}
}

// RenderFrame accounts one rendered viewport: the given chunk viewed from
// orientation o, with availability evaluated at instant now.
func (a *Accountant) RenderFrame(chunk int, o geom.Orientation, rcv *Received, now time.Duration) {
	a.ids, a.weights = a.Grid.AppendCapWeights(a.ids[:0], a.weights[:0], o, a.Viewport.RadiusDeg)
	ids, weights := a.ids, a.weights
	tiles := a.Manifest.NumTiles()

	var acc quality.ViewportAccumulator
	totalW, blankW := 0.0, 0.0
	incomplete, primarySkip := false, false
	for i, id := range ids {
		w := weights[i]
		totalW += w
		a.M.ViewHeat[id]++
		ct := chunk*tiles + int(id)
		if q, ok := rcv.BestPrimaryBy(chunk, id, now); ok {
			a.renderedPrimaryQ[ct*video.NumQualities+int(q)] = true
			a.M.RenderedPrimaryByQuality[q]++
			acc.Add(w, a.scores.Score(chunk, id, q))
			continue
		}
		primarySkip = true
		a.M.SkipHeat[id]++
		if rcv.HasMaskingBy(chunk, id, now) {
			a.renderedMasking[ct] = true
			a.M.RenderedMasking++
			acc.Add(w, a.scores.Score(chunk, id, video.Lowest))
			continue
		}
		if a.Interpolate {
			if db, ok := a.interpolated(chunk, id, rcv, now); ok {
				a.M.RenderedInterpolated++
				acc.Add(w, db)
				continue
			}
		}
		a.M.RenderedBlank++
		a.M.BlankHeat[id]++
		incomplete = true
		blankW += w
		acc.Add(w, a.Manifest.BlackPSNR(chunk, id))
	}
	a.M.FrameScore = append(a.M.FrameScore, acc.PSNR())
	if totalW > 0 {
		a.M.FrameBlank = append(a.M.FrameBlank, blankW/totalW)
	} else {
		a.M.FrameBlank = append(a.M.FrameBlank, 0)
	}
	if incomplete {
		a.M.IncompleteFrames++
	}
	if primarySkip {
		a.M.PrimarySkipFrames++
	}
	a.M.TotalFrames++
}

// interpolationPenaltyDB is the quality loss of synthesizing a tile from
// its neighbors' masking versions relative to having the masking tile
// itself: interpolation blurs detail and misaligns edges.
const interpolationPenaltyDB = 6

// interpolated attempts the neighbor-interpolation mask of §3.2: with at
// least two 4-neighbors holding a renderable masking version, the hole is
// synthesized at the neighbors' mean masking quality minus a fixed penalty
// (never below the black-render floor). The contributing neighbors' masking
// deliveries count as rendered for the wastage accounting.
func (a *Accountant) interpolated(chunk int, id geom.TileID, rcv *Received, now time.Duration) (float64, bool) {
	tiles := a.Manifest.NumTiles()
	var sum float64
	var contributors []geom.TileID
	for _, n := range a.Grid.Neighbors4(id) {
		if rcv.HasMaskingBy(chunk, n, now) {
			sum += a.scores.Score(chunk, n, video.Lowest)
			contributors = append(contributors, n)
		}
	}
	if len(contributors) < 2 {
		return 0, false
	}
	for _, n := range contributors {
		a.renderedMasking[chunk*tiles+int(n)] = true
	}
	db := sum/float64(len(contributors)) - interpolationPenaltyDB
	if floor := a.Manifest.BlackPSNR(chunk, id); db < floor {
		db = floor
	}
	return db, true
}

// FinishWastage computes the useful-bytes accounting (§4.1) from the
// delivery log: primary tiles are useful if rendered at exactly the
// delivered quality; tiled masking if rendered from masking; a full-360°
// masking chunk earns the cheaper of the tiled-equivalent encoding of its
// rendered area or the whole chunk.
func (a *Accountant) FinishWastage(deliveries []Delivery) {
	tiles := a.Manifest.NumTiles()
	maskFullUseful := func(chunk int) int64 {
		var tiled int64
		for t := 0; t < tiles; t++ {
			if a.renderedMasking[chunk*tiles+t] {
				tiled += a.Manifest.TileSize(chunk, geom.TileID(t), video.Lowest)
			}
		}
		full := a.Manifest.Full360Size(chunk, video.Lowest)
		if tiled < full {
			return tiled
		}
		return full
	}
	for _, d := range deliveries {
		switch {
		case d.Item.Stream == Primary:
			ct := d.Item.Chunk*tiles + int(d.Item.Tile)
			if a.renderedPrimaryQ[ct*video.NumQualities+int(d.Item.Quality)] {
				a.M.BytesUseful += d.Bytes
			}
		case d.Item.Full360:
			a.M.BytesUseful += maskFullUseful(d.Item.Chunk)
		default:
			if a.renderedMasking[d.Item.Chunk*tiles+int(d.Item.Tile)] {
				a.M.BytesUseful += d.Bytes
			}
		}
	}
	if a.M.BytesUseful > a.M.BytesReceived {
		a.M.BytesUseful = a.M.BytesReceived
	}
}
