package player

import (
	"errors"
	"fmt"
	"io"
	"time"

	"dragonfly/internal/decoder"
	"dragonfly/internal/geom"
	"dragonfly/internal/obs"
	"dragonfly/internal/predict"
	"dragonfly/internal/quality"
	"dragonfly/internal/trace"
	"dragonfly/internal/video"
)

// Config describes one streaming session: a scheme playing one video for
// one user over one bandwidth trace.
type Config struct {
	Manifest  *video.Manifest
	Head      *trace.HeadTrace
	Bandwidth *trace.BandwidthTrace
	Scheme    Scheme

	// Metric drives both scheduling (through Context) and evaluation.
	Metric quality.Metric

	// Viewport defaults to geom.DefaultViewport when zero.
	Viewport geom.Viewport

	// PredictorHistory is the viewport-regression window (0 = default).
	PredictorHistory time.Duration
	// PredictErrorDeg injects uniform orientation noise into the predictor's
	// observations (the Figs 21–23 sensitivity methodology); 0 disables.
	PredictErrorDeg  float64
	PredictErrorSeed int64

	// AssumedStartMbps seeds scheduling before any throughput sample exists.
	AssumedStartMbps float64

	// Decoder optionally models the client's media-decode stage: delivered
	// tiles become renderable only once decoded (nil = infinitely fast, as
	// the paper's testbed provisions).
	Decoder *decoder.Model

	// MaskInterpolation enables the §3.2 future-work optimization: holes
	// with no masking tile are synthesized from neighboring masking tiles.
	MaskInterpolation bool

	// Debug, when non-nil, receives a line per scheduling decision,
	// delivery and stall transition — a session event log for inspecting
	// scheme behavior.
	Debug io.Writer

	// Trace, when non-nil, receives structured session events (decisions,
	// fetches, skips, masks, stalls) for JSONL export. Nil disables tracing
	// at the cost of one branch per event.
	Trace *obs.Trace

	// MaxWall caps session wall time against pathological stalls
	// (default: 3x the video duration plus 30 s).
	MaxWall time.Duration
}

// Run plays the session to completion and returns its metrics.
func Run(cfg Config) (*Metrics, error) {
	if cfg.Manifest == nil || cfg.Head == nil || cfg.Bandwidth == nil || cfg.Scheme == nil {
		return nil, errors.New("player: config requires Manifest, Head, Bandwidth and Scheme")
	}
	if len(cfg.Head.Samples) == 0 || cfg.Head.SamplePeriod <= 0 {
		// A zero-length head trace would wedge the event loop (the head
		// schedule never advances) and poison every ratio downstream.
		return nil, errors.New("player: head trace needs samples and a positive sample period")
	}
	if cfg.Viewport.RadiusDeg == 0 {
		cfg.Viewport = geom.DefaultViewport
	}
	if cfg.AssumedStartMbps == 0 {
		cfg.AssumedStartMbps = 5
	}
	videoDur := time.Duration(cfg.Manifest.NumFrames()) * time.Second / time.Duration(cfg.Manifest.FPS)
	if cfg.MaxWall == 0 {
		cfg.MaxWall = 3*videoDur + 30*time.Second
	}
	e := newEngine(cfg)
	e.run()
	return e.finish(), nil
}

// transfer is the in-flight item at the head of the server's send queue.
type transfer struct {
	item      RequestItem
	size      int64
	remaining float64
	started   time.Duration
}

type engine struct {
	cfg      Config
	m        *video.Manifest
	grid     *geom.Grid
	frameDur time.Duration
	policy   StallPolicy

	now time.Duration

	// Playback state.
	playFrame   int
	nextFrameAt time.Duration
	stalled     bool
	startup     bool
	stallStart  time.Duration

	// Event schedule.
	nextHead     time.Duration
	nextDecision time.Duration

	// Network / server state.
	queue    []RequestItem
	inflight *transfer

	sentPrimary  []int8 // max primary quality sent per (chunk, tile); -1 none
	sentMaskTile []bool
	sentMaskFull []bool

	received   *Received
	deliveries []Delivery
	acct       *Accountant

	vpPred *predict.Viewport
	bwPred *predict.Bandwidth

	// Reusable per-decision scratch: decide() refills ctx in place instead
	// of allocating a Context (plus two method-value closures) per epoch,
	// and the frame loop reuses vpTiles for viewport-tile discovery.
	ctx     Context
	vpTiles []geom.TileID

	met *Metrics
}

func newEngine(cfg Config) *engine {
	m := cfg.Manifest
	tiles := m.NumTiles()
	e := &engine{
		cfg:          cfg,
		m:            m,
		grid:         m.Grid(),
		frameDur:     time.Second / time.Duration(m.FPS),
		policy:       cfg.Scheme.StallPolicy(),
		stalled:      true, // startup: waiting for the first frame
		startup:      true,
		sentPrimary:  make([]int8, m.NumChunks*tiles),
		sentMaskTile: make([]bool, m.NumChunks*tiles),
		sentMaskFull: make([]bool, m.NumChunks),
		received:     NewReceived(m),
		bwPred:       predict.NewBandwidth(0),
		met: &Metrics{
			SchemeName: cfg.Scheme.Name(),
			VideoID:    m.VideoID,
			UserID:     cfg.Head.UserID,
			TraceID:    cfg.Bandwidth.ID,
			SkipHeat:   make([]int64, tiles),
			BlankHeat:  make([]int64, tiles),
			ViewHeat:   make([]int64, tiles),
		},
	}
	for i := range e.sentPrimary {
		e.sentPrimary[i] = -1
	}
	e.acct = NewAccountant(m, e.grid, cfg.Viewport, cfg.Metric, e.met)
	e.acct.Interpolate = cfg.MaskInterpolation
	if cfg.PredictErrorDeg > 0 {
		e.vpPred = predict.NewViewportWithError(cfg.PredictorHistory, cfg.PredictErrorDeg, cfg.PredictErrorSeed)
	} else {
		e.vpPred = predict.NewViewport(cfg.PredictorHistory)
	}
	// The invariant Context fields — and the two method-value closures,
	// which would otherwise allocate on every decision — are bound once.
	e.ctx = Context{
		Manifest:      m,
		Grid:          e.grid,
		Viewport:      cfg.Viewport,
		Received:      e.received,
		Predict:       e.vpPred.Predict,
		FrameDuration: e.frameDur,
		FrameDeadline: e.frameDeadline,
	}
	return e
}

func (e *engine) run() {
	totalFrames := e.m.NumFrames()
	headPeriod := e.cfg.Head.SamplePeriod
	interval := e.cfg.Scheme.DecisionInterval()
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	// Trace header: the cohort key (trace class x network class) fleet
	// rollups aggregate this session under.
	e.cfg.Trace.Add(obs.SessionEvent(e.m.VideoID, e.cfg.Head.ClassName()+":"+e.cfg.Bandwidth.NetClass()))
	for e.playFrame < totalFrames {
		if e.now >= e.cfg.MaxWall {
			e.met.Truncated = true
			if e.stalled && !e.startup {
				e.met.RebufferDuration += e.now - e.stallStart
				e.stalled = false
			}
			break
		}
		// Earliest control event.
		tNext := e.nextHead
		if e.nextDecision < tNext {
			tNext = e.nextDecision
		}
		if !e.stalled && e.nextFrameAt < tNext {
			tNext = e.nextFrameAt
		}
		if tNext > e.cfg.MaxWall {
			tNext = e.cfg.MaxWall
		}

		// Advance the network to tNext, delivering at most one item (the
		// loop re-enters for the rest).
		e.promote()
		if e.inflight != nil {
			done := e.now + e.cfg.Bandwidth.TimeToTransfer(e.inflight.remaining, e.now)
			if done <= tNext {
				e.now = done
				e.deliver()
				e.tryResume()
				continue
			}
			e.inflight.remaining -= e.cfg.Bandwidth.BytesBetween(e.now, tNext)
		}
		e.now = tNext

		// Dispatch control events due now.
		for e.now >= e.nextHead {
			e.vpPred.Observe(e.nextHead, e.cfg.Head.At(e.nextHead))
			e.nextHead += headPeriod
		}
		e.tryResume()
		if e.now >= e.nextDecision {
			e.decide()
			e.nextDecision = e.now + interval
		}
		if !e.stalled && e.now >= e.nextFrameAt && e.playFrame < totalFrames {
			e.renderOrStall()
		}
	}
	if e.stalled && !e.startup && !e.met.Truncated {
		// Video ended mid-stall (cannot happen: frames gate the loop), kept
		// for safety.
		e.met.RebufferDuration += e.now - e.stallStart
	}
	e.met.WallDuration = e.now
	e.met.PlayDuration = time.Duration(e.met.TotalFrames) * e.frameDur
}

// promote moves the next sendable queued item into the in-flight slot,
// applying the server's redundancy rule: a tile already transmitted on the
// primary stream is never re-sent; masking-only tiles may be upgraded
// (paper §3.3).
func (e *engine) promote() {
	if e.inflight != nil {
		return
	}
	tiles := e.m.NumTiles()
	for len(e.queue) > 0 {
		it := e.queue[0]
		e.queue = e.queue[1:]
		switch {
		case it.Stream == Primary:
			ct := it.Chunk*tiles + int(it.Tile)
			if e.sentPrimary[ct] >= 0 {
				continue
			}
			e.sentPrimary[ct] = int8(it.Quality)
		case it.Full360:
			if e.sentMaskFull[it.Chunk] {
				continue
			}
			e.sentMaskFull[it.Chunk] = true
		default:
			ct := it.Chunk*tiles + int(it.Tile)
			if e.sentMaskTile[ct] || e.sentMaskFull[it.Chunk] {
				continue
			}
			e.sentMaskTile[ct] = true
		}
		size := it.Size(e.m)
		e.inflight = &transfer{item: it, size: size, remaining: float64(size), started: e.now}
		return
	}
}

func (e *engine) deliver() {
	tr := e.inflight
	e.inflight = nil
	// Render availability is gated on decode completion when a decoder
	// model is configured; throughput sampling still uses delivery time.
	e.received.Record(tr.item, e.cfg.Decoder.DecodeDone(e.now, tr.size))
	e.deliveries = append(e.deliveries, Delivery{Item: tr.item, Bytes: tr.size})
	e.met.BytesReceived += tr.size
	e.bwPred.ObserveTransfer(tr.size, e.now-tr.started)
	e.cfg.Trace.Add(obs.Event{At: e.now, Kind: obs.EvFetch, Chunk: tr.item.Chunk, Tile: int(tr.item.Tile), N: tr.size})
	e.debugf("deliver %s chunk=%d tile=%d q=%d bytes=%d", tr.item.Stream, tr.item.Chunk, tr.item.Tile, tr.item.Quality, tr.size)
}

func (e *engine) decide() {
	mbps := e.bwPred.PredictMbps()
	if mbps <= 0 {
		mbps = e.cfg.AssumedStartMbps
	}
	e.ctx.Now = e.now
	e.ctx.PlayFrame = e.playFrame
	e.ctx.Stalled = e.stalled
	e.ctx.PredictedMbps = mbps
	e.queue = e.cfg.Scheme.Decide(&e.ctx)
	e.cfg.Trace.Record(e.now, obs.EvDecide, int64(len(e.queue)))
	e.debugf("decide frame=%d stalled=%v est=%.1fMbps items=%d", e.playFrame, e.stalled, mbps, len(e.queue))
}

// debugf writes one event-log line when Config.Debug is set.
func (e *engine) debugf(format string, args ...any) {
	if e.cfg.Debug == nil {
		return
	}
	fmt.Fprintf(e.cfg.Debug, "%8.3fs  ", e.now.Seconds())
	fmt.Fprintf(e.cfg.Debug, format, args...)
	fmt.Fprintln(e.cfg.Debug)
}

// frameDeadline estimates when the given frame starts rendering, assuming
// no further stalls.
func (e *engine) frameDeadline(frame int) time.Duration {
	base := e.nextFrameAt
	if e.stalled {
		base = e.now
	}
	return base + time.Duration(frame-e.playFrame)*e.frameDur
}

// startupGrace caps how long a continuous-playback (NeverStall) scheme
// waits for its first frame: after this, playback begins even with missing
// tiles, matching the skip discipline.
const startupGrace = time.Second

// requirementMet checks the stall policy for the given viewport tiles.
func (e *engine) requirementMet(chunk int, ids []geom.TileID, startup bool) bool {
	if startup && e.policy == NeverStall && e.now >= startupGrace {
		return true
	}
	for _, id := range ids {
		switch {
		case startup || e.policy == StallOnMissingAny:
			_, okP := e.received.BestPrimaryBy(chunk, id, e.now)
			if !okP && !e.received.HasMaskingBy(chunk, id, e.now) {
				return false
			}
		case e.policy == StallOnMissingMasking:
			if !e.received.HasMaskingBy(chunk, id, e.now) {
				return false
			}
		}
	}
	return true
}

// tryResume ends a stall (or the startup wait) once the current viewport is
// renderable again.
func (e *engine) tryResume() {
	if !e.stalled {
		return
	}
	o := e.cfg.Head.At(e.now)
	e.vpTiles = e.grid.AppendTilesInCap(e.vpTiles[:0], o, e.cfg.Viewport.RadiusDeg)
	chunk := e.m.ChunkOfFrame(e.playFrame)
	if !e.requirementMet(chunk, e.vpTiles, e.startup) {
		return
	}
	if e.startup {
		e.met.StartupDelay = e.now
		e.startup = false
		e.cfg.Trace.Record(e.now, obs.EvStartup, int64(e.now/time.Millisecond))
		e.debugf("startup complete, playback begins")
	} else {
		e.met.RebufferDuration += e.now - e.stallStart
		e.met.StallIntervals = append(e.met.StallIntervals, StallInterval{Start: e.stallStart, End: e.now})
		e.cfg.Trace.Record(e.now, obs.EvResume, int64((e.now-e.stallStart)/time.Millisecond))
		e.debugf("resume after %s stall", e.now-e.stallStart)
	}
	e.stalled = false
	e.renderFrame()
}

// renderOrStall runs at a frame deadline: render it, or enter a stall if
// the policy demands complete viewports.
func (e *engine) renderOrStall() {
	o := e.cfg.Head.At(e.now)
	e.vpTiles = e.grid.AppendTilesInCap(e.vpTiles[:0], o, e.cfg.Viewport.RadiusDeg)
	chunk := e.m.ChunkOfFrame(e.playFrame)
	if e.policy != NeverStall && !e.requirementMet(chunk, e.vpTiles, false) {
		e.stalled = true
		e.stallStart = e.now
		e.met.StallEvents++
		e.cfg.Trace.Add(obs.Event{At: e.now, Kind: obs.EvStall, Chunk: chunk})
		e.debugf("stall frame=%d chunk=%d", e.playFrame, chunk)
		return
	}
	e.renderFrame()
}

// renderFrame renders playFrame at the current instant and advances
// playback.
func (e *engine) renderFrame() {
	o := e.cfg.Head.At(e.now)
	chunk := e.m.ChunkOfFrame(e.playFrame)
	skips, masks, blanks := e.met.PrimarySkipFrames, e.met.RenderedMasking, e.met.RenderedBlank
	e.acct.RenderFrame(chunk, o, e.received, e.now)
	if e.cfg.Trace != nil {
		// Per-frame display events, derived from the accountant's deltas.
		if n := len(e.met.FrameScore); n > 0 {
			e.cfg.Trace.Add(obs.Event{At: e.now, Kind: obs.EvQuality, Chunk: chunk, N: int64(e.met.FrameScore[n-1] * 100)})
		}
		if e.met.PrimarySkipFrames > skips {
			e.cfg.Trace.Add(obs.Event{At: e.now, Kind: obs.EvSkip, Chunk: chunk})
		}
		if d := e.met.RenderedMasking - masks; d > 0 {
			e.cfg.Trace.Add(obs.Event{At: e.now, Kind: obs.EvMask, Chunk: chunk, N: d})
		}
		if d := e.met.RenderedBlank - blanks; d > 0 {
			e.cfg.Trace.Add(obs.Event{At: e.now, Kind: obs.EvBlank, Chunk: chunk, N: d})
		}
	}
	e.playFrame++
	e.nextFrameAt = e.now + e.frameDur
}

// finish computes the wastage accounting (§4.1) and returns the metrics.
func (e *engine) finish() *Metrics {
	e.acct.FinishWastage(e.deliveries)
	return e.met
}
