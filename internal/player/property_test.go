package player

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"dragonfly/internal/decoder"
	"dragonfly/internal/geom"
	"dragonfly/internal/trace"
	"dragonfly/internal/video"
)

// randomScheme issues a random-but-valid fetch list each epoch, seeded
// deterministically; used to fuzz engine invariants.
type randomScheme struct {
	rng    *rand.Rand
	policy StallPolicy
}

func (s *randomScheme) Name() string                    { return "random" }
func (s *randomScheme) DecisionInterval() time.Duration { return 100 * time.Millisecond }
func (s *randomScheme) StallPolicy() StallPolicy        { return s.policy }
func (s *randomScheme) Decide(ctx *Context) []RequestItem {
	n := s.rng.Intn(30)
	items := make([]RequestItem, 0, n)
	for i := 0; i < n; i++ {
		it := RequestItem{
			Chunk:   s.rng.Intn(ctx.Manifest.NumChunks),
			Tile:    geom.TileID(s.rng.Intn(ctx.Manifest.NumTiles())),
			Quality: video.Quality(s.rng.Intn(video.NumQualities)),
		}
		if s.rng.Intn(4) == 0 {
			it.Stream = Masking
			it.Quality = video.Lowest
			it.Full360 = s.rng.Intn(2) == 0
		}
		items = append(items, it)
	}
	return items
}

func TestEngineInvariantsUnderRandomSchemes(t *testing.T) {
	m := video.Generate(video.GenParams{ID: "inv", Rows: 4, Cols: 4, NumChunks: 4,
		TargetQP42Mbps: 0.5, TargetQP22Mbps: 4, Seed: 13})
	f := func(seed int64, mbpsRaw uint8, policyRaw uint8) bool {
		mbps := 0.5 + float64(mbpsRaw%40)
		policy := StallPolicy(policyRaw % 3)
		head := trace.GenerateHead(trace.HeadGenParams{
			UserID: "f", Class: trace.MotionClass(seed % 3), Duration: 4 * time.Second, Seed: seed,
		})
		met, err := Run(Config{
			Manifest:  m,
			Head:      head,
			Bandwidth: &trace.BandwidthTrace{ID: "f", SamplePeriod: time.Second, Mbps: []float64{mbps}},
			Scheme:    &randomScheme{rng: rand.New(rand.NewSource(seed)), policy: policy},
			MaxWall:   20 * time.Second,
		})
		if err != nil {
			return false
		}
		// Structural invariants that must hold for any scheme behavior.
		if met.TotalFrames > m.NumFrames() || met.TotalFrames < 0 {
			return false
		}
		if len(met.FrameScore) != met.TotalFrames || len(met.FrameBlank) != met.TotalFrames {
			return false
		}
		if met.BytesUseful > met.BytesReceived || met.BytesUseful < 0 {
			return false
		}
		if met.RebufferDuration < 0 || met.WallDuration < 0 {
			return false
		}
		if policy == NeverStall && met.RebufferDuration != 0 {
			return false
		}
		if policy != NeverStall && met.IncompleteFrames != 0 {
			return false
		}
		if met.IncompleteFrames > met.TotalFrames || met.PrimarySkipFrames > met.TotalFrames {
			return false
		}
		if met.RenderedViewportTiles() < 0 {
			return false
		}
		for _, b := range met.FrameBlank {
			if b < 0 || b > 1 {
				return false
			}
		}
		// Quality + masking + blank shares partition the rendered tiles.
		sum := met.MaskingShare() + met.BlankShare()
		for q := video.Quality(0); q < video.NumQualities; q++ {
			sum += met.QualityShare(q)
		}
		if met.RenderedViewportTiles() > 0 && (sum < 0.999 || sum > 1.001) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestEngineZeroBandwidth(t *testing.T) {
	m := video.Generate(video.GenParams{ID: "zb", Rows: 4, Cols: 4, NumChunks: 2, Seed: 2})
	met, err := Run(Config{
		Manifest:  m,
		Head:      staticHead(2 * time.Second),
		Bandwidth: &trace.BandwidthTrace{ID: "dead", SamplePeriod: time.Second, Mbps: []float64{0.001}},
		Scheme: &testScheme{name: "all", interval: 100 * time.Millisecond, policy: NeverStall,
			decide: fetchEverything(video.Lowest)},
		MaxWall: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Playback still completes (blank) under continuous playback.
	if met.TotalFrames != m.NumFrames() {
		t.Errorf("rendered %d frames on a dead link", met.TotalFrames)
	}
	if met.BlankShare() < 0.9 {
		t.Errorf("dead link should blank nearly everything, got %.2f", met.BlankShare())
	}
}

func TestEngineStallTruncation(t *testing.T) {
	m := video.Generate(video.GenParams{ID: "tr", Rows: 4, Cols: 4, NumChunks: 2, Seed: 3})
	met, err := Run(Config{
		Manifest:  m,
		Head:      staticHead(2 * time.Second),
		Bandwidth: &trace.BandwidthTrace{ID: "dead", SamplePeriod: time.Second, Mbps: []float64{0.001}},
		Scheme: &testScheme{name: "lazy", interval: 100 * time.Millisecond, policy: StallOnMissingAny,
			decide: fetchEverything(video.Lowest)},
		MaxWall: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !met.Truncated {
		t.Error("eternal stall should truncate")
	}
	if met.WallDuration < 5*time.Second {
		t.Errorf("wall duration %v below MaxWall", met.WallDuration)
	}
}

func TestEngineHeadTraceShorterThanVideo(t *testing.T) {
	// A head trace that ends mid-video: the last orientation holds.
	m := video.Generate(video.GenParams{ID: "sh", Rows: 4, Cols: 4, NumChunks: 4, Seed: 4})
	met, err := Run(Config{
		Manifest:  m,
		Head:      staticHead(time.Second),
		Bandwidth: flatBandwidth(100),
		Scheme: &testScheme{name: "all", interval: 100 * time.Millisecond, policy: NeverStall,
			decide: fetchEverything(video.Lowest)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if met.TotalFrames != m.NumFrames() {
		t.Errorf("short head trace broke playback: %d frames", met.TotalFrames)
	}
}

func TestEngineSingleChunkVideo(t *testing.T) {
	m := video.Generate(video.GenParams{ID: "one", Rows: 4, Cols: 4, NumChunks: 1, Seed: 5})
	met, err := Run(Config{
		Manifest:  m,
		Head:      staticHead(time.Second),
		Bandwidth: flatBandwidth(100),
		Scheme: &testScheme{name: "all", interval: 100 * time.Millisecond, policy: StallOnMissingAny,
			decide: fetchEverything(video.Highest)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if met.TotalFrames != m.ChunkFrames {
		t.Errorf("single-chunk video rendered %d frames", met.TotalFrames)
	}
}

func TestDecoderModelDelaysAvailability(t *testing.T) {
	m := video.Generate(video.GenParams{ID: "dec", Rows: 4, Cols: 4, NumChunks: 3,
		TargetQP42Mbps: 1, TargetQP22Mbps: 8, Seed: 6})
	run := func(throughputMBps float64) *Metrics {
		met, err := Run(Config{
			Manifest:  m,
			Head:      staticHead(3 * time.Second),
			Bandwidth: flatBandwidth(20),
			Scheme: &testScheme{name: "all", interval: 100 * time.Millisecond, policy: NeverStall,
				decide: fetchEverything(video.Highest)},
			Decoder: &decoder.Model{ThroughputMBps: throughputMBps},
		})
		if err != nil {
			t.Fatal(err)
		}
		return met
	}
	fast := run(0)    // disabled: paper's assumption
	slow := run(0.02) // pathological 20 kB/s decoder
	if slow.MedianScore() >= fast.MedianScore() {
		t.Errorf("pathological decoder should hurt quality: %.2f vs %.2f",
			slow.MedianScore(), fast.MedianScore())
	}
	if fast.IncompleteFrames != 0 {
		t.Error("fast decoder should not blank")
	}
	if slow.IncompleteFrames == 0 {
		t.Error("starved decoder should blank frames")
	}
}

func TestMaskInterpolationFillsHoles(t *testing.T) {
	m := video.Generate(video.GenParams{ID: "interp", Rows: 6, Cols: 6, NumChunks: 3,
		TargetQP42Mbps: 1, TargetQP22Mbps: 8, Seed: 8})
	grid := m.Grid()
	center := grid.TileAt(geom.Orientation{})
	// Fetch masking for every viewport tile except the central one: with
	// interpolation the hole is synthesized from neighbors.
	scheme := func() Scheme {
		return &testScheme{name: "holes", interval: 100 * time.Millisecond, policy: NeverStall,
			decide: func(ctx *Context) []RequestItem {
				var items []RequestItem
				for c := 0; c < ctx.Manifest.NumChunks; c++ {
					for _, id := range ctx.Viewport.Tiles(ctx.Grid, geom.Orientation{}) {
						if id == center {
							continue
						}
						items = append(items, RequestItem{Stream: Masking, Chunk: c, Tile: id, Quality: video.Lowest})
					}
				}
				return items
			}}
	}
	plain, err := Run(Config{Manifest: m, Head: staticHead(3 * time.Second), Bandwidth: flatBandwidth(50),
		Scheme: scheme()})
	if err != nil {
		t.Fatal(err)
	}
	interp, err := Run(Config{Manifest: m, Head: staticHead(3 * time.Second), Bandwidth: flatBandwidth(50),
		Scheme: scheme(), MaskInterpolation: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain.IncompleteFrames == 0 {
		t.Fatal("hole scheme should blank without interpolation")
	}
	if interp.IncompleteFrames >= plain.IncompleteFrames {
		t.Errorf("interpolation did not reduce incomplete frames: %d vs %d",
			interp.IncompleteFrames, plain.IncompleteFrames)
	}
	if interp.RenderedInterpolated == 0 {
		t.Error("no interpolated renders recorded")
	}
	if interp.MedianScore() <= plain.MedianScore() {
		t.Errorf("interpolation should raise quality over black holes: %.2f vs %.2f",
			interp.MedianScore(), plain.MedianScore())
	}
}

func TestDebugEventLog(t *testing.T) {
	m := video.Generate(video.GenParams{ID: "dbg", Rows: 4, Cols: 4, NumChunks: 2, Seed: 7})
	var log bytes.Buffer
	_, err := Run(Config{
		Manifest:  m,
		Head:      staticHead(2 * time.Second),
		Bandwidth: flatBandwidth(50),
		Scheme: &testScheme{name: "all", interval: 100 * time.Millisecond, policy: NeverStall,
			decide: fetchEverything(video.Lowest)},
		Debug: &log,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := log.String()
	for _, want := range []string{"decide frame=", "deliver primary", "startup complete"} {
		if !strings.Contains(out, want) {
			t.Errorf("debug log missing %q", want)
		}
	}
}

func TestStallCascadeOnHeadMovement(t *testing.T) {
	// A user who turns around mid-video under a stall policy: when the
	// stall ends is governed by the *current* viewport, so tiles fetched
	// for the old viewport do not resume playback (the paper's cascade).
	m := video.Generate(video.GenParams{ID: "cascade", Rows: 6, Cols: 6, NumChunks: 4,
		TargetQP42Mbps: 1, TargetQP22Mbps: 8, Seed: 17})
	n := int(4*time.Second/trace.HeadSamplePeriod) + 1
	samples := make([]geom.Orientation, n)
	for i := range samples {
		if time.Duration(i)*trace.HeadSamplePeriod > 1500*time.Millisecond {
			samples[i] = geom.Orientation{Yaw: -170} // turned around
		}
	}
	head := &trace.HeadTrace{UserID: "turner", SamplePeriod: trace.HeadSamplePeriod, Samples: samples}

	// The scheme only ever fetches the front tiles: once the user turns,
	// the requirement can never be met again and the session truncates
	// mid-stall.
	frontOnly := &testScheme{name: "front", interval: 100 * time.Millisecond, policy: StallOnMissingAny,
		decide: func(ctx *Context) []RequestItem {
			var items []RequestItem
			for c := 0; c < ctx.Manifest.NumChunks; c++ {
				for _, id := range ctx.Viewport.Tiles(ctx.Grid, geom.Orientation{}) {
					items = append(items, RequestItem{Stream: Primary, Chunk: c, Tile: id, Quality: video.Lowest})
				}
			}
			return items
		}}
	met, err := Run(Config{Manifest: m, Head: head, Bandwidth: flatBandwidth(50), Scheme: frontOnly,
		MaxWall: 8 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !met.Truncated {
		t.Error("turned-away user should leave the front-only scheme stalled forever")
	}
	if met.TotalFrames == 0 {
		t.Error("the pre-turn frames should have rendered")
	}
	if met.TotalFrames >= m.NumFrames() {
		t.Error("playback should not have completed")
	}
	if met.StallEvents == 0 {
		t.Error("no stall recorded")
	}
}
