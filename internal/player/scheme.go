// Package player implements the playback engine shared by every scheme in
// the evaluation: a discrete-event session simulator with byte-accurate
// trace-driven network delivery, frame-granularity rendering, both playback
// disciplines (continuous playback with skips, and stall-on-miss), and the
// full metric accounting of paper §4.1.
//
// Schemes (Dragonfly in internal/core, the baselines in internal/baseline)
// plug in through the Scheme interface: every decision interval they emit
// the ordered list of tile fetches that should replace the outstanding
// request, exactly as the paper's client/server protocol works (§3.3).
package player

import (
	"time"

	"dragonfly/internal/geom"
	"dragonfly/internal/video"
)

// StreamKind distinguishes the two streams of two-stream schemes. Schemes
// with a single stream use Primary for everything.
type StreamKind uint8

// The stream kinds.
const (
	Primary StreamKind = iota
	Masking
)

// String implements fmt.Stringer.
func (s StreamKind) String() string {
	if s == Masking {
		return "masking"
	}
	return "primary"
}

// RequestItem is one entry of a client fetch request: a tile (or a full-360°
// masking chunk) at a specific quality. Items are transmitted in list order.
type RequestItem struct {
	Stream  StreamKind
	Chunk   int
	Full360 bool        // fetch the whole chunk untiled (masking only)
	Tile    geom.TileID // ignored when Full360
	Quality video.Quality
}

// Size returns the transfer size of the item under the given manifest.
func (it RequestItem) Size(m *video.Manifest) int64 {
	if it.Full360 {
		return m.Full360Size(it.Chunk, it.Quality)
	}
	return m.TileSize(it.Chunk, it.Tile, it.Quality)
}

// Checksum returns the manifest's CRC32-C for the item's payload and
// whether the manifest carries checksums at all (pre-wire-v3 manifests do
// not; callers skip payload verification for them).
func (it RequestItem) Checksum(m *video.Manifest) (uint32, bool) {
	if !m.HasChecksums() {
		return 0, false
	}
	if it.Full360 {
		return m.Full360Checksum(it.Chunk, it.Quality), true
	}
	return m.TileChecksum(it.Chunk, it.Tile, it.Quality), true
}

// StallPolicy selects the playback discipline when a needed tile is missing
// at its render deadline (Table 1's "Skip/stall approach").
type StallPolicy int

const (
	// NeverStall renders every frame on schedule, masking or blanking
	// missing tiles (Dragonfly and its skip variants).
	NeverStall StallPolicy = iota
	// StallOnMissingAny pauses playback until every viewport tile has some
	// renderable version (Flare, Pano).
	StallOnMissingAny
	// StallOnMissingMasking pauses playback until every viewport tile has a
	// masking version; primary tiles are passively skipped (Two-tier).
	StallOnMissingMasking
)

// Context is the state snapshot a Scheme sees at each decision epoch.
type Context struct {
	Now       time.Duration
	PlayFrame int  // the frame currently being (or about to be) rendered
	Stalled   bool // whether playback is currently stalled

	Manifest *video.Manifest
	Grid     *geom.Grid
	Viewport geom.Viewport

	// Received reports which tile variants have already arrived.
	Received *Received

	// Predict extrapolates the head orientation at a future instant using
	// the engine-owned viewport predictor (linear regression, §3.3).
	Predict func(at time.Duration) geom.Orientation

	// PredictedMbps is the throughput predictor's current estimate.
	PredictedMbps float64

	// FrameDeadline returns the wall-clock instant at which the given frame
	// will start rendering, assuming no further stalls.
	FrameDeadline func(frame int) time.Duration

	FrameDuration time.Duration
}

// Scheme is a 360° streaming algorithm under test.
type Scheme interface {
	// Name identifies the scheme in results ("Dragonfly", "Flare", ...).
	Name() string
	// DecisionInterval is how often Decide runs: 100 ms for refining
	// schemes, one chunk for per-chunk schemes (Table 1).
	DecisionInterval() time.Duration
	// StallPolicy selects the playback discipline.
	StallPolicy() StallPolicy
	// Decide returns the ordered fetch list that replaces the outstanding
	// request. The engine's server model drops entries already sent
	// (re-sending only tiles previously delivered at masking quality), so
	// schemes may re-state their full intent each epoch.
	//
	// The returned slice may alias buffers owned by the scheme and is only
	// valid until the next Decide call on the same instance; callers that
	// keep the list across decisions must copy it. The *Context may
	// likewise be reused by the caller across decisions, so schemes must
	// not retain it past the call.
	Decide(ctx *Context) []RequestItem
}
