package player_test

import (
	"fmt"
	"log"
	"time"

	"dragonfly/internal/core"
	"dragonfly/internal/player"
	"dragonfly/internal/trace"
	"dragonfly/internal/video"
)

// ExampleRun streams a short synthetic video with Dragonfly through the
// discrete-event engine and reports the session outcome.
func ExampleRun() {
	manifest := video.Generate(video.GenParams{
		ID: "example", Rows: 6, Cols: 6, NumChunks: 5,
		TargetQP42Mbps: 1, TargetQP22Mbps: 9, Seed: 42,
	})
	head := trace.GenerateHead(trace.HeadGenParams{
		UserID: "reader", Class: trace.MotionLow, Duration: 5 * time.Second, Seed: 1,
	})
	bandwidth := &trace.BandwidthTrace{
		ID: "flat-12", SamplePeriod: time.Second, Mbps: []float64{12},
	}

	metrics, err := player.Run(player.Config{
		Manifest:  manifest,
		Head:      head,
		Bandwidth: bandwidth,
		Scheme:    core.NewDefault(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frames: %d/%d\n", metrics.TotalFrames, manifest.NumFrames())
	fmt.Printf("stalls: %d\n", metrics.StallEvents)
	fmt.Printf("incomplete frames: %d\n", metrics.IncompleteFrames)
	// Output:
	// frames: 150/150
	// stalls: 0
	// incomplete frames: 0
}
