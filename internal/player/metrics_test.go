package player

import (
	"math"
	"testing"
	"time"

	"dragonfly/internal/geom"
	"dragonfly/internal/trace"
	"dragonfly/internal/video"
)

// TestRatioAccessorsZeroDenominator is the zero-denominator audit: every
// ratio accessor must return 0 (never NaN or Inf) for a session that
// rendered nothing and received nothing — the shape produced by a
// zero-length trace or an empty sweep.
func TestRatioAccessorsZeroDenominator(t *testing.T) {
	m := &Metrics{}
	checks := map[string]float64{
		"RebufferRatio":       m.RebufferRatio(),
		"WastagePct":          m.WastagePct(),
		"IncompleteFramePct":  m.IncompleteFramePct(),
		"PrimarySkipFramePct": m.PrimarySkipFramePct(),
		"MedianScore":         m.MedianScore(),
		"ScorePercentile":     m.ScorePercentile(90),
		"MeanScore":           m.MeanScore(),
		"MeanBlankArea":       m.MeanBlankArea(),
		"QualityShare":        m.QualityShare(video.Highest),
		"MaskingShare":        m.MaskingShare(),
		"BlankShare":          m.BlankShare(),
	}
	for name, v := range checks {
		if math.IsNaN(v) || math.IsInf(v, 0) || v != 0 {
			t.Errorf("%s on empty session = %v, want 0", name, v)
		}
	}
}

// TestRatioAccessorsPartialSessions exercises the denominators one at a
// time: each accessor must stay finite when only its numerator is set.
func TestRatioAccessorsPartialSessions(t *testing.T) {
	stallOnly := &Metrics{RebufferDuration: 2 * time.Second}
	if got := stallOnly.RebufferRatio(); math.IsNaN(got) || got < 0 || got > 1 {
		t.Errorf("RebufferRatio with stall but no playback = %v, want a finite ratio in [0, 1]", got)
	}
	wasteOnly := &Metrics{BytesReceived: 1000, BytesUseful: 1000}
	if got := wasteOnly.WastagePct(); got != 0 {
		t.Errorf("WastagePct with all bytes useful = %v, want 0", got)
	}
}

// TestRunRejectsDegenerateHeadTrace locks in the fix for the zero-length
// trace hazard: a head trace with no samples or no positive sample period
// previously wedged the engine's event loop forever (the head schedule
// never advanced); now it is rejected up front.
func TestRunRejectsDegenerateHeadTrace(t *testing.T) {
	degenerate := []*trace.HeadTrace{
		{UserID: "u", SamplePeriod: trace.HeadSamplePeriod},                              // no samples
		{UserID: "u", Samples: make([]geom.Orientation, 10)},                             // zero period
		{UserID: "u", Samples: make([]geom.Orientation, 10), SamplePeriod: -time.Second}, // negative period
	}
	for _, head := range degenerate {
		_, err := Run(Config{
			Manifest:  smallManifest(),
			Head:      head,
			Bandwidth: flatBandwidth(20),
			Scheme:    &testScheme{name: "all", interval: 100 * time.Millisecond, policy: NeverStall},
		})
		if err == nil {
			t.Fatalf("Run accepted degenerate head trace (period=%v, samples=%d)", head.SamplePeriod, len(head.Samples))
		}
	}
}
