package player

import (
	"math"
	"testing"
	"time"

	"dragonfly/internal/geom"
	"dragonfly/internal/quality"
	"dragonfly/internal/trace"
	"dragonfly/internal/video"
)

// testScheme is a configurable stub used to exercise the engine.
type testScheme struct {
	name     string
	interval time.Duration
	policy   StallPolicy
	decide   func(ctx *Context) []RequestItem
}

func (s *testScheme) Name() string                    { return s.name }
func (s *testScheme) DecisionInterval() time.Duration { return s.interval }
func (s *testScheme) StallPolicy() StallPolicy        { return s.policy }
func (s *testScheme) Decide(ctx *Context) []RequestItem {
	if s.decide == nil {
		return nil
	}
	return s.decide(ctx)
}

func smallManifest() *video.Manifest {
	return video.Generate(video.GenParams{
		ID: "pv", Rows: 6, Cols: 6, NumChunks: 6,
		TargetQP42Mbps: 1, TargetQP22Mbps: 8, Seed: 5,
	})
}

func staticHead(d time.Duration) *trace.HeadTrace {
	n := int(d/trace.HeadSamplePeriod) + 1
	return &trace.HeadTrace{
		UserID:       "static",
		SamplePeriod: trace.HeadSamplePeriod,
		Samples:      make([]geom.Orientation, n),
	}
}

func flatBandwidth(mbps float64) *trace.BandwidthTrace {
	return &trace.BandwidthTrace{
		ID: "flat", SamplePeriod: time.Second,
		Mbps: []float64{mbps},
	}
}

// fetchEverything requests every tile of every chunk at the given quality.
func fetchEverything(q video.Quality) func(ctx *Context) []RequestItem {
	return func(ctx *Context) []RequestItem {
		var items []RequestItem
		for c := 0; c < ctx.Manifest.NumChunks; c++ {
			for t := 0; t < ctx.Manifest.NumTiles(); t++ {
				items = append(items, RequestItem{Stream: Primary, Chunk: c, Tile: geom.TileID(t), Quality: q})
			}
		}
		return items
	}
}

func TestRunValidatesConfig(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestFullFetchPlaysPerfectly(t *testing.T) {
	m := smallManifest()
	s := &testScheme{name: "all", interval: 100 * time.Millisecond, policy: StallOnMissingAny,
		decide: fetchEverything(video.Highest)}
	met, err := Run(Config{Manifest: m, Head: staticHead(6 * time.Second), Bandwidth: flatBandwidth(1000), Scheme: s})
	if err != nil {
		t.Fatal(err)
	}
	if met.TotalFrames != m.NumFrames() {
		t.Fatalf("rendered %d frames, want %d", met.TotalFrames, m.NumFrames())
	}
	if met.IncompleteFrames != 0 || met.RebufferDuration != 0 {
		t.Fatalf("perfect session had %d incomplete, %v rebuffer", met.IncompleteFrames, met.RebufferDuration)
	}
	if met.PrimarySkipFrames != 0 {
		t.Fatalf("no primary skips expected, got %d", met.PrimarySkipFrames)
	}
	// All viewport tiles at the highest quality.
	if met.QualityShare(video.Highest) < 0.999 {
		t.Errorf("highest-quality share = %v", met.QualityShare(video.Highest))
	}
	if met.MedianScore() < 40 {
		t.Errorf("median score %v suspiciously low for QP22", met.MedianScore())
	}
	if met.Truncated {
		t.Error("session truncated")
	}
}

func TestEmptySchemeBlanksEverythingWithoutStalling(t *testing.T) {
	m := smallManifest()
	s := &testScheme{name: "none", interval: 100 * time.Millisecond, policy: NeverStall}
	cfg := Config{Manifest: m, Head: staticHead(6 * time.Second), Bandwidth: flatBandwidth(10), Scheme: s,
		MaxWall: 20 * time.Second}
	met, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Nothing ever arrives: after the startup grace, the continuous-playback
	// discipline renders every frame fully blank.
	if met.Truncated {
		t.Error("unexpected truncation")
	}
	if met.TotalFrames != m.NumFrames() {
		t.Errorf("rendered %d frames, want all %d", met.TotalFrames, m.NumFrames())
	}
	if met.IncompleteFrames != met.TotalFrames {
		t.Errorf("all frames should be incomplete, got %d/%d", met.IncompleteFrames, met.TotalFrames)
	}
	if met.BlankShare() < 0.999 {
		t.Errorf("blank share = %v, want ~1", met.BlankShare())
	}
	if met.StartupDelay != startupGrace {
		t.Errorf("startup delay = %v, want grace %v", met.StartupDelay, startupGrace)
	}
}

func TestNeverStallRendersBlankAfterStartup(t *testing.T) {
	m := smallManifest()
	// Fetch only chunk 0 fully; later chunks get nothing: playback must
	// continue with blank viewports (continuous playback).
	s := &testScheme{name: "chunk0", interval: 100 * time.Millisecond, policy: NeverStall,
		decide: func(ctx *Context) []RequestItem {
			var items []RequestItem
			for t := 0; t < ctx.Manifest.NumTiles(); t++ {
				items = append(items, RequestItem{Stream: Primary, Chunk: 0, Tile: geom.TileID(t), Quality: video.Lowest})
			}
			return items
		}}
	met, err := Run(Config{Manifest: m, Head: staticHead(6 * time.Second), Bandwidth: flatBandwidth(1000), Scheme: s})
	if err != nil {
		t.Fatal(err)
	}
	if met.TotalFrames != m.NumFrames() {
		t.Fatalf("rendered %d frames, want all %d", met.TotalFrames, m.NumFrames())
	}
	if met.RebufferDuration != 0 || met.StallEvents != 0 {
		t.Error("NeverStall scheme rebuffered")
	}
	// Chunks 1..5 are blank: 5/6 of frames incomplete.
	wantIncomplete := m.NumFrames() * 5 / 6
	if met.IncompleteFrames != wantIncomplete {
		t.Errorf("incomplete frames = %d, want %d", met.IncompleteFrames, wantIncomplete)
	}
	if met.MeanBlankArea() < 0.5 {
		t.Errorf("mean blank area = %v, want mostly blank", met.MeanBlankArea())
	}
}

func TestStallSchemeRebuffersOnLateChunks(t *testing.T) {
	m := smallManifest()
	// Stall policy with a scheme that only requests chunks lazily when the
	// play head reaches them: every chunk boundary forces a stall while the
	// tiles download.
	s := &testScheme{name: "lazy", interval: 100 * time.Millisecond, policy: StallOnMissingAny,
		decide: func(ctx *Context) []RequestItem {
			c := ctx.Manifest.ChunkOfFrame(ctx.PlayFrame)
			var items []RequestItem
			for t := 0; t < ctx.Manifest.NumTiles(); t++ {
				items = append(items, RequestItem{Stream: Primary, Chunk: c, Tile: geom.TileID(t), Quality: video.Lowest})
			}
			return items
		}}
	met, err := Run(Config{Manifest: m, Head: staticHead(6 * time.Second), Bandwidth: flatBandwidth(4), Scheme: s})
	if err != nil {
		t.Fatal(err)
	}
	if met.StallEvents == 0 || met.RebufferDuration == 0 {
		t.Fatalf("lazy stall scheme should rebuffer: events=%d dur=%v", met.StallEvents, met.RebufferDuration)
	}
	if met.RebufferRatio() <= 0 || met.RebufferRatio() >= 1 {
		t.Errorf("rebuffer ratio = %v", met.RebufferRatio())
	}
	if len(met.StallIntervals) != met.StallEvents {
		t.Errorf("stall intervals %d != events %d", len(met.StallIntervals), met.StallEvents)
	}
	// No frame is ever blank under StallOnMissingAny.
	if met.IncompleteFrames != 0 {
		t.Errorf("stall scheme rendered %d incomplete frames", met.IncompleteFrames)
	}
}

func TestMaskingOnlyAvoidsIncomplete(t *testing.T) {
	m := smallManifest()
	s := &testScheme{name: "maskonly", interval: 100 * time.Millisecond, policy: NeverStall,
		decide: func(ctx *Context) []RequestItem {
			var items []RequestItem
			for c := 0; c < ctx.Manifest.NumChunks; c++ {
				items = append(items, RequestItem{Stream: Masking, Chunk: c, Full360: true, Quality: video.Lowest})
			}
			return items
		}}
	met, err := Run(Config{Manifest: m, Head: staticHead(6 * time.Second), Bandwidth: flatBandwidth(100), Scheme: s})
	if err != nil {
		t.Fatal(err)
	}
	if met.TotalFrames != m.NumFrames() {
		t.Fatalf("rendered %d frames", met.TotalFrames)
	}
	if met.IncompleteFrames != 0 {
		t.Errorf("masking stream should avoid incomplete frames, got %d", met.IncompleteFrames)
	}
	// Every rendered viewport tile came from masking.
	if met.MaskingShare() < 0.999 {
		t.Errorf("masking share = %v", met.MaskingShare())
	}
	if met.PrimarySkipFrames != met.TotalFrames {
		t.Errorf("all frames should count as primary-skipped, got %d/%d", met.PrimarySkipFrames, met.TotalFrames)
	}
}

func TestServerRedundancyRule(t *testing.T) {
	m := smallManifest()
	requested := 0
	// Request the same tile at the same quality every epoch: the server
	// must transmit it only once.
	s := &testScheme{name: "dup", interval: 50 * time.Millisecond, policy: NeverStall,
		decide: func(ctx *Context) []RequestItem {
			requested++
			return []RequestItem{
				{Stream: Primary, Chunk: 0, Tile: 0, Quality: video.Highest},
				{Stream: Primary, Chunk: 0, Tile: 0, Quality: video.Highest},
			}
		}}
	met, err := Run(Config{Manifest: m, Head: staticHead(time.Second), Bandwidth: flatBandwidth(1000), Scheme: s,
		MaxWall: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	want := m.TileSize(0, 0, video.Highest)
	if met.BytesReceived != want {
		t.Errorf("received %d bytes, want exactly one copy (%d); scheme asked %d times", met.BytesReceived, want, requested)
	}
}

func TestMaskingUpgradeAllowed(t *testing.T) {
	m := smallManifest()
	phase := 0
	s := &testScheme{name: "upgrade", interval: 50 * time.Millisecond, policy: NeverStall,
		decide: func(ctx *Context) []RequestItem {
			phase++
			if phase == 1 {
				return []RequestItem{{Stream: Masking, Chunk: 0, Tile: 3, Quality: video.Lowest}}
			}
			return []RequestItem{{Stream: Primary, Chunk: 0, Tile: 3, Quality: video.Highest}}
		}}
	met, err := Run(Config{Manifest: m, Head: staticHead(time.Second), Bandwidth: flatBandwidth(1000), Scheme: s,
		MaxWall: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	want := m.TileSize(0, 3, video.Lowest) + m.TileSize(0, 3, video.Highest)
	if met.BytesReceived != want {
		t.Errorf("received %d bytes, want masking+primary = %d", met.BytesReceived, want)
	}
}

func TestPrimaryNeverResent(t *testing.T) {
	m := smallManifest()
	phase := 0
	s := &testScheme{name: "noresend", interval: 50 * time.Millisecond, policy: NeverStall,
		decide: func(ctx *Context) []RequestItem {
			phase++
			if phase == 1 {
				return []RequestItem{{Stream: Primary, Chunk: 0, Tile: 3, Quality: video.Lowest}}
			}
			return []RequestItem{{Stream: Primary, Chunk: 0, Tile: 3, Quality: video.Highest}}
		}}
	met, err := Run(Config{Manifest: m, Head: staticHead(time.Second), Bandwidth: flatBandwidth(1000), Scheme: s,
		MaxWall: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	want := m.TileSize(0, 3, video.Lowest)
	if met.BytesReceived != want {
		t.Errorf("received %d bytes, want only first primary send %d", met.BytesReceived, want)
	}
}

func TestRequestCancellation(t *testing.T) {
	m := smallManifest()
	phase := 0
	// First epoch queues many tiles over a slow link; second epoch cancels
	// them all. Only the in-flight tile completes.
	s := &testScheme{name: "cancel", interval: 100 * time.Millisecond, policy: NeverStall,
		decide: func(ctx *Context) []RequestItem {
			phase++
			if phase == 1 {
				return fetchEverything(video.Highest)(ctx)
			}
			return nil
		}}
	met, err := Run(Config{Manifest: m, Head: staticHead(time.Second), Bandwidth: flatBandwidth(2), Scheme: s,
		MaxWall: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// At 2 Mbps for 5 s at most ~1.25 MB could flow; with cancellation after
	// 100 ms only the in-flight item finishes (~a few KB).
	if met.BytesReceived > m.TileSize(0, 0, video.Highest)+m.TileSize(0, 1, video.Highest) {
		t.Errorf("cancellation ineffective: received %d bytes", met.BytesReceived)
	}
}

func TestWastageAccounting(t *testing.T) {
	m := smallManifest()
	// Static user at yaw 0 never sees the back of the sphere; fetch both a
	// front tile and a back tile — the back tile is pure waste.
	front := m.Grid().TileAt(geom.Orientation{Yaw: 0, Pitch: 0})
	back := m.Grid().TileAt(geom.Orientation{Yaw: -179, Pitch: 0})
	s := &testScheme{name: "waste", interval: 100 * time.Millisecond, policy: NeverStall,
		decide: func(ctx *Context) []RequestItem {
			var items []RequestItem
			for c := 0; c < ctx.Manifest.NumChunks; c++ {
				items = append(items,
					RequestItem{Stream: Primary, Chunk: c, Tile: front, Quality: video.Highest},
					RequestItem{Stream: Primary, Chunk: c, Tile: back, Quality: video.Highest})
			}
			return items
		}}
	met, err := Run(Config{Manifest: m, Head: staticHead(6 * time.Second), Bandwidth: flatBandwidth(1000), Scheme: s})
	if err != nil {
		t.Fatal(err)
	}
	var frontBytes, backBytes int64
	for c := 0; c < m.NumChunks; c++ {
		frontBytes += m.TileSize(c, front, video.Highest)
		backBytes += m.TileSize(c, back, video.Highest)
	}
	if met.BytesReceived != frontBytes+backBytes {
		t.Fatalf("received %d, want %d", met.BytesReceived, frontBytes+backBytes)
	}
	if met.BytesUseful != frontBytes {
		t.Errorf("useful %d, want %d (front tiles only)", met.BytesUseful, frontBytes)
	}
	if met.WastagePct() <= 0 {
		t.Error("wastage should be positive")
	}
}

func TestFullMaskingWastageUsesMinRule(t *testing.T) {
	m := smallManifest()
	s := &testScheme{name: "maskwaste", interval: 100 * time.Millisecond, policy: NeverStall,
		decide: func(ctx *Context) []RequestItem {
			return []RequestItem{{Stream: Masking, Chunk: 0, Full360: true, Quality: video.Lowest}}
		}}
	met, err := Run(Config{Manifest: m, Head: staticHead(time.Second), Bandwidth: flatBandwidth(1000), Scheme: s,
		MaxWall: 90 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	full := m.Full360Size(0, video.Lowest)
	if met.BytesReceived < full {
		t.Fatalf("full-360 masking not delivered")
	}
	// Useful bytes: only the rendered (viewport) share, bounded by the
	// tiled-equivalent encoding of that area.
	if met.BytesUseful <= 0 || met.BytesUseful >= full {
		t.Errorf("useful bytes = %d of %d; want partial credit", met.BytesUseful, full)
	}
}

func TestStartupDelayNotCountedAsRebuffer(t *testing.T) {
	m := smallManifest()
	s := &testScheme{name: "slowstart", interval: 100 * time.Millisecond, policy: StallOnMissingAny,
		decide: fetchEverything(video.Lowest)}
	met, err := Run(Config{Manifest: m, Head: staticHead(6 * time.Second), Bandwidth: flatBandwidth(3), Scheme: s})
	if err != nil {
		t.Fatal(err)
	}
	if met.StartupDelay <= 0 {
		t.Error("startup delay should be positive on a slow link")
	}
}

func TestSkipHeatTracksPeripheralSkips(t *testing.T) {
	m := smallManifest()
	grid := m.Grid()
	center := grid.TileAt(geom.Orientation{Yaw: 0, Pitch: 0})
	// Fetch only the central tile; everything else in the viewport is
	// skipped, so SkipHeat must be zero for the center and positive for
	// other viewport tiles.
	s := &testScheme{name: "centeronly", interval: 100 * time.Millisecond, policy: NeverStall,
		decide: func(ctx *Context) []RequestItem {
			var items []RequestItem
			for c := 0; c < ctx.Manifest.NumChunks; c++ {
				items = append(items, RequestItem{Stream: Primary, Chunk: c, Tile: center, Quality: video.Lowest})
			}
			return items
		}}
	met, err := Run(Config{Manifest: m, Head: staticHead(6 * time.Second), Bandwidth: flatBandwidth(1000), Scheme: s})
	if err != nil {
		t.Fatal(err)
	}
	if met.SkipHeat[center] != 0 {
		t.Errorf("center tile skipped %d times", met.SkipHeat[center])
	}
	skips := int64(0)
	for _, v := range met.SkipHeat {
		skips += v
	}
	if skips == 0 {
		t.Error("peripheral tiles should register skips")
	}
	if met.ViewHeat[center] == 0 {
		t.Error("center tile should register views")
	}
}

func TestMetricsDerivedStats(t *testing.T) {
	m := &Metrics{
		FrameScore:  []float64{30, 40, 50},
		FrameBlank:  []float64{0, 0.5, 1},
		TotalFrames: 3, IncompleteFrames: 1, PrimarySkipFrames: 2,
		RebufferDuration: time.Second, PlayDuration: 3 * time.Second,
		BytesReceived: 100, BytesUseful: 75,
	}
	if got := m.MedianScore(); got != 40 {
		t.Errorf("median = %v", got)
	}
	if got := m.MeanScore(); math.Abs(got-40) > 1e-9 {
		t.Errorf("mean = %v", got)
	}
	if got := m.RebufferRatio(); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("rebuffer ratio = %v", got)
	}
	if got := m.IncompleteFramePct(); math.Abs(got-100.0/3) > 1e-9 {
		t.Errorf("incomplete pct = %v", got)
	}
	if got := m.PrimarySkipFramePct(); math.Abs(got-200.0/3) > 1e-9 {
		t.Errorf("skip pct = %v", got)
	}
	if got := m.WastagePct(); math.Abs(got-25) > 1e-9 {
		t.Errorf("wastage = %v", got)
	}
	if got := m.MeanBlankArea(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("blank area = %v", got)
	}
	if got := m.ScorePercentile(0); got != 30 {
		t.Errorf("p0 = %v", got)
	}
	if got := m.ScorePercentile(100); got != 50 {
		t.Errorf("p100 = %v", got)
	}
}

func TestMetricsZeroSafe(t *testing.T) {
	m := &Metrics{}
	if m.RebufferRatio() != 0 || m.IncompleteFramePct() != 0 || m.WastagePct() != 0 ||
		m.MedianScore() != 0 || m.MeanScore() != 0 || m.MeanBlankArea() != 0 ||
		m.QualityShare(0) != 0 || m.MaskingShare() != 0 || m.BlankShare() != 0 ||
		m.PrimarySkipFramePct() != 0 || m.RenderedViewportTiles() != 0 {
		t.Error("zero metrics should yield zero stats")
	}
}

func TestRequestItemSize(t *testing.T) {
	m := smallManifest()
	it := RequestItem{Stream: Primary, Chunk: 1, Tile: 4, Quality: video.Quality(2)}
	if it.Size(m) != m.TileSize(1, 4, 2) {
		t.Error("tile size mismatch")
	}
	full := RequestItem{Stream: Masking, Chunk: 1, Full360: true, Quality: video.Lowest}
	if full.Size(m) != m.Full360Size(1, video.Lowest) {
		t.Error("full360 size mismatch")
	}
}

func TestStreamKindString(t *testing.T) {
	if Primary.String() != "primary" || Masking.String() != "masking" {
		t.Error("stream kind names")
	}
}

func TestReceivedState(t *testing.T) {
	m := smallManifest()
	r := NewReceived(m)
	if q, ok := r.BestPrimary(0, 0); ok || q != 0 {
		t.Error("empty state has primary")
	}
	r.Record(RequestItem{Stream: Primary, Chunk: 0, Tile: 0, Quality: 1}, 2*time.Second)
	r.Record(RequestItem{Stream: Primary, Chunk: 0, Tile: 0, Quality: 3}, 4*time.Second)
	if q, ok := r.BestPrimaryBy(0, 0, 3*time.Second); !ok || q != 1 {
		t.Errorf("BestPrimaryBy(3s) = %d,%v", q, ok)
	}
	if q, ok := r.BestPrimaryBy(0, 0, 5*time.Second); !ok || q != 3 {
		t.Errorf("BestPrimaryBy(5s) = %d,%v", q, ok)
	}
	if _, ok := r.BestPrimaryBy(0, 0, time.Second); ok {
		t.Error("too-early lookup succeeded")
	}
	if !r.HasPrimary(0, 0, 1) || r.HasPrimary(0, 0, 2) {
		t.Error("HasPrimary exact-variant check wrong")
	}
	r.Record(RequestItem{Stream: Masking, Chunk: 1, Tile: 5, Quality: 0}, time.Second)
	if !r.HasMaskingBy(1, 5, time.Second) || r.HasMaskingBy(1, 5, 500*time.Millisecond) {
		t.Error("tiled masking availability wrong")
	}
	if r.HasMasking(1, 6) {
		t.Error("unfetched tile has masking")
	}
	r.Record(RequestItem{Stream: Masking, Chunk: 2, Full360: true, Quality: 0}, time.Second)
	if !r.HasMaskingBy(2, 17, time.Second) {
		t.Error("full-360 masking should cover every tile")
	}
	if !r.HasFullMasking(2) || r.HasFullMasking(3) {
		t.Error("HasFullMasking wrong")
	}
}

func TestMovingUserChangesViewport(t *testing.T) {
	m := smallManifest()
	// User rotating steadily; fetch-everything scheme; verify ViewHeat is
	// spread across many tiles.
	n := int(6*time.Second/trace.HeadSamplePeriod) + 1
	samples := make([]geom.Orientation, n)
	for i := range samples {
		samples[i] = geom.Orientation{Yaw: geom.NormalizeYaw(float64(i) * 2), Pitch: 0}
	}
	head := &trace.HeadTrace{UserID: "spin", SamplePeriod: trace.HeadSamplePeriod, Samples: samples}
	s := &testScheme{name: "all", interval: 100 * time.Millisecond, policy: NeverStall,
		decide: fetchEverything(video.Lowest)}
	met, err := Run(Config{Manifest: m, Head: head, Bandwidth: flatBandwidth(1000), Scheme: s})
	if err != nil {
		t.Fatal(err)
	}
	viewed := 0
	for _, v := range met.ViewHeat {
		if v > 0 {
			viewed++
		}
	}
	if viewed < m.NumTiles()/2 {
		t.Errorf("rotating user viewed only %d tiles", viewed)
	}
}

func TestMetricSelectionAffectsScores(t *testing.T) {
	m := smallManifest()
	s := func() Scheme {
		return &testScheme{name: "all", interval: 100 * time.Millisecond, policy: NeverStall,
			decide: fetchEverything(video.Quality(2))}
	}
	psnr, err := Run(Config{Manifest: m, Head: staticHead(6 * time.Second), Bandwidth: flatBandwidth(1000), Scheme: s(), Metric: quality.PSNR})
	if err != nil {
		t.Fatal(err)
	}
	pspnr, err := Run(Config{Manifest: m, Head: staticHead(6 * time.Second), Bandwidth: flatBandwidth(1000), Scheme: s(), Metric: quality.PSPNR})
	if err != nil {
		t.Fatal(err)
	}
	if pspnr.MedianScore() <= psnr.MedianScore() {
		t.Errorf("PSPNR session score %v should exceed PSNR %v", pspnr.MedianScore(), psnr.MedianScore())
	}
}
