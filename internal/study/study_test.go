package study

import (
	"testing"
	"time"

	"dragonfly/internal/player"
	"dragonfly/internal/trace"
	"dragonfly/internal/video"
)

func studyVideos() []*video.Manifest {
	return []*video.Manifest{
		video.Generate(video.GenParams{ID: "sv1", Rows: 6, Cols: 6, NumChunks: 5,
			TargetQP42Mbps: 1, TargetQP22Mbps: 9, Seed: 61}),
		video.Generate(video.GenParams{ID: "sv2", Rows: 6, Cols: 6, NumChunks: 5,
			TargetQP42Mbps: 2, TargetQP22Mbps: 18, Seed: 62}),
	}
}

func studyTraces() []*trace.BandwidthTrace {
	return []*trace.BandwidthTrace{
		{ID: "t1", SamplePeriod: time.Second, Mbps: []float64{8}},
		{ID: "t2", SamplePeriod: time.Second, Mbps: []float64{14}},
	}
}

func TestRunStudyShape(t *testing.T) {
	res, err := Run(Config{NumUsers: 4, Videos: studyVideos(), Traces: studyTraces(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 4 users x 2 videos x 3 systems.
	if len(res.Sessions) != 24 {
		t.Fatalf("got %d sessions", len(res.Sessions))
	}
	if len(res.Heads) != 4 {
		t.Fatalf("got %d heads", len(res.Heads))
	}
	schemes := map[string]int{}
	for _, s := range res.Sessions {
		schemes[s.Scheme]++
		if s.Rating < 1 || s.Rating > 5 {
			t.Fatalf("rating %d out of range", s.Rating)
		}
		if s.Metrics == nil || s.Metrics.TotalFrames == 0 {
			t.Fatalf("session %s/%s has no playback", s.Scheme, s.VideoID)
		}
	}
	for _, name := range []string{"Dragonfly", "Flare", "Pano"} {
		if schemes[name] != 8 {
			t.Errorf("%s has %d sessions, want 8", name, schemes[name])
		}
	}
}

func TestRunStudyDeterministic(t *testing.T) {
	cfg := Config{NumUsers: 2, Videos: studyVideos()[:1], Traces: studyTraces(), Seed: 9}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Sessions {
		if a.Sessions[i].Rating != b.Sessions[i].Rating || a.Sessions[i].TraceID != b.Sessions[i].TraceID {
			t.Fatal("study not deterministic")
		}
	}
}

func TestRunStudyValidation(t *testing.T) {
	if _, err := Run(Config{NumUsers: 2}); err == nil {
		t.Error("empty study config accepted")
	}
}

func TestMOSMonotonicity(t *testing.T) {
	base := &player.Metrics{
		FrameScore:   []float64{45, 45, 45},
		TotalFrames:  3,
		PlayDuration: time.Minute,
		WallDuration: time.Minute,
	}
	good := MOS(base)
	if good < 4 {
		t.Errorf("high-quality clean session MOS = %.2f, want >= 4", good)
	}

	rebuf := *base
	rebuf.RebufferDuration = 3 * time.Second
	rebuf.StallEvents = 5
	if MOS(&rebuf) >= good {
		t.Error("rebuffering did not lower MOS")
	}

	blank := *base
	blank.FrameBlank = []float64{0.2, 0.2, 0.2}
	if MOS(&blank) >= good {
		t.Error("blank area did not lower MOS")
	}

	lowQ := *base
	lowQ.FrameScore = []float64{30, 30, 30}
	if MOS(&lowQ) >= good {
		t.Error("low quality did not lower MOS")
	}
	if MOS(&lowQ) > 2.5 {
		t.Errorf("30 dB session MOS = %.2f, want <= 2.5", MOS(&lowQ))
	}

	masked := *base
	masked.RenderedMasking = 50
	masked.RenderedPrimaryByQuality[video.Highest] = 50
	if MOS(&masked) >= good {
		t.Error("masked tiles did not lower MOS")
	}
}

func TestMOSBounds(t *testing.T) {
	horrible := &player.Metrics{
		FrameScore:       []float64{10},
		FrameBlank:       []float64{1},
		TotalFrames:      1,
		RebufferDuration: time.Minute,
		PlayDuration:     time.Second,
		WallDuration:     time.Minute,
		StallEvents:      100,
	}
	if got := MOS(horrible); got != 1 {
		t.Errorf("worst-case MOS = %v, want 1", got)
	}
	perfect := &player.Metrics{
		FrameScore:   []float64{60},
		TotalFrames:  1,
		PlayDuration: time.Minute,
		WallDuration: time.Minute,
	}
	if got := MOS(perfect); got < 4.5 || got > 5 {
		t.Errorf("best-case MOS = %v", got)
	}
}

func TestClassify(t *testing.T) {
	clean := &player.Metrics{FrameScore: []float64{46}, TotalFrames: 1, PlayDuration: time.Minute}
	f := Classify(clean)
	if f.Blankness != LevelGood || f.Reactivity != LevelGood || f.Quality != LevelGood {
		t.Errorf("clean session classified %+v", f)
	}

	stally := &player.Metrics{
		FrameScore: []float64{36}, TotalFrames: 1,
		RebufferDuration: 6 * time.Second, PlayDuration: time.Minute,
		WallDuration: 66 * time.Second, StallEvents: 8,
	}
	f = Classify(stally)
	if f.Reactivity != LevelBad {
		t.Errorf("stally session reactivity = %v, want bad", f.Reactivity)
	}
	if f.Blankness == LevelGood {
		t.Error("stally session should report blanks (frozen viewports)")
	}

	blanky := &player.Metrics{
		FrameScore: []float64{30}, FrameBlank: []float64{0.15},
		TotalFrames: 1, PlayDuration: time.Minute,
	}
	f = Classify(blanky)
	if f.Blankness == LevelGood || f.Quality != LevelBad {
		t.Errorf("blanky session classified %+v", f)
	}
}

func TestHelpers(t *testing.T) {
	records := []SessionRecord{
		{Scheme: "A", Rating: 5, VideoID: "v"},
		{Scheme: "A", Rating: 3, VideoID: "v"},
		{Scheme: "B", Rating: 4, VideoID: "v"},
	}
	r := &Results{Sessions: records}
	by := r.ByScheme()
	if len(by["A"]) != 2 || len(by["B"]) != 1 {
		t.Error("ByScheme grouping wrong")
	}
	if got := FractionRatedAtLeast(by["A"], 4); got != 0.5 {
		t.Errorf("FractionRatedAtLeast = %v", got)
	}
	if got := FractionRatedAtLeast(nil, 4); got != 0 {
		t.Error("empty fraction")
	}
	mos := MOSPerVideo(by["A"])
	if mos["v"] != 4 {
		t.Errorf("MOSPerVideo = %v", mos)
	}
}

func TestDefaultStudyVideos(t *testing.T) {
	all := video.DefaultDataset()
	got := DefaultStudyVideos(all)
	if len(got) != 5 {
		t.Fatalf("got %d study videos", len(got))
	}
	for _, v := range got {
		if v.VideoID == "v27" || v.VideoID == "v28" {
			t.Errorf("withheld video %s included", v.VideoID)
		}
	}
}

func TestMOSReactivityDipPenalty(t *testing.T) {
	// Two sessions with the same mean quality: one steady, one oscillating
	// between crisp and degraded frames (the "slow to update" experience).
	steady := &player.Metrics{
		FrameScore:   []float64{44, 44, 44, 44},
		TotalFrames:  4,
		PlayDuration: time.Minute,
		WallDuration: time.Minute,
	}
	choppy := &player.Metrics{
		FrameScore:   []float64{52, 36, 52, 36},
		TotalFrames:  4,
		PlayDuration: time.Minute,
		WallDuration: time.Minute,
	}
	if MOS(choppy) >= MOS(steady) {
		t.Errorf("choppy quality should rate below steady: %.2f vs %.2f",
			MOS(choppy), MOS(steady))
	}
}
