// Package study simulates the paper's IRB user study (§4.5): 26
// participants each watch 5 videos streamed by Dragonfly (tiled masking,
// the user-study configuration), Flare and Pano over emulated bandwidth,
// and rate each session 1-5.
//
// Human raters cannot be reproduced in software; instead a psychometric
// opinion model maps the objective session metrics to ratings. The model is
// monotone in exactly the factors participants' qualitative feedback cites
// — perceptual quality, blank screens, and reactivity (rebuffering) — with
// per-user bias and per-session noise, so *relative* orderings between
// systems are preserved (see DESIGN.md §3, Substitutions).
package study

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"dragonfly/internal/baseline"
	"dragonfly/internal/core"
	"dragonfly/internal/player"
	"dragonfly/internal/trace"
	"dragonfly/internal/video"
)

// Level3 grades a qualitative feedback dimension.
type Level3 int

// Grades for each feedback dimension (Fig 17): for blankness, None/Some/
// Many; for reactivity, Fast/Medium/Slow; for quality, High/Medium/Low.
const (
	LevelGood Level3 = iota // no blanks / fast / high quality
	LevelMid
	LevelBad // many blanks / slow / low quality
)

// Feedback is the categorized qualitative comment of one session (§4.5).
type Feedback struct {
	Blankness  Level3
	Reactivity Level3
	Quality    Level3
}

// SessionRecord is one (participant, video, system) viewing.
type SessionRecord struct {
	User    int
	VideoID string
	Scheme  string
	TraceID string

	Metrics  *player.Metrics
	MOS      float64 // continuous opinion before quantization
	Rating   int     // 1..5
	Feedback Feedback
}

// Config parameterizes the study.
type Config struct {
	NumUsers int                     // paper: 26
	Videos   []*video.Manifest       // paper: 5 (two of the seven withheld)
	Traces   []*trace.BandwidthTrace // paper: 5 Belgian traces
	Seed     int64
	Workers  int
}

// Results holds every session of the study.
type Results struct {
	Sessions []SessionRecord
	// Heads are the participants' head traces (indexed by user), used by
	// the Fig 16 displacement comparison.
	Heads []*trace.HeadTrace
}

// schemeFactories returns the three systems of the study; Dragonfly uses
// the tiled masking strategy as in §4.5.
func schemeFactories() map[string]func() player.Scheme {
	return map[string]func() player.Scheme{
		"Dragonfly": func() player.Scheme { return core.New(core.Options{Masking: core.MaskTiled, Name: "Dragonfly"}) },
		"Flare":     func() player.Scheme { return baseline.NewFlare(baseline.FlareOptions{}) },
		"Pano":      func() player.Scheme { return baseline.NewPano(baseline.PanoOptions{}) },
	}
}

// Run executes the study: every participant views every video once per
// system, with a per-(user, video) randomly assigned bandwidth trace.
func Run(cfg Config) (*Results, error) {
	if cfg.NumUsers <= 0 {
		cfg.NumUsers = 26
	}
	if len(cfg.Videos) == 0 || len(cfg.Traces) == 0 {
		return nil, fmt.Errorf("study: config requires videos and traces")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))

	// Per-user rater profile and head trace.
	bias := make([]float64, cfg.NumUsers)
	heads := make([]*trace.HeadTrace, cfg.NumUsers)
	for u := 0; u < cfg.NumUsers; u++ {
		bias[u] = rng.NormFloat64() * 0.35
		heads[u] = trace.GenerateHead(trace.HeadGenParams{
			UserID: fmt.Sprintf("p%d", u+1),
			Class:  trace.MotionClass(u % 3),
			Seed:   cfg.Seed + int64(100+u),
		})
	}

	factories := schemeFactories()
	schemeNames := []string{"Dragonfly", "Flare", "Pano"}

	type job struct {
		user   int
		video  *video.Manifest
		scheme string
		tr     *trace.BandwidthTrace
		noise  float64
	}
	var jobs []job
	for u := 0; u < cfg.NumUsers; u++ {
		for _, v := range cfg.Videos {
			tr := cfg.Traces[rng.Intn(len(cfg.Traces))]
			for _, s := range schemeNames {
				jobs = append(jobs, job{user: u, video: v, scheme: s, tr: tr,
					noise: rng.NormFloat64() * 0.3})
			}
		}
	}

	records := make([]SessionRecord, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Workers)
	errCh := make(chan error, 1)
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			met, err := player.Run(player.Config{
				Manifest:  j.video,
				Head:      heads[j.user],
				Bandwidth: j.tr,
				Scheme:    factories[j.scheme](),
			})
			if err != nil {
				select {
				case errCh <- err:
				default:
				}
				return
			}
			mos := MOS(met) + bias[j.user] + j.noise
			records[i] = SessionRecord{
				User:     j.user,
				VideoID:  j.video.VideoID,
				Scheme:   j.scheme,
				TraceID:  j.tr.ID,
				Metrics:  met,
				MOS:      mos,
				Rating:   clampRating(mos),
				Feedback: Classify(met),
			}
		}(i, j)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	return &Results{Sessions: records, Heads: heads}, nil
}

// MOS maps objective session metrics to a continuous opinion score. The
// shape follows standard QoE models (e.g. ITU-T P.1203): a saturating map
// from perceptual quality, with super-linear penalties for rebuffering and
// blank regions — the three factors the study's qualitative feedback
// categorizes.
func MOS(m *player.Metrics) float64 {
	// Quality term: mean viewport score in dB -> 1..5 (saturating).
	q := m.MeanScore()
	base := 1 + 4/(1+math.Exp(-(q-38.5)/3.2))

	// Rebuffering penalty: each percent of stall time costs dearly, as does
	// every discrete interruption (users hate freezes during interaction).
	rebufPct := 100 * m.RebufferRatio()
	stallPerMin := float64(m.StallEvents)
	if m.WallDuration > 0 {
		stallPerMin = float64(m.StallEvents) / m.WallDuration.Minutes()
	}
	penalty := 0.45*rebufPct + 0.12*stallPerMin

	// Blank-area penalty: holes in the viewport are jarring.
	penalty += 25 * m.MeanBlankArea()

	// Masked (low-quality) regions are mildly annoying.
	penalty += 2.5 * m.MaskingShare()

	// Reactivity penalty: the share of clearly degraded frames. This is
	// what participants describe as a system being "slow to update" — the
	// viewport staying pixelated after a head turn (Pano's stale per-chunk
	// upgrades, Flare's post-stall low-quality refetches).
	penalty += 3.5 * dipFraction(m.FrameScore, 40)

	s := base - penalty
	if s < 1 {
		s = 1
	}
	if s > 5 {
		s = 5
	}
	return s
}

// dipFraction is the fraction of frames whose quality falls below the
// threshold (dB).
func dipFraction(scores []float64, threshold float64) float64 {
	if len(scores) == 0 {
		return 0
	}
	n := 0
	for _, v := range scores {
		if v < threshold {
			n++
		}
	}
	return float64(n) / float64(len(scores))
}

func clampRating(mos float64) int {
	r := int(math.Round(mos))
	if r < 1 {
		r = 1
	}
	if r > 5 {
		r = 5
	}
	return r
}

// Classify derives the qualitative-feedback categories of Fig 17 from the
// session metrics.
func Classify(m *player.Metrics) Feedback {
	var f Feedback

	// Blankness: skip schemes blank when tiles are missing; stall schemes
	// effectively blank/freeze during rebuffering (§4.5).
	blankSignal := m.MeanBlankArea()*20 + m.RebufferRatio()*12 + m.MaskingShare()*1.5
	switch {
	case blankSignal < 0.05:
		f.Blankness = LevelGood
	case blankSignal < 0.35:
		f.Blankness = LevelMid
	default:
		f.Blankness = LevelBad
	}

	// Reactivity: how quickly the view recovers after movement. Stalls and
	// long startup read as sluggish; skip-based playback reads as fast.
	reactSignal := m.RebufferRatio()*30 + float64(m.StallEvents)*0.25 + m.StartupDelay.Seconds()*0.08
	switch {
	case reactSignal < 0.3:
		f.Reactivity = LevelGood
	case reactSignal < 1.1:
		f.Reactivity = LevelMid
	default:
		f.Reactivity = LevelBad
	}

	// Perceptual quality from the mean viewport score.
	switch {
	case m.MeanScore() >= 41:
		f.Quality = LevelGood
	case m.MeanScore() >= 35:
		f.Quality = LevelMid
	default:
		f.Quality = LevelBad
	}
	return f
}

// ByScheme groups session records per system.
func (r *Results) ByScheme() map[string][]SessionRecord {
	out := map[string][]SessionRecord{}
	for _, s := range r.Sessions {
		out[s.Scheme] = append(out[s.Scheme], s)
	}
	return out
}

// FractionRatedAtLeast returns the share of a scheme's sessions rated >= k.
func FractionRatedAtLeast(records []SessionRecord, k int) float64 {
	if len(records) == 0 {
		return 0
	}
	n := 0
	for _, s := range records {
		if s.Rating >= k {
			n++
		}
	}
	return float64(n) / float64(len(records))
}

// MOSPerVideo returns mean opinion score per video for a scheme's records.
func MOSPerVideo(records []SessionRecord) map[string]float64 {
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, s := range records {
		sums[s.VideoID] += float64(s.Rating)
		counts[s.VideoID]++
	}
	out := map[string]float64{}
	for v, sum := range sums {
		out[v] = sum / float64(counts[v])
	}
	return out
}

// DefaultStudyTraces picks the study's five Belgian traces.
func DefaultStudyTraces() []*trace.BandwidthTrace {
	all := trace.DefaultBelgianTraces(5)
	return all
}

// DefaultStudyVideos returns the five study videos: the paper withheld two
// of the seven emulation videos, including the highest-bitrate one (§4.5).
func DefaultStudyVideos(all []*video.Manifest) []*video.Manifest {
	var out []*video.Manifest
	for _, v := range all {
		if v.VideoID == "v27" || v.VideoID == "v28" {
			continue
		}
		out = append(out, v)
	}
	if len(out) > 5 {
		out = out[:5]
	}
	return out
}

// SessionWallTime is a helper exposing wall duration for Fig 16 style
// displacement comparisons.
func SessionWallTime(m *player.Metrics) time.Duration { return m.WallDuration }
