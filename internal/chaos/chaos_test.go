package chaos

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// Each test registers fresh uniquely-named sites (the registry is
// process-global and names cannot be re-registered).
var siteSeq int

func testSite(t *testing.T) *Site {
	t.Helper()
	siteSeq++
	s := NewSite(fmt.Sprintf("test.site.%d", siteSeq))
	t.Cleanup(Disarm)
	return s
}

func TestDisarmedHitZeroAlloc(t *testing.T) {
	s := testSite(t)
	var f Fault
	allocs := testing.AllocsPerRun(1000, func() {
		f = s.Fault()
		if err := s.Err(); err != nil {
			t.Fatal(err)
		}
	})
	if f.Active() {
		t.Fatalf("disarmed site injected %v", f)
	}
	if allocs != 0 {
		t.Fatalf("disarmed hit allocated %.1f times per run, want 0", allocs)
	}
}

func TestErrorRulePhase(t *testing.T) {
	s := testSite(t)
	if err := Arm(Rule{Site: s.Name(), Kind: FaultError, After: 3, Every: 5, Count: 2}); err != nil {
		t.Fatal(err)
	}
	var fired []int
	for i := 1; i <= 30; i++ {
		if err := s.Err(); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("hit %d: error %v does not wrap ErrInjected", i, err)
			}
			fired = append(fired, i)
		}
	}
	// After=3 skips hits 1..3; Every=5 fires on eligible hits 4, 9, 14, ...;
	// Count=2 stops after two firings.
	want := []int{4, 9}
	if len(fired) != len(want) {
		t.Fatalf("fired on hits %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired on hits %v, want %v", fired, want)
		}
	}
	if got := s.Injections(); got != 2 {
		t.Fatalf("Injections() = %d, want 2", got)
	}
	if got := Injections(s.Name()); got != 2 {
		t.Fatalf("Injections(%q) = %d, want 2", s.Name(), got)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	s := testSite(t)
	run := func() []uint64 {
		if err := Arm(Rule{Site: s.Name(), Kind: FaultError, After: 2, Every: 3}); err != nil {
			t.Fatal(err)
		}
		var ticks []uint64
		for i := 0; i < 20; i++ {
			if f := s.Fault(); f.Active() {
				ticks = append(ticks, f.Tick)
			}
		}
		return ticks
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("runs differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs differ: %v vs %v", a, b)
		}
	}
}

func TestFaultDefaults(t *testing.T) {
	s := testSite(t)
	if err := Arm(
		Rule{Site: s.Name(), Kind: FaultPartial, Count: 1},
		Rule{Site: s.Name(), Kind: FaultDelay, Count: 1},
	); err != nil {
		t.Fatal(err)
	}
	f := s.Fault()
	if f.Kind != FaultPartial || f.Frac != 0.5 {
		t.Fatalf("first fault = %+v, want partial frac 0.5", f)
	}
	if f.Err == nil || !errors.Is(f.Err, ErrInjected) {
		t.Fatalf("partial fault error %v does not wrap ErrInjected", f.Err)
	}
	f = s.Fault()
	if f.Kind != FaultDelay || f.Delay != 10*time.Millisecond {
		t.Fatalf("second fault = %+v, want delay 10ms", f)
	}
	if f = s.Fault(); f.Active() {
		t.Fatalf("exhausted rules still fired: %+v", f)
	}
}

func TestErrAppliesDelayInline(t *testing.T) {
	s := testSite(t)
	if err := Arm(Rule{Site: s.Name(), Kind: FaultDelay, Delay: 20 * time.Millisecond, Count: 1}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := s.Err(); err != nil {
		t.Fatalf("delay fault surfaced as error: %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("Err returned after %v, want >= 20ms stall", d)
	}
}

func TestArmRejectsUnknownSiteAndNoneKind(t *testing.T) {
	s := testSite(t)
	if err := Arm(Rule{Site: "no.such.site", Kind: FaultError}); err == nil {
		t.Fatal("Arm accepted an unknown site")
	}
	if err := Arm(Rule{Site: s.Name()}); err == nil {
		t.Fatal("Arm accepted a FaultNone rule")
	}
	// A failed Arm must not have armed anything.
	if err := s.Err(); err != nil {
		t.Fatalf("site armed by a failed Arm call: %v", err)
	}
}

func TestDisarmStopsInjection(t *testing.T) {
	s := testSite(t)
	if err := Arm(Rule{Site: s.Name(), Kind: FaultError}); err != nil {
		t.Fatal(err)
	}
	if err := s.Err(); err == nil {
		t.Fatal("armed site did not inject")
	}
	Disarm()
	if err := s.Err(); err != nil {
		t.Fatalf("disarmed site injected: %v", err)
	}
	if got := s.Injections(); got != 1 {
		t.Fatalf("Injections() = %d after Disarm, want 1 (counter stays readable)", got)
	}
}

func TestArmResetsCounters(t *testing.T) {
	s := testSite(t)
	if err := Arm(Rule{Site: s.Name(), Kind: FaultError, Count: 1}); err != nil {
		t.Fatal(err)
	}
	_ = s.Err()
	if err := Arm(Rule{Site: s.Name(), Kind: FaultError, Count: 1}); err != nil {
		t.Fatal(err)
	}
	if got := s.Injections(); got != 0 {
		t.Fatalf("Injections() = %d after re-Arm, want 0", got)
	}
	if err := s.Err(); err == nil {
		t.Fatal("re-armed one-shot rule did not fire (hit counter not reset)")
	}
}

func TestConcurrentHitsBoundedCount(t *testing.T) {
	s := testSite(t)
	const count = 7
	if err := Arm(Rule{Site: s.Name(), Kind: FaultError, Count: count}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = s.Err()
			}
		}()
	}
	wg.Wait()
	if got := s.Injections(); got != count {
		t.Fatalf("Injections() = %d under concurrency, want exactly %d", got, count)
	}
}

func TestScheduleDeterministicAndStaggered(t *testing.T) {
	in := []Rule{
		{Site: "a", Kind: FaultError},
		{Site: "b", Kind: FaultDelay},
		{Site: "c", Kind: FaultError, After: 5, Every: 2}, // explicit: untouched
	}
	out1 := Schedule(42, in)
	out2 := Schedule(42, in)
	for i := range out1 {
		if out1[i] != out2[i] {
			t.Fatalf("Schedule(42) not deterministic: %+v vs %+v", out1[i], out2[i])
		}
	}
	if out1[2].After != 5 || out1[2].Every != 2 {
		t.Fatalf("explicit rule modified: %+v", out1[2])
	}
	for _, r := range out1[:2] {
		if r.Every < 2 {
			t.Fatalf("seeded rule got Every=%d, want >= 2", r.Every)
		}
	}
	if in[0].Every != 0 {
		t.Fatal("Schedule modified its input slice")
	}
	other := Schedule(43, in)
	if other[0] == out1[0] && other[1] == out1[1] {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestSiteNamesSorted(t *testing.T) {
	a := testSite(t)
	names := SiteNames()
	found := false
	for i, n := range names {
		if n == a.Name() {
			found = true
		}
		if i > 0 && names[i-1] > n {
			t.Fatalf("SiteNames not sorted: %q before %q", names[i-1], n)
		}
	}
	if !found {
		t.Fatalf("SiteNames missing %q", a.Name())
	}
}
