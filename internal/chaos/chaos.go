// Package chaos is a process-wide deterministic failpoint registry.
//
// A failpoint is a named site in production code — "ingest.snapshot.write",
// "balancer.dial" — where a test or soak can inject typed faults: returned
// errors (EIO/ENOSPC-style), added latency, partial writes, or one-shot
// payload corruption. Sites are declared once as package vars:
//
//	var siteSnapWrite = chaos.NewSite("ingest.snapshot.write")
//
// and consulted on the hot path either as
//
//	if err := siteSnapWrite.Err(); err != nil { return err }
//
// for error-shaped sites, or via Fault() when the caller wants to implement
// Partial/Corrupt semantics itself (a writer that can tear its own output).
//
// # Cost model
//
// The registry is built for production code paths that are benchmarked to
// zero allocations: when a site is disarmed (the common case — always, in
// production) the check is a single atomic pointer load returning the zero
// Fault by value. No locks, no allocations, no time calls. TestDisarmedHitZeroAlloc
// pins this with testing.AllocsPerRun, and the repo-level
// BenchmarkManyConnStream / BenchmarkFrameWritePreframed baselines pin the
// end-to-end send path that crosses several sites per frame.
//
// # Determinism
//
// Armed faults fire from per-site hit counters, never from wall-clock time
// or math/rand: rule {After: 3, Every: 5, Count: 2} fires on exactly the
// 4th and 9th hit of that site, every run. Schedule derives (After, Every)
// pairs from a seed via splitmix64 so a soak can arm a whole fleet of sites
// from one integer and replay it exactly. Fault.Tick carries the hit number
// so injectors needing a deterministic byte offset (corruption) can derive
// one without global state.
//
// Arm installs a rule set atomically across the named sites and Disarm
// removes every rule everywhere; both are test-only operations and may not
// be called concurrently with each other (hits may race with both, that is
// the point). Tests that arm sites must not run in t.Parallel with other
// tests of the same process — the registry is process-global by design,
// mirroring the single-process failpoint registries of gofail and friends.
package chaos

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies an injected fault.
type Kind uint8

const (
	// FaultNone means the site is disarmed (the zero Fault).
	FaultNone Kind = iota
	// FaultError makes the site return a typed error.
	FaultError
	// FaultDelay stalls the site for Fault.Delay before proceeding normally.
	FaultDelay
	// FaultPartial makes a write-shaped site deliver only Fault.Frac of its
	// payload and then fail. Error-shaped sites treat it as FaultError.
	FaultPartial
	// FaultCorrupt makes a payload-shaped site flip a byte (deterministically
	// chosen from Fault.Tick) and carry on as if the write succeeded.
	// Error-shaped sites treat it as FaultError.
	FaultCorrupt
)

// String returns the kind's catalog name ("error", "delay", ...).
func (k Kind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultError:
		return "error"
	case FaultDelay:
		return "delay"
	case FaultPartial:
		return "partial"
	case FaultCorrupt:
		return "corrupt"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ErrInjected is the root of every chaos-injected error; recovery code can
// errors.Is against it to distinguish injected faults in assertions, and
// production code must NOT special-case it — the whole point is that an
// injected EIO takes the same path a real one would.
var ErrInjected = errors.New("chaos: injected fault")

// Fault is the instruction a hit returns. The zero value means "disarmed,
// proceed"; check Active() or Kind. Faults are returned by value so the
// disarmed path performs no allocation.
type Fault struct {
	Kind  Kind
	Err   error         // FaultError/FaultPartial: the error to surface
	Delay time.Duration // FaultDelay: how long to stall
	Frac  float64       // FaultPartial: fraction of the payload delivered, in [0,1)
	Tick  uint64        // the site's hit number (1-based) that triggered this fault
}

// Active reports whether a fault was injected.
func (f Fault) Active() bool { return f.Kind != FaultNone }

// Rule arms one fault pattern at one site. The zero values of After/Every/
// Count mean "from the first hit", "every eligible hit", "unlimited".
type Rule struct {
	Site  string        // registered site name (Arm fails on unknown names)
	Kind  Kind          // fault to inject; FaultNone rules are rejected
	Err   error         // optional override; default is "<site>: chaos: injected fault"
	Delay time.Duration // FaultDelay duration; default 10ms
	Frac  float64       // FaultPartial delivered fraction; default 0.5, clamped to [0,1)
	After int           // skip this many hits before the rule becomes eligible
	Every int           // fire on every Nth eligible hit (default 1 = every hit)
	Count int           // stop after this many firings (0 = unlimited)
}

type armedRule struct {
	Rule
	fired atomic.Int64
}

type siteState struct {
	hits  atomic.Uint64
	rules []*armedRule
}

// Site is a registered failpoint. Construct with NewSite at package scope.
type Site struct {
	name     string
	st       atomic.Pointer[siteState]
	injected atomic.Uint64
}

var (
	regMu sync.Mutex
	reg   = map[string]*Site{}
)

// NewSite registers a failpoint name and returns its handle. Names are
// process-global; registering the same name twice panics (it would split
// one conceptual site across two counters), as does an empty name.
func NewSite(name string) *Site {
	if name == "" {
		panic("chaos: empty site name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := reg[name]; dup {
		panic("chaos: duplicate site " + name)
	}
	s := &Site{name: name}
	reg[name] = s
	return s
}

// Name returns the registered site name.
func (s *Site) Name() string { return s.name }

// Injections returns how many faults this site has injected since the last
// Arm of it (Arm resets the counter so a test observes only its own run).
func (s *Site) Injections() uint64 { return s.injected.Load() }

// Fault records a hit and returns the fault to inject, if any. Disarmed
// sites pay one atomic load and return the zero Fault.
func (s *Site) Fault() Fault {
	st := s.st.Load()
	if st == nil {
		return Fault{}
	}
	return s.eval(st)
}

// eval is the armed slow path, split out so Fault stays inlinable.
func (s *Site) eval(st *siteState) Fault {
	h := st.hits.Add(1)
	for _, r := range st.rules {
		if h <= uint64(r.After) {
			continue
		}
		if r.Every > 1 && (h-uint64(r.After)-1)%uint64(r.Every) != 0 {
			continue
		}
		if r.Count > 0 {
			if n := r.fired.Add(1); n > int64(r.Count) {
				continue
			}
		} else {
			r.fired.Add(1)
		}
		s.injected.Add(1)
		f := Fault{Kind: r.Kind, Err: r.Err, Delay: r.Delay, Frac: r.Frac, Tick: h}
		if f.Err == nil {
			f.Err = fmt.Errorf("%s: %w", s.name, ErrInjected)
		}
		if f.Kind == FaultDelay && f.Delay <= 0 {
			f.Delay = 10 * time.Millisecond
		}
		if f.Kind == FaultPartial && (f.Frac <= 0 || f.Frac >= 1) {
			f.Frac = 0.5
		}
		return f
	}
	return Fault{}
}

// Err is the convenience form for error-shaped sites: it applies delay
// faults inline (sleep, then proceed) and collapses Error/Partial/Corrupt
// to the fault's error. Returns nil when disarmed or after a delay.
func (s *Site) Err() error {
	st := s.st.Load()
	if st == nil {
		return nil
	}
	f := s.eval(st)
	switch f.Kind {
	case FaultNone:
		return nil
	case FaultDelay:
		time.Sleep(f.Delay)
		return nil
	default:
		return f.Err
	}
}

// Arm installs the given rules, replacing any prior rules at the named
// sites (other sites are untouched) and resetting those sites' hit and
// injection counters. Unknown site names or FaultNone kinds fail the whole
// call without arming anything.
func Arm(rules ...Rule) error {
	regMu.Lock()
	defer regMu.Unlock()
	bySite := map[string][]*armedRule{}
	for _, r := range rules {
		if r.Kind == FaultNone {
			return fmt.Errorf("chaos: rule for %q has no fault kind", r.Site)
		}
		if _, ok := reg[r.Site]; !ok {
			return fmt.Errorf("chaos: unknown site %q", r.Site)
		}
		bySite[r.Site] = append(bySite[r.Site], &armedRule{Rule: r})
	}
	for name, rs := range bySite {
		site := reg[name]
		site.injected.Store(0)
		site.st.Store(&siteState{rules: rs})
	}
	return nil
}

// Disarm removes every rule at every site. Hit and injection counters are
// left readable so a finished test can still assert on Injections().
func Disarm() {
	regMu.Lock()
	defer regMu.Unlock()
	for _, s := range reg {
		s.st.Store(nil)
	}
}

// SiteNames returns every registered failpoint name, sorted. This is the
// catalog the docs drift gate and Schedule build on.
func SiteNames() []string {
	regMu.Lock()
	defer regMu.Unlock()
	names := make([]string, 0, len(reg))
	for n := range reg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Injections returns the injection count for a site by name (0 for unknown
// names, so assertions read cleanly).
func Injections(name string) uint64 {
	regMu.Lock()
	s := reg[name]
	regMu.Unlock()
	if s == nil {
		return 0
	}
	return s.injected.Load()
}

// TotalInjections sums Injections over every registered site.
func TotalInjections() uint64 {
	regMu.Lock()
	defer regMu.Unlock()
	var n uint64
	for _, s := range reg {
		n += s.injected.Load()
	}
	return n
}

// splitmix64 is the same pure-function generator the popsim and netem
// seeding uses: deterministic, stateless, well-mixed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Schedule derives a deterministic injection schedule from a seed: each
// input rule whose After and Every are both zero gets a seeded
// (After in [0,7], Every in [2,9]) pair so faults land at staggered,
// replayable points instead of on every hit. Rules with explicit phases
// pass through untouched. The input slice is not modified.
func Schedule(seed int64, rules []Rule) []Rule {
	out := make([]Rule, len(rules))
	for i, r := range rules {
		if r.After == 0 && r.Every == 0 {
			h := splitmix64(uint64(seed) ^ splitmix64(uint64(i)+0x5bf0_3635))
			r.After = int(h % 8)
			r.Every = 2 + int((h>>8)%8)
		}
		out[i] = r
	}
	return out
}
