package popsim

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"sync"
	"testing"
	"time"

	"dragonfly/internal/obs"
	"dragonfly/internal/sim"
	"dragonfly/internal/trace"
	"dragonfly/internal/video"
)

var (
	engineManifestOnce sync.Once
	engineManifestVal  *video.Manifest
)

// engineManifest is the shared tiny video for engine tests: small grid and
// few chunks so a session costs about a millisecond.
func engineManifest() *video.Manifest {
	engineManifestOnce.Do(func() {
		engineManifestVal = video.Generate(video.GenParams{
			ID: "pop", Rows: 4, Cols: 4, NumChunks: 4,
			TargetQP42Mbps: 1, TargetQP22Mbps: 8, MotionLevel: 0.3, Seed: 9,
		})
	})
	return engineManifestVal
}

// engineSweep is the fixture both the in-process tests and the re-exec'd
// shard children build, so every process simulates the same population.
func engineSweep(seed int64, sessions, workers, shardIdx, shardCount int) Sweep {
	model := DefaultModel(seed)
	model.Duration = 4 * time.Second
	return Sweep{
		Videos:     []*video.Manifest{engineManifest()},
		Schemes:    []string{"dragonfly", "pano"},
		Sessions:   sessions,
		Model:      model,
		Workers:    workers,
		ShardIndex: shardIdx,
		ShardCount: shardCount,
	}
}

// shardChildEnv is the re-exec hook: when set, TestMain runs one shard of
// the fixture sweep, writes its snapshot to stdout and exits — the test
// binary doubles as the shard subprocess.
const shardChildEnv = "POPSIM_SHARD_CHILD"

func TestMain(m *testing.M) {
	if spec := os.Getenv(shardChildEnv); spec != "" {
		var seed int64
		var sessions, shardIdx, shardCount int
		if _, err := fmt.Sscanf(spec, "%d/%d/%d/%d", &seed, &sessions, &shardIdx, &shardCount); err != nil {
			fmt.Fprintf(os.Stderr, "popsim shard child: bad spec %q: %v\n", spec, err)
			os.Exit(2)
		}
		rollup, _, err := Run(engineSweep(seed, sessions, 2, shardIdx, shardCount))
		if err == nil {
			err = rollup.WriteSnapshot(os.Stdout, shardIdx, shardCount)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "popsim shard child:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestWorkerCountInvariance is half the determinism contract: the same
// seed produces a byte-identical rollup for 1 worker and for many.
func TestWorkerCountInvariance(t *testing.T) {
	one, _, err := Run(engineSweep(42, 12, 1, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	many, _, err := Run(engineSweep(42, 12, 8, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(summaryJSON(t, one), summaryJSON(t, many)) {
		t.Fatal("rollup differs between 1 worker and 8 workers")
	}
	if one.Sessions() != 24 { // 12 members x 2 schemes
		t.Fatalf("folded %d sessions, want 24", one.Sessions())
	}
}

// TestShardEquivalence is the other half: a 4-way strided shard split,
// snapshotted and merged in any order, reproduces the single-process
// rollup exactly.
func TestShardEquivalence(t *testing.T) {
	whole, _, err := Run(engineSweep(7, 14, 4, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	const shards = 4
	merged := NewRollup(Geometry{})
	// Merge in reverse shard order on purpose: order must not matter.
	for shard := shards - 1; shard >= 0; shard-- {
		part, _, err := Run(engineSweep(7, 14, 2, shard, shards))
		if err != nil {
			t.Fatal(err)
		}
		var snap bytes.Buffer
		if err := part.WriteSnapshot(&snap, shard, shards); err != nil {
			t.Fatal(err)
		}
		if err := merged.MergeSnapshot(&snap); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(summaryJSON(t, merged), summaryJSON(t, whole)) {
		t.Fatal("merged 4-shard rollup differs from the single-process rollup")
	}
}

// TestShardSubprocessEquivalence drives the real multi-process path: four
// shard subprocesses (this test binary re-exec'd) report snapshots over
// stdout and the merged result must equal the in-process sweep.
func TestShardSubprocessEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess shards skipped in -short mode")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	const (
		seed     = 21
		sessions = 10
		shards   = 4
	)
	whole, _, err := Run(engineSweep(seed, sessions, 4, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	merged := NewRollup(Geometry{})
	for shard := 0; shard < shards; shard++ {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			shardChildEnv+"="+fmt.Sprintf("%d/%d/%d/%d", int64(seed), sessions, shard, shards))
		var out, errb bytes.Buffer
		cmd.Stdout, cmd.Stderr = &out, &errb
		if err := cmd.Run(); err != nil {
			t.Fatalf("shard %d: %v\n%s", shard, err, errb.String())
		}
		if err := merged.MergeSnapshot(&out); err != nil {
			t.Fatalf("shard %d snapshot: %v", shard, err)
		}
	}
	if !bytes.Equal(summaryJSON(t, merged), summaryJSON(t, whole)) {
		t.Fatal("merged subprocess-shard rollup differs from the single-process rollup")
	}
	if merged.Sessions() != int64(sessions)*2 {
		t.Fatalf("merged %d sessions, want %d", merged.Sessions(), sessions*2)
	}
}

// TestEngineObsMetrics: the pop_* registry wiring.
func TestEngineObsMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	sw := engineSweep(5, 6, 2, 0, 1)
	sw.Obs = reg
	_, st, err := Run(sw)
	if err != nil {
		t.Fatal(err)
	}
	if st.Sessions != 12 {
		t.Fatalf("stats counted %d sessions, want 12", st.Sessions)
	}
	snap := reg.Snapshot()
	if snap.Counters["pop_sessions"] != 12 {
		t.Errorf("pop_sessions = %d, want 12", snap.Counters["pop_sessions"])
	}
	if snap.Histograms["pop_session_ms"].Count != 12 {
		t.Errorf("pop_session_ms observed %d sessions, want 12", snap.Histograms["pop_session_ms"].Count)
	}
	if snap.Gauges["pop_cohorts"] <= 0 {
		t.Error("pop_cohorts gauge not set")
	}
	if snap.Gauges["pop_sessions_per_sec"] <= 0 {
		t.Error("pop_sessions_per_sec gauge not set")
	}
}

// TestSimFoldReuse: the sim cross-product engine streams into the same
// rollup type through Sweep.Fold — FoldSession is the shared adapter, so
// grid sweeps and population sweeps aggregate identically.
func TestSimFoldReuse(t *testing.T) {
	rollup := NewRollup(Geometry{})
	model := DefaultModel(3)
	model.Duration = 4 * time.Second
	m0, m1 := model.Sample(0), model.Sample(1)
	res, err := sim.Run(sim.Sweep{
		Videos:     []*video.Manifest{engineManifest()},
		Users:      []*trace.HeadTrace{m0.Head, m1.Head},
		Bandwidths: []*trace.BandwidthTrace{m0.Bandwidth, m1.Bandwidth},
		Schemes:    []string{"dragonfly"},
		Workers:    2,
		Fold:       rollup.FoldSession,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		t.Fatal("fold-only sim sweep retained results")
	}
	if rollup.Sessions() != 4 { // 1 scheme x 1 video x 2 users x 2 bandwidths
		t.Fatalf("rollup folded %d sessions, want 4", rollup.Sessions())
	}
	sum := rollup.Summary()
	cells := sum.Schemes["dragonfly"]
	if len(cells) == 0 {
		t.Fatal("no cohorts in the folded rollup")
	}
	for cohort, cs := range cells {
		if cs.QualityDB.Count == 0 {
			t.Errorf("cohort %q folded no quality samples", cohort)
		}
	}
}

func TestEngineErrors(t *testing.T) {
	if _, _, err := Run(Sweep{}); err == nil {
		t.Error("empty sweep accepted")
	}
	sw := engineSweep(1, 4, 1, 0, 1)
	sw.Schemes = []string{"no-such-scheme"}
	if _, _, err := Run(sw); err == nil {
		t.Error("unknown scheme accepted")
	}
	sw = engineSweep(1, 4, 1, 5, 4)
	if _, _, err := Run(sw); err == nil {
		t.Error("out-of-range shard accepted")
	}
}
