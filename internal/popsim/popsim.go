// Package popsim is the population-scale sweep engine: it simulates
// hundreds of thousands to millions of streaming sessions under a fixed
// memory bound. Where internal/sim plays a handful of curated traces and
// retains every session's metrics, popsim samples a *synthetic population*
// — thousands of distinct users drawn from the head-motion and bandwidth
// generator parameter space (internal/trace) under configured motion- and
// network-class mixtures — and folds each finished session's metrics
// straight into per-(scheme, cohort) quantile sketches (internal/stats),
// discarding the session. Aggregation memory is O(schemes × cohorts ×
// bins), independent of the session count.
//
// Determinism is a hard contract, not a best effort: the same seed
// produces an identical merged rollup for any worker count and any shard
// layout. Two ingredients make that hold. Session i's traces depend only
// on (seed, i) — a splitmix64-derived seed chain, never on execution
// order — and all fold state is integral (uint64 sketch bins plus a
// fixed-point micro-unit sum), so concurrent folds and shard merges
// commute exactly, with none of the order sensitivity of float
// accumulation.
//
// For populations too big for one process, shards run as subprocesses
// (cmd/dragonfly-popsim -shards) over a strided session-index split and
// report their sketch state as a versioned JSONL snapshot, which the
// coordinator merges with geometry-checked stats.Sketch.Merge.
package popsim

import (
	"fmt"
	"time"

	"dragonfly/internal/trace"
)

// Seed-chain salts: each independently sampled quantity of a member draws
// from its own splitmix64 stream so adding a quantity never perturbs the
// others.
const (
	saltMotion  = 0xA24BAED4963EE407
	saltNet     = 0x9FB21C651E98DF25
	saltHead    = 0xD6E8FEB86659FD93
	saltBW      = 0xC2B2AE3D27D4EB4F
	saltBWScale = 0x165667B19E3779F9
)

// mix64 is the splitmix64 finalizer: a cheap, high-quality bijection used
// to derive independent per-session seeds from (base seed, index, salt).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// MotionWeight is one motion class's share of the population.
type MotionWeight struct {
	Class  trace.MotionClass
	Weight float64
}

// NetClass describes one network class of the population: a bandwidth
// generator parameter envelope (the class template), a per-member mean
// jitter widening it into a parameter distribution, and the paper's §4.2
// trace-selection filter.
type NetClass struct {
	// Name keys the class in cohorts; it must be lowercase with no
	// trailing digits so the generated trace IDs ("<name>-<index>")
	// classify back to it via BandwidthTrace.NetClass.
	Name string

	// Params is the generator template; ID, Seed and Duration are
	// overwritten per member.
	Params trace.BandwidthGenParams

	// MeanScale jitters each member's state means by a factor drawn
	// uniformly from [1-MeanScale, 1+MeanScale], so members of one class
	// are distinct users, not reruns of one generator config.
	MeanScale float64

	// Filter, when CapMbps > 0, applies the §4.2 selection rule: rejected
	// draws are deterministically resampled (bounded attempts), and every
	// accepted trace is capped.
	Filter trace.FilterOptions
}

// NetWeight is one network class's share of the population.
type NetWeight struct {
	Class  NetClass
	Weight float64
}

// Model is the synthetic population: mixtures over motion and network
// classes plus the per-session trace duration, all derived from one seed.
// Sample(i) is a pure function of (Model, i) — any worker, any shard, any
// execution order reproduces the same member.
type Model struct {
	Motion   []MotionWeight
	Nets     []NetWeight
	Duration time.Duration // head + bandwidth trace length (default 30 s)
	Seed     int64
}

// maxFilterAttempts bounds the §4.2 resampling loop per member; the last
// draw is accepted (capped) if none passes, keeping Sample total.
const maxFilterAttempts = 32

// BelgianClass returns the 4G-like network class calibrated to the
// Belgian HTTP logs (the trace.DefaultBelgianTraces envelope).
func BelgianClass() NetClass {
	return NetClass{
		Name: "belgian",
		Params: trace.BandwidthGenParams{
			StateMeansMbps: []float64{9, 13, 18, 24},
			SwitchPerSec:   0.25,
			NoiseFrac:      0.15,
		},
		MeanScale: 0.12,
		Filter:    trace.DefaultBelgianFilter,
	}
}

// IrishClass returns the 5G-like network class calibrated to the Irish
// dataset: higher and flatter bandwidth with abrupt near-zero dips.
func IrishClass() NetClass {
	return NetClass{
		Name: "irish",
		Params: trace.BandwidthGenParams{
			StateMeansMbps: []float64{14, 20, 26},
			SwitchPerSec:   0.12,
			NoiseFrac:      0.10,
			DipPerSec:      0.06,
			DipLen:         1500 * time.Millisecond,
		},
		MeanScale: 0.10,
		Filter:    trace.DefaultIrishFilter,
	}
}

// DefaultModel is the paper-shaped population: motion classes in equal
// thirds (mirroring the [34] dataset spread) over an even Belgian-4G /
// Irish-5G network split.
func DefaultModel(seed int64) Model {
	return Model{
		Motion: []MotionWeight{
			{Class: trace.MotionLow, Weight: 1},
			{Class: trace.MotionMedium, Weight: 1},
			{Class: trace.MotionHigh, Weight: 1},
		},
		Nets: []NetWeight{
			{Class: BelgianClass(), Weight: 1},
			{Class: IrishClass(), Weight: 1},
		},
		Seed: seed,
	}
}

// Validate reports whether the model can sample members.
func (m Model) Validate() error {
	if len(m.Motion) == 0 || len(m.Nets) == 0 {
		return fmt.Errorf("popsim: model needs at least one motion and one network class")
	}
	var motion, nets float64
	for _, w := range m.Motion {
		if w.Weight < 0 {
			return fmt.Errorf("popsim: negative motion weight %g", w.Weight)
		}
		motion += w.Weight
	}
	for _, w := range m.Nets {
		if w.Weight < 0 {
			return fmt.Errorf("popsim: negative network weight %g", w.Weight)
		}
		if w.Class.Name == "" {
			return fmt.Errorf("popsim: network class needs a name")
		}
		nets += w.Weight
	}
	if motion <= 0 || nets <= 0 {
		return fmt.Errorf("popsim: mixture weights sum to zero")
	}
	return nil
}

// Member is one sampled user-session of the population.
type Member struct {
	Index     int
	Head      *trace.HeadTrace
	Bandwidth *trace.BandwidthTrace
	Cohort    string // "<motion class>:<network class>"
}

// duration returns the effective trace length.
func (m Model) duration() time.Duration {
	if m.Duration > 0 {
		return m.Duration
	}
	return 30 * time.Second
}

// rand01 draws the member's uniform [0, 1) variate for the given salt.
func (m Model) rand01(i int, salt uint64) float64 {
	return float64(m.bits(i, salt)>>11) / (1 << 53)
}

// bits derives the member's 64-bit stream value for the given salt.
func (m Model) bits(i int, salt uint64) uint64 {
	return mix64(mix64(uint64(m.Seed)^salt) + uint64(i)*0x9E3779B97F4A7C15)
}

// pickMotion resolves the member's motion class from the mixture.
func (m Model) pickMotion(i int) trace.MotionClass {
	var total float64
	for _, w := range m.Motion {
		total += w.Weight
	}
	r := m.rand01(i, saltMotion) * total
	for _, w := range m.Motion {
		if r < w.Weight {
			return w.Class
		}
		r -= w.Weight
	}
	return m.Motion[len(m.Motion)-1].Class
}

// pickNet resolves the member's network class from the mixture.
func (m Model) pickNet(i int) NetClass {
	var total float64
	for _, w := range m.Nets {
		total += w.Weight
	}
	r := m.rand01(i, saltNet) * total
	for _, w := range m.Nets {
		if r < w.Weight {
			return w.Class
		}
		r -= w.Weight
	}
	return m.Nets[len(m.Nets)-1].Class
}

// Sample materializes population member i: a fresh head trace and
// bandwidth trace whose parameters and seeds are pure functions of
// (Model, i). Safe for concurrent use — the model is read-only and all
// state is derived locally.
func (m Model) Sample(i int) Member {
	motion := m.pickMotion(i)
	net := m.pickNet(i)
	dur := m.duration()

	head := trace.GenerateHead(trace.HeadGenParams{
		UserID:   fmt.Sprintf("p%d", i),
		Class:    motion,
		Duration: dur,
		Seed:     int64(m.bits(i, saltHead)),
	})

	// Per-member parameter jitter: one mean-scale factor for all attempts,
	// so resampling explores seeds, not a drifting envelope.
	scale := 1.0
	if net.MeanScale > 0 {
		scale = 1 + (m.rand01(i, saltBWScale)*2-1)*net.MeanScale
	}
	params := net.Params
	params.ID = fmt.Sprintf("%s-%d", net.Name, i)
	params.Duration = dur
	if scale != 1 {
		means := make([]float64, len(params.StateMeansMbps))
		for k, v := range params.StateMeansMbps {
			means[k] = v * scale
		}
		params.StateMeansMbps = means
	}

	var bw *trace.BandwidthTrace
	for attempt := 0; attempt < maxFilterAttempts; attempt++ {
		params.Seed = int64(m.bits(i, saltBW+uint64(attempt)*0x8CB92BA72F3D8DD7))
		bw = trace.GenerateBandwidth(params)
		if net.Filter.CapMbps <= 0 {
			break
		}
		if kept := trace.Filter([]*trace.BandwidthTrace{bw}, net.Filter); len(kept) == 1 {
			bw = kept[0]
			break
		}
		if attempt == maxFilterAttempts-1 {
			// No draw passed: accept the last one capped, keeping Sample
			// total and deterministic.
			bw = bw.Capped(net.Filter.CapMbps)
		}
	}

	return Member{
		Index:     i,
		Head:      head,
		Bandwidth: bw,
		Cohort:    head.ClassName() + ":" + bw.NetClass(),
	}
}
