package popsim

import (
	"testing"
)

// BenchmarkPopulationSweep streams a 10k-member population (one scheme,
// tiny manifest) through the sharded engine — the figure of merit is
// sessions/sec and allocation stability, not quality numbers. The sketch
// rollup keeps memory flat regardless of population size, so b.N scales
// population, not retained state.
func BenchmarkPopulationSweep(b *testing.B) {
	sw := engineSweep(17, 10_000, 0, 0, 1)
	sw.Schemes = []string{"dragonfly"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rollup, st, err := Run(sw)
		if err != nil {
			b.Fatal(err)
		}
		if rollup.Sessions() != int64(sw.Sessions) {
			b.Fatalf("folded %d sessions, want %d", rollup.Sessions(), sw.Sessions)
		}
		b.ReportMetric(st.SessionsPerSec, "sessions/sec")
	}
}
