package popsim

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"dragonfly/internal/geom"
	"dragonfly/internal/obs"
	"dragonfly/internal/player"
	"dragonfly/internal/quality"
	"dragonfly/internal/sim"
	"dragonfly/internal/video"
)

// Sweep describes one population sweep: every scheme plays every sampled
// member of the population (so schemes are compared on identical traffic,
// as the paper's evaluation does).
type Sweep struct {
	// Videos round-robins over the population by session index.
	Videos []*video.Manifest

	// Schemes are sim registry keys (or Extra keys); they key the rollup.
	Schemes []string
	Extra   map[string]sim.SchemeFactory

	// Sessions is the population size. Each member plays once per scheme,
	// so the sweep executes Sessions × len(Schemes) sessions in total
	// (across all shards).
	Sessions int

	Model    Model
	Geometry Geometry // zero = DefaultGeometry

	Metric          quality.Metric
	PredictErrorDeg float64
	Workers         int // 0 = GOMAXPROCS

	// ShardIndex/ShardCount select this process's strided slice of the
	// population: member i runs here when i % ShardCount == ShardIndex.
	// Zero ShardCount means the whole population (one shard).
	ShardIndex, ShardCount int

	// Obs, when non-nil, receives the pop_* metrics (session counter,
	// per-session wall-clock histogram, throughput, cohort count).
	Obs *obs.Registry
}

// Stats reports a sweep's execution profile.
type Stats struct {
	Sessions       int           // sessions executed in this shard
	Wall           time.Duration // sweep wall-clock time
	SessionsPerSec float64       // throughput (0 when Wall is 0)
}

// Run executes this shard's slice of the population sweep, streaming
// every finished session into the returned rollup. Same seed ⇒ identical
// rollup for any Workers value, and merging all shards of any ShardCount
// split reproduces the single-process rollup exactly (see the package
// comment for why).
func Run(sw Sweep) (*Rollup, Stats, error) {
	started := time.Now()
	if len(sw.Videos) == 0 {
		return nil, Stats{}, fmt.Errorf("popsim: sweep needs at least one video")
	}
	if sw.Sessions <= 0 {
		return nil, Stats{}, fmt.Errorf("popsim: sweep needs a positive population size")
	}
	if len(sw.Schemes) == 0 {
		return nil, Stats{}, fmt.Errorf("popsim: sweep needs at least one scheme")
	}
	if err := sw.Model.Validate(); err != nil {
		return nil, Stats{}, err
	}
	if sw.ShardCount <= 0 {
		sw.ShardCount = 1
	}
	if sw.ShardIndex < 0 || sw.ShardIndex >= sw.ShardCount {
		return nil, Stats{}, fmt.Errorf("popsim: shard %d of %d out of range", sw.ShardIndex, sw.ShardCount)
	}

	// Resolve factories up front; the registry key doubles as the rollup
	// key, so duplicate display names cannot collide here.
	reg := sim.Registry()
	type schemeRun struct {
		key     string
		factory sim.SchemeFactory
	}
	schemes := make([]schemeRun, 0, len(sw.Schemes))
	for _, key := range sw.Schemes {
		factory, ok := sw.Extra[key]
		if !ok {
			factory, ok = reg[key]
		}
		if !ok {
			return nil, Stats{}, fmt.Errorf("popsim: unknown scheme %q", key)
		}
		schemes = append(schemes, schemeRun{key: key, factory: factory})
	}

	// Pre-warm the process-wide shared tables once per manifest (the sim
	// pattern): workers then stay on the read-only fast path instead of
	// stampeding the lazy construction.
	for _, v := range sw.Videos {
		g := v.Grid()
		tab := geom.SharedTable(g, geom.TableParams{})
		geom.DefaultRoIs.Planes(tab)
		tab.Plane(geom.DefaultViewport.RadiusDeg)
		quality.Scores(v, sw.Metric)
	}

	workers := sw.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	rollup := NewRollup(sw.Geometry)
	cSessions := sw.Obs.Counter("pop_sessions")
	hSessionMS := sw.Obs.Histogram("pop_session_ms")

	idxCh := make(chan int, workers)
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		failed   = make(chan struct{})
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			close(failed)
		})
	}
	aborted := func() bool {
		select {
		case <-failed:
			return true
		default:
			return false
		}
	}
	sessions := 0
	var sessionsMu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ran := 0
			defer func() {
				sessionsMu.Lock()
				sessions += ran
				sessionsMu.Unlock()
			}()
			for i := range idxCh {
				if aborted() {
					continue // drain without working
				}
				// The member's traces live only for this loop iteration:
				// sampled, played under every scheme, folded, dropped.
				mem := sw.Model.Sample(i)
				manifest := sw.Videos[i%len(sw.Videos)]
				for _, sr := range schemes {
					sessionStart := time.Now()
					met, err := player.Run(player.Config{
						Manifest:         manifest,
						Head:             mem.Head,
						Bandwidth:        mem.Bandwidth,
						Scheme:           sr.factory(),
						Metric:           sw.Metric,
						PredictErrorDeg:  sw.PredictErrorDeg,
						PredictErrorSeed: int64(i + 1),
					})
					if err != nil {
						fail(fmt.Errorf("popsim: member %d scheme %s: %w", i, sr.key, err))
						break
					}
					hSessionMS.Observe(float64(time.Since(sessionStart)) / float64(time.Millisecond))
					cSessions.Inc()
					ran++
					rollup.Fold(sr.key, mem.Cohort, met)
				}
			}
		}()
	}
	for i := sw.ShardIndex; i < sw.Sessions; i += sw.ShardCount {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	if firstErr != nil {
		return nil, Stats{}, firstErr
	}

	st := Stats{Sessions: sessions, Wall: time.Since(started)}
	if secs := st.Wall.Seconds(); secs > 0 {
		st.SessionsPerSec = float64(st.Sessions) / secs
	}
	sw.Obs.Gauge("pop_sessions_per_sec").Set(st.SessionsPerSec)
	sw.Obs.Gauge("pop_cohorts").Set(float64(countCohorts(rollup)))
	return rollup, st, nil
}

func countCohorts(r *Rollup) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := map[string]bool{}
	for _, cohorts := range r.schemes {
		for c := range cohorts {
			seen[c] = true
		}
	}
	return len(seen)
}
