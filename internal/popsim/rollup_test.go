package popsim

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"dragonfly/internal/player"
)

// synthMetrics fabricates a deterministic session for fold tests.
func synthMetrics(i int) *player.Metrics {
	base := 30 + float64(i%17)
	return &player.Metrics{
		FrameScore:       []float64{base, base + 2, base + 4},
		FrameBlank:       []float64{0.01 * float64(i%5), 0},
		TotalFrames:      2,
		RebufferDuration: time.Duration(i%9) * 100 * time.Millisecond,
		StartupDelay:     time.Duration(200+i%50) * time.Millisecond,
	}
}

func summaryJSON(t *testing.T, r *Rollup) []byte {
	t.Helper()
	b, err := json.Marshal(r.Summary())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestFoldAndSummary(t *testing.T) {
	r := NewRollup(Geometry{})
	for i := 0; i < 100; i++ {
		r.Fold("dragonfly", "low:belgian", synthMetrics(i))
	}
	sum := r.Summary()
	if sum.Sessions != 100 {
		t.Fatalf("summary counts %d sessions, want 100", sum.Sessions)
	}
	cs := sum.Schemes["dragonfly"]["low:belgian"]
	if cs.Sessions != 100 {
		t.Fatalf("cell counts %d sessions, want 100", cs.Sessions)
	}
	if cs.QualityDB.Count != 300 { // 3 frames per session
		t.Fatalf("quality count %d, want 300", cs.QualityDB.Count)
	}
	if cs.QualityDB.P50 < 30 || cs.QualityDB.P50 > 55 {
		t.Errorf("median quality %.2f outside the synthetic range", cs.QualityDB.P50)
	}
	if cs.StartupMS.Mean < 200 || cs.StartupMS.Mean > 250 {
		t.Errorf("startup mean %.1f ms outside the synthetic range", cs.StartupMS.Mean)
	}
	if sum.QualityEnvDB != 0.25 {
		t.Errorf("quality envelope %.3f dB, want the documented 0.25", sum.QualityEnvDB)
	}
}

// TestStateBinsIndependentOfSessions is the memory-model proof: the
// sketch state after 10k sessions is exactly the state after 1k — the
// aggregation footprint depends on (schemes × cohorts × bins) only.
func TestStateBinsIndependentOfSessions(t *testing.T) {
	fold := func(sessions int) *Rollup {
		r := NewRollup(Geometry{})
		cohorts := []string{"low:belgian", "high:irish", "medium:belgian"}
		for i := 0; i < sessions; i++ {
			r.Fold("dragonfly", cohorts[i%len(cohorts)], synthMetrics(i))
			r.Fold("pano", cohorts[i%len(cohorts)], synthMetrics(i+1))
		}
		return r
	}
	small, large := fold(1_000), fold(10_000)
	if small.StateBins() != large.StateBins() {
		t.Fatalf("sketch state grew with sessions: %d bins at 1k vs %d at 10k",
			small.StateBins(), large.StateBins())
	}
	if small.StateBins() == 0 {
		t.Fatal("no sketch state allocated")
	}
	if got, want := large.Sessions(), int64(20_000); got != want {
		t.Fatalf("folded %d sessions, want %d", got, want)
	}
}

// TestMergeCommutes: merging disjoint partial rollups reproduces the
// sequential fold, in either merge order.
func TestMergeCommutes(t *testing.T) {
	whole := NewRollup(Geometry{})
	a, b := NewRollup(Geometry{}), NewRollup(Geometry{})
	for i := 0; i < 500; i++ {
		m := synthMetrics(i)
		cohort := []string{"low:belgian", "high:irish"}[i%2]
		whole.Fold("dragonfly", cohort, m)
		if i%3 == 0 {
			a.Fold("dragonfly", cohort, m)
		} else {
			b.Fold("dragonfly", cohort, m)
		}
	}
	ab, ba := NewRollup(Geometry{}), NewRollup(Geometry{})
	for _, step := range []struct {
		dst      *Rollup
		src1, s2 *Rollup
	}{{ab, a, b}, {ba, b, a}} {
		if err := step.dst.Merge(step.src1); err != nil {
			t.Fatal(err)
		}
		if err := step.dst.Merge(step.s2); err != nil {
			t.Fatal(err)
		}
	}
	want := summaryJSON(t, whole)
	if got := summaryJSON(t, ab); !bytes.Equal(got, want) {
		t.Error("merge a+b differs from sequential fold")
	}
	if got := summaryJSON(t, ba); !bytes.Equal(got, want) {
		t.Error("merge b+a differs from sequential fold")
	}
}

func TestMergeGeometryMismatch(t *testing.T) {
	a := NewRollup(Geometry{})
	b := NewRollup(Geometry{QualityLoDB: 0, QualityHiDB: 60, QualityBins: 100})
	a.Fold("dragonfly", "low:belgian", synthMetrics(1))
	b.Fold("dragonfly", "low:belgian", synthMetrics(2))
	if err := a.Merge(b); err == nil {
		t.Fatal("mismatched sketch geometries merged silently")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	r := NewRollup(Geometry{})
	for i := 0; i < 300; i++ {
		r.Fold("dragonfly", []string{"low:belgian", "high:irish"}[i%2], synthMetrics(i))
		r.Fold("pano", "medium:belgian", synthMetrics(i+7))
	}
	var buf bytes.Buffer
	if err := r.WriteSnapshot(&buf, 2, 4); err != nil {
		t.Fatal(err)
	}
	head := firstLine(buf.String())
	if !strings.Contains(head, `"kind":"popsim"`) || !strings.Contains(head, `"shard":2`) {
		t.Errorf("snapshot header malformed: %s", head)
	}

	merged := NewRollup(Geometry{})
	if err := merged.MergeSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(summaryJSON(t, merged), summaryJSON(t, r)) {
		t.Fatal("snapshot round trip changed the rollup")
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

func TestSnapshotRejectsForeignVersion(t *testing.T) {
	r := NewRollup(Geometry{})
	r.Fold("dragonfly", "low:belgian", synthMetrics(1))
	var buf bytes.Buffer
	if err := r.WriteSnapshot(&buf, 0, 1); err != nil {
		t.Fatal(err)
	}
	tampered := strings.ReplaceAll(buf.String(), `"v":1`, `"v":2`)
	if err := NewRollup(Geometry{}).MergeSnapshot(strings.NewReader(tampered)); err == nil {
		t.Fatal("foreign snapshot schema version accepted")
	}
}

func TestSnapshotRejectsGeometryMismatch(t *testing.T) {
	r := NewRollup(Geometry{QualityLoDB: 0, QualityHiDB: 60, QualityBins: 100})
	r.Fold("dragonfly", "low:belgian", synthMetrics(1))
	var buf bytes.Buffer
	if err := r.WriteSnapshot(&buf, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := NewRollup(Geometry{}).MergeSnapshot(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("mismatched snapshot geometry merged silently")
	}
}

func TestSnapshotRejectsHeaderless(t *testing.T) {
	if err := NewRollup(Geometry{}).MergeSnapshot(strings.NewReader("")); err == nil {
		t.Fatal("empty snapshot stream accepted")
	}
}
