package popsim

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"time"

	"dragonfly/internal/player"
	"dragonfly/internal/sim"
	"dragonfly/internal/stats"
)

// Metric names of the per-(scheme, cohort) distributions a rollup tracks.
const (
	MetricQualityDB  = "quality_db"  // per-frame viewport quality, dB
	MetricStallMS    = "stall_ms"    // per-session rebuffering total, ms
	MetricStartupMS  = "startup_ms"  // per-session startup delay, ms
	MetricBlankRatio = "blank_ratio" // per-session mean blank-area fraction
)

// Geometry sizes the rollup sketches. The quality envelope matches the
// ingest tier's (0.25 dB at the defaults); values outside a range clamp
// into the edge bins (stats.Sketch). The zero value means DefaultGeometry.
type Geometry struct {
	QualityLoDB, QualityHiDB float64
	QualityBins              int
	StallMaxMS               float64
	StallBins                int
	StartupMaxMS             float64
	StartupBins              int
	BlankBins                int // range is always [0, 1]
}

// DefaultGeometry returns the production sketch geometry.
func DefaultGeometry() Geometry {
	return Geometry{
		QualityLoDB: 0, QualityHiDB: 80, QualityBins: 320,
		StallMaxMS: 60_000, StallBins: 300,
		StartupMaxMS: 30_000, StartupBins: 300,
		BlankBins: 200,
	}
}

func (g *Geometry) fillDefaults() {
	d := DefaultGeometry()
	if g.QualityHiDB <= g.QualityLoDB || g.QualityBins < 1 {
		g.QualityLoDB, g.QualityHiDB, g.QualityBins = d.QualityLoDB, d.QualityHiDB, d.QualityBins
	}
	if g.StallMaxMS <= 0 || g.StallBins < 1 {
		g.StallMaxMS, g.StallBins = d.StallMaxMS, d.StallBins
	}
	if g.StartupMaxMS <= 0 || g.StartupBins < 1 {
		g.StartupMaxMS, g.StartupBins = d.StartupMaxMS, d.StartupBins
	}
	if g.BlankBins < 1 {
		g.BlankBins = d.BlankBins
	}
}

// Dist is a stats.Sketch CDF paired with an exact fixed-point sum. The
// sketch's bins carry the quantiles; SumMicro carries the mean in 1e-6
// units of the clamped value. Both are integers, so folds and merges
// commute exactly — the foundation of the engine's determinism contract
// (identical rollups for any worker count or shard layout), which float
// accumulation order would break.
type Dist struct {
	Sketch   *stats.Sketch
	SumMicro int64
}

func newDist(lo, hi float64, bins int) *Dist {
	return &Dist{Sketch: stats.NewSketch(lo, hi, bins)}
}

// Add folds one observation; NaN is ignored, out-of-range values clamp.
func (d *Dist) Add(v float64) {
	if math.IsNaN(v) {
		return
	}
	d.Sketch.Add(v)
	if v < d.Sketch.Lo {
		v = d.Sketch.Lo
	}
	if v > d.Sketch.Hi {
		v = d.Sketch.Hi
	}
	d.SumMicro += int64(math.Round(v * 1e6))
}

// Merge folds other into d; geometries must match (stats.Sketch.Merge).
func (d *Dist) Merge(other *Dist) error {
	if other == nil {
		return nil
	}
	if err := d.Sketch.Merge(other.Sketch); err != nil {
		return err
	}
	d.SumMicro += other.SumMicro
	return nil
}

// Count returns the number of folded observations.
func (d *Dist) Count() uint64 { return d.Sketch.Count() }

// Mean returns the mean of the folded (clamped) observations, computed
// from the fixed-point sum so it is merge-order independent.
func (d *Dist) Mean() float64 {
	n := d.Sketch.Count()
	if n == 0 {
		return 0
	}
	return float64(d.SumMicro) / 1e6 / float64(n)
}

// Quantile returns the estimated p-th percentile (see stats.Sketch).
func (d *Dist) Quantile(p float64) float64 { return d.Sketch.Quantile(p) }

// cohortDists is the fold state of one (scheme, cohort) cell.
type cohortDists struct {
	sessions int64
	quality  *Dist
	stall    *Dist
	startup  *Dist
	blank    *Dist
}

// Rollup is the streamed aggregate of a population sweep: per-(scheme,
// cohort) distributions of the paper's QoE quantities. Memory is
// O(schemes × cohorts × bins) and never grows with the session count.
// All methods are safe for concurrent use.
type Rollup struct {
	geo Geometry

	mu      sync.Mutex
	schemes map[string]map[string]*cohortDists // scheme -> cohort -> dists
}

// NewRollup creates an empty rollup with the given sketch geometry.
func NewRollup(geo Geometry) *Rollup {
	geo.fillDefaults()
	return &Rollup{geo: geo, schemes: map[string]map[string]*cohortDists{}}
}

// cell returns the (scheme, cohort) fold state, creating it on first use.
// Caller holds r.mu.
func (r *Rollup) cell(scheme, cohort string) *cohortDists {
	cohorts := r.schemes[scheme]
	if cohorts == nil {
		cohorts = map[string]*cohortDists{}
		r.schemes[scheme] = cohorts
	}
	cd := cohorts[cohort]
	if cd == nil {
		g := r.geo
		cd = &cohortDists{
			quality: newDist(g.QualityLoDB, g.QualityHiDB, g.QualityBins),
			stall:   newDist(0, g.StallMaxMS, g.StallBins),
			startup: newDist(0, g.StartupMaxMS, g.StartupBins),
			blank:   newDist(0, 1, g.BlankBins),
		}
		cohorts[cohort] = cd
	}
	return cd
}

// Fold streams one finished session into the rollup: every rendered
// frame's viewport quality plus the session's stall total, startup delay
// and mean blank ratio. The metrics are not retained.
func (r *Rollup) Fold(scheme, cohort string, m *player.Metrics) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cd := r.cell(scheme, cohort)
	cd.sessions++
	for _, v := range m.FrameScore {
		cd.quality.Add(v)
	}
	cd.stall.Add(float64(m.RebufferDuration) / float64(time.Millisecond))
	cd.startup.Add(float64(m.StartupDelay) / float64(time.Millisecond))
	cd.blank.Add(m.MeanBlankArea())
}

// FoldSession adapts Fold to the sim.Sweep streaming hook, so a classic
// cross-product sweep can aggregate into a population rollup:
//
//	sw.Fold = rollup.FoldSession
func (r *Rollup) FoldSession(s sim.Session) {
	r.Fold(s.Key, s.Cohort, s.Metrics)
}

// Sessions returns the total folded session count.
func (r *Rollup) Sessions() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var n int64
	for _, cohorts := range r.schemes {
		for _, cd := range cohorts {
			n += cd.sessions
		}
	}
	return n
}

// StateBins returns the total number of allocated sketch bins — the
// memory-model observable: it depends only on which (scheme, cohort)
// cells exist, never on how many sessions were folded into them.
func (r *Rollup) StateBins() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, cohorts := range r.schemes {
		for _, cd := range cohorts {
			n += len(cd.quality.Sketch.Bins) + len(cd.stall.Sketch.Bins) +
				len(cd.startup.Sketch.Bins) + len(cd.blank.Sketch.Bins)
		}
	}
	return n
}

// Merge folds other into r. Geometries must match cell by cell; cells
// missing from r are created. Merging commutes with folding, so shard
// order does not matter.
func (r *Rollup) Merge(other *Rollup) error {
	if other == nil {
		return nil
	}
	other.mu.Lock()
	defer other.mu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	for scheme, cohorts := range other.schemes {
		for cohort, ocd := range cohorts {
			cd := r.cell(scheme, cohort)
			cd.sessions += ocd.sessions
			for _, pair := range []struct{ dst, src *Dist }{
				{cd.quality, ocd.quality},
				{cd.stall, ocd.stall},
				{cd.startup, ocd.startup},
				{cd.blank, ocd.blank},
			} {
				if err := pair.dst.Merge(pair.src); err != nil {
					return fmt.Errorf("popsim: merge %s/%s: %w", scheme, cohort, err)
				}
			}
		}
	}
	return nil
}

// DistSummary is one distribution's exported quantile summary.
type DistSummary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P10   float64 `json:"p10"`
	P25   float64 `json:"p25"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

func summaryOf(d *Dist) DistSummary {
	return DistSummary{
		Count: d.Count(),
		Mean:  d.Mean(),
		P10:   d.Quantile(10),
		P25:   d.Quantile(25),
		P50:   d.Quantile(50),
		P90:   d.Quantile(90),
		P99:   d.Quantile(99),
	}
}

// CohortSummary is one (scheme, cohort) cell's exported aggregate.
type CohortSummary struct {
	Sessions   int64       `json:"sessions"`
	QualityDB  DistSummary `json:"quality_db"`
	StallMS    DistSummary `json:"stall_ms"`
	StartupMS  DistSummary `json:"startup_ms"`
	BlankRatio DistSummary `json:"blank_ratio"`
}

// Summary is the exported rollup document. Every number is computed from
// the rollup's integer state, so two deterministically equal rollups
// marshal to byte-identical JSON (map keys sort on encoding).
type Summary struct {
	Sessions     int64                               `json:"sessions"`
	QualityEnvDB float64                             `json:"quality_envelope_db"`
	Schemes      map[string]map[string]CohortSummary `json:"schemes"`
}

// Summary exports the rollup's per-(scheme, cohort) quantile summaries.
func (r *Rollup) Summary() Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := Summary{
		QualityEnvDB: (r.geo.QualityHiDB - r.geo.QualityLoDB) / float64(r.geo.QualityBins),
		Schemes:      make(map[string]map[string]CohortSummary, len(r.schemes)),
	}
	for scheme, cohorts := range r.schemes {
		cs := make(map[string]CohortSummary, len(cohorts))
		for cohort, cd := range cohorts {
			out.Sessions += cd.sessions
			cs[cohort] = CohortSummary{
				Sessions:   cd.sessions,
				QualityDB:  summaryOf(cd.quality),
				StallMS:    summaryOf(cd.stall),
				StartupMS:  summaryOf(cd.startup),
				BlankRatio: summaryOf(cd.blank),
			}
		}
		out.Schemes[scheme] = cs
	}
	return out
}

// SummaryJSON renders the summary as indented JSON. Equal rollups render
// byte-identically (integer state, sorted map keys).
func (r *Rollup) SummaryJSON() ([]byte, error) {
	return json.MarshalIndent(r.Summary(), "", "  ")
}

// SnapshotVersion is the shard-snapshot schema version ("v" on every
// line). It follows the same versioning policy as the obs session-trace
// schema (docs/OBSERVABILITY.md): readers reject any other version.
const SnapshotVersion = 1

// snapshotHeader is the first line of a shard snapshot.
type snapshotHeader struct {
	V        int    `json:"v"`
	Kind     string `json:"kind"` // "popsim"
	Shard    int    `json:"shard"`
	Shards   int    `json:"shards"`
	Sessions int64  `json:"sessions"`
}

// snapshotLine is one (scheme, cohort, metric) sketch of the snapshot
// body, plus the per-cell session count on "cell" lines.
type snapshotLine struct {
	V        int      `json:"v"`
	Kind     string   `json:"kind"` // "cell" or "dist"
	Scheme   string   `json:"scheme"`
	Cohort   string   `json:"cohort"`
	Sessions int64    `json:"sessions,omitempty"` // kind "cell"
	Metric   string   `json:"metric,omitempty"`   // kind "dist"
	Lo       float64  `json:"lo"`
	Hi       float64  `json:"hi"`
	N        uint64   `json:"n"`
	SumMicro int64    `json:"sum_micro"`
	Bins     []uint64 `json:"bins"`
}

// WriteSnapshot serializes the rollup as the shard-report JSONL stream:
// one header line, then one "cell" line and four "dist" lines per
// (scheme, cohort), in sorted order. Only integer state crosses the
// boundary, so a merged coordinator rollup equals the single-process one.
func (r *Rollup) WriteSnapshot(w io.Writer, shard, shards int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	var sessions int64
	for _, cohorts := range r.schemes {
		for _, cd := range cohorts {
			sessions += cd.sessions
		}
	}
	if err := enc.Encode(snapshotHeader{
		V: SnapshotVersion, Kind: "popsim", Shard: shard, Shards: shards, Sessions: sessions,
	}); err != nil {
		return err
	}
	schemes := make([]string, 0, len(r.schemes))
	for s := range r.schemes {
		schemes = append(schemes, s)
	}
	sort.Strings(schemes)
	for _, scheme := range schemes {
		cohorts := r.schemes[scheme]
		names := make([]string, 0, len(cohorts))
		for c := range cohorts {
			names = append(names, c)
		}
		sort.Strings(names)
		for _, cohort := range names {
			cd := cohorts[cohort]
			if err := enc.Encode(snapshotLine{
				V: SnapshotVersion, Kind: "cell", Scheme: scheme, Cohort: cohort, Sessions: cd.sessions,
			}); err != nil {
				return err
			}
			for _, md := range []struct {
				metric string
				dist   *Dist
			}{
				{MetricQualityDB, cd.quality},
				{MetricStallMS, cd.stall},
				{MetricStartupMS, cd.startup},
				{MetricBlankRatio, cd.blank},
			} {
				s := md.dist.Sketch
				if err := enc.Encode(snapshotLine{
					V: SnapshotVersion, Kind: "dist", Scheme: scheme, Cohort: cohort,
					Metric: md.metric, Lo: s.Lo, Hi: s.Hi, N: s.N, SumMicro: md.dist.SumMicro,
					Bins: s.Bins,
				}); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// MergeSnapshot folds one shard-report JSONL stream into the rollup,
// checking the schema version of every line and each sketch's geometry
// against the rollup's (stats.Sketch.Merge).
func (r *Rollup) MergeSnapshot(rd io.Reader) error {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	sawHeader := false
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var sl snapshotLine
		if err := json.Unmarshal(line, &sl); err != nil {
			return fmt.Errorf("popsim: snapshot line: %w", err)
		}
		if sl.V != SnapshotVersion {
			return fmt.Errorf("popsim: snapshot schema v%d, want v%d", sl.V, SnapshotVersion)
		}
		switch sl.Kind {
		case "popsim":
			sawHeader = true
		case "cell":
			r.mu.Lock()
			r.cell(sl.Scheme, sl.Cohort).sessions += sl.Sessions
			r.mu.Unlock()
		case "dist":
			in := &Dist{
				Sketch:   &stats.Sketch{Lo: sl.Lo, Hi: sl.Hi, Bins: sl.Bins, N: sl.N},
				SumMicro: sl.SumMicro,
			}
			r.mu.Lock()
			cd := r.cell(sl.Scheme, sl.Cohort)
			var dst *Dist
			switch sl.Metric {
			case MetricQualityDB:
				dst = cd.quality
			case MetricStallMS:
				dst = cd.stall
			case MetricStartupMS:
				dst = cd.startup
			case MetricBlankRatio:
				dst = cd.blank
			default:
				r.mu.Unlock()
				return fmt.Errorf("popsim: snapshot names unknown metric %q", sl.Metric)
			}
			err := dst.Merge(in)
			r.mu.Unlock()
			if err != nil {
				return fmt.Errorf("popsim: snapshot %s/%s/%s: %w", sl.Scheme, sl.Cohort, sl.Metric, err)
			}
		default:
			return fmt.Errorf("popsim: snapshot line kind %q unknown", sl.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !sawHeader {
		return fmt.Errorf("popsim: snapshot stream has no header line")
	}
	return nil
}
