package popsim

import (
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"
	"time"

	"dragonfly/internal/trace"
)

func testModel(seed int64) Model {
	m := DefaultModel(seed)
	m.Duration = 5 * time.Second
	return m
}

// TestSampleDeterminism: the same (seed, index) must reproduce the member
// byte for byte — the foundation of the worker/shard invariance contract.
func TestSampleDeterminism(t *testing.T) {
	m := testModel(42)
	for _, i := range []int{0, 1, 7, 999, 123456} {
		a, b := m.Sample(i), m.Sample(i)
		if a.Cohort != b.Cohort {
			t.Fatalf("member %d cohort %q != %q", i, a.Cohort, b.Cohort)
		}
		if !reflect.DeepEqual(a.Head, b.Head) {
			t.Fatalf("member %d head trace differs across samples", i)
		}
		if !reflect.DeepEqual(a.Bandwidth, b.Bandwidth) {
			t.Fatalf("member %d bandwidth trace differs across samples", i)
		}
	}
	// Distinct members are actually distinct users, not clones.
	a, b := m.Sample(1), m.Sample(2)
	if reflect.DeepEqual(a.Head.Samples, b.Head.Samples) {
		t.Error("members 1 and 2 share a head trace")
	}
	if reflect.DeepEqual(a.Bandwidth.Mbps, b.Bandwidth.Mbps) {
		t.Error("members 1 and 2 share a bandwidth trace")
	}
	// A different seed is a different population.
	if c := testModel(43).Sample(1); reflect.DeepEqual(a.Head.Samples, c.Head.Samples) {
		t.Error("seed 42 and 43 produced the same member")
	}
}

// TestMixtureWeights: every declared class is sampled, at its configured
// share of the population (within sampling noise).
func TestMixtureWeights(t *testing.T) {
	m := testModel(7)
	m.Motion = []MotionWeight{
		{Class: trace.MotionLow, Weight: 0.5},
		{Class: trace.MotionMedium, Weight: 0.3},
		{Class: trace.MotionHigh, Weight: 0.2},
	}
	m.Nets = []NetWeight{
		{Class: BelgianClass(), Weight: 0.7},
		{Class: IrishClass(), Weight: 0.3},
	}
	const n = 4000
	motion := map[string]int{}
	nets := map[string]int{}
	for i := 0; i < n; i++ {
		mem := m.Sample(i)
		if mem.Cohort != mem.Head.ClassName()+":"+mem.Bandwidth.NetClass() {
			t.Fatalf("member %d cohort %q inconsistent with traces", i, mem.Cohort)
		}
		motion[mem.Head.ClassName()]++
		nets[mem.Bandwidth.NetClass()]++
	}
	check := func(kind, class string, got int, want float64) {
		frac := float64(got) / n
		if math.Abs(frac-want) > 0.04 {
			t.Errorf("%s class %q: sampled %.3f of population, want %.2f", kind, class, frac, want)
		}
		if got == 0 {
			t.Errorf("%s class %q never sampled", kind, class)
		}
	}
	check("motion", "low", motion["low"], 0.5)
	check("motion", "medium", motion["medium"], 0.3)
	check("motion", "high", motion["high"], 0.2)
	check("net", "belgian", nets["belgian"], 0.7)
	check("net", "irish", nets["irish"], 0.3)
}

// TestSampleConcurrent: per-worker sampling is lock-free and race-clean
// (run under -race), and concurrent samples equal serial ones.
func TestSampleConcurrent(t *testing.T) {
	m := testModel(11)
	const n = 64
	serial := make([]Member, n)
	for i := range serial {
		serial[i] = m.Sample(i)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Overlapping strides so every index is sampled by several
			// goroutines at once.
			for i := w % 2; i < n; i += 2 {
				got := m.Sample(i)
				if !reflect.DeepEqual(got, serial[i]) {
					errs <- fmt.Errorf("worker %d: member %d differs from serial sample", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestFilterApplied: members of a filtered class respect the §4.2 cap
// even when the resampling loop exhausts its attempts.
func TestFilterApplied(t *testing.T) {
	m := testModel(3)
	for i := 0; i < 200; i++ {
		mem := m.Sample(i)
		for _, v := range mem.Bandwidth.Mbps {
			if v > 28 {
				t.Fatalf("member %d: sample %.1f Mbps above the 28 Mbps cap", i, v)
			}
		}
	}
}

func TestModelValidate(t *testing.T) {
	if err := DefaultModel(1).Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
	bad := []Model{
		{},
		{Motion: []MotionWeight{{Weight: 1}}},
		{Motion: []MotionWeight{{Weight: 0}}, Nets: []NetWeight{{Class: BelgianClass(), Weight: 0}}},
		{Motion: []MotionWeight{{Weight: -1}}, Nets: []NetWeight{{Class: BelgianClass(), Weight: 1}}},
		{Motion: []MotionWeight{{Weight: 1}}, Nets: []NetWeight{{Weight: 1}}}, // unnamed net class
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d accepted", i)
		}
	}
}
