package balancer

import (
	"context"
	"net"
	"testing"
	"time"

	"dragonfly/internal/chaos"
	"dragonfly/internal/leaktest"
	"dragonfly/internal/netem"
	"dragonfly/internal/obs"
	"dragonfly/internal/proto"
)

// Chaos tests arm the process-global failpoint registry; none may run in
// t.Parallel. Each disarms on cleanup.

func armBalancer(t *testing.T, rules ...chaos.Rule) {
	t.Helper()
	if err := chaos.Arm(rules...); err != nil {
		t.Fatalf("chaos.Arm: %v", err)
	}
	t.Cleanup(chaos.Disarm)
}

// TestBreakerTripsSkipsAndRecovers drives the full circuit-breaker arc
// with injected probe faults against a perfectly healthy member: failures
// past BreakerThreshold open the circuit, open-circuit probes are skipped
// without burning a dial, the first probe after the cooldown is the
// half-open trial, and a healthy trial recovers the member.
func TestBreakerTripsSkipsAndRecovers(t *testing.T) {
	f := newFleet("a")
	reg := obs.NewRegistry()
	bl, err := New(Config{
		Backends:        backendConfigs("a"),
		FailThreshold:   2, // breaker default: 2×2 = 4 consecutive failures
		ProbeInterval:   10 * time.Millisecond,
		BreakerCooldown: 50 * time.Millisecond,
		Obs:             reg,
		Dial:            f.dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	b := bl.backends[0]

	// Probes are driven by hand so every transition is deterministic.
	armBalancer(t, chaos.Rule{Site: "balancer.probe", Kind: chaos.FaultError, Count: 4})
	for i := 0; i < 4; i++ {
		bl.probeOnce(b)
	}
	st := bl.Status()[0]
	if st.Healthy {
		t.Fatalf("member healthy after 4 injected probe failures")
	}
	if !st.BreakerOpen {
		t.Fatalf("breaker not open after BreakerThreshold failures")
	}
	snap := reg.Snapshot()
	if got := snap.Counters["lb_breaker_open"]; got != 1 {
		t.Errorf("lb_breaker_open = %d, want 1", got)
	}

	// Open circuit: the probe is skipped entirely — no dial, no exchange.
	probesBefore := snap.Counters["lb_probes"]
	bl.probeOnce(b)
	snap = reg.Snapshot()
	if got := snap.Counters["lb_breaker_skips"]; got != 1 {
		t.Errorf("lb_breaker_skips = %d, want 1", got)
	}
	if snap.Counters["lb_probes"] != probesBefore {
		t.Errorf("open-circuit probe still burned a dial")
	}
	if b.routable() {
		t.Errorf("open-circuit member still routable")
	}

	// Cooldown expires; the failpoint budget is spent, so the half-open
	// trial reaches the (healthy) member and recovery proceeds normally.
	time.Sleep(60 * time.Millisecond)
	bl.probeOnce(b)
	st = bl.Status()[0]
	if !st.Healthy || st.BreakerOpen {
		t.Fatalf("half-open trial did not recover: %+v", st)
	}
	if !b.routable() {
		t.Errorf("recovered member not routable")
	}
}

// TestBreakerHalfOpenFailureReTrips: a failed half-open trial counts as a
// fresh trip (the streak persists past the threshold) and the circuit
// opens again for a full cooldown.
func TestBreakerHalfOpenFailureReTrips(t *testing.T) {
	f := newFleet("a")
	reg := obs.NewRegistry()
	bl, err := New(Config{
		Backends:        backendConfigs("a"),
		FailThreshold:   1, // breaker at 2 consecutive failures
		BreakerCooldown: 30 * time.Millisecond,
		Obs:             reg,
		Dial:            f.dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	b := bl.backends[0]
	armBalancer(t, chaos.Rule{Site: "balancer.probe", Kind: chaos.FaultError, Count: 3})
	bl.probeOnce(b)
	bl.probeOnce(b) // trips
	if !bl.Status()[0].BreakerOpen {
		t.Fatal("breaker not open after threshold")
	}
	time.Sleep(40 * time.Millisecond)
	bl.probeOnce(b) // half-open trial fails → fresh trip
	if !bl.Status()[0].BreakerOpen {
		t.Fatal("failed half-open trial left the breaker closed")
	}
	if got := reg.Snapshot().Counters["lb_breaker_open"]; got != 2 {
		t.Errorf("lb_breaker_open = %d, want 2 (initial trip + re-trip)", got)
	}
}

// TestRouteDialFaultFailsOver: an injected route-dial fault on the first
// pick charges that member's health passively and the session lands on the
// next candidate — the client never notices.
func TestRouteDialFaultFailsOver(t *testing.T) {
	armBalancer(t, chaos.Rule{Site: "balancer.dial", Kind: chaos.FaultError, Count: 1})
	f := newFleet("a", "b")
	reg := obs.NewRegistry()
	bl, err := New(Config{
		Backends:      backendConfigs("a", "b"),
		ProbeInterval: time.Hour, // passive detection only
		Obs:           reg,
		Dial:          f.dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	lis := netemListener(t, bl)

	c, err := lis.Dial()
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = proto.WriteHello(c, proto.Hello{VideoID: "srv"}) }()
	msg, err := proto.ReadMessage(c)
	if err != nil || msg.Type != proto.MsgManifest {
		t.Fatalf("session through faulted dial: %v / %+v", err, msg)
	}
	c.Close()
	snap := reg.Snapshot()
	if got := snap.Counters["lb_route_dial_fail"]; got != 1 {
		t.Errorf("lb_route_dial_fail = %d, want 1", got)
	}
	if got := snap.Counters["lb_routed"]; got != 1 {
		t.Errorf("lb_routed = %d, want 1", got)
	}
}

// TestSpliceFaultSeversStream: an injected balancer.splice fault mid-splice
// tears the session down; the client sees a dead link (its resume path is
// the recovery), and the splice goroutines unwind.
func TestSpliceFaultSeversStream(t *testing.T) {
	armBalancer(t, chaos.Rule{Site: "balancer.splice", Kind: chaos.FaultError, After: 1})
	f := newFleet("a")
	bl, err := New(Config{
		Backends:      backendConfigs("a"),
		ProbeInterval: time.Hour,
		Dial:          f.dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	lis := netemListener(t, bl)

	c, err := lis.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	go func() { _ = proto.WriteHello(c, proto.Hello{VideoID: "srv"}) }()
	// After: 1 lets the first server→client read (the manifest) through;
	// the next read is severed.
	if msg, err := proto.ReadMessage(c); err != nil || msg.Type != proto.MsgManifest {
		t.Fatalf("manifest through splice: %v / %+v", err, msg)
	}
	if _, err := proto.ReadMessage(c); err == nil {
		t.Fatal("severed splice still delivered bytes")
	}
	if chaos.Injections("balancer.splice") == 0 {
		t.Error("no splice faults injected")
	}
}

// TestSpliceStallBudgetSevers is the balancer slowloris defense: a client
// that stops accepting bytes mid-splice exhausts SpliceStallBudget and the
// splice is severed (counted) instead of pinning balancer goroutines and
// backend queue bytes indefinitely.
func TestSpliceStallBudgetSevers(t *testing.T) {
	reg := obs.NewRegistry()
	bl, err := New(Config{
		Backends:          backendConfigs("a"),
		SpliceStallBudget: 20 * time.Millisecond,
		Obs:               reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	clientConn, clientFar := net.Pipe()
	srvConn, srvFar := net.Pipe()
	// The "backend" floods data; the "client" (clientFar) never reads.
	go func() {
		buf := make([]byte, 32*1024)
		for {
			if _, err := srvFar.Write(buf); err != nil {
				return
			}
		}
	}()
	defer clientFar.Close()
	defer srvFar.Close()

	done := make(chan struct{})
	go func() {
		bl.splice(clientConn, srvConn)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("stalled splice never severed")
	}
	if got := reg.Snapshot().Counters["lb_splice_stalls"]; got != 1 {
		t.Errorf("lb_splice_stalls = %d, want 1", got)
	}
}

// TestBalancerTeardownNoLeak is the satellite-4 assertion for this tier:
// probes, routes, and splices started under injected dial/probe faults all
// unwind on context cancellation.
func TestBalancerTeardownNoLeak(t *testing.T) {
	defer leaktest.Check(t)()
	armBalancer(t,
		chaos.Rule{Site: "balancer.dial", Kind: chaos.FaultError, Every: 2},
		chaos.Rule{Site: "balancer.probe", Kind: chaos.FaultError, Every: 2},
	)
	f := newFleet("a", "b")
	bl, err := New(Config{
		Backends:      backendConfigs("a", "b"),
		ProbeInterval: 5 * time.Millisecond,
		ProbeTimeout:  50 * time.Millisecond,
		FailThreshold: 2,
		Dial:          f.dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	lis := netem.NewPipeListener(netem.Link{})
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- bl.Serve(ctx, lis) }()

	for i := 0; i < 4; i++ {
		c, err := lis.Dial()
		if err != nil {
			t.Fatal(err)
		}
		go func() { _ = proto.WriteHello(c, proto.Hello{VideoID: "srv"}) }()
		// Read whatever comes (manifest or busy) and hang up.
		_, _ = proto.ReadMessage(c)
		c.Close()
	}
	time.Sleep(30 * time.Millisecond) // let probes hit the armed faults
	cancel()
	select {
	case <-serveDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after cancel")
	}
	if chaos.Injections("balancer.probe") == 0 {
		t.Error("no probe faults injected during the run")
	}
}

// netemListener serves bl on a fresh in-memory listener torn down with the
// test.
func netemListener(t *testing.T, bl *Balancer) *netem.PipeListener {
	t.Helper()
	lis := netem.NewPipeListener(netem.Link{})
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- bl.Serve(ctx, lis) }()
	t.Cleanup(func() {
		cancel()
		select {
		case <-serveDone:
		case <-time.After(5 * time.Second):
			t.Error("balancer Serve did not stop")
		}
	})
	return lis
}
