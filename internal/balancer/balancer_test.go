package balancer

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"dragonfly/internal/netem"
	"dragonfly/internal/proto"
	"dragonfly/internal/server"
	"dragonfly/internal/video"
)

func testManifest() *video.Manifest {
	return video.Generate(video.GenParams{ID: "srv", Rows: 4, Cols: 4, NumChunks: 3, Seed: 9})
}

// fleet is an in-memory backend set: addr → live server, nil entry = dead
// host (dials are refused). Dials hand the server a fresh pipe.
type fleet struct {
	mu      sync.Mutex
	servers map[string]*server.Server
}

func newFleet(addrs ...string) *fleet {
	f := &fleet{servers: make(map[string]*server.Server)}
	for _, a := range addrs {
		srv := server.New(testManifest())
		srv.WriteTimeout = 250 * time.Millisecond
		f.servers[a] = srv
	}
	return f
}

func (f *fleet) kill(addr string) {
	f.mu.Lock()
	f.servers[addr] = nil
	f.mu.Unlock()
}

func (f *fleet) get(addr string) *server.Server {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.servers[addr]
}

func (f *fleet) dial(addr string, _ time.Duration) (net.Conn, error) {
	s := f.get(addr)
	if s == nil {
		return nil, errors.New("connection refused")
	}
	c, srv := net.Pipe()
	go func() {
		defer srv.Close()
		_ = s.HandleConnContext(context.Background(), srv)
	}()
	return c, nil
}

func backendConfigs(addrs ...string) []BackendConfig {
	out := make([]BackendConfig, len(addrs))
	for i, a := range addrs {
		out[i] = BackendConfig{Addr: a}
	}
	return out
}

func TestDeadBackendUnhealthyWithinProbeBudget(t *testing.T) {
	f := newFleet("a", "b")
	f.kill("b")
	cfg := Config{
		Backends:      backendConfigs("a", "b"),
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  100 * time.Millisecond,
		FailThreshold: 2,
		Dial:          f.dial,
	}
	bl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	start := time.Now()
	bl.StartProbes(ctx)

	budget := time.Duration(cfg.FailThreshold)*(cfg.ProbeInterval+cfg.ProbeTimeout) + 150*time.Millisecond
	deadline := time.Now().Add(budget)
	for time.Now().Before(deadline) {
		st := bl.Status()
		if !st[1].Healthy {
			t.Logf("dead backend detected in %s (budget %s)", time.Since(start), budget)
			if !st[0].Healthy {
				t.Error("live backend also marked unhealthy")
			}
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("dead backend still healthy after %s probe budget", budget)
}

func TestBusyProbeMeansAliveButDraining(t *testing.T) {
	f := newFleet("a")
	f.get("a").Drain()
	bl, err := New(Config{
		Backends:     backendConfigs("a"),
		ProbeTimeout: 200 * time.Millisecond,
		Dial:         f.dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	bl.probeOnce(bl.backends[0])
	st := bl.Status()[0]
	if !st.Healthy || !st.Draining {
		t.Fatalf("draining backend status = %+v, want healthy && draining", st)
	}
	if b := bl.pick(nil); b != nil {
		t.Fatalf("pick routed to draining backend %s", b.cfg.Addr)
	}
}

func TestPickPrefersLowLoad(t *testing.T) {
	bl, err := New(Config{Backends: backendConfigs("a", "b", "c"), Dial: nil})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	set := func(i int, active int64, queueBytes float64) {
		b := bl.backends[i]
		b.mu.Lock()
		b.active, b.queueBytes, b.loadAt = active, queueBytes, now
		b.mu.Unlock()
	}
	set(0, 5, 0)
	set(1, 1, 100*QueueBytesPerConn) // light on conns, heavy backlog
	set(2, 3, 0)
	if b := bl.pick(nil); b != bl.backends[2] {
		t.Fatalf("pick = %s, want c (lowest score)", b.cfg.Addr)
	}
	set(2, 6, 0)
	if b := bl.pick(nil); b != bl.backends[0] {
		t.Fatalf("pick = %s, want a", b.cfg.Addr)
	}
}

func TestPickStaleLoadFallsBackToRoundRobin(t *testing.T) {
	bl, err := New(Config{Backends: backendConfigs("a", "b")})
	if err != nil {
		t.Fatal(err)
	}
	// No probe has run: load data is absent, so picks must rotate rather
	// than dog-pile whatever sorts first.
	seen := map[string]int{}
	for i := 0; i < 4; i++ {
		b := bl.pick(nil)
		if b == nil {
			t.Fatal("pick returned nil with two routable backends")
		}
		seen[b.cfg.Addr]++
	}
	if seen["a"] != 2 || seen["b"] != 2 {
		t.Fatalf("round-robin distribution = %v, want a:2 b:2", seen)
	}
}

func TestRouteFailsOverToHealthyBackend(t *testing.T) {
	f := newFleet("a", "b")
	f.kill("a")
	bl, err := New(Config{
		Backends:      backendConfigs("a", "b"),
		ProbeInterval: time.Hour, // passive detection only
		FailThreshold: 1,
		DialTimeout:   200 * time.Millisecond,
		Dial:          f.dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	lis := netem.NewPipeListener(netem.Link{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveDone := make(chan error, 1)
	go func() { serveDone <- bl.Serve(ctx, lis) }()

	// A session through the front tier lands on the live member even when
	// the picker tries the dead one first.
	for i := 0; i < 3; i++ {
		c, err := lis.Dial()
		if err != nil {
			t.Fatal(err)
		}
		go func() { _ = proto.WriteHello(c, proto.Hello{VideoID: "srv"}) }()
		msg, err := proto.ReadMessage(c)
		if err != nil || msg.Type != proto.MsgManifest {
			t.Fatalf("session %d through balancer: %v / %+v", i, err, msg)
		}
		c.Close()
	}
	if st := bl.Status(); st[0].Healthy {
		t.Error("dead backend not passively marked unhealthy by failed route dial")
	}

	// With every member gone the client gets the retryable busy reject.
	f.kill("b")
	c, err := lis.Dial()
	if err != nil {
		t.Fatal(err)
	}
	msg, err := proto.ReadMessage(c)
	if err != nil || msg.Type != proto.MsgError || !proto.IsBusyText(msg.Error) {
		t.Fatalf("empty fleet reply = %v / %+v, want busy MsgError", err, msg)
	}
	c.Close()

	cancel()
	if err := <-serveDone; err != context.Canceled {
		t.Fatalf("Serve = %v, want context.Canceled", err)
	}
}

func TestNewRequiresBackends(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New with no backends did not error")
	}
}
