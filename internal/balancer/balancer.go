// Package balancer implements the Dragonfly fleet front tier: a TCP
// balancer that tracks N backend tile servers, actively health-checks them
// (dial + proto.MsgPing probe with timeout and consecutive-failure
// thresholds), routes new sessions to the least-loaded healthy member, and
// steers reconnecting clients away from dead or draining backends. It
// needs no session state of its own: the client's held-tile bitmap is the
// only durable session state, so failover is literally "route the resume
// handshake somewhere healthy" — proto.MsgResume rebuilds the new host's
// dedup state for free.
//
// Load scoring reads each backend's probe pong (active sessions, drain
// flag) and, when an admin address is configured, the obs /metrics
// endpoint (srv_queue_bytes). When every routable backend's load data has
// gone stale the balancer falls back to round-robin rather than trusting
// old numbers.
package balancer

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"dragonfly/internal/chaos"
	"dragonfly/internal/obs"
	"dragonfly/internal/proto"
)

// Failpoints (docs/RESILIENCE.md, "Failpoint catalog"): balancer.dial
// fails a backend route dial, balancer.probe fails a health-check
// exchange, balancer.splice severs (error kinds) or stalls (delay) the
// server→client byte stream mid-splice. All are one disarmed atomic load.
var (
	siteDial   = chaos.NewSite("balancer.dial")
	siteProbe  = chaos.NewSite("balancer.probe")
	siteSplice = chaos.NewSite("balancer.splice")
)

// ErrSpliceStall reports a splice torn down for exhausting the
// SpliceStallBudget: the peer accepted bytes too slowly for too long and
// the splice was severed rather than left pinning balancer resources.
var ErrSpliceStall = errors.New("balancer: splice write-stall budget exhausted")

// Defaults for Config's zero values.
const (
	DefaultProbeInterval    = 500 * time.Millisecond
	DefaultProbeTimeout     = time.Second
	DefaultFailThreshold    = 3
	DefaultRecoverThreshold = 1
	DefaultDialTimeout      = 2 * time.Second
)

// QueueBytesPerConn converts queued backlog bytes into active-connection
// equivalents for the load score: a backend with 4 MB of committed queue
// is as loaded as one with one more session.
const QueueBytesPerConn = 4 << 20

// BackendConfig names one fleet member.
type BackendConfig struct {
	// Addr is the streaming (wire protocol) address.
	Addr string
	// AdminAddr is the obs admin endpoint for queue-bytes scraping; empty
	// disables scraping and the score uses active connections only.
	AdminAddr string
}

// Config tunes a Balancer. The zero value of every field has a sensible
// default except Backends, which is required.
type Config struct {
	Backends []BackendConfig

	// ProbeInterval is the health-check period per backend; ProbeTimeout
	// bounds each probe's dial+exchange. A backend is marked unhealthy
	// after FailThreshold consecutive probe failures and healthy again
	// after RecoverThreshold consecutive successes, so the worst-case
	// detection budget is FailThreshold×(ProbeInterval+ProbeTimeout).
	ProbeInterval    time.Duration
	ProbeTimeout     time.Duration
	FailThreshold    int
	RecoverThreshold int

	// DialTimeout bounds the backend dial when routing a session.
	DialTimeout time.Duration
	// MetricsMaxAge is how old a backend's load data may be before the
	// picker stops trusting it (default 4×ProbeInterval).
	MetricsMaxAge time.Duration

	// BreakerThreshold is the consecutive-failure count (probe or route
	// dial) at which a backend's circuit breaker trips: probing and
	// routing to the member stop entirely for BreakerCooldown, then a
	// single half-open probe trial decides between recovery (the normal
	// RecoverThreshold path) and re-tripping. The breaker sits behind the
	// health state — the default threshold of 2×FailThreshold means a
	// member is first marked unhealthy (stops receiving sessions), and
	// only sustained failure beyond that stops the prober from burning
	// dials on it. 0 means 2×FailThreshold; negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker stays open before the
	// half-open trial. 0 means 4×ProbeInterval.
	BreakerCooldown time.Duration

	// SpliceStallBudget bounds the cumulative excess write time of each
	// splice direction — the balancer's slowloris defense, mirroring
	// Server.WriteStallBudget. Each copy write gets a free allowance of a
	// tenth of the budget (at least 1 ms); beyond-allowance time
	// accumulates and exhaustion severs the splice with ErrSpliceStall.
	// The client's resume path recovers the session on a healthy member.
	// 0 disables.
	SpliceStallBudget time.Duration

	// Obs, when non-nil, receives lb_* counters and gauges. Nil disables.
	Obs *obs.Registry
	// Logf receives transition diagnostics; nil silences logging.
	Logf func(format string, args ...any)

	// Dial overrides backend dialing (tests and in-memory rigs); nil
	// dials TCP.
	Dial func(addr string, timeout time.Duration) (net.Conn, error)
	// FetchMetrics overrides the admin scrape; nil issues an HTTP GET to
	// http://<AdminAddr>/metrics.
	FetchMetrics func(adminAddr string) (obs.Snapshot, error)
}

// Balancer is the front tier. Create with New, then Serve.
type Balancer struct {
	cfg      Config
	backends []*backend
	rr       atomic.Uint64
	start    sync.Once

	mu      sync.Mutex
	splices map[net.Conn]struct{}
}

// backend is the tracked state of one fleet member. The health fields are
// guarded by mu; routed is the balancer's own live splice count.
type backend struct {
	cfg    BackendConfig
	routed atomic.Int64

	mu         sync.Mutex
	healthy    bool
	draining   bool
	failStreak int
	okStreak   int
	active     int64 // sessions reported by the last probe pong
	queueBytes float64
	loadAt     time.Time // when active/draining were last refreshed
	lastErr    error
	// openUntil is the circuit breaker: while in the future, probes and
	// routing skip this member entirely. The first probe after expiry is
	// the half-open trial.
	openUntil time.Time
}

// breakerOpen reports whether the member's circuit is open right now.
func (b *backend) breakerOpen() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return time.Now().Before(b.openUntil)
}

// BackendStatus is a point-in-time view of one backend, for status
// endpoints and test assertions.
type BackendStatus struct {
	Addr        string
	Healthy     bool
	Draining    bool
	BreakerOpen bool
	ActiveConns int64
	QueueBytes  int64
	Routed      int64
	LastErr     string
}

// New validates cfg and builds a balancer. Probes start on Serve.
func New(cfg Config) (*Balancer, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("balancer: at least one backend is required")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = DefaultProbeTimeout
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = DefaultFailThreshold
	}
	if cfg.RecoverThreshold <= 0 {
		cfg.RecoverThreshold = DefaultRecoverThreshold
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = DefaultDialTimeout
	}
	if cfg.MetricsMaxAge <= 0 {
		cfg.MetricsMaxAge = 4 * cfg.ProbeInterval
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 2 * cfg.FailThreshold
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 4 * cfg.ProbeInterval
	}
	if cfg.Dial == nil {
		cfg.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	bl := &Balancer{cfg: cfg, splices: make(map[net.Conn]struct{})}
	for _, bc := range cfg.Backends {
		// Optimistic start: members begin healthy (but with stale load
		// data), so the first sessions round-robin while the first probe
		// round confirms liveness.
		bl.backends = append(bl.backends, &backend{cfg: bc, healthy: true})
	}
	bl.setHealthyGauge()
	return bl, nil
}

func (bl *Balancer) logf(format string, args ...any) {
	if bl.cfg.Logf != nil {
		bl.cfg.Logf(format, args...)
	}
}

func (bl *Balancer) setHealthyGauge() {
	n := 0
	for _, b := range bl.backends {
		b.mu.Lock()
		if b.healthy {
			n++
		}
		b.mu.Unlock()
	}
	bl.cfg.Obs.Gauge("lb_healthy_backends").Set(float64(n))
}

// Status reports every backend's tracked state.
func (bl *Balancer) Status() []BackendStatus {
	out := make([]BackendStatus, 0, len(bl.backends))
	for _, b := range bl.backends {
		b.mu.Lock()
		st := BackendStatus{
			Addr:        b.cfg.Addr,
			Healthy:     b.healthy,
			Draining:    b.draining,
			BreakerOpen: time.Now().Before(b.openUntil),
			ActiveConns: b.active,
			QueueBytes:  int64(b.queueBytes),
			Routed:      b.routed.Load(),
		}
		if b.lastErr != nil {
			st.LastErr = b.lastErr.Error()
		}
		b.mu.Unlock()
		out = append(out, st)
	}
	return out
}

// StartProbes launches the per-backend health-check loops; they stop when
// ctx is done. Serve calls this; calling it again is a no-op.
func (bl *Balancer) StartProbes(ctx context.Context) {
	bl.start.Do(func() {
		for _, b := range bl.backends {
			go bl.probeLoop(ctx, b)
		}
	})
}

func (bl *Balancer) probeLoop(ctx context.Context, b *backend) {
	// First probe immediately: a balancer fronting a dead member should
	// learn so within one probe budget of starting, not one interval later.
	t := time.NewTicker(bl.cfg.ProbeInterval)
	defer t.Stop()
	for {
		bl.probeOnce(b)
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// probeOnce performs one health check: dial, MsgPing, read the reply. A
// status pong refreshes the load data; a busy rejection means the member
// is alive but unroutable (draining or saturated — admission control
// fast-rejects before reading the probe); anything else is a failure.
func (bl *Balancer) probeOnce(b *backend) {
	if b.breakerOpen() {
		// Open circuit: don't burn a dial on a member that just failed
		// BreakerThreshold times in a row. The first probe after the
		// cooldown is the half-open trial.
		bl.cfg.Obs.Counter("lb_breaker_skips").Inc()
		return
	}
	bl.cfg.Obs.Counter("lb_probes").Inc()
	err := bl.exchangeProbe(b)
	if err != nil {
		bl.cfg.Obs.Counter("lb_probe_fail").Inc()
		bl.noteProbe(b, false, err)
		return
	}
	bl.noteProbe(b, true, nil)
	if b.cfg.AdminAddr != "" {
		if snap, err := bl.fetchMetrics(b.cfg.AdminAddr); err == nil {
			b.mu.Lock()
			b.queueBytes = snap.Gauges["srv_queue_bytes"]
			b.mu.Unlock()
		}
	}
}

func (bl *Balancer) exchangeProbe(b *backend) error {
	if err := siteProbe.Err(); err != nil {
		return fmt.Errorf("probe: %w", err)
	}
	conn, err := bl.cfg.Dial(b.cfg.Addr, bl.cfg.ProbeTimeout)
	if err != nil {
		return fmt.Errorf("probe dial: %w", err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(bl.cfg.ProbeTimeout))
	// Write concurrently with the read: a draining or saturated server
	// fast-rejects before reading a byte, so over an unbuffered transport
	// its busy error and our ping would otherwise deadlock until the
	// timeout. The deferred Close reaps the writer either way.
	go func() { _ = proto.WritePing(conn) }()
	msg, err := proto.ReadMessage(conn)
	if err != nil {
		return fmt.Errorf("probe read: %w", err)
	}
	switch {
	case msg.Type == proto.MsgPing && msg.Ping != nil:
		b.mu.Lock()
		b.active = int64(msg.Ping.ActiveConns)
		b.draining = msg.Ping.Draining
		b.loadAt = time.Now()
		b.mu.Unlock()
		return nil
	case msg.Type == proto.MsgError && proto.IsBusyText(msg.Error):
		b.mu.Lock()
		b.draining = true
		b.loadAt = time.Now()
		b.mu.Unlock()
		return nil
	default:
		return fmt.Errorf("probe reply type %d", msg.Type)
	}
}

func (bl *Balancer) fetchMetrics(adminAddr string) (obs.Snapshot, error) {
	if bl.cfg.FetchMetrics != nil {
		return bl.cfg.FetchMetrics(adminAddr)
	}
	var snap obs.Snapshot
	httpc := http.Client{Timeout: bl.cfg.ProbeTimeout}
	resp, err := httpc.Get("http://" + adminAddr + "/metrics")
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("balancer: metrics status %s", resp.Status)
	}
	err = json.NewDecoder(resp.Body).Decode(&snap)
	return snap, err
}

// noteProbe applies one health observation (active probe or passive route
// failure) to the backend's streaks and flips its state at the configured
// thresholds.
func (bl *Balancer) noteProbe(b *backend, ok bool, err error) {
	b.mu.Lock()
	b.lastErr = err
	var flipped bool
	if ok {
		b.failStreak = 0
		b.okStreak++
		if !b.healthy && b.okStreak >= bl.cfg.RecoverThreshold {
			b.healthy = true
			flipped = true
		}
	} else {
		b.okStreak = 0
		b.failStreak++
		if b.healthy && b.failStreak >= bl.cfg.FailThreshold {
			b.healthy = false
			flipped = true
		}
		// Circuit breaker: sustained failure past the (stricter) breaker
		// threshold opens the member's circuit for the cooldown — a
		// half-open failure lands here again and re-opens it.
		if bl.cfg.BreakerThreshold > 0 && b.failStreak >= bl.cfg.BreakerThreshold {
			now := time.Now()
			if !now.Before(b.openUntil) { // was closed (or just expired): a fresh trip
				bl.cfg.Obs.Counter("lb_breaker_open").Inc()
				bl.logf("balancer: backend %s breaker open for %v after %d consecutive failures",
					b.cfg.Addr, bl.cfg.BreakerCooldown, b.failStreak)
			}
			b.openUntil = now.Add(bl.cfg.BreakerCooldown)
		}
	}
	healthy := b.healthy
	b.mu.Unlock()
	if !flipped {
		return
	}
	bl.setHealthyGauge()
	if healthy {
		bl.cfg.Obs.Counter("lb_recovered").Inc()
		bl.logf("balancer: backend %s recovered", b.cfg.Addr)
	} else {
		bl.cfg.Obs.Counter("lb_unhealthy").Inc()
		bl.logf("balancer: backend %s marked unhealthy: %v", b.cfg.Addr, err)
	}
}

// score is the routing load figure: the larger of the backend-reported
// session count and the balancer's own live splice count (probe data can
// be one interval stale), plus the queued backlog in connection
// equivalents.
func (b *backend) score() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := b.active
	if r := b.routed.Load(); r > n {
		n = r
	}
	return float64(n) + b.queueBytes/QueueBytesPerConn
}

func (b *backend) routable() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.healthy && !b.draining && !time.Now().Before(b.openUntil)
}

func (b *backend) loadFresh(maxAge time.Duration) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return !b.loadAt.IsZero() && time.Since(b.loadAt) <= maxAge
}

// pick selects the routing target: the lowest-scoring routable backend
// with fresh load data, falling back to round-robin across routable
// members when every score would be guesswork. exclude removes backends
// that already failed this routing attempt.
func (bl *Balancer) pick(exclude map[*backend]bool) *backend {
	var candidates []*backend
	for _, b := range bl.backends {
		if !exclude[b] && b.routable() {
			candidates = append(candidates, b)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	var fresh []*backend
	for _, b := range candidates {
		if b.loadFresh(bl.cfg.MetricsMaxAge) {
			fresh = append(fresh, b)
		}
	}
	if len(fresh) == 0 {
		i := bl.rr.Add(1) - 1
		return candidates[i%uint64(len(candidates))]
	}
	best := fresh[0]
	bestScore := best.score()
	for _, b := range fresh[1:] {
		if s := b.score(); s < bestScore {
			best, bestScore = b, s
		}
	}
	return best
}

// route attaches one client connection to a backend and splices until
// either side ends. Backends whose dial fails are charged a passive
// health failure and the next candidate is tried; with no routable
// backend left the client gets the retryable busy reject, so resilient
// clients back off and redial instead of dying.
func (bl *Balancer) route(ctx context.Context, clientConn net.Conn) {
	defer clientConn.Close()
	exclude := make(map[*backend]bool)
	for {
		b := bl.pick(exclude)
		if b == nil {
			bl.cfg.Obs.Counter("lb_no_backend").Inc()
			_ = clientConn.SetWriteDeadline(time.Now().Add(bl.cfg.ProbeTimeout))
			_ = proto.WriteError(clientConn, proto.BusyText("no healthy backend"))
			return
		}
		srvConn, err := bl.dialBackend(b)
		if err != nil {
			// Passive detection: a failed route dial is as telling as a
			// failed probe, and it arrives sooner.
			bl.cfg.Obs.Counter("lb_route_dial_fail").Inc()
			bl.noteProbe(b, false, fmt.Errorf("route dial: %w", err))
			exclude[b] = true
			continue
		}
		bl.cfg.Obs.Counter("lb_routed").Inc()
		b.routed.Add(1)
		bl.trackSplice(clientConn, true)
		bl.splice(clientConn, srvConn)
		bl.trackSplice(clientConn, false)
		b.routed.Add(-1)
		return
	}
}

// dialBackend opens the routing connection to a member, with the
// balancer.dial failpoint in front so chaos runs can make a live member
// look dead to the router (and charge its breaker) without touching it.
func (bl *Balancer) dialBackend(b *backend) (net.Conn, error) {
	if err := siteDial.Err(); err != nil {
		return nil, err
	}
	return bl.cfg.Dial(b.cfg.Addr, bl.cfg.DialTimeout)
}

func (bl *Balancer) trackSplice(c net.Conn, add bool) {
	bl.mu.Lock()
	if add {
		bl.splices[c] = struct{}{}
	} else {
		delete(bl.splices, c)
	}
	bl.mu.Unlock()
}

// splice copies bytes both ways until either side ends, with an ordered
// close: the client conn is closed only after the server→client copy has
// fully returned, so every tile the backend counted as sent reaches the
// client before the link drops. The fleet-wide zero-duplicate-send
// invariant is proved over this property.
//
// With SpliceStallBudget set, both destination conns are wrapped in a
// stall meter: a peer that blocks writes beyond the budget severs the
// splice (ErrSpliceStall, lb_splice_stalls) instead of pinning the
// balancer goroutines and the backend's queue bytes indefinitely. The
// balancer.splice failpoint rides the server→client read side, severing
// or stalling mid-stream to exercise exactly that recovery.
func (bl *Balancer) splice(clientConn, srvConn net.Conn) {
	var cdst, sdst net.Conn = clientConn, srvConn
	if bud := bl.cfg.SpliceStallBudget; bud > 0 {
		th := bud / 10
		if th < time.Millisecond {
			th = time.Millisecond
		}
		trip := func() {
			bl.cfg.Obs.Counter("lb_splice_stalls").Inc()
			bl.logf("balancer: %v", ErrSpliceStall)
		}
		cdst = &stallConn{Conn: clientConn, budget: bud, thresh: th, onTrip: trip}
		sdst = &stallConn{Conn: srvConn, budget: bud, thresh: th, onTrip: trip}
	}
	done := make(chan struct{})
	go func() {
		_, _ = io.Copy(sdst, clientConn)
		srvConn.Close()
		close(done)
	}()
	_, _ = io.Copy(cdst, spliceSrc{srvConn})
	srvConn.Close()
	clientConn.Close()
	<-done
}

// spliceSrc fronts the backend's read side of a splice with the
// balancer.splice failpoint: error kinds sever the stream (the client
// resumes elsewhere), delay stalls it.
type spliceSrc struct{ net.Conn }

func (c spliceSrc) Read(p []byte) (int, error) {
	if f := siteSplice.Fault(); f.Active() {
		if f.Kind == chaos.FaultDelay {
			time.Sleep(f.Delay)
		} else {
			return 0, f.Err
		}
	}
	return c.Conn.Read(p)
}

// stallConn meters cumulative excess write time against a budget; see
// Config.SpliceStallBudget. Each write gets thresh of blocking for free
// and runs under a deadline of the remaining budget, so a fully hung peer
// cannot out-wait the meter.
type stallConn struct {
	net.Conn
	budget time.Duration
	thresh time.Duration
	spent  time.Duration
	onTrip func()
}

func (c *stallConn) trip() error {
	if c.onTrip != nil {
		c.onTrip()
		c.onTrip = nil
	}
	return ErrSpliceStall
}

func (c *stallConn) Write(p []byte) (int, error) {
	rem := c.budget - c.spent
	if rem <= 0 {
		return 0, c.trip()
	}
	_ = c.Conn.SetWriteDeadline(time.Now().Add(rem + c.thresh))
	start := time.Now()
	n, err := c.Conn.Write(p)
	if d := time.Since(start) - c.thresh; d > 0 {
		c.spent += d
	}
	if err != nil {
		if c.spent >= c.budget {
			return n, fmt.Errorf("%w (after %v)", c.trip(), err)
		}
		return n, err
	}
	_ = c.Conn.SetWriteDeadline(time.Time{})
	return n, nil
}

// Serve accepts client connections and routes each to a backend until the
// listener fails or ctx is done; cancellation also severs the active
// splices so Serve's callers can tear down promptly.
func (bl *Balancer) Serve(ctx context.Context, l net.Listener) error {
	bl.StartProbes(ctx)
	go func() {
		<-ctx.Done()
		l.Close()
		bl.mu.Lock()
		for c := range bl.splices {
			c.Close()
		}
		bl.mu.Unlock()
	}()
	var wg sync.WaitGroup
	for {
		conn, err := l.Accept()
		if err != nil {
			wg.Wait()
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("balancer: accept: %w", err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			bl.route(ctx, conn)
		}()
	}
}

// ListenAndServe listens on addr and serves until ctx is done.
func (bl *Balancer) ListenAndServe(ctx context.Context, addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("balancer: listen %s: %w", addr, err)
	}
	bl.logf("balancer: listening on %s fronting %d backends", l.Addr(), len(bl.backends))
	err = bl.Serve(ctx, l)
	if errors.Is(err, context.Canceled) {
		return nil
	}
	return err
}
