// Package stats provides the small statistical toolkit the experiment
// harness uses to turn per-session metrics into the distributions, medians
// and confidence intervals the paper's figures report.
//
// Two families of estimators live here. The exact ones (Mean, Percentile,
// Bootstrap CIs) operate on full in-memory sample slices. Sketch is the
// streaming counterpart: a fixed-bin, equal-width histogram over a declared
// range whose quantiles are correct to within one bin width of the exact
// nearest-rank percentile, and which merges losslessly with any sketch of
// identical geometry — the aggregation primitive behind internal/ingest's
// fleet-wide cohort rollups (see docs/OBSERVABILITY.md for the documented
// accuracy envelope).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Percentile returns the p-th percentile (p in [0, 100]) with linear
// interpolation between order statistics; 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// StdDev returns the sample standard deviation (0 for fewer than 2 values).
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(n-1))
}

// MeanCI95 returns the mean and the half-width of its 95% confidence
// interval (normal approximation), as the paper's Fig 14(b) error bars.
func MeanCI95(xs []float64) (mean, halfWidth float64) {
	n := len(xs)
	if n == 0 {
		return 0, 0
	}
	m := Mean(xs)
	if n < 2 {
		return m, 0
	}
	return m, 1.96 * StdDev(xs) / math.Sqrt(float64(n))
}

// CDFPoint is one (value, cumulative fraction) sample of an empirical CDF.
type CDFPoint struct {
	Value float64
	Frac  float64
}

// CDF returns the empirical CDF sampled at up to maxPoints evenly spaced
// ranks — the form every distribution figure in the paper plots.
func CDF(xs []float64, maxPoints int) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if maxPoints <= 0 || maxPoints > len(s) {
		maxPoints = len(s)
	}
	out := make([]CDFPoint, 0, maxPoints)
	for i := 0; i < maxPoints; i++ {
		idx := i * (len(s) - 1) / max(1, maxPoints-1)
		out = append(out, CDFPoint{Value: s[idx], Frac: float64(idx+1) / float64(len(s))})
	}
	return out
}

// FractionAtLeast returns the fraction of values >= threshold.
func FractionAtLeast(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x >= threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// FractionAbove returns the fraction of values > threshold.
func FractionAbove(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x > threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Summary bundles the order statistics the result tables print.
type Summary struct {
	N                  int
	Mean, Median       float64
	P10, P25, P75, P90 float64
	Min, Max           float64
}

// Summarize computes a Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Median: Median(xs),
		P10:    Percentile(xs, 10),
		P25:    Percentile(xs, 25),
		P75:    Percentile(xs, 75),
		P90:    Percentile(xs, 90),
		Min:    Percentile(xs, 0),
		Max:    Percentile(xs, 100),
	}
}
