package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestSketchQuantileEnvelope pins the documented accuracy contract: on
// seeded data inside the range, every quantile estimate — including from a
// sketch merged out of shards — lands within one bin width of the exact
// order statistic.
func TestSketchQuantileEnvelope(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const (
		lo, hi = 0.0, 60.0
		bins   = 240
		shards = 8
		perSh  = 500
	)
	var exact []float64
	parts := make([]*Sketch, shards)
	for sh := 0; sh < shards; sh++ {
		parts[sh] = NewSketch(lo, hi, bins)
		for i := 0; i < perSh; i++ {
			// A bimodal mix, roughly like per-frame quality in dB.
			v := 42 + 4*rng.NormFloat64()
			if rng.Intn(4) == 0 {
				v = 25 + 3*rng.NormFloat64()
			}
			if v < lo {
				v = lo
			}
			if v > hi {
				v = hi
			}
			exact = append(exact, v)
			parts[sh].Add(v)
		}
	}
	merged := NewSketch(lo, hi, bins)
	for _, p := range parts {
		if err := merged.Merge(p); err != nil {
			t.Fatal(err)
		}
	}
	if merged.Count() != uint64(len(exact)) {
		t.Fatalf("merged count = %d, want %d", merged.Count(), len(exact))
	}
	envelope := merged.BinWidth()
	for _, p := range []float64{1, 10, 25, 50, 75, 90, 99} {
		got := merged.Quantile(p)
		want := Percentile(exact, p)
		if d := math.Abs(got - want); d > envelope {
			t.Errorf("p%g: sketch %.3f vs exact %.3f, |diff| %.3f > envelope %.3f",
				p, got, want, d, envelope)
		}
	}
	if d := math.Abs(merged.Mean() - Mean(exact)); d > 1e-9 {
		t.Errorf("mean drifted by %g (Sum should be exact)", d)
	}
}

func TestSketchMergeRejectsGeometryMismatch(t *testing.T) {
	a := NewSketch(0, 10, 10)
	b := NewSketch(0, 20, 10)
	if err := a.Merge(b); err == nil {
		t.Fatal("merge of mismatched geometries succeeded")
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("nil merge: %v", err)
	}
}

func TestSketchClampsAndEdges(t *testing.T) {
	s := NewSketch(0, 100, 10)
	for _, v := range []float64{-5, 0, 100, 250, math.NaN()} {
		s.Add(v)
	}
	if s.Count() != 4 {
		t.Fatalf("count = %d, want 4 (NaN ignored)", s.Count())
	}
	if got := s.Quantile(100); got != 100 {
		t.Errorf("p100 = %g, want 100", got)
	}
	if got := s.Quantile(0); got > s.BinWidth() {
		t.Errorf("p0 = %g, want inside the first bin", got)
	}
	empty := NewSketch(0, 1, 4)
	if empty.Quantile(50) != 0 || empty.Mean() != 0 {
		t.Error("empty sketch should report zeros")
	}
}
