package stats

import (
	"fmt"
	"math"
)

// Sketch is a fixed-bin mergeable quantile sketch: an online histogram over
// a fixed value range whose cumulative counts approximate the empirical CDF
// of everything folded into it. Two sketches with the same geometry merge
// by adding bins, which makes it the aggregation primitive for fleet-wide
// rollups: every server (or ingest shard) folds its own sessions and the
// merged result is exactly what a single sketch over the union would hold.
//
// Accuracy contract: for the true q-quantile value v with Lo <= v <= Hi,
// Quantile returns an estimate within one bin width, (Hi-Lo)/bins, of v
// (linear interpolation inside the bin). Values outside [Lo, Hi] are
// clamped into the edge bins, so quantiles that fall in a saturated edge
// bin report the range bound; size the range so the population's support
// fits inside it. The zero Sketch is not usable; call NewSketch.
type Sketch struct {
	Lo, Hi float64  // value range covered by the bins
	Bins   []uint64 // per-bin observation counts
	N      uint64   // total observations
	Sum    float64  // running sum (for Mean)
}

// NewSketch creates a sketch covering [lo, hi] with the given number of
// equal-width bins. It panics on a degenerate geometry (hi <= lo, bins < 1):
// geometries are compile-time constants of their callers, not runtime data.
func NewSketch(lo, hi float64, bins int) *Sketch {
	if hi <= lo || bins < 1 {
		panic(fmt.Sprintf("stats: degenerate sketch geometry [%g, %g] / %d bins", lo, hi, bins))
	}
	return &Sketch{Lo: lo, Hi: hi, Bins: make([]uint64, bins)}
}

// BinWidth returns the value span of one bin — the quantile error envelope.
func (s *Sketch) BinWidth() float64 { return (s.Hi - s.Lo) / float64(len(s.Bins)) }

// Add folds one observation. NaN is ignored; values outside [Lo, Hi] clamp
// into the edge bins (Sum accumulates the clamped value, keeping Mean
// inside the declared range).
func (s *Sketch) Add(v float64) {
	if math.IsNaN(v) {
		return
	}
	if v < s.Lo {
		v = s.Lo
	}
	if v > s.Hi {
		v = s.Hi
	}
	i := int((v - s.Lo) / s.BinWidth())
	if i >= len(s.Bins) { // v == Hi lands one past the end
		i = len(s.Bins) - 1
	}
	s.Bins[i]++
	s.N++
	s.Sum += v
}

// Merge folds other into s. The two sketches must share a geometry
// (identical Lo, Hi and bin count); merging mismatched geometries would
// silently mis-bin, so it is an error instead.
func (s *Sketch) Merge(other *Sketch) error {
	if other == nil {
		return nil
	}
	if s.Lo != other.Lo || s.Hi != other.Hi || len(s.Bins) != len(other.Bins) {
		return fmt.Errorf("stats: sketch geometry mismatch: [%g, %g]/%d vs [%g, %g]/%d",
			s.Lo, s.Hi, len(s.Bins), other.Lo, other.Hi, len(other.Bins))
	}
	for i, c := range other.Bins {
		s.Bins[i] += c
	}
	s.N += other.N
	s.Sum += other.Sum
	return nil
}

// Count returns the number of folded observations.
func (s *Sketch) Count() uint64 { return s.N }

// Mean returns the arithmetic mean of the folded (clamped) observations,
// or 0 when empty.
func (s *Sketch) Mean() float64 {
	if s.N == 0 {
		return 0
	}
	return s.Sum / float64(s.N)
}

// Quantile returns the estimated p-th percentile (p in [0, 100]) with
// linear interpolation across the containing bin, or 0 when the sketch is
// empty. See the type comment for the error envelope.
func (s *Sketch) Quantile(p float64) float64 {
	if s.N == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	// Rank of the target observation, 1-based, matching nearest-rank with
	// interpolation on the cumulative counts.
	rank := p / 100 * float64(s.N)
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	w := s.BinWidth()
	for i, c := range s.Bins {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			// Interpolate within the bin by the rank's position in it.
			frac := (rank - float64(cum)) / float64(c)
			return s.Lo + (float64(i)+frac)*w
		}
		cum += c
	}
	return s.Hi
}
