package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanMedian(t *testing.T) {
	if Mean(nil) != 0 || Median(nil) != 0 {
		t.Error("empty inputs should yield 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("mean = %v", got)
	}
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("median = %v", got)
	}
	if got := Median([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("even median = %v", got)
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 50); got != 5 {
		t.Errorf("p50 = %v", got)
	}
	if got := Percentile(xs, 0); got != 0 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 10 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(xs, 25); got != 2.5 {
		t.Errorf("p25 = %v", got)
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, aRaw, bRaw uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		a := float64(aRaw) / 255 * 100
		b := float64(bRaw) / 255 * 100
		if a > b {
			a, b = b, a
		}
		return Percentile(xs, a) <= Percentile(xs, b)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStdDevAndCI(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Error("singleton stddev")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := StdDev(xs); math.Abs(got-2.138) > 0.01 {
		t.Errorf("stddev = %v", got)
	}
	m, hw := MeanCI95(xs)
	if m != 5 || hw <= 0 {
		t.Errorf("CI = %v ± %v", m, hw)
	}
	if _, hw := MeanCI95(nil); hw != 0 {
		t.Error("empty CI")
	}
}

func TestCDF(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	cdf := CDF(xs, 0)
	if len(cdf) != 4 {
		t.Fatalf("cdf length %d", len(cdf))
	}
	if cdf[0].Value != 1 || cdf[len(cdf)-1].Value != 4 {
		t.Errorf("cdf endpoints: %+v", cdf)
	}
	if cdf[len(cdf)-1].Frac != 1 {
		t.Errorf("cdf must end at 1, got %v", cdf[len(cdf)-1].Frac)
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Value < cdf[i-1].Value || cdf[i].Frac < cdf[i-1].Frac {
			t.Fatal("cdf not monotone")
		}
	}
	if got := CDF(nil, 10); got != nil {
		t.Error("empty cdf")
	}
	sub := CDF([]float64{1, 2, 3, 4, 5, 6, 7, 8}, 3)
	if len(sub) != 3 {
		t.Errorf("subsampled cdf length %d", len(sub))
	}
}

func TestFractions(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := FractionAtLeast(xs, 3); got != 0.5 {
		t.Errorf("FractionAtLeast = %v", got)
	}
	if got := FractionAbove(xs, 3); got != 0.25 {
		t.Errorf("FractionAbove = %v", got)
	}
	if FractionAtLeast(nil, 0) != 0 || FractionAbove(nil, 0) != 0 {
		t.Error("empty fractions")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if s.N != 10 || s.Median != 5.5 || s.Min != 1 || s.Max != 10 {
		t.Errorf("summary = %+v", s)
	}
	if s.P10 >= s.P90 {
		t.Error("percentiles out of order")
	}
	if Summarize(nil).N != 0 {
		t.Error("empty summary")
	}
}
