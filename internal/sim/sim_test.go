package sim

import (
	"bytes"
	"testing"
	"time"

	"dragonfly/internal/core"
	"dragonfly/internal/decoder"
	"dragonfly/internal/player"
	"dragonfly/internal/trace"
	"dragonfly/internal/video"
)

func smallSweep(schemes ...string) Sweep {
	return Sweep{
		Videos: []*video.Manifest{video.Generate(video.GenParams{
			ID: "sw", Rows: 6, Cols: 6, NumChunks: 5,
			TargetQP42Mbps: 1, TargetQP22Mbps: 8, Seed: 3,
		})},
		Users: []*trace.HeadTrace{
			trace.GenerateHead(trace.HeadGenParams{UserID: "u1", Class: trace.MotionLow, Duration: 5 * time.Second, Seed: 1}),
			trace.GenerateHead(trace.HeadGenParams{UserID: "u2", Class: trace.MotionHigh, Duration: 5 * time.Second, Seed: 2}),
		},
		Bandwidths: []*trace.BandwidthTrace{
			{ID: "b1", SamplePeriod: time.Second, Mbps: []float64{8}},
			{ID: "b2", SamplePeriod: time.Second, Mbps: []float64{15}},
		},
		Schemes: schemes,
		Workers: 4,
	}
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	want := []string{"dragonfly", "flare", "pano", "twotier", "passiveskip",
		"perchunk", "nomask", "dragonfly-pspnr", "pano-pspnr", "flare-1s",
		"pano-1s", "dragonfly-tiled"}
	for _, key := range want {
		f, ok := reg[key]
		if !ok {
			t.Errorf("registry missing %q", key)
			continue
		}
		s := f()
		if s.Name() == "" {
			t.Errorf("%q produced unnamed scheme", key)
		}
		// Factories must return fresh instances.
		if f() == s {
			t.Errorf("%q factory returned a shared instance", key)
		}
	}
}

func TestRunSweep(t *testing.T) {
	res, err := Run(smallSweep("dragonfly", "flare"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d schemes", len(res))
	}
	for name, sessions := range res {
		if len(sessions) != 4 { // 1 video x 2 users x 2 traces
			t.Errorf("%s: %d sessions, want 4", name, len(sessions))
		}
		for _, s := range sessions {
			if s.TotalFrames == 0 {
				t.Errorf("%s: empty session", name)
			}
		}
	}
	if _, ok := res["Dragonfly"]; !ok {
		t.Error("results not keyed by scheme display name")
	}
}

func TestRunSweepDeterministicOrder(t *testing.T) {
	a, err := Run(smallSweep("dragonfly"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallSweep("dragonfly"))
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := a["Dragonfly"], b["Dragonfly"]
	for i := range sa {
		if sa[i].UserID != sb[i].UserID || sa[i].TraceID != sb[i].TraceID {
			t.Fatal("session order not deterministic")
		}
		if sa[i].MedianScore() != sb[i].MedianScore() {
			t.Fatal("session results not deterministic")
		}
	}
}

func TestRunSweepErrors(t *testing.T) {
	if _, err := Run(Sweep{Schemes: []string{"dragonfly"}}); err == nil {
		t.Error("empty sweep accepted")
	}
	sw := smallSweep("definitely-not-a-scheme")
	if _, err := Run(sw); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestPooledFrameScores(t *testing.T) {
	a := &player.Metrics{FrameScore: []float64{1, 2}}
	b := &player.Metrics{FrameScore: []float64{3}}
	got := PooledFrameScores([]*player.Metrics{a, b})
	if len(got) != 3 || got[2] != 3 {
		t.Errorf("pooled = %v", got)
	}
}

func TestSessionStat(t *testing.T) {
	a := &player.Metrics{FrameScore: []float64{10, 20}}
	got := SessionStat([]*player.Metrics{a}, func(m *player.Metrics) float64 { return m.MeanScore() })
	if len(got) != 1 || got[0] != 15 {
		t.Errorf("stat = %v", got)
	}
}

func TestRunSweepExtraFactories(t *testing.T) {
	sw := smallSweep("custom")
	sw.Extra = map[string]SchemeFactory{
		"custom": func() player.Scheme {
			return core.New(core.Options{Name: "Custom", DecisionInterval: 200 * time.Millisecond})
		},
	}
	res, err := Run(sw)
	if err != nil {
		t.Fatal(err)
	}
	if len(res["Custom"]) != 4 {
		t.Fatalf("custom factory sessions: %d", len(res["Custom"]))
	}
}

func TestRunSweepDecoderAndInterpolation(t *testing.T) {
	sw := smallSweep("dragonfly-tiled")
	sw.Decoder = func() *decoder.Model {
		return &decoder.Model{ThroughputMBps: 500}
	}
	sw.MaskInterpolation = true
	res, err := Run(sw)
	if err != nil {
		t.Fatal(err)
	}
	if len(res["Dragonfly-Tiled"]) != 4 {
		t.Fatalf("sessions: %d", len(res["Dragonfly-Tiled"]))
	}
}

func TestResultsPersistence(t *testing.T) {
	res, err := Run(smallSweep("flare"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteResults(&buf, res); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResults(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, b := res["Flare"], got["Flare"]
	if len(a) != len(b) {
		t.Fatalf("session count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].MedianScore() != b[i].MedianScore() || a[i].TraceID != b[i].TraceID {
			t.Fatal("round trip lost data")
		}
	}
	if _, err := ReadResults(bytes.NewReader([]byte("{"))); err == nil {
		t.Error("corrupt results accepted")
	}
	if _, err := ReadResults(bytes.NewReader([]byte(`{"X":[null]}`))); err == nil {
		t.Error("null session accepted")
	}
}

func TestMergeAndFilterResults(t *testing.T) {
	a := Results{"S": {&player.Metrics{TraceID: "t1", FrameScore: []float64{10}}}}
	b := Results{"S": {&player.Metrics{TraceID: "t2", FrameScore: []float64{50}}}}
	merged := MergeResults(a, b)
	if len(merged["S"]) != 2 {
		t.Fatalf("merged sessions: %d", len(merged["S"]))
	}
	high := merged.Filter(func(m *player.Metrics) bool { return m.MeanScore() > 30 })
	if len(high["S"]) != 1 || high["S"][0].TraceID != "t2" {
		t.Fatalf("filter result: %+v", high["S"])
	}
}
