package sim

import (
	"strings"
	"testing"

	"dragonfly/internal/core"
	"dragonfly/internal/player"
)

// TestRunRejectsDisplayNameCollision is a regression test for the silent
// result overwrite: two sweep keys whose schemes share a display name (here
// an Extra factory shadowing the registry's "dragonfly") used to clobber
// each other's sessions in the Results map; now the sweep fails fast.
func TestRunRejectsDisplayNameCollision(t *testing.T) {
	sw := smallSweep("dragonfly", "dragonfly-shadow")
	sw.Extra = map[string]SchemeFactory{
		// Same display name as the registry's default Dragonfly.
		"dragonfly-shadow": func() player.Scheme {
			return core.New(core.Options{Masking: core.MaskNone, Name: "Dragonfly"})
		},
	}
	_, err := Run(sw)
	if err == nil {
		t.Fatal("Run accepted two schemes with the same display name")
	}
	if !strings.Contains(err.Error(), "Dragonfly") {
		t.Fatalf("error %q does not name the colliding display name", err)
	}
}

// TestRunAllowsRepeatedKey: listing the same key twice is not a collision
// (it resolves to one factory), and distinct names keep working.
func TestRunAllowsDistinctExtraNames(t *testing.T) {
	sw := smallSweep("dragonfly", "dragonfly-x")
	sw.Extra = map[string]SchemeFactory{
		"dragonfly-x": func() player.Scheme {
			return core.New(core.Options{Masking: core.MaskNone, Name: "Dragonfly-X"})
		},
	}
	res, err := Run(sw)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res["Dragonfly"]; !ok {
		t.Error("missing registry scheme results")
	}
	if _, ok := res["Dragonfly-X"]; !ok {
		t.Error("missing Extra scheme results")
	}
}
