package sim

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"dragonfly/internal/obs"
)

// TestRunWithStatsEmitsTracesAndMetrics exercises the sweep observability
// path: with Obs and TraceDir set, a sweep reports its execution profile,
// feeds the registry, and writes one JSONL event trace per session.
func TestRunWithStatsEmitsTracesAndMetrics(t *testing.T) {
	sw := smallSweep("dragonfly")
	sw.Obs = obs.NewRegistry()
	sw.TraceDir = filepath.Join(t.TempDir(), "traces")

	res, stats, err := RunWithStats(sw)
	if err != nil {
		t.Fatal(err)
	}
	sessions := len(res["Dragonfly"])
	if sessions != 4 { // 1 video x 2 users x 2 bandwidths
		t.Fatalf("got %d sessions, want 4", sessions)
	}
	if stats.Sessions != sessions {
		t.Errorf("stats.Sessions = %d, want %d", stats.Sessions, sessions)
	}
	if stats.Wall <= 0 || stats.SessionsPerSec <= 0 {
		t.Errorf("stats not populated: %+v", stats)
	}

	snap := sw.Obs.Snapshot()
	if got := snap.Counters["sim_sessions"]; got != int64(sessions) {
		t.Errorf("sim_sessions = %d, want %d", got, sessions)
	}
	if hs := snap.Histograms["sim_session_ms"]; hs.Count != int64(sessions) {
		t.Errorf("sim_session_ms count = %d, want %d", hs.Count, sessions)
	}
	// The worker wires the registry into factory-built core schemes, so the
	// scheduler's own counters must show up too.
	if got := snap.Counters["core_decisions"]; got <= 0 {
		t.Errorf("core_decisions = %d, want > 0 (SetObs not wired into scheme)", got)
	}

	files, err := filepath.Glob(filepath.Join(sw.TraceDir, "*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != sessions {
		t.Fatalf("got %d trace files, want %d: %v", len(files), sessions, files)
	}
	// Every line of every trace must be a well-formed event with a kind.
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		lines := 0
		for sc.Scan() {
			var ev struct {
				Kind string `json:"ev"`
			}
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				t.Fatalf("%s: bad JSONL line: %v", path, err)
			}
			if ev.Kind == "" {
				t.Fatalf("%s: event without a kind: %s", path, sc.Text())
			}
			lines++
		}
		f.Close()
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		if lines == 0 {
			t.Errorf("%s: empty session trace", path)
		}
	}
}
