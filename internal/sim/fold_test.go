package sim

import (
	"testing"

	"dragonfly/internal/player"
)

// TestFoldStreamsEverySession proves the streaming hook sees each session
// exactly once, with the cohort key and stable index, while the Results
// map is skipped entirely (the memory bound: a fold-only sweep retains
// nothing beyond the caller's fold state).
func TestFoldStreamsEverySession(t *testing.T) {
	sw := smallSweep("dragonfly", "flare")
	type seen struct {
		cohort string
		median float64
	}
	folded := map[string]map[int]seen{}
	var metrics []*player.Metrics
	sw.Fold = func(s Session) {
		if folded[s.Key] == nil {
			folded[s.Key] = map[int]seen{}
		}
		if _, dup := folded[s.Key][s.Index]; dup {
			t.Errorf("session %s/%d folded twice", s.Key, s.Index)
		}
		folded[s.Key][s.Index] = seen{cohort: s.Cohort, median: s.Metrics.MedianScore()}
		metrics = append(metrics, s.Metrics)
	}
	res, stats, err := RunWithStats(sw)
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		t.Fatalf("fold-only sweep retained a Results map with %d schemes", len(res))
	}
	if stats.Sessions != 8 { // 2 schemes x 1 video x 2 users x 2 traces
		t.Fatalf("stats counted %d sessions, want 8", stats.Sessions)
	}
	for _, key := range []string{"dragonfly", "flare"} {
		if len(folded[key]) != 4 {
			t.Fatalf("%s: folded %d sessions, want 4", key, len(folded[key]))
		}
		for idx, s := range folded[key] {
			if s.cohort == "" {
				t.Errorf("%s/%d folded without a cohort", key, idx)
			}
		}
	}

	// The stream must carry the same sessions a retaining run produces.
	sw2 := smallSweep("dragonfly", "flare")
	res2, err := Run(sw2)
	if err != nil {
		t.Fatal(err)
	}
	for i, sessions := range [][]*player.Metrics{res2["Dragonfly"], res2["Flare"]} {
		key := []string{"dragonfly", "flare"}[i]
		for idx, met := range sessions {
			if got := folded[key][idx].median; got != met.MedianScore() {
				t.Errorf("%s/%d: folded median %.3f != retained %.3f", key, idx, got, met.MedianScore())
			}
		}
	}
}

// TestFoldWithRetainResults keeps both the stream and the map.
func TestFoldWithRetainResults(t *testing.T) {
	sw := smallSweep("dragonfly")
	count := 0
	sw.Fold = func(Session) { count++ }
	sw.RetainResults = true
	res, err := Run(sw)
	if err != nil {
		t.Fatal(err)
	}
	if count != 4 {
		t.Fatalf("folded %d sessions, want 4", count)
	}
	if len(res["Dragonfly"]) != 4 {
		t.Fatalf("RetainResults kept %d sessions, want 4", len(res["Dragonfly"]))
	}
}
