package sim

import (
	"encoding/json"
	"fmt"
	"io"

	"dragonfly/internal/player"
)

// WriteResults serializes a sweep's results as JSON, so expensive
// paper-scale runs can be archived and re-analyzed without re-simulating.
func WriteResults(w io.Writer, r Results) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("sim: encode results: %w", err)
	}
	return nil
}

// ReadResults parses results written by WriteResults.
func ReadResults(r io.Reader) (Results, error) {
	var out Results
	dec := json.NewDecoder(r)
	if err := dec.Decode(&out); err != nil {
		return nil, fmt.Errorf("sim: decode results: %w", err)
	}
	for name, sessions := range out {
		for i, s := range sessions {
			if s == nil {
				return nil, fmt.Errorf("sim: results for %q contain a null session at %d", name, i)
			}
		}
	}
	return out, nil
}

// MergeResults combines sweeps (e.g. runs sharded across machines); scheme
// names colliding across inputs have their session lists concatenated.
func MergeResults(parts ...Results) Results {
	out := Results{}
	for _, p := range parts {
		for name, sessions := range p {
			out[name] = append(out[name], sessions...)
		}
	}
	return out
}

// Filter returns the subset of sessions satisfying keep, per scheme.
func (r Results) Filter(keep func(*player.Metrics) bool) Results {
	out := Results{}
	for name, sessions := range r {
		for _, s := range sessions {
			if keep(s) {
				out[name] = append(out[name], s)
			}
		}
	}
	return out
}
