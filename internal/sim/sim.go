// Package sim runs session sweeps: the cross product of videos, user
// traces, bandwidth traces and schemes that produces the hundreds of
// sessions behind each of the paper's evaluation figures (§4.3 runs 770
// sessions per comparison). Sessions are independent, so the sweep fans
// out across a bounded worker pool.
package sim

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"dragonfly/internal/baseline"
	"dragonfly/internal/core"
	"dragonfly/internal/decoder"
	"dragonfly/internal/geom"
	"dragonfly/internal/obs"
	"dragonfly/internal/player"
	"dragonfly/internal/quality"
	"dragonfly/internal/trace"
	"dragonfly/internal/video"
)

// SchemeFactory builds a fresh scheme instance. Schemes hold per-session
// state (committed chunk decisions), so each session needs its own.
type SchemeFactory func() player.Scheme

// Registry returns factories for every scheme and variant in the paper's
// evaluation, keyed by the identifier used on the experiment command line.
func Registry() map[string]SchemeFactory {
	return map[string]SchemeFactory{
		// The four systems of Table 1.
		"dragonfly": func() player.Scheme { return core.NewDefault() },
		"flare":     func() player.Scheme { return baseline.NewFlare(baseline.FlareOptions{}) },
		"pano":      func() player.Scheme { return baseline.NewPano(baseline.PanoOptions{}) },
		"twotier":   func() player.Scheme { return baseline.NewTwoTier(baseline.TwoTierOptions{}) },

		// PSPNR-optimizing variants (§4.3, Fig 10).
		"dragonfly-pspnr": func() player.Scheme {
			return core.New(core.Options{Metric: quality.PSPNR, Name: "Dragonfly-PSPNR"})
		},
		"pano-pspnr": func() player.Scheme {
			return baseline.NewPano(baseline.PanoOptions{Metric: quality.PSPNR})
		},

		// 1-second look-ahead sensitivity variants (§4.3).
		"flare-1s": func() player.Scheme {
			return baseline.NewFlare(baseline.FlareOptions{Lookahead: time.Second, Name: "Flare-1s"})
		},
		"pano-1s": func() player.Scheme {
			return baseline.NewPano(baseline.PanoOptions{Lookahead: time.Second, Name: "Pano-1s"})
		},

		// Table 2 ablation variants.
		"passiveskip": func() player.Scheme { return baseline.NewPassiveSkip() },
		"perchunk": func() player.Scheme {
			return core.New(core.Options{DecisionInterval: time.Second, Name: "PerChunk"})
		},
		"nomask": func() player.Scheme {
			return core.New(core.Options{Masking: core.MaskNone, Name: "NoMask"})
		},

		// Masking-strategy variant (Fig 19): the user-study configuration.
		"dragonfly-tiled": func() player.Scheme {
			return core.New(core.Options{Masking: core.MaskTiled, Name: "Dragonfly-Tiled"})
		},

		// §3.2 future-work optimization: utility-scheduled tiled masking.
		"dragonfly-tiled-sched": func() player.Scheme {
			return core.New(core.Options{Masking: core.MaskTiled, MaskScheduled: true, Name: "Dragonfly-TiledSched"})
		},
	}
}

// Sweep describes a full experiment: each scheme plays every
// (video, user, bandwidth) combination.
type Sweep struct {
	Videos     []*video.Manifest
	Users      []*trace.HeadTrace
	Bandwidths []*trace.BandwidthTrace
	Schemes    []string // registry keys (or Extra keys)

	// Extra supplies ad-hoc scheme factories (consulted before the
	// registry), for ablations of configurations the registry doesn't
	// name.
	Extra map[string]SchemeFactory

	// Decoder, when set, builds a per-session media-decode model.
	Decoder func() *decoder.Model

	// MaskInterpolation enables neighbor interpolation of masking holes
	// (§3.2 future work) in every session.
	MaskInterpolation bool

	Metric          quality.Metric
	PredictErrorDeg float64
	Workers         int // 0 = GOMAXPROCS

	// Obs, when non-nil, receives sweep throughput metrics: a sim_sessions
	// counter and a sim_session_ms wall-clock histogram.
	Obs *obs.Registry

	// TraceDir, when non-empty, writes one JSONL event trace per session to
	// <TraceDir>/<scheme key>_<index>.jsonl (the directory is created).
	TraceDir string

	// Fold, when non-nil, receives every finished session as soon as it
	// completes. It is invoked from a single collector goroutine, so fold
	// state needs no locking of its own. Unless RetainResults is also set,
	// Run returns nil Results and each session's metrics are dropped right
	// after the fold — sweep memory stays O(fold state), not O(sessions).
	// This is the streaming hook the population engine (internal/popsim)
	// builds its sketch rollups on.
	Fold FoldFunc

	// RetainResults forces the Results map to be built even when Fold is
	// set (both the stream and the retained map are wanted). It has no
	// effect when Fold is nil: plain sweeps always retain.
	RetainResults bool
}

// Session describes one finished session as handed to a Fold callback.
type Session struct {
	Key     string // sweep scheme key (registry or Extra)
	Index   int    // stable index in the sweep's (video, user, bandwidth) order
	Cohort  string // "<trace class>:<network class>" rollup key (docs/OBSERVABILITY.md)
	Metrics *player.Metrics
}

// FoldFunc consumes finished sessions as a sweep streams them out.
type FoldFunc func(Session)

// Stats reports a sweep's execution profile.
type Stats struct {
	Sessions       int           // sessions executed
	Wall           time.Duration // sweep wall-clock time
	SessionsPerSec float64       // throughput (0 when Wall is 0)
}

// Results maps scheme display name to its session metrics, in a stable
// (video, user, bandwidth) order.
type Results map[string][]*player.Metrics

// Run executes the sweep.
func Run(sw Sweep) (Results, error) {
	res, _, err := RunWithStats(sw)
	return res, err
}

// RunWithStats executes the sweep and also reports its execution profile
// (session count, wall time, throughput).
func RunWithStats(sw Sweep) (Results, Stats, error) {
	started := time.Now()
	res, sessions, err := run(sw)
	stats := Stats{Wall: time.Since(started), Sessions: sessions}
	if secs := stats.Wall.Seconds(); secs > 0 {
		stats.SessionsPerSec = float64(stats.Sessions) / secs
	}
	if err == nil {
		sw.Obs.Counter("sim_sessions").Add(int64(stats.Sessions))
		sw.Obs.Gauge("sim_sessions_per_sec").Set(stats.SessionsPerSec)
	}
	return res, stats, err
}

func run(sw Sweep) (Results, int, error) {
	reg := Registry()
	type job struct {
		scheme  string
		factory SchemeFactory
		cfg     player.Config
		idx     int
	}
	var jobs []job
	perScheme := len(sw.Videos) * len(sw.Users) * len(sw.Bandwidths)
	if perScheme == 0 {
		return nil, 0, fmt.Errorf("sim: sweep needs videos, users and bandwidth traces")
	}
	if sw.TraceDir != "" {
		if err := os.MkdirAll(sw.TraceDir, 0o755); err != nil {
			return nil, 0, fmt.Errorf("sim: trace dir: %w", err)
		}
	}
	// Results are keyed by the scheme's display name, so two sweep keys
	// resolving to the same name (e.g. an Extra factory shadowing a registry
	// scheme) would silently overwrite each other's sessions. Detect the
	// collision up front, before any session runs.
	keyByName := map[string]string{}
	for _, key := range sw.Schemes {
		factory, ok := sw.Extra[key]
		if !ok {
			factory, ok = reg[key]
		}
		if !ok {
			return nil, 0, fmt.Errorf("sim: unknown scheme %q", key)
		}
		name := factory().Name()
		if prev, ok := keyByName[name]; ok && prev != key {
			return nil, 0, fmt.Errorf("sim: scheme keys %q and %q share display name %q; their results would overwrite each other", prev, key, name)
		}
		keyByName[name] = key
		i := 0
		for _, v := range sw.Videos {
			for _, u := range sw.Users {
				for _, b := range sw.Bandwidths {
					jobs = append(jobs, job{
						scheme:  key,
						factory: factory,
						idx:     i,
						cfg: player.Config{
							Manifest:         v,
							Head:             u,
							Bandwidth:        b,
							Metric:           sw.Metric,
							PredictErrorDeg:  sw.PredictErrorDeg,
							PredictErrorSeed: int64(i + 1),
						},
					})
					i++
				}
			}
		}
	}

	// Pre-warm the process-wide shared tables once per manifest before the
	// workers start: the overlap tables and score tables are built lazily
	// behind sync.Once, so building them here keeps every worker on the
	// read-only fast path instead of stampeding the same construction.
	for _, v := range sw.Videos {
		g := v.Grid()
		tab := geom.SharedTable(g, geom.TableParams{})
		geom.DefaultRoIs.Planes(tab)
		tab.Plane(geom.DefaultViewport.RadiusDeg)
		quality.Scores(v, sw.Metric)
	}

	workers := sw.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type outcome struct {
		scheme string
		cohort string
		idx    int
		met    *player.Metrics
		err    error
	}
	jobCh := make(chan job)
	// The collector drains outcomes as they finish, so the channel only
	// needs to absorb scheduling jitter — not hold every session, which is
	// what the streamed Fold path exists to avoid.
	outCh := make(chan outcome, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				cfg := j.cfg
				cfg.Scheme = j.factory()
				if sw.Decoder != nil {
					cfg.Decoder = sw.Decoder()
				}
				cfg.MaskInterpolation = sw.MaskInterpolation
				if sw.Obs != nil {
					if o, ok := cfg.Scheme.(interface{ SetObs(*obs.Registry) }); ok {
						o.SetObs(sw.Obs)
					}
				}
				if sw.TraceDir != "" {
					cfg.Trace = obs.NewTrace(0)
				}
				sessionStart := time.Now()
				met, err := player.Run(cfg)
				sw.Obs.Histogram("sim_session_ms").Observe(float64(time.Since(sessionStart)) / float64(time.Millisecond))
				if err == nil && sw.TraceDir != "" {
					err = writeSessionTrace(sw.TraceDir, j.scheme, j.idx, cfg.Trace)
				}
				cohort := j.cfg.Head.ClassName() + ":" + j.cfg.Bandwidth.NetClass()
				outCh <- outcome{scheme: j.scheme, cohort: cohort, idx: j.idx, met: met, err: err}
			}
		}()
	}

	// One collector goroutine folds and/or retains outcomes as they land.
	// Fold therefore runs single-threaded (the documented contract), and
	// with a fold-only sweep nothing accumulates beyond the fold state.
	retain := sw.Fold == nil || sw.RetainResults
	var (
		collectErr  error
		sessions    int
		byScheme    = map[string][]outcome{}
		collectDone = make(chan struct{})
	)
	go func() {
		defer close(collectDone)
		for o := range outCh {
			if o.err != nil {
				if collectErr == nil {
					collectErr = o.err
				}
				continue
			}
			if collectErr != nil {
				continue // error pending; drop the rest
			}
			sessions++
			if sw.Fold != nil {
				sw.Fold(Session{Key: o.scheme, Index: o.idx, Cohort: o.cohort, Metrics: o.met})
			}
			if retain {
				byScheme[o.scheme] = append(byScheme[o.scheme], o)
			}
		}
	}()
	for _, j := range jobs {
		jobCh <- j
	}
	close(jobCh)
	wg.Wait()
	close(outCh)
	<-collectDone

	if collectErr != nil {
		return nil, 0, collectErr
	}
	if !retain {
		return nil, sessions, nil
	}
	res := Results{}
	for key, outs := range byScheme {
		sort.Slice(outs, func(a, b int) bool { return outs[a].idx < outs[b].idx })
		name := outs[0].met.SchemeName
		if _, dup := res[name]; dup {
			return nil, 0, fmt.Errorf("sim: duplicate display name %q (key %q)", name, key)
		}
		mets := make([]*player.Metrics, len(outs))
		for i, o := range outs {
			mets[i] = o.met
		}
		res[name] = mets
	}
	return res, sessions, nil
}

// writeSessionTrace dumps one session's event trace as JSONL.
func writeSessionTrace(dir, key string, idx int, tr *obs.Trace) (err error) {
	path := filepath.Join(dir, fmt.Sprintf("%s_%04d.jsonl", key, idx))
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("sim: session trace: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("sim: session trace %s: %w", path, cerr)
		}
	}()
	if err := tr.WriteJSONL(f); err != nil {
		return fmt.Errorf("sim: session trace %s: %w", path, err)
	}
	return nil
}

// PooledFrameScores concatenates every session's per-frame quality scores —
// the "distribution of PSNR across viewports of all sessions" the paper's
// CDFs plot.
func PooledFrameScores(sessions []*player.Metrics) []float64 {
	var out []float64
	for _, s := range sessions {
		out = append(out, s.FrameScore...)
	}
	return out
}

// SessionStat extracts one scalar per session.
func SessionStat(sessions []*player.Metrics, f func(*player.Metrics) float64) []float64 {
	out := make([]float64, len(sessions))
	for i, s := range sessions {
		out[i] = f(s)
	}
	return out
}
