package obs

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns the admin endpoint: a mux serving
//
//	/metrics       the registry snapshot as JSON
//	/healthz       a liveness probe
//	/debug/pprof/  the standard Go profiling endpoints
//
// It is meant for a loopback or otherwise trusted listener; it performs no
// authentication.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := reg.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeAdmin listens on addr and serves the admin endpoint until ctx is
// done, then shuts the listener down. It returns the bound address (useful
// with ":0") and a channel that yields the server's exit error.
func ServeAdmin(ctx context.Context, addr string, reg *Registry) (net.Addr, <-chan error, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("obs: admin listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(reg), ReadHeaderTimeout: 5 * time.Second}
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutCtx)
	}()
	go func() {
		err := srv.Serve(l)
		if err == http.ErrServerClosed {
			err = nil
		}
		done <- err
	}()
	return l.Addr(), done, nil
}
