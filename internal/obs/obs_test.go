package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sent")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("sent") != c {
		t.Fatal("second lookup returned a different counter")
	}
	g := r.Gauge("rate")
	g.Set(3.5)
	if got := g.Value(); got != 3.5 {
		t.Fatalf("gauge = %v, want 3.5", got)
	}
}

func TestHistogramBucketsAndStats(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", 1, 10, 100)
	for _, v := range []float64{0.5, 5, 50, 500, 7} {
		h.Observe(v)
	}
	h.Observe(math.NaN()) // ignored
	snap := r.Snapshot().Histograms["lat"]
	if snap.Count != 5 {
		t.Fatalf("count = %d, want 5", snap.Count)
	}
	if want := []int64{1, 2, 1, 1}; len(snap.Buckets) != len(want) {
		t.Fatalf("buckets = %v, want %v", snap.Buckets, want)
	} else {
		for i := range want {
			if snap.Buckets[i] != want[i] {
				t.Fatalf("buckets = %v, want %v", snap.Buckets, want)
			}
		}
	}
	if snap.Min != 0.5 || snap.Max != 500 {
		t.Fatalf("min/max = %v/%v, want 0.5/500", snap.Min, snap.Max)
	}
	if got, want := snap.Sum, 562.5; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

func TestEmptyHistogramSnapshotHasNoInfinities(t *testing.T) {
	r := NewRegistry()
	r.Histogram("empty")
	snap := r.Snapshot().Histograms["empty"]
	if snap.Count != 0 || snap.Min != 0 || snap.Max != 0 || snap.Mean != 0 {
		t.Fatalf("empty histogram snapshot = %+v, want zeros", snap)
	}
	// The snapshot must survive JSON encoding (no +Inf values).
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("marshal empty histogram: %v", err)
	}
}

func TestNilRegistryAndMetricsAreSafe(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(3)
	r.Gauge("y").Set(1)
	r.Histogram("z").Observe(2)
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
	var c *Counter
	c.Inc()
	var g *Gauge
	g.Set(1)
	var h *Histogram
	h.Observe(1)
	var tr *Trace
	tr.Add(Event{Kind: EvStall})
	tr.Record(time.Second, EvFetch, 10)
	if tr.Len() != 0 || tr.Events() != nil || tr.Dropped() != 0 {
		t.Fatal("nil trace should be inert")
	}
	if err := tr.WriteJSONL(io.Discard); err != nil {
		t.Fatalf("nil trace WriteJSONL: %v", err)
	}
}

// TestConcurrentUpdatesAndSnapshots is the race-detector test the issue
// asks for: counters, gauges and histograms hammered from many goroutines
// while snapshots are taken mid-write.
func TestConcurrentUpdatesAndSnapshots(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	snapDone := make(chan struct{})
	go func() { // snapshot during writes
		defer close(snapDone)
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.Snapshot()
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("hits").Inc()
				r.Counter(fmt.Sprintf("hits_%d", w%2)).Inc()
				r.Gauge("level").Set(float64(i))
				r.Histogram("sizes").Observe(float64(i % 100))
			}
		}(w)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr := NewTrace(64)
			for i := 0; i < perWorker; i++ {
				tr.Record(time.Duration(i), EvFetch, int64(i))
			}
			if tr.Len() != 64 {
				t.Errorf("trace len = %d, want 64", tr.Len())
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-snapDone

	snap := r.Snapshot()
	if got := snap.Counters["hits"]; got != workers*perWorker {
		t.Fatalf("hits = %d, want %d", got, workers*perWorker)
	}
	hs := snap.Histograms["sizes"]
	if hs.Count != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", hs.Count, workers*perWorker)
	}
	var bucketTotal int64
	for _, b := range hs.Buckets {
		bucketTotal += b
	}
	if bucketTotal != hs.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, hs.Count)
	}
}

func TestTraceRingKeepsNewestAndCountsDropped(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 10; i++ {
		tr.Record(time.Duration(i)*time.Millisecond, EvFetch, int64(i))
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	evs := tr.Events()
	for i, e := range evs {
		if want := int64(6 + i); e.N != want {
			t.Fatalf("event %d N = %d, want %d (events: %+v)", i, e.N, want, evs)
		}
	}
}

func TestTraceWriteJSONL(t *testing.T) {
	tr := NewTrace(8)
	tr.Add(Event{At: 1500 * time.Millisecond, Kind: EvStall})
	tr.Add(Event{At: 2 * time.Second, Kind: EvFetch, Chunk: 3, Tile: 7, N: 4096})
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(lines), buf.String())
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[1]), &e); err != nil {
		t.Fatal(err)
	}
	if e.Kind != EvFetch || e.Chunk != 3 || e.Tile != 7 || e.N != 4096 || e.AtMS != 2000 {
		t.Fatalf("decoded event = %+v", e)
	}
}

func TestAdminHandlerMetricsAndPprof(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("server_primary_sent").Add(42)
	reg.Histogram("tile_bytes", 10, 100).Observe(50)
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode /metrics: %v", err)
	}
	if snap.Counters["server_primary_sent"] != 42 {
		t.Fatalf("snapshot counters = %+v", snap.Counters)
	}
	if snap.Histograms["tile_bytes"].Count != 1 {
		t.Fatalf("snapshot histograms = %+v", snap.Histograms)
	}

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/healthz"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status = %d", path, resp.StatusCode)
		}
	}
}

func TestServeAdminLifecycle(t *testing.T) {
	reg := NewRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	addr, done, err := ServeAdmin(ctx, "127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("admin server exit: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("admin server did not shut down")
	}
}
