// Package obs is the observability layer: a concurrency-safe metrics
// registry (counters, gauges, histograms) with JSON snapshot export, a
// bounded per-session event trace dumpable as JSONL, and an admin HTTP
// handler exposing the registry and net/http/pprof. It is stdlib-only and
// designed for hot paths: every update is a handful of atomic operations,
// and all entry points are nil-safe so instrumented code needs no "is
// observability on?" branches.
package obs

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. Nil-safe.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count. Nil-safe (0).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can go up and down (queue depths, rates).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last stored value. Nil-safe (0).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates observations into fixed buckets, tracking count,
// sum, min and max. Updates are lock-free; Snapshot may run concurrently
// with writers (it sees a near-point-in-time view: counts may be ahead of
// or behind the sum by in-flight observations, never torn values).
type Histogram struct {
	bounds  []float64 // ascending upper bounds; immutable after creation
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomicFloat
	min     atomicMin
	max     atomicMax
}

// DefaultHistogramBounds is an exponential ladder that suits most of the
// quantities the repo observes (bytes, milliseconds, queue lengths).
var DefaultHistogramBounds = []float64{
	1, 2.5, 5, 10, 25, 50, 100, 250, 500,
	1e3, 2.5e3, 5e3, 1e4, 2.5e4, 5e4, 1e5, 2.5e5, 5e5, 1e6,
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultHistogramBounds
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	h := &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
	h.min.bits.Store(math.Float64bits(math.Inf(1)))
	h.max.bits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one sample. NaN samples are ignored. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	// Buckets are few (tens); linear scan beats binary search in practice.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
	h.min.observe(v)
	h.max.observe(v)
}

// Count returns the number of observations. Nil-safe (0).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// atomicFloat is a CAS-looped float64 accumulator.
type atomicFloat struct {
	bits atomic.Uint64
}

func (a *atomicFloat) add(v float64) {
	for {
		old := a.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if a.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (a *atomicFloat) load() float64 { return math.Float64frombits(a.bits.Load()) }

type atomicMin struct {
	bits atomic.Uint64
}

func (a *atomicMin) observe(v float64) {
	for {
		old := a.bits.Load()
		if v >= math.Float64frombits(old) {
			return
		}
		if a.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

type atomicMax struct {
	bits atomic.Uint64
}

func (a *atomicMax) observe(v float64) {
	for {
		old := a.bits.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if a.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Registry names and owns a set of metrics. The zero value is not usable;
// call NewRegistry. All methods are nil-safe: a nil registry hands out
// detached metrics that accept updates but appear in no snapshot, so
// instrumented components run unchanged with observability off.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return new(Counter)
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return new(Gauge)
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use with the
// given bucket upper bounds (DefaultHistogramBounds when none are given).
// Bounds are fixed at creation; later calls with different bounds return
// the existing histogram.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return newHistogram(bounds)
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// HistogramSnapshot is the exported state of one histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	// Buckets holds one cumulative count per upper bound in Bounds, plus a
	// final overflow entry (observations above the last bound).
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"`
}

// Snapshot is a point-in-time JSON-marshalable view of a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot exports every metric. Safe to call concurrently with updates.
// Nil-safe (empty snapshot).
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		hs := HistogramSnapshot{
			Count:   h.count.Load(),
			Sum:     h.sum.load(),
			Bounds:  h.bounds,
			Buckets: make([]int64, len(h.buckets)),
		}
		for i := range h.buckets {
			hs.Buckets[i] = h.buckets[i].Load()
		}
		if hs.Count > 0 {
			hs.Mean = hs.Sum / float64(hs.Count)
			hs.Min = math.Float64frombits(h.min.bits.Load())
			hs.Max = math.Float64frombits(h.max.bits.Load())
		}
		snap.Histograms[name] = hs
	}
	return snap
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
