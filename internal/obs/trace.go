package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// EventKind labels one session event. The set mirrors the lifecycle the
// paper's §4 analysis reasons about: what was fetched, what was skipped,
// what the viewer actually saw, and how the connection behaved.
type EventKind string

// Session event kinds.
const (
	EvDecide    EventKind = "decide"    // scheme emitted a fetch list (N = items)
	EvFetch     EventKind = "fetch"     // chunk/tile transfer completed (N = bytes)
	EvSkip      EventKind = "skip"      // frame rendered with >= 1 primary-skipped tile
	EvMask      EventKind = "mask"      // frame rendered >= 1 tile from the masking stream
	EvBlank     EventKind = "blank"     // frame rendered >= 1 fully blank tile
	EvStall     EventKind = "stall"     // playback entered a rebuffering stall
	EvStartup   EventKind = "startup"   // first frame rendered (N = delay in ms)
	EvResume    EventKind = "resume"    // stall ended (N = stall length in ms)
	EvReconnect EventKind = "reconnect" // link re-established (N = restored dedup entries)
	EvOutage    EventKind = "outage"    // link lost; reconnector engaged
	EvLinkDead  EventKind = "linkdead"  // reconnect budget exhausted or server goodbye
	EvCorrupt   EventKind = "corrupt"   // tile payload failed checksum; dropped (N = bytes)
	EvBusy      EventKind = "busy"      // server fast-rejected the handshake (admission control)
	EvSession   EventKind = "session"   // trace header: identifies the session's video and cohort
	EvQuality   EventKind = "quality"   // frame rendered (N = viewport quality in centi-dB)
	EvShed      EventKind = "shed"      // server shed queued items from an install (N = payload bytes)
)

// TraceSchemaVersion is the JSONL trace format version stamped into every
// event ("v"). Ingest consumers reject events carrying any other version;
// see docs/OBSERVABILITY.md for the versioning policy.
const TraceSchemaVersion = 1

// Event is one entry of a session trace. At is session-relative time.
type Event struct {
	// V is the trace schema version; Add stamps TraceSchemaVersion.
	V     int           `json:"v"`
	At    time.Duration `json:"-"`
	AtMS  float64       `json:"t_ms"` // At in milliseconds, for the JSONL form
	Kind  EventKind     `json:"ev"`
	Chunk int           `json:"chunk,omitempty"`
	Tile  int           `json:"tile,omitempty"`
	// N carries the event's magnitude: bytes for EvFetch, list length for
	// EvDecide, milliseconds for EvStartup/EvResume, centi-dB for
	// EvQuality, etc.
	N int64 `json:"n,omitempty"`
	// Video and Cohort identify the session on its EvSession header line
	// (empty on every other event). Cohort is the fleet-rollup aggregation
	// key, conventionally "<trace class>:<network class>".
	Video  string `json:"video,omitempty"`
	Cohort string `json:"cohort,omitempty"`
}

// SessionEvent builds the EvSession trace header identifying a session's
// video and rollup cohort. It is always the first event recorded.
func SessionEvent(videoID, cohort string) Event {
	return Event{Kind: EvSession, Video: videoID, Cohort: cohort}
}

// DefaultTraceCap bounds a session trace when NewTrace is given 0.
const DefaultTraceCap = 8192

// Trace is a bounded per-session event log. When full, the oldest events
// are overwritten (a ring), and Dropped counts the overwritten entries so
// truncation is visible rather than silent. All methods are nil-safe, so a
// session without tracing pays one branch per event.
type Trace struct {
	mu      sync.Mutex
	events  []Event
	head    int // index of the oldest event once the ring has wrapped
	full    bool
	dropped int64
}

// NewTrace creates a trace holding at most capacity events (0 = DefaultTraceCap).
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Trace{events: make([]Event, 0, capacity)}
}

// Add appends one event, evicting the oldest when the trace is full. Nil-safe.
func (t *Trace) Add(e Event) {
	if t == nil {
		return
	}
	e.V = TraceSchemaVersion
	e.AtMS = float64(e.At) / float64(time.Millisecond)
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.events) < cap(t.events) && !t.full {
		t.events = append(t.events, e)
		return
	}
	t.full = true
	t.events[t.head] = e
	t.head = (t.head + 1) % len(t.events)
	t.dropped++
}

// Record is shorthand for Add with the common fields.
func (t *Trace) Record(at time.Duration, kind EventKind, n int64) {
	t.Add(Event{At: at, Kind: kind, N: n})
}

// Len returns the number of retained events. Nil-safe (0).
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns how many events were evicted by the ring bound. Nil-safe (0).
func (t *Trace) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns the retained events in chronological order. Nil-safe (nil).
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.events))
	out = append(out, t.events[t.head:]...)
	out = append(out, t.events[:t.head]...)
	return out
}

// WriteJSONL dumps the trace as one JSON object per line. Nil-safe (no-op).
func (t *Trace) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range t.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}
