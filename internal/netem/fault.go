package netem

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"sort"
	"strconv"
	"sync"
	"time"
)

// FaultKind enumerates the injectable network faults: the outages and
// disconnects real cellular traces contain but pure bandwidth shaping
// cannot reproduce (paper §4.5 uses Mahimahi the same way).
type FaultKind uint8

const (
	// FaultBlackout zeroes the link bandwidth for Duration.
	FaultBlackout FaultKind = iota
	// FaultDisconnect hard-closes the live connection at At.
	FaultDisconnect
	// FaultLatencySpike adds ExtraLatency to writes during Duration.
	FaultLatencySpike
	// FaultBitFlip corrupts one random bit of the first write at or after
	// At — the in-flight corruption the wire CRC must catch. One-shot.
	FaultBitFlip
	// FaultTruncate drops the second half of the first write at or after At
	// while reporting full success, desynchronizing the stream. One-shot.
	FaultTruncate
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultBlackout:
		return "blackout"
	case FaultDisconnect:
		return "disconnect"
	case FaultLatencySpike:
		return "spike"
	case FaultBitFlip:
		return "bitflip"
	case FaultTruncate:
		return "truncate"
	}
	return fmt.Sprintf("faultkind(%d)", uint8(k))
}

// ParseFaultKind parses the CSV spelling of a fault kind.
func ParseFaultKind(s string) (FaultKind, error) {
	switch s {
	case "blackout":
		return FaultBlackout, nil
	case "disconnect":
		return FaultDisconnect, nil
	case "spike":
		return FaultLatencySpike, nil
	case "bitflip":
		return FaultBitFlip, nil
	case "truncate":
		return FaultTruncate, nil
	}
	return 0, fmt.Errorf("netem: unknown fault kind %q", s)
}

// FaultEvent is one scheduled fault on the link timeline.
type FaultEvent struct {
	At           time.Duration // offset from the link epoch
	Kind         FaultKind
	Duration     time.Duration // blackout/spike window length
	ExtraLatency time.Duration // spike only: added per write
}

// FaultSchedule is a replayable fault script: the same schedule run against
// every scheme makes fault-tolerance results comparable.
type FaultSchedule struct {
	Events []FaultEvent
}

// Disconnects counts the hard-disconnect events in the schedule.
func (fs *FaultSchedule) Disconnects() int {
	n := 0
	for _, e := range fs.Events {
		if e.Kind == FaultDisconnect {
			n++
		}
	}
	return n
}

// Corruptions counts the payload-corruption events (bit flips and
// truncations) in the schedule.
func (fs *FaultSchedule) Corruptions() int {
	n := 0
	for _, e := range fs.Events {
		if e.Kind == FaultBitFlip || e.Kind == FaultTruncate {
			n++
		}
	}
	return n
}

// sorted returns the events ordered by At.
func (fs *FaultSchedule) sorted() []FaultEvent {
	evs := append([]FaultEvent(nil), fs.Events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	return evs
}

// ReadFaultCSV parses a fault schedule. The format (EXPERIMENTS.md) is
//
//	at_s,kind,duration_s,extra_latency_ms
//	1.5,disconnect,0,0
//	4.0,blackout,2.0,0
//	8.2,spike,1.0,300
//
// with an optional header row; kind is blackout, disconnect, or spike.
func ReadFaultCSV(r io.Reader) (*FaultSchedule, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	fs := &FaultSchedule{}
	for line := 1; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("netem: fault csv: %w", err)
		}
		if line == 1 && rec[0] == "at_s" {
			continue
		}
		at, err := strconv.ParseFloat(rec[0], 64)
		if err != nil || at < 0 {
			return nil, fmt.Errorf("netem: fault csv line %d: bad at %q", line, rec[0])
		}
		kind, err := ParseFaultKind(rec[1])
		if err != nil {
			return nil, fmt.Errorf("netem: fault csv line %d: %w", line, err)
		}
		dur, err := strconv.ParseFloat(rec[2], 64)
		if err != nil || dur < 0 {
			return nil, fmt.Errorf("netem: fault csv line %d: bad duration %q", line, rec[2])
		}
		lat, err := strconv.ParseFloat(rec[3], 64)
		if err != nil || lat < 0 {
			return nil, fmt.Errorf("netem: fault csv line %d: bad latency %q", line, rec[3])
		}
		// Round rather than truncate: 8.2 s is not representable exactly in
		// float64 and must not come back as 8.199999999 s.
		fs.Events = append(fs.Events, FaultEvent{
			At:           time.Duration(math.Round(at * float64(time.Second))),
			Kind:         kind,
			Duration:     time.Duration(math.Round(dur * float64(time.Second))),
			ExtraLatency: time.Duration(math.Round(lat * float64(time.Millisecond))),
		})
	}
	return fs, nil
}

// WriteCSV emits the schedule in the ReadFaultCSV format, with header.
func (fs *FaultSchedule) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"at_s", "kind", "duration_s", "extra_latency_ms"}); err != nil {
		return err
	}
	for _, e := range fs.sorted() {
		rec := []string{
			strconv.FormatFloat(e.At.Seconds(), 'g', -1, 64),
			e.Kind.String(),
			strconv.FormatFloat(e.Duration.Seconds(), 'g', -1, 64),
			strconv.FormatFloat(float64(e.ExtraLatency)/float64(time.Millisecond), 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// FaultGenParams seeds a random fault schedule.
type FaultGenParams struct {
	Seed     int64
	Duration time.Duration // session span the events are spread over

	Disconnects   int
	Blackouts     int
	BlackoutMean  time.Duration // mean blackout length (default 1 s)
	Spikes        int
	SpikeLatency  time.Duration // added latency per spike (default 200 ms)
	SpikeDuration time.Duration // spike window (default 1 s)
	BitFlips      int           // one-shot payload corruptions
	Truncates     int           // one-shot half-write truncations
}

// GenerateFaults builds a seeded schedule: identical seeds replay the same
// fault script, so every scheme in an experiment faces the same outages.
func GenerateFaults(p FaultGenParams) *FaultSchedule {
	rng := rand.New(rand.NewSource(p.Seed))
	if p.BlackoutMean <= 0 {
		p.BlackoutMean = time.Second
	}
	if p.SpikeLatency <= 0 {
		p.SpikeLatency = 200 * time.Millisecond
	}
	if p.SpikeDuration <= 0 {
		p.SpikeDuration = time.Second
	}
	at := func() time.Duration {
		return time.Duration(rng.Float64() * float64(p.Duration))
	}
	fs := &FaultSchedule{}
	for i := 0; i < p.Disconnects; i++ {
		fs.Events = append(fs.Events, FaultEvent{At: at(), Kind: FaultDisconnect})
	}
	for i := 0; i < p.Blackouts; i++ {
		d := time.Duration((0.5 + rng.Float64()) * float64(p.BlackoutMean))
		fs.Events = append(fs.Events, FaultEvent{At: at(), Kind: FaultBlackout, Duration: d})
	}
	for i := 0; i < p.Spikes; i++ {
		fs.Events = append(fs.Events, FaultEvent{
			At: at(), Kind: FaultLatencySpike,
			Duration: p.SpikeDuration, ExtraLatency: p.SpikeLatency,
		})
	}
	for i := 0; i < p.BitFlips; i++ {
		fs.Events = append(fs.Events, FaultEvent{At: at(), Kind: FaultBitFlip})
	}
	for i := 0; i < p.Truncates; i++ {
		fs.Events = append(fs.Events, FaultEvent{At: at(), Kind: FaultTruncate})
	}
	fs.Events = fs.sorted()
	return fs
}

// FaultLink injects a scheduled fault script into connections built on top
// of a shaped Link. The timeline is anchored at the first wrapped
// connection and shared by every subsequent one, so the script replays
// identically across schemes, and each disconnect event fires exactly once
// — against whichever connection is live at that instant — which is what
// exercises a reconnecting client end to end.
type FaultLink struct {
	Link     Link
	Schedule *FaultSchedule
	// Seed feeds the corruption RNG (which bit a FaultBitFlip flips), so
	// fault scripts replay byte-identically. Zero is a valid seed.
	Seed int64

	mu      sync.Mutex
	armed   bool
	start   time.Time
	current net.Conn
	timers  []*time.Timer
	fired   map[int]bool // one-shot corruption events already applied
	rng     *rand.Rand
}

// Wrap shapes inner with the link and attaches it to the fault timeline as
// the live connection.
func (fl *FaultLink) Wrap(inner net.Conn) net.Conn {
	fc := &faultConn{Conn: NewConn(inner, fl.Link), fl: fl}
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if !fl.armed {
		fl.armed = true
		fl.start = time.Now()
		if fl.Schedule != nil {
			for _, ev := range fl.Schedule.Events {
				if ev.Kind != FaultDisconnect {
					continue
				}
				fl.timers = append(fl.timers, time.AfterFunc(ev.At, fl.disconnectCurrent))
			}
		}
	}
	fl.current = fc
	return fc
}

// Pipe returns an in-memory client/server pair whose server side is shaped
// and fault-injected; successive calls share the fault timeline, modelling
// reconnections over the same faulty path.
func (fl *FaultLink) Pipe() (client, server net.Conn) {
	c, s := net.Pipe()
	return c, fl.Wrap(s)
}

// Stop cancels any pending fault timers (test cleanup).
func (fl *FaultLink) Stop() {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	for _, t := range fl.timers {
		t.Stop()
	}
	fl.timers = nil
}

// disconnectCurrent hard-closes whichever connection is live right now.
func (fl *FaultLink) disconnectCurrent() {
	fl.mu.Lock()
	c := fl.current
	fl.current = nil
	fl.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

// writeDelay is the stall a write starting now must absorb: the remainder
// of any active blackout window plus any active latency spikes.
func (fl *FaultLink) writeDelay() time.Duration {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if !fl.armed || fl.Schedule == nil {
		return 0
	}
	el := time.Since(fl.start)
	var d time.Duration
	for _, ev := range fl.Schedule.Events {
		switch ev.Kind {
		case FaultBlackout:
			if el >= ev.At && el < ev.At+ev.Duration {
				if rem := ev.At + ev.Duration - el; rem > d {
					d = rem
				}
			}
		case FaultLatencySpike:
			if el >= ev.At && el < ev.At+ev.Duration {
				d += ev.ExtraLatency
			}
		}
	}
	return d
}

// corruptWrite applies any due one-shot corruption event to p. It returns
// the buffer to actually transmit and the byte count to report to the
// writer (-1 meaning "whatever the link wrote"): a truncation transmits
// half the buffer but reports full success, exactly the silent data loss a
// checksummed stream must surface.
func (fl *FaultLink) corruptWrite(p []byte) ([]byte, int) {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if !fl.armed || fl.Schedule == nil || len(p) == 0 {
		return p, -1
	}
	el := time.Since(fl.start)
	for i, ev := range fl.Schedule.Events {
		if ev.Kind != FaultBitFlip && ev.Kind != FaultTruncate {
			continue
		}
		if fl.fired[i] || el < ev.At {
			continue
		}
		if fl.fired == nil {
			fl.fired = make(map[int]bool)
		}
		fl.fired[i] = true
		if ev.Kind == FaultTruncate {
			return p[:len(p)/2], len(p)
		}
		if fl.rng == nil {
			fl.rng = rand.New(rand.NewSource(fl.Seed))
		}
		buf := append([]byte(nil), p...)
		bit := fl.rng.Intn(len(buf) * 8)
		buf[bit/8] ^= 1 << (bit % 8)
		return buf, -1
	}
	return p, -1
}

// faultConn applies the fault timeline on top of a shaped connection.
type faultConn struct {
	net.Conn // the shaped *Conn
	fl       *FaultLink
}

// Write stalls through blackout windows and latency spikes, applies any due
// corruption, then paces the bytes through the shaped link.
func (c *faultConn) Write(p []byte) (int, error) {
	if d := c.fl.writeDelay(); d > 0 {
		time.Sleep(d)
	}
	buf, report := c.fl.corruptWrite(p)
	n, err := c.Conn.Write(buf)
	if err != nil || report < 0 {
		return n, err
	}
	return report, nil
}

// FaultListener wraps accepted connections with the same fault link, so a
// TCP server can be exercised under a replayable fault script.
type FaultListener struct {
	net.Listener
	FL *FaultLink
}

// Accept waits for the next connection and attaches it to the fault link.
func (l *FaultListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.FL.Wrap(c), nil
}
