package netem

import (
	"io"
	"net"
	"testing"
	"time"

	"dragonfly/internal/trace"
)

// drain reads everything from r until EOF, returning total bytes.
func drain(t *testing.T, r io.Reader, done chan<- int) {
	t.Helper()
	total := 0
	buf := make([]byte, 32<<10)
	for {
		n, err := r.Read(buf)
		total += n
		if err != nil {
			done <- total
			return
		}
	}
}

func TestPacingMatchesTrace(t *testing.T) {
	// 8 Mbps flat: 1e6 bytes should take ~1 second.
	link := Link{Trace: &trace.BandwidthTrace{SamplePeriod: time.Second, Mbps: []float64{8}}}
	client, server := Pipe(link)
	done := make(chan int, 1)
	go drain(t, client, done)

	payload := make([]byte, 1_000_000)
	begin := time.Now()
	if _, err := server.Write(payload); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(begin)
	server.Close()
	if got := <-done; got != len(payload) {
		t.Fatalf("read %d bytes", got)
	}
	if elapsed < 900*time.Millisecond || elapsed > 1400*time.Millisecond {
		t.Errorf("1 MB at 8 Mbps took %v, want ~1s", elapsed)
	}
}

func TestPacingFollowsRateChange(t *testing.T) {
	// 4 Mbps then 40 Mbps: 1 MB = 0.5 MB in 1 s, remaining 0.5 MB in 0.1 s.
	link := Link{Trace: &trace.BandwidthTrace{SamplePeriod: time.Second, Mbps: []float64{4, 40}}}
	client, server := Pipe(link)
	done := make(chan int, 1)
	go drain(t, client, done)
	begin := time.Now()
	if _, err := server.Write(make([]byte, 1_000_000)); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(begin)
	server.Close()
	<-done
	if elapsed < time.Second || elapsed > 1600*time.Millisecond {
		t.Errorf("took %v, want ~1.1s", elapsed)
	}
}

func TestUnshapedPassThrough(t *testing.T) {
	client, server := Pipe(Link{})
	done := make(chan int, 1)
	go drain(t, client, done)
	begin := time.Now()
	if _, err := server.Write(make([]byte, 1_000_000)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(begin); elapsed > 300*time.Millisecond {
		t.Errorf("unshaped write took %v", elapsed)
	}
	server.Close()
	<-done
}

func TestLatencyDelaysFirstByte(t *testing.T) {
	link := Link{
		Trace:   &trace.BandwidthTrace{SamplePeriod: time.Second, Mbps: []float64{1000}},
		Latency: 150 * time.Millisecond,
	}
	client, server := Pipe(link)
	got := make(chan time.Duration, 1)
	begin := time.Now()
	go func() {
		buf := make([]byte, 16)
		_, _ = io.ReadFull(client, buf)
		got <- time.Since(begin)
	}()
	if _, err := server.Write(make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	if d := <-got; d < 140*time.Millisecond {
		t.Errorf("first byte after %v, want >= latency", d)
	}
	server.Close()
}

func TestWrapListenerTCP(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	link := Link{Trace: &trace.BandwidthTrace{SamplePeriod: time.Second, Mbps: []float64{16}}}
	l := WrapListener(inner, link)

	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	client, err := net.Dial("tcp", inner.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	server := <-accepted
	defer server.Close()

	done := make(chan int, 1)
	go drain(t, client, done)
	begin := time.Now()
	// 1 MB at 16 Mbps = ~0.5 s.
	if _, err := server.Write(make([]byte, 1_000_000)); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(begin)
	server.Close()
	if elapsed < 400*time.Millisecond || elapsed > time.Second {
		t.Errorf("1 MB at 16 Mbps over TCP took %v, want ~0.5s", elapsed)
	}
}

func TestConcurrentWritesShareLink(t *testing.T) {
	// Two goroutines writing concurrently must share the same virtual
	// transmission clock (total time ~ sum of bytes / rate).
	link := Link{Trace: &trace.BandwidthTrace{SamplePeriod: time.Second, Mbps: []float64{8}}}
	client, server := Pipe(link)
	done := make(chan int, 1)
	go drain(t, client, done)
	begin := time.Now()
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := server.Write(make([]byte, 500_000))
			errs <- err
		}()
	}
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(begin)
	server.Close()
	<-done
	if elapsed < 900*time.Millisecond {
		t.Errorf("concurrent writers finished in %v; link not shared", elapsed)
	}
}
