package netem

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestFaultCSVRoundTrip(t *testing.T) {
	fs := &FaultSchedule{Events: []FaultEvent{
		{At: 1500 * time.Millisecond, Kind: FaultDisconnect},
		{At: 4 * time.Second, Kind: FaultBlackout, Duration: 2 * time.Second},
		{At: 8200 * time.Millisecond, Kind: FaultLatencySpike, Duration: time.Second, ExtraLatency: 300 * time.Millisecond},
	}}
	var sb strings.Builder
	if err := fs.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFaultCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Events, fs.Events) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got.Events, fs.Events)
	}
	if got.Disconnects() != 1 {
		t.Errorf("Disconnects = %d", got.Disconnects())
	}
}

func TestReadFaultCSVWithoutHeader(t *testing.T) {
	fs, err := ReadFaultCSV(strings.NewReader("0.5,disconnect,0,0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Events) != 1 || fs.Events[0].Kind != FaultDisconnect || fs.Events[0].At != 500*time.Millisecond {
		t.Errorf("parsed %+v", fs.Events)
	}
}

func TestReadFaultCSVErrors(t *testing.T) {
	for _, bad := range []string{
		"x,disconnect,0,0\n",     // bad offset
		"-1,disconnect,0,0\n",    // negative offset
		"1,meteor,0,0\n",         // unknown kind
		"1,blackout,oops,0\n",    // bad duration
		"1,spike,1,-5\n",         // negative latency
		"1,spike,1\n",            // short record
		"at_s,kind\n1,spike,1\n", // short header
	} {
		if _, err := ReadFaultCSV(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestParseFaultKind(t *testing.T) {
	for _, k := range []FaultKind{FaultBlackout, FaultDisconnect, FaultLatencySpike} {
		got, err := ParseFaultKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseFaultKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseFaultKind("nope"); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestGenerateFaultsDeterministic(t *testing.T) {
	p := FaultGenParams{Seed: 9, Duration: 10 * time.Second, Disconnects: 3, Blackouts: 2, Spikes: 1}
	a, b := GenerateFaults(p), GenerateFaults(p)
	if !reflect.DeepEqual(a.Events, b.Events) {
		t.Error("same seed produced different schedules")
	}
	if a.Disconnects() != 3 {
		t.Errorf("Disconnects = %d", a.Disconnects())
	}
	if len(a.Events) != 6 {
		t.Errorf("generated %d events", len(a.Events))
	}
	for i := 1; i < len(a.Events); i++ {
		if a.Events[i].At < a.Events[i-1].At {
			t.Error("events not sorted")
		}
	}
	c := GenerateFaults(FaultGenParams{Seed: 10, Duration: 10 * time.Second, Disconnects: 3, Blackouts: 2, Spikes: 1})
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Error("different seeds produced identical schedules")
	}
}

func TestFaultLinkDisconnectClosesCurrentConn(t *testing.T) {
	fl := &FaultLink{Schedule: &FaultSchedule{Events: []FaultEvent{
		{At: 50 * time.Millisecond, Kind: FaultDisconnect},
	}}}
	defer fl.Stop()

	c, s := fl.Pipe()
	defer c.Close()
	// A read on the client side unblocks with an error once the timer
	// hard-closes the server side.
	errc := make(chan error, 1)
	go func() {
		buf := make([]byte, 1)
		_, err := c.Read(buf)
		errc <- err
	}()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("read succeeded across a disconnect")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("disconnect never fired")
	}
	_ = s

	// The next pipe over the same link works: the disconnect fired once.
	c2, s2 := fl.Pipe()
	defer c2.Close()
	defer s2.Close()
	go func() { _, _ = s2.Write([]byte("ok")) }()
	buf := make([]byte, 2)
	if _, err := c2.Read(buf); err != nil {
		t.Fatalf("reconnected pipe broken: %v", err)
	}
}

func TestFaultLinkBlackoutStallsWrites(t *testing.T) {
	fl := &FaultLink{Schedule: &FaultSchedule{Events: []FaultEvent{
		{At: 0, Kind: FaultBlackout, Duration: 300 * time.Millisecond},
	}}}
	defer fl.Stop()
	c, s := fl.Pipe()
	defer c.Close()
	defer s.Close()

	done := make(chan time.Duration, 1)
	go func() {
		buf := make([]byte, 2)
		start := time.Now()
		_, _ = c.Read(buf)
		done <- time.Since(start)
	}()
	if _, err := s.Write([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	if d := <-done; d < 200*time.Millisecond {
		t.Errorf("write crossed a blackout after only %v", d)
	}
}

func TestFaultLinkSpikeDelaysWrites(t *testing.T) {
	fl := &FaultLink{Schedule: &FaultSchedule{Events: []FaultEvent{
		{At: 0, Kind: FaultLatencySpike, Duration: time.Second, ExtraLatency: 150 * time.Millisecond},
	}}}
	defer fl.Stop()
	c, s := fl.Pipe()
	defer c.Close()
	defer s.Close()

	go func() {
		buf := make([]byte, 2)
		_, _ = c.Read(buf)
	}()
	start := time.Now()
	if _, err := s.Write([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 100*time.Millisecond {
		t.Errorf("spiked write returned after only %v", d)
	}
}

func TestFaultCSVCorruptionKindsRoundTrip(t *testing.T) {
	fs := &FaultSchedule{Events: []FaultEvent{
		{At: 500 * time.Millisecond, Kind: FaultBitFlip},
		{At: 2 * time.Second, Kind: FaultTruncate},
	}}
	var sb strings.Builder
	if err := fs.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFaultCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Events, fs.Events) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got.Events, fs.Events)
	}
	if got.Corruptions() != 2 {
		t.Errorf("Corruptions = %d", got.Corruptions())
	}
}

func TestGenerateFaultsCorruptions(t *testing.T) {
	fs := GenerateFaults(FaultGenParams{Seed: 3, Duration: 10 * time.Second, BitFlips: 2, Truncates: 1})
	if fs.Corruptions() != 3 {
		t.Fatalf("Corruptions = %d, want 3", fs.Corruptions())
	}
	flips, truncs := 0, 0
	for _, e := range fs.Events {
		switch e.Kind {
		case FaultBitFlip:
			flips++
		case FaultTruncate:
			truncs++
		}
		if e.At < 0 || e.At > 10*time.Second {
			t.Fatalf("event outside session span: %+v", e)
		}
	}
	if flips != 2 || truncs != 1 {
		t.Fatalf("flips=%d truncs=%d", flips, truncs)
	}
}

func TestFaultLinkBitFlipCorruptsOneWrite(t *testing.T) {
	fl := &FaultLink{
		Link:     Link{}, // unshaped
		Schedule: &FaultSchedule{Events: []FaultEvent{{At: 0, Kind: FaultBitFlip}}},
		Seed:     7,
	}
	defer fl.Stop()
	client, server := fl.Pipe()
	defer client.Close()
	defer server.Close()

	payload := make([]byte, 64) // all zeros
	go func() {
		server.Write(payload)
		server.Write(payload) // one-shot: the second write is clean
	}()
	buf := make([]byte, 64)
	readFull := func() []byte {
		got := buf[:0]
		for len(got) < 64 {
			n, err := client.Read(buf[len(got):64])
			if err != nil {
				t.Errorf("read: %v", err)
				return nil
			}
			got = buf[:len(got)+n]
		}
		return got
	}
	first := append([]byte(nil), readFull()...)
	second := readFull()
	diff := 0
	for _, b := range first {
		for ; b != 0; b &= b - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("first write has %d flipped bits, want exactly 1", diff)
	}
	for _, b := range second {
		if b != 0 {
			t.Fatalf("second write corrupted: % x", second)
		}
	}
}

func TestFaultLinkTruncateDropsHalfButReportsFull(t *testing.T) {
	fl := &FaultLink{
		Link:     Link{},
		Schedule: &FaultSchedule{Events: []FaultEvent{{At: 0, Kind: FaultTruncate}}},
	}
	defer fl.Stop()
	client, server := fl.Pipe()
	defer client.Close()

	payload := make([]byte, 32)
	wrote := make(chan int, 1)
	go func() {
		n, _ := server.Write(payload)
		wrote <- n
		server.Close()
	}()
	var got int
	buf := make([]byte, 64)
	for {
		n, err := client.Read(buf)
		got += n
		if err != nil {
			break
		}
	}
	if n := <-wrote; n != 32 {
		t.Errorf("truncated write reported %d bytes, want full 32", n)
	}
	if got != 16 {
		t.Errorf("received %d bytes, want the truncated 16", got)
	}
}
