// Package netem emulates a bandwidth-limited network path over real
// net.Conn connections — the role Mahimahi plays in the paper's testbed
// (§4.5). Writes through a shaped connection are paced so the delivered
// throughput follows a bandwidth trace, with optional propagation delay.
package netem

import (
	"net"
	"sync"
	"time"

	"dragonfly/internal/trace"
)

// Link describes the emulated path.
type Link struct {
	// Trace drives the available bandwidth over time (wrapping at its end).
	Trace *trace.BandwidthTrace
	// Latency is a fixed one-way propagation delay added to every byte.
	Latency time.Duration
}

// Conn wraps a net.Conn, pacing Write against the link's bandwidth trace.
// Reads pass through untouched, so shaping one direction means wrapping the
// connection on the sender of that direction.
type Conn struct {
	net.Conn
	link  Link
	start time.Time

	mu sync.Mutex
	// virtual is the transmission clock: the instant (relative to start)
	// at which the link finishes sending everything accepted so far.
	virtual time.Duration
}

// chunkSize is the pacing granularity: smaller chunks follow the trace more
// faithfully at the cost of more sleeps.
const chunkSize = 16 << 10

// NewConn wraps inner with the given link shaping.
func NewConn(inner net.Conn, link Link) *Conn {
	return &Conn{Conn: inner, link: link, start: time.Now()}
}

// Write paces p through the emulated link, then writes it to the inner
// connection.
func (c *Conn) Write(p []byte) (int, error) {
	if c.link.Trace == nil {
		return c.Conn.Write(p)
	}
	written := 0
	for written < len(p) {
		n := len(p) - written
		if n > chunkSize {
			n = chunkSize
		}
		c.mu.Lock()
		now := time.Since(c.start)
		if c.virtual < now {
			c.virtual = now
		}
		c.virtual += c.link.Trace.TimeToTransfer(float64(n), c.virtual)
		target := c.virtual
		c.mu.Unlock()

		if wait := target + c.link.Latency - time.Since(c.start); wait > 0 {
			time.Sleep(wait)
		}
		m, err := c.Conn.Write(p[written : written+n])
		written += m
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// Listener wraps accepted connections with link shaping (the shaping
// applies to the server's writes — the downstream direction a streaming
// workload cares about).
type Listener struct {
	net.Listener
	link Link
}

// WrapListener shapes every connection accepted from l.
func WrapListener(l net.Listener, link Link) *Listener {
	return &Listener{Listener: l, link: link}
}

// Accept waits for the next connection and wraps it.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return NewConn(c, l.link), nil
}

// Pipe returns an in-memory client/server connection pair whose
// server-to-client direction is shaped by the link. It is the unit-test
// substitute for a real shaped TCP path.
func Pipe(link Link) (client, server net.Conn) {
	c, s := net.Pipe()
	return c, NewConn(s, link)
}
