package netem

import (
	"net"
	"sync"
)

// PipeListener is an in-memory net.Listener whose connections come from
// its own Dial: each Dial hands the listener the server half of a shaped
// Pipe and returns the client half. It lets a whole multi-process
// topology — clients, balancer, servers — run inside one test process
// with netem shaping on every hop and no real sockets.
type PipeListener struct {
	link Link
	ch   chan net.Conn
	done chan struct{}
	once sync.Once
}

// NewPipeListener creates a listener whose server-to-client direction is
// shaped by link (the zero Link is unshaped).
func NewPipeListener(link Link) *PipeListener {
	return &PipeListener{link: link, ch: make(chan net.Conn), done: make(chan struct{})}
}

// Dial creates a connection pair, queues the server half for Accept, and
// returns the client half. It fails once the listener is closed.
func (l *PipeListener) Dial() (net.Conn, error) {
	client, server := Pipe(l.link)
	select {
	case l.ch <- server:
		return client, nil
	case <-l.done:
		client.Close()
		server.Close()
		return nil, net.ErrClosed
	}
}

// Accept waits for the next dialed connection.
func (l *PipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

// Close unblocks Accept and fails subsequent Dials.
func (l *PipeListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

// Addr implements net.Listener with a synthetic address.
func (l *PipeListener) Addr() net.Addr { return pipeAddr{} }

type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }
