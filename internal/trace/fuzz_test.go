package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadHeadCSV exercises the head-trace parser with arbitrary input: it
// must never panic, and anything it accepts must round-trip.
func FuzzReadHeadCSV(f *testing.F) {
	var good bytes.Buffer
	_ = WriteHeadCSV(&good, GenerateHead(HeadGenParams{UserID: "s", Seed: 1, Duration: 200e6}))
	f.Add(good.String())
	f.Add("# user=x period_ms=40\n0,1.0,2.0\n40,1.5,2.5\n")
	f.Add("")
	f.Add("0,999999,2\n")
	f.Add("# period_ms=banana\n0,1,2\n")

	f.Fuzz(func(t *testing.T, raw string) {
		h, err := ReadHeadCSV(strings.NewReader(raw))
		if err != nil {
			return
		}
		if len(h.Samples) == 0 || h.SamplePeriod <= 0 {
			t.Fatal("accepted trace is unusable")
		}
		var out bytes.Buffer
		if err := WriteHeadCSV(&out, h); err != nil {
			t.Fatalf("accepted trace failed to serialize: %v", err)
		}
		back, err := ReadHeadCSV(&out)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if len(back.Samples) != len(h.Samples) {
			t.Fatalf("round trip lost samples: %d vs %d", len(back.Samples), len(h.Samples))
		}
	})
}

// FuzzReadIntervalLog exercises the raw-measurement importer.
func FuzzReadIntervalLog(f *testing.F) {
	f.Add("1000 100000\n2000 200000\n", true)
	f.Add("0,4000\n1000,8000\n", false)
	f.Add("garbage\n", false)
	f.Fuzz(func(t *testing.T, raw string, asBytes bool) {
		tr, err := ReadIntervalLog(strings.NewReader(raw), IntervalLogOptions{
			TimestampCol: 0, ValueCol: 1, ValueIsBytes: asBytes,
		})
		if err != nil {
			return
		}
		if len(tr.Mbps) == 0 || tr.SamplePeriod <= 0 {
			t.Fatal("accepted log produced unusable trace")
		}
		for _, v := range tr.Mbps {
			if v < 0 {
				t.Fatal("negative bandwidth")
			}
		}
	})
}
