package trace

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeToTransferSimple(t *testing.T) {
	b := &BandwidthTrace{SamplePeriod: time.Second, Mbps: []float64{8}}
	// 1e6 bytes at 8 Mbps takes exactly 1 second.
	if got := b.TimeToTransfer(1e6, 0); got != time.Second {
		t.Errorf("TimeToTransfer = %v, want 1s", got)
	}
	if got := b.TimeToTransfer(0, 0); got != 0 {
		t.Errorf("zero bytes = %v", got)
	}
	if got := b.TimeToTransfer(5e5, 0); got != 500*time.Millisecond {
		t.Errorf("half = %v", got)
	}
}

func TestTimeToTransferAcrossSamples(t *testing.T) {
	b := &BandwidthTrace{SamplePeriod: time.Second, Mbps: []float64{8, 16}}
	// First 1e6 bytes take 1 s, next 1e6 take 0.5 s.
	if got := b.TimeToTransfer(2e6, 0); got != 1500*time.Millisecond {
		t.Errorf("TimeToTransfer = %v, want 1.5s", got)
	}
	// Starting mid-sample.
	if got := b.TimeToTransfer(5e5, 500*time.Millisecond); got != 500*time.Millisecond {
		t.Errorf("mid-sample start = %v, want 0.5s", got)
	}
}

func TestTimeToTransferInverseOfBytesBetween(t *testing.T) {
	b := GenerateBandwidth(BandwidthGenParams{ID: "inv", Seed: 8})
	f := func(fromMsRaw, bytesRaw uint16) bool {
		from := time.Duration(fromMsRaw%50000) * time.Millisecond
		bytes := float64(bytesRaw)*1000 + 1
		d := b.TimeToTransfer(bytes, from)
		if d >= time.Hour {
			return true
		}
		got := b.BytesBetween(from, from+d)
		return math.Abs(got-bytes) < 50 // within rounding of Duration precision
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTimeToTransferEmptyTrace(t *testing.T) {
	b := &BandwidthTrace{SamplePeriod: time.Second}
	if got := b.TimeToTransfer(100, 0); got < time.Hour {
		t.Errorf("empty trace should never deliver, got %v", got)
	}
}
