package trace

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestReadIntervalLogBytes(t *testing.T) {
	// Epoch-ms timestamps, bytes per interval (the Belgian-log shape):
	// 1e6 bytes per second = 8 Mbps.
	log := `
1000 0
2000 1000000
3000 1000000
4000 2000000
`
	tr, err := ReadIntervalLog(strings.NewReader(log), IntervalLogOptions{
		TimestampCol: 0, ValueCol: 1, ValueIsBytes: true, ID: "b",
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.ID != "b" || tr.SamplePeriod != time.Second {
		t.Fatalf("trace meta: %+v", tr)
	}
	if len(tr.Mbps) != 4 {
		t.Fatalf("got %d samples: %v", len(tr.Mbps), tr.Mbps)
	}
	if math.Abs(tr.Mbps[1]-8) > 1e-9 || math.Abs(tr.Mbps[3]-16) > 1e-9 {
		t.Errorf("rates = %v, want bins of 8 and 16 Mbps", tr.Mbps)
	}
}

func TestReadIntervalLogKbps(t *testing.T) {
	log := "0,4000\n1000,8000\n2000,12000\n"
	tr, err := ReadIntervalLog(strings.NewReader(log), IntervalLogOptions{
		TimestampCol: 0, ValueCol: 1, Comma: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{4, 8, 12}
	for i, v := range want {
		if math.Abs(tr.Mbps[i]-v) > 1e-9 {
			t.Fatalf("rates = %v, want %v", tr.Mbps, want)
		}
	}
}

func TestReadIntervalLogGapsInheritPrevious(t *testing.T) {
	// A 3-second gap between measurements: the empty bins hold the last
	// rate rather than dropping to zero.
	log := "0,8000\n1000,8000\n5000,4000\n"
	tr, err := ReadIntervalLog(strings.NewReader(log), IntervalLogOptions{
		TimestampCol: 0, ValueCol: 1, Comma: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Mbps) != 6 {
		t.Fatalf("samples: %v", tr.Mbps)
	}
	for i := 2; i <= 4; i++ {
		if tr.Mbps[i] != 8 {
			t.Errorf("gap bin %d = %v, want carried 8", i, tr.Mbps[i])
		}
	}
	if tr.Mbps[5] != 4 {
		t.Errorf("final bin = %v", tr.Mbps[5])
	}
}

func TestReadIntervalLogSkipsGarbage(t *testing.T) {
	log := `
# comment
not numbers here
1000 x
1000 1000
2000 2000000
3000 1000000
`
	tr, err := ReadIntervalLog(strings.NewReader(log), IntervalLogOptions{
		TimestampCol: 0, ValueCol: 1, ValueIsBytes: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Mbps) < 2 {
		t.Fatalf("usable samples lost: %v", tr.Mbps)
	}
}

func TestReadIntervalLogRejectsEmpty(t *testing.T) {
	if _, err := ReadIntervalLog(strings.NewReader("junk\n"), IntervalLogOptions{}); err == nil {
		t.Error("empty log accepted")
	}
	if _, err := ReadIntervalLog(strings.NewReader("1000 5\n"), IntervalLogOptions{ValueIsBytes: true}); err == nil {
		t.Error("single measurement accepted")
	}
}

func TestReadIntervalLogResample(t *testing.T) {
	log := "0 4000\n500 8000\n1000 12000\n1500 16000\n"
	tr, err := ReadIntervalLog(strings.NewReader(log), IntervalLogOptions{
		TimestampCol: 0, ValueCol: 1, Resample: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Bins of 1 s average two 0.5 s measurements each.
	if len(tr.Mbps) != 2 {
		t.Fatalf("bins: %v", tr.Mbps)
	}
	if math.Abs(tr.Mbps[0]-6) > 1e-9 || math.Abs(tr.Mbps[1]-14) > 1e-9 {
		t.Errorf("averaged bins = %v, want [6 14]", tr.Mbps)
	}
}
