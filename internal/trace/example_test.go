package trace_test

import (
	"fmt"
	"time"

	"dragonfly/internal/trace"
)

// ExampleGenerateHead synthesizes a head-motion trace and reads it back at
// arbitrary instants.
func ExampleGenerateHead() {
	head := trace.GenerateHead(trace.HeadGenParams{
		UserID:   "demo",
		Class:    trace.MotionMedium,
		Duration: 10 * time.Second,
		Seed:     1,
	})
	fmt.Printf("duration: %s\n", head.Duration())
	fmt.Printf("sampled every: %s\n", head.SamplePeriod)
	o := head.At(5 * time.Second)
	fmt.Printf("orientation at 5s is valid: %v\n",
		o.Yaw >= -180 && o.Yaw < 180 && o.Pitch >= -90 && o.Pitch <= 90)
	// Output:
	// duration: 10s
	// sampled every: 40ms
	// orientation at 5s is valid: true
}

// ExampleFilter applies the paper's trace-selection rule (§4.2).
func ExampleFilter() {
	steady := func(mbps float64) *trace.BandwidthTrace {
		s := make([]float64, 60)
		for i := range s {
			s[i] = mbps
		}
		return &trace.BandwidthTrace{ID: fmt.Sprintf("%v-mbps", mbps), SamplePeriod: time.Second, Mbps: s}
	}
	candidates := []*trace.BandwidthTrace{steady(3), steady(15), steady(80)}
	kept := trace.Filter(candidates, trace.DefaultBelgianFilter)
	for _, tr := range kept {
		fmt.Println(tr.ID)
	}
	// Output:
	// 15-mbps
}
