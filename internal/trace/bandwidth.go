package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"
)

// BandwidthTrace is a throughput time series with piecewise-constant
// bandwidth over fixed sample periods.
type BandwidthTrace struct {
	ID           string
	SamplePeriod time.Duration
	Mbps         []float64
}

// NetClass returns the trace's network class — its ID with any trailing
// "-<seed>" / "_<seed>" instance suffix and window annotation stripped, so
// "belgian-7" and "belgian-12[30s+60s]" both classify as "belgian". It is
// the network-class half of the "<trace class>:<network class>" cohort key
// fleet QoE rollups aggregate by; an anonymous trace classifies as "net".
func (b *BandwidthTrace) NetClass() string {
	id := b.ID
	if i := strings.IndexByte(id, '['); i >= 0 {
		id = id[:i]
	}
	i := len(id)
	for i > 0 && id[i-1] >= '0' && id[i-1] <= '9' {
		i--
	}
	if i > 0 && i < len(id) && (id[i-1] == '-' || id[i-1] == '_') {
		i--
	}
	id = id[:i]
	if id == "" {
		return "net"
	}
	return strings.ToLower(id)
}

// Duration returns the total trace length.
func (b *BandwidthTrace) Duration() time.Duration {
	return time.Duration(len(b.Mbps)) * b.SamplePeriod
}

// At returns the bandwidth in Mbps at time t. Times past the end wrap
// around, so a trace can back a session longer than itself.
func (b *BandwidthTrace) At(t time.Duration) float64 {
	if len(b.Mbps) == 0 {
		return 0
	}
	if t < 0 {
		t = 0
	}
	i := int(t/b.SamplePeriod) % len(b.Mbps)
	return b.Mbps[i]
}

// BytesBetween integrates bandwidth over [t0, t1) and returns the number of
// bytes deliverable in that interval.
func (b *BandwidthTrace) BytesBetween(t0, t1 time.Duration) float64 {
	if t1 <= t0 || len(b.Mbps) == 0 {
		return 0
	}
	total := 0.0
	for t := t0; t < t1; {
		// End of the sample period containing t.
		next := t.Truncate(b.SamplePeriod) + b.SamplePeriod
		if next > t1 {
			next = t1
		}
		total += b.At(t) * 1e6 / 8 * (next - t).Seconds()
		t = next
	}
	return total
}

// TimeToTransfer returns how long it takes to deliver the given number of
// bytes starting at time from, walking the piecewise-constant samples (the
// inverse of BytesBetween). It returns a huge duration if the trace has no
// capacity at all.
func (b *BandwidthTrace) TimeToTransfer(bytes float64, from time.Duration) time.Duration {
	if bytes <= 0 {
		return 0
	}
	if len(b.Mbps) == 0 {
		return time.Duration(math.MaxInt64)
	}
	remaining := bytes
	t := from
	// Cap the walk at an hour of virtual time to guard against zero-rate
	// traces; callers treat anything that long as "never".
	limit := from + time.Hour
	for t < limit {
		next := t.Truncate(b.SamplePeriod) + b.SamplePeriod
		rate := b.At(t) * 1e6 / 8 // bytes per second
		span := (next - t).Seconds()
		capacity := rate * span
		if capacity >= remaining {
			if rate <= 0 {
				t = next
				continue
			}
			return t + time.Duration(remaining/rate*float64(time.Second)) - from
		}
		remaining -= capacity
		t = next
	}
	return time.Hour
}

// Percentile returns the p-th percentile bandwidth (p in [0, 100]) using
// nearest-rank on the sorted samples.
func (b *BandwidthTrace) Percentile(p float64) float64 {
	if len(b.Mbps) == 0 {
		return 0
	}
	s := append([]float64(nil), b.Mbps...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	idx := int(math.Ceil(p/100*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	return s[idx]
}

// Mean returns the average bandwidth in Mbps.
func (b *BandwidthTrace) Mean() float64 {
	if len(b.Mbps) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range b.Mbps {
		s += v
	}
	return s / float64(len(b.Mbps))
}

// Crop returns the sub-trace covering [start, start+dur), clamped to the
// trace bounds.
func (b *BandwidthTrace) Crop(start, dur time.Duration) *BandwidthTrace {
	i0 := int(start / b.SamplePeriod)
	i1 := int((start + dur) / b.SamplePeriod)
	if i0 < 0 {
		i0 = 0
	}
	if i1 > len(b.Mbps) {
		i1 = len(b.Mbps)
	}
	if i0 > i1 {
		i0 = i1
	}
	return &BandwidthTrace{
		ID:           fmt.Sprintf("%s[%ds+%ds]", b.ID, int(start.Seconds()), int(dur.Seconds())),
		SamplePeriod: b.SamplePeriod,
		Mbps:         append([]float64(nil), b.Mbps[i0:i1]...),
	}
}

// Capped returns a copy with every sample limited to capMbps, as the paper
// caps all samples to 28 Mbps (§4.2).
func (b *BandwidthTrace) Capped(capMbps float64) *BandwidthTrace {
	out := &BandwidthTrace{ID: b.ID, SamplePeriod: b.SamplePeriod, Mbps: make([]float64, len(b.Mbps))}
	for i, v := range b.Mbps {
		out.Mbps[i] = math.Min(v, capMbps)
	}
	return out
}

// Scaled returns a copy with every sample multiplied by f.
func (b *BandwidthTrace) Scaled(f float64) *BandwidthTrace {
	out := &BandwidthTrace{ID: b.ID, SamplePeriod: b.SamplePeriod, Mbps: make([]float64, len(b.Mbps))}
	for i, v := range b.Mbps {
		out.Mbps[i] = v * f
	}
	return out
}

// BandwidthGenParams parameterizes the synthetic cellular-throughput
// generator: a Markov-modulated process with state-dependent means.
type BandwidthGenParams struct {
	ID           string
	Duration     time.Duration // default 1 minute
	SamplePeriod time.Duration // default 500 ms
	Seed         int64

	// StateMeansMbps and the switching rate define the Markov envelope.
	StateMeansMbps []float64
	SwitchPerSec   float64 // probability per second of changing state
	NoiseFrac      float64 // multiplicative noise std-dev around the state mean
	// DipPerSec adds abrupt near-zero dips (prominent in the Irish 5G data,
	// §4.3 "bandwidth in these traces exhibits abrupt occasional dips").
	DipPerSec float64
	DipLen    time.Duration
}

// GenerateBandwidth synthesizes one bandwidth trace.
func GenerateBandwidth(p BandwidthGenParams) *BandwidthTrace {
	if p.Duration == 0 {
		p.Duration = time.Minute
	}
	if p.SamplePeriod == 0 {
		p.SamplePeriod = 500 * time.Millisecond
	}
	if len(p.StateMeansMbps) == 0 {
		p.StateMeansMbps = []float64{8, 14, 22}
	}
	rng := rand.New(rand.NewSource(p.Seed))
	n := int(p.Duration / p.SamplePeriod)
	mbps := make([]float64, n)
	state := rng.Intn(len(p.StateMeansMbps))
	dt := p.SamplePeriod.Seconds()
	dipLeft := 0
	for i := 0; i < n; i++ {
		if rng.Float64() < p.SwitchPerSec*dt {
			state = rng.Intn(len(p.StateMeansMbps))
		}
		v := p.StateMeansMbps[state] * (1 + rng.NormFloat64()*p.NoiseFrac)
		if dipLeft > 0 {
			dipLeft--
			v = rng.Float64() * 0.8 // near zero
		} else if p.DipPerSec > 0 && rng.Float64() < p.DipPerSec*dt {
			dipLeft = int(p.DipLen.Seconds() / dt)
			if dipLeft < 1 {
				dipLeft = 1
			}
			v = rng.Float64() * 0.8
		}
		mbps[i] = math.Max(0.1, v)
	}
	return &BandwidthTrace{ID: p.ID, SamplePeriod: p.SamplePeriod, Mbps: mbps}
}

// FilterOptions implements the paper's trace-selection rules (§4.2): reject
// traces too slow to ever stream the viewport at top quality, or so fast
// the full 360° fits; then cap all samples.
type FilterOptions struct {
	MinP10Mbps  float64 // keep if the 10th percentile is at least this
	MaxHighMbps float64 // keep if the high percentile is at most this
	HighPct     float64 // 90 for Belgian, 75 for Irish (footnote 4)
	CapMbps     float64
}

// DefaultBelgianFilter matches §4.2 for the Belgian dataset.
var DefaultBelgianFilter = FilterOptions{MinP10Mbps: 7, MaxHighMbps: 28, HighPct: 90, CapMbps: 28}

// DefaultIrishFilter matches footnote 4 for the Irish dataset.
var DefaultIrishFilter = FilterOptions{MinP10Mbps: 7, MaxHighMbps: 28, HighPct: 75, CapMbps: 28}

// Filter applies the selection rule and cap, returning the surviving traces.
func Filter(traces []*BandwidthTrace, o FilterOptions) []*BandwidthTrace {
	var out []*BandwidthTrace
	for _, tr := range traces {
		if tr.Percentile(10) < o.MinP10Mbps {
			continue
		}
		if tr.Percentile(o.HighPct) > o.MaxHighMbps {
			continue
		}
		out = append(out, tr.Capped(o.CapMbps))
	}
	return out
}

// DefaultBelgianTraces generates and filters 4G-like traces until n survive.
// The generator mimics the Belgian HTTP/4G logs: moderate means with
// transport-mode-driven state changes.
func DefaultBelgianTraces(n int) []*BandwidthTrace {
	var out []*BandwidthTrace
	for seed := int64(1); len(out) < n && seed < int64(n)*50; seed++ {
		tr := GenerateBandwidth(BandwidthGenParams{
			ID:             fmt.Sprintf("belgian-%d", seed),
			Seed:           seed,
			StateMeansMbps: []float64{9, 13, 18, 24},
			SwitchPerSec:   0.25,
			NoiseFrac:      0.15,
		})
		out = append(out, Filter([]*BandwidthTrace{tr}, DefaultBelgianFilter)...)
	}
	return out
}

// DefaultIrishTraces generates and filters 5G-like traces until n survive:
// higher and flatter bandwidth, but with abrupt near-zero dips.
func DefaultIrishTraces(n int) []*BandwidthTrace {
	var out []*BandwidthTrace
	for seed := int64(10001); len(out) < n && seed < 10001+int64(n)*80; seed++ {
		tr := GenerateBandwidth(BandwidthGenParams{
			ID:             fmt.Sprintf("irish-%d", seed),
			Seed:           seed,
			StateMeansMbps: []float64{14, 20, 26},
			SwitchPerSec:   0.12,
			NoiseFrac:      0.10,
			DipPerSec:      0.06,
			DipLen:         1500 * time.Millisecond,
		})
		out = append(out, Filter([]*BandwidthTrace{tr}, DefaultIrishFilter)...)
	}
	return out
}

// WriteBandwidthCSV writes "t_ms,mbps" rows.
func WriteBandwidthCSV(w io.Writer, b *BandwidthTrace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# id=%s period_ms=%d\n", b.ID, b.SamplePeriod.Milliseconds()); err != nil {
		return err
	}
	for i, v := range b.Mbps {
		t := time.Duration(i) * b.SamplePeriod
		if _, err := fmt.Fprintf(bw, "%d,%.4f\n", t.Milliseconds(), v); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBandwidthCSV parses a trace written by WriteBandwidthCSV.
func ReadBandwidthCSV(r io.Reader) (*BandwidthTrace, error) {
	sc := bufio.NewScanner(r)
	b := &BandwidthTrace{SamplePeriod: 500 * time.Millisecond}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			for _, f := range strings.Fields(line[1:]) {
				if v, ok := strings.CutPrefix(f, "id="); ok {
					b.ID = v
				}
				if v, ok := strings.CutPrefix(f, "period_ms="); ok {
					ms, err := strconv.Atoi(v)
					if err != nil || ms <= 0 {
						return nil, fmt.Errorf("trace: bad period %q", v)
					}
					b.SamplePeriod = time.Duration(ms) * time.Millisecond
				}
			}
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("trace: bad bandwidth row %q", line)
		}
		v, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("trace: bad mbps %q", parts[1])
		}
		b.Mbps = append(b.Mbps, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(b.Mbps) == 0 {
		return nil, fmt.Errorf("trace: empty bandwidth trace")
	}
	return b, nil
}
