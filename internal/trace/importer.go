package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// IntervalLogOptions describes the column layout of a throughput log of the
// kind the paper's datasets ship ([45] Belgian 4G, [40] Irish 5G): one
// line per measurement interval, whitespace- or comma-separated, with a
// timestamp column and a bytes-transferred (or kbps/mbps) column.
type IntervalLogOptions struct {
	// TimestampCol and ValueCol are zero-based column indexes.
	TimestampCol int
	ValueCol     int
	// TimestampUnit converts the timestamp column to a duration (e.g.
	// time.Millisecond for epoch-milliseconds). Default: time.Millisecond.
	TimestampUnit time.Duration
	// ValueIsBytes interprets the value column as bytes transferred during
	// the interval; otherwise it is taken as kilobits per second.
	ValueIsBytes bool
	// Resample is the uniform sample period of the resulting trace.
	// Default: 1 second.
	Resample time.Duration
	// Comma switches the separator from whitespace to commas.
	Comma bool
	ID    string
}

// ReadIntervalLog parses a raw throughput measurement log into a uniformly
// sampled BandwidthTrace: measurements are bucketed into Resample-sized
// bins (relative to the first timestamp) and averaged. Lines that fail to
// parse are skipped; the log must yield at least two usable measurements.
func ReadIntervalLog(r io.Reader, o IntervalLogOptions) (*BandwidthTrace, error) {
	if o.TimestampUnit == 0 {
		o.TimestampUnit = time.Millisecond
	}
	if o.Resample == 0 {
		o.Resample = time.Second
	}
	type sample struct {
		at   time.Duration
		mbps float64
	}
	var samples []sample
	sc := bufio.NewScanner(r)
	var prevTS, firstTS time.Duration
	first := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var fields []string
		if o.Comma {
			fields = strings.Split(line, ",")
			for i := range fields {
				fields[i] = strings.TrimSpace(fields[i])
			}
		} else {
			fields = strings.Fields(line)
		}
		if o.TimestampCol >= len(fields) || o.ValueCol >= len(fields) {
			continue
		}
		tsRaw, err1 := strconv.ParseFloat(fields[o.TimestampCol], 64)
		val, err2 := strconv.ParseFloat(fields[o.ValueCol], 64)
		if err1 != nil || err2 != nil || val < 0 {
			continue
		}
		ts := time.Duration(tsRaw * float64(o.TimestampUnit))
		if first {
			firstTS = ts
			prevTS = ts
			first = false
			if !o.ValueIsBytes {
				samples = append(samples, sample{at: 0, mbps: val / 1000})
			}
			continue
		}
		at := ts - firstTS
		var mbps float64
		if o.ValueIsBytes {
			dt := (ts - prevTS).Seconds()
			if dt <= 0 {
				prevTS = ts
				continue
			}
			mbps = val * 8 / dt / 1e6
		} else {
			mbps = val / 1000 // kbps -> Mbps
		}
		samples = append(samples, sample{at: at, mbps: mbps})
		prevTS = ts
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read interval log: %w", err)
	}
	if len(samples) < 2 {
		return nil, fmt.Errorf("trace: interval log has %d usable measurements, need >= 2", len(samples))
	}
	sort.Slice(samples, func(a, b int) bool { return samples[a].at < samples[b].at })

	// Bucket into uniform bins; empty bins inherit the previous bin's rate
	// (measurement gaps, not outages, in these datasets).
	last := samples[len(samples)-1].at
	n := int(last/o.Resample) + 1
	sums := make([]float64, n)
	counts := make([]int, n)
	for _, s := range samples {
		i := int(s.at / o.Resample)
		sums[i] += s.mbps
		counts[i]++
	}
	mbps := make([]float64, n)
	prev := 0.0
	for i := range mbps {
		if counts[i] > 0 {
			mbps[i] = sums[i] / float64(counts[i])
			prev = mbps[i]
		} else {
			mbps[i] = prev
		}
	}
	id := o.ID
	if id == "" {
		id = "imported"
	}
	return &BandwidthTrace{ID: id, SamplePeriod: o.Resample, Mbps: mbps}, nil
}
