package trace

import (
	"testing"
	"time"

	"dragonfly/internal/geom"
)

// TestHeadAtZeroSamplePeriod is a regression test for the zero-length-trace
// crash: with SamplePeriod == 0 the interpolation index became +Inf, whose
// int conversion on amd64 produces a negative value, and At panicked with
// an out-of-range slice index for any positive t.
func TestHeadAtZeroSamplePeriod(t *testing.T) {
	h := &HeadTrace{
		UserID:  "degenerate",
		Samples: []geom.Orientation{{Yaw: 10}, {Yaw: 20}, {Yaw: 30}},
		// SamplePeriod left zero.
	}
	if d := h.Duration(); d != 0 {
		t.Fatalf("Duration = %v, want 0", d)
	}
	if got := h.At(0); got.Yaw != 10 {
		t.Fatalf("At(0) = %+v, want first sample", got)
	}
	// Pre-fix this panicked.
	if got := h.At(time.Second); got.Yaw != 30 {
		t.Fatalf("At(1s) = %+v, want last sample", got)
	}
	neg := &HeadTrace{Samples: []geom.Orientation{{Yaw: 5}}, SamplePeriod: -HeadSamplePeriod}
	if got := neg.At(time.Minute); got.Yaw != 5 {
		t.Fatalf("At with negative period = %+v, want the only sample", got)
	}
}
