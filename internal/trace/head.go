// Package trace provides the two trace substrates of the paper's
// evaluation: user head-motion traces (the [34] dataset in the paper) and
// network bandwidth traces (the Belgian 4G [45] and Irish 5G [40] datasets),
// plus synthetic generators calibrated to their published characteristics.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"dragonfly/internal/geom"
)

// HeadSamplePeriod is the orientation sampling period: the Oculus HMD sends
// user coordinates every 40 ms (paper §4.5).
const HeadSamplePeriod = 40 * time.Millisecond

// HeadTrace is a time series of head orientations sampled at a fixed period.
type HeadTrace struct {
	UserID       string
	SamplePeriod time.Duration
	Samples      []geom.Orientation
	// ClassLabel names the trace's motion class ("low", "medium", "high");
	// GenerateHead fills it, imported CSV traces leave it empty. It is the
	// trace-class half of the fleet-rollup cohort key — see ClassName.
	ClassLabel string
}

// ClassName returns the trace-class label for cohort keying: ClassLabel
// when known, else "user" (a recorded trace of unknown motion class).
func (h *HeadTrace) ClassName() string {
	if h.ClassLabel != "" {
		return h.ClassLabel
	}
	return "user"
}

// Duration returns the trace length.
func (h *HeadTrace) Duration() time.Duration {
	if len(h.Samples) == 0 {
		return 0
	}
	return time.Duration(len(h.Samples)-1) * h.SamplePeriod
}

// At returns the orientation at time t, interpolating between samples (yaw
// interpolated along the shortest arc). Times outside the trace clamp to the
// first/last sample.
func (h *HeadTrace) At(t time.Duration) geom.Orientation {
	n := len(h.Samples)
	if n == 0 {
		return geom.Orientation{}
	}
	if t <= 0 {
		return h.Samples[0]
	}
	if h.SamplePeriod <= 0 {
		// Degenerate (zero-length) trace: every sample is co-located at t=0.
		// Without this guard the division below yields +Inf, whose int
		// conversion is undefined — on amd64 it produces a negative index
		// and panics.
		return h.Samples[n-1]
	}
	idx := float64(t) / float64(h.SamplePeriod)
	i := int(idx)
	if i >= n-1 {
		return h.Samples[n-1]
	}
	frac := idx - float64(i)
	a, b := h.Samples[i], h.Samples[i+1]
	return geom.Orientation{
		Yaw:   geom.NormalizeYaw(a.Yaw + geom.YawDelta(a.Yaw, b.Yaw)*frac),
		Pitch: a.Pitch + (b.Pitch-a.Pitch)*frac,
	}
}

// MotionClass describes how actively a synthetic user moves.
type MotionClass int

// Motion classes: the [34] dataset spans users who barely move to users who
// continuously explore the scene.
const (
	MotionLow MotionClass = iota
	MotionMedium
	MotionHigh
)

// String returns the class's lowercase name — the trace-class half of the
// "<trace class>:<network class>" cohort key fleet QoE rollups aggregate by.
func (c MotionClass) String() string {
	switch c {
	case MotionLow:
		return "low"
	case MotionMedium:
		return "medium"
	case MotionHigh:
		return "high"
	default:
		return "unknown"
	}
}

// HeadGenParams parameterizes the synthetic head-motion generator.
type HeadGenParams struct {
	UserID   string
	Class    MotionClass
	Duration time.Duration // default 1 minute
	Seed     int64
}

// GenerateHead synthesizes a head trace: yaw velocity follows a
// mean-reverting (Ornstein-Uhlenbeck-like) process with occasional saccades
// — quick reorientations toward a new point of interest — whose rate and
// magnitude grow with the motion class. Pitch wanders mildly around the
// horizon, as real 360° viewers overwhelmingly look near the equator.
func GenerateHead(p HeadGenParams) *HeadTrace {
	if p.Duration == 0 {
		p.Duration = time.Minute
	}
	rng := rand.New(rand.NewSource(p.Seed))
	n := int(p.Duration/HeadSamplePeriod) + 1
	samples := make([]geom.Orientation, n)

	var sigmaV, saccadeRate, saccadeMag float64
	switch p.Class {
	case MotionLow:
		sigmaV, saccadeRate, saccadeMag = 4, 0.04, 40
	case MotionMedium:
		sigmaV, saccadeRate, saccadeMag = 10, 0.12, 70
	default: // MotionHigh
		sigmaV, saccadeRate, saccadeMag = 20, 0.25, 110
	}

	dt := HeadSamplePeriod.Seconds()
	yaw := rng.Float64()*360 - 180
	pitch := rng.NormFloat64() * 8
	vYaw := 0.0 // deg/s
	vPitch := 0.0
	// saccadeLeft counts remaining samples of an in-flight saccade.
	saccadeLeft := 0
	saccadeV := 0.0
	for i := 0; i < n; i++ {
		samples[i] = geom.Orientation{Yaw: geom.NormalizeYaw(yaw), Pitch: geom.ClampPitch(pitch)}
		// Velocity mean-reverts to zero with noise.
		vYaw += (-1.5*vYaw)*dt + rng.NormFloat64()*sigmaV*math.Sqrt(dt)*10
		vPitch += (-2.0*vPitch)*dt + rng.NormFloat64()*sigmaV*0.3*math.Sqrt(dt)*10
		if saccadeLeft > 0 {
			saccadeLeft--
			vYaw += saccadeV
		} else if rng.Float64() < saccadeRate*dt {
			// Launch a ~0.4 s saccade of up to saccadeMag degrees.
			dur := int(0.4 / dt)
			total := (rng.Float64()*2 - 1) * saccadeMag
			saccadeV = total / float64(dur)
			saccadeLeft = dur
		}
		yaw += vYaw * dt
		pitch += vPitch * dt
		// Pull pitch back toward the horizon.
		pitch -= pitch * 0.5 * dt
		if pitch > 60 {
			pitch = 60
		}
		if pitch < -60 {
			pitch = -60
		}
	}
	return &HeadTrace{UserID: p.UserID, SamplePeriod: HeadSamplePeriod, Samples: samples, ClassLabel: p.Class.String()}
}

// DefaultUserTraces generates n user traces with a deterministic mix of
// motion classes (roughly one third each), mirroring the spread of the [34]
// dataset used for the 10-user sweeps of §4.3.
func DefaultUserTraces(n int) []*HeadTrace {
	out := make([]*HeadTrace, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, GenerateHead(HeadGenParams{
			UserID: fmt.Sprintf("u%d", i+1),
			Class:  MotionClass(i % 3),
			Seed:   int64(1000 + i),
		}))
	}
	return out
}

// YawDisplacementPerSecond returns, for each whole second of the trace, the
// absolute yaw displacement over that second — the Figure 16 metric.
func (h *HeadTrace) YawDisplacementPerSecond() []float64 {
	secs := int(h.Duration() / time.Second)
	out := make([]float64, 0, secs)
	for s := 0; s < secs; s++ {
		a := h.At(time.Duration(s) * time.Second)
		b := h.At(time.Duration(s+1) * time.Second)
		out = append(out, math.Abs(geom.YawDelta(a.Yaw, b.Yaw)))
	}
	return out
}

// MaxDisplacementPerChunk computes, for each chunk, the maximum angular
// displacement any of the given users exhibits between the chunk start and
// any instant within the chunk. The tiled masking strategy fetches tiles
// within this displacement of the predicted viewport (paper §3.2, §4.5).
func MaxDisplacementPerChunk(traces []*HeadTrace, chunkDur time.Duration, numChunks int) []float64 {
	out := make([]float64, numChunks)
	for c := 0; c < numChunks; c++ {
		start := time.Duration(c) * chunkDur
		maxD := 0.0
		for _, h := range traces {
			base := h.At(start)
			for t := start; t <= start+chunkDur; t += h.SamplePeriod {
				d := geom.AngularDistance(base, h.At(t))
				if d > maxD {
					maxD = d
				}
			}
		}
		out[c] = maxD
	}
	return out
}

// WriteHeadCSV writes the trace as "t_ms,yaw,pitch" rows.
func WriteHeadCSV(w io.Writer, h *HeadTrace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# user=%s period_ms=%d\n", h.UserID, h.SamplePeriod.Milliseconds()); err != nil {
		return err
	}
	for i, s := range h.Samples {
		t := time.Duration(i) * h.SamplePeriod
		if _, err := fmt.Fprintf(bw, "%d,%.4f,%.4f\n", t.Milliseconds(), s.Yaw, s.Pitch); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadHeadCSV parses a trace written by WriteHeadCSV. Unknown sample spacing
// is inferred from the first two rows.
func ReadHeadCSV(r io.Reader) (*HeadTrace, error) {
	sc := bufio.NewScanner(r)
	h := &HeadTrace{SamplePeriod: HeadSamplePeriod}
	var times []int64
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			for _, f := range strings.Fields(line[1:]) {
				if v, ok := strings.CutPrefix(f, "user="); ok {
					h.UserID = v
				}
				if v, ok := strings.CutPrefix(f, "period_ms="); ok {
					ms, err := strconv.Atoi(v)
					if err != nil || ms <= 0 {
						return nil, fmt.Errorf("trace: bad period %q", v)
					}
					h.SamplePeriod = time.Duration(ms) * time.Millisecond
				}
			}
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("trace: bad head row %q", line)
		}
		tms, err := strconv.ParseInt(parts[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad time %q: %w", parts[0], err)
		}
		yaw, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad yaw %q: %w", parts[1], err)
		}
		pitch, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad pitch %q: %w", parts[2], err)
		}
		times = append(times, tms)
		h.Samples = append(h.Samples, geom.Orientation{Yaw: yaw, Pitch: pitch}.Normalize())
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(h.Samples) == 0 {
		return nil, fmt.Errorf("trace: empty head trace")
	}
	if len(times) >= 2 && times[1] > times[0] {
		h.SamplePeriod = time.Duration(times[1]-times[0]) * time.Millisecond
	}
	return h, nil
}
