package trace

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
	"time"

	"dragonfly/internal/geom"
)

func TestHeadTraceAtInterpolates(t *testing.T) {
	h := &HeadTrace{
		SamplePeriod: 40 * time.Millisecond,
		Samples: []geom.Orientation{
			{Yaw: 0, Pitch: 0},
			{Yaw: 10, Pitch: 4},
			{Yaw: 20, Pitch: 8},
		},
	}
	o := h.At(20 * time.Millisecond)
	if math.Abs(o.Yaw-5) > 1e-9 || math.Abs(o.Pitch-2) > 1e-9 {
		t.Errorf("At(20ms) = %+v, want yaw 5 pitch 2", o)
	}
	if got := h.At(-time.Second); got != h.Samples[0] {
		t.Errorf("At(<0) = %+v", got)
	}
	if got := h.At(time.Hour); got != h.Samples[2] {
		t.Errorf("At(beyond) = %+v", got)
	}
}

func TestHeadTraceAtWrapsYaw(t *testing.T) {
	h := &HeadTrace{
		SamplePeriod: 40 * time.Millisecond,
		Samples: []geom.Orientation{
			{Yaw: 175, Pitch: 0},
			{Yaw: -175, Pitch: 0}, // 10 degrees across the wrap
		},
	}
	o := h.At(20 * time.Millisecond)
	if math.Abs(geom.YawDelta(180, o.Yaw)) > 1e-9 {
		t.Errorf("interpolation across wrap gave yaw %v, want ±180", o.Yaw)
	}
}

func TestHeadTraceDuration(t *testing.T) {
	h := GenerateHead(HeadGenParams{UserID: "u", Class: MotionMedium, Seed: 1})
	if d := h.Duration(); d < 59*time.Second || d > 61*time.Second {
		t.Errorf("duration = %v, want ~1 min", d)
	}
	empty := &HeadTrace{SamplePeriod: time.Second}
	if empty.Duration() != 0 {
		t.Error("empty trace duration should be 0")
	}
}

func TestGenerateHeadDeterministicAndValid(t *testing.T) {
	a := GenerateHead(HeadGenParams{UserID: "u", Class: MotionHigh, Seed: 5})
	b := GenerateHead(HeadGenParams{UserID: "u", Class: MotionHigh, Seed: 5})
	if len(a.Samples) != len(b.Samples) {
		t.Fatal("nondeterministic length")
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatal("nondeterministic samples")
		}
		if a.Samples[i].Yaw < -180 || a.Samples[i].Yaw >= 180 {
			t.Fatalf("yaw out of range: %v", a.Samples[i].Yaw)
		}
		if a.Samples[i].Pitch < -90 || a.Samples[i].Pitch > 90 {
			t.Fatalf("pitch out of range: %v", a.Samples[i].Pitch)
		}
	}
}

func TestMotionClassesDiffer(t *testing.T) {
	displacement := func(c MotionClass) float64 {
		total := 0.0
		for seed := int64(0); seed < 5; seed++ {
			h := GenerateHead(HeadGenParams{Class: c, Seed: seed})
			for _, d := range h.YawDisplacementPerSecond() {
				total += d
			}
		}
		return total
	}
	low, med, high := displacement(MotionLow), displacement(MotionMedium), displacement(MotionHigh)
	if !(low < med && med < high) {
		t.Errorf("motion classes not ordered: low %.0f med %.0f high %.0f", low, med, high)
	}
}

func TestDefaultUserTraces(t *testing.T) {
	users := DefaultUserTraces(10)
	if len(users) != 10 {
		t.Fatalf("got %d users", len(users))
	}
	ids := map[string]bool{}
	for _, u := range users {
		if ids[u.UserID] {
			t.Errorf("duplicate user %s", u.UserID)
		}
		ids[u.UserID] = true
	}
}

func TestMaxDisplacementPerChunk(t *testing.T) {
	users := DefaultUserTraces(5)
	d := MaxDisplacementPerChunk(users, time.Second, 60)
	if len(d) != 60 {
		t.Fatalf("got %d chunks", len(d))
	}
	for c, v := range d {
		if v < 0 || v > 180 {
			t.Fatalf("chunk %d displacement %v out of range", c, v)
		}
	}
	// A static user yields zero displacement.
	static := &HeadTrace{SamplePeriod: HeadSamplePeriod, Samples: make([]geom.Orientation, 100)}
	d0 := MaxDisplacementPerChunk([]*HeadTrace{static}, time.Second, 2)
	if d0[0] != 0 || d0[1] != 0 {
		t.Errorf("static user displacement = %v", d0)
	}
}

func TestHeadCSVRoundTrip(t *testing.T) {
	h := GenerateHead(HeadGenParams{UserID: "rt", Class: MotionLow, Seed: 9, Duration: 2 * time.Second})
	var buf bytes.Buffer
	if err := WriteHeadCSV(&buf, h); err != nil {
		t.Fatal(err)
	}
	got, err := ReadHeadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.UserID != "rt" || got.SamplePeriod != h.SamplePeriod || len(got.Samples) != len(h.Samples) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for i := range h.Samples {
		if math.Abs(got.Samples[i].Yaw-h.Samples[i].Yaw) > 1e-3 {
			t.Fatal("yaw lost in round trip")
		}
	}
}

func TestReadHeadCSVRejectsBad(t *testing.T) {
	for i, s := range []string{"", "1,2", "x,1,2", "0,nan-ish,2\n", "0,1\n"} {
		if _, err := ReadHeadCSV(bytes.NewReader([]byte(s))); err == nil && i != 3 {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestBandwidthAtAndWrap(t *testing.T) {
	b := &BandwidthTrace{SamplePeriod: time.Second, Mbps: []float64{10, 20, 30}}
	if b.At(0) != 10 || b.At(1500*time.Millisecond) != 20 || b.At(2*time.Second) != 30 {
		t.Error("At basic lookup wrong")
	}
	if b.At(3*time.Second) != 10 {
		t.Error("At should wrap")
	}
	if b.At(-time.Second) != 10 {
		t.Error("At negative should clamp")
	}
	if (&BandwidthTrace{}).At(0) != 0 {
		t.Error("empty trace should return 0")
	}
}

func TestBytesBetween(t *testing.T) {
	b := &BandwidthTrace{SamplePeriod: time.Second, Mbps: []float64{8, 16}}
	// 1 s at 8 Mbps = 1e6 bytes.
	if got := b.BytesBetween(0, time.Second); math.Abs(got-1e6) > 1 {
		t.Errorf("BytesBetween(0,1s) = %v", got)
	}
	// Half of each sample: 0.5s*8Mbps + 0.5s*16Mbps = 0.5e6 + 1e6.
	if got := b.BytesBetween(500*time.Millisecond, 1500*time.Millisecond); math.Abs(got-1.5e6) > 1 {
		t.Errorf("BytesBetween straddling = %v", got)
	}
	if got := b.BytesBetween(time.Second, time.Second); got != 0 {
		t.Errorf("empty interval = %v", got)
	}
}

func TestBytesBetweenAdditiveProperty(t *testing.T) {
	b := GenerateBandwidth(BandwidthGenParams{ID: "p", Seed: 3})
	f := func(a, c uint16) bool {
		t0 := time.Duration(a%60000) * time.Millisecond
		t2 := t0 + time.Duration(c%10000)*time.Millisecond
		mid := (t0 + t2) / 2
		whole := b.BytesBetween(t0, t2)
		split := b.BytesBetween(t0, mid) + b.BytesBetween(mid, t2)
		return math.Abs(whole-split) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	b := &BandwidthTrace{Mbps: []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}}
	if got := b.Percentile(0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := b.Percentile(100); got != 10 {
		t.Errorf("p100 = %v", got)
	}
	if got := b.Percentile(50); got != 5 {
		t.Errorf("p50 = %v", got)
	}
	if got := b.Percentile(90); got != 9 {
		t.Errorf("p90 = %v", got)
	}
}

func TestCropAndCap(t *testing.T) {
	b := &BandwidthTrace{ID: "x", SamplePeriod: time.Second, Mbps: []float64{5, 50, 15, 40}}
	c := b.Crop(time.Second, 2*time.Second)
	if len(c.Mbps) != 2 || c.Mbps[0] != 50 || c.Mbps[1] != 15 {
		t.Errorf("crop = %v", c.Mbps)
	}
	capped := b.Capped(28)
	for _, v := range capped.Mbps {
		if v > 28 {
			t.Errorf("cap failed: %v", v)
		}
	}
	if capped.Mbps[0] != 5 {
		t.Error("cap altered low samples")
	}
}

func TestFilter(t *testing.T) {
	good := &BandwidthTrace{ID: "good", SamplePeriod: time.Second, Mbps: constant(12, 60)}
	tooSlow := &BandwidthTrace{ID: "slow", SamplePeriod: time.Second, Mbps: constant(3, 60)}
	tooFast := &BandwidthTrace{ID: "fast", SamplePeriod: time.Second, Mbps: constant(80, 60)}
	out := Filter([]*BandwidthTrace{good, tooSlow, tooFast}, DefaultBelgianFilter)
	if len(out) != 1 || out[0].ID != "good" {
		t.Fatalf("filter kept %d traces", len(out))
	}
}

func constant(v float64, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = v
	}
	return s
}

func TestDefaultBelgianTraces(t *testing.T) {
	traces := DefaultBelgianTraces(11)
	if len(traces) != 11 {
		t.Fatalf("got %d Belgian traces, want 11", len(traces))
	}
	for _, tr := range traces {
		if tr.Percentile(10) < 7 {
			t.Errorf("%s: p10 = %v < 7", tr.ID, tr.Percentile(10))
		}
		if tr.Percentile(100) > 28 {
			t.Errorf("%s: max %v > cap", tr.ID, tr.Percentile(100))
		}
		if d := tr.Duration(); d != time.Minute {
			t.Errorf("%s: duration %v", tr.ID, d)
		}
	}
}

func TestDefaultIrishTracesHaveDips(t *testing.T) {
	traces := DefaultIrishTraces(10)
	if len(traces) != 10 {
		t.Fatalf("got %d Irish traces, want 10", len(traces))
	}
	dips := 0
	for _, tr := range traces {
		for _, v := range tr.Mbps {
			if v < 1 {
				dips++
			}
		}
	}
	if dips == 0 {
		t.Error("Irish traces should exhibit near-zero dips")
	}
}

func TestBandwidthCSVRoundTrip(t *testing.T) {
	b := GenerateBandwidth(BandwidthGenParams{ID: "rt", Seed: 4, Duration: 5 * time.Second})
	var buf bytes.Buffer
	if err := WriteBandwidthCSV(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBandwidthCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != "rt" || got.SamplePeriod != b.SamplePeriod || len(got.Mbps) != len(b.Mbps) {
		t.Fatalf("round trip mismatch")
	}
	for i := range b.Mbps {
		if math.Abs(got.Mbps[i]-b.Mbps[i]) > 1e-3 {
			t.Fatal("mbps lost in round trip")
		}
	}
}

func TestReadBandwidthCSVRejectsBad(t *testing.T) {
	for i, s := range []string{"", "1", "a,b", "0,-5"} {
		if _, err := ReadBandwidthCSV(bytes.NewReader([]byte(s))); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestGenerateBandwidthDeterministic(t *testing.T) {
	p := BandwidthGenParams{ID: "d", Seed: 77}
	a, b := GenerateBandwidth(p), GenerateBandwidth(p)
	for i := range a.Mbps {
		if a.Mbps[i] != b.Mbps[i] {
			t.Fatal("nondeterministic bandwidth generation")
		}
	}
}

func TestScaled(t *testing.T) {
	b := &BandwidthTrace{Mbps: []float64{2, 4}, SamplePeriod: time.Second}
	s := b.Scaled(2.5)
	if s.Mbps[0] != 5 || s.Mbps[1] != 10 {
		t.Errorf("scaled = %v", s.Mbps)
	}
}
