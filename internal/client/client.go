// Package client implements the real-time streaming client: it drives any
// player.Scheme over the wire protocol against a tile server, replaying a
// user head trace in wall-clock time and producing the same session metrics
// as the discrete-event engine. This is the path exercised by the
// cmd/dragonfly-client binary and the live-stream example.
package client

import (
	"fmt"
	"net"
	"sync"
	"time"

	"dragonfly/internal/geom"
	"dragonfly/internal/player"
	"dragonfly/internal/predict"
	"dragonfly/internal/proto"
	"dragonfly/internal/quality"
	"dragonfly/internal/trace"
	"dragonfly/internal/video"
)

// PlayOptions tunes a session.
type PlayOptions struct {
	Metric           quality.Metric
	Viewport         geom.Viewport // zero = geom.DefaultViewport
	PredictorHistory time.Duration
	AssumedStartMbps float64
	// MaxWall caps the session in wall-clock time (default: 3x video + 30 s).
	MaxWall time.Duration

	// MaskInterpolation enables neighbor interpolation of masking holes
	// (§3.2 future work).
	MaskInterpolation bool

	// PredictErrorDeg injects uniform orientation noise into the viewport
	// predictor (the Figs 21-23 methodology); 0 disables.
	PredictErrorDeg  float64
	PredictErrorSeed int64
}

// Play streams videoID from the server behind conn using the given scheme,
// replaying the head trace in real time, and returns the session metrics.
func Play(conn net.Conn, videoID string, head *trace.HeadTrace, scheme player.Scheme, opts PlayOptions) (*player.Metrics, error) {
	if head == nil || scheme == nil {
		return nil, fmt.Errorf("client: head trace and scheme are required")
	}
	if opts.Viewport.RadiusDeg == 0 {
		opts.Viewport = geom.DefaultViewport
	}
	if opts.AssumedStartMbps == 0 {
		opts.AssumedStartMbps = 5
	}

	if err := proto.WriteHello(conn, proto.Hello{VideoID: videoID}); err != nil {
		return nil, fmt.Errorf("client: hello: %w", err)
	}
	msg, err := proto.ReadMessage(conn)
	if err != nil {
		return nil, fmt.Errorf("client: read manifest: %w", err)
	}
	switch msg.Type {
	case proto.MsgManifest:
	case proto.MsgError:
		return nil, fmt.Errorf("client: server error: %s", msg.Error)
	default:
		return nil, fmt.Errorf("client: expected manifest, got type %d", msg.Type)
	}
	m := msg.Manifest

	videoDur := time.Duration(m.NumFrames()) * time.Second / time.Duration(m.FPS)
	if opts.MaxWall == 0 {
		opts.MaxWall = 3*videoDur + 30*time.Second
	}

	s := &session{
		conn:   conn,
		m:      m,
		head:   head,
		scheme: scheme,
		opts:   opts,
		grid:   m.Grid(),
		met: &player.Metrics{
			SchemeName: scheme.Name(),
			VideoID:    m.VideoID,
			UserID:     head.UserID,
		},
		received:  player.NewReceived(m),
		bwPred:    predict.NewBandwidth(0),
		delivered: make(chan struct{}, 1),
		start:     time.Now(),
	}
	if opts.PredictErrorDeg > 0 {
		s.vpPred = predict.NewViewportWithError(opts.PredictorHistory, opts.PredictErrorDeg, opts.PredictErrorSeed)
	} else {
		s.vpPred = predict.NewViewport(opts.PredictorHistory)
	}
	s.acct = player.NewAccountant(m, s.grid, opts.Viewport, opts.Metric, s.met)
	s.acct.Interpolate = opts.MaskInterpolation
	return s.run()
}

type session struct {
	conn   net.Conn
	m      *video.Manifest
	head   *trace.HeadTrace
	scheme player.Scheme
	opts   PlayOptions
	grid   *geom.Grid

	start time.Time

	mu         sync.Mutex
	received   *player.Received
	deliveries []player.Delivery
	lastEvent  time.Duration // last send/receive instant, for throughput
	bwPred     *predict.Bandwidth
	// finished marks the session complete: late deliveries (the receiver
	// may outlive Play when the caller keeps the connection open) are
	// dropped instead of racing with the returned metrics.
	finished bool

	vpPred *predict.Viewport
	acct   *player.Accountant
	met    *player.Metrics

	delivered chan struct{}

	gen uint32
}

func (s *session) now() time.Duration { return time.Since(s.start) }

// receiver drains TileData frames into the received state.
func (s *session) receiver(done chan<- error) {
	for {
		msg, err := proto.ReadMessage(s.conn)
		if err != nil {
			done <- err
			return
		}
		switch msg.Type {
		case proto.MsgTileData:
			at := s.now()
			size := int64(len(msg.TileData.Payload))
			s.mu.Lock()
			if s.finished {
				s.mu.Unlock()
				continue
			}
			s.received.Record(msg.TileData.Item, at)
			s.deliveries = append(s.deliveries, player.Delivery{Item: msg.TileData.Item, Bytes: size})
			s.met.BytesReceived += size
			if at > s.lastEvent {
				s.bwPred.ObserveTransfer(size, at-s.lastEvent)
			}
			s.lastEvent = at
			s.mu.Unlock()
			select {
			case s.delivered <- struct{}{}:
			default:
			}
		case proto.MsgBye:
			done <- nil
			return
		case proto.MsgError:
			done <- fmt.Errorf("client: server error: %s", msg.Error)
			return
		default:
			done <- fmt.Errorf("client: unexpected message type %d", msg.Type)
			return
		}
	}
}

func (s *session) run() (*player.Metrics, error) {
	recvErr := make(chan error, 1)
	go s.receiver(recvErr)

	policy := s.scheme.StallPolicy()
	interval := s.scheme.DecisionInterval()
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	frameDur := time.Second / time.Duration(s.m.FPS)
	totalFrames := s.m.NumFrames()

	var (
		playFrame    int
		stalled      = true // startup
		startup      = true
		stallStart   time.Duration
		nextFrameAt  time.Duration
		nextHead     time.Duration
		nextDecision time.Duration
	)

	const startupGrace = time.Second

	requirementMet := func(now time.Duration, chunk int, ids []geom.TileID) bool {
		if startup && policy == player.NeverStall && now >= startupGrace {
			return true
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		for _, id := range ids {
			switch {
			case startup || policy == player.StallOnMissingAny:
				_, okP := s.received.BestPrimaryBy(chunk, id, now)
				if !okP && !s.received.HasMaskingBy(chunk, id, now) {
					return false
				}
			case policy == player.StallOnMissingMasking:
				if !s.received.HasMaskingBy(chunk, id, now) {
					return false
				}
			}
		}
		return true
	}

	renderFrame := func(now time.Duration) {
		chunk := s.m.ChunkOfFrame(playFrame)
		o := s.head.At(now)
		s.mu.Lock()
		s.acct.RenderFrame(chunk, o, s.received, now)
		s.mu.Unlock()
		playFrame++
		nextFrameAt = now + frameDur
	}

	tryResume := func(now time.Duration) {
		if !stalled {
			return
		}
		o := s.head.At(now)
		ids := s.opts.Viewport.Tiles(s.grid, o)
		chunk := s.m.ChunkOfFrame(playFrame)
		if !requirementMet(now, chunk, ids) {
			return
		}
		if startup {
			s.met.StartupDelay = now
			startup = false
		} else {
			s.met.RebufferDuration += now - stallStart
			s.met.StallIntervals = append(s.met.StallIntervals, player.StallInterval{Start: stallStart, End: now})
		}
		stalled = false
		renderFrame(now)
	}

	for playFrame < totalFrames {
		now := s.now()
		if now >= s.opts.MaxWall {
			s.met.Truncated = true
			if stalled && !startup {
				s.met.RebufferDuration += now - stallStart
			}
			break
		}

		// Feed head samples due by now.
		for nextHead <= now {
			s.vpPred.Observe(nextHead, s.head.At(nextHead))
			nextHead += s.head.SamplePeriod
		}
		tryResume(now)
		if now >= nextDecision {
			if err := s.decide(now, playFrame, stalled, nextFrameAt, frameDur); err != nil {
				return nil, err
			}
			nextDecision = now + interval
		}
		if !stalled && now >= nextFrameAt && playFrame < totalFrames {
			o := s.head.At(now)
			ids := s.opts.Viewport.Tiles(s.grid, o)
			chunk := s.m.ChunkOfFrame(playFrame)
			if policy != player.NeverStall && !requirementMet(now, chunk, ids) {
				stalled = true
				stallStart = now
				s.met.StallEvents++
			} else {
				renderFrame(now)
			}
		}
		if playFrame >= totalFrames {
			break
		}

		// Sleep until the next event, or wake on a delivery.
		wake := nextHead
		if nextDecision < wake {
			wake = nextDecision
		}
		if !stalled && nextFrameAt < wake {
			wake = nextFrameAt
		}
		if sleep := wake - s.now(); sleep > 0 {
			timer := time.NewTimer(sleep)
			select {
			case <-timer.C:
			case <-s.delivered:
				timer.Stop()
			case err := <-recvErr:
				timer.Stop()
				if err != nil {
					return nil, fmt.Errorf("client: receive: %w", err)
				}
				// Connection closed cleanly; keep playing what we have and
				// stop watching the (now idle) receiver.
				recvErr = nil
			}
		}
	}

	s.met.WallDuration = s.now()
	s.met.PlayDuration = time.Duration(s.met.TotalFrames) * frameDur
	_ = proto.WriteBye(s.conn)

	s.mu.Lock()
	s.finished = true
	s.acct.FinishWastage(s.deliveries)
	s.mu.Unlock()
	return s.met, nil
}

// decide runs the scheme and ships the resulting fetch list.
func (s *session) decide(now time.Duration, playFrame int, stalled bool, nextFrameAt time.Duration, frameDur time.Duration) error {
	s.mu.Lock()
	mbps := s.bwPred.PredictMbps()
	s.mu.Unlock()
	if mbps <= 0 {
		mbps = s.opts.AssumedStartMbps
	}
	base := nextFrameAt
	if stalled {
		base = now
	}
	ctx := &player.Context{
		Now:           now,
		PlayFrame:     playFrame,
		Stalled:       stalled,
		Manifest:      s.m,
		Grid:          s.grid,
		Viewport:      s.opts.Viewport,
		Received:      s.received,
		Predict:       s.vpPred.Predict,
		PredictedMbps: mbps,
		FrameDuration: frameDur,
		FrameDeadline: func(frame int) time.Duration {
			return base + time.Duration(frame-playFrame)*frameDur
		},
	}
	s.mu.Lock()
	items := s.scheme.Decide(ctx)
	s.gen++
	gen := s.gen
	if now > s.lastEvent {
		s.lastEvent = now
	}
	s.mu.Unlock()
	if err := proto.WriteRequest(s.conn, proto.Request{Generation: gen, Items: items}); err != nil {
		return fmt.Errorf("client: send request: %w", err)
	}
	return nil
}

// Dial connects to a Dragonfly server over TCP.
func Dial(addr string) (net.Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	return conn, nil
}
