// Package client implements the real-time streaming client: it drives any
// player.Scheme over the wire protocol against a tile server, replaying a
// user head trace in wall-clock time and producing the same session metrics
// as the discrete-event engine. This is the path exercised by the
// cmd/dragonfly-client binary and the live-stream example.
//
// The client is fault tolerant: PlayResilient wraps the session in a
// reconnector with read/write deadlines, exponential backoff with jitter,
// and a per-outage attempt budget. During an outage the playback loop keeps
// running in the NeverStall spirit — rendering from masking and accounting
// holes as skips — and on reconnect the session resumes via proto.MsgResume
// so already-held tiles are never re-downloaded.
package client

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"dragonfly/internal/chaos"
	"dragonfly/internal/geom"
	"dragonfly/internal/obs"
	"dragonfly/internal/player"
	"dragonfly/internal/predict"
	"dragonfly/internal/proto"
	"dragonfly/internal/quality"
	"dragonfly/internal/trace"
	"dragonfly/internal/video"
)

// DialFunc re-establishes a server connection; the reconnector calls it on
// every recovery attempt.
type DialFunc func() (net.Conn, error)

// client.dial fronts every dial the client performs — the opening
// connect, handshake retries, and every reconnect attempt — so chaos runs
// can refuse or stall connections fleet-wide (docs/RESILIENCE.md).
var siteClientDial = chaos.NewSite("client.dial")

// ErrReconnectBudget reports that ReconnectPolicy.TotalBudget elapsed with
// the client still unable to reach a server: the fleet is, as far as this
// session can tell, permanently dead. PlayResilient returns it (wrapped)
// when the budget runs out before the first successful handshake.
var ErrReconnectBudget = errors.New("client: total reconnect budget exhausted")

// chaosDial is the failpoint-fronted dial every connect path uses.
func chaosDial(dial DialFunc) (net.Conn, error) {
	if err := siteClientDial.Err(); err != nil {
		return nil, err
	}
	return dial()
}

// ReconnectPolicy tunes the client's fault tolerance. The zero value
// disables reconnection: a connection error ends the session, as it always
// did for plain Play.
type ReconnectPolicy struct {
	// MaxAttempts is the dial budget per outage; 0 disables reconnection.
	// When the budget is exhausted the session keeps playing what it holds
	// (continuous playback accounts the holes as skips).
	MaxAttempts int
	// BaseDelay is the first backoff delay (default 50 ms); it doubles per
	// attempt up to MaxDelay (default 2 s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Jitter adds a uniform random fraction of the delay (default 0.5),
	// decorrelating reconnection herds; negative disables jitter.
	Jitter float64
	// ReadTimeout is the per-read idle deadline. The server heartbeats
	// while its queue is idle, so a link silent for longer than this is
	// treated as dead. 0 disables the deadline.
	ReadTimeout time.Duration
	// WriteTimeout bounds each outgoing frame write. 0 disables it.
	WriteTimeout time.Duration
	// Seed feeds the jitter RNG so experiments replay deterministically.
	Seed int64
	// TotalBudget caps the total wall-clock time the session may spend
	// disconnected, summed across the opening dial and every outage.
	// Exhaustion before the first successful handshake fails the session
	// with a typed ErrReconnectBudget — a permanently dead fleet surfaces
	// as a prompt, classifiable error instead of an unbounded retry loop.
	// Mid-session exhaustion declares the link dead and playback carries
	// on with what is held (the same degradation as running out of
	// MaxAttempts — continuity is never sacrificed to a timer). 0 means
	// no wall-clock cap.
	TotalBudget time.Duration
}

// delay computes the backoff before the given (0-based) attempt.
func (p ReconnectPolicy) delay(attempt int, rng *rand.Rand) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max := p.MaxDelay
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	jitter := p.Jitter
	if jitter == 0 {
		jitter = 0.5
	}
	if jitter > 0 {
		d += time.Duration(float64(d) * jitter * rng.Float64())
	}
	return d
}

// PlayOptions tunes a session.
type PlayOptions struct {
	Metric           quality.Metric
	Viewport         geom.Viewport // zero = geom.DefaultViewport
	PredictorHistory time.Duration
	AssumedStartMbps float64
	// MaxWall caps the session in wall-clock time (default: 3x video + 30 s).
	MaxWall time.Duration

	// MaskInterpolation enables neighbor interpolation of masking holes
	// (§3.2 future work).
	MaskInterpolation bool

	// PredictErrorDeg injects uniform orientation noise into the viewport
	// predictor (the Figs 21-23 methodology); 0 disables.
	PredictErrorDeg  float64
	PredictErrorSeed int64

	// Reconnect enables fault tolerance (only effective through
	// PlayResilient, which supplies the dialer).
	Reconnect ReconnectPolicy

	// Trace, when non-nil, receives structured session events (fetches,
	// skips, stalls, outages, reconnects) for JSONL export.
	Trace *obs.Trace

	// Cohort labels the session for fleet QoE rollups, conventionally
	// "<trace class>:<network class>". It is stamped into the trace's
	// EvSession header and sent to the server (hello and resume) so
	// QoE-feedback shed scaling can key on it. Empty derives
	// "<head class>:net".
	Cohort string
}

// Play streams videoID from the server behind conn using the given scheme,
// replaying the head trace in real time, and returns the session metrics.
// The connection is not re-established on failure; use PlayResilient for a
// fault-tolerant session.
func Play(conn net.Conn, videoID string, head *trace.HeadTrace, scheme player.Scheme, opts PlayOptions) (*player.Metrics, error) {
	return play(conn, nil, videoID, head, scheme, opts)
}

// PlayResilient dials the server and streams videoID like Play, but
// survives connection faults: on a read/write error or idle timeout it
// redials with exponential backoff and resumes the session via the resume
// protocol, while playback keeps running on whatever is already held. The
// initial dial runs through the same backoff-and-redial loop that absorbs
// busy rejections, so a briefly absent backend (restart, failover gap)
// delays the session start instead of killing it.
func PlayResilient(dial DialFunc, videoID string, head *trace.HeadTrace, scheme player.Scheme, opts PlayOptions) (*player.Metrics, error) {
	if dial == nil {
		return nil, fmt.Errorf("client: dial function is required")
	}
	return play(nil, dial, videoID, head, scheme, opts)
}

func play(conn net.Conn, dial DialFunc, videoID string, head *trace.HeadTrace, scheme player.Scheme, opts PlayOptions) (*player.Metrics, error) {
	if head == nil || scheme == nil {
		return nil, fmt.Errorf("client: head trace and scheme are required")
	}
	if conn == nil && dial == nil {
		return nil, fmt.Errorf("client: a connection or dial function is required")
	}
	if len(head.Samples) == 0 || head.SamplePeriod <= 0 {
		// The playback loop advances the head schedule by SamplePeriod; a
		// degenerate trace would spin it forever.
		return nil, fmt.Errorf("client: head trace needs samples and a positive sample period")
	}
	if opts.Viewport.RadiusDeg == 0 {
		opts.Viewport = geom.DefaultViewport
	}
	if opts.AssumedStartMbps == 0 {
		opts.AssumedStartMbps = 5
	}
	if opts.Cohort == "" {
		opts.Cohort = head.ClassName() + ":net"
	}
	// The session header leads the trace so consumers can cohort-key every
	// later event; handshake retries (EvBusy) come after it by design.
	opts.Trace.Add(obs.SessionEvent(videoID, opts.Cohort))

	// The opening dial and handshake retry failed connects and busy
	// rejections (admission control: connection limit or drain) with the
	// same backoff the reconnector uses, when a dialer is available to
	// re-establish the link. MaxAttempts of zero keeps the historical
	// single-shot behavior: the first failure of either kind is fatal.
	seed := opts.Reconnect.Seed
	if seed == 0 {
		seed = 1
	}
	hsRng := rand.New(rand.NewSource(seed ^ 0x5bd1e995))
	// TotalBudget walls the whole opening phase: a fleet that refuses every
	// dial fails with a typed, classifiable error when the clock runs out,
	// even if MaxAttempts would have allowed further tries.
	var dialDeadline time.Time
	if b := opts.Reconnect.TotalBudget; b > 0 {
		dialDeadline = time.Now().Add(b)
	}
	overBudget := func() bool {
		return !dialDeadline.IsZero() && !time.Now().Before(dialDeadline)
	}
	var m *video.Manifest
	var busyRejects int64
	for attempt := 0; ; attempt++ {
		if conn == nil {
			c, err := chaosDial(dial)
			if err != nil {
				if overBudget() {
					return nil, fmt.Errorf("client: dial: %w (last error: %v)", ErrReconnectBudget, err)
				}
				if attempt >= opts.Reconnect.MaxAttempts {
					return nil, fmt.Errorf("client: dial: %w", err)
				}
				time.Sleep(opts.Reconnect.delay(attempt, hsRng))
				continue
			}
			conn = c
		}
		m2, err := handshake(conn, videoID, opts.Cohort)
		if err == nil {
			m = m2
			break
		}
		retryable := errors.Is(err, errBusy) || errors.Is(err, errHandshakeLink)
		if retryable && overBudget() {
			conn.Close()
			return nil, fmt.Errorf("client: handshake: %w (last error: %v)", ErrReconnectBudget, err)
		}
		if dial == nil || !retryable || attempt >= opts.Reconnect.MaxAttempts {
			conn.Close()
			return nil, err
		}
		if errors.Is(err, errBusy) {
			busyRejects++
			opts.Trace.Record(0, obs.EvBusy, int64(attempt+1))
		}
		conn.Close()
		conn = nil
		time.Sleep(opts.Reconnect.delay(attempt, hsRng))
	}

	videoDur := time.Duration(m.NumFrames()) * time.Second / time.Duration(m.FPS)
	if opts.MaxWall == 0 {
		opts.MaxWall = 3*videoDur + 30*time.Second
	}

	s := &session{
		conn:   conn,
		dial:   dial,
		rp:     opts.Reconnect,
		rng:    rand.New(rand.NewSource(seed)),
		m:      m,
		head:   head,
		scheme: scheme,
		opts:   opts,
		grid:   m.Grid(),
		met: &player.Metrics{
			SchemeName: scheme.Name(),
			VideoID:    m.VideoID,
			UserID:     head.UserID,
		},
		received:  player.NewReceived(m),
		bwPred:    predict.NewBandwidth(0),
		delivered: make(chan struct{}, 1),
		fatal:     make(chan error, 1),
		start:     time.Now(),
	}
	if opts.PredictErrorDeg > 0 {
		s.vpPred = predict.NewViewportWithError(opts.PredictorHistory, opts.PredictErrorDeg, opts.PredictErrorSeed)
	} else {
		s.vpPred = predict.NewViewport(opts.PredictorHistory)
	}
	s.acct = player.NewAccountant(m, s.grid, opts.Viewport, opts.Metric, s.met)
	s.acct.Interpolate = opts.MaskInterpolation
	s.met.BusyRejects = busyRejects
	return s.run()
}

// errBusy marks a handshake rejected by server admission control (connection
// limit or drain); it is retryable with backoff when a dialer is available.
var errBusy = errors.New("client: server busy")

// errHandshakeLink marks a handshake that died at the transport level —
// the connection was severed between dial and manifest (an accept-path
// drop, a mid-splice failure, a host dying under the dial). Like busy,
// it is retryable with a fresh dial; unlike a server error message, the
// server rejected nothing.
var errHandshakeLink = errors.New("client: handshake link failure")

// handshake sends the hello and reads the manifest on a fresh connection.
func handshake(conn net.Conn, videoID, cohort string) (*video.Manifest, error) {
	if err := proto.WriteHello(conn, proto.Hello{VideoID: videoID, Cohort: cohort}); err != nil {
		// A fast-rejecting server writes its busy error and closes without
		// reading the hello, so the write can fail with a broken pipe while
		// the rejection sits unread in the receive buffer. Prefer the typed
		// error if one is there.
		if msg, rerr := proto.ReadMessage(conn); rerr == nil && msg.Type == proto.MsgError {
			if proto.IsBusyText(msg.Error) {
				return nil, fmt.Errorf("%w: %s", errBusy, msg.Error)
			}
			return nil, fmt.Errorf("client: server error: %s", msg.Error)
		}
		return nil, fmt.Errorf("%w: hello: %v", errHandshakeLink, err)
	}
	msg, err := proto.ReadMessage(conn)
	if err != nil {
		return nil, fmt.Errorf("%w: read manifest: %v", errHandshakeLink, err)
	}
	switch msg.Type {
	case proto.MsgManifest:
		return msg.Manifest, nil
	case proto.MsgError:
		if proto.IsBusyText(msg.Error) {
			return nil, fmt.Errorf("%w: %s", errBusy, msg.Error)
		}
		return nil, fmt.Errorf("client: server error: %s", msg.Error)
	default:
		return nil, fmt.Errorf("client: expected manifest, got type %d", msg.Type)
	}
}

type session struct {
	dial DialFunc
	rp   ReconnectPolicy
	rng  *rand.Rand // jitter source; reconnector goroutine only

	m      *video.Manifest
	head   *trace.HeadTrace
	scheme player.Scheme
	opts   PlayOptions
	grid   *geom.Grid

	start time.Time

	mu         sync.Mutex
	conn       net.Conn // nil while disconnected
	connID     int      // generation token invalidating stale receivers
	down       bool     // an outage is in progress
	downAt     time.Duration
	linkDead   bool // reconnect budget exhausted or server said goodbye
	received   *player.Received
	deliveries []player.Delivery
	lastEvent  time.Duration // last send/receive instant, for throughput
	bwPred     *predict.Bandwidth
	lastReq    []player.RequestItem
	// finished marks the session complete: late deliveries (the receiver
	// may outlive Play when the caller keeps the connection open) are
	// dropped instead of racing with the returned metrics.
	finished bool

	vpPred *predict.Viewport
	acct   *player.Accountant
	met    *player.Metrics

	delivered chan struct{}
	fatal     chan error

	gen uint32
}

func (s *session) now() time.Duration { return time.Since(s.start) }

func (s *session) wakeLoop() {
	select {
	case s.delivered <- struct{}{}:
	default:
	}
}

func (s *session) reportFatal(err error) {
	select {
	case s.fatal <- err:
	default:
	}
}

// receiver drains TileData frames from one connection into the received
// state; id identifies the connection so a stale receiver cannot report an
// outage for a link that has already been replaced.
func (s *session) receiver(conn net.Conn, id int) {
	// rbuf is this receiver's recycled frame-body buffer
	// (proto.ReadMessageBuf): after the first large tile it makes the
	// steady-state read path allocation-free. Nothing below outlives one
	// iteration holding msg — the payload is checksummed, measured, and
	// recorded by value, never retained.
	var rbuf []byte
	for {
		if s.rp.ReadTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.rp.ReadTimeout))
		}
		var msg *proto.Message
		var err error
		msg, rbuf, err = proto.ReadMessageBuf(conn, rbuf)
		if err != nil {
			if errors.Is(err, proto.ErrChecksum) {
				// A corrupted frame desynchronizes the stream; tear the link
				// down and let the reconnector resume. The resume bitmap does
				// not hold the lost tile, so the server re-sends it.
				s.mu.Lock()
				s.met.CorruptFrames++
				s.mu.Unlock()
			}
			s.linkLost(id, err)
			return
		}
		switch msg.Type {
		case proto.MsgTileData:
			at := s.now()
			size := int64(len(msg.TileData.Payload))
			// Verify the payload against the manifest checksum before
			// marking the tile held: a corrupt tile is dropped (never
			// rendered) and refetched by the next decide/resume cycle. The
			// bytes still crossed the link, so they count toward received
			// bytes and the throughput estimate.
			if want, hasSum := msg.TileData.Item.Checksum(s.m); hasSum && proto.PayloadChecksum(msg.TileData.Payload) != want {
				s.mu.Lock()
				if !s.finished {
					s.met.CorruptTiles++
					s.met.BytesReceived += size
					if at > s.lastEvent {
						s.bwPred.ObserveTransfer(size, at-s.lastEvent)
					}
					s.lastEvent = at
				}
				s.mu.Unlock()
				s.opts.Trace.Add(obs.Event{At: at, Kind: obs.EvCorrupt, Chunk: msg.TileData.Item.Chunk, Tile: int(msg.TileData.Item.Tile), N: size})
				continue
			}
			s.mu.Lock()
			if s.finished {
				s.mu.Unlock()
				continue
			}
			s.received.Record(msg.TileData.Item, at)
			s.deliveries = append(s.deliveries, player.Delivery{Item: msg.TileData.Item, Bytes: size})
			s.met.BytesReceived += size
			if at > s.lastEvent {
				s.bwPred.ObserveTransfer(size, at-s.lastEvent)
			}
			s.lastEvent = at
			s.mu.Unlock()
			s.opts.Trace.Add(obs.Event{At: at, Kind: obs.EvFetch, Chunk: msg.TileData.Item.Chunk, Tile: int(msg.TileData.Item.Tile), N: size})
			s.wakeLoop()
		case proto.MsgPing:
			// Heartbeat: the link is idle but alive.
		case proto.MsgBye:
			// Server finished (or drained on shutdown): no more data will
			// ever arrive on this session; keep playing what we have.
			s.mu.Lock()
			if s.connID == id {
				s.linkDead = true
			}
			s.mu.Unlock()
			s.opts.Trace.Record(s.now(), obs.EvLinkDead, 0)
			return
		case proto.MsgError:
			s.reportFatal(fmt.Errorf("client: server error: %s", msg.Error))
			return
		default:
			s.reportFatal(fmt.Errorf("client: unexpected message type %d", msg.Type))
			return
		}
	}
}

// linkLost handles a connection failure on conn id: fatal for a plain Play
// session, otherwise the start of an outage with a reconnector behind it.
func (s *session) linkLost(id int, err error) {
	s.mu.Lock()
	if s.finished || id != s.connID || s.down || s.linkDead {
		s.mu.Unlock()
		return
	}
	if s.dial == nil || s.rp.MaxAttempts <= 0 {
		s.mu.Unlock()
		s.reportFatal(fmt.Errorf("client: connection: %w", err))
		return
	}
	s.down = true
	s.downAt = s.now()
	downAt := s.downAt
	s.met.Disconnects++
	old := s.conn
	s.conn = nil
	s.mu.Unlock()
	s.opts.Trace.Record(downAt, obs.EvOutage, 0)
	if old != nil {
		old.Close()
	}
	go s.reconnectLoop()
}

// reconnectLoop dials with jittered exponential backoff and resumes the
// session; when the attempt budget runs out the link is declared dead and
// playback carries on with what is held.
func (s *session) reconnectLoop() {
	for attempt := 0; attempt < s.rp.MaxAttempts; attempt++ {
		time.Sleep(s.rp.delay(attempt, s.rng))
		s.mu.Lock()
		if s.finished {
			s.mu.Unlock()
			return
		}
		// TotalBudget counts disconnected wall-clock across all outages:
		// what earlier outages already billed plus the current one so far.
		// Exhaustion degrades exactly like running out of MaxAttempts —
		// the link is declared dead below and playback continues on what
		// is held.
		if b := s.rp.TotalBudget; b > 0 && s.met.OutageDuration+(s.now()-s.downAt) > b {
			s.mu.Unlock()
			break
		}
		sum := s.received.Summary()
		s.mu.Unlock()

		conn, err := chaosDial(s.dial)
		if err != nil {
			continue
		}
		if err := s.resume(conn, sum); err != nil {
			conn.Close()
			continue
		}

		s.mu.Lock()
		if s.finished {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.connID++
		id := s.connID
		s.conn = conn
		s.down = false
		now := s.now()
		s.met.OutageDuration += now - s.downAt
		s.met.ResumedTiles += int64(sum.Count())
		// Do not bill the outage to the throughput predictor.
		s.lastEvent = now
		// Copy while holding the lock: lastReq's backing array is reused by
		// the next decision, and the wire write below happens unlocked.
		req := append([]player.RequestItem(nil), s.lastReq...)
		s.gen++
		gen := s.gen
		s.mu.Unlock()

		s.opts.Trace.Record(now, obs.EvReconnect, int64(sum.Count()))
		go s.receiver(conn, id)
		// Re-issue the outstanding fetch list immediately rather than
		// waiting for the next decision epoch.
		if len(req) > 0 {
			s.writeRequest(conn, id, gen, req)
		}
		s.wakeLoop()
		return
	}
	s.mu.Lock()
	s.linkDead = true
	s.mu.Unlock()
	s.opts.Trace.Record(s.now(), obs.EvLinkDead, 0)
	s.wakeLoop()
}

// resume performs the resume handshake on a fresh connection.
func (s *session) resume(conn net.Conn, sum player.HeldSummary) error {
	if s.rp.WriteTimeout > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(s.rp.WriteTimeout))
	}
	if err := proto.WriteResume(conn, proto.Resume{
		Version: proto.ProtoVersion,
		VideoID: s.m.VideoID,
		Held:    sum,
		Cohort:  s.opts.Cohort,
	}); err != nil {
		return fmt.Errorf("client: resume: %w", err)
	}
	handshake := s.rp.ReadTimeout
	if handshake <= 0 {
		handshake = 10 * time.Second
	}
	_ = conn.SetReadDeadline(time.Now().Add(handshake))
	msg, err := proto.ReadMessage(conn)
	if err != nil {
		return fmt.Errorf("client: resume ack: %w", err)
	}
	_ = conn.SetReadDeadline(time.Time{})
	switch msg.Type {
	case proto.MsgManifest:
		return nil
	case proto.MsgError:
		if proto.IsBusyText(msg.Error) {
			// Admission control said try later; the reconnect loop's backoff
			// is exactly the retry the server asked for.
			s.mu.Lock()
			s.met.BusyRejects++
			s.mu.Unlock()
			s.opts.Trace.Record(s.now(), obs.EvBusy, 0)
			return fmt.Errorf("%w: %s", errBusy, msg.Error)
		}
		return fmt.Errorf("client: resume rejected: %s", msg.Error)
	default:
		return fmt.Errorf("client: resume expected manifest, got type %d", msg.Type)
	}
}

// writeRequest ships one fetch list on conn id, treating a failure as a
// link loss.
func (s *session) writeRequest(conn net.Conn, id int, gen uint32, items []player.RequestItem) {
	if s.rp.WriteTimeout > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(s.rp.WriteTimeout))
	}
	if err := proto.WriteRequest(conn, proto.Request{Generation: gen, Items: items}); err != nil {
		s.linkLost(id, fmt.Errorf("send request: %w", err))
	}
}

func (s *session) run() (*player.Metrics, error) {
	s.mu.Lock()
	conn, id := s.conn, s.connID
	s.mu.Unlock()
	go s.receiver(conn, id)

	policy := s.scheme.StallPolicy()
	interval := s.scheme.DecisionInterval()
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	frameDur := time.Second / time.Duration(s.m.FPS)
	totalFrames := s.m.NumFrames()

	var (
		playFrame    int
		stalled      = true // startup
		startup      = true
		stallStart   time.Duration
		nextFrameAt  time.Duration
		nextHead     time.Duration
		nextDecision time.Duration
	)

	const startupGrace = time.Second

	requirementMet := func(now time.Duration, chunk int, ids []geom.TileID) bool {
		if startup && policy == player.NeverStall && now >= startupGrace {
			return true
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		for _, id := range ids {
			switch {
			case startup || policy == player.StallOnMissingAny:
				_, okP := s.received.BestPrimaryBy(chunk, id, now)
				if !okP && !s.received.HasMaskingBy(chunk, id, now) {
					return false
				}
			case policy == player.StallOnMissingMasking:
				if !s.received.HasMaskingBy(chunk, id, now) {
					return false
				}
			}
		}
		return true
	}

	renderFrame := func(now time.Duration) {
		chunk := s.m.ChunkOfFrame(playFrame)
		o := s.head.At(now)
		s.mu.Lock()
		skips, masks, blanks := s.met.PrimarySkipFrames, s.met.RenderedMasking, s.met.RenderedBlank
		s.acct.RenderFrame(chunk, o, s.received, now)
		skips, masks, blanks = s.met.PrimarySkipFrames-skips, s.met.RenderedMasking-masks, s.met.RenderedBlank-blanks
		var score float64
		scored := len(s.met.FrameScore) > 0
		if scored {
			score = s.met.FrameScore[len(s.met.FrameScore)-1]
		}
		s.mu.Unlock()
		if s.opts.Trace != nil {
			if scored {
				s.opts.Trace.Add(obs.Event{At: now, Kind: obs.EvQuality, Chunk: chunk, N: int64(score * 100)})
			}
			if skips > 0 {
				s.opts.Trace.Add(obs.Event{At: now, Kind: obs.EvSkip, Chunk: chunk})
			}
			if masks > 0 {
				s.opts.Trace.Add(obs.Event{At: now, Kind: obs.EvMask, Chunk: chunk, N: masks})
			}
			if blanks > 0 {
				s.opts.Trace.Add(obs.Event{At: now, Kind: obs.EvBlank, Chunk: chunk, N: blanks})
			}
		}
		playFrame++
		nextFrameAt = now + frameDur
	}

	tryResume := func(now time.Duration) {
		if !stalled {
			return
		}
		o := s.head.At(now)
		ids := s.opts.Viewport.Tiles(s.grid, o)
		chunk := s.m.ChunkOfFrame(playFrame)
		if !requirementMet(now, chunk, ids) {
			return
		}
		if startup {
			s.met.StartupDelay = now
			startup = false
			s.opts.Trace.Record(now, obs.EvStartup, int64(now/time.Millisecond))
		} else {
			s.met.RebufferDuration += now - stallStart
			s.met.StallIntervals = append(s.met.StallIntervals, player.StallInterval{Start: stallStart, End: now})
			s.opts.Trace.Record(now, obs.EvResume, int64((now-stallStart)/time.Millisecond))
		}
		stalled = false
		renderFrame(now)
	}

	for playFrame < totalFrames {
		now := s.now()
		if now >= s.opts.MaxWall {
			s.met.Truncated = true
			if stalled && !startup {
				s.met.RebufferDuration += now - stallStart
			}
			break
		}

		// Feed head samples due by now.
		for nextHead <= now {
			s.vpPred.Observe(nextHead, s.head.At(nextHead))
			nextHead += s.head.SamplePeriod
		}
		tryResume(now)
		if now >= nextDecision {
			s.decide(now, playFrame, stalled, nextFrameAt, frameDur)
			nextDecision = now + interval
		}
		if !stalled && now >= nextFrameAt && playFrame < totalFrames {
			o := s.head.At(now)
			ids := s.opts.Viewport.Tiles(s.grid, o)
			chunk := s.m.ChunkOfFrame(playFrame)
			if policy != player.NeverStall && !requirementMet(now, chunk, ids) {
				stalled = true
				stallStart = now
				s.met.StallEvents++
				s.opts.Trace.Add(obs.Event{At: now, Kind: obs.EvStall, Chunk: chunk})
			} else {
				renderFrame(now)
			}
		}
		if playFrame >= totalFrames {
			break
		}

		// Sleep until the next event, or wake on a delivery/reconnect.
		wake := nextHead
		if nextDecision < wake {
			wake = nextDecision
		}
		if !stalled && nextFrameAt < wake {
			wake = nextFrameAt
		}
		if sleep := wake - s.now(); sleep > 0 {
			timer := time.NewTimer(sleep)
			select {
			case <-timer.C:
			case <-s.delivered:
				timer.Stop()
			case err := <-s.fatal:
				timer.Stop()
				return nil, err
			}
		}
	}

	s.met.WallDuration = s.now()
	s.met.PlayDuration = time.Duration(s.met.TotalFrames) * frameDur

	s.mu.Lock()
	s.finished = true
	if s.down {
		// Close the open outage interval: the session ended disconnected.
		s.met.OutageDuration += s.now() - s.downAt
		s.down = false
	}
	conn = s.conn
	s.acct.FinishWastage(s.deliveries)
	s.mu.Unlock()
	if conn != nil {
		_ = proto.WriteBye(conn)
	}
	return s.met, nil
}

// decide runs the scheme and ships the resulting fetch list; during an
// outage the list is recorded and shipped by the reconnector instead.
func (s *session) decide(now time.Duration, playFrame int, stalled bool, nextFrameAt time.Duration, frameDur time.Duration) {
	s.mu.Lock()
	mbps := s.bwPred.PredictMbps()
	s.mu.Unlock()
	if mbps <= 0 {
		mbps = s.opts.AssumedStartMbps
	}
	base := nextFrameAt
	if stalled {
		base = now
	}
	ctx := &player.Context{
		Now:           now,
		PlayFrame:     playFrame,
		Stalled:       stalled,
		Manifest:      s.m,
		Grid:          s.grid,
		Viewport:      s.opts.Viewport,
		Received:      s.received,
		Predict:       s.vpPred.Predict,
		PredictedMbps: mbps,
		FrameDuration: frameDur,
		FrameDeadline: func(frame int) time.Duration {
			return base + time.Duration(frame-playFrame)*frameDur
		},
	}
	s.mu.Lock()
	items := s.scheme.Decide(ctx)
	s.gen++
	gen := s.gen
	// Copy: Decide's result may alias scheme-owned buffers that the next
	// decision overwrites, and the reconnector re-issues lastReq later.
	s.lastReq = append(s.lastReq[:0], items...)
	if now > s.lastEvent {
		s.lastEvent = now
	}
	conn, id := s.conn, s.connID
	s.mu.Unlock()
	s.opts.Trace.Record(now, obs.EvDecide, int64(len(items)))
	if conn == nil {
		return // disconnected; the reconnector re-issues lastReq on resume
	}
	s.writeRequest(conn, id, gen, items)
}

// DefaultDialTimeout bounds Dial when no explicit timeout is given.
const DefaultDialTimeout = 10 * time.Second

// Dial connects to a Dragonfly server over TCP with the default timeout.
func Dial(addr string) (net.Conn, error) {
	return DialTimeout(addr, DefaultDialTimeout)
}

// DialTimeout connects to a Dragonfly server over TCP, failing after the
// given timeout instead of hanging on an unresponsive address.
func DialTimeout(addr string, timeout time.Duration) (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	return conn, nil
}
