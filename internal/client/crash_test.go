package client

import (
	"context"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"dragonfly/internal/core"
	"dragonfly/internal/netem"
	"dragonfly/internal/player"
	"dragonfly/internal/proto"
	"dragonfly/internal/server"
	"dragonfly/internal/trace"
	"dragonfly/internal/video"
)

// crashRig models a server process that can be SIGKILLed and restarted on
// the same address mid-stream: the dialer always reaches whichever instance
// is live, and a crash abruptly closes every server-side connection (no
// goodbye, no drain) and swaps in a fresh server.Server with zero state.
// The only thing that survives a crash is what the client holds — which is
// exactly what the resume protocol must be able to rebuild from.
type crashRig struct {
	m  *video.Manifest
	fl *netem.FaultLink

	mu        sync.Mutex
	srv       *server.Server
	conns     []net.Conn
	instances []*server.Server
}

func newCrashRig(m *video.Manifest, fl *netem.FaultLink) *crashRig {
	r := &crashRig{m: m, fl: fl}
	r.srv = r.freshServer()
	r.instances = []*server.Server{r.srv}
	return r
}

func (r *crashRig) freshServer() *server.Server {
	s := server.New(r.m)
	s.Heartbeat = 100 * time.Millisecond
	return s
}

func (r *crashRig) dial() (net.Conn, error) {
	clientConn, serverConn := r.fl.Pipe()
	r.mu.Lock()
	srv := r.srv
	r.conns = append(r.conns, serverConn)
	r.mu.Unlock()
	go func() {
		defer serverConn.Close()
		_ = srv.HandleConn(serverConn)
	}()
	return clientConn, nil
}

// crash kills the process: every live server-side connection dies instantly
// and all server state is gone. The replacement instance starts cold.
func (r *crashRig) crash() {
	r.mu.Lock()
	conns := r.conns
	r.conns = nil
	r.srv = r.freshServer()
	r.instances = append(r.instances, r.srv)
	r.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// totals sums the send accounting across every instance that ever ran: a
// duplicate primary sent by the restarted server shows up here.
func (r *crashRig) totals() server.Counters {
	r.mu.Lock()
	defer r.mu.Unlock()
	var sum server.Counters
	for _, s := range r.instances {
		c := s.Counters()
		sum.PrimarySent += c.PrimarySent
		sum.MaskTileSent += c.MaskTileSent
		sum.MaskFullSent += c.MaskFullSent
		sum.Resumes += c.Resumes
		sum.ResumedItems += c.ResumedItems
		sum.CorruptFrames += c.CorruptFrames
		sum.RejectedConns += c.RejectedConns
	}
	return sum
}

func (r *crashRig) generations() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.instances)
}

// TestPlayResilientSurvivesServerRestart crashes the serving process twice
// mid-stream. The session must complete continuously, the restarted (cold)
// server must rebuild its dedup state purely from the client's held-tile
// bitmap, and no primary tile may ever be transmitted twice — summed across
// every server instance that ran.
func TestPlayResilientSurvivesServerRestart(t *testing.T) {
	m := liveManifest()
	fl := &netem.FaultLink{
		Link: netem.Link{Trace: &trace.BandwidthTrace{SamplePeriod: time.Second, Mbps: []float64{20}}},
	}
	defer fl.Stop()
	rig := newCrashRig(m, fl)

	for _, at := range []time.Duration{300 * time.Millisecond, 900 * time.Millisecond} {
		timer := time.AfterFunc(at, rig.crash)
		defer timer.Stop()
	}

	met, err := PlayResilient(rig.dial, "live", liveHead(4*time.Second), core.NewDefault(), PlayOptions{
		Reconnect: ReconnectPolicy{
			MaxAttempts: 8,
			BaseDelay:   20 * time.Millisecond,
			MaxDelay:    200 * time.Millisecond,
			ReadTimeout: 400 * time.Millisecond,
			Seed:        42,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	if met.TotalFrames != m.NumFrames() {
		t.Fatalf("rendered %d frames, want %d", met.TotalFrames, m.NumFrames())
	}
	if met.RebufferDuration != 0 {
		t.Errorf("NeverStall session rebuffered %v across restarts", met.RebufferDuration)
	}
	if met.Truncated {
		t.Error("session truncated")
	}
	if met.Disconnects < 2 {
		t.Errorf("Disconnects = %d, want >= 2 (one per crash)", met.Disconnects)
	}

	if g := rig.generations(); g != 3 {
		t.Fatalf("ran %d server instances, want 3", g)
	}
	c := rig.totals()
	// The replacement instances started with zero state; their knowledge of
	// what the client holds can only have come from resume summaries.
	if c.Resumes < 2 {
		t.Errorf("resumes across instances = %d, want >= 2", c.Resumes)
	}
	if c.ResumedItems <= 0 {
		t.Errorf("ResumedItems = %d, want > 0", c.ResumedItems)
	}
	maxPrimaries := int64(m.NumChunks * m.NumTiles())
	if c.PrimarySent > maxPrimaries {
		t.Errorf("%d primaries sent for %d slots: a restarted server re-sent held tiles", c.PrimarySent, maxPrimaries)
	}
	checkAccounting(t, met)
}

// TestPlayResilientSurvivesRestartAndCorruption is the combined chaos run of
// ISSUE.md: bit flips and a truncation corrupt the stream while the server
// process is killed and restarted mid-session. No corrupt tile may be
// rendered (the frame CRC tears the link down; the resume bitmap re-fetches
// the loss), no primary is ever sent twice, and playback completes without
// stalls outside the fault windows.
func TestPlayResilientSurvivesRestartAndCorruption(t *testing.T) {
	m := liveManifest()
	fl := &netem.FaultLink{
		Link: netem.Link{Trace: &trace.BandwidthTrace{SamplePeriod: time.Second, Mbps: []float64{20}}},
		Schedule: &netem.FaultSchedule{Events: []netem.FaultEvent{
			{At: 200 * time.Millisecond, Kind: netem.FaultBitFlip},
			{At: 600 * time.Millisecond, Kind: netem.FaultTruncate},
			{At: 1100 * time.Millisecond, Kind: netem.FaultBitFlip},
		}},
		Seed: 9,
	}
	defer fl.Stop()
	rig := newCrashRig(m, fl)
	timer := time.AfterFunc(850*time.Millisecond, rig.crash)
	defer timer.Stop()

	met, err := PlayResilient(rig.dial, "live", liveHead(4*time.Second), core.NewDefault(), PlayOptions{
		Reconnect: ReconnectPolicy{
			MaxAttempts: 8,
			BaseDelay:   20 * time.Millisecond,
			MaxDelay:    200 * time.Millisecond,
			ReadTimeout: 400 * time.Millisecond,
			Seed:        42,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	if met.TotalFrames != m.NumFrames() {
		t.Fatalf("rendered %d frames, want %d", met.TotalFrames, m.NumFrames())
	}
	if met.RebufferDuration != 0 {
		t.Errorf("session rebuffered %v under corruption chaos", met.RebufferDuration)
	}
	if met.Truncated {
		t.Error("session truncated")
	}
	// Each corruption (and the crash) costs the link: the client must have
	// torn down and recovered, never rendering a corrupted payload.
	if met.Disconnects < 3 {
		t.Errorf("Disconnects = %d, want >= 3", met.Disconnects)
	}
	c := rig.totals()
	maxPrimaries := int64(m.NumChunks * m.NumTiles())
	if c.PrimarySent > maxPrimaries {
		t.Errorf("%d primaries sent for %d slots: corruption chaos caused duplicate sends", c.PrimarySent, maxPrimaries)
	}
	if c.Resumes < 3 {
		t.Errorf("resumes = %d, want >= 3", c.Resumes)
	}
	checkAccounting(t, met)
}

// TestCorruptTileDroppedAndRefetched exercises the tile-checksum layer the
// frame CRC cannot: a (fake) server sends a frame that is perfectly valid on
// the wire but whose payload does not match the manifest checksum — a
// corrupt cache or disk read on the server side. The client must drop the
// tile (never rendering it), count it, and re-fetch it on a later decide
// cycle.
func TestCorruptTileDroppedAndRefetched(t *testing.T) {
	m := liveManifest()
	clientConn, srvConn := net.Pipe()
	defer clientConn.Close()

	go func() {
		defer srvConn.Close()
		msg, err := proto.ReadMessage(srvConn)
		if err != nil || msg.Type != proto.MsgHello {
			return
		}
		if err := proto.WriteManifest(srvConn, m); err != nil {
			return
		}
		sent := make(map[player.RequestItem]bool)
		corrupted := false
		for {
			msg, err := proto.ReadMessage(srvConn)
			if err != nil || msg.Type == proto.MsgBye {
				return
			}
			if msg.Type != proto.MsgRequest {
				continue
			}
			for _, it := range msg.Request.Items {
				key := it
				key.Quality = 0 // dedup per slot, not per quality
				if sent[key] {
					continue
				}
				payload := make([]byte, it.Size(m))
				if !corrupted && it.Stream == player.Primary {
					// One payload with valid framing but content that does
					// not match the manifest checksum. The slot is NOT
					// marked sent, so a later request re-sends it clean.
					corrupted = true
					bad := make([]byte, len(payload))
					if len(bad) > 0 {
						bad[0] = 0xFF
					}
					if err := proto.WriteTileData(srvConn, proto.TileData{Item: it, Payload: bad}); err != nil {
						return
					}
					continue
				}
				sent[key] = true
				if err := proto.WriteTileData(srvConn, proto.TileData{Item: it, Payload: payload}); err != nil {
					return
				}
			}
		}
	}()

	met, err := Play(clientConn, "live", liveHead(4*time.Second), core.NewDefault(), PlayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if met.TotalFrames != m.NumFrames() {
		t.Fatalf("rendered %d frames, want %d", met.TotalFrames, m.NumFrames())
	}
	if met.CorruptTiles != 1 {
		t.Errorf("CorruptTiles = %d, want exactly 1", met.CorruptTiles)
	}
	if met.CorruptFrames != 0 {
		t.Errorf("CorruptFrames = %d; the frame itself was valid", met.CorruptFrames)
	}
	checkAccounting(t, met)
}

// TestPlayRetriesBusyServer is the admission-control acceptance run: the
// (N+1)th session against a MaxConns-saturated server is fast-rejected with
// a retryable busy error; the client backs off, and once a slot frees it
// completes normally. Real TCP, because the fast-reject is written before
// the server reads the hello — which needs a buffered transport (on an
// unbuffered pipe both sides would block writing at each other).
func TestPlayRetriesBusyServer(t *testing.T) {
	m := liveManifest()
	srv := server.New(m)
	srv.Heartbeat = 100 * time.Millisecond
	srv.MaxConns = 1

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = srv.Serve(ctx, l) }()
	addr := l.Addr().String()

	// Occupy the only slot with a raw session, released shortly.
	holdClient, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _, _ = io.Copy(io.Discard, holdClient) }()
	if err := proto.WriteHello(holdClient, proto.Hello{VideoID: "live"}); err != nil {
		t.Fatal(err)
	}
	release := time.AfterFunc(300*time.Millisecond, func() {
		_ = proto.WriteBye(holdClient)
		holdClient.Close()
	})
	defer release.Stop()

	met, err := PlayResilient(func() (net.Conn, error) {
		return net.Dial("tcp", addr)
	}, "live", liveHead(4*time.Second), core.NewDefault(), PlayOptions{
		Reconnect: ReconnectPolicy{
			MaxAttempts: 10,
			BaseDelay:   50 * time.Millisecond,
			MaxDelay:    200 * time.Millisecond,
			ReadTimeout: 400 * time.Millisecond,
			Seed:        3,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if met.TotalFrames != m.NumFrames() {
		t.Fatalf("rendered %d frames, want %d", met.TotalFrames, m.NumFrames())
	}
	if met.BusyRejects < 1 {
		t.Errorf("BusyRejects = %d, want >= 1", met.BusyRejects)
	}
	if c := srv.Counters(); c.RejectedConns < 1 {
		t.Errorf("server RejectedConns = %d, want >= 1", c.RejectedConns)
	}
	checkAccounting(t, met)
}
