package client

import (
	"context"
	"net"
	"testing"
	"time"

	"dragonfly/internal/baseline"
	"dragonfly/internal/core"
	"dragonfly/internal/geom"
	"dragonfly/internal/netem"
	"dragonfly/internal/player"
	"dragonfly/internal/server"
	"dragonfly/internal/trace"
	"dragonfly/internal/video"
)

func liveManifest() *video.Manifest {
	// 3 seconds of 6x6 video keeps real-time tests quick.
	return video.Generate(video.GenParams{
		ID: "live", Rows: 6, Cols: 6, NumChunks: 3,
		TargetQP42Mbps: 0.8, TargetQP22Mbps: 6, Seed: 77,
	})
}

func liveHead(d time.Duration) *trace.HeadTrace {
	return trace.GenerateHead(trace.HeadGenParams{UserID: "live-user", Class: trace.MotionLow, Duration: d, Seed: 5})
}

// servePipe runs a server session over an in-memory shaped pipe.
func servePipe(t *testing.T, m *video.Manifest, link netem.Link) net.Conn {
	t.Helper()
	clientConn, serverConn := netem.Pipe(link)
	srv := server.New(m)
	go func() {
		defer serverConn.Close()
		_ = srv.HandleConn(serverConn)
	}()
	t.Cleanup(func() { clientConn.Close() })
	return clientConn
}

func TestPlayDragonflyOverPipe(t *testing.T) {
	m := liveManifest()
	link := netem.Link{Trace: &trace.BandwidthTrace{SamplePeriod: time.Second, Mbps: []float64{20}}}
	conn := servePipe(t, m, link)

	met, err := Play(conn, "live", liveHead(4*time.Second), core.NewDefault(), PlayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if met.TotalFrames != m.NumFrames() {
		t.Fatalf("rendered %d frames, want %d", met.TotalFrames, m.NumFrames())
	}
	if met.RebufferDuration != 0 {
		t.Error("Dragonfly rebuffered")
	}
	if met.IncompleteFrames != 0 {
		t.Errorf("incomplete frames: %d", met.IncompleteFrames)
	}
	if met.BytesReceived == 0 {
		t.Error("no bytes received")
	}
	if met.MedianScore() < 30 {
		t.Errorf("median score %.1f suspiciously low", met.MedianScore())
	}
	if met.Truncated {
		t.Error("session truncated")
	}
}

func TestPlayFlareOverPipeStallsOnSlowLink(t *testing.T) {
	m := liveManifest()
	// Starve the link below even the lowest-quality requirement at first.
	link := netem.Link{Trace: &trace.BandwidthTrace{
		SamplePeriod: time.Second, Mbps: []float64{2, 0.3, 0.3, 8, 8, 8},
	}}
	conn := servePipe(t, m, link)
	met, err := Play(conn, "live", liveHead(4*time.Second), baseline.NewFlare(baseline.FlareOptions{}), PlayOptions{
		MaxWall: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if met.TotalFrames == 0 {
		t.Fatal("no frames rendered")
	}
	if met.IncompleteFrames != 0 {
		t.Error("stall scheme rendered incomplete frames")
	}
	// The dead period must show up as rebuffering or startup delay.
	if met.RebufferDuration == 0 && met.StartupDelay < time.Second {
		t.Errorf("expected stalls or long startup; rebuf=%v startup=%v", met.RebufferDuration, met.StartupDelay)
	}
}

func TestPlayUnknownVideo(t *testing.T) {
	m := liveManifest()
	conn := servePipe(t, m, netem.Link{})
	_, err := Play(conn, "nope", liveHead(time.Second), core.NewDefault(), PlayOptions{})
	if err == nil {
		t.Fatal("unknown video accepted")
	}
}

func TestPlayValidatesArgs(t *testing.T) {
	c, s := net.Pipe()
	defer c.Close()
	defer s.Close()
	if _, err := Play(c, "x", nil, core.NewDefault(), PlayOptions{}); err == nil {
		t.Error("nil head accepted")
	}
	if _, err := Play(c, "x", liveHead(time.Second), nil, PlayOptions{}); err == nil {
		t.Error("nil scheme accepted")
	}
}

func TestEndToEndOverTCP(t *testing.T) {
	m := liveManifest()
	srv := server.New(m)
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	link := netem.Link{Trace: &trace.BandwidthTrace{SamplePeriod: time.Second, Mbps: []float64{15}}}
	l := netem.WrapListener(inner, link)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = srv.Serve(ctx, l) }()

	conn, err := Dial(inner.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	met, err := Play(conn, "live", liveHead(4*time.Second), core.NewDefault(), PlayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if met.TotalFrames != m.NumFrames() {
		t.Fatalf("rendered %d frames over TCP", met.TotalFrames)
	}
	if met.IncompleteFrames != 0 {
		t.Errorf("incomplete frames over TCP: %d", met.IncompleteFrames)
	}
}

func TestServerConcurrentSessions(t *testing.T) {
	m := liveManifest()
	srv := server.New(m)
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = srv.Serve(ctx, inner) }()

	type result struct {
		met *player.Metrics
		err error
	}
	results := make(chan result, 3)
	for i := 0; i < 3; i++ {
		go func(i int) {
			conn, err := Dial(inner.Addr().String())
			if err != nil {
				results <- result{err: err}
				return
			}
			defer conn.Close()
			met, err := Play(conn, "live", liveHead(4*time.Second), core.NewDefault(), PlayOptions{})
			results <- result{met: met, err: err}
		}(i)
	}
	for i := 0; i < 3; i++ {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.met.TotalFrames != m.NumFrames() {
			t.Errorf("session %d rendered %d frames", i, r.met.TotalFrames)
		}
	}
}

func TestServerRedundancySuppression(t *testing.T) {
	// Issue overlapping requests directly over the protocol and count the
	// server's transmissions.
	m := liveManifest()
	clientConn, serverConn := net.Pipe()
	srv := server.New(m)
	go func() {
		defer serverConn.Close()
		_ = srv.HandleConn(serverConn)
	}()
	defer clientConn.Close()

	met, err := Play(clientConn, "live", liveHead(4*time.Second), core.NewDefault(), PlayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Every Decide re-states the masking plan; the server must have sent
	// each full-360 chunk exactly once.
	var maskBytes int64
	for c := 0; c < m.NumChunks; c++ {
		maskBytes += m.Full360Size(c, video.Lowest)
	}
	if met.BytesReceived < maskBytes {
		t.Errorf("received %d < masking floor %d", met.BytesReceived, maskBytes)
	}
	// Upper bound: masking + at most one primary variant per (chunk, tile),
	// each no larger than the top-quality encoding. More than that would
	// mean the server re-sent tiles.
	var maxPrimary int64
	for c := 0; c < m.NumChunks; c++ {
		for tl := 0; tl < m.NumTiles(); tl++ {
			maxPrimary += m.TileSize(c, geom.TileID(tl), video.Highest)
		}
	}
	if met.BytesReceived > maskBytes+maxPrimary {
		t.Errorf("received %d exceeds one-variant-per-tile bound %d", met.BytesReceived, maskBytes+maxPrimary)
	}
}

// TestClientMatchesEngine validates the two playback paths against each
// other: the same scheme, video, head trace and (effectively unconstrained)
// link must produce equivalent sessions through the discrete-event engine
// and the real-time network client.
func TestClientMatchesEngine(t *testing.T) {
	m := liveManifest()
	head := liveHead(4 * time.Second)
	fastTrace := &trace.BandwidthTrace{ID: "fast", SamplePeriod: time.Second, Mbps: []float64{200}}

	engineMet, err := player.Run(player.Config{
		Manifest:  m,
		Head:      head,
		Bandwidth: fastTrace,
		Scheme:    core.NewDefault(),
	})
	if err != nil {
		t.Fatal(err)
	}

	conn := servePipe(t, m, netem.Link{Trace: fastTrace})
	clientMet, err := Play(conn, "live", head, core.NewDefault(), PlayOptions{})
	if err != nil {
		t.Fatal(err)
	}

	if engineMet.TotalFrames != clientMet.TotalFrames {
		t.Errorf("frames: engine %d vs client %d", engineMet.TotalFrames, clientMet.TotalFrames)
	}
	if engineMet.IncompleteFrames != 0 || clientMet.IncompleteFrames != 0 {
		t.Errorf("incomplete frames: engine %d client %d", engineMet.IncompleteFrames, clientMet.IncompleteFrames)
	}
	if engineMet.RebufferDuration != 0 || clientMet.RebufferDuration != 0 {
		t.Error("neither path should stall on a fast link")
	}
	// Quality within a tolerance: the client pays real wall-clock jitter
	// during startup, so allow a few dB at the median.
	de, dc := engineMet.MedianScore(), clientMet.MedianScore()
	if dc < de-4 {
		t.Errorf("client median %.2f far below engine %.2f", dc, de)
	}
}
