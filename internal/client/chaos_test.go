package client

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"dragonfly/internal/chaos"

	"dragonfly/internal/core"
	"dragonfly/internal/netem"
	"dragonfly/internal/player"
	"dragonfly/internal/server"
	"dragonfly/internal/trace"
	"dragonfly/internal/video"
)

// chaosSchedule cuts the link three times early in the session, while the
// client still has most of the video left to fetch.
func chaosSchedule() *netem.FaultSchedule {
	return &netem.FaultSchedule{Events: []netem.FaultEvent{
		{At: 250 * time.Millisecond, Kind: netem.FaultDisconnect},
		{At: 700 * time.Millisecond, Kind: netem.FaultDisconnect},
		{At: 1300 * time.Millisecond, Kind: netem.FaultDisconnect},
	}}
}

// faultDialer returns a DialFunc that opens a fresh shaped pipe through fl
// and runs a server session on the far end, modelling reconnections to the
// same server over the same faulty path.
func faultDialer(srv *server.Server, fl *netem.FaultLink) DialFunc {
	return func() (net.Conn, error) {
		clientConn, serverConn := fl.Pipe()
		go func() {
			defer serverConn.Close()
			_ = srv.HandleConn(serverConn)
		}()
		return clientConn, nil
	}
}

func checkAccounting(t *testing.T, met *player.Metrics) {
	t.Helper()
	if met.BytesUseful > met.BytesReceived {
		t.Errorf("BytesUseful %d > BytesReceived %d", met.BytesUseful, met.BytesReceived)
	}
	sum := met.MaskingShare() + met.BlankShare()
	for q := video.Quality(0); q < video.NumQualities; q++ {
		sum += met.QualityShare(q)
	}
	if met.RenderedViewportTiles() > 0 && (sum < 0.999 || sum > 1.001) {
		t.Errorf("render shares sum to %f", sum)
	}
}

// TestPlayResilientSurvivesChaos is the chaos integration test of ISSUE.md:
// a Dragonfly session over a shaped in-memory link that is hard-disconnected
// three times mid-stream must finish — continuous playback, full frame
// count — while the resume protocol keeps the server from ever re-sending a
// primary tile the client already holds.
func TestPlayResilientSurvivesChaos(t *testing.T) {
	m := liveManifest()
	srv := server.New(m)
	srv.Heartbeat = 100 * time.Millisecond
	sched := chaosSchedule()
	fl := &netem.FaultLink{
		Link:     netem.Link{Trace: &trace.BandwidthTrace{SamplePeriod: time.Second, Mbps: []float64{20}}},
		Schedule: sched,
	}
	defer fl.Stop()

	met, err := PlayResilient(faultDialer(srv, fl), "live", liveHead(4*time.Second), core.NewDefault(), PlayOptions{
		Reconnect: ReconnectPolicy{
			MaxAttempts: 8,
			BaseDelay:   20 * time.Millisecond,
			MaxDelay:    200 * time.Millisecond,
			ReadTimeout: 400 * time.Millisecond,
			Seed:        42,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// The session must have finished despite the outages.
	if met.TotalFrames != m.NumFrames() {
		t.Fatalf("rendered %d frames, want %d", met.TotalFrames, m.NumFrames())
	}
	if met.RebufferDuration != 0 {
		t.Errorf("NeverStall session rebuffered %v", met.RebufferDuration)
	}
	if met.Truncated {
		t.Error("session truncated")
	}

	// Every scheduled disconnect must have been observed and recovered from.
	if met.Disconnects < sched.Disconnects() {
		t.Errorf("Disconnects = %d, want >= %d", met.Disconnects, sched.Disconnects())
	}
	if met.OutageDuration <= 0 {
		t.Errorf("OutageDuration = %v, want > 0", met.OutageDuration)
	}
	if met.ResumedTiles <= 0 {
		t.Errorf("ResumedTiles = %d, want > 0", met.ResumedTiles)
	}

	// Server-side proof the resume protocol worked: the reconnections went
	// through MsgResume, the summaries restored dedup state, and no primary
	// tile was ever transmitted twice. The pipe is synchronous, so a primary
	// the server counted was fully read (and recorded) by the client and is
	// therefore present in the next resume summary.
	c := srv.Counters()
	if c.Resumes < int64(sched.Disconnects()) {
		t.Errorf("server Resumes = %d, want >= %d", c.Resumes, sched.Disconnects())
	}
	if c.ResumedItems <= 0 {
		t.Errorf("server ResumedItems = %d, want > 0", c.ResumedItems)
	}
	maxPrimaries := int64(m.NumChunks * m.NumTiles())
	if c.PrimarySent > maxPrimaries {
		t.Errorf("server sent %d primaries for %d (chunk,tile) slots: held tiles were re-sent", c.PrimarySent, maxPrimaries)
	}

	checkAccounting(t, met)
}

// TestPlayResilientBeatsNoReconnect runs the same fault script with and
// without the reconnector: the resilient session must deliver strictly
// better quality than one that gives up after the first cut.
func TestPlayResilientBeatsNoReconnect(t *testing.T) {
	run := func(reconnect bool) *player.Metrics {
		m := liveManifest()
		srv := server.New(m)
		srv.Heartbeat = 100 * time.Millisecond
		fl := &netem.FaultLink{
			Link:     netem.Link{Trace: &trace.BandwidthTrace{SamplePeriod: time.Second, Mbps: []float64{20}}},
			Schedule: chaosSchedule(),
		}
		defer fl.Stop()

		dial := faultDialer(srv, fl)
		if !reconnect {
			// The first dial succeeds; every reconnection attempt fails, so
			// the budget drains and the session plays out what it holds.
			first := true
			inner := dial
			dial = func() (net.Conn, error) {
				if !first {
					return nil, fmt.Errorf("no route")
				}
				first = false
				return inner()
			}
		}
		met, err := PlayResilient(dial, "live", liveHead(4*time.Second), core.NewDefault(), PlayOptions{
			Reconnect: ReconnectPolicy{
				MaxAttempts: 4,
				BaseDelay:   20 * time.Millisecond,
				MaxDelay:    100 * time.Millisecond,
				ReadTimeout: 400 * time.Millisecond,
				Seed:        7,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		checkAccounting(t, met)
		return met
	}

	resilient := run(true)
	cutoff := run(false)

	// Both keep playing (NeverStall): masking arrives within the first few
	// hundred milliseconds, so neither goes blank — but the cut-off session
	// renders the rest of the video from low-quality masking while the
	// resilient one recovers its primaries.
	if cutoff.TotalFrames != resilient.TotalFrames {
		t.Errorf("frame counts diverge: resilient %d, cutoff %d", resilient.TotalFrames, cutoff.TotalFrames)
	}
	if cutoff.MaskingShare() <= resilient.MaskingShare() {
		t.Errorf("cutoff masking share %.3f should exceed resilient %.3f", cutoff.MaskingShare(), resilient.MaskingShare())
	}
	if cutoff.BytesReceived >= resilient.BytesReceived {
		t.Errorf("cutoff received %d bytes, resilient only %d", cutoff.BytesReceived, resilient.BytesReceived)
	}
	if cutoff.MedianScore() >= resilient.MedianScore() {
		t.Errorf("cutoff median %.2f should be below resilient %.2f", cutoff.MedianScore(), resilient.MedianScore())
	}
}

// TestPlayResilientDeadFleetBudget is the satellite test for the total
// reconnect budget: a fleet that refuses every dial (an always-refuse
// client.dial failpoint) must fail the session with the typed
// ErrReconnectBudget once TotalBudget elapses, no matter how many attempts
// the per-outage policy would still allow.
func TestPlayResilientDeadFleetBudget(t *testing.T) {
	if err := chaos.Arm(chaos.Rule{Site: "client.dial", Kind: chaos.FaultError}); err != nil {
		t.Fatalf("chaos.Arm: %v", err)
	}
	t.Cleanup(chaos.Disarm)

	start := time.Now()
	_, err := PlayResilient(func() (net.Conn, error) {
		t.Error("dial reached the network past an armed always-refuse failpoint")
		return nil, fmt.Errorf("unreachable")
	}, "live", liveHead(4*time.Second), core.NewDefault(), PlayOptions{
		Reconnect: ReconnectPolicy{
			MaxAttempts: 1 << 20, // attempts alone would retry ~forever
			BaseDelay:   2 * time.Millisecond,
			MaxDelay:    5 * time.Millisecond,
			TotalBudget: 100 * time.Millisecond,
			Seed:        3,
		},
	})
	if !errors.Is(err, ErrReconnectBudget) {
		t.Fatalf("err = %v, want ErrReconnectBudget", err)
	}
	// The typed budget error is the %w chain; the last dial error rides
	// along as text only, so callers classify on the budget, not the cause.
	if !strings.Contains(err.Error(), "chaos: injected fault") {
		t.Errorf("err = %v, want the last injected dial error in the text", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("budget of 100ms took %v to fire", elapsed)
	}
	if chaos.Injections("client.dial") == 0 {
		t.Errorf("no dial faults injected")
	}
}

// TestPlayResilientMidSessionBudgetDegrades: when the fleet dies after the
// session is established (dial refuses from the second connect on), budget
// exhaustion must degrade like link death — playback finishes on held tiles
// and masking, it does not error out.
func TestPlayResilientMidSessionBudgetDegrades(t *testing.T) {
	// After: 1 lets the opening dial through; every later dial is refused.
	if err := chaos.Arm(chaos.Rule{Site: "client.dial", Kind: chaos.FaultError, After: 1}); err != nil {
		t.Fatalf("chaos.Arm: %v", err)
	}
	t.Cleanup(chaos.Disarm)

	m := liveManifest()
	srv := server.New(m)
	srv.Heartbeat = 100 * time.Millisecond
	fl := &netem.FaultLink{
		Link: netem.Link{Trace: &trace.BandwidthTrace{SamplePeriod: time.Second, Mbps: []float64{20}}},
		Schedule: &netem.FaultSchedule{Events: []netem.FaultEvent{
			{At: 400 * time.Millisecond, Kind: netem.FaultDisconnect},
		}},
	}
	defer fl.Stop()

	met, err := PlayResilient(faultDialer(srv, fl), "live", liveHead(4*time.Second), core.NewDefault(), PlayOptions{
		Reconnect: ReconnectPolicy{
			MaxAttempts: 1 << 20,
			BaseDelay:   10 * time.Millisecond,
			MaxDelay:    50 * time.Millisecond,
			ReadTimeout: 400 * time.Millisecond,
			TotalBudget: 150 * time.Millisecond,
			Seed:        9,
		},
	})
	if err != nil {
		t.Fatalf("mid-session budget exhaustion must not fail playback: %v", err)
	}
	if met.TotalFrames != m.NumFrames() {
		t.Errorf("rendered %d frames, want %d", met.TotalFrames, m.NumFrames())
	}
	if met.Disconnects == 0 {
		t.Errorf("schedule cut the link but Disconnects = 0")
	}
	checkAccounting(t, met)
}
