package client

import (
	"errors"
	"net"
	"testing"
	"time"

	"dragonfly/internal/core"
	"dragonfly/internal/netem"
	"dragonfly/internal/trace"
)

// TestPlayResilientRetriesInitialDial is the regression test for the
// initial-connect bug: a connection-refused on the first dial must run
// through the same backoff-and-redial loop that absorbs busy rejects, not
// kill the session before it starts.
func TestPlayResilientRetriesInitialDial(t *testing.T) {
	m := liveManifest()
	calls := 0
	dial := func() (net.Conn, error) {
		calls++
		if calls <= 2 {
			return nil, errors.New("dial tcp 127.0.0.1:9: connect: connection refused")
		}
		link := netem.Link{Trace: &trace.BandwidthTrace{SamplePeriod: time.Second, Mbps: []float64{20}}}
		return servePipe(t, m, link), nil
	}
	met, err := PlayResilient(dial, "live", liveHead(3*time.Second), core.NewDefault(), PlayOptions{
		Reconnect: ReconnectPolicy{MaxAttempts: 5, BaseDelay: 5 * time.Millisecond, MaxDelay: 20 * time.Millisecond, Seed: 3},
	})
	if err != nil {
		t.Fatalf("session died on refused initial dials: %v", err)
	}
	if calls != 3 {
		t.Errorf("dial calls = %d, want 3 (two refusals, one success)", calls)
	}
	if met.TotalFrames != m.NumFrames() {
		t.Errorf("rendered %d frames, want %d", met.TotalFrames, m.NumFrames())
	}
	checkAccounting(t, met)
}

// Without a reconnect budget the historical behavior stands: the first
// dial failure is fatal.
func TestPlayResilientInitialDialFatalWithoutBudget(t *testing.T) {
	dial := func() (net.Conn, error) { return nil, errors.New("connection refused") }
	_, err := PlayResilient(dial, "live", liveHead(time.Second), core.NewDefault(), PlayOptions{})
	if err == nil {
		t.Fatal("zero-budget initial dial failure did not error")
	}
}

func TestMultiDialerRotates(t *testing.T) {
	var got []string
	d := &MultiDialer{
		Addrs: []string{"a", "b", "c"},
		DialAddr: func(addr string, _ time.Duration) (net.Conn, error) {
			got = append(got, addr)
			c, s := net.Pipe()
			s.Close()
			return c, nil
		},
	}
	for i := 0; i < 4; i++ {
		c, err := d.Dial()
		if err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
	want := []string{"a", "b", "c", "a"}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("dial order = %v, want %v", got, want)
		}
	}
}

func TestMultiDialerBacksOffFailedAddress(t *testing.T) {
	dials := map[string]int{}
	d := &MultiDialer{
		Addrs:   []string{"dead", "live"},
		Backoff: time.Minute, // dead stays penalized for the whole test
		DialAddr: func(addr string, _ time.Duration) (net.Conn, error) {
			dials[addr]++
			if addr == "dead" {
				return nil, errors.New("connection refused")
			}
			c, s := net.Pipe()
			s.Close()
			return c, nil
		},
	}
	for i := 0; i < 4; i++ {
		c, err := d.Dial()
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		c.Close()
	}
	if dials["dead"] != 1 {
		t.Errorf("dead address dialed %d times, want 1 (backed off after the failure)", dials["dead"])
	}
	if dials["live"] != 4 {
		t.Errorf("live address dialed %d times, want 4", dials["live"])
	}
}

// Backed-off addresses are still tried as a last resort: with every member
// penalized, Dial attempts them all rather than failing without a dial.
func TestMultiDialerRetriesBackedOffAsLastResort(t *testing.T) {
	attempts := 0
	d := &MultiDialer{
		Addrs:   []string{"x", "y"},
		Backoff: time.Minute,
		DialAddr: func(string, time.Duration) (net.Conn, error) {
			attempts++
			return nil, errors.New("refused")
		},
	}
	if _, err := d.Dial(); err == nil {
		t.Fatal("all-failing dial reported success")
	}
	if _, err := d.Dial(); err == nil {
		t.Fatal("all-failing dial reported success")
	}
	if attempts != 4 {
		t.Errorf("attempts = %d, want 4 (both addresses tried on both dials)", attempts)
	}
}

func TestMultiDialerNoAddrs(t *testing.T) {
	if _, err := (&MultiDialer{}).Dial(); err == nil {
		t.Fatal("empty address list did not error")
	}
}
