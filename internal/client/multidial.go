package client

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// MultiDialer is a DialFunc source over a list of server addresses — the
// static-failover counterpart to fronting the fleet with a balancer. Each
// Dial starts one position further around the list than the last, so
// sessions spread across members and a reconnect that keeps getting
// protocol-level busy rejections (a draining backend accepts the TCP dial
// but refuses the resume) still rotates onto a healthy member. Addresses
// whose dials fail are put on per-address exponential backoff: eligible
// addresses are tried first and backed-off ones only as a last resort, in
// order of soonest retry time, so a single dead member costs at most one
// failed dial per backoff window instead of one per session.
//
// The zero value is not usable; set Addrs. All methods are safe for
// concurrent use by multiple sessions sharing one dialer.
type MultiDialer struct {
	// Addrs is the server list; order sets the rotation sequence.
	Addrs []string
	// Timeout bounds each individual dial (default DefaultDialTimeout).
	Timeout time.Duration
	// Backoff is the first per-address penalty after a failed dial
	// (default 100 ms); it doubles per consecutive failure up to
	// MaxBackoff (default 2 s) and resets on success.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// DialAddr overrides the network dial, for tests and in-memory rigs;
	// nil uses DialTimeout (TCP).
	DialAddr func(addr string, timeout time.Duration) (net.Conn, error)

	mu    sync.Mutex
	next  int
	state map[string]*addrState
}

type addrState struct {
	fails     int
	notBefore time.Time
}

// Dial connects to the next healthy-looking address, matching DialFunc. It
// fails only when every address refuses.
func (d *MultiDialer) Dial() (net.Conn, error) {
	candidates, err := d.plan()
	if err != nil {
		return nil, err
	}
	timeout := d.Timeout
	if timeout <= 0 {
		timeout = DefaultDialTimeout
	}
	dialAddr := d.DialAddr
	if dialAddr == nil {
		dialAddr = DialTimeout
	}
	var lastErr error
	for _, addr := range candidates {
		conn, err := dialAddr(addr, timeout)
		if err == nil {
			d.noteResult(addr, true)
			return conn, nil
		}
		d.noteResult(addr, false)
		lastErr = err
	}
	return nil, fmt.Errorf("client: all %d addresses failed: %w", len(candidates), lastErr)
}

// plan rotates the start position and orders the addresses: eligible ones
// in rotation order first, backed-off ones after, soonest retry first.
func (d *MultiDialer) plan() ([]string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.Addrs) == 0 {
		return nil, fmt.Errorf("client: multi dialer has no addresses")
	}
	start := d.next % len(d.Addrs)
	d.next = start + 1
	now := time.Now()
	eligible := make([]string, 0, len(d.Addrs))
	var backedOff []string
	for i := 0; i < len(d.Addrs); i++ {
		addr := d.Addrs[(start+i)%len(d.Addrs)]
		if st := d.state[addr]; st != nil && now.Before(st.notBefore) {
			backedOff = append(backedOff, addr)
			continue
		}
		eligible = append(eligible, addr)
	}
	for i := 1; i < len(backedOff); i++ {
		for j := i; j > 0 && d.state[backedOff[j]].notBefore.Before(d.state[backedOff[j-1]].notBefore); j-- {
			backedOff[j], backedOff[j-1] = backedOff[j-1], backedOff[j]
		}
	}
	return append(eligible, backedOff...), nil
}

func (d *MultiDialer) noteResult(addr string, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if ok {
		delete(d.state, addr)
		return
	}
	if d.state == nil {
		d.state = make(map[string]*addrState)
	}
	st := d.state[addr]
	if st == nil {
		st = &addrState{}
		d.state[addr] = st
	}
	base := d.Backoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := d.MaxBackoff
	if max <= 0 {
		max = 2 * time.Second
	}
	penalty := base
	for i := 0; i < st.fails && penalty < max; i++ {
		penalty *= 2
	}
	if penalty > max {
		penalty = max
	}
	st.fails++
	st.notBefore = time.Now().Add(penalty)
}
