package proto

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"dragonfly/internal/player"
	"dragonfly/internal/video"
)

func TestHelloRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHello(&buf, Hello{VideoID: "v8"}); err != nil {
		t.Fatal(err)
	}
	msg, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != MsgHello || msg.Hello.VideoID != "v8" {
		t.Fatalf("round trip: %+v", msg)
	}
}

func TestHelloTooLong(t *testing.T) {
	if err := WriteHello(io.Discard, Hello{VideoID: strings.Repeat("x", 300)}); err == nil {
		t.Error("oversized video id accepted")
	}
}

func TestRequestRoundTrip(t *testing.T) {
	req := Request{
		Generation: 7,
		Items: []player.RequestItem{
			{Stream: player.Primary, Chunk: 3, Tile: 17, Quality: 4},
			{Stream: player.Masking, Chunk: 5, Full360: true, Quality: 0},
			{Stream: player.Masking, Chunk: 5, Tile: 2, Quality: 0},
		},
	}
	var buf bytes.Buffer
	if err := WriteRequest(&buf, req); err != nil {
		t.Fatal(err)
	}
	msg, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != MsgRequest || msg.Request.Generation != 7 {
		t.Fatalf("round trip: %+v", msg)
	}
	if len(msg.Request.Items) != 3 {
		t.Fatalf("items: %d", len(msg.Request.Items))
	}
	for i, it := range msg.Request.Items {
		if it != req.Items[i] {
			t.Errorf("item %d: %+v != %+v", i, it, req.Items[i])
		}
	}
}

func TestRequestRoundTripProperty(t *testing.T) {
	f := func(gen uint32, chunks []uint16, quals []uint8) bool {
		n := len(chunks)
		if len(quals) < n {
			n = len(quals)
		}
		req := Request{Generation: gen}
		for i := 0; i < n; i++ {
			req.Items = append(req.Items, player.RequestItem{
				Stream:  player.StreamKind(quals[i] % 2),
				Chunk:   int(chunks[i]),
				Full360: quals[i]%3 == 0,
				Tile:    0,
				Quality: video.Quality(quals[i] % video.NumQualities),
			})
		}
		var buf bytes.Buffer
		if err := WriteRequest(&buf, req); err != nil {
			return false
		}
		msg, err := ReadMessage(&buf)
		if err != nil || msg.Type != MsgRequest {
			return false
		}
		if msg.Request.Generation != gen || len(msg.Request.Items) != len(req.Items) {
			return false
		}
		for i := range req.Items {
			if msg.Request.Items[i] != req.Items[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTileDataRoundTrip(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAB}, 1000)
	td := TileData{
		Item:    player.RequestItem{Stream: player.Primary, Chunk: 2, Tile: 9, Quality: 3},
		Payload: payload,
	}
	var buf bytes.Buffer
	if err := WriteTileData(&buf, td); err != nil {
		t.Fatal(err)
	}
	msg, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != MsgTileData || msg.TileData.Item != td.Item {
		t.Fatalf("round trip: %+v", msg)
	}
	if !bytes.Equal(msg.TileData.Payload, payload) {
		t.Error("payload corrupted")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := video.Generate(video.GenParams{ID: "pm", Rows: 4, Cols: 4, NumChunks: 3, Seed: 1})
	var buf bytes.Buffer
	if err := WriteManifest(&buf, m); err != nil {
		t.Fatal(err)
	}
	msg, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != MsgManifest || msg.Manifest.VideoID != "pm" {
		t.Fatalf("round trip: %+v", msg.Type)
	}
	if msg.Manifest.TileSize(1, 3, 2) != m.TileSize(1, 3, 2) {
		t.Error("manifest content corrupted")
	}
}

func TestByeAndError(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBye(&buf); err != nil {
		t.Fatal(err)
	}
	if err := WriteError(&buf, "boom"); err != nil {
		t.Fatal(err)
	}
	msg, err := ReadMessage(&buf)
	if err != nil || msg.Type != MsgBye {
		t.Fatalf("bye: %v %v", msg, err)
	}
	msg, err = ReadMessage(&buf)
	if err != nil || msg.Type != MsgError || msg.Error != "boom" {
		t.Fatalf("error msg: %+v %v", msg, err)
	}
}

func TestMultipleMessagesSequential(t *testing.T) {
	var buf bytes.Buffer
	_ = WriteHello(&buf, Hello{VideoID: "a"})
	_ = WriteRequest(&buf, Request{Generation: 1})
	_ = WriteBye(&buf)
	types := []MsgType{MsgHello, MsgRequest, MsgBye}
	for i, want := range types {
		msg, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if msg.Type != want {
			t.Fatalf("message %d type %d, want %d", i, msg.Type, want)
		}
	}
	if _, err := ReadMessage(&buf); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestReadMessageRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		{},                                 // empty
		{0, 0, 0, 0, 0},                    // zero length
		{0xFF, 0xFF, 0xFF, 0xFF, 1},        // absurd length
		{0, 0, 0, 1, 99},                   // unknown type
		{0, 0, 0, 3, byte(MsgHello), 9, 9}, // malformed hello
	}
	for i, c := range cases {
		if _, err := ReadMessage(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestRequestRejectsBadItems(t *testing.T) {
	// Craft a request with an invalid quality.
	req := Request{Items: []player.RequestItem{{Stream: player.Primary, Quality: 4}}}
	var buf bytes.Buffer
	if err := WriteRequest(&buf, req); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] = 99 // corrupt the quality byte
	if _, err := ReadMessage(bytes.NewReader(raw)); err == nil {
		t.Error("invalid quality accepted")
	}
}

func BenchmarkRequestEncode(b *testing.B) {
	items := make([]player.RequestItem, 200)
	for i := range items {
		items[i] = player.RequestItem{Chunk: i, Tile: 1, Quality: 2}
	}
	req := Request{Generation: 1, Items: items}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = WriteRequest(io.Discard, req)
	}
}

func TestReadMessageNeverPanicsOnRandomBytes(t *testing.T) {
	f := func(raw []byte) bool {
		// Any byte soup must produce an error or a message, never a panic,
		// and never an absurd allocation.
		_, _ = ReadMessage(bytes.NewReader(raw))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
