package proto

import (
	"bytes"
	"io"
	"testing"

	"dragonfly/internal/player"
)

// The framing benchmarks measure the CRC32-C trailer's cost on the tile
// hot path: one framed write and one framed read of a typical ~128 KB tile
// payload, with and without the checksum. scripts/bench.sh snapshots them
// into BENCH_baseline.json so cmd/benchdiff gates regressions, and the
// CRC/no-CRC pair documents the overhead headroom (budget: <= 5% end to
// end, per ISSUE 5).

const benchPayloadSize = 128 << 10

func benchTile() TileData {
	return TileData{
		Item:    player.RequestItem{Stream: player.Primary, Chunk: 9, Tile: 31, Quality: 3},
		Payload: bytes.Repeat([]byte{0x5A}, benchPayloadSize),
	}
}

func benchFrameWrite(b *testing.B, withCRC bool) {
	td := benchTile()
	body := make([]byte, itemWireSize+len(td.Payload))
	encodeItem(body, td.Item)
	copy(body[itemWireSize:], td.Payload)
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := writeFrameChecked(io.Discard, MsgTileData, body, withCRC); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrameWriteCRC(b *testing.B)   { benchFrameWrite(b, true) }
func BenchmarkFrameWriteNoCRC(b *testing.B) { benchFrameWrite(b, false) }

func benchFrameRead(b *testing.B, withCRC bool) {
	var buf bytes.Buffer
	td := benchTile()
	body := make([]byte, itemWireSize+len(td.Payload))
	encodeItem(body, td.Item)
	copy(body[itemWireSize:], td.Payload)
	if err := writeFrameChecked(&buf, MsgTileData, body, withCRC); err != nil {
		b.Fatal(err)
	}
	frame := buf.Bytes()
	r := bytes.NewReader(frame)
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Reset(frame)
		if _, _, err := readFrameChecked(r, withCRC); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrameReadCRC(b *testing.B)   { benchFrameRead(b, true) }
func BenchmarkFrameReadNoCRC(b *testing.B) { benchFrameRead(b, false) }

// BenchmarkFrameWritePreframed measures the steady-state send cost once a
// tile is pre-framed: three buffer writes, no serialization, no CRC. This
// is the per-send work the store-backed server does, against
// BenchmarkFrameWriteCRC's per-send framing it replaces.
func BenchmarkFrameWritePreframed(b *testing.B) {
	td := benchTile()
	head := make([]byte, TileHeadSize)
	trailer := make([]byte, TileTrailerSize)
	if err := PreframeTile(head, trailer, td.Item, td.Payload); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(itemWireSize + len(td.Payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := io.Discard.Write(head); err != nil {
			b.Fatal(err)
		}
		if _, err := io.Discard.Write(td.Payload); err != nil {
			b.Fatal(err)
		}
		if _, err := io.Discard.Write(trailer); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrameReadReuse measures the pooled read path: the same tile
// frame read repeatedly through ReadMessageBuf with a recycled body
// buffer, against BenchmarkFrameReadCRC's allocate-per-read baseline.
func BenchmarkFrameReadReuse(b *testing.B) {
	var wire bytes.Buffer
	td := benchTile()
	if err := WriteTileData(&wire, td); err != nil {
		b.Fatal(err)
	}
	frame := wire.Bytes()
	r := bytes.NewReader(frame)
	var buf []byte
	b.SetBytes(int64(itemWireSize + len(td.Payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Reset(frame)
		var err error
		if _, buf, err = ReadMessageBuf(r, buf); err != nil {
			b.Fatal(err)
		}
	}
}
