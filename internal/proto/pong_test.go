package proto

import (
	"bytes"
	"testing"
)

func TestPongRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := Pong{Draining: true, ActiveConns: 1234}
	if err := WritePong(&buf, want); err != nil {
		t.Fatal(err)
	}
	msg, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != MsgPing {
		t.Fatalf("type = %d, want MsgPing", msg.Type)
	}
	if msg.Ping == nil {
		t.Fatal("status pong decoded with nil Ping")
	}
	if *msg.Ping != want {
		t.Errorf("pong = %+v, want %+v", *msg.Ping, want)
	}
}

func TestPlainPingHasNoStatus(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePing(&buf); err != nil {
		t.Fatal(err)
	}
	msg, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != MsgPing {
		t.Fatalf("type = %d, want MsgPing", msg.Type)
	}
	if msg.Ping != nil {
		t.Errorf("heartbeat ping decoded a status body: %+v", msg.Ping)
	}
}

func TestShortPingBodyIgnored(t *testing.T) {
	// A MsgPing body shorter than the pong layout is treated as a plain
	// heartbeat, not an error: forward/backward ping compatibility is
	// "ignore what you do not understand".
	var buf bytes.Buffer
	if err := writeFrame(&buf, MsgPing, []byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	msg, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Ping != nil {
		t.Errorf("short ping body decoded as pong: %+v", msg.Ping)
	}
}
