package proto

import (
	"bytes"
	"testing"

	"dragonfly/internal/player"
)

// writeRecorder counts Write calls and keeps the bytes, to pin the
// one-write-per-frame atomicity contract.
type writeRecorder struct {
	bytes.Buffer
	calls int
}

func (w *writeRecorder) Write(p []byte) (int, error) {
	w.calls++
	return w.Buffer.Write(p)
}

// TestWriteFrameSingleWrite pins the torn-frame fix: every framed write
// reaches the connection as exactly one Write call, so a frame can never
// interleave mid-stream on a conn that serializes Writes. (The wider
// contract — one writer goroutine per direction — is documented on the
// package.)
func TestWriteFrameSingleWrite(t *testing.T) {
	var rec writeRecorder
	if err := WriteHello(&rec, Hello{VideoID: "v"}); err != nil {
		t.Fatal(err)
	}
	if rec.calls != 1 {
		t.Fatalf("WriteHello used %d Write calls, want 1", rec.calls)
	}
	rec.calls = 0
	rec.Reset()
	td := TileData{
		Item:    player.RequestItem{Stream: player.Primary, Chunk: 2, Tile: 7, Quality: 1},
		Payload: bytes.Repeat([]byte{0xA5}, 4096),
	}
	if err := WriteTileData(&rec, td); err != nil {
		t.Fatal(err)
	}
	if rec.calls != 1 {
		t.Fatalf("WriteTileData used %d Write calls, want 1", rec.calls)
	}
	msg, err := ReadMessage(bytes.NewReader(rec.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != MsgTileData || msg.TileData.Item != td.Item || !bytes.Equal(msg.TileData.Payload, td.Payload) {
		t.Fatalf("single-write frame did not round-trip")
	}
}

// TestPreframeTileMatchesWriteTileData proves head || payload || trailer
// is byte-identical to the stream WriteTileData emits — the equivalence
// the store's serve-by-reference path rests on — across payload sizes
// including empty.
func TestPreframeTileMatchesWriteTileData(t *testing.T) {
	items := []player.RequestItem{
		{Stream: player.Primary, Chunk: 0, Tile: 0, Quality: 0},
		{Stream: player.Masking, Chunk: 3, Tile: 15, Quality: 4},
		{Stream: player.Masking, Chunk: 7, Full360: true, Quality: 2},
	}
	for _, it := range items {
		for _, size := range []int{0, 1, 1000, 128 << 10} {
			payload := bytes.Repeat([]byte{0xC3}, size)
			head := make([]byte, TileHeadSize)
			trailer := make([]byte, TileTrailerSize)
			if err := PreframeTile(head, trailer, it, payload); err != nil {
				t.Fatalf("PreframeTile %+v size %d: %v", it, size, err)
			}
			var got bytes.Buffer
			got.Write(head)
			got.Write(payload)
			got.Write(trailer)
			var want bytes.Buffer
			if err := WriteTileData(&want, TileData{Item: it, Payload: payload}); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Fatalf("pre-framed bytes differ from WriteTileData for %+v size %d", it, size)
			}
		}
	}
}

// TestPreframeTileRejectsBadSizes covers the error paths: short buffers
// and over-cap frames.
func TestPreframeTileRejectsBadSizes(t *testing.T) {
	it := player.RequestItem{Stream: player.Primary, Chunk: 0, Tile: 0, Quality: 0}
	if err := PreframeTile(make([]byte, TileHeadSize-1), make([]byte, TileTrailerSize), it, nil); err == nil {
		t.Fatal("short head accepted")
	}
	if err := PreframeTile(make([]byte, TileHeadSize), make([]byte, TileTrailerSize-1), it, nil); err == nil {
		t.Fatal("short trailer accepted")
	}
	head := make([]byte, TileHeadSize)
	trailer := make([]byte, TileTrailerSize)
	if err := PreframeTile(head, trailer, it, make([]byte, MaxFrameSize)); err == nil {
		t.Fatal("over-cap payload accepted")
	}
	for _, b := range head {
		if b != 0 {
			t.Fatal("failed PreframeTile wrote into head; store relies on the zeroed-head sentinel")
		}
	}
}

// TestReadMessageBufReusesBuffer pins the pooled read path's ownership
// contract: the returned buffer is reused across calls once grown, and
// the message's payload aliases it.
func TestReadMessageBufReusesBuffer(t *testing.T) {
	var wire bytes.Buffer
	td := TileData{
		Item:    player.RequestItem{Stream: player.Primary, Chunk: 1, Tile: 2, Quality: 3},
		Payload: bytes.Repeat([]byte{0x11}, 64<<10),
	}
	const frames = 4
	for i := 0; i < frames; i++ {
		if err := WriteTileData(&wire, td); err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(wire.Bytes())
	var buf []byte
	var lastCap int
	for i := 0; i < frames; i++ {
		var msg *Message
		var err error
		msg, buf, err = ReadMessageBuf(r, buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if msg.Type != MsgTileData || !bytes.Equal(msg.TileData.Payload, td.Payload) {
			t.Fatalf("frame %d: wrong message", i)
		}
		if i > 0 && cap(buf) != lastCap {
			t.Fatalf("frame %d: buffer not reused (cap %d -> %d)", i, lastCap, cap(buf))
		}
		lastCap = cap(buf)
	}
}

// TestReadMessageBufAllocs pins the FrameRead allocation fix: with a
// warmed buffer, reading a 128 KB tile frame allocates only the
// fixed-size message structs — the ~147 KB/op body churn is gone.
func TestReadMessageBufAllocs(t *testing.T) {
	var wire bytes.Buffer
	td := TileData{
		Item:    player.RequestItem{Stream: player.Primary, Chunk: 1, Tile: 2, Quality: 3},
		Payload: bytes.Repeat([]byte{0x22}, 128<<10),
	}
	if err := WriteTileData(&wire, td); err != nil {
		t.Fatal(err)
	}
	frame := wire.Bytes()
	r := bytes.NewReader(frame)
	var buf []byte
	var msg *Message
	var err error
	if msg, buf, err = ReadMessageBuf(r, buf); err != nil || msg.Type != MsgTileData {
		t.Fatalf("warm-up read: %v", err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		r.Reset(frame)
		msg, buf, err = ReadMessageBuf(r, buf)
		if err != nil {
			t.Fatal(err)
		}
	})
	// Only fixed-cost allocations remain: the Message and TileData
	// descriptors plus the 5-byte header and 4-byte trailer scratches
	// (stack arrays that escape through io.ReadFull's interface call).
	// The variable-size body buffer must not be among them —
	// TestReadMessageBufReusesBuffer pins that it is recycled.
	if allocs > 4 {
		t.Fatalf("ReadMessageBuf allocates %.1f/op with a warm buffer, want <= 4 fixed-size", allocs)
	}
}

// TestReadMessageBufChecksum keeps the pooled path honest about
// integrity: a flipped payload bit still fails the frame trailer.
func TestReadMessageBufChecksum(t *testing.T) {
	var wire bytes.Buffer
	if err := WriteTileData(&wire, TileData{
		Item:    player.RequestItem{Stream: player.Primary, Chunk: 0, Tile: 0, Quality: 0},
		Payload: bytes.Repeat([]byte{0x33}, 1024),
	}); err != nil {
		t.Fatal(err)
	}
	frame := wire.Bytes()
	frame[TileHeadSize+100] ^= 0x01
	if _, _, err := ReadMessageBuf(bytes.NewReader(frame), nil); err != ErrChecksum {
		t.Fatalf("corrupt frame returned %v, want ErrChecksum", err)
	}
}
