package proto

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"dragonfly/internal/player"
)

// heldSummary builds a 3-chunk x 4-tile summary holding primary (0,1) and
// (2,3), masking tile (1,2), and full-360 masking for chunk 0.
func heldSummary() player.HeldSummary {
	h := player.HeldSummary{
		NumChunks: 3, NumTiles: 4,
		Primary:  make([]byte, 2),
		MaskTile: make([]byte, 2),
		MaskFull: make([]byte, 1),
	}
	h.Primary[0] |= 1 << 1  // chunk 0, tile 1
	h.Primary[1] |= 1 << 3  // bit 11: chunk 2, tile 3
	h.MaskTile[0] |= 1 << 6 // bit 6: chunk 1, tile 2
	h.MaskFull[0] |= 1 << 0 // chunk 0
	return h
}

func TestResumeRoundTrip(t *testing.T) {
	h := heldSummary()
	var buf bytes.Buffer
	if err := WriteResume(&buf, Resume{Version: ProtoVersion, VideoID: "v9", Held: h}); err != nil {
		t.Fatal(err)
	}
	msg, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != MsgResume || msg.Resume.Version != ProtoVersion || msg.Resume.VideoID != "v9" {
		t.Fatalf("round trip: %+v", msg)
	}
	got := msg.Resume.Held
	if !got.Valid() || got.NumChunks != 3 || got.NumTiles != 4 {
		t.Fatalf("summary geometry: %+v", got)
	}
	if got.Count() != 4 {
		t.Errorf("Count = %d, want 4", got.Count())
	}
	for _, tc := range []struct {
		want        bool
		chunk, tile int
		kind        string
		check       func(int, int) bool
	}{
		{check: got.HasPrimary, chunk: 0, tile: 1, want: true, kind: "primary"},
		{check: got.HasPrimary, chunk: 2, tile: 3, want: true, kind: "primary"},
		{check: got.HasPrimary, chunk: 1, tile: 1, want: false, kind: "primary"},
		{check: got.HasMaskTile, chunk: 1, tile: 2, want: true, kind: "masktile"},
		{check: got.HasMaskTile, chunk: 0, tile: 0, want: false, kind: "masktile"},
	} {
		if tc.check(tc.chunk, tc.tile) != tc.want {
			t.Errorf("%s(%d,%d) != %v", tc.kind, tc.chunk, tc.tile, tc.want)
		}
	}
	if !got.HasMaskFull(0) || got.HasMaskFull(1) {
		t.Error("full-360 bits corrupted")
	}
}

func TestResumeEmptySummary(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteResume(&buf, Resume{Version: ProtoVersion, VideoID: "v", Held: player.HeldSummary{}}); err != nil {
		t.Fatal(err)
	}
	msg, err := ReadMessage(&buf)
	if err != nil || msg.Type != MsgResume {
		t.Fatalf("empty resume: %v %v", msg, err)
	}
	if msg.Resume.Held.Count() != 0 {
		t.Errorf("empty summary counts %d", msg.Resume.Held.Count())
	}
}

func TestResumeRejectsMalformed(t *testing.T) {
	var good bytes.Buffer
	if err := WriteResume(&good, Resume{Version: ProtoVersion, VideoID: "vid", Held: heldSummary()}); err != nil {
		t.Fatal(err)
	}
	frame := good.Bytes()
	corrupt := func(mutate func(b []byte) []byte) []byte {
		b := mutate(append([]byte(nil), frame...))
		binary.BigEndian.PutUint32(b[:4], uint32(len(b)-4))
		return b
	}
	cases := map[string][]byte{
		"truncated header": frame[:6],
		"short body":       corrupt(func(b []byte) []byte { return b[:6] }),
		"id past end":      corrupt(func(b []byte) []byte { b[6] = 200; return b }),
		"huge dims": corrupt(func(b []byte) []byte {
			// chunks field: after 4B length, 1B type, version, idlen, "vid".
			binary.BigEndian.PutUint32(b[10:14], 1<<20)
			return b
		}),
		"bitmap too short": corrupt(func(b []byte) []byte { return b[:len(b)-1] }),
		"bitmap too long":  corrupt(func(b []byte) []byte { return append(b, 0) }),
	}
	for name, raw := range cases {
		if _, err := ReadMessage(bytes.NewReader(raw)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestResumeWriteRejectsInvalidSummary(t *testing.T) {
	bad := player.HeldSummary{NumChunks: 2, NumTiles: 2} // nil bitmaps
	if err := WriteResume(io.Discard, Resume{Version: ProtoVersion, VideoID: "v", Held: bad}); err == nil {
		t.Error("inconsistent summary accepted")
	}
}

func TestPingRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePing(&buf); err != nil {
		t.Fatal(err)
	}
	msg, err := ReadMessage(&buf)
	if err != nil || msg.Type != MsgPing {
		t.Fatalf("ping: %+v %v", msg, err)
	}
}

// TestRequestCountOverflowRejected is the regression test for the
// parseRequest overflow: a frame claiming ~2^32 items must be rejected for
// its count, not sliced with an overflowed length.
func TestRequestCountOverflowRejected(t *testing.T) {
	body := make([]byte, 8+itemWireSize)
	binary.BigEndian.PutUint32(body[4:8], 0xFFFFFFF0)
	var frame bytes.Buffer
	if err := writeFrame(&frame, MsgRequest, body); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMessage(&frame); err == nil {
		t.Error("overflowing item count accepted")
	}
}
