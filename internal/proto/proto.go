// Package proto defines the wire protocol between the Dragonfly client and
// the tile server (paper §3.3): the client sends tile requests — each
// superseding the previous one — and the server streams tile data back,
// never re-sending a tile already delivered above masking quality.
//
// Framing (wire v3): every message is [4-byte big-endian length][1-byte
// type][body][4-byte CRC32-C trailer]; the length counts type+body and the
// checksum covers the same bytes, so a flipped bit anywhere in a frame —
// including its length prefix, which desynchronizes the stream — surfaces
// as a clean integrity error instead of decoded garbage. Bodies use
// fixed-width big-endian integers; the manifest travels as JSON (it is
// sent once per session).
//
// Writer contract: every frame goes out as a single Write call (or one
// vectored net.Buffers write for pre-framed tiles), so a frame is atomic
// on any conn that serializes Write calls — but frame ORDER across
// writers is not. Each connection direction must have exactly one writer
// goroutine; that is how the server (one tile sender per conn) and the
// client (one request writer) are structured.
package proto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"strings"

	"dragonfly/internal/geom"
	"dragonfly/internal/player"
	"dragonfly/internal/video"
)

// MsgType tags a frame.
type MsgType uint8

// The protocol messages.
const (
	// MsgHello (client -> server): request a video by ID.
	MsgHello MsgType = iota + 1
	// MsgManifest (server -> client): the video manifest, as JSON.
	MsgManifest
	// MsgRequest (client -> server): a full fetch list with a generation
	// number; it replaces any earlier request ("the server discards the
	// previous request", §3.3).
	MsgRequest
	// MsgTileData (server -> client): one tile (or full-360° chunk) payload.
	MsgTileData
	// MsgBye (either direction): orderly shutdown.
	MsgBye
	// MsgError (server -> client): a fatal server-side error description.
	MsgError
	// MsgResume (client -> server): reopen a session after a disconnect,
	// carrying a bitmap summary of the tiles the client already holds so
	// the server can rebuild its redundancy-suppression state instead of
	// re-sending them.
	MsgResume
	// MsgPing (either direction): with an empty body, the server's idle
	// heartbeat, letting the client distinguish an idle link from a dead
	// one. Sent by a client (or balancer) as the *first* message of a
	// connection it is a health probe: the server answers with a status
	// pong (a MsgPing whose body carries drain state and active-session
	// count) and ends the session. Receivers ignore bodies they do not
	// understand, so the status body is wire-compatible with plain pings.
	MsgPing
)

// ProtoVersion is the wire-protocol version carried inside resume frames.
// Version 1 is the original (implicit) protocol; version 2 adds MsgResume
// and MsgPing; version 3 appends the CRC32-C trailer to every frame. A
// peer receiving a resume with a different version answers with a clean
// MsgError instead of desynchronizing; a v2 peer reading v3 frames (or
// vice versa) desynchronizes by exactly the trailer width and fails the
// next checksum, so version skew also surfaces as a clean error — the
// v2→v3 compatibility rule documented in docs/RESILIENCE.md.
const ProtoVersion = 3

// MaxFrameSize bounds a single frame; the largest legitimate payload is a
// full-360° chunk at the highest quality (a few MB), plus the multi-MB
// JSON manifest of a long video. A declared length beyond the cap is
// rejected before any body allocation.
const MaxFrameSize = 64 << 20

// trailerSize is the width of the CRC32-C frame trailer.
const trailerSize = 4

// frameHeaderSize is the width of the frame header: 4-byte big-endian
// length prefix plus the 1-byte message type.
const frameHeaderSize = 5

// Pre-framed tile layout: a MsgTileData frame splits into a fixed-size head
// (frame header + encoded item), the payload, and the CRC trailer, so an
// immutable tile store can keep the head and trailer per variant and serve
// the frame by reference with vectored I/O (see PreframeTile).
const (
	// TileHeadSize is the byte width of a pre-framed tile head.
	TileHeadSize = frameHeaderSize + itemWireSize
	// TileTrailerSize is the byte width of a pre-framed tile trailer.
	TileTrailerSize = trailerSize
	// TileFrameOverhead is the fixed wire overhead of one MsgTileData
	// frame beyond its payload bytes.
	TileFrameOverhead = TileHeadSize + TileTrailerSize
)

// castagnoli is the CRC32-C table shared by frame trailers and tile
// payload checksums (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// PayloadChecksum is the tile-payload checksum carried per variant in the
// manifest: CRC32-C over the encoded payload bytes. The client verifies it
// before marking a tile held, catching corruption end to end even when the
// per-frame trailer was computed over already-corrupt data.
func PayloadChecksum(payload []byte) uint32 {
	return crc32.Checksum(payload, castagnoli)
}

// ErrChecksum reports a frame whose CRC32-C trailer does not match its
// contents. Peers treat it like any other link error — tear the
// connection and (for resilient clients) reconnect — but counters keyed
// on it separate corruption from ordinary resets.
var ErrChecksum = errors.New("proto: frame checksum mismatch")

// ErrFrameTooLarge reports a declared frame length beyond MaxFrameSize;
// it is returned before any body allocation, so a corrupted or hostile
// length prefix cannot commit gigabytes of memory.
var ErrFrameTooLarge = errors.New("proto: frame exceeds length cap")

// busyPrefix tags transient admission-control rejections (connection
// limit, drain mode). It travels inside MsgError text so the wire format
// needs no new message type, and clients treat it as retryable with
// backoff rather than fatal.
const busyPrefix = "busy: "

// BusyText builds the canonical retryable-rejection error text.
func BusyText(reason string) string { return busyPrefix + reason }

// IsBusyText reports whether an MsgError text is a transient
// admission-control rejection the client should retry with backoff.
func IsBusyText(text string) bool { return strings.HasPrefix(text, busyPrefix) }

// Hello opens a session.
type Hello struct {
	VideoID string
	// Cohort optionally labels the session for fleet QoE rollups
	// ("<trace class>:<network class>"); the server keys its QoE-feedback
	// shed scaling by it. Empty means unclassified, and the field is
	// omitted from the wire so old peers interoperate.
	Cohort string
}

// Request carries an ordered fetch list.
type Request struct {
	Generation uint32
	Items      []player.RequestItem
}

// TileData carries one delivered item and its payload.
type TileData struct {
	Item    player.RequestItem
	Payload []byte
}

// ErrorMsg reports a fatal server error.
type ErrorMsg struct {
	Text string
}

// Resume reopens a session after a disconnect. Held summarizes the tile
// variants the client already has at exactly the granularity of the
// server's dedup arrays, so a resumed session never re-downloads them.
type Resume struct {
	Version uint8
	VideoID string
	Held    player.HeldSummary
	// Cohort re-labels the resumed session for QoE-feedback shed scaling,
	// exactly as Hello.Cohort does for a fresh one; a cold-restarted server
	// has no memory of the original hello, so the label must travel with
	// the resume. Optional on the wire (trailing length-prefixed field).
	Cohort string
}

// Pong is the status body a server attaches to the MsgPing it returns for
// a health probe: liveness plus the two facts a balancer routes on without
// a side channel — whether the server is draining and how loaded it is. A
// plain heartbeat ping has no body and decodes with a nil Pong.
type Pong struct {
	// Draining reports the server is refusing new sessions (drain mode).
	// Note a draining server usually fast-rejects the probe with a busy
	// ErrorMsg before reading it, so probers must treat a busy reject as
	// "alive but draining" too; the flag exists for probes that do get a
	// pong back.
	Draining bool
	// ActiveConns is the server's in-flight session count at probe time,
	// excluding the probe connection itself — a load signal for balancers
	// with no admin-endpoint access.
	ActiveConns uint32
}

// pongWireSize is the encoded size of a status pong body.
const pongWireSize = 1 + 4

// writeFrame emits one framed message with its CRC32-C trailer.
func writeFrame(w io.Writer, t MsgType, body []byte) error {
	return writeFrameChecked(w, t, body, true)
}

// writeFrameChecked is the framing core; withCRC false emits the legacy
// wire-v2 layout (no trailer), kept for the compatibility tests and the
// checksum-overhead benchmark.
//
// The whole frame — header, body, trailer — is assembled in one buffer and
// emitted with a single Write call. The earlier three-write layout could
// tear a frame mid-stream if two goroutines ever wrote to the same conn:
// net.Conn serializes individual Write calls but promises nothing across
// them. The single write makes each frame atomic on any conn that
// serializes Writes; the package contract is still one writer goroutine
// per connection direction (the server's tile sender, the client's
// request writer) — concurrent writers would interleave whole frames in
// an order the generation numbers must then sort out.
func writeFrameChecked(w io.Writer, t MsgType, body []byte, withCRC bool) error {
	if len(body)+1 > MaxFrameSize {
		return fmt.Errorf("proto: frame too large (%d bytes)", len(body))
	}
	n := frameHeaderSize + len(body)
	if withCRC {
		n += trailerSize
	}
	frame := make([]byte, n)
	binary.BigEndian.PutUint32(frame[:4], uint32(len(body)+1))
	frame[4] = byte(t)
	copy(frame[frameHeaderSize:], body)
	if withCRC {
		sum := crc32.Checksum(frame[4:frameHeaderSize+len(body)], castagnoli)
		binary.BigEndian.PutUint32(frame[frameHeaderSize+len(body):], sum)
	}
	if _, err := w.Write(frame); err != nil {
		return fmt.Errorf("proto: write frame: %w", err)
	}
	return nil
}

// PreframeTile fills head[:TileHeadSize] with the frame header and encoded
// item, and trailer[:TileTrailerSize] with the CRC32-C frame trailer, of
// the MsgTileData frame carrying payload. The concatenation
// head || payload || trailer is byte-identical to the stream WriteTileData
// produces, so a pre-framed tile can be served by reference (net.Buffers)
// with zero per-send serialization or checksum work. internal/store builds
// one such frame per tile variant at manifest load; the CRC — the ~30x
// cost of a framed write (BenchmarkFrameWriteCRC) — is paid exactly once
// per variant there instead of once per send.
func PreframeTile(head, trailer []byte, it player.RequestItem, payload []byte) error {
	if len(head) < TileHeadSize || len(trailer) < TileTrailerSize {
		return fmt.Errorf("proto: preframe buffers too small (%d/%d bytes)", len(head), len(trailer))
	}
	if 1+itemWireSize+len(payload) > MaxFrameSize {
		return fmt.Errorf("proto: frame too large (%d bytes)", itemWireSize+len(payload))
	}
	binary.BigEndian.PutUint32(head[:4], uint32(1+itemWireSize+len(payload)))
	head[4] = byte(MsgTileData)
	encodeItem(head[frameHeaderSize:TileHeadSize], it)
	sum := crc32.Checksum(head[4:TileHeadSize], castagnoli)
	sum = crc32.Update(sum, castagnoli, payload)
	binary.BigEndian.PutUint32(trailer[:TileTrailerSize], sum)
	return nil
}

// readChunk caps how much body memory is committed ahead of the bytes
// actually arriving: a frame claiming many MB grows its buffer as data
// comes in, so a corrupted or hostile length prefix backed by a short
// stream costs at most one chunk, not the declared length.
const readChunk = 1 << 20

// readFrame reads one framed message and verifies its trailer.
func readFrame(r io.Reader) (MsgType, []byte, error) {
	return readFrameChecked(r, true)
}

// readFrameChecked is the de-framing core; withCRC false reads the legacy
// wire-v2 layout.
func readFrameChecked(r io.Reader, withCRC bool) (MsgType, []byte, error) {
	return readFrameInto(r, nil, withCRC)
}

// readFrameInto reads one framed message, reusing buf for the body when its
// capacity suffices (a nil buf always allocates). The returned body aliases
// buf (or replaces it when grown); the caller owns exactly one of the two.
func readFrameInto(r io.Reader, buf []byte, withCRC bool) (MsgType, []byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n < 1 {
		return 0, nil, fmt.Errorf("proto: bad frame length %d", n)
	}
	if n > MaxFrameSize {
		// Reject before allocating anything: the declared length is
		// attacker-controlled (or one bit flip away from absurd).
		return 0, nil, fmt.Errorf("proto: frame length %d: %w", n, ErrFrameTooLarge)
	}
	body, err := readBody(r, buf, int(n-1))
	if err != nil {
		return 0, nil, fmt.Errorf("proto: read body: %w", err)
	}
	if withCRC {
		var trailer [trailerSize]byte
		if _, err := io.ReadFull(r, trailer[:]); err != nil {
			return 0, nil, fmt.Errorf("proto: read checksum: %w", err)
		}
		sum := crc32.Update(crc32.Checksum(hdr[4:5], castagnoli), castagnoli, body)
		if sum != binary.BigEndian.Uint32(trailer[:]) {
			return 0, nil, ErrChecksum
		}
	}
	return MsgType(hdr[4]), body, nil
}

// readBody reads exactly n body bytes into buf (reallocating when it is too
// small), growing the buffer chunk by chunk so allocation tracks delivery,
// not the declared length.
func readBody(r io.Reader, buf []byte, n int) ([]byte, error) {
	if cap(buf) >= n || n <= readChunk {
		// The buffer already fits the declared length (nothing speculative
		// about filling it), or the length is within one chunk of trust.
		if cap(buf) < n {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	if cap(buf) < readChunk {
		buf = make([]byte, 0, readChunk)
	}
	body := buf[:0]
	for len(body) < n {
		c := n - len(body)
		if c > readChunk {
			c = readChunk
		}
		off := len(body)
		if cap(body) < off+c {
			// Double, capped at what remains: growth is paid for by bytes
			// already received, never by the declared length alone.
			grow := 2 * cap(body)
			if grow > n {
				grow = n
			}
			next := make([]byte, off, grow)
			copy(next, body)
			body = next
		}
		body = body[:off+c]
		if _, err := io.ReadFull(r, body[off:]); err != nil {
			return nil, err
		}
	}
	return body, nil
}

// WriteHello sends a Hello. The cohort label travels as an optional
// length-prefixed trailer: absent entirely when empty, so the frame is
// byte-identical to the pre-cohort wire form for unclassified sessions.
func WriteHello(w io.Writer, h Hello) error {
	if len(h.VideoID) > 255 {
		return fmt.Errorf("proto: video id too long")
	}
	if len(h.Cohort) > 255 {
		return fmt.Errorf("proto: cohort label too long")
	}
	body := append([]byte{byte(len(h.VideoID))}, h.VideoID...)
	if h.Cohort != "" {
		body = append(body, byte(len(h.Cohort)))
		body = append(body, h.Cohort...)
	}
	return writeFrame(w, MsgHello, body)
}

func parseHello(body []byte) (Hello, error) {
	if len(body) < 1 || len(body) < 1+int(body[0]) {
		return Hello{}, fmt.Errorf("proto: malformed hello")
	}
	h := Hello{VideoID: string(body[1 : 1+int(body[0])])}
	rest := body[1+int(body[0]):]
	if len(rest) == 0 {
		return h, nil // pre-cohort form
	}
	if len(rest) != 1+int(rest[0]) {
		return Hello{}, fmt.Errorf("proto: malformed hello cohort")
	}
	h.Cohort = string(rest[1:])
	return h, nil
}

// WriteManifest sends the manifest as JSON.
func WriteManifest(w io.Writer, m *video.Manifest) error {
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		return err
	}
	return writeFrame(w, MsgManifest, buf.Bytes())
}

// itemWireSize is the encoded size of one request item.
const itemWireSize = 1 + 4 + 1 + 4 + 1

func encodeItem(buf []byte, it player.RequestItem) {
	buf[0] = byte(it.Stream)
	binary.BigEndian.PutUint32(buf[1:5], uint32(it.Chunk))
	if it.Full360 {
		buf[5] = 1
	} else {
		buf[5] = 0
	}
	binary.BigEndian.PutUint32(buf[6:10], uint32(it.Tile))
	buf[10] = byte(it.Quality)
}

func decodeItem(buf []byte) (player.RequestItem, error) {
	it := player.RequestItem{
		Stream:  player.StreamKind(buf[0]),
		Chunk:   int(binary.BigEndian.Uint32(buf[1:5])),
		Full360: buf[5] == 1,
		Tile:    geom.TileID(binary.BigEndian.Uint32(buf[6:10])),
		Quality: video.Quality(buf[10]),
	}
	if it.Stream != player.Primary && it.Stream != player.Masking {
		return it, fmt.Errorf("proto: bad stream kind %d", buf[0])
	}
	if !it.Quality.Valid() {
		return it, fmt.Errorf("proto: bad quality %d", buf[10])
	}
	return it, nil
}

// WriteRequest sends a fetch list.
func WriteRequest(w io.Writer, r Request) error {
	body := make([]byte, 4+4+len(r.Items)*itemWireSize)
	binary.BigEndian.PutUint32(body[:4], r.Generation)
	binary.BigEndian.PutUint32(body[4:8], uint32(len(r.Items)))
	for i, it := range r.Items {
		encodeItem(body[8+i*itemWireSize:], it)
	}
	return writeFrame(w, MsgRequest, body)
}

func parseRequest(body []byte) (Request, error) {
	if len(body) < 8 {
		return Request{}, fmt.Errorf("proto: short request")
	}
	r := Request{Generation: binary.BigEndian.Uint32(body[:4])}
	// Validate the count before multiplying: on 32-bit platforms
	// n*itemWireSize can overflow int, and Uint32 is never negative, so
	// bound it by the largest count a legal frame could carry instead.
	n32 := binary.BigEndian.Uint32(body[4:8])
	if n32 > (MaxFrameSize-8)/itemWireSize {
		return Request{}, fmt.Errorf("proto: request item count %d exceeds frame cap", n32)
	}
	n := int(n32)
	if len(body) != 8+n*itemWireSize {
		return Request{}, fmt.Errorf("proto: malformed request (%d items, %d bytes)", n, len(body))
	}
	r.Items = make([]player.RequestItem, n)
	for i := 0; i < n; i++ {
		it, err := decodeItem(body[8+i*itemWireSize:])
		if err != nil {
			return Request{}, err
		}
		r.Items[i] = it
	}
	return r, nil
}

// WriteTileData sends one delivered tile with its payload. The frame is
// assembled in a single buffer and emitted with one Write (the same
// torn-frame guarantee as writeFrameChecked); the server's steady-state
// send path avoids even this one serialization by serving pre-framed
// buffers from internal/store instead.
func WriteTileData(w io.Writer, td TileData) error {
	frame := make([]byte, TileFrameOverhead+len(td.Payload))
	if err := PreframeTile(frame[:TileHeadSize], frame[len(frame)-TileTrailerSize:], td.Item, td.Payload); err != nil {
		return err
	}
	copy(frame[TileHeadSize:], td.Payload)
	if _, err := w.Write(frame); err != nil {
		return fmt.Errorf("proto: write frame: %w", err)
	}
	return nil
}

func parseTileData(body []byte) (TileData, error) {
	if len(body) < itemWireSize {
		return TileData{}, fmt.Errorf("proto: short tile data")
	}
	it, err := decodeItem(body)
	if err != nil {
		return TileData{}, err
	}
	return TileData{Item: it, Payload: body[itemWireSize:]}, nil
}

// WriteResume sends a session-resume request.
func WriteResume(w io.Writer, r Resume) error {
	if len(r.VideoID) > 255 {
		return fmt.Errorf("proto: video id too long")
	}
	h := r.Held
	if !h.Valid() {
		return fmt.Errorf("proto: inconsistent held summary (%dx%d chunks/tiles)", h.NumChunks, h.NumTiles)
	}
	body := make([]byte, 0, 10+len(r.VideoID)+len(h.Primary)+len(h.MaskTile)+len(h.MaskFull))
	body = append(body, r.Version, byte(len(r.VideoID)))
	body = append(body, r.VideoID...)
	var dims [8]byte
	binary.BigEndian.PutUint32(dims[:4], uint32(h.NumChunks))
	binary.BigEndian.PutUint32(dims[4:], uint32(h.NumTiles))
	body = append(body, dims[:]...)
	body = append(body, h.Primary...)
	body = append(body, h.MaskTile...)
	body = append(body, h.MaskFull...)
	if r.Cohort != "" {
		if len(r.Cohort) > 255 {
			return fmt.Errorf("proto: cohort label too long")
		}
		body = append(body, byte(len(r.Cohort)))
		body = append(body, r.Cohort...)
	}
	return writeFrame(w, MsgResume, body)
}

// maxResumeDim bounds the chunk/tile counts a resume may claim, keeping
// the implied bitmap allocations well inside the frame cap.
const maxResumeDim = 1 << 16

func parseResume(body []byte) (Resume, error) {
	if len(body) < 2 {
		return Resume{}, fmt.Errorf("proto: short resume")
	}
	r := Resume{Version: body[0]}
	idLen := int(body[1])
	rest := body[2:]
	if len(rest) < idLen+8 {
		return Resume{}, fmt.Errorf("proto: malformed resume")
	}
	r.VideoID = string(rest[:idLen])
	rest = rest[idLen:]
	chunks := binary.BigEndian.Uint32(rest[:4])
	tiles := binary.BigEndian.Uint32(rest[4:8])
	rest = rest[8:]
	if chunks > maxResumeDim || tiles > maxResumeDim {
		return Resume{}, fmt.Errorf("proto: resume dimensions %dx%d too large", chunks, tiles)
	}
	h := player.HeldSummary{NumChunks: int(chunks), NumTiles: int(tiles)}
	perTile := (h.NumChunks*h.NumTiles + 7) / 8
	perChunk := (h.NumChunks + 7) / 8
	if len(rest) < 2*perTile+perChunk {
		return Resume{}, fmt.Errorf("proto: resume bitmap length %d, want %d", len(rest), 2*perTile+perChunk)
	}
	h.Primary = rest[:perTile]
	h.MaskTile = rest[perTile : 2*perTile]
	h.MaskFull = rest[2*perTile : 2*perTile+perChunk]
	r.Held = h
	rest = rest[2*perTile+perChunk:]
	if len(rest) > 0 { // optional cohort trailer
		if len(rest) != 1+int(rest[0]) {
			return Resume{}, fmt.Errorf("proto: malformed resume cohort")
		}
		r.Cohort = string(rest[1:])
	}
	return r, nil
}

// WritePing sends an idle-link heartbeat (or, as a connection's first
// message, a health probe).
func WritePing(w io.Writer) error { return writeFrame(w, MsgPing, nil) }

// WritePong sends a MsgPing carrying probe status.
func WritePong(w io.Writer, p Pong) error {
	body := make([]byte, pongWireSize)
	if p.Draining {
		body[0] = 1
	}
	binary.BigEndian.PutUint32(body[1:], p.ActiveConns)
	return writeFrame(w, MsgPing, body)
}

// WriteBye sends an orderly-shutdown frame.
func WriteBye(w io.Writer) error { return writeFrame(w, MsgBye, nil) }

// WriteError sends a fatal error description.
func WriteError(w io.Writer, text string) error {
	return writeFrame(w, MsgError, []byte(text))
}

// Message is the decoded form of any frame: exactly one field is set.
// (Ping is set only for status pongs; a plain heartbeat MsgPing sets none.)
type Message struct {
	Type     MsgType
	Hello    *Hello
	Manifest *video.Manifest
	Request  *Request
	TileData *TileData
	Resume   *Resume
	Ping     *Pong
	Error    string
}

// ReadMessage reads and decodes the next frame. The frame body is freshly
// allocated, so the returned message owns its memory; loops on the tile
// hot path should prefer ReadMessageBuf.
func ReadMessage(r io.Reader) (*Message, error) {
	t, body, err := readFrame(r)
	if err != nil {
		return nil, err
	}
	return decodeMessage(t, body)
}

// ReadMessageBuf reads and decodes the next frame like ReadMessage, but
// reads the frame body into buf (growing it as needed) instead of a fresh
// allocation, and returns the buffer to pass to the next call.
//
// Ownership contract: the returned Message aliases the returned buffer —
// TileData.Payload and the Resume.Held bitmaps point directly into it — so
// the message and anything it references are valid only until
// the buffer is passed to ReadMessageBuf again. A buffer belongs to exactly
// one reader loop; never share one across connections or goroutines.
// Callers that retain body-derived state across frames (the resume
// handshake's held summary) must use ReadMessage or copy first.
//
// This is the pooled-read fix for the tile hot path: a steady-state frame
// read costs a few fixed-size allocations (the Message and payload
// descriptors plus header/trailer scratch) instead of re-allocating the
// body (~147 KB/op for a typical tile frame, the pre-fix
// BenchmarkFrameReadCRC figure).
func ReadMessageBuf(r io.Reader, buf []byte) (*Message, []byte, error) {
	t, body, err := readFrameInto(r, buf, true)
	if err != nil {
		return nil, buf, err
	}
	msg, err := decodeMessage(t, body)
	if cap(body) > cap(buf) {
		buf = body[:0]
	}
	return msg, buf, err
}

// decodeMessage parses one de-framed message body. The result may alias
// body; readers reusing body buffers own the aliasing contract.
func decodeMessage(t MsgType, body []byte) (*Message, error) {
	msg := &Message{Type: t}
	switch t {
	case MsgHello:
		h, err := parseHello(body)
		if err != nil {
			return nil, err
		}
		msg.Hello = &h
	case MsgManifest:
		m, err := video.ReadManifest(bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		msg.Manifest = m
	case MsgRequest:
		req, err := parseRequest(body)
		if err != nil {
			return nil, err
		}
		msg.Request = &req
	case MsgTileData:
		td, err := parseTileData(body)
		if err != nil {
			return nil, err
		}
		msg.TileData = &td
	case MsgResume:
		r, err := parseResume(body)
		if err != nil {
			return nil, err
		}
		msg.Resume = &r
	case MsgBye:
	case MsgPing:
		// A status pong carries a body; heartbeats are empty. Unknown
		// (longer) bodies still decode the known prefix, so the pong can
		// grow fields without breaking old readers.
		if len(body) >= pongWireSize {
			msg.Ping = &Pong{
				Draining:    body[0] == 1,
				ActiveConns: binary.BigEndian.Uint32(body[1:5]),
			}
		}
	case MsgError:
		msg.Error = string(body)
	default:
		return nil, fmt.Errorf("proto: unknown message type %d", t)
	}
	return msg, nil
}
