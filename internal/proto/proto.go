// Package proto defines the wire protocol between the Dragonfly client and
// the tile server (paper §3.3): the client sends tile requests — each
// superseding the previous one — and the server streams tile data back,
// never re-sending a tile already delivered above masking quality.
//
// Framing: every message is [4-byte big-endian length][1-byte type][body].
// Bodies use fixed-width big-endian integers; the manifest travels as JSON
// (it is sent once per session).
package proto

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"dragonfly/internal/geom"
	"dragonfly/internal/player"
	"dragonfly/internal/video"
)

// MsgType tags a frame.
type MsgType uint8

// The protocol messages.
const (
	// MsgHello (client -> server): request a video by ID.
	MsgHello MsgType = iota + 1
	// MsgManifest (server -> client): the video manifest, as JSON.
	MsgManifest
	// MsgRequest (client -> server): a full fetch list with a generation
	// number; it replaces any earlier request ("the server discards the
	// previous request", §3.3).
	MsgRequest
	// MsgTileData (server -> client): one tile (or full-360° chunk) payload.
	MsgTileData
	// MsgBye (either direction): orderly shutdown.
	MsgBye
	// MsgError (server -> client): a fatal server-side error description.
	MsgError
	// MsgResume (client -> server): reopen a session after a disconnect,
	// carrying a bitmap summary of the tiles the client already holds so
	// the server can rebuild its redundancy-suppression state instead of
	// re-sending them.
	MsgResume
	// MsgPing (server -> client): heartbeat while the send queue is idle,
	// letting the client distinguish an idle link from a dead one.
	MsgPing
)

// ProtoVersion is the wire-protocol version carried inside resume frames.
// Version 1 is the original (implicit) protocol; version 2 adds MsgResume
// and MsgPing. A peer receiving a resume with a different version answers
// with a clean MsgError instead of desynchronizing.
const ProtoVersion = 2

// MaxFrameSize bounds a single frame; the largest legitimate payload is a
// full-360° chunk at the highest quality (a few MB).
const MaxFrameSize = 64 << 20

// Hello opens a session.
type Hello struct {
	VideoID string
}

// Request carries an ordered fetch list.
type Request struct {
	Generation uint32
	Items      []player.RequestItem
}

// TileData carries one delivered item and its payload.
type TileData struct {
	Item    player.RequestItem
	Payload []byte
}

// ErrorMsg reports a fatal server error.
type ErrorMsg struct {
	Text string
}

// Resume reopens a session after a disconnect. Held summarizes the tile
// variants the client already has at exactly the granularity of the
// server's dedup arrays, so a resumed session never re-downloads them.
type Resume struct {
	Version uint8
	VideoID string
	Held    player.HeldSummary
}

// writeFrame emits one framed message.
func writeFrame(w io.Writer, t MsgType, body []byte) error {
	if len(body)+1 > MaxFrameSize {
		return fmt.Errorf("proto: frame too large (%d bytes)", len(body))
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(body)+1))
	hdr[4] = byte(t)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("proto: write header: %w", err)
	}
	// Skip the body write for empty frames (Bye, Ping): a zero-length
	// Write on a net.Pipe blocks waiting for a reader rendezvous.
	if len(body) == 0 {
		return nil
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("proto: write body: %w", err)
	}
	return nil
}

// readFrame reads one framed message.
func readFrame(r io.Reader) (MsgType, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n < 1 || n > MaxFrameSize {
		return 0, nil, fmt.Errorf("proto: bad frame length %d", n)
	}
	body := make([]byte, n-1)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, fmt.Errorf("proto: read body: %w", err)
	}
	return MsgType(hdr[4]), body, nil
}

// WriteHello sends a Hello.
func WriteHello(w io.Writer, h Hello) error {
	if len(h.VideoID) > 255 {
		return fmt.Errorf("proto: video id too long")
	}
	body := append([]byte{byte(len(h.VideoID))}, h.VideoID...)
	return writeFrame(w, MsgHello, body)
}

func parseHello(body []byte) (Hello, error) {
	if len(body) < 1 || len(body) != 1+int(body[0]) {
		return Hello{}, fmt.Errorf("proto: malformed hello")
	}
	return Hello{VideoID: string(body[1:])}, nil
}

// WriteManifest sends the manifest as JSON.
func WriteManifest(w io.Writer, m *video.Manifest) error {
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		return err
	}
	return writeFrame(w, MsgManifest, buf.Bytes())
}

// itemWireSize is the encoded size of one request item.
const itemWireSize = 1 + 4 + 1 + 4 + 1

func encodeItem(buf []byte, it player.RequestItem) {
	buf[0] = byte(it.Stream)
	binary.BigEndian.PutUint32(buf[1:5], uint32(it.Chunk))
	if it.Full360 {
		buf[5] = 1
	} else {
		buf[5] = 0
	}
	binary.BigEndian.PutUint32(buf[6:10], uint32(it.Tile))
	buf[10] = byte(it.Quality)
}

func decodeItem(buf []byte) (player.RequestItem, error) {
	it := player.RequestItem{
		Stream:  player.StreamKind(buf[0]),
		Chunk:   int(binary.BigEndian.Uint32(buf[1:5])),
		Full360: buf[5] == 1,
		Tile:    geom.TileID(binary.BigEndian.Uint32(buf[6:10])),
		Quality: video.Quality(buf[10]),
	}
	if it.Stream != player.Primary && it.Stream != player.Masking {
		return it, fmt.Errorf("proto: bad stream kind %d", buf[0])
	}
	if !it.Quality.Valid() {
		return it, fmt.Errorf("proto: bad quality %d", buf[10])
	}
	return it, nil
}

// WriteRequest sends a fetch list.
func WriteRequest(w io.Writer, r Request) error {
	body := make([]byte, 4+4+len(r.Items)*itemWireSize)
	binary.BigEndian.PutUint32(body[:4], r.Generation)
	binary.BigEndian.PutUint32(body[4:8], uint32(len(r.Items)))
	for i, it := range r.Items {
		encodeItem(body[8+i*itemWireSize:], it)
	}
	return writeFrame(w, MsgRequest, body)
}

func parseRequest(body []byte) (Request, error) {
	if len(body) < 8 {
		return Request{}, fmt.Errorf("proto: short request")
	}
	r := Request{Generation: binary.BigEndian.Uint32(body[:4])}
	// Validate the count before multiplying: on 32-bit platforms
	// n*itemWireSize can overflow int, and Uint32 is never negative, so
	// bound it by the largest count a legal frame could carry instead.
	n32 := binary.BigEndian.Uint32(body[4:8])
	if n32 > (MaxFrameSize-8)/itemWireSize {
		return Request{}, fmt.Errorf("proto: request item count %d exceeds frame cap", n32)
	}
	n := int(n32)
	if len(body) != 8+n*itemWireSize {
		return Request{}, fmt.Errorf("proto: malformed request (%d items, %d bytes)", n, len(body))
	}
	r.Items = make([]player.RequestItem, n)
	for i := 0; i < n; i++ {
		it, err := decodeItem(body[8+i*itemWireSize:])
		if err != nil {
			return Request{}, err
		}
		r.Items[i] = it
	}
	return r, nil
}

// WriteTileData sends one delivered tile with its payload.
func WriteTileData(w io.Writer, td TileData) error {
	body := make([]byte, itemWireSize+len(td.Payload))
	encodeItem(body, td.Item)
	copy(body[itemWireSize:], td.Payload)
	return writeFrame(w, MsgTileData, body)
}

func parseTileData(body []byte) (TileData, error) {
	if len(body) < itemWireSize {
		return TileData{}, fmt.Errorf("proto: short tile data")
	}
	it, err := decodeItem(body)
	if err != nil {
		return TileData{}, err
	}
	return TileData{Item: it, Payload: body[itemWireSize:]}, nil
}

// WriteResume sends a session-resume request.
func WriteResume(w io.Writer, r Resume) error {
	if len(r.VideoID) > 255 {
		return fmt.Errorf("proto: video id too long")
	}
	h := r.Held
	if !h.Valid() {
		return fmt.Errorf("proto: inconsistent held summary (%dx%d chunks/tiles)", h.NumChunks, h.NumTiles)
	}
	body := make([]byte, 0, 10+len(r.VideoID)+len(h.Primary)+len(h.MaskTile)+len(h.MaskFull))
	body = append(body, r.Version, byte(len(r.VideoID)))
	body = append(body, r.VideoID...)
	var dims [8]byte
	binary.BigEndian.PutUint32(dims[:4], uint32(h.NumChunks))
	binary.BigEndian.PutUint32(dims[4:], uint32(h.NumTiles))
	body = append(body, dims[:]...)
	body = append(body, h.Primary...)
	body = append(body, h.MaskTile...)
	body = append(body, h.MaskFull...)
	return writeFrame(w, MsgResume, body)
}

// maxResumeDim bounds the chunk/tile counts a resume may claim, keeping
// the implied bitmap allocations well inside the frame cap.
const maxResumeDim = 1 << 16

func parseResume(body []byte) (Resume, error) {
	if len(body) < 2 {
		return Resume{}, fmt.Errorf("proto: short resume")
	}
	r := Resume{Version: body[0]}
	idLen := int(body[1])
	rest := body[2:]
	if len(rest) < idLen+8 {
		return Resume{}, fmt.Errorf("proto: malformed resume")
	}
	r.VideoID = string(rest[:idLen])
	rest = rest[idLen:]
	chunks := binary.BigEndian.Uint32(rest[:4])
	tiles := binary.BigEndian.Uint32(rest[4:8])
	rest = rest[8:]
	if chunks > maxResumeDim || tiles > maxResumeDim {
		return Resume{}, fmt.Errorf("proto: resume dimensions %dx%d too large", chunks, tiles)
	}
	h := player.HeldSummary{NumChunks: int(chunks), NumTiles: int(tiles)}
	perTile := (h.NumChunks*h.NumTiles + 7) / 8
	perChunk := (h.NumChunks + 7) / 8
	if len(rest) != 2*perTile+perChunk {
		return Resume{}, fmt.Errorf("proto: resume bitmap length %d, want %d", len(rest), 2*perTile+perChunk)
	}
	h.Primary = rest[:perTile]
	h.MaskTile = rest[perTile : 2*perTile]
	h.MaskFull = rest[2*perTile:]
	r.Held = h
	return r, nil
}

// WritePing sends an idle-link heartbeat.
func WritePing(w io.Writer) error { return writeFrame(w, MsgPing, nil) }

// WriteBye sends an orderly-shutdown frame.
func WriteBye(w io.Writer) error { return writeFrame(w, MsgBye, nil) }

// WriteError sends a fatal error description.
func WriteError(w io.Writer, text string) error {
	return writeFrame(w, MsgError, []byte(text))
}

// Message is the decoded form of any frame: exactly one field is set.
type Message struct {
	Type     MsgType
	Hello    *Hello
	Manifest *video.Manifest
	Request  *Request
	TileData *TileData
	Resume   *Resume
	Error    string
}

// ReadMessage reads and decodes the next frame.
func ReadMessage(r io.Reader) (*Message, error) {
	t, body, err := readFrame(r)
	if err != nil {
		return nil, err
	}
	msg := &Message{Type: t}
	switch t {
	case MsgHello:
		h, err := parseHello(body)
		if err != nil {
			return nil, err
		}
		msg.Hello = &h
	case MsgManifest:
		m, err := video.ReadManifest(bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		msg.Manifest = m
	case MsgRequest:
		req, err := parseRequest(body)
		if err != nil {
			return nil, err
		}
		msg.Request = &req
	case MsgTileData:
		td, err := parseTileData(body)
		if err != nil {
			return nil, err
		}
		msg.TileData = &td
	case MsgResume:
		r, err := parseResume(body)
		if err != nil {
			return nil, err
		}
		msg.Resume = &r
	case MsgBye, MsgPing:
	case MsgError:
		msg.Error = string(body)
	default:
		return nil, fmt.Errorf("proto: unknown message type %d", t)
	}
	return msg, nil
}
