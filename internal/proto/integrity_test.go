package proto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"runtime"
	"testing"

	"dragonfly/internal/player"
)

// TestFrameChecksumDetectsBitFlips flips every bit of a framed message in
// turn: each corruption must surface as an error — ErrChecksum when the
// frame still parses far enough to reach the trailer — and never as a
// silently decoded frame with different content.
func TestFrameChecksumDetectsBitFlips(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTileData(&buf, TileData{
		Item:    player.RequestItem{Stream: player.Primary, Chunk: 3, Tile: 7, Quality: 2},
		Payload: []byte("tile payload bytes"),
	}); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	if _, err := ReadMessage(bytes.NewReader(clean)); err != nil {
		t.Fatalf("clean frame rejected: %v", err)
	}
	for bit := 0; bit < len(clean)*8; bit++ {
		raw := append([]byte(nil), clean...)
		raw[bit/8] ^= 1 << uint(bit%8)
		msg, err := ReadMessage(bytes.NewReader(raw))
		if err == nil {
			t.Fatalf("bit flip at %d decoded silently: %+v", bit, msg)
		}
	}
}

// TestFrameChecksumMismatchIsTyped corrupts a body byte (framing intact)
// and checks the error is the ErrChecksum sentinel the corruption counters
// key on.
func TestFrameChecksumMismatchIsTyped(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHello(&buf, Hello{VideoID: "v1"}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[6] ^= 0x40 // inside the body, after [len][type]
	_, err := ReadMessage(bytes.NewReader(raw))
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupt body: err = %v, want ErrChecksum", err)
	}
}

// TestFrameTruncatedTrailer rejects a frame whose stream ends inside the
// CRC trailer.
func TestFrameTruncatedTrailer(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBye(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := len(raw) - trailerSize; cut < len(raw); cut++ {
		if _, err := ReadMessage(bytes.NewReader(raw[:cut])); err == nil {
			t.Errorf("frame truncated at %d/%d accepted", cut, len(raw))
		}
	}
}

// failOnReadReader fails the test if anything tries to read past the
// header: a frame rejected for its declared length must be rejected on the
// header alone.
type failOnReadReader struct{ t *testing.T }

func (r failOnReadReader) Read([]byte) (int, error) {
	r.t.Fatal("body read attempted for an over-cap frame")
	return 0, io.EOF
}

// TestReadFrameRejectsOverCapLengthBeforeReading feeds a length prefix
// beyond MaxFrameSize: the frame must be rejected with ErrFrameTooLarge
// without a single body read (and therefore without any body allocation).
func TestReadFrameRejectsOverCapLengthBeforeReading(t *testing.T) {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], MaxFrameSize+1)
	hdr[4] = byte(MsgTileData)
	r := io.MultiReader(bytes.NewReader(hdr[:]), failOnReadReader{t})
	_, _, err := readFrame(r)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

// TestReadFrameHostileLengthPrefixAllocation feeds a header whose declared
// length is just under the cap but whose stream carries only a handful of
// bytes. Before the incremental-read fix, readFrame committed the full
// declared length up front (~48 MB here); now allocation must track the
// bytes that actually arrive. The pre-fix version of this test fails with
// tens of MB allocated.
func TestReadFrameHostileLengthPrefixAllocation(t *testing.T) {
	const claimed = 48 << 20
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], claimed)
	hdr[4] = byte(MsgTileData)
	hostile := append(hdr[:], bytes.Repeat([]byte{0xAB}, 64)...)

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	_, _, err := readFrame(bytes.NewReader(hostile))
	runtime.ReadMemStats(&after)
	if err == nil {
		t.Fatal("hostile frame accepted")
	}
	// The stream died inside the first chunk, so at most one chunk (plus
	// slack for the runtime) may have been committed — far below the 48 MB
	// the prefix claimed.
	if alloced := after.TotalAlloc - before.TotalAlloc; alloced > 4*readChunk {
		t.Fatalf("hostile 48 MB prefix allocated %d bytes, want <= %d", alloced, 4*readChunk)
	}
}

// TestReadFrameLargeBodyRoundTrip exercises the chunked body reader on a
// frame bigger than one read chunk.
func TestReadFrameLargeBodyRoundTrip(t *testing.T) {
	payload := bytes.Repeat([]byte{0xC7}, 3*readChunk+12345)
	var buf bytes.Buffer
	if err := WriteTileData(&buf, TileData{
		Item:    player.RequestItem{Stream: player.Masking, Chunk: 1, Full360: true},
		Payload: payload,
	}); err != nil {
		t.Fatal(err)
	}
	msg, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(msg.TileData.Payload, payload) {
		t.Fatal("large payload corrupted through chunked read")
	}
}

// TestV2PeerFailsCleanly frames a message in the legacy wire-v2 layout and
// reads it with the v3 reader (and vice versa): both directions must fail
// with a clean error, never decode garbage — the compatibility rule of
// docs/RESILIENCE.md.
func TestV2PeerFailsCleanly(t *testing.T) {
	var v2 bytes.Buffer
	if err := writeFrameChecked(&v2, MsgHello, []byte{2, 'v', '8'}, false); err != nil {
		t.Fatal(err)
	}
	// v3 reader on a v2 stream: the 4 trailer bytes are missing.
	if _, err := ReadMessage(bytes.NewReader(v2.Bytes())); err == nil {
		t.Error("v3 reader accepted a v2 frame")
	}

	var v3 bytes.Buffer
	if err := WriteHello(&v3, Hello{VideoID: "v8"}); err != nil {
		t.Fatal(err)
	}
	// Two v3 frames back to back desync a v2 reader by the trailer width.
	if err := WriteHello(&v3, Hello{VideoID: "v9"}); err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(v3.Bytes())
	if _, _, err := readFrameChecked(r, false); err != nil {
		// The first v2 read may already fail; that is a clean error too.
		return
	}
	// The second read starts 4 bytes into the stream; it must error, not
	// decode a phantom frame of the same type.
	if typ, _, err := readFrameChecked(r, false); err == nil && typ == MsgHello {
		t.Error("v2 reader decoded a phantom hello from a v3 stream")
	}
}

// TestBusyText checks the retryable-rejection convention round-trips and
// does not swallow ordinary errors.
func TestBusyText(t *testing.T) {
	if !IsBusyText(BusyText("connection limit reached")) {
		t.Error("BusyText not recognized as busy")
	}
	if IsBusyText("unknown video \"v1\"") {
		t.Error("fatal error text misread as busy")
	}
}
