package proto

import (
	"bytes"
	"testing"

	"dragonfly/internal/player"
)

// FuzzReadMessage hammers the frame decoder with arbitrary bytes: it must
// never panic and never allocate beyond the frame cap. Run with
// `go test -fuzz FuzzReadMessage ./internal/proto` for a real campaign;
// under plain `go test` the seed corpus below runs as regression cases.
func FuzzReadMessage(f *testing.F) {
	// Seed with valid frames of every type plus known-bad shapes.
	var hello, req, tile, bye bytes.Buffer
	_ = WriteHello(&hello, Hello{VideoID: "v1"})
	_ = WriteRequest(&req, Request{Generation: 3, Items: []player.RequestItem{
		{Stream: player.Primary, Chunk: 1, Tile: 2, Quality: 3},
	}})
	_ = WriteTileData(&tile, TileData{
		Item:    player.RequestItem{Stream: player.Masking, Chunk: 0, Full360: true},
		Payload: []byte{1, 2, 3},
	})
	_ = WriteBye(&bye)
	f.Add(hello.Bytes())
	f.Add(req.Bytes())
	f.Add(tile.Bytes())
	f.Add(bye.Bytes())
	f.Add([]byte{0, 0, 0, 1, 99})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, raw []byte) {
		msg, err := ReadMessage(bytes.NewReader(raw))
		if err == nil && msg == nil {
			t.Fatal("nil message without error")
		}
		// Decoded messages must be internally consistent.
		if err == nil && msg.Type == MsgRequest {
			for _, it := range msg.Request.Items {
				if !it.Quality.Valid() {
					t.Fatalf("decoded invalid quality %d", it.Quality)
				}
			}
		}
	})
}
