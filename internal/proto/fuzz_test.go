package proto

import (
	"bytes"
	"testing"

	"dragonfly/internal/player"
)

// FuzzReadMessage hammers the frame decoder with arbitrary bytes: it must
// never panic and never allocate beyond the frame cap. Run with
// `go test -fuzz FuzzReadMessage ./internal/proto` for a real campaign;
// under plain `go test` the seed corpus below runs as regression cases.
func FuzzReadMessage(f *testing.F) {
	// Seed with valid frames of every type plus known-bad shapes.
	var hello, req, tile, bye, ping, resume bytes.Buffer
	_ = WriteHello(&hello, Hello{VideoID: "v1"})
	_ = WriteRequest(&req, Request{Generation: 3, Items: []player.RequestItem{
		{Stream: player.Primary, Chunk: 1, Tile: 2, Quality: 3},
	}})
	_ = WriteTileData(&tile, TileData{
		Item:    player.RequestItem{Stream: player.Masking, Chunk: 0, Full360: true},
		Payload: []byte{1, 2, 3},
	})
	_ = WriteBye(&bye)
	_ = WritePing(&ping)
	_ = WriteResume(&resume, Resume{Version: ProtoVersion, VideoID: "v1", Held: player.HeldSummary{
		NumChunks: 2, NumTiles: 4,
		Primary:  []byte{0x81},
		MaskTile: []byte{0x10},
		MaskFull: []byte{0x01},
	}})
	f.Add(hello.Bytes())
	f.Add(req.Bytes())
	f.Add(tile.Bytes())
	f.Add(bye.Bytes())
	f.Add(ping.Bytes())
	f.Add(resume.Bytes())
	f.Add([]byte{0, 0, 0, 1, 99})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1})
	f.Add([]byte{})
	// Wire-v3 trailer shapes: a frame with its CRC zeroed, one with a
	// single body bit flipped (trailer now stale), and one truncated
	// mid-trailer — all must fail cleanly.
	zeroed := append([]byte(nil), tile.Bytes()...)
	copy(zeroed[len(zeroed)-4:], []byte{0, 0, 0, 0})
	f.Add(zeroed)
	flipped := append([]byte(nil), req.Bytes()...)
	flipped[6] ^= 0x01
	f.Add(flipped)
	f.Add(bye.Bytes()[:len(bye.Bytes())-2])
	// Legacy wire-v2 frame (no trailer): a v3 reader must reject it, not
	// desync.
	var v2 bytes.Buffer
	_ = writeFrameChecked(&v2, MsgHello, []byte{2, 'v', '1'}, false)
	f.Add(v2.Bytes())

	f.Fuzz(func(t *testing.T, raw []byte) {
		msg, err := ReadMessage(bytes.NewReader(raw))
		if err == nil && msg == nil {
			t.Fatal("nil message without error")
		}
		if err != nil {
			return
		}
		// Decoded messages must be internally consistent.
		switch msg.Type {
		case MsgRequest:
			for _, it := range msg.Request.Items {
				if !it.Quality.Valid() {
					t.Fatalf("decoded invalid quality %d", it.Quality)
				}
			}
		case MsgResume:
			if !msg.Resume.Held.Valid() {
				t.Fatalf("decoded inconsistent held summary %+v", msg.Resume.Held)
			}
		}
	})
}

// FuzzParseTileData targets the tile-payload decoder directly: arbitrary
// bodies must decode to a consistent item or fail cleanly.
func FuzzParseTileData(f *testing.F) {
	var tile bytes.Buffer
	_ = WriteTileData(&tile, TileData{
		Item:    player.RequestItem{Stream: player.Primary, Chunk: 7, Tile: 11, Quality: 2},
		Payload: []byte("payload"),
	})
	f.Add(tile.Bytes()[5:]) // body only: skip length+type
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, itemWireSize))
	f.Add(bytes.Repeat([]byte{0}, itemWireSize-1))

	f.Fuzz(func(t *testing.T, body []byte) {
		td, err := parseTileData(body)
		if err != nil {
			return
		}
		if !td.Item.Quality.Valid() {
			t.Fatalf("decoded invalid quality %d", td.Item.Quality)
		}
		if len(td.Payload) != len(body)-itemWireSize {
			t.Fatalf("payload length %d from %d-byte body", len(td.Payload), len(body))
		}
	})
}

// FuzzParseResume hammers the resume decoder: it must never panic and
// never produce an inconsistent summary.
func FuzzParseResume(f *testing.F) {
	var resume bytes.Buffer
	_ = WriteResume(&resume, Resume{Version: ProtoVersion, VideoID: "vv", Held: player.HeldSummary{
		NumChunks: 3, NumTiles: 3,
		Primary:  []byte{0xAA, 0x01},
		MaskTile: []byte{0x55, 0x00},
		MaskFull: []byte{0x07},
	}})
	f.Add(resume.Bytes()[5:])
	f.Add([]byte{})
	f.Add([]byte{2, 0})
	f.Add([]byte{2, 255, 0, 0})
	// Hostile dimension claims: counts at and beyond maxResumeDim whose
	// implied bitmaps would dwarf the actual body.
	f.Add([]byte{3, 0, 0, 1, 0, 0, 0, 1, 0, 0})
	f.Add([]byte{3, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{3, 0, 0, 0, 0, 0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, body []byte) {
		r, err := parseResume(body)
		if err != nil {
			return
		}
		if !r.Held.Valid() {
			t.Fatalf("decoded inconsistent held summary %+v", r.Held)
		}
		r.Held.Count() // must not panic on any accepted summary
	})
}
