package ingest

import (
	"bytes"
	"context"
	"errors"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"dragonfly/internal/chaos"
	"dragonfly/internal/leaktest"
	"dragonfly/internal/obs"
)

// Chaos tests arm the process-global failpoint registry and therefore must
// not run in t.Parallel with each other; each one disarms on cleanup.

func armOrFatal(t *testing.T, rules ...chaos.Rule) {
	t.Helper()
	if err := chaos.Arm(rules...); err != nil {
		t.Fatalf("chaos.Arm: %v", err)
	}
	t.Cleanup(chaos.Disarm)
}

// TestWatcherSurvivesReadFaults is the satellite-1 contract: a trace file
// that turns unreadable mid-tail (deleted between listing and read, EIO,
// permission flip — here an injected ingest.watch.read fault) is logged and
// counted, the scan loop stays alive, and the file's content folds on the
// next healthy pass.
func TestWatcherSurvivesReadFaults(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	var logged atomic.Int64
	cfg := DefaultConfig()
	cfg.Obs = reg
	cfg.Logf = func(string, ...any) { logged.Add(1) }
	agg := New(cfg)
	w := NewWatcher(agg, dir, time.Hour)

	path := filepath.Join(dir, "s0.jsonl")
	body := `{"v":1,"t_ms":0,"ev":"session","cohort":"low:net"}` + "\n" +
		`{"v":1,"t_ms":10,"ev":"quality","n":4200}` + "\n"
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}

	armOrFatal(t, chaos.Rule{Site: "ingest.watch.read", Kind: chaos.FaultError, Count: 2})
	for i := 0; i < 2; i++ {
		if err := w.Scan(); err != nil {
			t.Fatalf("Scan %d: per-file fault must not abandon the scan: %v", i, err)
		}
	}
	if n := agg.Rollup().Cohorts["low:net"].QualityDB.Count; n != 0 {
		t.Fatalf("faulted scans folded %d quality samples, want 0", n)
	}
	if got := reg.Snapshot().Counters["ing_watch_errs"]; got != 2 {
		t.Fatalf("ing_watch_errs = %d, want 2", got)
	}
	if logged.Load() == 0 {
		t.Fatalf("faulted scans produced no log lines")
	}

	// Rules exhausted: the same offset state must pick the file back up.
	if err := w.Scan(); err != nil {
		t.Fatalf("recovery Scan: %v", err)
	}
	cr := agg.Rollup().Cohorts["low:net"]
	if cr.Sessions != 1 || cr.QualityDB.Count != 1 {
		t.Fatalf("after recovery: sessions=%d quality=%d, want 1/1", cr.Sessions, cr.QualityDB.Count)
	}
}

// TestWatcherSurvivesFileDeletedMidTail covers the real (uninjected) shape
// of the same fault: the file disappears between scans and the watcher
// drops its state without error once the listing agrees.
func TestWatcherSurvivesFileDeletedMidTail(t *testing.T) {
	dir := t.TempDir()
	agg := New(Config{Obs: obs.NewRegistry()})
	w := NewWatcher(agg, dir, time.Hour)
	path := filepath.Join(dir, "s0.jsonl")
	if err := os.WriteFile(path, []byte(`{"v":1,"t_ms":0,"ev":"session","cohort":"a:b"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := w.Scan(); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if err := w.Scan(); err != nil {
		t.Fatalf("Scan after delete: %v", err)
	}
	if n := len(w.files); n != 0 {
		t.Fatalf("deleted file still tailed: %d entries", n)
	}
}

// TestWatcherBoundsPartialLine pins the pre-fix bug: a newline-free flood
// (a corrupt file matching the glob) must not grow the per-file carry
// buffer without bound. The runaway line is dropped and counted, and the
// tailer re-synchronizes on the next newline.
func TestWatcherBoundsPartialLine(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	cfg := DefaultConfig()
	cfg.Obs = reg
	agg := New(cfg)
	w := NewWatcher(agg, dir, time.Hour)

	path := filepath.Join(dir, "flood.jsonl")
	flood := bytes.Repeat([]byte{'x'}, maxPartialLine+4096) // no newline anywhere
	if err := os.WriteFile(path, flood, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := w.Scan(); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	tf := w.files[path]
	if tf == nil {
		t.Fatal("file not tailed")
	}
	if len(tf.partial) != 0 || !tf.overflow {
		t.Fatalf("carry not bounded: partial=%d overflow=%v", len(tf.partial), tf.overflow)
	}
	if got := reg.Snapshot().Counters["ing_bad_lines"]; got != 1 {
		t.Fatalf("ing_bad_lines = %d, want 1", got)
	}

	// The flood's newline finally lands, followed by a healthy line: the
	// tailer must resync and fold the healthy line only.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	tail := "tail-of-flood\n" +
		`{"v":1,"t_ms":0,"ev":"session","cohort":"low:net"}` + "\n" +
		`{"v":1,"t_ms":10,"ev":"quality","n":4200}` + "\n"
	if _, err := f.WriteString(tail); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := w.Scan(); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	cr := agg.Rollup().Cohorts["low:net"]
	if cr.Sessions != 1 || cr.QualityDB.Count != 1 {
		t.Fatalf("after resync: sessions=%d quality=%d, want 1/1", cr.Sessions, cr.QualityDB.Count)
	}
}

// TestFeedbackRejectsPoisonedCohorts is the satellite-2 contract: NaN, ±Inf
// or negative quality quantiles, negative session counts, and unusable
// cohort names must fall back to the neutral scale instead of clamping shed
// budgets to an extreme. Pre-fix, a -Inf P50 pinned the cohort at MaxScale.
func TestFeedbackRejectsPoisonedCohorts(t *testing.T) {
	reg := obs.NewRegistry()
	f := NewFeedback(FeedbackConfig{TargetDB: 40, Obs: reg})
	if err := f.Apply(Rollup{Cohorts: map[string]CohortRollup{
		"neg-inf":  {Sessions: 5, QualityDB: Distribution{Count: 10, P50: math.Inf(-1)}},
		"pos-inf":  {Sessions: 5, QualityDB: Distribution{Count: 10, P50: math.Inf(1)}},
		"nan":      {Sessions: 5, QualityDB: Distribution{Count: 10, P50: math.NaN()}},
		"negative": {Sessions: 5, QualityDB: Distribution{Count: 10, P50: -30}},
		"nan-p90":  {Sessions: 5, QualityDB: Distribution{Count: 10, P50: 44, P90: math.NaN()}},
		"bad-sess": {Sessions: -1, QualityDB: Distribution{Count: 10, P50: 44}},
		"":         {Sessions: 5, QualityDB: Distribution{Count: 10, P50: 44}},
		"good":     {Sessions: 5, QualityDB: Distribution{Count: 10, P50: 44}},
	}}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	for _, name := range []string{"neg-inf", "pos-inf", "nan", "negative", "nan-p90", "bad-sess"} {
		if s := f.CohortScale(name); s != 1 {
			t.Errorf("poisoned cohort %q scale = %v, want neutral 1", name, s)
		}
	}
	if s := f.CohortScale("good"); s >= 1 {
		t.Errorf("good cohort scale = %v, want < 1 (over budget)", s)
	}
	if got := reg.Snapshot().Counters["srv_qoe_rejected_cohorts"]; got != 7 {
		t.Errorf("srv_qoe_rejected_cohorts = %d, want 7", got)
	}
}

// TestFeedbackRejectsCrossVersionRollup: a rollup from a different trace
// schema version is refused whole and the previous scales stand.
func TestFeedbackRejectsCrossVersionRollup(t *testing.T) {
	reg := obs.NewRegistry()
	f := NewFeedback(FeedbackConfig{TargetDB: 40, Obs: reg})
	if err := f.Apply(Rollup{Cohorts: map[string]CohortRollup{
		"c": {Sessions: 5, QualityDB: Distribution{Count: 10, P50: 44}},
	}}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	before := f.CohortScale("c")
	if before >= 1 {
		// sanity: applied
	} else if before == 1 {
		t.Fatalf("setup Apply did not take")
	}
	err := f.Apply(Rollup{SchemaVersion: obs.TraceSchemaVersion + 7, Cohorts: map[string]CohortRollup{
		"c": {Sessions: 5, QualityDB: Distribution{Count: 10, P50: 20}},
	}})
	if err == nil {
		t.Fatalf("cross-version rollup accepted")
	}
	if got := reg.Snapshot().Counters["srv_qoe_rejected_rollups"]; got != 1 {
		t.Errorf("srv_qoe_rejected_rollups = %d, want 1", got)
	}
	if s := f.CohortScale("c"); s != before {
		t.Errorf("rejected rollup changed scale: %v -> %v", before, s)
	}
}

// TestFeedbackPollRetriesTransientFaults: injected poll failures inside one
// cycle are retried (bounded, jittered) and the cycle still lands.
func TestFeedbackPollRetriesTransientFaults(t *testing.T) {
	agg := New(Config{})
	body, _ := sessionJSONL(t, "low:net", rand.New(rand.NewSource(2)), 20)
	if _, err := agg.FoldReader(bytes.NewReader(body)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(agg.Handler())
	defer ts.Close()

	reg := obs.NewRegistry()
	// TargetDB 20 sits far below the [30,55) sample range, so any median is
	// over budget and the landed scale is observably < 1.
	f := NewFeedback(FeedbackConfig{
		URL: ts.URL + "/rollup", TargetDB: 20, Obs: reg,
		Interval: time.Second, RetryDelay: time.Millisecond,
	})
	armOrFatal(t, chaos.Rule{Site: "ingest.feedback.poll", Kind: chaos.FaultError, Count: 2})
	if err := f.Poll(context.Background()); err != nil {
		t.Fatalf("Poll: %v", err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["srv_qoe_poll_retries"]; got != 2 {
		t.Errorf("srv_qoe_poll_retries = %d, want 2", got)
	}
	if got := snap.Counters["srv_qoe_poll_errs"]; got != 2 {
		t.Errorf("srv_qoe_poll_errs = %d, want 2", got)
	}
	if s := f.CohortScale("low:net"); s == 1 {
		t.Errorf("poll retried but no scale landed")
	}

	// Exhaustion: more faults than attempts fails the cycle with the
	// injected error, and scales go stale (fail-static, never fail-weird).
	armOrFatal(t, chaos.Rule{Site: "ingest.feedback.poll", Kind: chaos.FaultError, Count: 99})
	err := f.Poll(context.Background())
	if !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("exhausted Poll error = %v, want ErrInjected", err)
	}
}

// TestPusherRetriesAndDelivers: transient 5xx responses are retried with
// backoff and the batch lands; the server sees every attempt.
func TestPusherRetriesAndDelivers(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "restarting", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	reg := obs.NewRegistry()
	p := NewPusher(PushConfig{URL: ts.URL, Obs: reg, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond})
	if err := p.Push(context.Background(), []byte(`{"v":1}`)); err != nil {
		t.Fatalf("Push: %v", err)
	}
	if calls.Load() != 3 {
		t.Errorf("attempts = %d, want 3", calls.Load())
	}
	snap := reg.Snapshot()
	if got := snap.Counters["ing_push_retries"]; got != 2 {
		t.Errorf("ing_push_retries = %d, want 2", got)
	}
	if got := snap.Counters["ing_push_drops"]; got != 0 {
		t.Errorf("ing_push_drops = %d, want 0", got)
	}
}

// TestPusherPermanentRejectionFailsFast: a 4xx other than 429 means the
// body itself is bad — retrying cannot fix it and must not happen.
func TestPusherPermanentRejectionFailsFast(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "bad batch", http.StatusBadRequest)
	}))
	defer ts.Close()

	reg := obs.NewRegistry()
	p := NewPusher(PushConfig{URL: ts.URL, Obs: reg, BaseDelay: time.Millisecond})
	if err := p.Push(context.Background(), []byte(`{"v":1}`)); err == nil {
		t.Fatalf("Push accepted a rejected batch")
	}
	if calls.Load() != 1 {
		t.Errorf("attempts = %d, want 1 (no retry on permanent rejection)", calls.Load())
	}
	if got := reg.Snapshot().Counters["ing_push_drops"]; got != 1 {
		t.Errorf("ing_push_drops = %d, want 1", got)
	}
}

// TestPusherDropsAfterBudget: a dead tier (injected ingest.push faults)
// exhausts the attempt budget; the batch is dropped with a count and a log
// line, and the producer is released — telemetry is lossy by contract.
func TestPusherDropsAfterBudget(t *testing.T) {
	reg := obs.NewRegistry()
	var logged atomic.Int64
	p := NewPusher(PushConfig{
		URL: "http://127.0.0.1:9/ingest", Obs: reg,
		MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond,
		Logf: func(string, ...any) { logged.Add(1) },
	})
	armOrFatal(t, chaos.Rule{Site: "ingest.push", Kind: chaos.FaultError})
	err := p.Push(context.Background(), []byte(`{"v":1}`))
	if !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("Push error = %v, want ErrInjected", err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["ing_push_retries"]; got != 2 {
		t.Errorf("ing_push_retries = %d, want 2", got)
	}
	if got := snap.Counters["ing_push_drops"]; got != 1 {
		t.Errorf("ing_push_drops = %d, want 1", got)
	}
	if logged.Load() != 1 {
		t.Errorf("drop log lines = %d, want 1", logged.Load())
	}
}

// TestSnapshotQuarantine walks the full disk-fault recovery: a torn
// rollup.json (injected partial write), a silently corrupted one, and a
// stale .tmp are all detected at startup, moved aside (or removed), and a
// healthy snapshot then writes and reads cleanly.
func TestSnapshotQuarantine(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	cfg := DefaultConfig()
	cfg.Obs = reg
	agg := New(cfg)
	body, _ := sessionJSONL(t, "low:net", rand.New(rand.NewSource(4)), 20)
	if _, err := agg.FoldReader(bytes.NewReader(body)); err != nil {
		t.Fatal(err)
	}

	// Torn write: the partial kind plants a half document in final position.
	armOrFatal(t, chaos.Rule{Site: "ingest.snapshot.write", Kind: chaos.FaultPartial, Count: 1})
	if _, err := agg.WriteSnapshot(dir); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("torn WriteSnapshot error = %v, want ErrInjected", err)
	}
	if _, err := ReadSnapshot(dir); err == nil {
		t.Fatalf("torn snapshot parsed")
	}
	quarantined, err := agg.QuarantineSnapshot(dir)
	if err != nil || !quarantined {
		t.Fatalf("QuarantineSnapshot = %v, %v; want true, nil", quarantined, err)
	}
	if _, err := os.Stat(filepath.Join(dir, SnapshotFile+CorruptSuffix)); err != nil {
		t.Fatalf("quarantined evidence missing: %v", err)
	}

	// Silent corruption: the writer believes it succeeded.
	chaos.Disarm()
	armOrFatal(t, chaos.Rule{Site: "ingest.snapshot.write", Kind: chaos.FaultCorrupt, Count: 1})
	if _, err := agg.WriteSnapshot(dir); err != nil {
		t.Fatalf("corrupt WriteSnapshot must report success, got %v", err)
	}
	if _, err := ReadSnapshot(dir); err == nil {
		t.Fatalf("corrupted snapshot parsed")
	}
	if q, err := agg.QuarantineSnapshot(dir); err != nil || !q {
		t.Fatalf("QuarantineSnapshot(corrupt) = %v, %v; want true, nil", q, err)
	}

	// Stale temp file from a crash mid-write.
	tmp := filepath.Join(dir, SnapshotFile+".tmp")
	if err := os.WriteFile(tmp, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	chaos.Disarm()
	if _, err := agg.WriteSnapshot(dir); err != nil {
		t.Fatalf("healthy WriteSnapshot: %v", err)
	}
	if q, err := agg.QuarantineSnapshot(dir); err != nil || q {
		t.Fatalf("healthy QuarantineSnapshot = %v, %v; want false, nil", q, err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("stale .tmp survived quarantine: %v", err)
	}
	ru, err := ReadSnapshot(dir)
	if err != nil {
		t.Fatalf("healthy ReadSnapshot: %v", err)
	}
	if _, ok := ru.Cohorts["low:net"]; !ok {
		t.Fatalf("healthy snapshot lost its cohort")
	}
	if got := reg.Snapshot().Counters["ing_quarantined"]; got != 2 {
		t.Errorf("ing_quarantined = %d, want 2", got)
	}
}

// TestRunSnapshotsQuarantinesOnEntry: the RunSnapshots loop itself performs
// the startup recovery, so a restarted ingest process self-heals without an
// operator in the loop.
func TestRunSnapshotsQuarantinesOnEntry(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, SnapshotFile), []byte("{\"torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	cfg := DefaultConfig()
	cfg.Obs = reg
	agg := New(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // entry work + final write only
	agg.RunSnapshots(ctx, dir, time.Hour)
	if got := reg.Snapshot().Counters["ing_quarantined"]; got != 1 {
		t.Errorf("ing_quarantined = %d, want 1", got)
	}
	if _, err := ReadSnapshot(dir); err != nil {
		t.Errorf("final snapshot unreadable after quarantine: %v", err)
	}
}

// TestIngestTeardownNoLeak is the satellite-4 assertion for this tier: the
// full ingest stack (HTTP server, watcher, snapshot loop, feedback poller)
// torn down while faults are armed leaves no goroutines behind.
func TestIngestTeardownNoLeak(t *testing.T) {
	defer leaktest.Check(t)()

	dir := t.TempDir()
	snapDir := t.TempDir()
	cfg := DefaultConfig()
	cfg.Obs = obs.NewRegistry()
	agg := New(cfg)
	if err := os.WriteFile(filepath.Join(dir, "s.jsonl"),
		[]byte(`{"v":1,"t_ms":0,"ev":"session","cohort":"a:b"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	armOrFatal(t,
		chaos.Rule{Site: "ingest.watch.read", Kind: chaos.FaultError, Every: 2},
		chaos.Rule{Site: "ingest.snapshot.write", Kind: chaos.FaultError, Every: 2},
		chaos.Rule{Site: "ingest.feedback.poll", Kind: chaos.FaultError, Every: 2},
	)

	ctx, cancel := context.WithCancel(context.Background())
	addr, done, err := agg.Serve(ctx, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	w := NewWatcher(agg, dir, 5*time.Millisecond)
	f := NewFeedback(FeedbackConfig{
		URL: "http://" + addr.String() + "/rollup", TargetDB: 40,
		Interval: 10 * time.Millisecond, RetryDelay: time.Millisecond,
		Obs: cfg.Obs,
	})
	finished := make(chan struct{})
	go func() { w.Run(ctx); finished <- struct{}{} }()
	go func() { agg.RunSnapshots(ctx, snapDir, 5*time.Millisecond); finished <- struct{}{} }()
	go func() { f.Run(ctx); finished <- struct{}{} }()

	time.Sleep(60 * time.Millisecond) // let faults fire across all loops
	cancel()
	for i := 0; i < 3; i++ {
		select {
		case <-finished:
		case <-time.After(5 * time.Second):
			t.Fatalf("ingest loop %d did not stop", i)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve exit: %v", err)
	}
	chaos.Disarm()
	if chaos.Injections("ingest.watch.read") == 0 {
		t.Errorf("soak never hit ingest.watch.read")
	}
}
