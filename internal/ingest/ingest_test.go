package ingest

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dragonfly/internal/obs"
	"dragonfly/internal/stats"
)

// sessionJSONL renders one synthetic session trace: header, startup, a
// stream of quality samples, one stall and one outage. Returns the JSONL
// bytes and the quality samples (dB) it folded in.
func sessionJSONL(t testing.TB, cohort string, rng *rand.Rand, frames int) ([]byte, []float64) {
	t.Helper()
	tr := obs.NewTrace(frames + 16)
	tr.Add(obs.SessionEvent("video-1", cohort))
	tr.Record(120*time.Millisecond, obs.EvStartup, 120)
	quality := make([]float64, 0, frames)
	at := 200 * time.Millisecond
	for i := 0; i < frames; i++ {
		q := 30 + rng.Float64()*25
		// The wire carries centi-dB; fold sees the rounded value.
		n := int64(q * 100)
		tr.Add(obs.Event{At: at, Kind: obs.EvQuality, Chunk: i / 30, N: n})
		quality = append(quality, float64(n)/100)
		at += 33 * time.Millisecond
	}
	tr.Record(at, obs.EvStall, 0)
	tr.Record(at+450*time.Millisecond, obs.EvResume, 450)
	tr.Add(obs.Event{At: at + time.Second, Kind: obs.EvOutage})
	tr.Add(obs.Event{At: at + 2300*time.Millisecond, Kind: obs.EvReconnect, N: 12})
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	return buf.Bytes(), quality
}

func TestIngestFoldRollupMatchesExact(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := DefaultConfig()
	cfg.Obs = reg
	agg := New(cfg)

	rng := rand.New(rand.NewSource(7))
	var exact []float64
	const sessions = 20
	for i := 0; i < sessions; i++ {
		body, qs := sessionJSONL(t, "low:belgian", rng, 200)
		if _, err := agg.FoldReader(bytes.NewReader(body)); err != nil {
			t.Fatalf("FoldReader: %v", err)
		}
		exact = append(exact, qs...)
	}

	ru := agg.Rollup()
	cr, ok := ru.Cohorts["low:belgian"]
	if !ok {
		t.Fatalf("cohort missing from rollup: %v", ru.Cohorts)
	}
	if cr.Sessions != sessions {
		t.Fatalf("sessions = %d, want %d", cr.Sessions, sessions)
	}
	if cr.QualityDB.Count != uint64(len(exact)) {
		t.Fatalf("quality count = %d, want %d", cr.QualityDB.Count, len(exact))
	}
	// The documented envelope: each rollup quantile within one sketch bin
	// width of the exact pooled per-session percentile.
	env := ru.QualityEnvDB
	for _, q := range []struct {
		p    float64
		got  float64
		name string
	}{
		{10, cr.QualityDB.P10, "p10"},
		{25, cr.QualityDB.P25, "p25"},
		{50, cr.QualityDB.P50, "p50"},
		{90, cr.QualityDB.P90, "p90"},
		{99, cr.QualityDB.P99, "p99"},
	} {
		want := stats.Percentile(exact, q.p)
		if d := q.got - want; d > env || d < -env {
			t.Errorf("%s = %.3f, exact %.3f, |diff| > envelope %.3f", q.name, q.got, want, env)
		}
	}
	if cr.StallMS.Count != sessions || cr.StallMS.P50 != 450 {
		t.Errorf("stall dist = %+v, want count %d p50 450", cr.StallMS, sessions)
	}
	if cr.StartupMS.Count != sessions {
		t.Errorf("startup count = %d, want %d", cr.StartupMS.Count, sessions)
	}
	// Outage length 1300 ms derived by pairing EvOutage with EvReconnect;
	// envelope = outage bin width (200 ms at default geometry).
	if cr.OutageMS.Count != sessions {
		t.Errorf("outage count = %d, want %d", cr.OutageMS.Count, sessions)
	}
	if d := cr.OutageMS.P50 - 1300; d > 200 || d < -200 {
		t.Errorf("outage p50 = %.1f, want 1300 +/- 200", cr.OutageMS.P50)
	}
	if got := reg.Snapshot().Counters["ing_sessions"]; got != sessions {
		t.Errorf("ing_sessions = %d, want %d", got, sessions)
	}
}

func TestIngestRejectsOtherSchemaVersions(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := DefaultConfig()
	cfg.Obs = reg
	agg := New(cfg)
	body := strings.Join([]string{
		`{"v":2,"t_ms":0,"ev":"session","cohort":"low:net"}`,
		`{"v":2,"t_ms":10,"ev":"quality","n":4200}`,
		`{"t_ms":20,"ev":"quality","n":4200}`, // v absent = 0: rejected too
		`not json at all`,
	}, "\n")
	if _, err := agg.FoldReader(strings.NewReader(body)); err != nil {
		t.Fatalf("FoldReader: %v", err)
	}
	if n := len(agg.Rollup().Cohorts); n != 0 {
		t.Fatalf("rejected events created %d cohorts, want 0", n)
	}
	snap := reg.Snapshot()
	if snap.Counters["ing_rejected_events"] != 3 {
		t.Errorf("ing_rejected_events = %d, want 3", snap.Counters["ing_rejected_events"])
	}
	if snap.Counters["ing_bad_lines"] != 1 {
		t.Errorf("ing_bad_lines = %d, want 1", snap.Counters["ing_bad_lines"])
	}
}

func TestIngestHeaderlessStreamFoldsAsUnknown(t *testing.T) {
	agg := New(Config{})
	var b strings.Builder
	for i := 0; i < maxPending+10; i++ {
		fmt.Fprintf(&b, `{"v":1,"t_ms":%d,"ev":"quality","n":4000}`+"\n", i)
	}
	if _, err := agg.FoldReader(strings.NewReader(b.String())); err != nil {
		t.Fatalf("FoldReader: %v", err)
	}
	cr, ok := agg.Rollup().Cohorts[UnknownCohort]
	if !ok {
		t.Fatalf("no %q cohort", UnknownCohort)
	}
	if cr.QualityDB.Count != maxPending+10 {
		t.Errorf("quality count = %d, want %d (buffered events must fold too)", cr.QualityDB.Count, maxPending+10)
	}
}

func TestIngestHTTPPushAndRollup(t *testing.T) {
	agg := New(Config{})
	ts := httptest.NewServer(agg.Handler())
	defer ts.Close()

	rng := rand.New(rand.NewSource(3))
	body, _ := sessionJSONL(t, "high:irish", rng, 50)
	resp, err := http.Post(ts.URL+"/ingest", "application/jsonl", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /ingest: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /ingest status = %v", resp.Status)
	}

	f := NewFeedback(FeedbackConfig{URL: ts.URL + "/rollup", TargetDB: 40})
	if err := f.Poll(t.Context()); err != nil {
		t.Fatalf("Poll: %v", err)
	}
	if s := f.CohortScale("high:irish"); s == 1 {
		// 50 samples uniform on [30,55): median ~42.5 dB, over the 40 dB
		// budget beyond the 0.5 dB deadband, so the cohort must shed harder.
		t.Errorf("CohortScale = 1, want < 1 for an over-budget cohort")
	} else if s >= 1 {
		t.Errorf("CohortScale = %v, want < 1", s)
	}
	if s := f.CohortScale("no:such"); s != 1 {
		t.Errorf("unknown cohort scale = %v, want 1", s)
	}
}

func TestFeedbackStaleDataIsNeutral(t *testing.T) {
	f := NewFeedback(FeedbackConfig{URL: "http://invalid.invalid/rollup", TargetDB: 40, MaxAge: time.Millisecond})
	ru := Rollup{Cohorts: map[string]CohortRollup{
		"low:net": {Sessions: 5, QualityDB: Distribution{Count: 100, P50: 50}},
	}}
	f.Apply(ru)
	if s := f.CohortScale("low:net"); s >= 1 {
		t.Fatalf("fresh scale = %v, want < 1", s)
	}
	time.Sleep(5 * time.Millisecond)
	if s := f.CohortScale("low:net"); s != 1 {
		t.Errorf("stale scale = %v, want neutral 1", s)
	}
}

func TestFeedbackScaleDirectionAndClamp(t *testing.T) {
	f := NewFeedback(FeedbackConfig{TargetDB: 40})
	f.Apply(Rollup{Cohorts: map[string]CohortRollup{
		"over":     {Sessions: 2, QualityDB: Distribution{Count: 10, P50: 44}},
		"under":    {Sessions: 2, QualityDB: Distribution{Count: 10, P50: 36}},
		"in-band":  {Sessions: 2, QualityDB: Distribution{Count: 10, P50: 40.2}},
		"way-over": {Sessions: 2, QualityDB: Distribution{Count: 10, P50: 79}},
	}})
	if s := f.CohortScale("over"); s >= 1 {
		t.Errorf("over scale = %v, want < 1", s)
	}
	if s := f.CohortScale("under"); s <= 1 {
		t.Errorf("under scale = %v, want > 1", s)
	}
	if s := f.CohortScale("in-band"); s != 1 {
		t.Errorf("in-band scale = %v, want 1", s)
	}
	if s := f.CohortScale("way-over"); s != 0.25 {
		t.Errorf("way-over scale = %v, want MinScale 0.25", s)
	}
}

func TestIngestWatcherTailsAndRotates(t *testing.T) {
	dir := t.TempDir()
	agg := New(Config{})
	w := NewWatcher(agg, dir, time.Hour) // driven manually via Scan

	path := filepath.Join(dir, "s0.jsonl")
	full := `{"v":1,"t_ms":0,"ev":"session","cohort":"low:belgian","video":"v"}` + "\n" +
		`{"v":1,"t_ms":10,"ev":"quality","n":4200}` + "\n"
	// Write the file in two pieces, splitting mid-line: the tailer must
	// buffer the partial line across scans.
	cut := len(full) - 9
	if err := os.WriteFile(path, []byte(full[:cut]), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := w.Scan(); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if n := agg.Rollup().Cohorts["low:belgian"].QualityDB.Count; n != 0 {
		t.Fatalf("partial line folded early: count = %d", n)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(full[cut:]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := w.Scan(); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	cr := agg.Rollup().Cohorts["low:belgian"]
	if cr.Sessions != 1 || cr.QualityDB.Count != 1 {
		t.Fatalf("after append: sessions=%d quality=%d, want 1/1", cr.Sessions, cr.QualityDB.Count)
	}

	// Rotate in place: shorter content = restart from offset 0.
	rotated := `{"v":1,"t_ms":0,"ev":"session","cohort":"high:irish"}` + "\n"
	if err := os.WriteFile(path, []byte(rotated), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := w.Scan(); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if n := agg.Rollup().Cohorts["high:irish"].Sessions; n != 1 {
		t.Fatalf("rotated file not re-read: sessions = %d", n)
	}
}

// TestIngestMultiWriterRace drives one Aggregator from many goroutines —
// HTTP pushes and raw FoldReaders concurrently with rollups — and is the
// race-detector coverage for the shared fold path (scripts/ci.sh runs the
// package under -race).
func TestIngestMultiWriterRace(t *testing.T) {
	agg := New(Config{Obs: obs.NewRegistry()})
	ts := httptest.NewServer(agg.Handler())
	defer ts.Close()

	const writers = 8
	const perWriter = 5
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			cohort := fmt.Sprintf("c%d:net", i%3)
			for j := 0; j < perWriter; j++ {
				body, _ := sessionJSONL(t, cohort, rng, 40)
				if i%2 == 0 {
					resp, err := http.Post(ts.URL+"/ingest", "application/jsonl", bytes.NewReader(body))
					if err != nil {
						t.Errorf("POST: %v", err)
						return
					}
					resp.Body.Close()
				} else if _, err := agg.FoldReader(bytes.NewReader(body)); err != nil {
					t.Errorf("FoldReader: %v", err)
					return
				}
			}
		}(i)
	}
	// Concurrent readers: rollups and snapshots while writers fold.
	stop := make(chan struct{})
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		dir := t.TempDir()
		for {
			select {
			case <-stop:
				return
			default:
				_ = agg.Rollup()
				_, _ = agg.WriteSnapshot(dir)
			}
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()

	var total int64
	for _, cr := range agg.Rollup().Cohorts {
		total += cr.Sessions
	}
	if total != writers*perWriter {
		t.Fatalf("sessions = %d, want %d", total, writers*perWriter)
	}
}

func TestIngestSnapshotRoundTrips(t *testing.T) {
	dir := t.TempDir()
	agg := New(Config{})
	rng := rand.New(rand.NewSource(1))
	body, _ := sessionJSONL(t, "low:net", rng, 10)
	if _, err := agg.FoldReader(bytes.NewReader(body)); err != nil {
		t.Fatal(err)
	}
	path, err := agg.WriteSnapshot(dir)
	if err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"low:net"`)) {
		t.Fatalf("snapshot missing cohort: %s", data)
	}
}

func BenchmarkIngestFold(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	body, _ := sessionJSONL(b, "low:belgian", rng, 300)
	agg := New(Config{})
	b.SetBytes(int64(len(body)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agg.FoldReader(bytes.NewReader(body)); err != nil {
			b.Fatal(err)
		}
	}
}
